package cmpnurapid_test

// One benchmark per table and figure of the paper's evaluation, plus
// the design-choice ablations. Each benchmark regenerates its
// table/figure at a reduced scale per iteration and reports the
// figure's headline quantity via ReportMetric, so
//
//	go test -bench=. -benchmem
//
// exercises the entire evaluation pipeline. EXPERIMENTS.md records the
// full-scale numbers produced by cmd/experiments.

import (
	"testing"

	"cmpnurapid/internal/experiments"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/workload"
)

// benchRC is the per-iteration simulation scale: small enough that a
// benchmark iteration is seconds, large enough that the reported
// metrics are directionally meaningful.
func benchRC() experiments.RunConfig {
	return experiments.RunConfig{WarmupInstr: 300_000, Instructions: 200_000, Seed: 42}
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		if t.NumRows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Table2()
	}
}

func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Table3(benchRC().Seed)
	}
}

// figureBench runs one figure's regeneration per iteration and reports
// metrics extracted from the final evaluation.
func figureBench(b *testing.B, gen func(e *experiments.Eval) *stats.Table, metrics func(e *experiments.Eval, b *testing.B)) {
	b.Helper()
	b.ReportAllocs()
	var last *experiments.Eval
	for i := 0; i < b.N; i++ {
		e := experiments.NewEval(benchRC())
		if t := gen(e); t.NumRows() == 0 {
			b.Fatal("empty figure")
		}
		last = e
	}
	if last != nil && metrics != nil {
		metrics(last, b)
	}
}

func BenchmarkFigure5(b *testing.B) {
	figureBench(b, (*experiments.Eval).Figure5, func(e *experiments.Eval, b *testing.B) {
		b.ReportMetric(100*e.MissFrac(experiments.Private, memsys.LabelRWS), "private-RWS-%")
		b.ReportMetric(100*e.MissFrac(experiments.UniformShared, memsys.LabelCapacity), "shared-cap-%")
	})
}

func BenchmarkFigure6(b *testing.B) {
	figureBench(b, (*experiments.Eval).Figure6, func(e *experiments.Eval, b *testing.B) {
		b.ReportMetric(e.Speedup(experiments.Ideal), "ideal-x")
		b.ReportMetric(e.Speedup(experiments.Private), "private-x")
		b.ReportMetric(e.Speedup(experiments.NonUniform), "snuca-x")
	})
}

func BenchmarkFigure7(b *testing.B) {
	figureBench(b, (*experiments.Eval).Figure7, func(e *experiments.Eval, b *testing.B) {
		ros := e.ReuseFracs(true)
		b.ReportMetric(100*ros[0], "ROS-0reuse-%")
		rws := e.ReuseFracs(false)
		b.ReportMetric(100*rws[2], "RWS-2to5-%")
	})
}

func BenchmarkFigure8(b *testing.B) {
	figureBench(b, (*experiments.Eval).Figure8, func(e *experiments.Eval, b *testing.B) {
		b.ReportMetric(100*e.MissFrac(experiments.NuRAPIDISC, memsys.LabelRWS), "ISC-RWS-%")
		b.ReportMetric(100*e.MissFrac(experiments.Private, memsys.LabelRWS), "private-RWS-%")
	})
}

func BenchmarkFigure9(b *testing.B) {
	figureBench(b, (*experiments.Eval).Figure9, func(e *experiments.Eval, b *testing.B) {
		b.ReportMetric(100*e.DataFrac(experiments.NuRAPIDCR, memsys.LabelClosest), "CR-closest-%")
		b.ReportMetric(100*e.DataFrac(experiments.NuRAPIDISC, memsys.LabelClosest), "ISC-closest-%")
	})
}

func BenchmarkFigure10(b *testing.B) {
	figureBench(b, (*experiments.Eval).Figure10, func(e *experiments.Eval, b *testing.B) {
		b.ReportMetric(e.Speedup(experiments.NuRAPID), "nurapid-x")
		b.ReportMetric(e.Speedup(experiments.Private), "private-x")
	})
}

func BenchmarkFigure11(b *testing.B) {
	figureBench(b, (*experiments.Eval).Figure11, func(e *experiments.Eval, b *testing.B) {
		b.ReportMetric(100*e.MixMissRate(experiments.UniformShared), "shared-miss-%")
		b.ReportMetric(100*e.MixMissRate(experiments.Private), "private-miss-%")
		b.ReportMetric(100*e.MixMissRate(experiments.NuRAPID), "nurapid-miss-%")
	})
}

func BenchmarkFigure12(b *testing.B) {
	figureBench(b, (*experiments.Eval).Figure12, func(e *experiments.Eval, b *testing.B) {
		b.ReportMetric(e.MixSpeedup(experiments.NuRAPID), "nurapid-x")
		b.ReportMetric(e.MixSpeedup(experiments.Private), "private-x")
	})
}

// evaluationBench runs the whole "all" selection — plan every cell,
// execute on the scheduler with the given worker count, render the
// headline figure — so `go test -bench Evaluation -benchtime 1x`
// records the sequential-vs-parallel wall-clock of the evaluation.
func evaluationBench(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	sel, err := experiments.Select("all")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		e := experiments.NewEval(benchRC())
		cells := experiments.Plan(sel, e)
		experiments.ExecuteCells(cells, workers, false, nil)
		if e.Figure10().NumRows() == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkEvaluationSequential(b *testing.B) { evaluationBench(b, 1) }

func BenchmarkEvaluationParallel(b *testing.B) {
	evaluationBench(b, experiments.DefaultParallelism())
}

// ablationBenchRC is larger than benchRC: the ablation effects only
// appear once the tag arrays and d-groups fill (see
// internal/experiments/abl_scale_test.go).
func ablationBenchRC() experiments.RunConfig {
	return experiments.RunConfig{WarmupInstr: 3_000_000, Instructions: 1_500_000, Seed: 42}
}

func BenchmarkAblationPromotion(b *testing.B) {
	b.ReportAllocs()
	var fastest, next float64
	for i := 0; i < b.N; i++ {
		fastest, next = experiments.PromotionSpeedups(ablationBenchRC(), 2) // MIX3: mcf vs small apps
	}
	b.ReportMetric(fastest, "fastest-x")
	b.ReportMetric(next, "next-fastest-x")
}

func BenchmarkAblationTagCapacity(b *testing.B) {
	b.ReportAllocs()
	var s [3]float64
	for i := 0; i < b.N; i++ {
		s = experiments.TagCapacitySpeedups(ablationBenchRC(), workload.OLTP(42))
	}
	b.ReportMetric(s[0], "tags1x-x")
	b.ReportMetric(s[1], "tags2x-x")
	b.ReportMetric(s[2], "tags4x-x")
}

func BenchmarkAblationOptimizations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if t := experiments.AblationOptimizations(benchRC()); t.NumRows() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkAblationReplicationTrigger(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if t := experiments.AblationReplicationTrigger(benchRC()); t.NumRows() == 0 {
			b.Fatal("empty")
		}
	}
}
