// Command benchreport reduces `go test -bench` output into the
// committed performance trajectory (BENCH_quick.json) and diffs a
// fresh run against it — the measurement half of the hotpath gate
// (docs/PERF.md).
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... | go run ./cmd/benchreport -write BENCH_quick.json
//	go test -run '^$' -bench ... -benchmem ./... | go run ./cmd/benchreport -diff BENCH_quick.json
//
// -write reduces stdin to the JSON trajectory. -diff reduces stdin the
// same way and compares it against the committed file: allocs/op and
// B/op must match exactly (the benchmarks are deterministic and run at
// fixed -benchtime iteration counts), ns/op may grow by at most the
// slack factor, and throughput metrics (units ending in /sec) may
// shrink by at most the same factor. Wall-clock slack is deliberately
// generous — CI machines vary — while the allocation profile, which
// does not vary, is held exactly.
//
// Exit status: 0 clean, 1 regression (or baseline benchmark missing
// from the run), 2 usage/parse errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one reduced benchmark result. Metrics maps the unit
// string go test prints (ns/op, B/op, allocs/op, simcycles/sec, ...)
// to its value.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the BENCH_quick.json shape. No timestamps or host info:
// the file must be byte-stable for identical results, so refreshing it
// produces an empty git diff when nothing changed.
type Report struct {
	Format     int         `json:"format"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		write = fs.String("write", "", "reduce stdin and write the trajectory to this file")
		diff  = fs.String("diff", "", "reduce stdin and diff it against this trajectory file")
		slack = fs.Float64("slack", 8, "allowed wall-time growth / throughput shrink factor")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*write == "") == (*diff == "") {
		fmt.Fprintln(stderr, "benchreport: exactly one of -write or -diff is required")
		return 2
	}
	if *slack < 1 {
		fmt.Fprintln(stderr, "benchreport: -slack must be >= 1")
		return 2
	}

	rep, err := parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 2
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchreport: no benchmark lines on stdin")
		return 2
	}

	if *write != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchreport: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(rep.Benchmarks), *write)
		return 0
	}

	baseData, err := os.ReadFile(*diff)
	if err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 2
	}
	var base Report
	if err := json.Unmarshal(baseData, &base); err != nil {
		fmt.Fprintf(stderr, "benchreport: %s: %v\n", *diff, err)
		return 2
	}
	if failures := compare(&base, rep, *slack, stdout); failures > 0 {
		fmt.Fprintf(stdout, "FAIL: %d regression(s) vs %s (refresh with scripts/bench.sh -update if intended)\n", failures, *diff)
		return 1
	}
	fmt.Fprintf(stdout, "ok: %d benchmarks within tolerance of %s\n", len(base.Benchmarks), *diff)
	return 0
}

// parse reduces `go test -bench` output. Package headers ("pkg: ...")
// qualify benchmark names with the package's last path element, so the
// same function name in two packages cannot collide.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Format: 1}
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			p := strings.TrimSpace(rest)
			pkg = p[strings.LastIndex(p, "/")+1:]
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix so the name is machine-stable.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q", line)
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// compare checks every baseline benchmark against the fresh run and
// returns the number of failures. Benchmarks only in the fresh run are
// noted but pass (the baseline picks them up on the next -update).
func compare(base, fresh *Report, slack float64, out io.Writer) int {
	byName := make(map[string]*Benchmark, len(fresh.Benchmarks))
	for i := range fresh.Benchmarks {
		byName[fresh.Benchmarks[i].Name] = &fresh.Benchmarks[i]
	}
	failures := 0
	for _, b := range base.Benchmarks {
		got, ok := byName[b.Name]
		if !ok {
			fmt.Fprintf(out, "FAIL %s: in baseline but missing from this run\n", b.Name)
			failures++
			continue
		}
		delete(byName, b.Name)
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			want := b.Metrics[unit]
			have, ok := got.Metrics[unit]
			if !ok {
				fmt.Fprintf(out, "FAIL %s: metric %s missing from this run\n", b.Name, unit)
				failures++
				continue
			}
			switch {
			case unit == "allocs/op" || unit == "B/op":
				// Deterministic benchmarks at fixed iteration counts:
				// the allocation profile must match exactly.
				if have != want {
					fmt.Fprintf(out, "FAIL %s: %s = %v, baseline %v (must match exactly)\n", b.Name, unit, have, want)
					failures++
				}
			case strings.HasSuffix(unit, "/sec"):
				if want > 0 && have < want/slack {
					fmt.Fprintf(out, "FAIL %s: %s = %.0f, below baseline %.0f / slack %.1f\n", b.Name, unit, have, want, slack)
					failures++
				}
			case unit == "ns/op":
				if have > want*slack {
					fmt.Fprintf(out, "FAIL %s: ns/op = %.1f, above baseline %.1f * slack %.1f\n", b.Name, have, want, slack)
					failures++
				}
			}
		}
	}
	extra := make([]string, 0, len(byName))
	for name := range byName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(out, "note: %s is not in the baseline yet\n", name)
	}
	return failures
}
