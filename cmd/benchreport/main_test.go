package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cmpnurapid/internal/cmpsim
cpu: Intel(R) Xeon(R) Processor
BenchmarkSimStep-4   	  100000	        36.17 ns/op	  35495222 simcycles/sec	       0 B/op	       0 allocs/op
PASS
ok  	cmpnurapid/internal/cmpsim	0.017s
pkg: cmpnurapid/internal/core
BenchmarkHitClosest-4	   10000	       120.5 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseReducesBenchLines(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	// Sorted by qualified name: cmpsim.SimStep < core.HitClosest.
	b := rep.Benchmarks[0]
	if b.Name != "cmpsim.SimStep" || b.Iterations != 100000 {
		t.Errorf("benchmark 0 = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 36.17, "simcycles/sec": 35495222, "B/op": 0, "allocs/op": 0,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if rep.Benchmarks[1].Name != "core.HitClosest" {
		t.Errorf("benchmark 1 = %q, want core.HitClosest", rep.Benchmarks[1].Name)
	}
}

func TestWriteThenCleanDiff(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_quick.json")
	var stdout, stderr strings.Builder
	if code := run([]string{"-write", path}, strings.NewReader(sampleOutput), &stdout, &stderr); code != 0 {
		t.Fatalf("-write = %d\nstderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
	if rep.Format != 1 || len(rep.Benchmarks) != 2 {
		t.Fatalf("written report = %+v", rep)
	}

	stdout.Reset()
	if code := run([]string{"-diff", path}, strings.NewReader(sampleOutput), &stdout, &stderr); code != 0 {
		t.Fatalf("identical run diffed dirty: %d\n%s", code, stdout.String())
	}
}

// diffAgainst writes base as the baseline and diffs freshOutput into it.
func diffAgainst(t *testing.T, base Report, freshOutput string) (int, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-diff", path}, strings.NewReader(freshOutput), &stdout, &stderr)
	return code, stdout.String() + stderr.String()
}

func baseline(metrics map[string]float64) Report {
	return Report{Format: 1, Benchmarks: []Benchmark{
		{Name: "cmpsim.SimStep", Iterations: 100000, Metrics: metrics},
	}}
}

const freshLine = `pkg: cmpnurapid/internal/cmpsim
BenchmarkSimStep-4  100000  36.17 ns/op  35495222 simcycles/sec  0 B/op  0 allocs/op
`

func TestDiffAllocsAreExact(t *testing.T) {
	code, out := diffAgainst(t, baseline(map[string]float64{
		"ns/op": 36, "allocs/op": 1,
	}), freshLine)
	// Fresh run has 0 allocs/op vs baseline 1: even an improvement is a
	// mismatch — the baseline must be refreshed deliberately.
	if code != 1 || !strings.Contains(out, "allocs/op") {
		t.Errorf("code = %d, out:\n%s", code, out)
	}
}

func TestDiffWallTimeSlack(t *testing.T) {
	// 36.17 ns/op against a 5 ns/op baseline exceeds 8x slack.
	code, out := diffAgainst(t, baseline(map[string]float64{"ns/op": 4}), freshLine)
	if code != 1 || !strings.Contains(out, "ns/op") {
		t.Errorf("code = %d, out:\n%s", code, out)
	}
	// Within slack passes.
	code, out = diffAgainst(t, baseline(map[string]float64{"ns/op": 30}), freshLine)
	if code != 0 {
		t.Errorf("within-slack run failed (%d):\n%s", code, out)
	}
}

func TestDiffThroughputSlack(t *testing.T) {
	// 35.5M simcycles/sec against a 300M baseline is below 1/8.
	code, out := diffAgainst(t, baseline(map[string]float64{"simcycles/sec": 300_000_000}), freshLine)
	if code != 1 || !strings.Contains(out, "simcycles/sec") {
		t.Errorf("code = %d, out:\n%s", code, out)
	}
}

func TestDiffMissingBenchmarkFails(t *testing.T) {
	base := baseline(map[string]float64{"ns/op": 36})
	base.Benchmarks = append(base.Benchmarks, Benchmark{
		Name: "core.Gone", Metrics: map[string]float64{"ns/op": 1},
	})
	code, out := diffAgainst(t, base, freshLine)
	if code != 1 || !strings.Contains(out, "core.Gone") {
		t.Errorf("code = %d, out:\n%s", code, out)
	}
}

func TestDiffNewBenchmarkIsNoteOnly(t *testing.T) {
	code, out := diffAgainst(t, baseline(map[string]float64{"ns/op": 36}),
		freshLine+"BenchmarkBrandNew-4  10  5 ns/op\n")
	if code != 0 || !strings.Contains(out, "cmpsim.BrandNew is not in the baseline") {
		t.Errorf("code = %d, out:\n%s", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{nil, {"-write", "a", "-diff", "b"}, {"-diff", "x", "-slack", "0.5"}} {
		var stdout, stderr strings.Builder
		if code := run(args, strings.NewReader(""), &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
