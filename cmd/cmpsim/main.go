// Command cmpsim runs one cache design against one workload and prints
// detailed results: per-core IPC, the L2 access distribution (the
// paper's miss taxonomy), d-group behaviour, and bus traffic.
//
//	cmpsim -design CMP-NuRAPID -workload oltp -instr 3000000
//	cmpsim -design private -workload MIX3
//	cmpsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/experiments"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/trace"
	"cmpnurapid/internal/workload"
)

var designs = []experiments.DesignName{
	experiments.UniformShared, experiments.NonUniform, experiments.Private,
	experiments.Ideal, experiments.NuRAPID, experiments.NuRAPIDCR, experiments.NuRAPIDISC,
	experiments.PrivateUpdate, experiments.DNUCA,
}

func workloadByName(name string, seed uint64) (cmpsim.Workload, bool) {
	for _, p := range workload.Multithreaded(seed) {
		if p.Name == name {
			return workload.New(p), true
		}
	}
	for i, m := range workload.Mixes(seed) {
		if m.Name() == name {
			return workload.Mixes(seed)[i], true
		}
	}
	return nil, false
}

func main() {
	var (
		design   = flag.String("design", "CMP-NuRAPID", "cache design")
		wl       = flag.String("workload", "oltp", "workload: oltp, apache, specjbb, ocean, barnes, MIX1..MIX4")
		instr    = flag.Uint64("instr", 2_000_000, "measured instructions per core")
		warmup   = flag.Int("warmup", 4_000_000, "warm-up instructions per core")
		seed     = flag.Uint64("seed", 42, "workload seed")
		baseline = flag.Bool("baseline", false, "also run uniform-shared and report speedup")
		traceIn  = flag.String("trace", "", "replay a recorded trace file instead of a named workload")
		list     = flag.Bool("list", false, "list designs and workloads")
	)
	flag.Parse()

	if *list {
		names := make([]string, len(designs))
		for i, d := range designs {
			names[i] = string(d)
		}
		fmt.Println("designs:  ", strings.Join(names, ", "))
		fmt.Println("workloads: oltp, apache, specjbb, ocean, barnes, MIX1, MIX2, MIX3, MIX4")
		return
	}

	var w cmpsim.Workload
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmpsim:", err)
			os.Exit(1)
		}
		w, err = trace.Load(f, *traceIn)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmpsim:", err)
			os.Exit(1)
		}
		*wl = *traceIn
	} else {
		var ok bool
		w, ok = workloadByName(*wl, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *wl)
			os.Exit(1)
		}
	}
	rc := experiments.RunConfig{WarmupInstr: *warmup, Instructions: *instr, Seed: *seed}
	rc.Validate()
	res := experiments.Run(experiments.DesignName(*design), w, rc)

	fmt.Printf("design   %s\nworkload %s\n\n", res.Design, *wl)
	t := stats.NewTable("Per-core results", "Core", "Cycles", "Instructions", "IPC", "L1D miss", "L1I miss", "Write-throughs")
	for i, c := range res.Cores {
		l1d := pct(c.L1DMisses, c.L1DMisses+c.L1DHits)
		l1i := pct(c.L1IMisses, c.L1IMisses+c.L1IHits)
		t.Row(fmt.Sprintf("P%d", i), fmt.Sprint(c.Cycles), fmt.Sprint(c.Instructions),
			fmt.Sprintf("%.3f", c.IPC), l1d, l1i, fmt.Sprint(c.Writethroughs))
	}
	fmt.Println(t.String())
	fmt.Printf("makespan %d cycles, aggregate IPC %.3f\n\n", res.Cycles, res.IPC)

	s := res.L2
	fmt.Println("L2 access distribution:")
	fmt.Print(s.Accesses.String())
	fmt.Println("\nData-array distribution:")
	fmt.Print(s.DataArray.String())
	fmt.Printf("\navg L2 latency %.1f cycles, off-chip misses %d\n",
		float64(s.LatencySum)/float64(max(1, s.Accesses.Total())), s.OffChipMisses)
	if s.BusTransactions.Total() > 0 {
		fmt.Println("\nBus traffic:")
		fmt.Print(s.BusTransactions.String())
	}
	if s.Replications+s.PointerReturns+s.Promotions+s.Demotions > 0 {
		fmt.Printf("\nCR/CS activity: %d pointer returns, %d replications, %d promotions, %d demotions\n",
			s.PointerReturns, s.Replications, s.Promotions, s.Demotions)
	}
	if *baseline && *design != string(experiments.UniformShared) && *traceIn == "" {
		wb, _ := workloadByName(*wl, *seed)
		base := experiments.Run(experiments.UniformShared, wb, rc)
		fmt.Printf("\nweighted speedup over uniform-shared: %.3fx\n", cmpsim.Speedup(res, base))
	}
}

func pct(n, d uint64) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(d))
}

func max(a uint64, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
