// Command experiments regenerates the paper's evaluation tables and
// figures. Run with -exp all (default) or a comma-separated subset:
//
//	experiments -exp table1,fig5,fig10 -instr 3000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cmpnurapid/internal/experiments"
	"cmpnurapid/internal/stats"
)

func main() {
	var (
		exps   = flag.String("exp", "all", "comma-separated experiments: table1..3, fig5..fig12, summary, all; ablations (opt-in): abl-promotion, abl-tags, abl-replication, abl-optimizations, abl-cmigration, abl-update, abl-dnuca, bandwidth, capacity; sensitivity: sens-size, sens-seed")
		instr  = flag.Uint64("instr", 3_000_000, "measured instructions per core")
		warmup = flag.Int("warmup", 5_000_000, "warm-up instructions per core")
		seed   = flag.Uint64("seed", 42, "workload seed")
		format = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	rc := experiments.RunConfig{WarmupInstr: *warmup, Instructions: *instr, Seed: *seed}
	rc.Validate()
	eval := experiments.NewEval(rc)

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	render := func(t *stats.Table) string {
		if *format == "csv" {
			return t.CSV()
		}
		return t.String()
	}
	show := func(name string, f func() *stats.Table) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		fmt.Println(render(f()))
		if *format == "text" {
			fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	show("table1", experiments.Table1)
	show("table2", experiments.Table2)
	show("table3", experiments.Table3)
	// Ablations are opt-in (not part of "all"): they re-run many
	// CMP-NuRAPID variants.
	showAbl := func(name string, f func(experiments.RunConfig) *stats.Table) {
		if !want[name] {
			return
		}
		start := time.Now()
		fmt.Println(render(f(rc)))
		if *format == "text" {
			fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	showAbl("abl-promotion", experiments.AblationPromotion)
	showAbl("abl-tags", experiments.AblationTagCapacity)
	showAbl("abl-replication", experiments.AblationReplicationTrigger)
	showAbl("abl-optimizations", experiments.AblationOptimizations)
	showAbl("abl-cmigration", experiments.AblationCMigration)
	showAbl("abl-update", experiments.AblationUpdateProtocol)
	showAbl("abl-dnuca", experiments.DNUCAComparison)
	showAbl("bandwidth", experiments.BandwidthReport)
	if want["capacity"] {
		start := time.Now()
		fmt.Println(render(experiments.CapacityReport(rc, 2))) // MIX3: mcf vs small apps
		if *format == "text" {
			fmt.Printf("[capacity regenerated in %v]\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	if want["sens-size"] {
		start := time.Now()
		fmt.Println(render(experiments.SizeSensitivity(rc, []int{4, 8, 16})))
		if *format == "text" {
			fmt.Printf("[sens-size regenerated in %v]\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	if want["sens-seed"] {
		start := time.Now()
		fmt.Println(render(experiments.SeedSensitivity(rc, []uint64{*seed, *seed + 1, *seed + 2})))
		if *format == "text" {
			fmt.Printf("[sens-seed regenerated in %v]\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	show("fig5", eval.Figure5)
	show("fig6", eval.Figure6)
	show("fig7", eval.Figure7)
	show("fig8", eval.Figure8)
	show("fig9", eval.Figure9)
	show("fig10", eval.Figure10)
	show("fig11", eval.Figure11)
	show("fig12", eval.Figure12)
	if all || want["summary"] {
		fmt.Println(eval.Summary())
	}
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected")
		os.Exit(1)
	}
}
