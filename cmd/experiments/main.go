// Command experiments regenerates the paper's evaluation tables and
// figures. Run with -exp all (default) or a comma-separated subset:
//
//	experiments -exp table1,fig5,fig10 -instr 3000000
//
// The requested experiments first declare every (design, workload)
// simulation they need; a bounded worker pool (-parallel, default one
// worker per CPU) runs those cells concurrently, then the tables are
// rendered in fixed order from the completed cache. Tables go to
// stdout; per-cell progress and timing go to stderr, so stdout is
// byte-identical at any -parallel level (see docs/PARALLEL.md).
//
// A failing simulation (watchdog abort, cycle-ceiling abort, invariant
// violation) does not take down the run: the failed cells' experiments
// render as ERR lines, a failure report follows the tables, and the
// process exits 1. -failfast restores abort-on-first-failure; the
// -max-cycles ceiling bounds every simulation phase. See
// docs/ROBUSTNESS.md. Exit codes: 0 success, 1 cell or render
// failures, 2 usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cmpnurapid/internal/experiments"
	"cmpnurapid/internal/memsys"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit code) made
// explicit so the CLI tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exps = fs.String("exp", "all", "comma-separated experiments, or all: "+
			strings.Join(experiments.ExperimentNames(), ", ")+
			" (ablations and sensitivity sweeps are opt-in, not part of all)")
		instr    = fs.Uint64("instr", 3_000_000, "measured instructions per core")
		warmup   = fs.Int("warmup", 5_000_000, "warm-up instructions per core")
		seed     = fs.Uint64("seed", 42, "workload seed")
		format   = fs.String("format", "text", "output format: text or csv")
		parallel = fs.Int("parallel", experiments.DefaultParallelism(),
			"max concurrent simulations (1 = sequential; output is identical either way)")
		quiet     = fs.Bool("quiet", false, "suppress per-cell progress lines on stderr")
		maxCycles = fs.Int64("max-cycles", 0,
			"hard clock ceiling per simulation phase in cycles (0 derives one from the instruction budget)")
		failFast = fs.Bool("failfast", false,
			"abort on the first failed simulation instead of running the remaining cells")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(stderr, "experiments: invalid -format %q (valid: text, csv)\n", *format)
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(stderr, "experiments: -parallel must be at least 1, got %d\n", *parallel)
		return 2
	}
	if *maxCycles < 0 {
		fmt.Fprintf(stderr, "experiments: -max-cycles must be non-negative, got %d\n", *maxCycles)
		return 2
	}
	selected, err := experiments.Select(*exps)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 2
	}

	rc := experiments.RunConfig{
		WarmupInstr: *warmup, Instructions: *instr, Seed: *seed,
		MaxCycles: memsys.CyclesOf(int(*maxCycles)),
	}
	rc.Validate()
	eval := experiments.NewEval(rc)

	// Phase 1: plan and execute every simulation cell concurrently.
	// Panicking cells become CellFailures; the rest keep running.
	cells := experiments.Plan(selected, eval)
	start := time.Now()
	var progress experiments.Progress
	if !*quiet {
		progress = func(done, total int, key string, elapsed time.Duration) {
			fmt.Fprintf(stderr, "[%d/%d] %s (%v)\n", done, total, key, elapsed.Round(time.Millisecond))
		}
	}
	failures := experiments.ExecuteCells(cells, *parallel, *failFast, progress)
	if !*quiet && len(cells) > 0 {
		fmt.Fprintf(stderr, "%d simulations in %v (-parallel %d)\n",
			len(cells), time.Since(start).Round(time.Millisecond), *parallel)
	}
	if *failFast && len(failures) > 0 {
		reportFailures(stdout, stderr, failures)
		return 1
	}

	// Phase 2: render from the warm cache in registry order. An
	// experiment whose cells are poisoned renders as an ERR line; the
	// healthy experiments still print in full.
	reported := map[string]bool{}
	for _, f := range failures {
		reported[f.Diagnostic] = true
	}
	for _, ex := range selected {
		t0 := time.Now()
		var rendered string
		f := experiments.CapturePanic(ex.Name, func() {
			switch {
			case ex.Table != nil:
				t := ex.Table(eval)
				if *format == "csv" {
					rendered = t.CSV()
				} else {
					rendered = t.String()
				}
			default:
				rendered = ex.Text(eval)
			}
		})
		if f != nil {
			fmt.Fprintf(stdout, "ERR %s: %s\n\n", ex.Name, firstLine(f.Diagnostic))
			// A render failure caused by an already-reported cell
			// failure carries the same diagnostic; only new ones add to
			// the report.
			if !reported[f.Diagnostic] {
				reported[f.Diagnostic] = true
				failures = append(failures, *f)
			}
		} else {
			fmt.Fprintln(stdout, rendered)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "[%s rendered in %v]\n", ex.Name, time.Since(t0).Round(time.Millisecond))
		}
	}
	if len(failures) > 0 {
		reportFailures(stdout, stderr, failures)
		return 1
	}
	return 0
}

// reportFailures prints the failure report — one entry per failed cell
// with its full diagnostic — to stdout after the tables, and the
// captured stacks to stderr (they are debugging detail, not results).
func reportFailures(stdout, stderr io.Writer, failures []experiments.CellFailure) {
	fmt.Fprintf(stdout, "FAILURE REPORT: %d failed\n", len(failures))
	for _, f := range failures {
		fmt.Fprintf(stdout, "  %s: %s\n", f.Key, indentLines(f.Diagnostic))
		if f.Stack != "" {
			fmt.Fprintf(stderr, "--- stack for %s ---\n%s\n", f.Key, f.Stack)
		}
	}
}

// firstLine truncates a multi-line diagnostic for the inline ERR line.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// indentLines keeps a multi-line diagnostic aligned under its report
// entry.
func indentLines(s string) string {
	return strings.ReplaceAll(s, "\n", "\n    ")
}
