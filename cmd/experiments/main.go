// Command experiments regenerates the paper's evaluation tables and
// figures. Run with -exp all (default) or a comma-separated subset:
//
//	experiments -exp table1,fig5,fig10 -instr 3000000
//
// The requested experiments first declare every (design, workload)
// simulation they need; a bounded worker pool (-parallel, default one
// worker per CPU) runs those cells concurrently, then the tables are
// rendered in fixed order from the completed cache. Tables go to
// stdout; per-cell progress and timing go to stderr, so stdout is
// byte-identical at any -parallel level (see docs/PARALLEL.md).
//
// With -isolate each cell runs in a supervised worker subprocess
// (docs/ROBUSTNESS.md): a crashed or hung worker is killed and retried
// (-retries, -cell-timeout) with seeded exponential backoff, and
// completed cells are cached in a durable checksummed result store
// (-store DIR / -no-store) so re-running an interrupted sweep is
// incremental. Stdout stays byte-identical to an in-process run.
// -worker-cell is the internal worker mode the coordinator spawns; it
// speaks length-prefixed JSON on stdin/stdout and renders nothing.
//
// A failing simulation (watchdog abort, cycle-ceiling abort, invariant
// violation, worker crash after its retry budget) does not take down
// the run: the failed cells' experiments render as ERR lines, a
// failure report follows the tables, and the process exits 1.
// -failfast restores abort-on-first-failure; the -max-cycles ceiling
// bounds every simulation phase. Exit codes: 0 success, 1 cell or
// render failures, 2 usage errors, 3 worker-protocol errors (worker
// mode only).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"cmpnurapid/internal/experiments"
	"cmpnurapid/internal/farm"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/simguard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit code) made
// explicit so the CLI tests can drive it.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exps = fs.String("exp", "all", "comma-separated experiments, or all: "+
			strings.Join(experiments.ExperimentNames(), ", ")+
			" (ablations and sensitivity sweeps are opt-in, not part of all)")
		instr    = fs.Uint64("instr", 3_000_000, "measured instructions per core")
		warmup   = fs.Int("warmup", 5_000_000, "warm-up instructions per core")
		seed     = fs.Uint64("seed", 42, "workload seed")
		format   = fs.String("format", "text", "output format: text or csv")
		parallel = fs.Int("parallel", experiments.DefaultParallelism(),
			"max concurrent simulations (1 = sequential; output is identical either way)")
		quiet     = fs.Bool("quiet", false, "suppress per-cell progress lines on stderr")
		maxCycles = fs.Int64("max-cycles", 0,
			"hard clock ceiling per simulation phase in cycles (0 derives one from the instruction budget)")
		failFast = fs.Bool("failfast", false,
			"abort on the first failed simulation instead of running the remaining cells")
		isolate = fs.Bool("isolate", false,
			"run each cell in a supervised worker subprocess (crash isolation, retries, result store)")
		retries = fs.Int("retries", 2,
			"per-cell retry budget for crashed or timed-out workers (requires -isolate)")
		cellTimeout = fs.Duration("cell-timeout", 0,
			"per-attempt wall-clock ceiling for a worker, e.g. 2m (0 = none; requires -isolate)")
		storeDir = fs.String("store", "",
			"result-store directory (requires -isolate; default: the user cache dir, for versioned builds)")
		noStore = fs.Bool("no-store", false,
			"disable the result store (requires -isolate)")
		chaosKill = fs.Float64("chaos-kill-frac", 0,
			"chaos testing: SIGKILL this fraction of first worker attempts mid-cell (requires -isolate)")
		chaosStall = fs.Float64("chaos-stall-frac", 0,
			"chaos testing: stall this fraction of first worker attempts until -cell-timeout (requires -isolate)")
		workerCell = fs.String("worker-cell", "",
			"internal: run a single cell as a farm worker speaking frames on stdin/stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(stderr, "experiments: invalid -format %q (valid: text, csv)\n", *format)
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(stderr, "experiments: -parallel must be at least 1, got %d\n", *parallel)
		return 2
	}
	if *maxCycles < 0 {
		fmt.Fprintf(stderr, "experiments: -max-cycles must be non-negative, got %d\n", *maxCycles)
		return 2
	}
	if !*isolate && *workerCell == "" {
		// The farm flags only mean something when the farm runs; a flag
		// that silently does nothing would hide a misconfigured sweep.
		farmOnly := map[string]bool{
			"retries": true, "cell-timeout": true, "store": true,
			"no-store": true, "chaos-kill-frac": true, "chaos-stall-frac": true,
		}
		bad := ""
		fs.Visit(func(f *flag.Flag) {
			if farmOnly[f.Name] && bad == "" {
				bad = f.Name
			}
		})
		if bad != "" {
			fmt.Fprintf(stderr, "experiments: -%s requires -isolate\n", bad)
			return 2
		}
	}
	if *retries < 0 {
		fmt.Fprintf(stderr, "experiments: -retries must be non-negative, got %d\n", *retries)
		return 2
	}
	if *cellTimeout < 0 {
		fmt.Fprintf(stderr, "experiments: -cell-timeout must be non-negative, got %v\n", *cellTimeout)
		return 2
	}
	if *storeDir != "" && *noStore {
		fmt.Fprintln(stderr, "experiments: -store and -no-store are mutually exclusive")
		return 2
	}
	if *chaosKill < 0 || *chaosKill > 1 || *chaosStall < 0 || *chaosStall > 1 {
		fmt.Fprintln(stderr, "experiments: chaos fractions must be in [0, 1]")
		return 2
	}
	if *chaosStall > 0 && *cellTimeout == 0 {
		fmt.Fprintln(stderr, "experiments: -chaos-stall-frac requires a -cell-timeout to recover stalled workers")
		return 2
	}
	selected, err := experiments.Select(*exps)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 2
	}

	rc := experiments.RunConfig{
		WarmupInstr: *warmup, Instructions: *instr, Seed: *seed,
		MaxCycles: memsys.CyclesOf(int(*maxCycles)),
	}
	rc.Validate()

	if *workerCell != "" {
		return workerMain(*workerCell, rc, selected, stdin, stdout, stderr)
	}

	eval := experiments.NewEval(rc)

	// Phase 1: plan and execute every simulation cell concurrently —
	// in-process, or on the farm's worker subprocesses with -isolate.
	// Failing cells become CellFailures; the rest keep running.
	cells := experiments.Plan(selected, eval)
	start := time.Now()
	var progress experiments.Progress
	if !*quiet {
		progress = func(done, total int, key string, elapsed time.Duration) {
			fmt.Fprintf(stderr, "[%d/%d] %s (%v)\n", done, total, key, elapsed.Round(time.Millisecond))
		}
	}
	var failures []experiments.CellFailure
	if *isolate {
		sup, code := newSupervisor(farmOptions{
			exps: *exps, instr: *instr, warmup: *warmup, seed: *seed,
			maxCycles: memsys.CyclesOf(int(*maxCycles)), retries: *retries, timeout: *cellTimeout,
			storeDir: *storeDir, noStore: *noStore,
			chaosKill: *chaosKill, chaosStall: *chaosStall,
		}, rc, eval, stderr)
		if sup == nil {
			return code
		}
		failures = experiments.ExecuteCellsOn(sup, cells, *parallel, *failFast, progress)
		st := sup.Stats()
		fmt.Fprintf(stderr, "farm: %d cells: %d store hits, %d computed, %d retries, %d kills, %d timeouts, %d failed\n",
			st.Cells, st.StoreHits, st.Computed, st.Retries, st.KilledAttempts, st.Timeouts, st.Failed)
	} else {
		failures = experiments.ExecuteCells(cells, *parallel, *failFast, progress)
	}
	if !*quiet && len(cells) > 0 {
		fmt.Fprintf(stderr, "%d simulations in %v (-parallel %d)\n",
			len(cells), time.Since(start).Round(time.Millisecond), *parallel)
	}
	if *failFast && len(failures) > 0 {
		reportFailures(stdout, stderr, failures)
		return 1
	}

	// Phase 2: render from the warm cache in registry order. An
	// experiment whose cells are poisoned renders as an ERR line; the
	// healthy experiments still print in full.
	reported := map[string]bool{}
	for _, f := range failures {
		reported[f.Diagnostic] = true
	}
	for _, ex := range selected {
		t0 := time.Now()
		var rendered string
		f := experiments.CapturePanic(ex.Name, func() {
			switch {
			case ex.Table != nil:
				t := ex.Table(eval)
				if *format == "csv" {
					rendered = t.CSV()
				} else {
					rendered = t.String()
				}
			default:
				rendered = ex.Text(eval)
			}
		})
		if f != nil {
			fmt.Fprintf(stdout, "ERR %s: %s\n\n", ex.Name, firstLine(f.Diagnostic))
			// A render failure caused by an already-reported cell
			// failure carries the same diagnostic; only new ones add to
			// the report.
			if !reported[f.Diagnostic] {
				reported[f.Diagnostic] = true
				failures = append(failures, *f)
			}
		} else {
			fmt.Fprintln(stdout, rendered)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "[%s rendered in %v]\n", ex.Name, time.Since(t0).Round(time.Millisecond))
		}
	}
	if len(failures) > 0 {
		reportFailures(stdout, stderr, failures)
		return 1
	}
	return 0
}

// farmOptions carries the flag values the supervisor needs.
type farmOptions struct {
	exps                  string
	instr                 uint64
	warmup                int
	seed                  uint64
	maxCycles             memsys.Cycles
	retries               int
	timeout               time.Duration
	storeDir              string
	noStore               bool
	chaosKill, chaosStall float64
}

// newSupervisor builds the farm supervisor for this run: the result
// store (unless disabled), the worker command line, and the chaos
// injectors. A nil supervisor means a usage-level failure; the second
// return is the exit code.
func newSupervisor(o farmOptions, rc experiments.RunConfig, eval *experiments.Eval, stderr io.Writer) (*farm.Supervisor, int) {
	var store *farm.Store
	if !o.noStore {
		dir, version := o.storeDir, farm.CodeVersion()
		switch {
		case dir != "":
			// An explicit -store must work or the run is misconfigured.
		case version == "unversioned":
			// Default store + unversioned build (go run, test binaries)
			// would serve stale results across code edits; force the
			// caller to opt in with an explicit directory.
			fmt.Fprintln(stderr, "farm: result store disabled for unversioned build (pass -store DIR to force)")
		default:
			d, err := farm.DefaultStoreDir()
			if err != nil {
				fmt.Fprintf(stderr, "farm: result store disabled: %v\n", err)
			} else {
				dir = d
			}
		}
		if dir != "" {
			s, err := farm.OpenStore(dir, rc.Digest(), version)
			if err != nil {
				fmt.Fprintln(stderr, "experiments:", err)
				return nil, 2
			}
			store = s
		}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "experiments: cannot locate own binary for -isolate: %v\n", err)
		return nil, 2
	}
	fixed := []string{
		"-exp", o.exps,
		"-instr", fmt.Sprint(o.instr),
		"-warmup", fmt.Sprint(o.warmup),
		"-seed", fmt.Sprint(o.seed),
		"-max-cycles", fmt.Sprint(int64(o.maxCycles)),
	}
	var kill, stall func(key string, attempt int) bool
	if o.chaosKill > 0 {
		kill = simguard.WorkerKill(o.seed, o.chaosKill)
	}
	if o.chaosStall > 0 {
		stall = simguard.WorkerStall(o.seed, o.chaosStall)
	}
	return farm.New(farm.Config{
		Retries: o.retries,
		Timeout: o.timeout,
		Seed:    o.seed,
		Store:   store,
		NewWorkerCmd: func(key string) *exec.Cmd {
			// -worker-cell first: the test binary's TestMain dispatches
			// on it before the testing framework parses flags.
			return exec.Command(exe, append([]string{"-worker-cell", key}, fixed...)...)
		},
		Install: func(_ string, payload []byte) error { return eval.ImportPayload(payload) },
		Fail:    eval.InstallFailure,
		Log:     stderr,
		Kill:    kill,
		Stall:   stall,
	}), 0
}

// workerMain is the farm worker mode: read one request frame from
// stdin, run the named cell, answer with one response frame — a
// serialized result payload or a structured failure — and exit.
// Nothing else is written to stdout. Exit 0 means a frame was written
// (even for a failed cell: that failure is data, not a crash); exit 3
// means the protocol itself broke.
func workerMain(key string, rc experiments.RunConfig, selected []experiments.Experiment, stdin io.Reader, stdout, stderr io.Writer) int {
	var req farm.Request
	if err := farm.ReadFrame(stdin, &req); err != nil {
		fmt.Fprintln(stderr, "experiments: worker:", err)
		return 3
	}
	if req.Key != key {
		fmt.Fprintf(stderr, "experiments: worker for %q got request for %q\n", key, req.Key)
		return 3
	}
	if req.Stall {
		// Injected stall (simguard.WorkerStall): hang mid-cell until
		// the coordinator's -cell-timeout kills us.
		for {
			time.Sleep(time.Hour)
		}
	}
	eval := experiments.NewEval(rc)
	resp := farm.Response{Key: key}
	var cell *experiments.Cell
	for _, c := range experiments.Plan(selected, eval) {
		if c.Key == key {
			cell = &c
			break
		}
	}
	if cell == nil {
		resp.Failure = &farm.Failure{
			Diagnostic: fmt.Sprintf("experiments: worker: no cell %q in this selection", key),
		}
	} else if f := experiments.CapturePanic(key, cell.Run); f != nil {
		resp.Failure = &farm.Failure{Diagnostic: f.Diagnostic, Stack: f.Stack}
	} else if payload, err := eval.ExportPayload(); err != nil {
		resp.Failure = &farm.Failure{Diagnostic: err.Error()}
	} else {
		resp.Payload = payload
	}
	if err := farm.WriteFrame(stdout, resp); err != nil {
		fmt.Fprintln(stderr, "experiments: worker:", err)
		return 3
	}
	return 0
}

// reportFailures prints the failure report — one entry per failed cell
// with its full diagnostic — to stdout after the tables, and the
// captured stacks to stderr (they are debugging detail, not results).
func reportFailures(stdout, stderr io.Writer, failures []experiments.CellFailure) {
	fmt.Fprintf(stdout, "FAILURE REPORT: %d failed\n", len(failures))
	for _, f := range failures {
		fmt.Fprintf(stdout, "  %s: %s\n", f.Key, indentLines(f.Diagnostic))
		if f.Stack != "" {
			fmt.Fprintf(stderr, "--- stack for %s ---\n%s\n", f.Key, f.Stack)
		}
	}
}

// firstLine truncates a multi-line diagnostic for the inline ERR line.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// indentLines keeps a multi-line diagnostic aligned under its report
// entry.
func indentLines(s string) string {
	return strings.ReplaceAll(s, "\n", "\n    ")
}
