// Command experiments regenerates the paper's evaluation tables and
// figures. Run with -exp all (default) or a comma-separated subset:
//
//	experiments -exp table1,fig5,fig10 -instr 3000000
//
// The requested experiments first declare every (design, workload)
// simulation they need; a bounded worker pool (-parallel, default one
// worker per CPU) runs those cells concurrently, then the tables are
// rendered in fixed order from the completed cache. Tables go to
// stdout; per-cell progress and timing go to stderr, so stdout is
// byte-identical at any -parallel level (see docs/PARALLEL.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cmpnurapid/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit code) made
// explicit so the CLI tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exps = fs.String("exp", "all", "comma-separated experiments, or all: "+
			strings.Join(experiments.ExperimentNames(), ", ")+
			" (ablations and sensitivity sweeps are opt-in, not part of all)")
		instr    = fs.Uint64("instr", 3_000_000, "measured instructions per core")
		warmup   = fs.Int("warmup", 5_000_000, "warm-up instructions per core")
		seed     = fs.Uint64("seed", 42, "workload seed")
		format   = fs.String("format", "text", "output format: text or csv")
		parallel = fs.Int("parallel", experiments.DefaultParallelism(),
			"max concurrent simulations (1 = sequential; output is identical either way)")
		quiet = fs.Bool("quiet", false, "suppress per-cell progress lines on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(stderr, "experiments: invalid -format %q (valid: text, csv)\n", *format)
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(stderr, "experiments: -parallel must be at least 1, got %d\n", *parallel)
		return 2
	}
	selected, err := experiments.Select(*exps)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 2
	}

	rc := experiments.RunConfig{WarmupInstr: *warmup, Instructions: *instr, Seed: *seed}
	rc.Validate()
	eval := experiments.NewEval(rc)

	// Phase 1: plan and execute every simulation cell concurrently.
	cells := experiments.Plan(selected, eval)
	start := time.Now()
	var progress experiments.Progress
	if !*quiet {
		progress = func(done, total int, key string, elapsed time.Duration) {
			fmt.Fprintf(stderr, "[%d/%d] %s (%v)\n", done, total, key, elapsed.Round(time.Millisecond))
		}
	}
	experiments.ExecuteCells(cells, *parallel, progress)
	if !*quiet && len(cells) > 0 {
		fmt.Fprintf(stderr, "%d simulations in %v (-parallel %d)\n",
			len(cells), time.Since(start).Round(time.Millisecond), *parallel)
	}

	// Phase 2: render from the warm cache in registry order.
	for _, ex := range selected {
		t0 := time.Now()
		switch {
		case ex.Table != nil:
			t := ex.Table(eval)
			if *format == "csv" {
				fmt.Fprintln(stdout, t.CSV())
			} else {
				fmt.Fprintln(stdout, t.String())
			}
		default:
			fmt.Fprintln(stdout, ex.Text(eval))
		}
		if !*quiet {
			fmt.Fprintf(stderr, "[%s rendered in %v]\n", ex.Name, time.Since(t0).Round(time.Millisecond))
		}
	}
	return 0
}
