package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

// TestUnknownExperimentExitsNonZero covers the bug this PR fixes: a
// typo like -exp fig13 used to print nothing and exit 0.
func TestUnknownExperimentExitsNonZero(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-exp", "fig13")
	if code == 0 {
		t.Fatal("-exp fig13 exited 0")
	}
	if stdout != "" {
		t.Errorf("unexpected stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "fig13") {
		t.Errorf("stderr does not name the unknown experiment: %q", stderr)
	}
	for _, want := range []string{"fig5", "table1", "abl-promotion"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr does not list valid name %s: %q", want, stderr)
		}
	}
}

// TestEmptySelectionExitsNonZero: strings.Split("", ",") returns [""],
// so the old len(want)==0 guard was dead code and -exp "" fell through
// silently.
func TestEmptySelectionExitsNonZero(t *testing.T) {
	for _, spec := range []string{"", " ", ","} {
		_, stderr, code := runCLI(t, "-exp", spec)
		if code == 0 {
			t.Errorf("-exp %q exited 0", spec)
		}
		if !strings.Contains(stderr, "valid names") {
			t.Errorf("-exp %q: stderr does not list valid names: %q", spec, stderr)
		}
	}
}

// TestInvalidFormatRejected: -format used to accept any string and
// silently fall back to text.
func TestInvalidFormatRejected(t *testing.T) {
	_, stderr, code := runCLI(t, "-format", "yaml", "-exp", "table1")
	if code == 0 {
		t.Fatal("-format yaml exited 0")
	}
	if !strings.Contains(stderr, "yaml") || !strings.Contains(stderr, "csv") {
		t.Errorf("stderr does not explain valid formats: %q", stderr)
	}
}

func TestInvalidParallelRejected(t *testing.T) {
	_, stderr, code := runCLI(t, "-parallel", "0", "-exp", "table1")
	if code == 0 {
		t.Fatal("-parallel 0 exited 0")
	}
	if !strings.Contains(stderr, "parallel") {
		t.Errorf("stderr does not mention -parallel: %q", stderr)
	}
}

// TestParallelOutputMatchesSequential is the scheduler's end-to-end
// determinism contract at the CLI surface: the same selection at
// -parallel 1 and -parallel 8 must write byte-identical stdout. Runs
// at tiny scale so the race-short gate exercises the concurrent path.
func TestParallelOutputMatchesSequential(t *testing.T) {
	args := []string{"-exp", "table1,table3,fig7", "-warmup", "30000", "-instr", "30000", "-quiet"}
	seqOut, _, seqCode := runCLI(t, append(args, "-parallel", "1")...)
	parOut, _, parCode := runCLI(t, append(args, "-parallel", "8")...)
	if seqCode != 0 || parCode != 0 {
		t.Fatalf("exit codes: sequential %d, parallel %d", seqCode, parCode)
	}
	if seqOut != parOut {
		t.Errorf("parallel stdout differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}
	if !strings.Contains(seqOut, "Figure 7") || !strings.Contains(seqOut, "Table 3") {
		t.Errorf("selection did not render the requested tables:\n%s", seqOut)
	}
}

// TestProgressOnStderr: cell progress and render timings go to stderr,
// never stdout (stdout must stay byte-identical across -parallel).
func TestProgressOnStderr(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-exp", "fig7", "-warmup", "20000", "-instr", "20000", "-parallel", "4")
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "[1/") || !strings.Contains(stderr, "rendered in") {
		t.Errorf("stderr missing progress lines: %q", stderr)
	}
	if strings.Contains(stdout, "rendered in") || strings.Contains(stdout, "[1/") {
		t.Error("progress leaked onto stdout")
	}
}

// TestCSVFormat: -format csv renders tables as CSV on stdout.
func TestCSVFormat(t *testing.T) {
	stdout, _, code := runCLI(t, "-exp", "table1", "-format", "csv", "-quiet")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(stdout, ",") || !strings.Contains(stdout, "Latency") {
		t.Errorf("csv output suspicious:\n%s", stdout)
	}
}

// TestNegativeMaxCyclesIsUsageError: flag validation failures are
// usage errors (exit 2), distinct from cell failures (exit 1).
func TestNegativeMaxCyclesIsUsageError(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-max-cycles", "-1", "-exp", "table1")
	if code != 2 {
		t.Fatalf("-max-cycles -1 exited %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("usage error wrote to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "max-cycles") {
		t.Errorf("stderr does not name the bad flag: %q", stderr)
	}
}

// TestCellFailureStillRendersOthers is the graceful-degradation
// contract: a tiny -max-cycles ceiling fails every fig7 simulation,
// but table1 (a static table with no cells) must still render, the
// failed experiment must show an ERR line plus a failure report on
// stdout, the stacks must land on stderr, and the exit code must be 1.
func TestCellFailureStillRendersOthers(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-exp", "table1,fig7", "-warmup", "500", "-instr", "500",
		"-max-cycles", "500", "-quiet")
	if code != 1 {
		t.Fatalf("run with failing cells exited %d, want 1", code)
	}
	if !strings.Contains(stdout, "Table 1") {
		t.Errorf("healthy table1 did not render:\n%s", stdout)
	}
	if !strings.Contains(stdout, "ERR fig7:") {
		t.Errorf("failed experiment missing its ERR line:\n%s", stdout)
	}
	if strings.Contains(stdout, "Figure 7") {
		t.Error("failed fig7 rendered a table anyway")
	}
	if !strings.Contains(stdout, "FAILURE REPORT:") ||
		!strings.Contains(stdout, "simguard: cycle limit exceeded") {
		t.Errorf("failure report missing or unstructured:\n%s", stdout)
	}
	if !strings.Contains(stdout, "explicit MaxCycles") {
		t.Errorf("diagnostic does not attribute the explicit ceiling:\n%s", stdout)
	}
	if !strings.Contains(stderr, "--- stack for ") ||
		!strings.Contains(stderr, "cmpsim") {
		t.Errorf("stacks missing from stderr:\n%s", stderr)
	}
}

// TestFailFastAbortsBeforeRendering: -failfast restores the old
// abort-on-first-failure behaviour — no tables render at all.
func TestFailFastAbortsBeforeRendering(t *testing.T) {
	stdout, _, code := runCLI(t,
		"-exp", "table1,fig7", "-warmup", "500", "-instr", "500",
		"-max-cycles", "500", "-failfast", "-quiet")
	if code != 1 {
		t.Fatalf("failfast run exited %d, want 1", code)
	}
	if strings.Contains(stdout, "Table 1") {
		t.Errorf("failfast rendered tables after a failure:\n%s", stdout)
	}
	if !strings.Contains(stdout, "FAILURE REPORT:") {
		t.Errorf("failfast run missing failure report:\n%s", stdout)
	}
}

// TestMaxCyclesHeadroomIsHarmless: a generous explicit ceiling leaves
// a healthy run untouched — same bytes as no ceiling at all.
func TestMaxCyclesHeadroomIsHarmless(t *testing.T) {
	args := []string{"-exp", "table1", "-quiet"}
	plain, _, c1 := runCLI(t, args...)
	capped, _, c2 := runCLI(t, append(args, "-max-cycles", "1000000000")...)
	if c1 != 0 || c2 != 0 {
		t.Fatalf("exit codes %d, %d", c1, c2)
	}
	if plain != capped {
		t.Error("a non-binding -max-cycles changed the output")
	}
}
