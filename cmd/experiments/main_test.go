package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain doubles this test binary as the farm worker: -isolate runs
// spawn os.Executable() with -worker-cell as the first argument, which
// in tests is this binary. Dispatching before m.Run keeps the testing
// framework's own flag parsing out of the worker's way.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "-worker-cell" {
		os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, strings.NewReader(""), &out, &errOut)
	return out.String(), errOut.String(), code
}

// TestUnknownExperimentExitsNonZero covers the bug this PR fixes: a
// typo like -exp fig13 used to print nothing and exit 0.
func TestUnknownExperimentExitsNonZero(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-exp", "fig13")
	if code == 0 {
		t.Fatal("-exp fig13 exited 0")
	}
	if stdout != "" {
		t.Errorf("unexpected stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "fig13") {
		t.Errorf("stderr does not name the unknown experiment: %q", stderr)
	}
	for _, want := range []string{"fig5", "table1", "abl-promotion"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr does not list valid name %s: %q", want, stderr)
		}
	}
}

// TestEmptySelectionExitsNonZero: strings.Split("", ",") returns [""],
// so the old len(want)==0 guard was dead code and -exp "" fell through
// silently.
func TestEmptySelectionExitsNonZero(t *testing.T) {
	for _, spec := range []string{"", " ", ","} {
		_, stderr, code := runCLI(t, "-exp", spec)
		if code == 0 {
			t.Errorf("-exp %q exited 0", spec)
		}
		if !strings.Contains(stderr, "valid names") {
			t.Errorf("-exp %q: stderr does not list valid names: %q", spec, stderr)
		}
	}
}

// TestInvalidFormatRejected: -format used to accept any string and
// silently fall back to text.
func TestInvalidFormatRejected(t *testing.T) {
	_, stderr, code := runCLI(t, "-format", "yaml", "-exp", "table1")
	if code == 0 {
		t.Fatal("-format yaml exited 0")
	}
	if !strings.Contains(stderr, "yaml") || !strings.Contains(stderr, "csv") {
		t.Errorf("stderr does not explain valid formats: %q", stderr)
	}
}

func TestInvalidParallelRejected(t *testing.T) {
	_, stderr, code := runCLI(t, "-parallel", "0", "-exp", "table1")
	if code == 0 {
		t.Fatal("-parallel 0 exited 0")
	}
	if !strings.Contains(stderr, "parallel") {
		t.Errorf("stderr does not mention -parallel: %q", stderr)
	}
}

// TestParallelOutputMatchesSequential is the scheduler's end-to-end
// determinism contract at the CLI surface: the same selection at
// -parallel 1 and -parallel 8 must write byte-identical stdout. Runs
// at tiny scale so the race-short gate exercises the concurrent path.
func TestParallelOutputMatchesSequential(t *testing.T) {
	args := []string{"-exp", "table1,table3,fig7", "-warmup", "30000", "-instr", "30000", "-quiet"}
	seqOut, _, seqCode := runCLI(t, append(args, "-parallel", "1")...)
	parOut, _, parCode := runCLI(t, append(args, "-parallel", "8")...)
	if seqCode != 0 || parCode != 0 {
		t.Fatalf("exit codes: sequential %d, parallel %d", seqCode, parCode)
	}
	if seqOut != parOut {
		t.Errorf("parallel stdout differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}
	if !strings.Contains(seqOut, "Figure 7") || !strings.Contains(seqOut, "Table 3") {
		t.Errorf("selection did not render the requested tables:\n%s", seqOut)
	}
}

// TestProgressOnStderr: cell progress and render timings go to stderr,
// never stdout (stdout must stay byte-identical across -parallel).
func TestProgressOnStderr(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-exp", "fig7", "-warmup", "20000", "-instr", "20000", "-parallel", "4")
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "[1/") || !strings.Contains(stderr, "rendered in") {
		t.Errorf("stderr missing progress lines: %q", stderr)
	}
	if strings.Contains(stdout, "rendered in") || strings.Contains(stdout, "[1/") {
		t.Error("progress leaked onto stdout")
	}
}

// TestCSVFormat: -format csv renders tables as CSV on stdout.
func TestCSVFormat(t *testing.T) {
	stdout, _, code := runCLI(t, "-exp", "table1", "-format", "csv", "-quiet")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(stdout, ",") || !strings.Contains(stdout, "Latency") {
		t.Errorf("csv output suspicious:\n%s", stdout)
	}
}

// TestNegativeMaxCyclesIsUsageError: flag validation failures are
// usage errors (exit 2), distinct from cell failures (exit 1).
func TestNegativeMaxCyclesIsUsageError(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-max-cycles", "-1", "-exp", "table1")
	if code != 2 {
		t.Fatalf("-max-cycles -1 exited %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("usage error wrote to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "max-cycles") {
		t.Errorf("stderr does not name the bad flag: %q", stderr)
	}
}

// TestCellFailureStillRendersOthers is the graceful-degradation
// contract: a tiny -max-cycles ceiling fails every fig7 simulation,
// but table1 (a static table with no cells) must still render, the
// failed experiment must show an ERR line plus a failure report on
// stdout, the stacks must land on stderr, and the exit code must be 1.
func TestCellFailureStillRendersOthers(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-exp", "table1,fig7", "-warmup", "500", "-instr", "500",
		"-max-cycles", "500", "-quiet")
	if code != 1 {
		t.Fatalf("run with failing cells exited %d, want 1", code)
	}
	if !strings.Contains(stdout, "Table 1") {
		t.Errorf("healthy table1 did not render:\n%s", stdout)
	}
	if !strings.Contains(stdout, "ERR fig7:") {
		t.Errorf("failed experiment missing its ERR line:\n%s", stdout)
	}
	if strings.Contains(stdout, "Figure 7") {
		t.Error("failed fig7 rendered a table anyway")
	}
	if !strings.Contains(stdout, "FAILURE REPORT:") ||
		!strings.Contains(stdout, "simguard: cycle limit exceeded") {
		t.Errorf("failure report missing or unstructured:\n%s", stdout)
	}
	if !strings.Contains(stdout, "explicit MaxCycles") {
		t.Errorf("diagnostic does not attribute the explicit ceiling:\n%s", stdout)
	}
	if !strings.Contains(stderr, "--- stack for ") ||
		!strings.Contains(stderr, "cmpsim") {
		t.Errorf("stacks missing from stderr:\n%s", stderr)
	}
}

// TestFailFastAbortsBeforeRendering: -failfast restores the old
// abort-on-first-failure behaviour — no tables render at all.
func TestFailFastAbortsBeforeRendering(t *testing.T) {
	stdout, _, code := runCLI(t,
		"-exp", "table1,fig7", "-warmup", "500", "-instr", "500",
		"-max-cycles", "500", "-failfast", "-quiet")
	if code != 1 {
		t.Fatalf("failfast run exited %d, want 1", code)
	}
	if strings.Contains(stdout, "Table 1") {
		t.Errorf("failfast rendered tables after a failure:\n%s", stdout)
	}
	if !strings.Contains(stdout, "FAILURE REPORT:") {
		t.Errorf("failfast run missing failure report:\n%s", stdout)
	}
}

// TestMaxCyclesHeadroomIsHarmless: a generous explicit ceiling leaves
// a healthy run untouched — same bytes as no ceiling at all.
func TestMaxCyclesHeadroomIsHarmless(t *testing.T) {
	args := []string{"-exp", "table1", "-quiet"}
	plain, _, c1 := runCLI(t, args...)
	capped, _, c2 := runCLI(t, append(args, "-max-cycles", "1000000000")...)
	if c1 != 0 || c2 != 0 {
		t.Fatalf("exit codes %d, %d", c1, c2)
	}
	if plain != capped {
		t.Error("a non-binding -max-cycles changed the output")
	}
}

// tinyArgs is the shared tiny-scale selection the farm CLI tests run:
// a static table, a derived table, and a figure with simulation cells,
// small enough that a worker subprocess finishes in well under a
// second.
var tinyArgs = []string{"-exp", "table1,table3,fig7", "-warmup", "30000", "-instr", "30000", "-quiet"}

// TestIsolateMatchesInProcess is the farm's core contract at the CLI
// surface: -isolate routes every cell through worker subprocesses and
// the serialization codec, yet stdout must be byte-identical to the
// in-process run.
func TestIsolateMatchesInProcess(t *testing.T) {
	inOut, _, inCode := runCLI(t, append(tinyArgs, "-parallel", "4")...)
	isoOut, isoErr, isoCode := runCLI(t, append(tinyArgs, "-parallel", "4", "-isolate", "-no-store")...)
	if inCode != 0 || isoCode != 0 {
		t.Fatalf("exit codes: in-process %d, isolate %d\nisolate stderr: %s", inCode, isoCode, isoErr)
	}
	if inOut != isoOut {
		t.Errorf("-isolate stdout differs from in-process:\n--- in-process ---\n%s\n--- isolate ---\n%s", inOut, isoOut)
	}
	if !strings.Contains(isoErr, "farm: ") {
		t.Errorf("isolate run missing farm summary on stderr: %q", isoErr)
	}
}

// TestIsolateChaosKillStillCompletes: with every first worker attempt
// SIGKILLed mid-cell, the retries must carry the sweep to exit 0 with
// stdout byte-identical to an undisturbed in-process run.
func TestIsolateChaosKillStillCompletes(t *testing.T) {
	inOut, _, inCode := runCLI(t, append(tinyArgs, "-parallel", "4")...)
	isoOut, isoErr, isoCode := runCLI(t, append(tinyArgs,
		"-parallel", "4", "-isolate", "-no-store", "-chaos-kill-frac", "1", "-retries", "3")...)
	if inCode != 0 || isoCode != 0 {
		t.Fatalf("exit codes: in-process %d, chaos %d\nchaos stderr: %s", inCode, isoCode, isoErr)
	}
	if inOut != isoOut {
		t.Errorf("chaos-kill stdout differs from in-process:\n--- in-process ---\n%s\n--- chaos ---\n%s", inOut, isoOut)
	}
}

// TestIsolateRetriesZeroSurfacesCrash: with the retry budget at zero, a
// killed worker's crash is a permanent CellFailure — reported on stdout
// with the farm's give-up diagnostic and exit 1, while cell-free
// experiments still render.
func TestIsolateRetriesZeroSurfacesCrash(t *testing.T) {
	stdout, stderr, code := runCLI(t, append(tinyArgs,
		"-isolate", "-no-store", "-chaos-kill-frac", "1", "-retries", "0")...)
	if code != 1 {
		t.Fatalf("chaos run with -retries 0 exited %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "FAILURE REPORT:") ||
		!strings.Contains(stdout, "gave up after 1 attempt") {
		t.Errorf("failure report missing the farm give-up diagnostic:\n%s", stdout)
	}
	if !strings.Contains(stdout, "Table 1") {
		t.Errorf("cell-free table1 did not render despite worker crashes:\n%s", stdout)
	}
}

// TestStoreResumeServesHitsByteIdentically: an -isolate sweep populates
// the store; rerunning it recomputes nothing, reports store hits, and
// writes the same bytes.
func TestStoreResumeServesHitsByteIdentically(t *testing.T) {
	dir := t.TempDir()
	args := append(tinyArgs, "-isolate", "-store", dir)
	out1, err1, code1 := runCLI(t, args...)
	if code1 != 0 {
		t.Fatalf("first run exited %d\nstderr: %s", code1, err1)
	}
	if !strings.Contains(err1, ": 0 store hits") {
		t.Errorf("first run against an empty store reported hits: %q", err1)
	}
	out2, err2, code2 := runCLI(t, args...)
	if code2 != 0 {
		t.Fatalf("resumed run exited %d\nstderr: %s", code2, err2)
	}
	if strings.Contains(err2, ": 0 store hits") || !strings.Contains(err2, "store hits") {
		t.Errorf("resumed run served no store hits: %q", err2)
	}
	if !strings.Contains(err2, " 0 computed") {
		t.Errorf("resumed run recomputed cells despite a warm store: %q", err2)
	}
	if out1 != out2 {
		t.Errorf("store-served stdout differs from computed stdout:\n--- computed ---\n%s\n--- store ---\n%s", out1, out2)
	}
	// The store must never retain a partial entry under a temp name.
	tmps, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil || len(tmps) != 0 {
		t.Errorf("store left temp files behind: %v (err %v)", tmps, err)
	}
}

// TestFarmFlagValidation: farm flags outside -isolate, malformed
// -cell-timeout values, and inconsistent combinations are usage errors
// (exit 2) that name the offending flag.
func TestFarmFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"retries without isolate", []string{"-retries", "1", "-exp", "table1"}, "requires -isolate"},
		{"store without isolate", []string{"-store", "/tmp/x", "-exp", "table1"}, "requires -isolate"},
		{"chaos without isolate", []string{"-chaos-kill-frac", "0.5", "-exp", "table1"}, "requires -isolate"},
		{"unparsable cell-timeout", []string{"-isolate", "-cell-timeout", "banana", "-exp", "table1"}, "cell-timeout"},
		{"negative cell-timeout", []string{"-isolate", "-cell-timeout", "-5s", "-exp", "table1"}, "cell-timeout"},
		{"negative retries", []string{"-isolate", "-retries", "-1", "-exp", "table1"}, "retries"},
		{"store and no-store", []string{"-isolate", "-store", "/tmp/x", "-no-store", "-exp", "table1"}, "mutually exclusive"},
		{"chaos frac out of range", []string{"-isolate", "-chaos-kill-frac", "1.5", "-exp", "table1"}, "[0, 1]"},
		{"stall without timeout", []string{"-isolate", "-chaos-stall-frac", "0.5", "-exp", "table1"}, "cell-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exited %d, want 2\nstderr: %s", code, stderr)
			}
			if stdout != "" {
				t.Errorf("usage error wrote to stdout: %q", stdout)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr %q does not contain %q", stderr, tc.want)
			}
		})
	}
}

// TestWorkerModeProtocolErrorExitsThree: a worker whose stdin carries
// no valid request frame must not pretend to have run a cell — it
// reports the protocol error on stderr and exits 3.
func TestWorkerModeProtocolErrorExitsThree(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-worker-cell", "nosuch", "-exp", "table1"},
		strings.NewReader("this is not a frame"), &out, &errOut)
	if code != 3 {
		t.Fatalf("worker with garbage stdin exited %d, want 3\nstderr: %s", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("worker wrote to stdout despite protocol error: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "worker") {
		t.Errorf("stderr does not identify the worker failure: %q", errOut.String())
	}
}

// TestIsolateSeedSensitivityCells: sens-seed plans seed-namespaced
// cells that fill sub-evaluation caches; the worker payload path must
// route them back so the sensitivity text renders identically.
func TestIsolateSeedSensitivityCells(t *testing.T) {
	args := []string{"-exp", "sens-seed", "-warmup", "20000", "-instr", "20000", "-quiet"}
	inOut, _, inCode := runCLI(t, args...)
	isoOut, isoErr, isoCode := runCLI(t, append(args, "-isolate", "-no-store", "-parallel", "4")...)
	if inCode != 0 || isoCode != 0 {
		t.Fatalf("exit codes: in-process %d, isolate %d\nstderr: %s", inCode, isoCode, isoErr)
	}
	if inOut != isoOut {
		t.Errorf("seed-sensitivity stdout differs under -isolate:\n--- in-process ---\n%s\n--- isolate ---\n%s", inOut, isoOut)
	}
}
