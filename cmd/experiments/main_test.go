package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

// TestUnknownExperimentExitsNonZero covers the bug this PR fixes: a
// typo like -exp fig13 used to print nothing and exit 0.
func TestUnknownExperimentExitsNonZero(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-exp", "fig13")
	if code == 0 {
		t.Fatal("-exp fig13 exited 0")
	}
	if stdout != "" {
		t.Errorf("unexpected stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "fig13") {
		t.Errorf("stderr does not name the unknown experiment: %q", stderr)
	}
	for _, want := range []string{"fig5", "table1", "abl-promotion"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr does not list valid name %s: %q", want, stderr)
		}
	}
}

// TestEmptySelectionExitsNonZero: strings.Split("", ",") returns [""],
// so the old len(want)==0 guard was dead code and -exp "" fell through
// silently.
func TestEmptySelectionExitsNonZero(t *testing.T) {
	for _, spec := range []string{"", " ", ","} {
		_, stderr, code := runCLI(t, "-exp", spec)
		if code == 0 {
			t.Errorf("-exp %q exited 0", spec)
		}
		if !strings.Contains(stderr, "valid names") {
			t.Errorf("-exp %q: stderr does not list valid names: %q", spec, stderr)
		}
	}
}

// TestInvalidFormatRejected: -format used to accept any string and
// silently fall back to text.
func TestInvalidFormatRejected(t *testing.T) {
	_, stderr, code := runCLI(t, "-format", "yaml", "-exp", "table1")
	if code == 0 {
		t.Fatal("-format yaml exited 0")
	}
	if !strings.Contains(stderr, "yaml") || !strings.Contains(stderr, "csv") {
		t.Errorf("stderr does not explain valid formats: %q", stderr)
	}
}

func TestInvalidParallelRejected(t *testing.T) {
	_, stderr, code := runCLI(t, "-parallel", "0", "-exp", "table1")
	if code == 0 {
		t.Fatal("-parallel 0 exited 0")
	}
	if !strings.Contains(stderr, "parallel") {
		t.Errorf("stderr does not mention -parallel: %q", stderr)
	}
}

// TestParallelOutputMatchesSequential is the scheduler's end-to-end
// determinism contract at the CLI surface: the same selection at
// -parallel 1 and -parallel 8 must write byte-identical stdout. Runs
// at tiny scale so the race-short gate exercises the concurrent path.
func TestParallelOutputMatchesSequential(t *testing.T) {
	args := []string{"-exp", "table1,table3,fig7", "-warmup", "30000", "-instr", "30000", "-quiet"}
	seqOut, _, seqCode := runCLI(t, append(args, "-parallel", "1")...)
	parOut, _, parCode := runCLI(t, append(args, "-parallel", "8")...)
	if seqCode != 0 || parCode != 0 {
		t.Fatalf("exit codes: sequential %d, parallel %d", seqCode, parCode)
	}
	if seqOut != parOut {
		t.Errorf("parallel stdout differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}
	if !strings.Contains(seqOut, "Figure 7") || !strings.Contains(seqOut, "Table 3") {
		t.Errorf("selection did not render the requested tables:\n%s", seqOut)
	}
}

// TestProgressOnStderr: cell progress and render timings go to stderr,
// never stdout (stdout must stay byte-identical across -parallel).
func TestProgressOnStderr(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-exp", "fig7", "-warmup", "20000", "-instr", "20000", "-parallel", "4")
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "[1/") || !strings.Contains(stderr, "rendered in") {
		t.Errorf("stderr missing progress lines: %q", stderr)
	}
	if strings.Contains(stdout, "rendered in") || strings.Contains(stdout, "[1/") {
		t.Error("progress leaked onto stdout")
	}
}

// TestCSVFormat: -format csv renders tables as CSV on stdout.
func TestCSVFormat(t *testing.T) {
	stdout, _, code := runCLI(t, "-exp", "table1", "-format", "csv", "-quiet")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(stdout, ",") || !strings.Contains(stdout, "Latency") {
		t.Errorf("csv output suspicious:\n%s", stdout)
	}
}
