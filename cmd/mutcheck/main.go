// Command mutcheck runs the AST-driven mutation-testing engine
// (internal/mutcheck) over this repository's hot simulator packages
// and reports the kill ratio — the measured fraction of small seeded
// faults the test suite catches. See docs/ANALYSIS.md, "Mutation
// testing (mutcheck)".
//
// Usage:
//
//	go run ./cmd/mutcheck                          # quick tier, text summary
//	go run ./cmd/mutcheck -write MUTATION_quick.json
//	go run ./cmd/mutcheck -diff MUTATION_quick.json
//	go run ./cmd/mutcheck -full -pkgs internal/cache,internal/l2
//	go run ./cmd/mutcheck -list
//
// The quick tier (default) caps mutants per package and runs the
// target tests with -short; CI runs it and diffs the committed
// MUTATION_quick.json — the kill ratio may rise but never fall. -full
// enumerates every site for local audits. Surviving mutants are
// printed with file:line, operator, and the exact before => after
// diff; a survivor not allowlisted in MUTATION_allow (with a
// mandatory `mutcheck:survives <reason>`) fails the run.
//
// Exit status: 0 clean, 1 reason-less survivor or baseline
// regression, 2 usage/load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cmpnurapid/internal/mutcheck"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mutcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		full    = fs.Bool("full", false, "enumerate every mutation site (local audit tier)")
		capN    = fs.Int("cap", 8, "quick-tier mutants per package (ignored with -full)")
		pkgs    = fs.String("pkgs", "", "comma-separated package dirs to mutate (default: all hot packages)")
		write   = fs.String("write", "", "write the JSON report to this file")
		diff    = fs.String("diff", "", "diff the run against this committed baseline (kill ratio may rise, never fall)")
		allowF  = fs.String("allow", "MUTATION_allow", "allowlist file of equivalent mutants (mutcheck:survives <reason>)")
		shadow  = fs.String("shadow", "", "shadow copy directory (default: under the system temp dir; reuse keeps builds cached)")
		timeout = fs.Duration("timeout", 60*time.Second, "go test -timeout per mutant (runaway mutants self-kill)")
		list    = fs.Bool("list", false, "list mutation operators and hot packages, then exit")
		quiet   = fs.Bool("quiet", false, "suppress per-mutant progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *write != "" && *diff != "" {
		fmt.Fprintln(stderr, "mutcheck: -write and -diff are mutually exclusive")
		return 2
	}
	if !*full && *capN <= 0 {
		fmt.Fprintln(stderr, "mutcheck: -cap must be positive in quick tier (use -full for everything)")
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "operators:")
		for _, op := range mutcheck.Operators {
			fmt.Fprintf(stdout, "  %-11s %s\n", op.Name, op.Doc)
		}
		fmt.Fprintln(stdout, "packages (with their killing test targets):")
		for _, pkg := range mutcheck.PackageNames() {
			fmt.Fprintf(stdout, "  %-19s %s\n", pkg, strings.Join(mutcheck.DefaultPackages[pkg], " "))
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "mutcheck:", err)
		return 2
	}

	packages := mutcheck.DefaultPackages
	if *pkgs != "" {
		packages = map[string][]string{}
		for _, name := range strings.Split(*pkgs, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			targets, ok := mutcheck.DefaultPackages[name]
			if !ok {
				fmt.Fprintf(stderr, "mutcheck: unknown package %q in -pkgs (valid: %s)\n",
					name, strings.Join(mutcheck.PackageNames(), ", "))
				return 2
			}
			packages[name] = targets
		}
	}

	allow, err := mutcheck.LoadAllowlist(filepath.Join(root, *allowF))
	if err != nil {
		fmt.Fprintln(stderr, "mutcheck:", err)
		return 2
	}

	// Read the baseline before the campaign: a missing or corrupt
	// file should fail in milliseconds, not after minutes of mutant
	// runs.
	var base *mutcheck.Report
	if *diff != "" {
		base, err = readReport(*diff)
		if err != nil {
			fmt.Fprintln(stderr, "mutcheck:", err)
			return 2
		}
	}

	cfg := mutcheck.Config{
		Root:        root,
		Packages:    packages,
		Shadow:      *shadow,
		Short:       true,
		TestTimeout: *timeout,
		Allow:       allow,
	}
	if !*full {
		cfg.Cap = *capN
	}
	if !*quiet {
		cfg.Progress = stderr
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	rep, err := mutcheck.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "mutcheck:", err)
		return 2
	}

	code := 0
	for _, s := range rep.Unallowlisted() {
		fmt.Fprintf(stdout, "SURVIVED %s [%s]\n  - %s\n  + %s\n  (add a killing test, or allowlist in %s with `%s mutcheck:survives <reason>`)\n",
			s.ID, s.Op, s.Before, s.After, *allowF, s.ID)
		code = 1
	}

	switch {
	case *write != "":
		data, err := rep.MarshalIndent()
		if err != nil {
			fmt.Fprintln(stderr, "mutcheck:", err)
			return 2
		}
		if err := os.WriteFile(*write, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "mutcheck:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s: %s\n", *write, summary(rep))
	case *diff != "":
		if failures := mutcheck.Compare(base, rep, stdout); failures > 0 {
			fmt.Fprintf(stdout, "FAIL: %d regression(s) vs %s (refresh with `go run ./cmd/mutcheck -write %s` if intended)\n",
				failures, *diff, *diff)
			return 1
		}
		fmt.Fprintf(stdout, "ok: %s (vs %s)\n", summary(rep), *diff)
	default:
		fmt.Fprintln(stdout, summary(rep))
		for _, p := range rep.Packages {
			fmt.Fprintf(stdout, "  %-19s %3d/%3d killed (%.0f%%), %d survived (%d allowlisted), %d stillborn, %d sites\n",
				p.Package, p.Killed, p.Killed+p.Survived, 100*p.KillRatio,
				p.Survived, p.Allowlisted, p.Stillborn, p.Sites)
		}
	}
	return code
}

func summary(rep *mutcheck.Report) string {
	t := rep.Total
	return fmt.Sprintf("%s tier: %d/%d mutants killed (%.1f%% kill ratio), %d survived (%d allowlisted), %d stillborn, %d sites enumerated",
		rep.Tier, t.Killed, t.Killed+t.Survived, 100*t.KillRatio, t.Survived, t.Allowlisted, t.Stillborn, t.Sites)
}

func readReport(path string) (*mutcheck.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return mutcheck.UnmarshalReport(data)
}

// moduleRoot walks upward from the working directory to the nearest
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
