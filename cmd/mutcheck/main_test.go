package main

import (
	"strings"
	"testing"
)

func TestListPrintsOperatorsAndPackages(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"relswap", "offbyone", "boolnegate", "branchdel", "constret", "orderswap",
		"internal/cache", "internal/cmpsim", "./internal/l2"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-write", "a.json", "-diff", "b.json"}, // mutually exclusive
		{"-cap", "0"},                           // quick tier needs a positive cap
		{"-cap", "-3"},
		{"-pkgs", "internal/nosuch"}, // unknown package
		{"-badflag"},
	}
	for _, args := range cases {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

func TestDiffAgainstMissingBaselineFailsFast(t *testing.T) {
	// The baseline is read before the campaign so a bad path fails
	// in milliseconds, not after minutes of mutant runs.
	var stdout, stderr strings.Builder
	if code := run([]string{"-diff", "no_such_file.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit = %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no_such_file.json") {
		t.Errorf("stderr: %s", stderr.String())
	}
}
