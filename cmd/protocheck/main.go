// Command protocheck model-checks the coherence protocols in
// internal/coherence (see internal/protocheck):
//
//   - golden drift: the transition functions must match the Figure 4
//     encoding in internal/protocheck/golden.go exactly;
//   - totality: the processor side never panics on an in-protocol
//     input;
//   - reachability: BFS over the joint state space of N caches (2..n)
//     checking SWMR, S/C exclusion, no exit from C, and no panics on
//     reachable inputs; snoop inputs that panic must be BFS-proven
//     unreachable;
//   - differential: MESI and MESIC are trace-identical on every
//     interleaving where no requester samples an asserted dirty line;
//   - docs: the generated tables in docs/PROTOCOL.md match the code.
//
// Usage:
//
//	go run ./cmd/protocheck            # check everything, N up to 3
//	go run ./cmd/protocheck -n 4      # explore 4 caches
//	go run ./cmd/protocheck -write    # refresh docs/PROTOCOL.md
//	go run ./cmd/protocheck -mutant restore-m-to-s   # must fail: demo
//
// Exit status is 0 when every check passes, 1 on any violation, 2 on
// usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cmpnurapid/internal/protocheck"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("protocheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		maxN   = fs.Int("n", 3, "largest cache count to explore (2..6)")
		write  = fs.Bool("write", false, "rewrite the generated block in docs/PROTOCOL.md")
		quiet  = fs.Bool("q", false, "suppress the summary; print violations only")
		mutant = fs.String("mutant", "", "check a seeded-broken protocol instead (testing hook); see internal/protocheck/mutants.go")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *maxN < 2 || *maxN > 6 {
		fmt.Fprintf(stderr, "protocheck: -n %d out of range [2, 6]\n", *maxN)
		return 2
	}

	protocols := []*protocheck.Protocol{protocheck.MESI(), protocheck.MESIC()}
	if *mutant != "" {
		p, err := protocheck.Mutant(*mutant)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		protocols = []*protocheck.Protocol{p}
	}

	result := protocheck.CheckAll(*maxN, protocols...)

	// The docs check only applies to the real protocols: mutants must
	// not overwrite or be compared against the published tables.
	if *mutant == "" {
		if code := checkDocs(result, *write, stdout, stderr); code != 0 {
			return code
		}
	}

	if !*quiet {
		fmt.Fprint(stdout, result.Summary())
	}
	for _, v := range result.Violations {
		fmt.Fprintln(stdout, v)
	}
	if !result.Ok() {
		return 1
	}
	return 0
}

// checkDocs verifies (or, with -write, refreshes) the generated block
// in docs/PROTOCOL.md. A stale block is reported as a violation so it
// fails the run the same way a protocol bug does.
func checkDocs(result *protocheck.Result, write bool, stdout, stderr io.Writer) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "protocheck:", err)
		return 2
	}
	docPath := filepath.Join(root, "docs", "PROTOCOL.md")
	doc, err := os.ReadFile(docPath)
	if err != nil {
		fmt.Fprintln(stderr, "protocheck:", err)
		return 2
	}
	// The published block always comes from the canonical N=2..4
	// sweep, independent of this run's -n.
	block := protocheck.GenerateDoc(protocheck.DocExplorations())
	if write {
		updated, err := protocheck.SpliceDoc(doc, block)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := os.WriteFile(docPath, updated, 0o644); err != nil {
			fmt.Fprintln(stderr, "protocheck:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s\n", docPath)
		return 0
	}
	if !protocheck.DocInSync(doc, block) {
		result.Violations = append(result.Violations, protocheck.Violation{
			Kind:    "doc",
			Message: "docs/PROTOCOL.md generated block is stale; run `go run ./cmd/protocheck -write`",
		})
	}
	return 0
}

// moduleRoot walks upward from the working directory to the nearest
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
