package main

import (
	"os"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunCleanRepo(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("run() = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"MESI", "MESIC", "violations: 0", "MESI ≡ MESIC"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunQuiet(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-q"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-q) = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	if stdout.String() != "" {
		t.Errorf("-q still printed:\n%s", stdout.String())
	}
}

// TestRunMutantFails is the CLI half of the seeded-mutant acceptance
// criterion: restoring the deleted M→S arc must make protocheck exit
// non-zero and say why.
func TestRunMutantFails(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-mutant", "restore-m-to-s"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run(-mutant restore-m-to-s) = %d, want 1\nstdout:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "S coexists with C") {
		t.Errorf("mutant run does not report the S/C safety violation:\n%s", stdout.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "1"},
		{"-n", "7"},
		{"-mutant", "no-such-mutant"},
		{"-bogus-flag"},
	}
	for _, args := range cases {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if stderr.String() == "" {
			t.Errorf("run(%v) printed no error", args)
		}
	}
}

// TestWriteIsIdempotent runs -write against the checked-in doc and
// asserts nothing changes: the committed tables are in sync.
func TestWriteIsIdempotent(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	docPath := root + "/docs/PROTOCOL.md"
	before := readFile(t, docPath)
	var stdout, stderr strings.Builder
	if code := run([]string{"-write", "-q"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-write) = %d\nstderr:\n%s", code, stderr.String())
	}
	if after := readFile(t, docPath); after != before {
		t.Error("docs/PROTOCOL.md changed under -write: the committed tables were stale")
	}
	if !strings.Contains(stdout.String(), "wrote ") {
		t.Errorf("-write did not report the written path:\n%s", stdout.String())
	}
}
