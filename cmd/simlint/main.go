// Command simlint runs the simulator-aware static-analysis pass suite
// (internal/simlint) over this repository. It loads every package in
// the module with go/parser + go/types — no external dependencies —
// and enforces the rules documented in docs/ANALYSIS.md:
//
//	determinism     no wall clock / global rand / env reads in model packages
//	panicmsg        panics in internal packages carry a "pkg: " prefix
//	floatcmp        no ==/!= on floats in result-reporting packages
//	invariantcov    mutating cache methods have CheckInvariants-bracketed tests
//	configvalidate  Config literals in cmd/ and examples/ are validated
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -json ./...
//	go run ./cmd/simlint -disable floatcmp,invariantcov ./...
//	go run ./cmd/simlint -list
//
// Package patterns are accepted for familiarity but the whole module
// containing the working directory is always analyzed. Exit status is
// 0 when clean, 1 when any rule reports a diagnostic, 2 on load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cmpnurapid/internal/simlint"
)

type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	var (
		asJSON  = flag.Bool("json", false, "emit diagnostics as JSON")
		disable = flag.String("disable", "", "comma-separated rule names to skip")
		list    = flag.Bool("list", false, "list rules and exit")
	)
	flag.Parse()

	analyzers := simlint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	disabled := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	var enabled []*simlint.Analyzer
	for _, a := range analyzers {
		if disabled[a.Name] {
			delete(disabled, a.Name)
			continue
		}
		enabled = append(enabled, a)
	}
	for name := range disabled {
		fmt.Fprintf(os.Stderr, "simlint: unknown rule %q in -disable\n", name)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	prog, err := simlint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	diags := prog.Run(enabled)

	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: relToRoot(root, d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			pos := d.Pos
			pos.Filename = relToRoot(root, pos.Filename)
			fmt.Printf("%s: [%s] %s\n", pos, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the nearest
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

func relToRoot(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
