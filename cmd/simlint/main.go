// Command simlint runs the simulator-aware static-analysis pass suite
// (internal/simlint) over this repository. It loads every package in
// the module with go/parser + go/types — no external dependencies —
// and enforces the rules documented in docs/ANALYSIS.md:
//
//	determinism     no wall clock / global rand / env reads in model packages
//	panicmsg        panics in internal packages carry a "pkg: " prefix
//	floatcmp        no ==/!= on floats in result-reporting packages
//	invariantcov    mutating cache methods have CheckInvariants-bracketed tests
//	configvalidate  Config literals in cmd/ and examples/ are validated
//	enumswitch      switches over internal int8 enums are exhaustive or panic
//	unitcheck       simulator quantities flow through dimensional unit types
//	recovercheck    recover() only inside the scheduler's designated recovery helper
//	hotpath         functions reachable from hotpath:root entry points are free of
//	                allocating/indirecting constructs unless audited with hotpath:alloc
//	synccheck       synccheck:guardedby fields only touched under their mutex,
//	                goroutine/WaitGroup/chan/Once lifecycle discipline, and no
//	                nondeterminism reachable from goroutines
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -format json ./...
//	go run ./cmd/simlint -rules unitcheck,determinism ./...
//	go run ./cmd/simlint -disable floatcmp,invariantcov ./...
//	go run ./cmd/simlint -list
//
// With -format json each diagnostic is one JSON object per line
// (NDJSON) with keys file, line, col, pass, message — grep- and
// jq-friendly for CI annotation. The default -format text prints
// file:line:col: [pass] message.
//
// Package patterns are accepted for familiarity but the whole module
// containing the working directory is always analyzed. Exit status is
// 0 when clean, 1 when any rule reports a diagnostic, 2 on load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cmpnurapid/internal/simlint"
)

// jsonDiag is the NDJSON shape of one diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format  = fs.String("format", "text", "diagnostic output format: text or json (NDJSON, one object per line)")
		asJSON  = fs.Bool("json", false, "deprecated alias for -format json")
		rules   = fs.String("rules", "", "comma-separated rule names to run exclusively (default: all)")
		disable = fs.String("disable", "", "comma-separated rule names to skip")
		list    = fs.Bool("list", false, "list rules and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON {
		*format = "json"
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "simlint: unknown -format %q (want text or json)\n", *format)
		return 2
	}

	analyzers := simlint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *rules != "" {
		byName := map[string]*simlint.Analyzer{}
		var valid []string
		for _, a := range analyzers {
			byName[a.Name] = a
			valid = append(valid, a.Name)
		}
		var selected []*simlint.Analyzer
		for _, name := range strings.Split(*rules, ",") {
			if name = strings.TrimSpace(name); name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "simlint: unknown rule %q in -rules (valid: %s)\n",
					name, strings.Join(valid, ", "))
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	disabled := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	var enabled []*simlint.Analyzer
	for _, a := range analyzers {
		if disabled[a.Name] {
			delete(disabled, a.Name)
			continue
		}
		enabled = append(enabled, a)
	}
	for name := range disabled {
		fmt.Fprintf(stderr, "simlint: unknown rule %q in -disable\n", name)
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	prog, err := simlint.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	diags := prog.Run(enabled)

	switch *format {
	case "json":
		enc := json.NewEncoder(stdout) // one compact object per line
		for _, d := range diags {
			err := enc.Encode(jsonDiag{
				File: relToRoot(root, d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Pass: d.Rule, Message: d.Message,
			})
			if err != nil {
				fmt.Fprintln(stderr, "simlint:", err)
				return 2
			}
		}
	default:
		for _, d := range diags {
			pos := d.Pos
			pos.Filename = relToRoot(root, pos.Filename)
			fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// moduleRoot walks upward from the working directory to the nearest
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

func relToRoot(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
