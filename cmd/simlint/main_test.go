package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir switches the working directory for one test; simlint always
// analyzes the module containing the working directory.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// dirtyModule writes a throwaway module with one panicmsg violation
// (a panic in internal/ without the "pkg: " prefix) and returns its
// root.
func dirtyModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module fix.example/m\n\ngo 1.22\n",
		"internal/widget/widget.go": `package widget

func Check(ok bool) {
	if !ok {
		panic("broken")
	}
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunCleanRepoBothFormats(t *testing.T) {
	for _, args := range [][]string{nil, {"-format", "json"}} {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, want 0\nstdout:\n%s\nstderr:\n%s", args, code, stdout.String(), stderr.String())
		}
		if stdout.String() != "" {
			t.Errorf("run(%v) on a clean repo printed:\n%s", args, stdout.String())
		}
	}
}

func TestTextFormatOnDirtyModule(t *testing.T) {
	chdir(t, dirtyModule(t))
	var stdout, stderr strings.Builder
	// invariantcov's coverage targets name this repo's packages, which
	// the fixture module lacks; it is not under test here.
	if code := run([]string{"-disable", "invariantcov"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run() = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[panicmsg]") || !strings.Contains(out, "internal/widget/widget.go:5:") {
		t.Errorf("text diagnostic malformed:\n%s", out)
	}
}

func TestJSONFormatOnDirtyModule(t *testing.T) {
	chdir(t, dirtyModule(t))
	// -json must behave as a deprecated alias for -format json.
	for _, args := range [][]string{
		{"-format", "json", "-disable", "invariantcov"},
		{"-json", "-disable", "invariantcov"},
	} {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 1 {
			t.Fatalf("run(%v) = %d, want 1\nstderr:\n%s", args, code, stderr.String())
		}
		lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
		if len(lines) != 1 {
			t.Fatalf("want one NDJSON line per diagnostic, got %d:\n%s", len(lines), stdout.String())
		}
		var d struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Pass    string `json:"pass"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, lines[0])
		}
		if d.File != "internal/widget/widget.go" || d.Line != 5 || d.Col == 0 || d.Pass != "panicmsg" || d.Message == "" {
			t.Errorf("run(%v) diagnostic fields: %+v", args, d)
		}
	}
}

func TestRulesSelection(t *testing.T) {
	chdir(t, dirtyModule(t))
	// Selecting only the violated rule reports it; selecting only a
	// rule the module satisfies comes back clean.
	var stdout, stderr strings.Builder
	if code := run([]string{"-rules", "panicmsg"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run(-rules panicmsg) = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[panicmsg]") {
		t.Errorf("selected rule did not report:\n%s", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-rules", "floatcmp,unitcheck"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-rules floatcmp,unitcheck) = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

func TestRulesUnknownNameListsValid(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-rules", "unitchekc"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-rules unitchekc) = %d, want 2", code)
	}
	msg := stderr.String()
	for _, name := range []string{"unitchekc", "determinism", "panicmsg", "floatcmp",
		"invariantcov", "configvalidate", "enumswitch", "unitcheck", "hotpath"} {
		if !strings.Contains(msg, name) {
			t.Errorf("error message missing %q:\n%s", name, msg)
		}
	}
}

// hotpathDirtyModule writes a throwaway module with one hotpath
// violation (a make inside a hotpath:root tick) and returns its root.
func hotpathDirtyModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module fix.example/m\n\ngo 1.22\n",
		"internal/sim/sim.go": `package sim

// hotpath:root
func Tick() []byte {
	return make([]byte, 64)
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRulesHotpathBothFormats(t *testing.T) {
	chdir(t, hotpathDirtyModule(t))

	var stdout, stderr strings.Builder
	if code := run([]string{"-rules", "hotpath"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run(-rules hotpath) = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[hotpath]") || !strings.Contains(out, "internal/sim/sim.go:5:") ||
		!strings.Contains(out, "hot path via sim.Tick") {
		t.Errorf("text diagnostic malformed:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-rules", "hotpath", "-format", "json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run(-rules hotpath -format json) = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("want one NDJSON line, got %d:\n%s", len(lines), stdout.String())
	}
	var d jsonDiag
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, lines[0])
	}
	if d.File != "internal/sim/sim.go" || d.Line != 5 || d.Pass != "hotpath" ||
		!strings.Contains(d.Message, "make allocates per call") {
		t.Errorf("NDJSON diagnostic fields: %+v", d)
	}
}

// TestListPrintsRuleTable pins the -list contract: exit 0 and one
// `name description` line per rule, in registration order — the same
// order the cmd doc comment, README, and docs/ANALYSIS.md use, so the
// three stay in sync with the code instead of drifting apart.
func TestListPrintsRuleTable(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d", code)
	}
	want := []string{
		"determinism", "panicmsg", "floatcmp", "invariantcov",
		"configvalidate", "enumswitch", "unitcheck", "recovercheck", "hotpath",
		"synccheck",
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(want), stdout.String())
	}
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Errorf("-list line %d has no description: %q", i, line)
			continue
		}
		if fields[0] != want[i] {
			t.Errorf("-list line %d = %q, want rule %q (registration order)", i, fields[0], want[i])
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-format", "xml"},
		{"-disable", "no-such-rule"},
		{"-rules", "no-such-rule"},
		{"-bogus"},
	}
	for _, args := range cases {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if stderr.String() == "" {
			t.Errorf("run(%v) printed no error", args)
		}
	}
}
