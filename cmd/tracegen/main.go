// Command tracegen records a workload's memory-reference streams into
// the binary trace format, or inspects an existing trace.
//
//	tracegen -workload oltp -ops 100000 -o oltp.trace
//	tracegen -inspect oltp.trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/topo"
	"cmpnurapid/internal/trace"
	"cmpnurapid/internal/workload"
)

func pick(name string, seed uint64) (cmpsim.Workload, bool) {
	for _, p := range workload.Multithreaded(seed) {
		if p.Name == name {
			return workload.New(p), true
		}
	}
	for i, m := range workload.Mixes(seed) {
		if m.Name() == name {
			return workload.Mixes(seed)[i], true
		}
	}
	return nil, false
}

func main() {
	var (
		wl      = flag.String("workload", "oltp", "workload: oltp, apache, specjbb, ocean, barnes, MIX1..MIX4")
		ops     = flag.Int("ops", 100_000, "ops per core to record")
		out     = flag.String("o", "", "output file (default <workload>.trace)")
		seed    = flag.Uint64("seed", 42, "workload seed")
		inspect = flag.String("inspect", "", "print a summary of an existing trace instead of recording")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	src, ok := pick(*wl, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *wl)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *wl + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.Record(f, src, topo.NumCores, *ops); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d ops x %d cores of %s into %s\n", *ops, topo.NumCores, *wl, path)
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var total, writes, instrs, nomem uint64
	perCore := make([]uint64, r.Cores())
	for {
		core, op, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		total++
		perCore[core]++
		switch {
		case op.NoMem:
			nomem++
		case op.Write:
			writes++
		case op.Instr:
			instrs++
		}
	}
	fmt.Printf("%s: %d cores, %d ops (%d writes, %d ifetches, %d compute-only)\n",
		path, r.Cores(), total, writes, instrs, nomem)
	for c, n := range perCore {
		fmt.Printf("  core %d: %d ops\n", c, n)
	}
	return nil
}
