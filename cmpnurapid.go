// Package cmpnurapid is a from-scratch reproduction of "Optimizing
// Replication, Communication, and Capacity Allocation in CMPs"
// (Chishti, Powell, Vijaykumar — ISCA 2005): the CMP-NuRAPID hybrid
// cache with private per-core tag arrays and a shared
// distance-associative data array, its controlled-replication,
// in-situ-communication, and capacity-stealing optimizations, the four
// baseline cache organizations the paper compares against, a
// cycle-approximate 4-core CMP simulator to run them in, and synthetic
// workloads calibrated to the paper's workload characterization.
//
// # Quick start
//
//	w := cmpnurapid.OLTP(42)                      // a workload
//	sys := cmpnurapid.NewSystem(cmpnurapid.CMPNuRAPID, w)
//	sys.Warmup(1_000_000)                         // fill the caches
//	res := sys.Run(1_000_000)                     // measure
//	fmt.Println(res.IPC, res.L2.MissRate())
//
// Compare designs by running the same workload seed on each (every
// design sees an identical per-core reference stream) and dividing
// with Speedup.
//
// The internal packages carry the substance: internal/core is
// CMP-NuRAPID itself, internal/l2 the baselines, internal/coherence
// the MESI/MESIC protocols, internal/cmpsim the system model,
// internal/experiments the regeneration of every table and figure in
// the paper's evaluation. This package is the stable facade.
package cmpnurapid

import (
	"io"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/experiments"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/nurapid"
	"cmpnurapid/internal/topo"
	"cmpnurapid/internal/trace"
	"cmpnurapid/internal/workload"
)

// Design names one of the evaluated cache organizations.
type Design = experiments.DesignName

// The five designs of the paper's evaluation, plus the CR-only and
// ISC-only variants used by Figure 8.
const (
	UniformShared     = experiments.UniformShared
	NonUniformShared  = experiments.NonUniform
	Private           = experiments.Private
	Ideal             = experiments.Ideal
	CMPNuRAPID        = experiments.NuRAPID
	CMPNuRAPIDCROnly  = experiments.NuRAPIDCR
	CMPNuRAPIDISCOnly = experiments.NuRAPIDISC
)

// L2 is the interface all cache designs implement.
type L2 = memsys.L2

// Addr is a physical byte address.
type Addr = memsys.Addr

// Cycle is an absolute simulated timestamp; Cycles is a duration in
// clock cycles; Bytes is a storage capacity. All simulator timing and
// geometry flows through these dimensional types (see DESIGN.md).
type (
	Cycle  = memsys.Cycle
	Cycles = memsys.Cycles
	Bytes  = memsys.Bytes
)

// Result describes one L2 access outcome (latency, the paper's miss
// taxonomy, and which d-group served a hit).
type Result = memsys.Result

// NewL2 constructs a fresh instance of the named design at the paper's
// 8 MB, 4-core configuration (Table 1 latencies).
func NewL2(d Design) L2 { return experiments.NewDesign(d) }

// NuRAPIDConfig exposes CMP-NuRAPID's full configuration for custom
// instantiations (ablation switches, different geometries, seeds).
type NuRAPIDConfig = core.Config

// DefaultNuRAPIDConfig returns the paper's configuration: doubled tag
// arrays, four 2 MB d-groups, CR + ISC + fastest-promotion CS.
func DefaultNuRAPIDConfig() NuRAPIDConfig { return core.DefaultConfig() }

// NuRAPIDCache is the concrete CMP-NuRAPID type, exposing the
// inspection surface (StateOf, Occupancy, CheckInvariants, Bus) used
// by tests and the protocol-walkthrough example.
type NuRAPIDCache = core.Cache

// UniprocessorNuRAPID is the single-core NuRAPID substrate [8] the CMP
// design extends: distance associativity, forward/reverse pointers,
// promotion and demotion — without coherence or sharing.
type UniprocessorNuRAPID = nurapid.Cache

// UniprocessorConfig configures the substrate.
type UniprocessorConfig = nurapid.Config

// DefaultUniprocessorConfig returns an 8 MB four-d-group NuRAPID at
// the Table 1 latencies.
func DefaultUniprocessorConfig() UniprocessorConfig { return nurapid.DefaultConfig() }

// NewUniprocessorNuRAPID builds the substrate cache.
func NewUniprocessorNuRAPID(cfg UniprocessorConfig) *UniprocessorNuRAPID { return nurapid.New(cfg) }

// NewCMPNuRAPID builds a CMP-NuRAPID cache from an explicit config.
func NewCMPNuRAPID(cfg NuRAPIDConfig) *NuRAPIDCache { return core.New(cfg) }

// Workload supplies per-core instruction streams to a System.
type Workload = cmpsim.Workload

// Op is one unit of work in a workload stream.
type Op = cmpsim.Op

// Profile parameterizes a synthetic multithreaded workload.
type Profile = workload.Profile

// The paper's multithreaded workloads (§4.3, Table 3), calibrated to
// its workload characterization. The seed selects the random streams;
// equal seeds give bit-identical per-core streams.
func OLTP(seed uint64) Workload    { return workload.New(workload.OLTP(seed)) }
func Apache(seed uint64) Workload  { return workload.New(workload.Apache(seed)) }
func SPECjbb(seed uint64) Workload { return workload.New(workload.SPECjbb(seed)) }
func Ocean(seed uint64) Workload   { return workload.New(workload.Ocean(seed)) }
func Barnes(seed uint64) Workload  { return workload.New(workload.Barnes(seed)) }

// NewWorkload builds a generator from a custom profile.
func NewWorkload(p Profile) Workload { return workload.New(p) }

// Mixes returns the paper's four multiprogrammed SPEC2K mixes
// (Table 2) as runnable workloads.
func Mixes(seed uint64) []Workload {
	ms := workload.Mixes(seed)
	ws := make([]Workload, len(ms))
	for i, m := range ms {
		ws[i] = m
	}
	return ws
}

// System couples four cores with L1 caches, an L2 design, and a
// workload.
type System = cmpsim.System

// Results reports a run's outcome.
type Results = cmpsim.Results

// NewSystem builds the paper's 4-core system (64 KB 2-way split L1 I/D,
// 3 cycles) around the named design.
func NewSystem(d Design, w Workload) *System {
	return cmpsim.New(cmpsim.DefaultConfig(), NewL2(d), w)
}

// NewSystemWith builds a system around an explicit L2 instance.
func NewSystemWith(l2 L2, w Workload) *System {
	return cmpsim.New(cmpsim.DefaultConfig(), l2, w)
}

// Speedup returns r's weighted speedup over base.
func Speedup(r, base Results) float64 { return cmpsim.Speedup(r, base) }

// Latencies holds the Table 1 cycle counts derived from the cacti
// timing model and the Figure 1 floorplan.
type Latencies = topo.Latencies

// DeriveLatencies recomputes Table 1 from geometry.
func DeriveLatencies() Latencies { return topo.Derive() }

// NumCores is the fixed core (and d-group) count of the floorplan.
const NumCores = topo.NumCores

// RecordTrace captures opsPerCore ops per core from w into out in the
// binary trace format.
func RecordTrace(out io.Writer, w Workload, opsPerCore int) error {
	return trace.Record(out, w, NumCores, opsPerCore)
}

// LoadTrace loads a recorded trace as a replayable workload.
func LoadTrace(r io.Reader, name string) (Workload, error) {
	return trace.Load(r, name)
}
