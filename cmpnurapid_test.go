package cmpnurapid_test

import (
	"bytes"
	"testing"

	"cmpnurapid"
)

func TestPublicAPIQuickstart(t *testing.T) {
	// The README's quickstart flow must work as written.
	sys := cmpnurapid.NewSystem(cmpnurapid.CMPNuRAPID, cmpnurapid.OLTP(42))
	sys.Warmup(50_000)
	res := sys.Run(50_000)
	if res.IPC <= 0 {
		t.Fatalf("IPC = %v", res.IPC)
	}
	if res.L2.Accesses.Total() == 0 {
		t.Fatal("no L2 accesses recorded")
	}
}

func TestAllDesignsRunAllWorkloads(t *testing.T) {
	designs := []cmpnurapid.Design{
		cmpnurapid.UniformShared, cmpnurapid.NonUniformShared,
		cmpnurapid.Private, cmpnurapid.Ideal, cmpnurapid.CMPNuRAPID,
	}
	mks := []func(uint64) cmpnurapid.Workload{
		cmpnurapid.OLTP, cmpnurapid.Apache, cmpnurapid.SPECjbb,
		cmpnurapid.Ocean, cmpnurapid.Barnes,
	}
	for _, d := range designs {
		for _, mk := range mks {
			sys := cmpnurapid.NewSystem(d, mk(7))
			res := sys.Run(5_000)
			if res.Instructions == 0 || res.Cycles == 0 {
				t.Errorf("%s: degenerate run", d)
			}
		}
	}
}

func TestMixesRun(t *testing.T) {
	for i, w := range cmpnurapid.Mixes(3) {
		sys := cmpnurapid.NewSystem(cmpnurapid.CMPNuRAPID, w)
		res := sys.Run(5_000)
		if res.IPC <= 0 {
			t.Errorf("mix %d: IPC %v", i+1, res.IPC)
		}
	}
}

func TestDeriveLatenciesTable1(t *testing.T) {
	l := cmpnurapid.DeriveLatencies()
	if l.SharedTotal != 59 || l.PrivateTotal != 10 || l.NuRAPIDTag != 5 || l.Bus != 32 {
		t.Errorf("Table 1 latencies wrong: %+v", l)
	}
}

func TestCustomNuRAPIDConfig(t *testing.T) {
	cfg := cmpnurapid.DefaultNuRAPIDConfig()
	cfg.EnableISC = false
	c := cmpnurapid.NewCMPNuRAPID(cfg)
	if c.Name() != "CMP-NuRAPID (CR only)" {
		t.Errorf("Name = %q", c.Name())
	}
	sys := cmpnurapid.NewSystemWith(c, cmpnurapid.Apache(1))
	sys.Run(5_000)
	c.CheckInvariants()
}

func TestTraceRoundTripPublicAPI(t *testing.T) {
	var buf bytes.Buffer
	if err := cmpnurapid.RecordTrace(&buf, cmpnurapid.Barnes(5), 1000); err != nil {
		t.Fatal(err)
	}
	w, err := cmpnurapid.LoadTrace(&buf, "barnes-replay")
	if err != nil {
		t.Fatal(err)
	}
	sys := cmpnurapid.NewSystem(cmpnurapid.Private, w)
	res := sys.Run(1_000)
	if res.Instructions == 0 {
		t.Fatal("replayed trace drove no instructions")
	}
}

func TestSpeedupSelf(t *testing.T) {
	mk := func() cmpnurapid.Results {
		sys := cmpnurapid.NewSystem(cmpnurapid.Ideal, cmpnurapid.SPECjbb(9))
		return sys.Run(10_000)
	}
	a, b := mk(), mk()
	if sp := cmpnurapid.Speedup(a, b); sp < 0.999 || sp > 1.001 {
		t.Errorf("self-speedup = %v, want 1.0 (determinism)", sp)
	}
}

// BenchmarkL2Access measures raw per-access simulation cost per design.
func BenchmarkL2Access(b *testing.B) {
	for _, d := range []cmpnurapid.Design{
		cmpnurapid.UniformShared, cmpnurapid.Private, cmpnurapid.CMPNuRAPID,
	} {
		b.Run(string(d), func(b *testing.B) {
			l2 := cmpnurapid.NewL2(d)
			now := cmpnurapid.Cycle(0)
			for i := 0; i < b.N; i++ {
				addr := cmpnurapid.Addr((i % 4096) * 128)
				l2.Access(now, i%4, addr, i%7 == 0)
				now += 10
			}
		})
	}
}

// BenchmarkSystemThroughput measures end-to-end simulated instructions
// per second for the full system.
func BenchmarkSystemThroughput(b *testing.B) {
	sys := cmpnurapid.NewSystem(cmpnurapid.CMPNuRAPID, cmpnurapid.OLTP(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(10_000)
	}
	b.ReportMetric(float64(40_000*b.N)/b.Elapsed().Seconds(), "sim-instr/s")
}
