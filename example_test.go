package cmpnurapid_test

import (
	"fmt"

	"cmpnurapid"
)

// Compare CMP-NuRAPID against the conventional shared cache on the
// same workload. Identical seeds guarantee identical per-core
// reference streams, so the comparison is exact.
func ExampleSpeedup() {
	base := cmpnurapid.NewSystem(cmpnurapid.UniformShared, cmpnurapid.Barnes(7))
	b := base.Run(50_000)

	nu := cmpnurapid.NewSystem(cmpnurapid.CMPNuRAPID, cmpnurapid.Barnes(7))
	n := nu.Run(50_000)

	fmt.Println(cmpnurapid.Speedup(n, b) > 1.0)
	// Output: true
}

// Table 1's latencies are derived from cache geometry through the
// timing model, not hard-coded.
func ExampleDeriveLatencies() {
	l := cmpnurapid.DeriveLatencies()
	fmt.Println(l.SharedTotal, l.PrivateTotal, l.NuRAPIDTag, l.Bus)
	// Output: 59 10 5 32
}

// Drive the cache directly to watch controlled replication: the first
// sharer gets a pointer (no data copy), the second use replicates.
func ExampleNewCMPNuRAPID() {
	cache := cmpnurapid.NewCMPNuRAPID(cmpnurapid.DefaultNuRAPIDConfig())
	const x = cmpnurapid.Addr(0x1000)

	cache.Access(0, 0, x, false)         // P0 brings X on-chip
	r1 := cache.Access(100, 1, x, false) // P1: pointer share
	r2 := cache.Access(200, 1, x, false) // P1: second use replicates
	fmt.Println(r1.Category, r2.Category, cache.Stats().Replications)
	// Output: ROS miss hit 1
}

// Build a custom workload profile; the zero-value fields use sensible
// interpretations (no sharing, single-block footprints).
func ExampleNewWorkload() {
	p := cmpnurapid.Profile{
		Name:       "tiny",
		ComputeMin: 2, ComputeMax: 4,
		PrivateBlocks: [4]int{64, 64, 64, 64},
		PrivateTheta:  0.8,
	}
	w := cmpnurapid.NewWorkload(p)
	op := w.Next(0)
	fmt.Println(op.Compute >= 2 && op.Compute <= 4)
	// Output: true
}
