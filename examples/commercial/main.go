// Commercial-server comparison: the paper's motivating scenario. Runs
// the three commercial multithreaded workloads (OLTP, Apache, SPECjbb)
// on every cache design and prints the Figure 10-style comparison:
// relative performance and the miss-taxonomy breakdown that explains
// it (controlled replication attacking ROS misses, in-situ
// communication attacking RWS misses).
//
//	go run ./examples/commercial [-instr N] [-warmup N]
package main

import (
	"flag"
	"fmt"

	"cmpnurapid"
)

func main() {
	var (
		instr  = flag.Uint64("instr", 1_500_000, "measured instructions per core")
		warmup = flag.Int("warmup", 3_000_000, "warm-up instructions per core")
		seed   = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	workloads := []struct {
		name string
		mk   func(uint64) cmpnurapid.Workload
	}{
		{"oltp", cmpnurapid.OLTP},
		{"apache", cmpnurapid.Apache},
		{"specjbb", cmpnurapid.SPECjbb},
	}
	designs := []cmpnurapid.Design{
		cmpnurapid.NonUniformShared,
		cmpnurapid.Private,
		cmpnurapid.CMPNuRAPID,
		cmpnurapid.Ideal,
	}

	sums := map[cmpnurapid.Design]float64{}
	for _, w := range workloads {
		baseSys := cmpnurapid.NewSystem(cmpnurapid.UniformShared, w.mk(*seed))
		baseSys.Warmup(*warmup)
		base := baseSys.Run(*instr)

		fmt.Printf("%s (uniform-shared: IPC %.3f, %4.1f%% L2 misses)\n",
			w.name, base.IPC, 100*base.L2.MissRate())
		for _, d := range designs {
			sys := cmpnurapid.NewSystem(d, w.mk(*seed))
			sys.Warmup(*warmup)
			r := sys.Run(*instr)
			sp := cmpnurapid.Speedup(r, base)
			sums[d] += sp
			fmt.Printf("  %-20s %+6.1f%%   misses: %4.1f%%", d, (sp-1)*100, 100*r.L2.MissRate())
			if d == cmpnurapid.CMPNuRAPID {
				fmt.Printf("   (CR: %d pointer shares; ISC write-throughs active)",
					r.L2.PointerReturns)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	fmt.Println("commercial average vs uniform-shared:")
	for _, d := range designs {
		fmt.Printf("  %-20s %+6.1f%%\n", d, (sums[d]/float64(len(workloads))-1)*100)
	}
	fmt.Println("\npaper (Figure 10): non-uniform-shared +4%, private +5%, CMP-NuRAPID +13%, ideal +17%")
	fmt.Println("(this reproduction's in-order blocking-miss cores expose more of the L2")
	fmt.Println("latency than the paper's full-system timing, so all gaps are larger;")
	fmt.Println("the ordering and the CMP-NuRAPID/ideal ratio match — see EXPERIMENTS.md)")
}
