// Capacity-stealing demonstration on a multiprogrammed mix. MIX3 pairs
// the cache-hungry mcf with the small-footprint gzip and mesa; with
// private caches mcf is stuck at 2 MB while its neighbours' capacity
// idles, and with CMP-NuRAPID capacity stealing demotes mcf's
// overflow into the neighbours' d-groups instead of evicting it.
// Per-core IPC makes the effect visible directly.
//
//	go run ./examples/multiprogrammed [-mix 3]
package main

import (
	"flag"
	"fmt"

	"cmpnurapid"
)

func main() {
	var (
		mix    = flag.Int("mix", 3, "Table 2 mix number (1-4)")
		instr  = flag.Uint64("instr", 1_000_000, "measured instructions per core")
		warmup = flag.Int("warmup", 3_000_000, "warm-up instructions per core")
		seed   = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()
	if *mix < 1 || *mix > 4 {
		fmt.Println("mix must be 1-4")
		return
	}

	apps := map[int][4]string{
		1: {"apsi", "art", "equake", "mesa"},
		2: {"ammp", "swim", "mesa", "vortex"},
		3: {"apsi", "mcf", "gzip", "mesa"},
		4: {"ammp", "gzip", "vortex", "wupwise"},
	}[*mix]

	run := func(d cmpnurapid.Design) cmpnurapid.Results {
		w := cmpnurapid.Mixes(*seed)[*mix-1]
		sys := cmpnurapid.NewSystem(d, w)
		sys.Warmup(*warmup)
		return sys.Run(*instr)
	}

	base := run(cmpnurapid.UniformShared)
	priv := run(cmpnurapid.Private)
	nu := run(cmpnurapid.CMPNuRAPID)

	fmt.Printf("MIX%d: %v\n\n", *mix, apps)
	fmt.Printf("%-8s  %-16s %-16s %-16s\n", "core", "uniform-shared", "private", "CMP-NuRAPID")
	for c := 0; c < cmpnurapid.NumCores; c++ {
		fmt.Printf("%-8s  IPC %-12.3f IPC %-12.3f IPC %-12.3f\n",
			apps[c], base.Cores[c].IPC, priv.Cores[c].IPC, nu.Cores[c].IPC)
	}
	fmt.Printf("\nL2 miss rates: uniform-shared %.1f%%, private %.1f%%, CMP-NuRAPID %.1f%%\n",
		100*base.L2.MissRate(), 100*priv.L2.MissRate(), 100*nu.L2.MissRate())
	fmt.Printf("weighted speedup over uniform-shared: private %.2fx, CMP-NuRAPID %.2fx\n",
		cmpnurapid.Speedup(priv, base), cmpnurapid.Speedup(nu, base))
	fmt.Printf("CMP-NuRAPID capacity stealing: %d demotions, %d promotions\n",
		nu.L2.Demotions, nu.L2.Promotions)
	fmt.Println("\npaper (Figure 12, average): private +19%, CMP-NuRAPID +28% over uniform-shared")
}
