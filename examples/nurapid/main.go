// Distance-associativity demonstration on the uniprocessor NuRAPID
// substrate [8] that CMP-NuRAPID extends. A Zipf-skewed access stream
// runs against an 8 MB NuRAPID with four d-groups (6/20/20/33 cycles);
// promotion migrates the hot working set into the closest d-group, so
// most hits cost 6 cycles even though the closest d-group is only a
// quarter of the capacity — the property the whole design builds on.
//
//	go run ./examples/nurapid
package main

import (
	"fmt"

	"cmpnurapid"
	"cmpnurapid/internal/rng"
)

func main() {
	cfg := cmpnurapid.DefaultUniprocessorConfig()
	c := cmpnurapid.NewUniprocessorNuRAPID(cfg)

	// 6 MB working set (48k blocks), Zipf-skewed: hot head, long tail.
	r := rng.New(7)
	z := rng.NewZipf(r, 48_000, 0.9)
	const accesses = 2_000_000
	var totalLat cmpnurapid.Cycles
	for i := 0; i < accesses; i++ {
		lat, _ := c.Access(cmpnurapid.Addr(z.Next() * 128))
		totalLat += lat
	}
	c.CheckInvariants()

	s := c.Stats()
	fmt.Printf("accesses: %d   hits: %d (%.1f%%)   misses: %d\n",
		accesses, s.Hits, 100*float64(s.Hits)/float64(accesses), s.Misses)
	fmt.Println("\nhit distribution by d-group (latency 6 / 20 / 20 / 33 cycles):")
	for g, n := range s.HitsByDG {
		fmt.Printf("  d-group %c: %8d hits (%.1f%%)\n",
			'a'+g, n, 100*float64(n)/float64(s.Hits))
	}
	fmt.Printf("\npromotions: %d   demotions: %d   evictions: %d\n",
		s.Promotions, s.Demotions, s.Evictions)
	fmt.Printf("average access latency: %.1f cycles (closest-d-group hit costs %d)\n",
		float64(totalLat)/accesses, cfg.TagLatency+cfg.DGroups[0].Latency)
	fmt.Println("\nthe closest d-group is 1/4 of the capacity but serves the majority")
	fmt.Println("of hits: distance associativity decouples placement from set mapping")
}
