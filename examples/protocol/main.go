// Protocol walkthrough: drives a CMP-NuRAPID cache directly through
// the paper's two central scenarios and prints each coherence state
// and pointer move.
//
// Scene 1 replays Figure 3 (controlled replication): P0 holds block X;
// P1's first read shares P0's copy through a pointer; P1's second read
// replicates X into P1's closest d-group.
//
// Scene 2 shows in-situ communication (§3.2): P0 dirties block Y, P1's
// read forms a MESIC communication group with the single copy placed
// near the reader, and subsequent producer writes and consumer reads
// all hit without coherence misses.
//
//	go run ./examples/protocol
package main

import (
	"fmt"

	"cmpnurapid"
)

var dgroupNames = [4]string{"a", "b", "c", "d"}

func show(c *cmpnurapid.NuRAPIDCache, addr cmpnurapid.Addr) {
	fmt.Printf("    states:")
	for core := 0; core < cmpnurapid.NumCores; core++ {
		st, dg := c.StateOf(core, addr)
		if dg >= 0 {
			fmt.Printf("  P%d:%v->%s", core, st, dgroupNames[dg])
		} else {
			fmt.Printf("  P%d:%v", core, st)
		}
	}
	fmt.Println()
}

func main() {
	cache := cmpnurapid.NewCMPNuRAPID(cmpnurapid.DefaultNuRAPIDConfig())
	now := cmpnurapid.Cycle(0)
	step := func(core int, addr cmpnurapid.Addr, write bool, what string) {
		res := cache.Access(now, core, addr, write)
		now += 100
		op := "read"
		if write {
			op = "write"
		}
		fmt.Printf("  P%d %-5s %-24s -> %-13s (%d cycles)\n",
			core, op, what, res.Category, res.Latency)
		show(cache, addr)
	}

	const X = cmpnurapid.Addr(0x10000)
	fmt.Println("Scene 1 — controlled replication (paper Figure 3)")
	step(0, X, false, "X: cold fill near P0")
	step(1, X, false, "X: pointer return, no copy")
	step(1, X, false, "X: second use replicates")
	step(1, X, false, "X: now a fast local hit")

	const Y = cmpnurapid.Addr(0x20000)
	fmt.Println("\nScene 2 — in-situ communication (paper §3.2)")
	step(0, Y, true, "Y: producer dirties")
	step(1, Y, false, "Y: reader joins, copy moves")
	step(0, Y, true, "Y: in-situ producer write")
	step(1, Y, false, "Y: in-situ consumer read")
	step(2, Y, true, "Y: second writer joins C")
	step(1, Y, false, "Y: still no coherence miss")

	cache.CheckInvariants()
	fmt.Println("\ninvariants hold: no dangling forward or reverse pointers,")
	fmt.Println("single data copy per dirty block, MESIC ownership rules intact")
}
