// Quickstart: run one workload on CMP-NuRAPID and on the conventional
// uniform-shared cache, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"cmpnurapid"
)

func main() {
	const (
		seed   = 42
		warmup = 2_000_000 // instructions per core to fill the 8 MB cache
		window = 1_000_000 // instructions per core measured
	)

	// Every design must see the identical reference streams, so build a
	// fresh workload with the same seed for each system.
	baseSys := cmpnurapid.NewSystem(cmpnurapid.UniformShared, cmpnurapid.OLTP(seed))
	baseSys.Warmup(warmup)
	base := baseSys.Run(window)

	nuSys := cmpnurapid.NewSystem(cmpnurapid.CMPNuRAPID, cmpnurapid.OLTP(seed))
	nuSys.Warmup(warmup)
	nu := nuSys.Run(window)

	fmt.Printf("workload: OLTP (4 cores, %d instructions each)\n\n", window)
	fmt.Printf("%-16s  IPC %.3f   L2 miss rate %.1f%%\n",
		base.Design, base.IPC, 100*base.L2.MissRate())
	fmt.Printf("%-16s  IPC %.3f   L2 miss rate %.1f%%\n",
		nu.Design, nu.IPC, 100*nu.L2.MissRate())
	fmt.Printf("\nCMP-NuRAPID speedup over uniform-shared: %.2fx\n",
		cmpnurapid.Speedup(nu, base))
	fmt.Printf("controlled replication made %d pointer returns and %d copies;\n",
		nu.L2.PointerReturns, nu.L2.Replications)
	fmt.Printf("capacity stealing performed %d promotions and %d demotions\n",
		nu.L2.Promotions, nu.L2.Demotions)
}
