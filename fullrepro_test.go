package cmpnurapid_test

// TestFullReproduction re-derives EXPERIMENTS.md's headline claims at
// full scale. It takes ~3 minutes, so it only runs when explicitly
// requested:
//
//	CMPNURAPID_FULL=1 go test -run TestFullReproduction -timeout 30m .

import (
	"os"
	"testing"

	"cmpnurapid/internal/experiments"
	"cmpnurapid/internal/memsys"
)

func TestFullReproduction(t *testing.T) {
	if os.Getenv("CMPNURAPID_FULL") == "" {
		t.Skip("set CMPNURAPID_FULL=1 to run the full-scale reproduction (~3 min)")
	}
	e := experiments.NewEval(experiments.DefaultRunConfig())

	// Fill the run cache on the parallel scheduler first: concurrency
	// cannot change any number (single-fill cache, per-run seeded
	// streams), only the wall-clock this test costs.
	sel, err := experiments.Select("all")
	if err != nil {
		t.Fatal(err)
	}
	experiments.ExecuteCells(experiments.Plan(sel, e), experiments.DefaultParallelism(), false, nil)

	// Figure 10: CMP-NuRAPID beats shared and private; the fraction of
	// ideal's gain it captures matches the paper's 0.76 within 0.1.
	nur, priv, ideal := e.Speedup(experiments.NuRAPID), e.Speedup(experiments.Private), e.Speedup(experiments.Ideal)
	if !(nur > priv && priv > 1 && nur < ideal) {
		t.Errorf("Figure 10 ordering broken: NuRAPID %.3f private %.3f ideal %.3f", nur, priv, ideal)
	}
	frac := (nur - 1) / (ideal - 1)
	if frac < 0.6 || frac > 0.9 {
		t.Errorf("NuRAPID captures %.2f of ideal's gain, paper 0.76 (want 0.6-0.9)", frac)
	}

	// Figure 8: ISC cuts RWS misses by >=70% (paper: 80%).
	rwsPriv := e.MissFrac(experiments.Private, memsys.LabelRWS)
	rwsISC := e.MissFrac(experiments.NuRAPIDISC, memsys.LabelRWS)
	if rwsISC > rwsPriv*0.3 {
		t.Errorf("ISC RWS reduction too weak: %.4f vs private %.4f", rwsISC, rwsPriv)
	}

	// Figure 8: CR cuts capacity misses by >=30% (paper: 40%).
	capPriv := e.MissFrac(experiments.Private, memsys.LabelCapacity)
	capCR := e.MissFrac(experiments.NuRAPIDCR, memsys.LabelCapacity)
	if capCR > capPriv*0.7 {
		t.Errorf("CR capacity reduction too weak: %.4f vs private %.4f", capCR, capPriv)
	}

	// Figure 9: CR serves more accesses from the closest d-group than
	// ISC, and both above 65% (paper: 83% and 76%).
	crClosest := e.DataFrac(experiments.NuRAPIDCR, memsys.LabelClosest)
	iscClosest := e.DataFrac(experiments.NuRAPIDISC, memsys.LabelClosest)
	if crClosest <= iscClosest || iscClosest < 0.65 {
		t.Errorf("Figure 9 shape broken: CR %.3f ISC %.3f", crClosest, iscClosest)
	}

	// Figure 11: shared ~<= NuRAPID < private miss rates (paper:
	// 8.9% / 9.7% / 14%).
	sh, nu, pr := e.MixMissRate(experiments.UniformShared), e.MixMissRate(experiments.NuRAPID), e.MixMissRate(experiments.Private)
	if !(sh <= nu+0.01 && nu < pr) {
		t.Errorf("Figure 11 ordering broken: %.3f / %.3f / %.3f", sh, nu, pr)
	}

	// Figure 12: NuRAPID > private > SNUCA > 1 on the mixes.
	mNu, mPr, mSn := e.MixSpeedup(experiments.NuRAPID), e.MixSpeedup(experiments.Private), e.MixSpeedup(experiments.NonUniform)
	if !(mNu > mPr && mPr > mSn && mSn > 1) {
		t.Errorf("Figure 12 ordering broken: %.3f / %.3f / %.3f", mNu, mPr, mSn)
	}

	// §5.2.1: most CMP-NuRAPID accesses hit the closest d-group on the
	// mixes. The paper reports 85% of accesses (93% of hits); we
	// measure ~69% of accesses (~76% of hits) because the synthetic
	// cache-hungry apps keep more of their active set spilled into
	// neighbours' d-groups — capacity stealing working harder, with
	// remote hits instead of the paper's misses.
	if f := e.ClosestDGroupHitFrac(); f < 0.6 {
		t.Errorf("closest-d-group fraction %.3f too low", f)
	}

	t.Logf("headlines: NuRAPID %.3fx, private %.3fx, ideal %.3fx (frac of ideal %.2f); mixes: NuRAPID %.3fx private %.3fx",
		nur, priv, ideal, frac, mNu, mPr)
}
