module cmpnurapid

go 1.22
