// Package bus models the pipelined split-transaction snoopy bus the
// private-cache baseline and CMP-NuRAPID snoop on (paper §2.2.2, §4.2).
//
// The bus has separate wires for addresses and pointers (so CMP-
// NuRAPID's pointer returns ride alongside ordinary snoops), a fixed
// end-to-end latency — the paper sets it to the wire delay for a core
// to reach the farthest tag array, 32 cycles — and pipelined slots:
// a new transaction may be issued every SlotCycles even while earlier
// transactions are still in flight.
package bus

import "cmpnurapid/internal/memsys"

// Kind enumerates snoopy bus transactions. BusRepl is CMP-NuRAPID's
// addition: a broadcast sent before replacing a shared data block so
// sharers whose tags point at the dying frame can invalidate them
// (§3.1).
type Kind int

const (
	BusRd Kind = iota
	BusRdX
	BusUpg
	BusRepl
	Flush
	PtrReturn
	numKinds
)

func (k Kind) String() string {
	switch k {
	case BusRd:
		return "BusRd"
	case BusRdX:
		return "BusRdX"
	case BusUpg:
		return "BusUpg"
	case BusRepl:
		return "BusRepl"
	case Flush:
		return "Flush"
	case PtrReturn:
		return "PtrReturn"
	}
	return "Kind(?)"
}

// Config sets the bus timing parameters.
type Config struct {
	// Latency is the end-to-end cycles for a transaction to be seen by
	// all snoopers (Table 1: 32).
	Latency memsys.Cycles
	// SlotCycles is the issue interval of the pipelined bus: a new
	// transaction can start every SlotCycles.
	SlotCycles memsys.Cycles
	// GrantJitter, when non-nil, returns an extra arbitration delay
	// applied to each transaction before its slot is granted. It is a
	// fault-injection hook (internal/simguard): chaos runs perturb bus
	// arbitration deterministically from a seeded source, and a nil
	// hook (the default everywhere outside chaos tests) leaves timing
	// bit-identical to a bus without the hook.
	GrantJitter func(now memsys.Cycle, kind Kind) memsys.Cycles
}

// DefaultConfig matches the paper's Table 1 bus.
func DefaultConfig() Config { return Config{Latency: 32, SlotCycles: 4} }

// Bus tracks slot occupancy and counts traffic. It is not safe for
// concurrent use; the simulator is single-threaded by design (the
// simulated cores interleave deterministically).
type Bus struct {
	cfg      Config
	nextFree memsys.Cycle
	counts   [numKinds]uint64
	// waitCycles accumulates arbitration stalls for bandwidth analysis.
	waitCycles memsys.Cycles
}

// New creates a bus with the given configuration.
func New(cfg Config) *Bus {
	if cfg.Latency <= 0 || cfg.SlotCycles <= 0 {
		panic("bus: non-positive latency or slot width")
	}
	return &Bus{cfg: cfg}
}

// Transact issues a transaction of the given kind at cycle now. It
// returns the cycle at which the transaction is visible to all snoopers
// (grant + latency). Arbitration delay due to earlier transactions is
// included.
//
// hotpath:root
func (b *Bus) Transact(now memsys.Cycle, kind Kind) (visibleAt memsys.Cycle) {
	grant := now
	if b.cfg.GrantJitter != nil {
		if j := b.cfg.GrantJitter(now, kind); j > 0 {
			b.waitCycles += j
			grant = grant.Add(j)
		}
	}
	if b.nextFree > grant {
		b.waitCycles += b.nextFree.Sub(grant)
		grant = b.nextFree
	}
	b.nextFree = grant.Add(b.cfg.SlotCycles)
	b.counts[kind]++
	return grant.Add(b.cfg.Latency)
}

// Backlog reports how far the arbitration queue extends past now: the
// delay a transaction issued at now would wait for a slot. It is a
// diagnostic probe (forward-progress stall reports include it) and
// does not reserve anything.
func (b *Bus) Backlog(now memsys.Cycle) memsys.Cycles {
	if b.nextFree <= now {
		return 0
	}
	return b.nextFree.Sub(now)
}

// Latency returns the configured end-to-end latency.
func (b *Bus) Latency() memsys.Cycles { return b.cfg.Latency }

// Count returns how many transactions of the given kind were issued.
func (b *Bus) Count(kind Kind) uint64 { return b.counts[kind] }

// TotalTransactions returns the total number issued.
func (b *Bus) TotalTransactions() uint64 {
	var t uint64
	for _, c := range b.counts {
		t += c
	}
	return t
}

// WaitCycles returns the cumulative arbitration stall cycles.
func (b *Bus) WaitCycles() memsys.Cycles { return b.waitCycles }

// Port models a single-ported, unpipelined structure (a private tag
// array or a data d-group; §3.3.2: "each private tag array and data
// d-group is single-ported and not pipelined"). An access occupies the
// port for its full duration.
type Port struct {
	nextFree   memsys.Cycle
	busyCycles memsys.Cycles
}

// Acquire reserves the port at cycle now for dur cycles and returns the
// cycle at which the access starts (>= now if the port was busy).
func (p *Port) Acquire(now memsys.Cycle, dur memsys.Cycles) (start memsys.Cycle) {
	start = now
	if p.nextFree > start {
		start = p.nextFree
	}
	p.nextFree = start.Add(dur)
	p.busyCycles += dur
	return start
}

// BusyCycles returns the total cycles the port has been occupied.
func (p *Port) BusyCycles() memsys.Cycles { return p.busyCycles }
