package bus

import (
	"testing"
	"testing/quick"

	"cmpnurapid/internal/memsys"
)

func TestTransactLatency(t *testing.T) {
	b := New(DefaultConfig())
	if got := b.Transact(100, BusRd); got != 132 {
		t.Errorf("first transaction visible at %d, want 132", got)
	}
}

func TestTransactPipelining(t *testing.T) {
	b := New(Config{Latency: 32, SlotCycles: 4})
	// Two back-to-back transactions at the same cycle: the second waits
	// one slot, not a full latency.
	first := b.Transact(0, BusRd)
	second := b.Transact(0, BusRdX)
	if first != 32 {
		t.Errorf("first = %d, want 32", first)
	}
	if second != 36 {
		t.Errorf("second = %d, want 36 (one slot later)", second)
	}
	if b.WaitCycles() != 4 {
		t.Errorf("WaitCycles = %d, want 4", b.WaitCycles())
	}
}

func TestTransactNoContentionWhenSpaced(t *testing.T) {
	b := New(Config{Latency: 32, SlotCycles: 4})
	b.Transact(0, BusRd)
	if got := b.Transact(10, BusRd); got != 42 {
		t.Errorf("spaced transaction visible at %d, want 42", got)
	}
	if b.WaitCycles() != 0 {
		t.Errorf("WaitCycles = %d, want 0", b.WaitCycles())
	}
}

func TestCounts(t *testing.T) {
	b := New(DefaultConfig())
	b.Transact(0, BusRd)
	b.Transact(0, BusRd)
	b.Transact(0, BusRepl)
	if b.Count(BusRd) != 2 || b.Count(BusRepl) != 1 || b.Count(BusUpg) != 0 {
		t.Errorf("counts wrong: BusRd=%d BusRepl=%d BusUpg=%d",
			b.Count(BusRd), b.Count(BusRepl), b.Count(BusUpg))
	}
	if b.TotalTransactions() != 3 {
		t.Errorf("TotalTransactions = %d, want 3", b.TotalTransactions())
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero latency did not panic")
		}
	}()
	New(Config{Latency: 0, SlotCycles: 4})
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		BusRd: "BusRd", BusRdX: "BusRdX", BusUpg: "BusUpg",
		BusRepl: "BusRepl", Flush: "Flush", PtrReturn: "PtrReturn",
		Kind(99): "Kind(?)",
	}
	for k, w := range want {
		if got := k.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(k), got, w)
		}
	}
}

func TestTransactMonotone(t *testing.T) {
	// Property: visibility times never decrease as issue times advance,
	// and a transaction is always visible at least Latency after issue.
	b := New(Config{Latency: 32, SlotCycles: 4})
	f := func(deltas []uint8) bool {
		now := memsys.Cycle(0)
		lastVis := memsys.Cycle(0)
		for _, d := range deltas {
			now += memsys.Cycle(d)
			vis := b.Transact(now, BusRd)
			if vis < now+32 || vis < lastVis {
				return false
			}
			lastVis = vis
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPortSerializes(t *testing.T) {
	var p Port
	if got := p.Acquire(10, 6); got != 10 {
		t.Errorf("first acquire starts at %d, want 10", got)
	}
	// Overlapping request must wait for the port.
	if got := p.Acquire(12, 6); got != 16 {
		t.Errorf("overlapping acquire starts at %d, want 16", got)
	}
	// A later request after the port drains starts immediately.
	if got := p.Acquire(100, 6); got != 100 {
		t.Errorf("late acquire starts at %d, want 100", got)
	}
	if p.BusyCycles() != 18 {
		t.Errorf("BusyCycles = %d, want 18", p.BusyCycles())
	}
}

func TestPortZeroValueUsable(t *testing.T) {
	var p Port
	if got := p.Acquire(0, 1); got != 0 {
		t.Errorf("zero-value port first acquire = %d, want 0", got)
	}
}

func TestGrantJitterDelaysGrant(t *testing.T) {
	b := New(Config{Latency: 32, SlotCycles: 4,
		GrantJitter: func(now memsys.Cycle, kind Kind) memsys.Cycles { return 10 }})
	if got := b.Transact(0, BusRd); got != 42 {
		t.Errorf("jittered transaction visible at %d, want 42 (10 jitter + 32 latency)", got)
	}
	if b.WaitCycles() != 10 {
		t.Errorf("WaitCycles = %d, want 10 (jitter counts as arbitration wait)", b.WaitCycles())
	}
}

func TestGrantJitterNilIsBitIdentical(t *testing.T) {
	// The hook's zero value must leave the bus exactly as before the
	// hook existed: same grants, same waits, for the same schedule.
	plain := New(Config{Latency: 32, SlotCycles: 4})
	hooked := New(Config{Latency: 32, SlotCycles: 4,
		GrantJitter: func(now memsys.Cycle, kind Kind) memsys.Cycles { return 0 }})
	for i := 0; i < 50; i++ {
		now := memsys.Cycle(0).Add(memsys.CyclesOf(i * 3))
		kind := Kind(i % int(numKinds))
		if a, b := plain.Transact(now, kind), hooked.Transact(now, kind); a != b {
			t.Fatalf("step %d: plain %d != zero-jitter %d", i, a, b)
		}
	}
	if plain.WaitCycles() != hooked.WaitCycles() {
		t.Errorf("wait cycles diverge: %d vs %d", plain.WaitCycles(), hooked.WaitCycles())
	}
}

func TestBacklog(t *testing.T) {
	b := New(Config{Latency: 32, SlotCycles: 4})
	if got := b.Backlog(0); got != 0 {
		t.Errorf("idle backlog = %d, want 0", got)
	}
	b.Transact(0, BusRd) // occupies the slot until cycle 4
	if got := b.Backlog(0); got != 4 {
		t.Errorf("backlog right after issue = %d, want 4", got)
	}
	if got := b.Backlog(2); got != 2 {
		t.Errorf("backlog at cycle 2 = %d, want 2", got)
	}
	if got := b.Backlog(4); got != 0 {
		t.Errorf("backlog at slot end = %d, want 0", got)
	}
	// Probing must not reserve: the next transaction still starts at
	// its natural grant.
	if got := b.Transact(4, BusRd); got != 36 {
		t.Errorf("transaction after probes visible at %d, want 36", got)
	}
}

func TestNewPanicsOnZeroSlotCycles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero slot width did not panic")
		}
	}()
	New(Config{Latency: 32, SlotCycles: 0})
}
