// Package cache provides the generic set-associative structures every
// cache in the simulator is built from: a tag/line array with
// configurable geometry, per-set LRU, and a payload type parameter so
// the same machinery backs L1 caches, conventional L2 designs, and
// CMP-NuRAPID's pointer-carrying private tag arrays.
package cache

import (
	"fmt"

	"cmpnurapid/internal/memsys"
)

// Line is one tag-array entry with a caller-defined payload (coherence
// state, forward pointer, reuse counters, ...).
type Line[T any] struct {
	Valid   bool
	Tag     uint64
	lastUse uint64
	Data    T
}

// Geometry describes a set-associative array.
type Geometry struct {
	Sets       int
	Ways       int
	BlockBytes memsys.Bytes
}

// Validate panics unless all fields are positive powers of two (sets
// and blocks must be for indexing; ways only needs positivity but
// real designs use powers of two and requiring it catches typos).
func (g Geometry) Validate() {
	if !pow2(g.Sets) || !pow2(int(g.BlockBytes)) {
		panic(fmt.Sprintf("cache: sets (%d) and block size (%d) must be powers of two",
			g.Sets, g.BlockBytes))
	}
	if g.Ways <= 0 {
		panic("cache: ways must be positive")
	}
	if g.Ways > 64 {
		// LRUOrder tracks visited ways in a uint64 bitmask so the LRU
		// scan stays allocation-free on the per-access path.
		panic(fmt.Sprintf("cache: ways (%d) must be <= 64", g.Ways))
	}
}

// GeometryFor computes sets from capacity, associativity and block
// size.
func GeometryFor(capacityBytes memsys.Bytes, ways int, blockBytes memsys.Bytes) Geometry {
	sets := capacityBytes.Per(blockBytes.Times(ways))
	if sets == 0 {
		sets = 1
	}
	return Geometry{Sets: sets, Ways: ways, BlockBytes: blockBytes}
}

// CapacityBytes returns the data capacity the geometry covers.
func (g Geometry) CapacityBytes() memsys.Bytes { return g.BlockBytes.Times(g.Sets * g.Ways) }

// Array is a set-associative array of lines with per-set true LRU.
type Array[T any] struct {
	geo       Geometry
	blockBits uint
	setMask   uint64
	lines     []Line[T] // sets*ways, row-major by set
	clock     uint64
}

// NewArray allocates an array with the given geometry.
func NewArray[T any](geo Geometry) *Array[T] {
	geo.Validate()
	return &Array[T]{
		geo:       geo,
		blockBits: uint(log2(int(geo.BlockBytes))),
		setMask:   uint64(geo.Sets - 1),
		lines:     make([]Line[T], geo.Sets*geo.Ways),
	}
}

// Geometry returns the array's geometry.
func (a *Array[T]) Geometry() Geometry { return a.geo }

// SetIndex returns the set an address maps to.
func (a *Array[T]) SetIndex(addr memsys.Addr) int {
	return int((uint64(addr) >> a.blockBits) & a.setMask)
}

// tagOf returns the tag bits for an address (everything above the set
// index; keeping the full shifted address keeps lookups unambiguous).
func (a *Array[T]) tagOf(addr memsys.Addr) uint64 {
	return uint64(addr) >> a.blockBits
}

// Probe returns the line holding addr, or nil on a miss. It does not
// update LRU state; pair with Touch on a real access so read-only scans
// (snoops) do not perturb replacement order.
//
// hotpath:root
func (a *Array[T]) Probe(addr memsys.Addr) *Line[T] {
	set := a.SetIndex(addr)
	tag := a.tagOf(addr)
	base := set * a.geo.Ways
	for i := base; i < base+a.geo.Ways; i++ {
		if a.lines[i].Valid && a.lines[i].Tag == tag {
			return &a.lines[i]
		}
	}
	return nil
}

// Touch marks a line most-recently-used.
func (a *Array[T]) Touch(l *Line[T]) {
	a.clock++
	l.lastUse = a.clock
}

// Set returns the lines of one set (for policy code that needs to scan
// candidates, e.g. CMP-NuRAPID's invalid→private→shared victim order).
func (a *Array[T]) Set(set int) []Line[T] {
	base := set * a.geo.Ways
	return a.lines[base : base+a.geo.Ways]
}

// LRUOrder calls f for the lines of a set from least to most recently
// used, skipping invalid lines. Returning false stops the scan.
func (a *Array[T]) LRUOrder(set int, f func(*Line[T]) bool) {
	lines := a.Set(set)
	// Selection-style scan: sets are small (<= 32 ways), so O(ways^2)
	// is cheaper and simpler than maintaining a list. Visited ways live
	// in a bitmask — Validate caps ways at 64 — so the scan is
	// allocation-free on the per-access path.
	const done = ^uint64(0)
	var visited uint64
	for {
		best := -1
		var bestUse uint64 = done
		for i := range lines {
			if visited&(1<<uint(i)) != 0 || !lines[i].Valid {
				continue
			}
			if lines[i].lastUse < bestUse {
				bestUse = lines[i].lastUse
				best = i
			}
		}
		if best == -1 {
			return
		}
		visited |= 1 << uint(best)
		if !f(&lines[best]) {
			return
		}
	}
}

// Victim returns the line to replace in addr's set: an invalid line if
// any, else the least recently used valid line.
func (a *Array[T]) Victim(addr memsys.Addr) *Line[T] {
	set := a.SetIndex(addr)
	lines := a.Set(set)
	var lru *Line[T]
	for i := range lines {
		l := &lines[i]
		if !l.Valid {
			return l
		}
		if lru == nil || l.lastUse < lru.lastUse {
			lru = l
		}
	}
	return lru
}

// Install writes addr into line l, marks it valid and MRU, and returns
// l for chaining. The caller is responsible for having evicted the old
// contents (Victim hands back the line to inspect first).
func (a *Array[T]) Install(l *Line[T], addr memsys.Addr, data T) *Line[T] {
	l.Valid = true
	l.Tag = a.tagOf(addr)
	l.Data = data
	a.Touch(l)
	return l
}

// Invalidate clears a line.
func (a *Array[T]) Invalidate(l *Line[T]) {
	var zero T
	l.Valid = false
	l.Tag = 0
	l.Data = zero
}

// AddrOf reconstructs the block address stored in a line. (The tag
// keeps the full block address, so the set index is not needed.)
func (a *Array[T]) AddrOf(l *Line[T]) memsys.Addr {
	return memsys.Addr(l.Tag << a.blockBits)
}

// ForEach calls f for every valid line with its set index.
func (a *Array[T]) ForEach(f func(set int, l *Line[T])) {
	for i := range a.lines {
		if a.lines[i].Valid {
			f(i/a.geo.Ways, &a.lines[i])
		}
	}
}

// CountValid returns the number of valid lines.
func (a *Array[T]) CountValid() int {
	n := 0
	for i := range a.lines {
		if a.lines[i].Valid {
			n++
		}
	}
	return n
}

func pow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
