package cache

import (
	"testing"
	"testing/quick"

	"cmpnurapid/internal/memsys"
)

func smallArray() *Array[int] {
	return NewArray[int](Geometry{Sets: 4, Ways: 2, BlockBytes: 64})
}

func TestGeometryFor(t *testing.T) {
	g := GeometryFor(2<<20, 8, 128)
	if g.Sets != 2048 || g.Ways != 8 || g.BlockBytes != 128 {
		t.Errorf("GeometryFor = %+v", g)
	}
	if g.CapacityBytes() != 2<<20 {
		t.Errorf("CapacityBytes = %d, want 2 MB", g.CapacityBytes())
	}
}

func TestGeometryValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets did not panic")
		}
	}()
	NewArray[int](Geometry{Sets: 3, Ways: 2, BlockBytes: 64})
}

func TestProbeMissThenHit(t *testing.T) {
	a := smallArray()
	addr := memsys.Addr(0x1000)
	if a.Probe(addr) != nil {
		t.Fatal("probe of empty cache hit")
	}
	v := a.Victim(addr)
	a.Install(v, addr, 42)
	l := a.Probe(addr)
	if l == nil {
		t.Fatal("probe after install missed")
	}
	if l.Data != 42 {
		t.Errorf("payload = %d, want 42", l.Data)
	}
}

func TestSetIndexAndConflict(t *testing.T) {
	a := smallArray()
	// 4 sets, 64 B blocks: addresses 64*4 apart map to the same set.
	a0 := memsys.Addr(0)
	a1 := memsys.Addr(64 * 4)
	a2 := memsys.Addr(64 * 8)
	if a.SetIndex(a0) != a.SetIndex(a1) || a.SetIndex(a1) != a.SetIndex(a2) {
		t.Fatal("stride-4-blocks addresses should conflict in a 4-set cache")
	}
	if a.SetIndex(a0) == a.SetIndex(memsys.Addr(64)) {
		t.Fatal("adjacent blocks should map to different sets")
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	a := smallArray()
	addr := memsys.Addr(0)
	a.Install(a.Victim(addr), addr, 1)
	v := a.Victim(memsys.Addr(64 * 4)) // same set, one way still free
	if v.Valid {
		t.Error("victim should be the invalid way while one remains")
	}
}

func TestVictimLRU(t *testing.T) {
	a := smallArray()
	a0, a1, a2 := memsys.Addr(0), memsys.Addr(64*4), memsys.Addr(64*8)
	a.Install(a.Victim(a0), a0, 0)
	a.Install(a.Victim(a1), a1, 1)
	// Touch a0 so a1 becomes LRU.
	a.Touch(a.Probe(a0))
	v := a.Victim(a2)
	if !v.Valid || a.AddrOf(v) != a1 {
		t.Errorf("LRU victim = %v (addr %#x), want block %#x", v.Valid, a.AddrOf(v), a1)
	}
}

func TestProbeDoesNotPerturbLRU(t *testing.T) {
	a := smallArray()
	a0, a1, a2 := memsys.Addr(0), memsys.Addr(64*4), memsys.Addr(64*8)
	a.Install(a.Victim(a0), a0, 0)
	a.Install(a.Victim(a1), a1, 1)
	// A bare Probe of a0 (like a snoop) must not rescue it from LRU.
	a.Probe(a0)
	v := a.Victim(a2)
	if a.AddrOf(v) != a0 {
		t.Errorf("probe changed LRU order: victim %#x, want %#x", a.AddrOf(v), a0)
	}
}

func TestInvalidate(t *testing.T) {
	a := smallArray()
	addr := memsys.Addr(0x40)
	a.Install(a.Victim(addr), addr, 7)
	a.Invalidate(a.Probe(addr))
	if a.Probe(addr) != nil {
		t.Error("probe after invalidate hit")
	}
	if a.CountValid() != 0 {
		t.Errorf("CountValid = %d, want 0", a.CountValid())
	}
}

func TestAddrOfRoundTrip(t *testing.T) {
	a := NewArray[struct{}](Geometry{Sets: 64, Ways: 4, BlockBytes: 128})
	f := func(raw uint64) bool {
		addr := memsys.Addr(raw).BlockAddr(128)
		l := a.Victim(addr)
		a.Install(l, addr, struct{}{})
		return a.AddrOf(l) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLRUOrder(t *testing.T) {
	a := smallArray()
	a0, a1 := memsys.Addr(0), memsys.Addr(64*4)
	a.Install(a.Victim(a0), a0, 0)
	a.Install(a.Victim(a1), a1, 1)
	a.Touch(a.Probe(a0)) // a1 now LRU
	var order []memsys.Addr
	a.LRUOrder(a.SetIndex(a0), func(l *Line[int]) bool {
		order = append(order, a.AddrOf(l))
		return true
	})
	if len(order) != 2 || order[0] != a1 || order[1] != a0 {
		t.Errorf("LRUOrder = %v, want [%#x %#x]", order, a1, a0)
	}
}

func TestLRUOrderEarlyStop(t *testing.T) {
	a := smallArray()
	a0, a1 := memsys.Addr(0), memsys.Addr(64*4)
	a.Install(a.Victim(a0), a0, 0)
	a.Install(a.Victim(a1), a1, 1)
	n := 0
	a.LRUOrder(0, func(*Line[int]) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stopped scan visited %d lines, want 1", n)
	}
}

func TestForEach(t *testing.T) {
	a := smallArray()
	addrs := []memsys.Addr{0, 64, 128, 64 * 4}
	for i, ad := range addrs {
		a.Install(a.Victim(ad), ad, i)
	}
	seen := map[memsys.Addr]bool{}
	a.ForEach(func(set int, l *Line[int]) {
		seen[a.AddrOf(l)] = true
		if a.SetIndex(a.AddrOf(l)) != set {
			t.Errorf("ForEach set %d inconsistent with address %#x", set, a.AddrOf(l))
		}
	})
	if len(seen) != len(addrs) {
		t.Errorf("ForEach visited %d lines, want %d", len(seen), len(addrs))
	}
}

func TestFullSetEvictionCycle(t *testing.T) {
	// Property: in a 2-way set, after installing 3 conflicting blocks
	// the first is gone and the last two remain.
	a := smallArray()
	blocks := []memsys.Addr{0, 64 * 4, 64 * 8}
	for i, b := range blocks {
		v := a.Victim(b)
		a.Install(v, b, i)
	}
	if a.Probe(blocks[0]) != nil {
		t.Error("oldest block survived full-set eviction")
	}
	if a.Probe(blocks[1]) == nil || a.Probe(blocks[2]) == nil {
		t.Error("recent blocks evicted unexpectedly")
	}
}

func TestCapacityInvariant(t *testing.T) {
	// Property: valid-line count never exceeds sets*ways regardless of
	// the install sequence.
	a := NewArray[int](Geometry{Sets: 2, Ways: 2, BlockBytes: 64})
	f := func(raws []uint32) bool {
		for _, r := range raws {
			ad := memsys.Addr(r).BlockAddr(64)
			if a.Probe(ad) == nil {
				a.Install(a.Victim(ad), ad, 0)
			}
		}
		return a.CountValid() <= 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometryForMinimumOneSet(t *testing.T) {
	// Capacity smaller than one way-set still yields an indexable
	// geometry: sets is clamped to 1, never 0.
	g := GeometryFor(64, 2, 64)
	if g.Sets != 1 {
		t.Errorf("GeometryFor(64 B, 2 ways, 64 B blocks).Sets = %d, want 1", g.Sets)
	}
}

func TestVictimPrefersStaleInvalidatedLine(t *testing.T) {
	// Invalidate keeps the line's old lastUse, so an invalidated line
	// can look "more recently used" than a valid one. Victim must
	// still hand back the invalid line, not the valid LRU.
	a := smallArray()
	a0, a1 := memsys.Addr(0), memsys.Addr(64*4)
	a.Install(a.Victim(a0), a0, 0)
	a.Install(a.Victim(a1), a1, 1) // a1 is MRU
	a.Invalidate(a.Probe(a1))
	if v := a.Victim(memsys.Addr(64 * 8)); v.Valid {
		t.Errorf("victim is valid block %#x, want the invalidated way", a.AddrOf(v))
	}
}
