// Package cacti is a simplified analytical cache-timing model standing
// in for the modified Cacti 3.2 used by the paper (§4.2). It derives
// access latencies, in cycles at 5 GHz / 70 nm, from cache geometry:
//
//	t_array = a + b·sqrt(size_KB) + c·log2(assoc)        (array access)
//	t_wire  = distance_mm · WirePSPerMM                   (routing)
//
// following the paper's methodology of (1) treating each d-group as an
// independent tagless cache optimized for subarray geometry, (2)
// accounting for the RC wire delay to route around closer d-groups, and
// (3) separately optimizing the tag arrays. The constants are
// calibrated so the model reproduces the paper's Table 1 exactly (the
// real Cacti is unavailable; see DESIGN.md substitution record) while
// still *scaling* with geometry, so ablations over different sizes and
// associativities remain meaningful.
//
// The model's physical quantities are carried by the dimensional types
// Picoseconds and Millimeters; ToCycles is the single place physical
// time becomes clock cycles, and it always rounds up.
package cacti

import (
	"math"

	"cmpnurapid/internal/memsys"
)

// Picoseconds is a physical delay in the timing model, before
// quantization to clock cycles.
//
// unitcheck:unit duration
type Picoseconds float64

// Millimeters is an on-chip routing distance.
//
// unitcheck:unit length
type Millimeters float64

// Technology constants at 70 nm, 5 GHz.
const (
	// CyclePS is the clock period in picoseconds (5 GHz).
	CyclePS Picoseconds = 200.0

	// WirePSPerMM is the delay of a repeated global RC wire. Calibrated
	// against the paper's 32-cycle bus (a 16 mm cross-chip route) and
	// the 27-cycle delta between the closest and farthest d-group.
	WirePSPerMM = 400.0

	// AddressBits is the physical address width used to size tag
	// entries (the paper simulates a 4 GB memory; we allow headroom).
	AddressBits = 40

	// PointerBits is the size of NuRAPID forward/reverse pointers; an
	// 8 MB cache with 128 B blocks has 64 Ki frames, so 16 bits suffice
	// ([8]: "16-bit forward and reverse pointers").
	PointerBits = 16

	// StateBits covers MESIC coherence state plus valid.
	StateBits = 3
)

// Tag-array timing coefficients (picoseconds).
const (
	tagBasePS      = 66.0
	tagPerSqrtKBPS = 48.6
	tagPerWayLogPS = 93.0
)

// Data-bank timing coefficients (picoseconds). Data banks have wide
// (block-width) accesses, so they are faster per bit than tag arrays.
const (
	dataBasePS      = 115.0
	dataPerSqrtKBPS = 19.9
	dataPerWayLogPS = 60.0
)

// outputDriverPS is the fixed output-path overhead charged once per
// parallel tag+data access (used for L1-style caches).
const outputDriverPS = 150.0

// Scale returns the distance scaled by the dimensionless factor f
// (floorplan distances shrink with the square root of bank area in the
// capacity-sensitivity sweeps).
func (m Millimeters) Scale(f float64) Millimeters {
	return Millimeters(float64(m) * f)
}

// TagArrayPS returns the access time of a tag array of the given size
// in KB probed with the given associativity (comparators and way
// muxing grow with log2 of associativity).
func TagArrayPS(sizeKB float64, assoc int) Picoseconds {
	return Picoseconds(tagBasePS + tagPerSqrtKBPS*math.Sqrt(sizeKB) + tagPerWayLogPS*log2(assoc))
}

// DataBankPS returns the access time of a data bank (or d-group) of the
// given size in KB. For sequential tag-data access the bank is accessed
// as a direct frame lookup, but sense/mux circuitry still scales with
// the set associativity the bank was laid out for.
func DataBankPS(sizeKB float64, assoc int) Picoseconds {
	return Picoseconds(dataBasePS + dataPerSqrtKBPS*math.Sqrt(sizeKB) + dataPerWayLogPS*log2(assoc))
}

// WirePS returns the routing delay over distance mm of repeated wire.
func WirePS(mm Millimeters) Picoseconds {
	return Picoseconds(float64(mm) * WirePSPerMM)
}

// ToCycles converts physical time to whole clock cycles. It is the
// single ps→cycle conversion in the codebase and always rounds the
// same direction: up (ceiling), with a floor of one cycle — an access
// can never complete in less than a cycle.
func ToCycles(ps Picoseconds) memsys.Cycles {
	c := memsys.Cycles(math.Ceil(float64(ps / CyclePS)))
	if c < 1 {
		c = 1
	}
	return c
}

// TagGeometry describes a tag array's logical contents.
type TagGeometry struct {
	CacheBytes memsys.Bytes // capacity of the data the tags cover
	BlockBytes memsys.Bytes
	Assoc      int
	// SetFactor multiplies the number of sets; CMP-NuRAPID doubles each
	// core's tag capacity ("we double the number of sets while
	// maintaining the same set associativity", §2.2.2).
	SetFactor int
	// Pointers is true when each entry carries a forward pointer
	// (distance-associative designs).
	Pointers bool
}

// Sets returns the number of tag sets.
func (g TagGeometry) Sets() int {
	sets := g.CacheBytes.Per(g.BlockBytes.Times(g.Assoc))
	f := g.SetFactor
	if f < 1 {
		f = 1
	}
	return sets * f
}

// Entries returns the total number of tag entries.
func (g TagGeometry) Entries() int { return g.Sets() * g.Assoc }

// EntryBits returns the width of one tag entry.
func (g TagGeometry) EntryBits() int {
	setBits := log2i(g.Sets())
	offsetBits := log2i(int(g.BlockBytes))
	tagBits := AddressBits - setBits - offsetBits
	bits := tagBits + StateBits
	if g.Pointers {
		bits += PointerBits
	}
	return bits
}

// SizeKB returns the tag array size in KB.
func (g TagGeometry) SizeKB() float64 {
	return float64(g.Entries()*g.EntryBits()) / 8 / 1024
}

// AccessPS returns the tag array access time in picoseconds.
func (g TagGeometry) AccessPS() Picoseconds { return TagArrayPS(g.SizeKB(), g.Assoc) }

// AccessCycles returns the tag array access time in cycles.
func (g TagGeometry) AccessCycles() memsys.Cycles { return ToCycles(g.AccessPS()) }

// DataBankCycles returns the access latency in cycles of a data bank of
// bankBytes capacity laid out for the given associativity, plus the
// wire delay to reach it over wireMM of routing.
func DataBankCycles(bankBytes memsys.Bytes, assoc int, wireMM Millimeters) memsys.Cycles {
	ps := DataBankPS(bankBytes.KB(), assoc) + WirePS(wireMM)
	return ToCycles(ps)
}

// TagCycles returns the access latency in cycles of a tag array with
// geometry g reached over wireMM of routing (0 for a core-adjacent
// private tag; the chip-central shared tag pays a long route).
func TagCycles(g TagGeometry, wireMM Millimeters) memsys.Cycles {
	return ToCycles(g.AccessPS() + WirePS(wireMM))
}

// ParallelCacheCycles models a small cache (e.g. an L1) that probes tag
// and data in parallel: max of the two paths plus the output driver.
func ParallelCacheCycles(cacheBytes, blockBytes memsys.Bytes, assoc int) memsys.Cycles {
	g := TagGeometry{CacheBytes: cacheBytes, BlockBytes: blockBytes, Assoc: assoc}
	data := DataBankPS(cacheBytes.KB(), assoc)
	ps := Picoseconds(math.Max(float64(g.AccessPS()), float64(data))) + outputDriverPS
	return ToCycles(ps)
}

// BusCycles returns the latency of the pipelined split-transaction bus:
// the paper assumes it equals the wire delay for a core to reach the
// farthest tag array (§4.2).
func BusCycles(routeMM Millimeters) memsys.Cycles { return ToCycles(WirePS(routeMM)) }

func log2(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))
}

// log2i returns floor(log2(n)) for n >= 1.
func log2i(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
