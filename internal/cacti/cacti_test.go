package cacti

import (
	"testing"
	"testing/quick"
)

func TestCyclesRoundsUp(t *testing.T) {
	cases := []struct {
		ps   float64
		want int
	}{
		{0, 1}, {1, 1}, {200, 1}, {200.1, 2}, {400, 2}, {6400, 32},
	}
	for _, c := range cases {
		if got := ToCycles(Picoseconds(c.ps)); int64(got) != int64(c.want) {
			t.Errorf("ToCycles(%v) = %d, want %d", c.ps, got, c.want)
		}
	}
}

func TestTagArrayMonotonicInSize(t *testing.T) {
	prev := Picoseconds(0)
	for kb := 1.0; kb <= 1024; kb *= 2 {
		ps := TagArrayPS(kb, 8)
		if ps <= prev {
			t.Fatalf("TagArrayPS not increasing at %v KB", kb)
		}
		prev = ps
	}
}

func TestTagArrayMonotonicInAssoc(t *testing.T) {
	prev := Picoseconds(0)
	for a := 1; a <= 64; a *= 2 {
		ps := TagArrayPS(128, a)
		if ps <= prev && a > 1 {
			t.Fatalf("TagArrayPS not increasing at assoc %d", a)
		}
		prev = ps
	}
}

func TestDataBankMonotonic(t *testing.T) {
	if DataBankPS(2048, 8) <= DataBankPS(1024, 8) {
		t.Error("DataBankPS not increasing in size")
	}
	if DataBankPS(2048, 16) <= DataBankPS(2048, 8) {
		t.Error("DataBankPS not increasing in assoc")
	}
}

func TestWireLinear(t *testing.T) {
	if WirePS(2) != 2*WirePS(1) {
		t.Error("WirePS not linear")
	}
	if WirePS(0) != 0 {
		t.Error("WirePS(0) != 0")
	}
}

func TestTagGeometryPrivate2MB(t *testing.T) {
	// Paper Table 1: private 2 MB 8-way tag = 4 cycles.
	g := TagGeometry{CacheBytes: 2 << 20, BlockBytes: 128, Assoc: 8}
	if got := g.Sets(); got != 2048 {
		t.Errorf("Sets = %d, want 2048", got)
	}
	if got := g.Entries(); got != 16384 {
		t.Errorf("Entries = %d, want 16384", got)
	}
	if got := g.AccessCycles(); got != 4 {
		t.Errorf("private tag = %d cycles, want 4 (Table 1)", got)
	}
}

func TestTagGeometryNuRAPID(t *testing.T) {
	// Paper Table 1: CMP-NuRAPID tag with doubled entry count and
	// forward pointers = 5 cycles.
	g := TagGeometry{
		CacheBytes: 2 << 20, BlockBytes: 128, Assoc: 8,
		SetFactor: 2, Pointers: true,
	}
	if got := g.Sets(); got != 4096 {
		t.Errorf("Sets = %d, want 4096", got)
	}
	if got := g.AccessCycles(); got != 5 {
		t.Errorf("NuRAPID tag = %d cycles, want 5 (Table 1)", got)
	}
}

func TestTagGeometrySharedCentral(t *testing.T) {
	// Paper Table 1: shared 8 MB 32-way central tag = 26 cycles
	// including the wire delay to reach the chip centre.
	g := TagGeometry{CacheBytes: 8 << 20, BlockBytes: 128, Assoc: 32}
	if got := TagCycles(g, 9.5); got != 26 {
		t.Errorf("shared central tag = %d cycles, want 26 (Table 1)", got)
	}
}

func TestDataBankTable1(t *testing.T) {
	// Paper Table 1 d-group data latencies from P0: 6, 20, 20, 33.
	cases := []struct {
		mm   Millimeters
		want int
	}{
		{0, 6}, {7, 20}, {13.5, 33},
	}
	for _, c := range cases {
		if got := DataBankCycles(2<<20, 8, c.mm); int64(got) != int64(c.want) {
			t.Errorf("DataBankCycles(2MB, 8, %vmm) = %d, want %d", c.mm, got, c.want)
		}
	}
}

func TestBusTable1(t *testing.T) {
	if got := BusCycles(16); got != 32 {
		t.Errorf("bus = %d cycles, want 32 (Table 1)", got)
	}
}

func TestL1Latency(t *testing.T) {
	// Paper §4.1: 64 KB 2-way L1 with 64 B blocks has 3-cycle latency.
	if got := ParallelCacheCycles(64<<10, 64, 2); got != 3 {
		t.Errorf("L1 = %d cycles, want 3", got)
	}
}

func TestEntryBitsPointerOverhead(t *testing.T) {
	plain := TagGeometry{CacheBytes: 2 << 20, BlockBytes: 128, Assoc: 8}
	ptr := plain
	ptr.Pointers = true
	if ptr.EntryBits() != plain.EntryBits()+PointerBits {
		t.Errorf("pointer entry overhead: %d vs %d+%d",
			ptr.EntryBits(), plain.EntryBits(), PointerBits)
	}
}

func TestPointerCapacityOverheadMatchesPaper(t *testing.T) {
	// [8]/§2.1: in an 8 MB cache with 128 B blocks, 16-bit forward and
	// reverse pointers constitute a 256 KB (3%) overhead.
	frames := (8 << 20) / 128
	overheadBytes := frames * 2 * PointerBits / 8
	if overheadBytes != 256<<10 {
		t.Errorf("pointer overhead = %d bytes, want 256 KB", overheadBytes)
	}
}

func TestLog2i(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 2048: 11, 4096: 12}
	for n, want := range cases {
		if got := log2i(n); got != want {
			t.Errorf("log2i(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestToCyclesCeilingProperty(t *testing.T) {
	// Property: ToCycles is the ceiling of ps/CyclePS with a one-cycle
	// floor — never truncation. Every conversion site in the simulator
	// must round the same direction, so the direction is pinned here.
	f := func(raw uint32) bool {
		ps := Picoseconds(float64(raw) / 16) // cover fractional cycles
		c := ToCycles(ps)
		exact := float64(ps / CyclePS)
		if c < 1 {
			return false
		}
		if float64(c) < exact {
			return false // rounded down: not a ceiling
		}
		return c == 1 || float64(c-1) < exact // tight: not over-rounded
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessCyclesMonotonicInGeometry(t *testing.T) {
	// Growing a tag array (capacity or associativity) must never make
	// it faster.
	base := TagGeometry{CacheBytes: 1 << 20, BlockBytes: 128, Assoc: 8}
	bigger := base
	bigger.CacheBytes = 4 << 20
	wider := base
	wider.Assoc = 32
	if base.AccessCycles() > bigger.AccessCycles() {
		t.Errorf("4 MB tag (%d cycles) faster than 1 MB (%d cycles)",
			bigger.AccessCycles(), base.AccessCycles())
	}
	if base.AccessCycles() > wider.AccessCycles() {
		t.Errorf("32-way tag (%d cycles) faster than 8-way (%d cycles)",
			wider.AccessCycles(), base.AccessCycles())
	}
}

func TestCyclesProperty(t *testing.T) {
	// Property: ToCycles is monotone and always >= 1.
	f := func(a, b uint16) bool {
		x, y := Picoseconds(a), Picoseconds(b)
		if x > y {
			x, y = y, x
		}
		return ToCycles(x) >= 1 && ToCycles(x) <= ToCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
