package cmpsim

import (
	"testing"

	"cmpnurapid/internal/core"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// benchWorkload is an allocation-free deterministic stream: each core
// walks a private 32 KB window with periodic stores and periodic
// references into a shared region (so replication, coherence and the
// bus all stay exercised). State is four counters — Next never
// allocates, keeping the benchmark a measurement of the simulator's
// per-cycle path alone.
type benchWorkload struct {
	n [topo.NumCores]uint64
}

func (w *benchWorkload) Next(c int) Op {
	w.n[c]++
	i := w.n[c]
	addr := memsys.Addr(0x100000*uint64(c+1) + i%512*64)
	if i%17 == 0 {
		addr = memsys.Addr(0x800000 + i%64*64)
	}
	return Op{Compute: int(i % 4), Addr: addr, Write: i%5 == 0}
}

func (w *benchWorkload) Name() string { return "bench-synthetic" }

func benchSystem() *System {
	return New(DefaultConfig(), core.New(core.DefaultConfig()), &benchWorkload{})
}

func (s *System) maxCycle() memsys.Cycle {
	var m memsys.Cycle
	for _, cs := range s.cores {
		if cs.cycles > m {
			m = cs.cycles
		}
	}
	return m
}

// BenchmarkSimStep is the per-cycle microbenchmark behind
// BENCH_quick.json: one scheduler step per iteration, round-robin
// across cores, over the CMP-NuRAPID design (the deepest per-access
// path: private tags, d-groups, MESIC, bus). The committed trajectory
// holds its allocs/op at zero; sim-cycles/sec is the throughput metric
// ROADMAP's event-driven refactor must improve on.
func BenchmarkSimStep(b *testing.B) {
	s := benchSystem()
	s.Warmup(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	start := s.maxCycle()
	for i := 0; i < b.N; i++ {
		s.step(i % s.cfg.Cores)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(s.maxCycle().Sub(start))/secs, "simcycles/sec")
	}
}

// TestStepDoesNotAllocate holds the per-cycle path to zero heap
// allocations — the property the hotpath lint enforces statically,
// checked here dynamically. A regression to either gate (a construct
// the lint misses, or an audited marker hiding a per-cycle cost) shows
// up as a nonzero average.
func TestStepDoesNotAllocate(t *testing.T) {
	s := benchSystem()
	s.Warmup(10_000)
	next := 0
	avg := testing.AllocsPerRun(20_000, func() {
		s.step(next)
		next = (next + 1) % s.cfg.Cores
	})
	if avg != 0 {
		t.Fatalf("step allocates %.4f times per call, want 0", avg)
	}
}
