package cmpsim

import (
	"fmt"
	"testing"

	"cmpnurapid/internal/core"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// benchWorkload is an allocation-free deterministic stream: each core
// walks a private 32 KB window with periodic stores and periodic
// references into a shared region (so replication, coherence and the
// bus all stay exercised). State is four counters — Next never
// allocates, keeping the benchmark a measurement of the simulator's
// per-cycle path alone.
type benchWorkload struct {
	n [topo.NumCores]uint64
}

func (w *benchWorkload) Next(c int) Op {
	w.n[c]++
	i := w.n[c]
	addr := memsys.Addr(0x100000*uint64(c+1) + i%512*64)
	if i%17 == 0 {
		addr = memsys.Addr(0x800000 + i%64*64)
	}
	return Op{Compute: int(i % 4), Addr: addr, Write: i%5 == 0}
}

func (w *benchWorkload) Name() string { return "bench-synthetic" }

func benchSystem() *System {
	return New(DefaultConfig(), core.New(core.DefaultConfig()), &benchWorkload{})
}

func (s *System) maxCycle() memsys.Cycle {
	var m memsys.Cycle
	for _, cs := range s.cores {
		if cs.cycles > m {
			m = cs.cycles
		}
	}
	return m
}

// BenchmarkSimStep is the per-cycle microbenchmark behind
// BENCH_quick.json: one scheduler step per iteration, round-robin
// across cores, over the CMP-NuRAPID design (the deepest per-access
// path: private tags, d-groups, MESIC, bus). The committed trajectory
// holds its allocs/op at zero; sim-cycles/sec is the throughput metric
// ROADMAP's event-driven refactor must improve on.
func BenchmarkSimStep(b *testing.B) {
	s := benchSystem()
	s.Warmup(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	start := s.maxCycle()
	for i := 0; i < b.N; i++ {
		s.step(i % s.cfg.Cores)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(s.maxCycle().Sub(start))/secs, "simcycles/sec")
	}
}

// schedBenchLatency is the synthetic per-step cost for the scheduler
// benchmarks: a splitmix-style hash of (clock, core) spread over
// 1..400 cycles, the stall-heavy regime where most cores sit far in
// the future waiting on long memory latencies and the scheduler's own
// laggard selection dominates. Deterministic, allocation-free, and
// identical for the scan and heap variants, so the simcycles/sec gap
// between them is pure scheduler overhead.
func schedBenchLatency(core int, clk memsys.Cycle) memsys.Cycles {
	h := uint64(clk)*0x9e3779b97f4a7c15 + uint64(core)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return memsys.CyclesOf(int(1 + h%400))
}

// benchmarkSchedHeap drives the event-driven laggard heap alone — pop
// the laggard, advance it by a synthetic latency, sift — reporting
// simulated-cycles/sec of pure scheduling throughput.
func benchmarkSchedHeap(b *testing.B, n int) {
	h := newLaggardHeap(n)
	for i := 0; i < n; i++ {
		h.Set(i, 0)
	}
	h.Init()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core, clk := h.Min()
		h.AdvanceMin(clk.Add(schedBenchLatency(core, clk)))
	}
	b.StopTimer()
	_, laggard := h.Min()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(laggard.Sub(0))/secs, "simcycles/sec")
	}
}

// benchmarkSchedScan is the historical linear laggard scan over the
// same synthetic workload — the before side of the committed
// trajectory's scan-vs-heap comparison.
func benchmarkSchedScan(b *testing.B, n int) {
	clocks := make([]memsys.Cycle, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pick := 0
		for c := range clocks {
			if clocks[c] < clocks[pick] {
				pick = c
			}
		}
		clocks[pick] = clocks[pick].Add(schedBenchLatency(pick, clocks[pick]))
	}
	b.StopTimer()
	laggard := clocks[0]
	for _, c := range clocks {
		if c < laggard {
			laggard = c
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(laggard.Sub(0))/secs, "simcycles/sec")
	}
}

// BenchmarkSchedulerLoop records the event-driven refactor's win in
// the committed trajectory rather than asserting it: heap (the real
// scheduler) vs scan (the pre-refactor linear laggard scan, also kept
// as the differential-test reference) at 4, 16 and 64 synthetic
// cores. Core counts beyond the paper's 4 are the point — ROADMAP
// item 2's 16-64-core mesh work rides on the O(log N) pop — and both
// variants hold allocs/op at zero.
func BenchmarkSchedulerLoop(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("heap%d", n), func(b *testing.B) { benchmarkSchedHeap(b, n) })
		b.Run(fmt.Sprintf("scan%d", n), func(b *testing.B) { benchmarkSchedScan(b, n) })
	}
}

// BenchmarkRunQuantum measures the full event-driven loop end to end —
// runUntil over CMP-NuRAPID with the synthetic bench workload, one
// complete measurement quantum per iteration — so scheduler overhead
// is captured in context, not just in isolation.
func BenchmarkRunQuantum(b *testing.B) {
	s := benchSystem()
	s.Warmup(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	start := s.maxCycle()
	for i := 0; i < b.N; i++ {
		s.Warmup(0) // resets quantum baselines; executes no steps
		s.Run(200)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(s.maxCycle().Sub(start))/secs, "simcycles/sec")
	}
}

// TestStepDoesNotAllocate holds the per-cycle path to zero heap
// allocations — the property the hotpath lint enforces statically,
// checked here dynamically. A regression to either gate (a construct
// the lint misses, or an audited marker hiding a per-cycle cost) shows
// up as a nonzero average.
func TestStepDoesNotAllocate(t *testing.T) {
	s := benchSystem()
	s.Warmup(10_000)
	next := 0
	avg := testing.AllocsPerRun(20_000, func() {
		s.step(next)
		next = (next + 1) % s.cfg.Cores
	})
	if avg != 0 {
		t.Fatalf("step allocates %.4f times per call, want 0", avg)
	}
}
