// Package cmpsim is the CMP system simulator: four in-order x86-style
// cores, each with split 64 KB 2-way L1 I and D caches (3-cycle, one
// outstanding miss), over any memsys.L2 design, with multi-level
// inclusion and the paper's write-through rule for MESIC C blocks
// (paper §4.1).
//
// Timing model: with in-order issue and a single outstanding miss —
// the paper's CPU model — a core's timeline is strictly sequential, so
// per-access latency accounting plus resource reservations (bus slots,
// single-ported tag arrays and d-groups) reproduces the cycle counts
// an event-driven pipeline model would give. Cores interleave in
// global-cycle order, so cross-core contention is seen in the order it
// would occur.
package cmpsim

import (
	"fmt"

	"cmpnurapid/internal/cache"
	"cmpnurapid/internal/cacti"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/simguard"
	"cmpnurapid/internal/topo"
)

// Op is one unit of work from a workload stream: Compute non-memory
// instructions followed by one memory reference (unless NoMem).
type Op struct {
	Compute int // non-memory instructions preceding the reference
	Addr    memsys.Addr
	Write   bool
	Instr   bool // instruction fetch: routed through the L1 I-cache
	NoMem   bool // pure compute; Addr/Write/Instr ignored
}

// Workload supplies each core's instruction stream. Implementations
// must be deterministic for a fixed seed.
type Workload interface {
	// Next returns core's next op. Streams are infinite.
	Next(core int) Op
	// Name identifies the workload in experiment output.
	Name() string
}

// CommunicationProber is implemented by L2 designs (CMP-NuRAPID) whose
// C-state blocks require write-through L1s (§3.2: "we use write-through
// for all the C blocks in the L1 cache").
type CommunicationProber interface {
	IsCommunication(core int, addr memsys.Addr) bool
}

// Config sets the per-core L1 parameters (paper §4.1 defaults) and the
// robustness envelope every run executes under.
type Config struct {
	Cores     int
	L1Bytes   memsys.Bytes
	L1Ways    int
	L1Block   memsys.Bytes
	L1Latency memsys.Cycles

	// MaxCycles is a hard cycle budget for each measurement Run phase:
	// a Run whose laggard core advances more than MaxCycles beyond the
	// phase's starting clock aborts with a
	// *simguard.CycleLimitExceeded. The budget is anchored at the
	// phase's start — the maximum core clock when the phase begins —
	// not at absolute cycle 0, so a Warmup (which deliberately never
	// rewinds clocks) does not silently spend the measurement run's
	// budget and a tight budget cannot trip on a healthy run the
	// moment it starts. Warmup phases are always bounded by the
	// ceiling derived from their instruction budget instead: a warmup
	// has no user-meaningful cycle quota, and the derived ceiling
	// already guarantees it cannot hang. 0 (the default) applies the
	// derived per-phase ceiling to Run phases too, so even a watchdog
	// bug cannot hang a run — see docs/ROBUSTNESS.md.
	MaxCycles memsys.Cycles

	// StallWindow is the forward-progress watchdog window: if no core
	// retires an instruction for this many cycles (or scheduler steps),
	// the run aborts with a *simguard.ProgressStall. 0 selects
	// simguard.DefaultStallWindow.
	StallWindow memsys.Cycles

	// ExtraLatency, when non-nil, adds cycles to every L2 access the
	// cores observe. It is simguard's latency fault-injection hook
	// (chaos runs only; nil leaves timing bit-identical).
	ExtraLatency func(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Cycles
}

// DefaultConfig matches the paper: 64 KB 2-way split I/D, 64 B blocks,
// 3-cycle latency.
func DefaultConfig() Config {
	return Config{
		Cores:     topo.NumCores,
		L1Bytes:   64 << 10,
		L1Ways:    2,
		L1Block:   64,
		L1Latency: cacti.ParallelCacheCycles(64<<10, 64, 2),
	}
}

// l1Line is an L1 line's payload: the dirty bit for write-back lines.
type l1Line struct {
	dirty bool
}

// coreState is one core's architectural progress. base* snapshots are
// taken at the end of warm-up so results report the measurement window
// only; clocks are never rewound (resource reservations hold absolute
// cycle numbers).
type coreState struct {
	cycles       memsys.Cycle
	instructions uint64
	l1d, l1i     *cache.Array[l1Line]

	baseCycles       memsys.Cycle
	baseInstructions uint64
	// end* snapshot the core's state when it completes its fixed work
	// quantum (endValid set); later instructions keep the system's
	// contention realistic but do not count toward results.
	endCycles       memsys.Cycle
	endInstructions uint64
	endValid        bool

	L1DHits, L1DMisses uint64
	L1IHits, L1IMisses uint64
	Writethroughs      uint64

	// last* record the core's most recent memory reference. With one
	// outstanding miss per core this is the reference a stalled core is
	// stuck behind; stall diagnostics report it.
	lastAddr     memsys.Addr
	lastWrite    bool
	lastInstr    bool
	lastMemValid bool
}

// System couples cores, L1s and an L2 design.
type System struct {
	cfg    Config
	l2     memsys.L2
	comm   CommunicationProber // nil unless the L2 has C blocks
	cores  []*coreState
	stream Workload
	// directory is set for L2 designs whose protocol does not keep the
	// L1s coherent itself (the shared caches): the simulator then acts
	// as the L2-resident L1 directory that real shared-L2 CMPs carry
	// (paper §2.2.2: "storing L1 tag copies at the L2 to keep L1
	// caches coherent").
	directory bool

	// sched is the event-driven scheduler's laggard heap (sched.go),
	// preallocated here so the per-step path never allocates; runUntil
	// rebuilds it from the core clocks at every phase start.
	sched *laggardHeap
	// phaseDone marks cores that have completed the current phase's
	// quantum, so runUntil's completion check is an O(1) counter
	// decrement instead of the historical O(N) sweep per step.
	phaseDone []bool
	// onStep, when non-nil, observes every scheduler pick before the
	// step executes. It is a test-only hook: the seq-vs-heap
	// differential and tie-break tests record step-order traces
	// through it. Production runs leave it nil (one predictable
	// branch on the hot path, same discipline as ExtraLatency).
	onStep func(core int)
}

// Validate panics unless the L1 configuration is structurally sound.
// New runs it on every construction so hand-built configs fail fast.
func (cfg Config) Validate() {
	if cfg.Cores != topo.NumCores {
		panic(fmt.Sprintf("cmpsim: config requires %d cores", topo.NumCores))
	}
	if cfg.L1Bytes <= 0 || cfg.L1Ways <= 0 || cfg.L1Block <= 0 || cfg.L1Latency <= 0 {
		panic("cmpsim: L1 geometry and latency must be positive")
	}
	if cfg.MaxCycles < 0 {
		panic("cmpsim: negative MaxCycles (0 derives a ceiling from the instruction budget)")
	}
	if cfg.StallWindow < 0 {
		panic("cmpsim: negative StallWindow (0 selects the default window)")
	}
}

// New builds a system around the given L2 design and workload.
func New(cfg Config, l2 memsys.L2, w Workload) *System {
	cfg.Validate()
	s := &System{cfg: cfg, l2: l2, stream: w}
	if cp, ok := l2.(CommunicationProber); ok {
		s.comm = cp
	}
	if _, ok := l2.(memsys.L1Coherent); !ok {
		s.directory = true
	}
	geo := cache.Geometry{
		Sets:       cfg.L1Bytes.Per(cfg.L1Block.Times(cfg.L1Ways)),
		Ways:       cfg.L1Ways,
		BlockBytes: cfg.L1Block,
	}
	for i := 0; i < cfg.Cores; i++ {
		s.cores = append(s.cores, &coreState{
			l1d: cache.NewArray[l1Line](geo),
			l1i: cache.NewArray[l1Line](geo),
		})
	}
	if inv, ok := l2.(memsys.L1Invalidator); ok {
		inv.SetL1Invalidate(s.invalidateL1)
	}
	s.sched = newLaggardHeap(cfg.Cores)
	s.phaseDone = make([]bool, cfg.Cores)
	return s
}

// L2 returns the underlying design.
func (s *System) L2() memsys.L2 { return s.l2 }

// invalidateL1 preserves inclusion: the L2 calls this when core must
// drop its L1 copies covering the L2 block.
func (s *System) invalidateL1(core int, addr memsys.Addr) {
	cs := s.cores[core]
	// An L2 block may span several L1 blocks (128 B vs 64 B).
	l2Block := memsys.Bytes(128)
	if s.cfg.L1Block > l2Block {
		l2Block = s.cfg.L1Block
	}
	base := addr.BlockAddr(l2Block)
	for off := memsys.Bytes(0); off < l2Block; off += s.cfg.L1Block {
		a := base + memsys.Addr(off)
		if l := cs.l1d.Probe(a); l != nil {
			cs.l1d.Invalidate(l)
		}
		if l := cs.l1i.Probe(a); l != nil {
			cs.l1i.Invalidate(l)
		}
	}
}

// l2Access performs an L2 access, applying L1-directory coherence for
// designs without their own snooping: a write drops every other core's
// L1 copies of the block (so no core can read a stale line), and a
// read drops other cores' *dirty* L1 copies (write-back: the owner's
// next store must re-request through the L2, where the new reader's
// copy will then be dropped).
func (s *System) l2Access(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Result {
	res := s.l2.Access(now, core, addr, write)
	if s.cfg.ExtraLatency != nil {
		if extra := s.cfg.ExtraLatency(now, core, addr, write); extra > 0 {
			res.Latency += extra
		}
	}
	if s.directory {
		for o := 0; o < s.cfg.Cores; o++ {
			if o == core {
				continue
			}
			if write || s.dirtyL1Copy(o, addr) {
				s.invalidateL1(o, addr)
			}
		}
	}
	return res
}

// dirtyL1Copy reports whether core's L1 D-cache holds a dirty line of
// the L2 block containing addr.
func (s *System) dirtyL1Copy(core int, addr memsys.Addr) bool {
	l2Block := memsys.Bytes(128)
	if s.cfg.L1Block > l2Block {
		l2Block = s.cfg.L1Block
	}
	base := addr.BlockAddr(l2Block)
	cs := s.cores[core]
	for off := memsys.Bytes(0); off < l2Block; off += s.cfg.L1Block {
		if l := cs.l1d.Probe(base + memsys.Addr(off)); l != nil && l.Data.dirty {
			return true
		}
	}
	return false
}

// access runs one memory reference for core and returns its latency.
func (s *System) access(core int, addr memsys.Addr, write, instr bool) memsys.Cycles {
	cs := s.cores[core]
	arr := cs.l1d
	if instr {
		arr = cs.l1i
	}
	lat := s.cfg.L1Latency
	now := cs.cycles.Add(lat)

	if l := arr.Probe(addr); l != nil {
		arr.Touch(l)
		if instr || !write {
			if instr {
				cs.L1IHits++
			} else {
				cs.L1DHits++
			}
			return lat
		}
		cs.L1DHits++
		// Write hit: C blocks write through on every store; clean
		// write-back lines take ownership at the L2 on the first store;
		// dirty write-back lines complete locally.
		if s.comm != nil && s.comm.IsCommunication(core, addr) {
			cs.Writethroughs++
			res := s.l2Access(now, core, addr, true)
			return lat + res.Latency
		}
		if !l.Data.dirty {
			res := s.l2Access(now, core, addr, true)
			// The L2 may have formed a communication group meanwhile;
			// C lines stay clean in the L1 so later stores write through.
			if s.comm == nil || !s.comm.IsCommunication(core, addr) {
				l.Data.dirty = true
			}
			return lat + res.Latency
		}
		return lat
	}

	// L1 miss.
	if instr {
		cs.L1IMisses++
	} else {
		cs.L1DMisses++
	}
	res := s.l2Access(now, core, addr, write)
	v := arr.Victim(addr)
	// Dirty victim write-back is functional only: the L2 already holds
	// the block in M (ownership was taken on the first store).
	arr.Install(v, addr, l1Line{})
	nl := arr.Probe(addr)
	if write && (s.comm == nil || !s.comm.IsCommunication(core, addr)) {
		nl.Data.dirty = true
	}
	if write && s.comm != nil && s.comm.IsCommunication(core, addr) {
		cs.Writethroughs++
	}
	return lat + res.Latency
}

// step executes one op on core and returns how many instructions it
// retired (the forward-progress watchdog's observable).
func (s *System) step(core int) (retired uint64) {
	op := s.stream.Next(core)
	cs := s.cores[core]
	if op.Compute > 0 {
		cs.cycles = cs.cycles.Add(memsys.CyclesOf(op.Compute)) // CPI 1 for non-memory work
		cs.instructions += uint64(op.Compute)
		retired += uint64(op.Compute)
	}
	if op.NoMem {
		return retired
	}
	cs.lastAddr, cs.lastWrite, cs.lastInstr, cs.lastMemValid = op.Addr, op.Write, op.Instr, true
	lat := s.access(core, op.Addr, op.Write, op.Instr)
	cs.cycles = cs.cycles.Add(lat)
	cs.instructions++
	return retired + 1
}

// Warmup executes at least instrPerCore instructions per core without
// counting them toward results (the paper warms every workload up
// before its measurement window). Core clocks are not rewound —
// resource reservations hold absolute cycle numbers — but per-core
// baselines and the L2 statistics are reset so results cover only the
// measurement window.
func (s *System) Warmup(instrPerCore int) {
	s.runUntil(uint64(instrPerCore), warmupPhase, func(core int) bool {
		return s.cores[core].instructions >= uint64(instrPerCore)
	})
	for _, cs := range s.cores {
		cs.baseCycles = cs.cycles
		cs.baseInstructions = cs.instructions
		cs.endValid = false
		cs.L1DHits, cs.L1DMisses = 0, 0
		cs.L1IHits, cs.L1IMisses = 0, 0
		cs.Writethroughs = 0
	}
	s.l2.Stats().Reset()
}

// Run executes a fixed work quantum — instrPerCore instructions per
// core beyond the warm-up baseline — and returns the results. Each
// core's cycle count is snapshotted the moment it completes its
// quantum; cores that finish early keep running (their later
// instructions keep bus and port contention realistic but are not
// counted), and the run ends when the slowest core completes. This is
// the standard fixed-work CMP methodology: aggregate IPC equals the
// total quantum divided by the slowest core's time.
func (s *System) Run(instrPerCore uint64) Results {
	s.runUntil(instrPerCore, runPhase, func(core int) bool {
		cs := s.cores[core]
		if cs.endValid {
			return true
		}
		if cs.instructions-cs.baseInstructions < instrPerCore {
			return false
		}
		cs.endCycles = cs.cycles
		cs.endInstructions = cs.instructions
		cs.endValid = true
		return true
	})
	return s.results()
}

// derivedCyclesPerInstr is the per-instruction cycle budget used when
// Config.MaxCycles is 0: far beyond the worst legitimate per-access
// cost in the modelled hierarchy (L1 + bus + farthest d-group + memory
// plus contention is well under 10^3 cycles), so the derived ceiling
// only ever fires on a genuinely runaway simulation.
const derivedCyclesPerInstr = 4096

// derivedCeilingSlack covers phases whose instruction budget is tiny
// (Warmup(0), smoke tests) so the derived ceiling never rounds to now.
const derivedCeilingSlack memsys.Cycles = 1 << 22

// runUntil repeatedly advances the laggard core — the earliest local
// clock, ties to the lowest core index — until every core satisfies
// complete. Every core keeps executing until the slowest reaches its
// target (the paper likewise runs all cores and stops on the
// slowest's completion): a core is never frozen at its own target,
// because a frozen core's stale resource reservations would charge
// phantom wait cycles to the cores still running, and its extra
// instructions are real throughput.
//
// The loop is event-driven (sched.go): the laggard comes off an index
// min-heap ordered by (clock, coreID) in O(log N) instead of the
// historical O(N) scan, and completion is an O(1) remaining-cores
// counter — complete(core) is consulted only for the core that just
// stepped, the only core whose progress can have changed. complete
// must be monotone (once true for a core, true forever within the
// phase) and is where Run snapshots a core's quantum-completion state,
// so it runs at the same instant the historical per-step sweep would
// have observed the crossing. The step sequence is byte-identical to
// the scan's: the heap's order is total, so the popped minimum is the
// unique (clock, coreID) minimum — the exact core the scan's strict-<
// walk selected (proven by the seq-vs-heap differential tests and the
// quick-scale golden).
//
// Two simguard aborts bound the phase (docs/ROBUSTNESS.md): the
// forward-progress watchdog panics with a *simguard.ProgressStall when
// a full window passes without any core retiring an instruction, and
// the cycle ceiling — Config.MaxCycles, or a generous budget derived
// from instrPerCore when unset, both anchored at the phase's starting
// clock — panics with a *simguard.CycleLimitExceeded even if the
// watchdog itself is broken. Both checks observe the popped clock —
// the laggard's pre-step clock, exactly what the scan loop observed —
// so diagnostics and detection windows are unchanged (verified by
// TestWatchdogTripIdenticalUnderHeap).
//
// hotpath:root
func (s *System) runUntil(instrPerCore uint64, phase phaseKind, complete func(core int) bool) {
	limit, derived := s.cycleCeiling(instrPerCore, phase)
	wd := simguard.NewWatchdog(s.cfg.StallWindow)
	remaining := 0
	for i, cs := range s.cores {
		s.sched.Set(i, cs.cycles)
		s.phaseDone[i] = complete(i)
		if !s.phaseDone[i] {
			remaining++
		}
	}
	s.sched.Init()
	for remaining > 0 {
		pick, now := s.sched.Min()
		if now > limit {
			panic(&simguard.CycleLimitExceeded{
				Limit: limit, Derived: derived, Now: now,
				Design: s.l2.Name(), Workload: s.stream.Name(),
				Cores: s.snapshotCores(),
			})
		}
		if s.onStep != nil {
			s.onStep(pick)
		}
		retired := s.step(pick)
		s.sched.AdvanceMin(s.cores[pick].cycles)
		if !s.phaseDone[pick] && complete(pick) {
			s.phaseDone[pick] = true
			remaining--
		}
		if wd.Observe(now, retired) {
			// hotpath:alloc terminal stall diagnostic, built once just before panicking
			stall := &simguard.ProgressStall{
				Window: wd.Window(), Steps: wd.StepsSinceRetire(), Now: now,
				Design: s.l2.Name(), Workload: s.stream.Name(),
				Cores:      s.snapshotCores(),
				BusBacklog: memsys.CyclesOf(-1),
			}
			if br, ok := s.l2.(memsys.BusBacklogReporter); ok {
				stall.BusBacklog = br.BusBacklog(now)
			}
			panic(stall)
		}
	}
}

// phaseKind distinguishes warmup from measurement phases for the
// cycle ceiling: only measurement Runs consume the explicit MaxCycles
// budget (see Config.MaxCycles).
type phaseKind int8

const (
	warmupPhase phaseKind = iota
	runPhase
)

// cycleCeiling resolves the phase's hard clock limit: the explicit
// MaxCycles for measurement Runs when set, else the budget derived
// from the phase's instruction quantum. Both anchor at the phase's
// starting clock (the maximum core clock when the phase begins) —
// clocks are never rewound across phases, so anchoring an explicit
// MaxCycles at absolute cycle 0, as the pre-heap loop did, silently
// spent part of the budget on warmup and tripped immediately on a
// healthy run whenever warmup had already consumed it
// (TestExplicitCeilingIsPhaseRelative pins the fix).
func (s *System) cycleCeiling(instrPerCore uint64, phase phaseKind) (limit memsys.Cycle, derived bool) {
	for _, cs := range s.cores {
		if cs.cycles > limit {
			limit = cs.cycles
		}
	}
	if phase == runPhase && s.cfg.MaxCycles > 0 {
		return limit.Add(s.cfg.MaxCycles), false
	}
	budget := memsys.CyclesOf(derivedCyclesPerInstr).Times(int(instrPerCore)) + derivedCeilingSlack
	return limit.Add(budget), true
}

// snapshotCores captures every core's architectural state for a stall
// or ceiling diagnostic, including the L2's view of the line behind
// each core's most recent reference when the design can report it.
//
// hotpath:alloc abort-only diagnostic; runs at most once per phase
func (s *System) snapshotCores() []simguard.CoreSnapshot {
	prober, _ := s.l2.(memsys.LineStateProber)
	snaps := make([]simguard.CoreSnapshot, 0, len(s.cores))
	for i, cs := range s.cores {
		snap := simguard.CoreSnapshot{
			Core: i, Cycles: cs.cycles, Instructions: cs.instructions,
			OutstandingMiss: cs.lastMemValid,
			Addr:            cs.lastAddr, Write: cs.lastWrite, Instr: cs.lastInstr,
			LineState: "?",
		}
		if prober != nil && cs.lastMemValid {
			snap.LineState = prober.LineState(i, cs.lastAddr)
		}
		snaps = append(snaps, snap)
	}
	return snaps
}

// CoreResult is one core's outcome.
type CoreResult struct {
	Cycles        memsys.Cycles
	Instructions  uint64
	IPC           float64
	L1DHits       uint64
	L1DMisses     uint64
	L1IHits       uint64
	L1IMisses     uint64
	Writethroughs uint64
}

// Results aggregates a run.
type Results struct {
	Design string
	Cores  []CoreResult
	// Cycles is the makespan: the slowest core's clock.
	Cycles       memsys.Cycles
	Instructions uint64
	// IPC is the aggregate instructions per cycle — the paper's
	// multiprogrammed metric; for multithreaded workloads the paper's
	// transactions/sec is proportional to 1/Cycles at fixed work.
	IPC float64
	L2  *memsys.L2Stats
}

func (s *System) results() Results {
	r := Results{Design: s.l2.Name(), L2: s.l2.Stats()}
	for _, cs := range s.cores {
		endC, endI := cs.cycles, cs.instructions
		if cs.endValid {
			endC, endI = cs.endCycles, cs.endInstructions
		}
		cr := CoreResult{
			Cycles:       endC.Sub(cs.baseCycles),
			Instructions: endI - cs.baseInstructions,
			L1DHits:      cs.L1DHits, L1DMisses: cs.L1DMisses,
			L1IHits: cs.L1IHits, L1IMisses: cs.L1IMisses,
			Writethroughs: cs.Writethroughs,
		}
		if cr.Cycles > 0 {
			cr.IPC = float64(cr.Instructions) / float64(cr.Cycles)
		}
		r.Cores = append(r.Cores, cr)
		if cr.Cycles > r.Cycles {
			r.Cycles = cr.Cycles
		}
		r.Instructions += cr.Instructions
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}
	return r
}

// Speedup returns r's performance relative to base as the weighted
// speedup: the mean over cores of the per-core IPC ratio, each core
// measured over its own fixed work quantum. For the symmetric
// multithreaded workloads this coincides with the aggregate-IPC ratio;
// for multiprogrammed mixes it is the standard fair metric — a design
// cannot look good by starving the cache-hungry application while the
// small ones spin.
func Speedup(r, base Results) float64 {
	if len(r.Cores) != len(base.Cores) || len(r.Cores) == 0 {
		if base.IPC == 0 {
			return 0
		}
		return r.IPC / base.IPC
	}
	sum, n := 0.0, 0
	for c := range r.Cores {
		if base.Cores[c].IPC > 0 {
			sum += r.Cores[c].IPC / base.Cores[c].IPC
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
