package cmpsim

import (
	"testing"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/l2"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// scriptedWorkload replays fixed per-core op lists, then idles with
// compute ops.
type scriptedWorkload struct {
	ops [][]Op
	pos []int
}

func newScripted(ops [][]Op) *scriptedWorkload {
	return &scriptedWorkload{ops: ops, pos: make([]int, len(ops))}
}

func (w *scriptedWorkload) Next(core int) Op {
	if w.pos[core] < len(w.ops[core]) {
		op := w.ops[core][w.pos[core]]
		w.pos[core]++
		return op
	}
	return Op{Compute: 1, NoMem: true}
}

func (w *scriptedWorkload) Name() string { return "scripted" }

func smallCfg() Config {
	return Config{Cores: 4, L1Bytes: 1 << 10, L1Ways: 2, L1Block: 64, L1Latency: 3}
}

func sharedL2() memsys.L2 {
	return l2.NewShared("uniform-shared", 16<<10, 4, 64, 59, 300)
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1Bytes != 64<<10 || cfg.L1Ways != 2 || cfg.L1Block != 64 {
		t.Errorf("L1 geometry %+v does not match §4.1", cfg)
	}
	if cfg.L1Latency != 3 {
		t.Errorf("L1 latency = %d, want 3", cfg.L1Latency)
	}
}

func TestL1HitLatency(t *testing.T) {
	ops := [][]Op{
		{{Addr: 0x100}, {Addr: 0x100}}, // second access is an L1 hit
		{}, {}, {},
	}
	s := New(smallCfg(), sharedL2(), newScripted(ops))
	r := s.Run(2)
	c := r.Cores[0]
	if c.L1DHits != 1 || c.L1DMisses != 1 {
		t.Errorf("L1 stats = %d hits / %d misses, want 1/1", c.L1DHits, c.L1DMisses)
	}
	// First access: 3 (L1) + 359 (L2 cold); second: 3.
	if c.Cycles != 3+359+3 {
		t.Errorf("core cycles = %d, want 365", c.Cycles)
	}
}

func TestComputeOpsAdvanceClock(t *testing.T) {
	ops := [][]Op{{{Compute: 100, NoMem: true}}, {}, {}, {}}
	s := New(smallCfg(), sharedL2(), newScripted(ops))
	r := s.Run(100)
	if r.Cores[0].Cycles != 100 || r.Cores[0].Instructions != 100 {
		t.Errorf("compute op: %d cycles %d instr, want 100/100",
			r.Cores[0].Cycles, r.Cores[0].Instructions)
	}
}

func TestInstructionFetchUsesICache(t *testing.T) {
	ops := [][]Op{
		{{Addr: 0x200, Instr: true}, {Addr: 0x200, Instr: true}},
		{}, {}, {},
	}
	s := New(smallCfg(), sharedL2(), newScripted(ops))
	r := s.Run(2)
	c := r.Cores[0]
	if c.L1IHits != 1 || c.L1IMisses != 1 {
		t.Errorf("I-cache stats = %d/%d, want 1 hit / 1 miss", c.L1IHits, c.L1IMisses)
	}
	if c.L1DHits+c.L1DMisses != 0 {
		t.Error("instruction fetch touched the D-cache")
	}
}

func TestWriteBackL1AbsorbsRepeatedStores(t *testing.T) {
	ops := [][]Op{
		{
			{Addr: 0x300, Write: true}, // miss: L2 + install dirty
			{Addr: 0x300, Write: true}, // dirty hit: L1 only
			{Addr: 0x300, Write: true},
		},
		{}, {}, {},
	}
	sh := sharedL2()
	s := New(smallCfg(), sh, newScripted(ops))
	s.Run(3)
	if got := sh.Stats().Accesses.Total(); got != 1 {
		t.Errorf("L2 saw %d accesses, want 1 (write-back L1 absorbs stores)", got)
	}
}

func TestFirstStoreToCleanLineTakesOwnership(t *testing.T) {
	ops := [][]Op{
		{
			{Addr: 0x300},              // read miss: L2 access 1
			{Addr: 0x300, Write: true}, // first store: ownership, L2 access 2
			{Addr: 0x300, Write: true}, // dirty hit: local
		},
		{}, {}, {},
	}
	sh := sharedL2()
	s := New(smallCfg(), sh, newScripted(ops))
	s.Run(3)
	if got := sh.Stats().Accesses.Total(); got != 2 {
		t.Errorf("L2 saw %d accesses, want 2", got)
	}
}

// TestCBlockWritesThrough checks §3.2/§4.1: stores to MESIC C blocks
// reach the L2 every time.
func TestCBlockWritesThrough(t *testing.T) {
	nucfg := core.DefaultConfig()
	nucfg.Bus = bus.Config{Latency: 32, SlotCycles: 4}
	nu := core.New(nucfg)
	ops := [][]Op{
		{ // core 0: producer
			{Addr: 0x4000, Write: true},
			{Compute: 50, NoMem: true},  // let the consumer's read land
			{Addr: 0x4000, Write: true}, // now C: write-through
			{Addr: 0x4000, Write: true}, // still C: write-through
		},
		{ // core 1: consumer forms the C group
			{Compute: 20, NoMem: true},
			{Addr: 0x4000},
			{Compute: 100, NoMem: true},
		},
		{}, {},
	}
	s := New(smallCfg(), nu, newScripted(ops))
	s.Run(53)
	wt := s.cores[0].Writethroughs
	if wt < 2 {
		t.Errorf("producer write-throughs = %d, want >= 2", wt)
	}
	nu.CheckInvariants()
}

// TestInclusionInvalidation checks that an L2 eviction removes the L1
// copy: a subsequent read must miss the L1.
func TestInclusionInvalidation(t *testing.T) {
	// Direct-mapped 16-block shared L2 (1 KB): two conflicting blocks.
	sh := l2.NewShared("tiny", 1<<10, 1, 128, 10, 100)
	ops := [][]Op{
		{
			{Addr: 0x000}, // into L1 and L2
			{Addr: 0x400}, // evicts 0x000 from L2 (same set) → L1 inv
			{Addr: 0x000}, // must be an L1 miss again
		},
		{}, {}, {},
	}
	s := New(smallCfg(), sh, newScripted(ops))
	r := s.Run(3)
	if r.Cores[0].L1DMisses != 3 {
		t.Errorf("L1D misses = %d, want 3 (inclusion must invalidate)", r.Cores[0].L1DMisses)
	}
}

// TestL1SpansL2Block checks inclusion drops both 64 B halves of a
// 128 B L2 block.
func TestL1SpansL2Block(t *testing.T) {
	sh := l2.NewShared("tiny", 1<<10, 1, 128, 10, 100)
	ops := [][]Op{
		{
			{Addr: 0x000},
			{Addr: 0x040}, // second half of the same L2 block
			{Addr: 0x400}, // evicts the L2 block
			{Addr: 0x000},
			{Addr: 0x040},
		},
		{}, {}, {},
	}
	s := New(smallCfg(), sh, newScripted(ops))
	r := s.Run(5)
	if r.Cores[0].L1DMisses != 5 {
		t.Errorf("L1D misses = %d, want 5 (both halves must drop)", r.Cores[0].L1DMisses)
	}
}

func TestRunInterleavesAllCores(t *testing.T) {
	ops := [][]Op{}
	for c := 0; c < 4; c++ {
		ops = append(ops, []Op{{Addr: memsys.Addr(0x1000 * (c + 1))}})
	}
	s := New(smallCfg(), sharedL2(), newScripted(ops))
	r := s.Run(1)
	for c, cr := range r.Cores {
		if cr.Instructions < 1 {
			t.Errorf("core %d retired %d instructions, want >= 1", c, cr.Instructions)
		}
	}
	if r.Instructions < 4 {
		t.Errorf("total instructions = %d, want >= 4", r.Instructions)
	}
}

func TestWarmupResetsStats(t *testing.T) {
	ops := [][]Op{}
	for c := 0; c < 4; c++ {
		var l []Op
		for i := 0; i < 50; i++ {
			l = append(l, Op{Addr: memsys.Addr(0x1000*(c+1) + i*64)})
		}
		ops = append(ops, l)
	}
	sh := sharedL2()
	s := New(smallCfg(), sh, newScripted(ops))
	s.Warmup(10)
	if sh.Stats().Accesses.Total() != 0 {
		t.Error("warmup did not reset L2 stats")
	}
	r := s.Run(5)
	if r.Cycles == 0 || r.Instructions == 0 {
		t.Error("post-warmup run recorded nothing")
	}
}

func TestSpeedup(t *testing.T) {
	fast := Results{IPC: 1.2}
	slow := Results{IPC: 1.0}
	if got := Speedup(fast, slow); got != 1.2 {
		t.Errorf("Speedup = %v, want 1.2", got)
	}
	if Speedup(fast, Results{}) != 0 {
		t.Error("Speedup with zero base should be 0")
	}
}

// TestIdealFasterThanUniformShared is the Figure 6 sanity check at
// system level: identical workloads, ideal wins.
func TestIdealFasterThanUniformShared(t *testing.T) {
	mk := func() [][]Op {
		ops := make([][]Op, 4)
		for c := 0; c < 4; c++ {
			for i := 0; i < 200; i++ {
				// L1-busting stride so the L2 latency matters.
				ops[c] = append(ops[c], Op{Addr: memsys.Addr(0x10000*(c+1) + (i%64)*1024)})
			}
		}
		return ops
	}
	uni := New(DefaultConfig(), l2.NewUniformShared(), newScripted(mk()))
	idl := New(DefaultConfig(), l2.NewIdeal(), newScripted(mk()))
	ru := uni.Run(200)
	ri := idl.Run(200)
	if Speedup(ri, ru) <= 1 {
		t.Errorf("ideal speedup %v over uniform-shared, want > 1", Speedup(ri, ru))
	}
}

func TestTopoCoresMatch(t *testing.T) {
	if DefaultConfig().Cores != topo.NumCores {
		t.Error("core count mismatch")
	}
}

// TestCrossCoreWriteInvalidatesL1I: the directory invalidation must
// drop I-cache copies too — a core re-fetching code another core just
// wrote (e.g. self-modifying or JIT-style sharing) must miss, not hit
// stale instructions.
func TestCrossCoreWriteInvalidatesL1I(t *testing.T) {
	ops := [][]Op{
		{
			{Addr: 0x1000, Instr: true},
			{Compute: 2000, NoMem: true},
			{Addr: 0x1000, Instr: true}, // after core 1's write: must re-fetch
		},
		{{Compute: 500, NoMem: true}, {Addr: 0x1000, Write: true}},
		{}, {},
	}
	s := New(smallCfg(), sharedL2(), newScripted(ops))
	r := s.Run(2002)
	c := r.Cores[0]
	if c.L1IMisses != 2 || c.L1IHits != 0 {
		t.Errorf("I-cache stats = %d hits / %d misses, want 0/2 (second fetch hit a stale line?)",
			c.L1IHits, c.L1IMisses)
	}
}

// TestL1InvalidationCoversExactlyTheL2Block: invalidating the L1 slices
// of one 128 B L2 block must not touch the adjacent block's L1 lines.
func TestL1InvalidationCoversExactlyTheL2Block(t *testing.T) {
	ops := [][]Op{
		{
			{Addr: 0x1000},
			{Addr: 0x1080}, // adjacent L2 block, own L1 line
			{Compute: 3000, NoMem: true},
			{Addr: 0x1080}, // must still be an L1 hit afterwards
		},
		{{Compute: 700, NoMem: true}, {Addr: 0x1000, Write: true}},
		{}, {},
	}
	s := New(smallCfg(), sharedL2(), newScripted(ops))
	r := s.Run(3003)
	c := r.Cores[0]
	if c.L1DMisses != 2 || c.L1DHits != 1 {
		t.Errorf("D-cache stats = %d hits / %d misses, want 1/2 (neighbour line wrongly invalidated?)",
			c.L1DHits, c.L1DMisses)
	}
}
