package cmpsim

import (
	"testing"

	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/simguard"
)

// livelockStream is the minimal livelock: zero-work ops forever. No
// instruction ever retires and no clock ever advances, so only the
// watchdog's step counter can catch it.
type livelockStream struct{}

func (livelockStream) Next(core int) Op { return Op{NoMem: true} }
func (livelockStream) Name() string     { return "livelock-stub" }

func TestWatchdogTripsOnZeroWorkStream(t *testing.T) {
	cfg := smallCfg()
	cfg.StallWindow = memsys.CyclesOf(256)
	sys := New(cfg, sharedL2(), livelockStream{})
	defer func() {
		stall, ok := recover().(*simguard.ProgressStall)
		if !ok {
			t.Fatal("zero-work stream did not trip the watchdog")
		}
		if stall.Steps == 0 || stall.Steps > 512 {
			t.Errorf("tripped after %d steps, want within ~256", stall.Steps)
		}
		if stall.Workload != "livelock-stub" {
			t.Errorf("stall names workload %q", stall.Workload)
		}
		for _, cs := range stall.Cores {
			if cs.OutstandingMiss {
				t.Errorf("core %d reports a memory reference it never made", cs.Core)
			}
		}
	}()
	sys.Run(10)
}

func TestStallSnapshotRecordsLastReference(t *testing.T) {
	// One real store on core 0, then livelock: the stall diagnostic
	// must pin core 0's state to that reference.
	ops := make([][]Op, 4)
	ops[0] = []Op{{Addr: 0x2000, Write: true}}
	w := &partialLivelock{script: newScripted(ops), healthy: 1}
	cfg := smallCfg()
	cfg.StallWindow = memsys.CyclesOf(256)
	sys := New(cfg, sharedL2(), w)
	defer func() {
		stall, ok := recover().(*simguard.ProgressStall)
		if !ok {
			t.Fatal("expected a ProgressStall")
		}
		c0 := stall.Cores[0]
		if !c0.OutstandingMiss || c0.Addr != 0x2000 || !c0.Write {
			t.Errorf("core 0 snapshot %+v does not record the store to 0x2000", c0)
		}
		if c0.LineState != "resident" {
			t.Errorf("core 0 line state %q, want resident (shared L2 probe)", c0.LineState)
		}
	}()
	sys.Run(10)
}

// partialLivelock serves a few scripted ops per core, then livelocks.
type partialLivelock struct {
	script  *scriptedWorkload
	healthy int
	served  [4]int
}

func (p *partialLivelock) Name() string { return "partial-livelock" }
func (p *partialLivelock) Next(core int) Op {
	if p.served[core] < p.healthy {
		p.served[core]++
		return p.script.Next(core)
	}
	return Op{NoMem: true}
}

func TestDerivedCycleCeiling(t *testing.T) {
	// A pathological latency injection makes every access cost tens of
	// millions of cycles: the ceiling derived from the instruction
	// budget must abort the run even though instructions keep retiring
	// (so the watchdog never fires).
	cfg := smallCfg()
	cfg.ExtraLatency = func(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Cycles {
		return memsys.CyclesOf(50_000_000)
	}
	ops := make([][]Op, 4)
	for c := range ops {
		for i := 0; i < 100; i++ {
			ops[c] = append(ops[c], Op{Addr: memsys.Addr(0x10000*(c+1) + i*64)})
		}
	}
	sys := New(cfg, sharedL2(), newScripted(ops))
	defer func() {
		lim, ok := recover().(*simguard.CycleLimitExceeded)
		if !ok {
			t.Fatal("runaway clock did not hit the derived ceiling")
		}
		if !lim.Derived {
			t.Error("ceiling should be reported as derived from the instruction budget")
		}
		if lim.Now <= lim.Limit {
			t.Errorf("abort clock %d not past limit %d", uint64(lim.Now), uint64(lim.Limit))
		}
	}()
	sys.Run(100)
}

func TestExtraLatencySlowsTheRun(t *testing.T) {
	run := func(extra func(memsys.Cycle, int, memsys.Addr, bool) memsys.Cycles) memsys.Cycles {
		ops := make([][]Op, 4)
		for c := range ops {
			for i := 0; i < 32; i++ {
				ops[c] = append(ops[c], Op{Addr: memsys.Addr(0x10000*(c+1) + i*4096)})
			}
		}
		cfg := smallCfg()
		cfg.ExtraLatency = extra
		sys := New(cfg, sharedL2(), newScripted(ops))
		return sys.Run(32).Cycles
	}
	plain := run(nil)
	noisy := run(func(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Cycles {
		return memsys.CyclesOf(100)
	})
	if noisy <= plain {
		t.Errorf("extra latency did not slow the run: %d vs %d", noisy, plain)
	}
	zero := run(func(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Cycles {
		return 0
	})
	if zero != plain {
		t.Errorf("zero extra latency perturbs the run: %d vs %d", zero, plain)
	}
}

func TestValidateRejectsNegativeGuards(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"MaxCycles":   func(c *Config) { c.MaxCycles = memsys.CyclesOf(-1) },
		"StallWindow": func(c *Config) { c.StallWindow = memsys.CyclesOf(-1) },
	} {
		cfg := smallCfg()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("negative %s accepted by Validate", name)
				}
			}()
			cfg.Validate()
		}()
	}
}
