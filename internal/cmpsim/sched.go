package cmpsim

import "cmpnurapid/internal/memsys"

// This file is the event-driven scheduler's core data structure.
// runUntil used to find the laggard core with a linear scan over every
// core on every step and to detect phase completion with a second
// linear sweep; both were O(N) per step and the wall ROADMAP item 2's
// 16-64-core topologies would hit first. The heap pops the laggard in
// O(log N) and, because only the popped core's clock ever changes,
// re-establishes the heap property with a single root sift-down; phase
// completion is tracked incrementally in runUntil (an O(1) counter),
// so the per-step cost no longer grows with the core count. See
// docs/PERF.md ("The event-driven scheduler loop") for the invariants
// and the measured scan-vs-heap trajectory.

// laggardHeap is an index min-heap of core local clocks under the
// total order (clock, coreID): core a precedes core b iff its clock is
// strictly earlier, or the clocks are equal and a's index is lower.
// The index tie-break makes the order total (no two cores compare
// equal), so the popped minimum — and therefore the whole step
// sequence — is fully deterministic and identical to the historical
// linear scan, which resolved clock ties to the lowest core index by
// scan order. The tie-break is load-bearing: dropping it lets heap
// layout decide tie order and changes simulation results
// (TestSchedulerTieBreakPinned; the schedmutant build tag below seeds
// exactly that bug for CI to prove the equivalence tests catch it).
//
// Storage is preallocated in newLaggardHeap (called once from New);
// every method is allocation-free, keeping runUntil hotpath-clean and
// TestStepDoesNotAllocate at zero allocs/op.
type laggardHeap struct {
	// clocks holds each core's local clock, indexed by core id. It is
	// the heap's key array; order is the heap itself.
	clocks []memsys.Cycle
	// order is the binary-heap array of core ids: order[0] is the
	// laggard, children of order[i] are order[2i+1] and order[2i+2].
	order []int32
}

// newLaggardHeap returns a heap over n cores with all storage
// preallocated; Reset must run before the first Min.
func newLaggardHeap(n int) *laggardHeap {
	return &laggardHeap{
		clocks: make([]memsys.Cycle, n),
		order:  make([]int32, n),
	}
}

// Set records core's current clock. Used with Init to (re)build the
// heap at phase start; between Init calls only AdvanceMin may change a
// clock.
func (h *laggardHeap) Set(core int, clk memsys.Cycle) { h.clocks[core] = clk }

// Init heapifies from the clocks recorded by Set: O(N), run once per
// phase, not per step.
func (h *laggardHeap) Init() {
	for i := range h.order {
		h.order[i] = int32(i)
	}
	for i := len(h.order)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Min returns the laggard core — the minimum under (clock, coreID) —
// and its clock, in O(1).
func (h *laggardHeap) Min() (core int, clk memsys.Cycle) {
	c := h.order[0]
	return int(c), h.clocks[c]
}

// AdvanceMin moves the laggard's clock forward to clk and restores the
// heap property with one root sift-down: O(log N). Clocks only move
// forward (clk must be >= the popped clock), which is why a root
// sift-down suffices — no other core's position can be invalidated.
func (h *laggardHeap) AdvanceMin(clk memsys.Cycle) {
	h.clocks[h.order[0]] = clk
	h.siftDown(0)
}

// less orders cores by (clock, coreID) — see the type comment for why
// the id tie-break must stay.
func (h *laggardHeap) less(a, b int32) bool {
	ca, cb := h.clocks[a], h.clocks[b]
	if ca != cb {
		return ca < cb
	}
	// schedDropTieBreak is constant false in real builds (the branch
	// folds away); the schedmutant build tag flips it to seed the
	// tie-break-dropping scheduler bug for the CI mutant-catch step.
	if schedDropTieBreak {
		return false
	}
	return a < b
}

// siftDown restores the heap property below i after order[i]'s clock
// grew.
func (h *laggardHeap) siftDown(i int) {
	n := len(h.order)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(h.order[r], h.order[l]) {
			m = r
		}
		if !h.less(h.order[m], h.order[i]) {
			return
		}
		h.order[i], h.order[m] = h.order[m], h.order[i]
		i = m
	}
}
