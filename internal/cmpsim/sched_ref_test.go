package cmpsim

import (
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/simguard"
)

// This file keeps the pre-heap scheduler loop alive as a test-only
// reference implementation. The event-driven loop in runUntil must
// produce the exact step sequence this scan produced — same laggard on
// every iteration, ties to the lowest core index by scan order — so
// the differential tests (sched_test.go) run both implementations over
// identical configs and workloads and assert identical step-order
// traces, Results, and abort diagnostics. The scan is deliberately a
// verbatim copy of the old loop rather than a call into the new code:
// a shared helper could hide a shared bug.

// runUntilScan is the historical O(N)-per-step loop: a linear laggard
// scan (strict <, so ties resolve to the lowest index) and a
// caller-supplied done() that sweeps every core per iteration.
func (s *System) runUntilScan(instrPerCore uint64, phase phaseKind, done func() bool) {
	limit, derived := s.cycleCeiling(instrPerCore, phase)
	wd := simguard.NewWatchdog(s.cfg.StallWindow)
	for !done() {
		pick := 0
		for c, cs := range s.cores {
			if cs.cycles < s.cores[pick].cycles {
				pick = c
			}
		}
		now := s.cores[pick].cycles
		if now > limit {
			panic(&simguard.CycleLimitExceeded{
				Limit: limit, Derived: derived, Now: now,
				Design: s.l2.Name(), Workload: s.stream.Name(),
				Cores: s.snapshotCores(),
			})
		}
		if s.onStep != nil {
			s.onStep(pick)
		}
		retired := s.step(pick)
		if wd.Observe(now, retired) {
			stall := &simguard.ProgressStall{
				Window: wd.Window(), Steps: wd.StepsSinceRetire(), Now: now,
				Design: s.l2.Name(), Workload: s.stream.Name(),
				Cores:      s.snapshotCores(),
				BusBacklog: memsys.CyclesOf(-1),
			}
			if br, ok := s.l2.(memsys.BusBacklogReporter); ok {
				stall.BusBacklog = br.BusBacklog(now)
			}
			panic(stall)
		}
	}
}

// warmupScan mirrors Warmup over the scan loop, including the
// historical all-cores done() sweep.
func (s *System) warmupScan(instrPerCore int) {
	s.runUntilScan(uint64(instrPerCore), warmupPhase, func() bool {
		for _, cs := range s.cores {
			if cs.instructions < uint64(instrPerCore) {
				return false
			}
		}
		return true
	})
	for _, cs := range s.cores {
		cs.baseCycles = cs.cycles
		cs.baseInstructions = cs.instructions
		cs.endValid = false
		cs.L1DHits, cs.L1DMisses = 0, 0
		cs.L1IHits, cs.L1IMisses = 0, 0
		cs.Writethroughs = 0
	}
	s.l2.Stats().Reset()
}

// runScan mirrors Run over the scan loop, including the historical
// sweep that snapshots quantum completion.
func (s *System) runScan(instrPerCore uint64) Results {
	s.runUntilScan(instrPerCore, runPhase, func() bool {
		all := true
		for _, cs := range s.cores {
			if cs.endValid {
				continue
			}
			if cs.instructions-cs.baseInstructions >= instrPerCore {
				cs.endCycles = cs.cycles
				cs.endInstructions = cs.instructions
				cs.endValid = true
				continue
			}
			all = false
		}
		return all
	})
	return s.results()
}
