package cmpsim

import (
	"reflect"
	"testing"

	"cmpnurapid/internal/core"
	"cmpnurapid/internal/l2"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
	"cmpnurapid/internal/simguard"
)

// lockstepWorkload keeps every core clock-equal forever: identical
// one-cycle compute ops, no memory. Every scheduler pick is therefore
// a clock tie, which makes it the sharpest probe of the tie-break rule
// — any deviation from lowest-core-index-first shows up immediately.
type lockstepWorkload struct{}

func (lockstepWorkload) Next(core int) Op { return Op{Compute: 1, NoMem: true} }
func (lockstepWorkload) Name() string     { return "lockstep" }

// tracedRun executes warmup+run on s recording the step-order trace
// through the test-only onStep hook.
func tracedRun(s *System, warmup int, quantum uint64, scan bool) (trace []int, r Results) {
	s.onStep = func(core int) { trace = append(trace, core) }
	if scan {
		s.warmupScan(warmup)
		r = s.runScan(quantum)
	} else {
		s.Warmup(warmup)
		r = s.Run(quantum)
	}
	s.onStep = nil
	return trace, r
}

// TestSchedulerTieBreakPinned pins the tie-break contract on a
// workload where every pick is a tie: the heap must step cores in
// strict round-robin order (lowest index first), exactly like the
// reference scan. The schedmutant build tag — the seeded scheduler
// bug that drops the (clock, coreID) tie-break — must make this test
// fail; check.sh and CI prove that it does.
func TestSchedulerTieBreakPinned(t *testing.T) {
	heap := New(smallCfg(), sharedL2(), lockstepWorkload{})
	heapTrace, _ := tracedRun(heap, 0, 8, false)

	scan := New(smallCfg(), sharedL2(), lockstepWorkload{})
	scanTrace, _ := tracedRun(scan, 0, 8, true)

	if !reflect.DeepEqual(heapTrace, scanTrace) {
		t.Fatalf("heap trace %v != scan trace %v", heapTrace, scanTrace)
	}
	if len(heapTrace) != 32 {
		t.Fatalf("trace has %d steps, want 32 (8 instructions x 4 cores)", len(heapTrace))
	}
	for i, c := range heapTrace {
		if c != i%4 {
			t.Fatalf("step %d ran core %d, want strict round-robin (core %d): %v", i, c, i%4, heapTrace)
		}
	}
}

// diffWorkload is a seeded random stream mixing private and contended
// shared references, stores, instruction fetches and pure compute —
// every op class the scheduler can interleave. Deterministic per seed,
// so two instances with the same seed serve identical streams as long
// as both systems ask in the same core order (which is exactly what
// the differential test is proving).
type diffWorkload struct {
	r *rng.Source
}

func (w *diffWorkload) Name() string { return "sched-differential" }

func (w *diffWorkload) Next(core int) Op {
	op := Op{Compute: w.r.Intn(3)}
	switch w.r.Intn(8) {
	case 0: // pure compute
		op.Compute++
		op.NoMem = true
		return op
	case 1: // instruction fetch
		op.Addr = memsys.Addr(0x40000 + w.r.Intn(32)*64)
		op.Instr = true
		return op
	case 2, 3: // contended read-write shared
		op.Addr = memsys.Addr(0x90000 + w.r.Intn(16)*64)
	default: // private
		op.Addr = memsys.Addr(0x10000*(core+1) + w.r.Intn(128)*64)
	}
	op.Write = w.r.Bool(0.35)
	return op
}

// TestSeqVsHeapEquivalence is the randomized differential gate for the
// event-driven refactor: for several seeds and every L2 design family,
// the heap loop and the reference scan must produce identical
// step-order traces (warmup and measurement) and identical Results.
// It fails under the schedmutant build tag (the dropped tie-break
// reorders tied cores), which is CI's scheduler-mutant-catch step.
func TestSeqVsHeapEquivalence(t *testing.T) {
	designs := map[string]func() memsys.L2{
		"shared":      sharedL2,
		"private":     func() memsys.L2 { return l2.NewPrivate() },
		"cmp-nurapid": func() memsys.L2 { return core.New(core.DefaultConfig()) },
	}
	for name, mk := range designs {
		for seed := uint64(1); seed <= 3; seed++ {
			heap := New(smallCfg(), mk(), &diffWorkload{r: rng.New(seed)})
			heapTrace, heapRes := tracedRun(heap, 300, 1500, false)

			scan := New(smallCfg(), mk(), &diffWorkload{r: rng.New(seed)})
			scanTrace, scanRes := tracedRun(scan, 300, 1500, true)

			if !reflect.DeepEqual(heapTrace, scanTrace) {
				n := len(heapTrace)
				if len(scanTrace) < n {
					n = len(scanTrace)
				}
				div := n
				for i := 0; i < n; i++ {
					if heapTrace[i] != scanTrace[i] {
						div = i
						break
					}
				}
				t.Fatalf("%s seed %d: step traces diverge at step %d (heap %d steps, scan %d steps)",
					name, seed, div, len(heapTrace), len(scanTrace))
			}
			if !reflect.DeepEqual(heapRes, scanRes) {
				t.Errorf("%s seed %d: results diverge:\nheap: %+v\nscan: %+v", name, seed, heapRes, scanRes)
			}
		}
	}
}

// missStream makes every reference a fresh L1-busting miss, so each
// instruction costs hundreds of cycles and a short warmup consumes a
// precisely large number of cycles.
type missStream struct {
	n [8]uint64
}

func (w *missStream) Name() string { return "miss-stream" }
func (w *missStream) Next(core int) Op {
	w.n[core]++
	return Op{Addr: memsys.Addr(0x100000*uint64(core+1) + w.n[core]*4096)}
}

// TestExplicitCeilingIsPhaseRelative is the regression test for the
// cycle-ceiling anchoring bug: the pre-heap loop anchored an explicit
// MaxCycles at absolute cycle 0, so after a warmup that consumed more
// cycles than the budget, a healthy measurement run tripped the
// ceiling on its very first step. The budget must instead anchor at
// the Run phase's starting clock, and warmup must not consume it.
func TestExplicitCeilingIsPhaseRelative(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxCycles = memsys.CyclesOf(10_000)
	sys := New(cfg, sharedL2(), &missStream{})

	// 100 cold misses per core at ~360 cycles each: warmup consumes
	// several times MaxCycles. Under the old absolute anchoring the
	// following Run panicked immediately; it must complete.
	sys.Warmup(100)
	if clk := sys.maxCycle(); clk.Sub(0) <= cfg.MaxCycles {
		t.Fatalf("warmup consumed only %d cycles; the test needs more than MaxCycles=%d to bite",
			clk.Sub(0), cfg.MaxCycles)
	}
	r := sys.Run(5)
	if r.Instructions == 0 || r.Cycles <= 0 {
		t.Fatalf("post-warmup run under a phase-relative ceiling recorded nothing: %+v", r)
	}
	if r.Cycles > cfg.MaxCycles {
		t.Fatalf("run consumed %d cycles, above the %d budget — the ceiling should have fired", r.Cycles, cfg.MaxCycles)
	}

	// The budget still binds the measurement phase itself: a Run whose
	// quantum cannot fit must abort, and the reported limit must be
	// anchored at the phase start, not at cycle 0. (The warmup resets
	// the previous run's quantum snapshots.)
	sys.Warmup(10)
	start := sys.maxCycle()
	defer func() {
		lim, ok := recover().(*simguard.CycleLimitExceeded)
		if !ok {
			t.Fatal("oversized run under a tight ceiling did not abort")
		}
		if lim.Derived {
			t.Error("explicit MaxCycles reported as derived")
		}
		if lim.Limit != start.Add(cfg.MaxCycles) {
			t.Errorf("limit %d not anchored at phase start %d + budget %d", uint64(lim.Limit), uint64(start), cfg.MaxCycles)
		}
	}()
	sys.Run(1_000_000)
}

// TestWatchdogTripIdenticalUnderHeap verifies the watchdog observation
// point (the popped pre-step laggard clock) gives the event-driven
// loop exactly the scan loop's detection window: both implementations
// must abort a partial livelock after the same number of steps, at the
// same clock, with the same per-core snapshot.
func TestWatchdogTripIdenticalUnderHeap(t *testing.T) {
	mkOps := func() [][]Op {
		ops := make([][]Op, 4)
		for c := range ops {
			for i := 0; i < 20; i++ {
				ops[c] = append(ops[c], Op{Addr: memsys.Addr(0x10000*(c+1) + i*4096), Write: i%3 == 0})
			}
		}
		return ops
	}
	trip := func(scan bool) (stall *simguard.ProgressStall) {
		cfg := smallCfg()
		cfg.StallWindow = memsys.CyclesOf(256)
		w := &partialLivelock{script: newScripted(mkOps()), healthy: 20}
		sys := New(cfg, sharedL2(), w)
		defer func() {
			var ok bool
			if stall, ok = recover().(*simguard.ProgressStall); !ok {
				t.Fatal("partial livelock did not trip the watchdog")
			}
		}()
		if scan {
			sys.runScan(1_000_000)
		} else {
			sys.Run(1_000_000)
		}
		return nil
	}
	heap, scan := trip(false), trip(true)
	if heap.Steps != scan.Steps || heap.Now != scan.Now {
		t.Errorf("detection point diverges: heap (steps=%d now=%d) vs scan (steps=%d now=%d)",
			heap.Steps, uint64(heap.Now), scan.Steps, uint64(scan.Now))
	}
	if !reflect.DeepEqual(heap.Cores, scan.Cores) {
		t.Errorf("stall snapshots diverge:\nheap: %+v\nscan: %+v", heap.Cores, scan.Cores)
	}
}

// TestRunZeroQuantumNeedsNoSteps pins the phase-start completion scan:
// a Run whose quantum is already satisfied must snapshot every core
// and execute zero scheduler steps, exactly like the historical
// done()-before-first-step loop.
func TestRunZeroQuantumNeedsNoSteps(t *testing.T) {
	sys := New(smallCfg(), sharedL2(), lockstepWorkload{})
	steps := 0
	sys.onStep = func(int) { steps++ }
	r := sys.Run(0)
	if steps != 0 {
		t.Errorf("Run(0) executed %d steps, want 0", steps)
	}
	if len(r.Cores) != 4 || r.Instructions != 0 {
		t.Errorf("Run(0) results: %+v", r)
	}
}

// TestHeapMatchesScanAfterReentry pins heap reconstruction across
// phases: a second Run on the same system (clocks mid-flight, stale
// heap order from the previous phase) must still track the scan.
func TestHeapMatchesScanAfterReentry(t *testing.T) {
	heap := New(smallCfg(), sharedL2(), &diffWorkload{r: rng.New(99)})
	scan := New(smallCfg(), sharedL2(), &diffWorkload{r: rng.New(99)})

	var heapTrace, scanTrace []int
	heap.onStep = func(c int) { heapTrace = append(heapTrace, c) }
	scan.onStep = func(c int) { scanTrace = append(scanTrace, c) }
	for i := 0; i < 3; i++ {
		// Each warmup resets the quantum baselines, so every Run is a
		// fresh phase entered with mid-flight clocks and whatever heap
		// order the previous phase left behind.
		heap.Warmup(100 * (i + 1))
		scan.warmupScan(100 * (i + 1))
		hr := heap.Run(400)
		sr := scan.runScan(400)
		if !reflect.DeepEqual(hr, sr) {
			t.Fatalf("run %d results diverge:\nheap: %+v\nscan: %+v", i, hr, sr)
		}
	}
	if !reflect.DeepEqual(heapTrace, scanTrace) {
		t.Fatalf("re-entry traces diverge (heap %d steps, scan %d steps)", len(heapTrace), len(scanTrace))
	}
}
