//go:build !schedmutant

package cmpsim

// schedDropTieBreak selects the laggardHeap comparator: false is the
// real scheduler, whose clock ties resolve to the lowest core index
// exactly like the historical linear scan. The schedmutant build tag
// (sched_tiebreak_mutant.go) flips it to true, seeding the
// tie-break-dropping scheduler bug; check.sh and CI prove the
// equivalence tests fail under that tag.
const schedDropTieBreak = false
