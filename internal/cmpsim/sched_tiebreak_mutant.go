//go:build schedmutant

package cmpsim

// schedDropTieBreak under the schedmutant tag is the seeded scheduler
// mutant: clock ties are left to heap layout instead of resolving to
// the lowest core index, so tied cores step in an order that depends
// on the heap's internal array — a plausible "optimization" that
// silently changes simulation results. The tie-break determinism and
// seq-vs-heap differential tests must fail under this tag; check.sh
// and CI's mutant-catch step build with `-tags schedmutant` and
// require exactly that failure.
const schedDropTieBreak = true
