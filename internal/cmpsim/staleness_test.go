package cmpsim

import (
	"testing"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/l2"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
)

// The multi-level staleness property (§3.2): after any store by core A
// to block X, no other core's L1 may still hold a copy of X — write-
// back lines are exclusive (the first store's ownership request
// invalidated other L1s through inclusion), and MESIC C blocks write
// through with a BusUpg that drops the sharers' L1 copies while their
// L2 tags survive. A violation means a core could read a stale value.
//
// This is the failure mode the paper calls out: "If a writer writes to
// an L1 cache block in C state without writing to the L2 block, a
// reader reading the shared L2 copy may read the incorrect value."

// randomWorkload emits a mixed private/shared stream (in-package so
// the test can drive steps one at a time and inspect L1s between them).
type randomWorkload struct {
	r *rng.Source
}

func (w *randomWorkload) Name() string { return "stale-detector" }

func (w *randomWorkload) Next(coreID int) Op {
	op := Op{Compute: w.r.Intn(4)}
	switch w.r.Intn(4) {
	case 0: // private
		op.Addr = memsys.Addr(0x10000*(coreID+1) + w.r.Intn(64)*64)
	case 1: // read-only shared (reads only)
		op.Addr = memsys.Addr(0x80000 + w.r.Intn(24)*64)
		return op
	default: // read-write shared: the contended case
		op.Addr = memsys.Addr(0x90000 + w.r.Intn(12)*64)
	}
	op.Write = w.r.Bool(0.4)
	return op
}

// l1Holds reports whether core's L1 D- or I-cache holds any line of
// the L2 block containing addr.
func l1Holds(s *System, coreID int, addr memsys.Addr, l2Block memsys.Bytes) bool {
	base := addr.BlockAddr(l2Block)
	cs := s.cores[coreID]
	for off := memsys.Bytes(0); off < l2Block; off += s.cfg.L1Block {
		if cs.l1d.Probe(base+memsys.Addr(off)) != nil || cs.l1i.Probe(base+memsys.Addr(off)) != nil {
			return true
		}
	}
	return false
}

func stepOnce(s *System) (coreID int, op Op) {
	pick := 0
	for c, cs := range s.cores {
		if cs.cycles < s.cores[pick].cycles {
			pick = c
		}
	}
	// Mirror System.step but keep the op for inspection.
	op = s.stream.Next(pick)
	cs := s.cores[pick]
	if op.Compute > 0 {
		cs.cycles = cs.cycles.Add(memsys.CyclesOf(op.Compute))
		cs.instructions += uint64(op.Compute)
	}
	if !op.NoMem {
		lat := s.access(pick, op.Addr, op.Write, op.Instr)
		cs.cycles = cs.cycles.Add(lat)
		cs.instructions++
	}
	return pick, op
}

func runStaleDetector(t *testing.T, mk func() memsys.L2, steps int, l2Block memsys.Bytes) {
	t.Helper()
	cfg := Config{Cores: 4, L1Bytes: 1 << 10, L1Ways: 2, L1Block: 64, L1Latency: 3}
	sys := New(cfg, mk(), &randomWorkload{r: rng.New(99)})
	for i := 0; i < steps; i++ {
		coreID, op := stepOnce(sys)
		if op.NoMem || !op.Write {
			continue
		}
		for o := 0; o < cfg.Cores; o++ {
			if o == coreID {
				continue
			}
			if l1Holds(sys, o, op.Addr, l2Block) {
				t.Fatalf("step %d: core %d stores to %#x but core %d's L1 still holds it (stale copy)",
					i, coreID, op.Addr, o)
			}
		}
	}
}

func TestNoStaleL1CopiesCMPNuRAPID(t *testing.T) {
	runStaleDetector(t, func() memsys.L2 {
		nucfg := core.DefaultConfig()
		return core.New(nucfg)
	}, 40000, 128)
}

func TestNoStaleL1CopiesCMPNuRAPIDWithMigration(t *testing.T) {
	runStaleDetector(t, func() memsys.L2 {
		nucfg := core.DefaultConfig()
		nucfg.CMigrationThreshold = 3
		return core.New(nucfg)
	}, 40000, 128)
}

func TestNoStaleL1CopiesPrivate(t *testing.T) {
	runStaleDetector(t, func() memsys.L2 { return l2.NewPrivate() }, 40000, 128)
}

func TestNoStaleL1CopiesShared(t *testing.T) {
	runStaleDetector(t, func() memsys.L2 {
		return l2.NewShared("uniform-shared", 64<<10, 4, 128, 59, 300)
	}, 40000, 128)
}

func TestNoStaleL1CopiesPrivateUpdate(t *testing.T) {
	runStaleDetector(t, func() memsys.L2 {
		return l2.NewPrivateUpdateWith(4<<10, 4, 64, 10,
			bus.Config{Latency: 32, SlotCycles: 4}, 300)
	}, 40000, 64)
}
