// Package coherence defines the cache-coherence state machines used by
// the simulator: the invalidation-based 4-state MESI protocol [21] that
// the private-cache baseline snoops with, and the paper's 5-state
// MESIC extension (Figure 4) whose communication state C lets multiple
// processors share a dirty block for in-situ communication.
//
// The transition logic is expressed as pure functions over (state,
// event, bus signals) so the protocol can be tested directly against
// the paper's state-transition diagram; the cache models in
// internal/l2 and internal/core drive these functions and handle data
// movement, pointers, and replacement around them.
package coherence

import "fmt"

// State is a coherence state. The zero value is Invalid.
type State int8

const (
	// Invalid: no copy.
	Invalid State = iota
	// Shared: clean copy, other copies may exist.
	Shared
	// Exclusive: clean copy, no other copies. The paper's placement
	// policies identify private blocks by E (§3.3.1).
	Exclusive
	// Modified: dirty copy, only one tag copy exists.
	Modified
	// Communication: CMP-NuRAPID's added state — a dirty block with
	// multiple tag copies pointing at a single data copy. Writers write
	// it and readers read it without coherence misses (§3.2).
	Communication
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Communication:
		return "C"
	}
	return fmt.Sprintf("State(%d)", int8(s))
}

// Dirty reports whether the state holds a dirty block. The paper's
// dirty bus signal is asserted by tag arrays holding M or C copies.
func (s State) Dirty() bool { return s == Modified || s == Communication }

// Valid reports whether the state holds any copy.
func (s State) Valid() bool { return s != Invalid }

// PrivateBlock reports whether the block is unshared from the
// replacement policy's perspective (the paper's replacement order is
// invalid, private, shared; §3.3.2). M is dirty-private, E is
// clean-private; S and C are shared.
func (s State) PrivateBlock() bool { return s == Exclusive || s == Modified }

// ProcOp is a processor-side request.
type ProcOp int8

const (
	PrRd ProcOp = iota
	PrWr
)

func (op ProcOp) String() string {
	if op == PrRd {
		return "PrRd"
	}
	return "PrWr"
}

// BusOp is a transaction observed on the snoopy bus.
type BusOp int8

const (
	BusNone BusOp = iota
	BusRd
	BusRdX
	BusUpg
	// BusRepl is CMP-NuRAPID's replacement broadcast (§3.1): sharers
	// pointing at the replaced data frame invalidate their tag entries.
	BusRepl
)

func (op BusOp) String() string {
	switch op {
	case BusNone:
		return "-"
	case BusRd:
		return "BusRd"
	case BusRdX:
		return "BusRdX"
	case BusUpg:
		return "BusUpg"
	case BusRepl:
		return "BusRepl"
	}
	return fmt.Sprintf("BusOp(%d)", int8(op))
}

// Signals carries the wired-OR bus response lines sampled by a
// requester: Shared is MESI's shared line (a clean copy exists
// elsewhere); Dirty is the paper's added dirty line (an M or C copy
// exists elsewhere, §3.2).
type Signals struct {
	Shared bool
	Dirty  bool
}

// SnoopAction is what a snooping cache must do besides changing state.
type SnoopAction int8

const (
	// None: no data action.
	None SnoopAction = iota
	// Flush: supply the dirty block (cache-to-cache transfer).
	Flush
	// FlushClean: supply a clean block (the paper's Flush', an
	// optimization where a clean owner responds instead of memory).
	FlushClean
	// InvalidateL1: CMP-NuRAPID C-state sharers observing a write must
	// drop stale L1 copies while keeping their L2 tag copy (§3.2).
	InvalidateL1
)

func (a SnoopAction) String() string {
	switch a {
	case None:
		return "-"
	case Flush:
		return "Flush"
	case FlushClean:
		return "Flush'"
	case InvalidateL1:
		return "InvL1"
	}
	return fmt.Sprintf("SnoopAction(%d)", int8(a))
}

// --- MESI (Figure 4a) ---

// MESIProc returns the next state and the bus transaction generated
// when a processor issues op against a block in state s, given the bus
// signals sampled on a miss. It panics on C, which does not exist in
// MESI.
//
// hotpath:root
func MESIProc(s State, op ProcOp, sig Signals) (State, BusOp) {
	switch s {
	case Invalid:
		if op == PrRd {
			if sig.Shared || sig.Dirty {
				return Shared, BusRd
			}
			return Exclusive, BusRd
		}
		return Modified, BusRdX
	case Shared:
		if op == PrRd {
			return Shared, BusNone
		}
		return Modified, BusUpg
	case Exclusive:
		if op == PrRd {
			return Exclusive, BusNone
		}
		return Modified, BusNone // silent upgrade
	case Modified:
		return Modified, BusNone
	default:
		panic("coherence: MESIProc on state " + s.String())
	}
}

// MESISnoop returns the next state and action when a cache holding
// state s observes a bus transaction issued by another cache. It
// panics on inputs the protocol cannot produce: BusNone and BusRepl
// are never snooped (BusRepl is CMP-NuRAPID's tag-layer broadcast,
// handled by the cache model, not the MESI machine), a BusUpg can only
// be issued by an S holder which SWMR forbids from coexisting with E
// or M, and C is not a MESI state. internal/protocheck's BFS over the
// joint N-cache state space re-proves each unreachability claim on
// every run (see docs/PROTOCOL.md), so reaching one of these defaults
// means a cache model drove the state machine outside the protocol —
// exactly the bug worth crashing on.
//
// hotpath:root
func MESISnoop(s State, op BusOp) (State, SnoopAction) {
	switch s {
	case Invalid:
		return Invalid, None
	case Shared:
		switch op {
		case BusRd:
			return Shared, None
		case BusRdX, BusUpg:
			return Invalid, None
		default: // BusNone, BusRepl: protocheck-proven unreachable
			panic("coherence: MESISnoop(" + s.String() + ", " + op.String() + "): unreachable snoop input")
		}
	case Exclusive:
		switch op {
		case BusRd:
			return Shared, FlushClean
		case BusRdX:
			return Invalid, FlushClean
		default: // BusNone, BusUpg, BusRepl: protocheck-proven unreachable
			panic("coherence: MESISnoop(" + s.String() + ", " + op.String() + "): unreachable snoop input")
		}
	case Modified:
		switch op {
		case BusRd:
			return Shared, Flush // the MESI M→S arc MESIC deletes
		case BusRdX:
			return Invalid, Flush
		default: // BusNone, BusUpg, BusRepl: protocheck-proven unreachable
			panic("coherence: MESISnoop(" + s.String() + ", " + op.String() + "): unreachable snoop input")
		}
	default:
		panic("coherence: MESISnoop on state " + s.String())
	}
}

// --- MESIC (Figure 4b) ---

// MESICProc returns the next state and bus transaction for the paper's
// MESIC protocol. Differences from MESI (§3.2):
//
//   - I + PrRd with the dirty signal asserted → C via BusRd: the reader
//     joins the communication group (and, in the cache model, makes the
//     single new data copy in its closest d-group).
//   - I + PrWr with the dirty signal asserted → C via BusRdX: the
//     writer joins without making a data copy, so the copy stays close
//     to the reader(s).
//   - C + PrRd → C with no bus traffic (the in-situ read).
//   - C + PrWr → C via write-through plus BusUpg so C sharers
//     invalidate stale L1 copies. (The C self-loop in Figure 4b is
//     labelled PrWr/WrThru+BusUpg; §3.2's prose calls the transaction
//     BusRdX — both are invalidating broadcasts; we follow the figure.)
//
// hotpath:root
func MESICProc(s State, op ProcOp, sig Signals) (State, BusOp) {
	switch s {
	case Invalid:
		if sig.Dirty {
			if op == PrRd {
				return Communication, BusRd
			}
			return Communication, BusRdX
		}
		return MESIProc(s, op, sig)
	case Communication:
		if op == PrRd {
			return Communication, BusNone
		}
		return Communication, BusUpg
	case Shared, Exclusive, Modified:
		return MESIProc(s, op, sig)
	default:
		panic("coherence: MESICProc on state " + s.String())
	}
}

// MESICSnoop returns the next state and action when a MESIC cache
// holding state s observes a bus transaction. Differences from MESI:
//
//   - M + BusRd → C (not S): the M→S arc is deleted; a dirty block that
//     gets read enters communication (arc x in Figure 4b).
//   - M + BusRdX → C: a write miss joining a dirty block forms a
//     communication group rather than stealing exclusive ownership.
//   - C + BusRd → C, supplying the data.
//   - C + BusRdX/BusUpg → C with an L1 invalidation: the sharer keeps
//     its tag copy but must not read a stale L1 copy (§3.2).
//
// There are no transitions out of C other than replacement (§3.2).
//
// Like MESISnoop, inputs the protocol cannot produce panic: BusNone
// and BusRepl are never snooped, and M + BusUpg is unreachable because
// a BusUpg is issued only by an S or C holder, neither of which can
// coexist with M. internal/protocheck re-proves these claims by BFS on
// every run (docs/PROTOCOL.md).
//
// hotpath:root
func MESICSnoop(s State, op BusOp) (State, SnoopAction) {
	switch s {
	case Modified:
		switch op {
		case BusRd:
			return Communication, Flush
		case BusRdX:
			return Communication, Flush
		default: // BusNone, BusUpg, BusRepl: protocheck-proven unreachable
			panic("coherence: MESICSnoop(" + s.String() + ", " + op.String() + "): unreachable snoop input")
		}
	case Communication:
		switch op {
		case BusRd:
			return Communication, Flush
		case BusRdX, BusUpg:
			return Communication, InvalidateL1
		default: // BusNone, BusRepl: protocheck-proven unreachable
			panic("coherence: MESICSnoop(" + s.String() + ", " + op.String() + "): unreachable snoop input")
		}
	case Invalid, Shared, Exclusive:
		return MESISnoop(s, op)
	default:
		panic("coherence: MESICSnoop on state " + s.String())
	}
}
