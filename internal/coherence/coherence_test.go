package coherence

import "testing"

// TestMESIProcTransitions checks the solid arcs of the paper's
// Figure 4a.
func TestMESIProcTransitions(t *testing.T) {
	cases := []struct {
		s       State
		op      ProcOp
		sig     Signals
		wantS   State
		wantBus BusOp
	}{
		// I -- PrRd/BusRd --> S (shared signal) or E (no sharers).
		{Invalid, PrRd, Signals{Shared: true}, Shared, BusRd},
		{Invalid, PrRd, Signals{Dirty: true}, Shared, BusRd},
		{Invalid, PrRd, Signals{}, Exclusive, BusRd},
		// I -- PrWr/BusRdX --> M.
		{Invalid, PrWr, Signals{}, Modified, BusRdX},
		{Invalid, PrWr, Signals{Shared: true}, Modified, BusRdX},
		// S -- PrRd/-- --> S; S -- PrWr/BusUpg --> M.
		{Shared, PrRd, Signals{}, Shared, BusNone},
		{Shared, PrWr, Signals{}, Modified, BusUpg},
		// E -- PrRd/-- --> E; E -- PrWr/-- --> M (silent).
		{Exclusive, PrRd, Signals{}, Exclusive, BusNone},
		{Exclusive, PrWr, Signals{}, Modified, BusNone},
		// M -- PrRd,PrWr/-- --> M.
		{Modified, PrRd, Signals{}, Modified, BusNone},
		{Modified, PrWr, Signals{}, Modified, BusNone},
	}
	for _, c := range cases {
		gotS, gotBus := MESIProc(c.s, c.op, c.sig)
		if gotS != c.wantS || gotBus != c.wantBus {
			t.Errorf("MESIProc(%v, %v, %+v) = (%v, %v), want (%v, %v)",
				c.s, c.op, c.sig, gotS, gotBus, c.wantS, c.wantBus)
		}
	}
}

// TestMESISnoopTransitions checks the dotted arcs of Figure 4a.
func TestMESISnoopTransitions(t *testing.T) {
	cases := []struct {
		s       State
		op      BusOp
		wantS   State
		wantAct SnoopAction
	}{
		{Invalid, BusRd, Invalid, None},
		{Invalid, BusRdX, Invalid, None},
		{Shared, BusRd, Shared, None},
		{Shared, BusRdX, Invalid, None},
		{Shared, BusUpg, Invalid, None},
		{Exclusive, BusRd, Shared, FlushClean},
		{Exclusive, BusRdX, Invalid, FlushClean},
		{Modified, BusRd, Shared, Flush}, // the arc MESIC deletes
		{Modified, BusRdX, Invalid, Flush},
	}
	for _, c := range cases {
		gotS, gotAct := MESISnoop(c.s, c.op)
		if gotS != c.wantS || gotAct != c.wantAct {
			t.Errorf("MESISnoop(%v, %v) = (%v, %v), want (%v, %v)",
				c.s, c.op, gotS, gotAct, c.wantS, c.wantAct)
		}
	}
}

func TestMESIProcPanicsOnC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MESIProc on C did not panic")
		}
	}()
	MESIProc(Communication, PrRd, Signals{})
}

// TestMESICReadMissOnDirty checks §3.2: "When a read miss occurs and a
// dirty copy (either M or C) already exists ... All the sharers enter
// (or remain in) C".
func TestMESICReadMissOnDirty(t *testing.T) {
	gotS, gotBus := MESICProc(Invalid, PrRd, Signals{Dirty: true})
	if gotS != Communication || gotBus != BusRd {
		t.Errorf("I+PrRd(dirty) = (%v, %v), want (C, BusRd)", gotS, gotBus)
	}
	// The M holder observing the BusRd enters C, flushing.
	snoopS, act := MESICSnoop(Modified, BusRd)
	if snoopS != Communication || act != Flush {
		t.Errorf("M+BusRd = (%v, %v), want (C, Flush)", snoopS, act)
	}
	// Existing C sharers remain in C.
	snoopS, _ = MESICSnoop(Communication, BusRd)
	if snoopS != Communication {
		t.Errorf("C+BusRd -> %v, want C", snoopS)
	}
}

// TestMESICNoMtoS checks that the MESI M→S transition does not exist in
// MESIC ("an M block transits to C, instead of going to S, upon seeing
// a read request on the bus").
func TestMESICNoMtoS(t *testing.T) {
	if s, _ := MESICSnoop(Modified, BusRd); s == Shared {
		t.Error("MESIC still has the deleted M->S arc")
	}
}

// TestMESICWriteMissOnDirty checks §3.2: "When a writer does not find
// the block in its tag array and the block is present in C in other tag
// arrays, the writer does not make a copy ... the writer enters C."
func TestMESICWriteMissOnDirty(t *testing.T) {
	gotS, gotBus := MESICProc(Invalid, PrWr, Signals{Dirty: true})
	if gotS != Communication || gotBus != BusRdX {
		t.Errorf("I+PrWr(dirty) = (%v, %v), want (C, BusRdX)", gotS, gotBus)
	}
}

// TestMESICInSituAccess checks that reads and writes to a C block incur
// no coherence state change, and that writes broadcast an invalidating
// transaction for L1 copies.
func TestMESICInSituAccess(t *testing.T) {
	if s, b := MESICProc(Communication, PrRd, Signals{}); s != Communication || b != BusNone {
		t.Errorf("C+PrRd = (%v, %v), want (C, -)", s, b)
	}
	s, b := MESICProc(Communication, PrWr, Signals{})
	if s != Communication {
		t.Errorf("C+PrWr -> %v, want C", s)
	}
	if b == BusNone {
		t.Error("C+PrWr must broadcast an invalidating transaction (WrThru+BusUpg)")
	}
	// A C sharer observing it stays in C but invalidates its L1 copy.
	snoopS, act := MESICSnoop(Communication, b)
	if snoopS != Communication || act != InvalidateL1 {
		t.Errorf("C snooping %v = (%v, %v), want (C, InvL1)", b, snoopS, act)
	}
}

// TestMESICNoExitFromC checks §3.2: "There are no transitions out of C
// other than those due to replacements."
func TestMESICNoExitFromC(t *testing.T) {
	for _, op := range []ProcOp{PrRd, PrWr} {
		if s, _ := MESICProc(Communication, op, Signals{}); s != Communication {
			t.Errorf("C+%v left C for %v", op, s)
		}
	}
	for _, op := range []BusOp{BusRd, BusRdX, BusUpg} {
		if s, _ := MESICSnoop(Communication, op); s != Communication {
			t.Errorf("C snooping %v left C for %v", op, s)
		}
	}
}

// TestMESICFallsBackToMESI checks that transitions the paper does not
// modify behave exactly as in MESI.
func TestMESICFallsBackToMESI(t *testing.T) {
	procCases := []struct {
		s   State
		op  ProcOp
		sig Signals
	}{
		{Invalid, PrRd, Signals{}},
		{Invalid, PrRd, Signals{Shared: true}},
		{Invalid, PrWr, Signals{}},
		{Shared, PrRd, Signals{}},
		{Shared, PrWr, Signals{}},
		{Exclusive, PrWr, Signals{}},
	}
	for _, c := range procCases {
		mesiS, mesiB := MESIProc(c.s, c.op, c.sig)
		mesicS, mesicB := MESICProc(c.s, c.op, c.sig)
		if mesiS != mesicS || mesiB != mesicB {
			t.Errorf("MESIC diverges from MESI on (%v, %v, %+v): (%v,%v) vs (%v,%v)",
				c.s, c.op, c.sig, mesicS, mesicB, mesiS, mesiB)
		}
	}
	snoopCases := []struct {
		s  State
		op BusOp
	}{
		{Shared, BusRd}, {Shared, BusRdX}, {Shared, BusUpg},
		{Exclusive, BusRd}, {Exclusive, BusRdX},
		{Invalid, BusRd},
	}
	for _, c := range snoopCases {
		mesiS, mesiA := MESISnoop(c.s, c.op)
		mesicS, mesicA := MESICSnoop(c.s, c.op)
		if mesiS != mesicS || mesiA != mesicA {
			t.Errorf("MESIC snoop diverges from MESI on (%v, %v)", c.s, c.op)
		}
	}
}

// TestDirtySignal checks which states assert the paper's dirty line.
func TestDirtySignal(t *testing.T) {
	for s, want := range map[State]bool{
		Invalid: false, Shared: false, Exclusive: false,
		Modified: true, Communication: true,
	} {
		if got := s.Dirty(); got != want {
			t.Errorf("%v.Dirty() = %v, want %v", s, got, want)
		}
	}
}

func TestPrivateBlock(t *testing.T) {
	for s, want := range map[State]bool{
		Invalid: false, Shared: false, Exclusive: true,
		Modified: true, Communication: false,
	} {
		if got := s.PrivateBlock(); got != want {
			t.Errorf("%v.PrivateBlock() = %v, want %v", s, got, want)
		}
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E",
		Modified: "M", Communication: "C",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int8(s), s.String(), w)
		}
	}
	if BusRepl.String() != "BusRepl" || PrWr.String() != "PrWr" || Flush.String() != "Flush" {
		t.Error("enum String() methods broken")
	}
}

// TestMESIInvariantSingleOwner exercises a random 3-cache system
// driving MESI transitions and checks the protocol invariant: at most
// one M/E copy, and M never coexists with any other valid copy.
func TestMESIInvariantSingleOwner(t *testing.T) {
	states := [3]State{}
	step := func(cache int, op ProcOp) {
		// Sample signals from the other caches.
		var sig Signals
		for i, s := range states {
			if i != cache {
				sig.Shared = sig.Shared || s == Shared || s == Exclusive
				sig.Dirty = sig.Dirty || s == Modified
			}
		}
		next, busOp := MESIProc(states[cache], op, sig)
		if busOp != BusNone {
			for i := range states {
				if i != cache {
					states[i], _ = MESISnoop(states[i], busOp)
				}
			}
		}
		states[cache] = next
	}
	// Deterministic pseudo-random walk over ops and caches.
	seed := uint64(12345)
	for i := 0; i < 10000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		cache := int(seed>>33) % 3
		op := PrRd
		if seed>>62&1 == 1 {
			op = PrWr
		}
		step(cache, op)

		owners, valids := 0, 0
		for _, s := range states {
			if s == Modified || s == Exclusive {
				owners++
			}
			if s.Valid() {
				valids++
			}
		}
		if owners > 1 {
			t.Fatalf("step %d: %d exclusive owners (states %v)", i, owners, states)
		}
		for _, s := range states {
			if s == Modified && valids > 1 {
				t.Fatalf("step %d: M coexists with other copies (states %v)", i, states)
			}
		}
	}
}

// TestMESICInvariantDirtySharing runs the same random walk under MESIC
// and checks the extended invariant: M is still exclusive, but C may be
// shared by many; M and C never coexist (the dirty block has exactly
// one data copy, reached via all the C tags).
func TestMESICInvariantDirtySharing(t *testing.T) {
	states := [4]State{}
	step := func(cache int, op ProcOp) {
		var sig Signals
		for i, s := range states {
			if i != cache {
				sig.Shared = sig.Shared || s == Shared || s == Exclusive
				sig.Dirty = sig.Dirty || s.Dirty()
			}
		}
		next, busOp := MESICProc(states[cache], op, sig)
		if busOp != BusNone {
			for i := range states {
				if i != cache {
					states[i], _ = MESICSnoop(states[i], busOp)
				}
			}
		}
		states[cache] = next
	}
	seed := uint64(999)
	for i := 0; i < 20000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		cache := int(seed>>33) % 4
		op := PrRd
		if seed>>62&1 == 1 {
			op = PrWr
		}
		step(cache, op)

		m, c, e := 0, 0, 0
		for _, s := range states {
			switch s {
			case Modified:
				m++
			case Communication:
				c++
			case Exclusive:
				e++
			}
		}
		if m > 1 || e > 1 {
			t.Fatalf("step %d: duplicate exclusive states %v", i, states)
		}
		if m > 0 && c > 0 {
			t.Fatalf("step %d: M coexists with C (states %v)", i, states)
		}
		if m == 1 {
			for _, s := range states {
				if s == Shared {
					t.Fatalf("step %d: M coexists with S (states %v)", i, states)
				}
			}
		}
	}
}
