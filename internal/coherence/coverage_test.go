package coherence

import "testing"

// Exhaustive sweeps over the remaining protocol surface: every
// (state, op) pair must return a legal result, and the snoop side of
// both protocols must never invent copies.

func TestMESISnoopExhaustive(t *testing.T) {
	states := []State{Invalid, Shared, Exclusive, Modified}
	ops := []BusOp{BusNone, BusRd, BusRdX, BusUpg, BusRepl}
	for _, s := range states {
		for _, op := range ops {
			next, act := MESISnoop(s, op)
			// Snooping never upgrades a copy's rights.
			if rank(next) > rank(s) {
				t.Errorf("MESISnoop(%v, %v) upgraded to %v", s, op, next)
			}
			if s == Invalid && (next != Invalid || act != None) {
				t.Errorf("MESISnoop(I, %v) = (%v, %v)", op, next, act)
			}
		}
	}
}

func TestMESICSnoopExhaustive(t *testing.T) {
	states := []State{Invalid, Shared, Exclusive, Modified, Communication}
	ops := []BusOp{BusNone, BusRd, BusRdX, BusUpg, BusRepl}
	for _, s := range states {
		for _, op := range ops {
			next, act := MESICSnoop(s, op)
			if s == Invalid && next != Invalid {
				t.Errorf("MESICSnoop(I, %v) -> %v", op, next)
			}
			if s == Communication && next != Communication {
				t.Errorf("MESICSnoop(C, %v) -> %v (no exits out of C)", op, next)
			}
			_ = act
		}
	}
}

// rank orders states by access rights for the no-upgrade check.
func rank(s State) int {
	switch s {
	case Invalid:
		return 0
	case Shared:
		return 1
	case Exclusive:
		return 2
	case Modified, Communication:
		return 3
	}
	return -1
}

func TestMESICProcExhaustiveLegality(t *testing.T) {
	states := []State{Invalid, Shared, Exclusive, Modified, Communication}
	sigs := []Signals{{}, {Shared: true}, {Dirty: true}, {Shared: true, Dirty: true}}
	for _, s := range states {
		for _, op := range []ProcOp{PrRd, PrWr} {
			for _, sig := range sigs {
				next, _ := MESICProc(s, op, sig)
				if !next.Valid() {
					t.Errorf("MESICProc(%v, %v, %+v) left the block invalid", s, op, sig)
				}
				if op == PrWr && !(next.Dirty()) {
					t.Errorf("MESICProc(%v, PrWr, %+v) = %v: a write must leave a dirty state", s, sig, next)
				}
			}
		}
	}
}

func TestSnoopActionStrings(t *testing.T) {
	want := map[SnoopAction]string{
		None: "-", Flush: "Flush", FlushClean: "Flush'", InvalidateL1: "InvL1",
	}
	for a, w := range want {
		if a.String() != w {
			t.Errorf("%d.String() = %q, want %q", int8(a), a.String(), w)
		}
	}
	if SnoopAction(9).String() == "" || BusOp(9).String() == "" || State(9).String() == "" {
		t.Error("unknown-value String() should not be empty")
	}
	if BusNone.String() != "-" || BusRepl.String() != "BusRepl" || PrRd.String() != "PrRd" {
		t.Error("enum strings broken")
	}
}

func TestMESISnoopPanicsOnC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MESISnoop on C did not panic")
		}
	}()
	MESISnoop(Communication, BusRd)
}
