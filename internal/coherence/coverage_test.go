package coherence

import "testing"

// Exhaustive sweeps over the remaining protocol surface: every
// (state, op) pair must return a legal result, and the snoop side of
// both protocols must never invent copies.

// snoopOrPanic calls fn and reports whether it panicked instead of
// returning a transition.
func snoopOrPanic(fn func(State, BusOp) (State, SnoopAction), s State, op BusOp) (next State, act SnoopAction, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	next, act = fn(s, op)
	return next, act, false
}

// mesiSnoopUnreachable are the (state, op) pairs protocheck's BFS
// proves no MESI execution can produce; MESISnoop must panic on them
// rather than silently return. I stays total (an invalid cache ignores
// everything) — see the MESISnoop doc comment.
func mesiSnoopUnreachable(s State, op BusOp) bool {
	if s == Invalid {
		return false
	}
	if op == BusNone || op == BusRepl {
		return true // never snooped transactions
	}
	// BusUpg comes only from an S holder, which SWMR keeps away from
	// E and M.
	return op == BusUpg && (s == Exclusive || s == Modified)
}

func TestMESISnoopExhaustive(t *testing.T) {
	states := []State{Invalid, Shared, Exclusive, Modified}
	ops := []BusOp{BusNone, BusRd, BusRdX, BusUpg, BusRepl}
	for _, s := range states {
		for _, op := range ops {
			next, act, panicked := snoopOrPanic(MESISnoop, s, op)
			if want := mesiSnoopUnreachable(s, op); panicked != want {
				t.Errorf("MESISnoop(%v, %v): panicked = %v, want %v", s, op, panicked, want)
				continue
			}
			if panicked {
				continue
			}
			// Snooping never upgrades a copy's rights.
			if rank(next) > rank(s) {
				t.Errorf("MESISnoop(%v, %v) upgraded to %v", s, op, next)
			}
			if s == Invalid && (next != Invalid || act != None) {
				t.Errorf("MESISnoop(I, %v) = (%v, %v)", op, next, act)
			}
		}
	}
}

// mesicSnoopUnreachable is the MESIC analogue: M/C + BusUpg now comes
// from C writers' write-throughs, so C + BusUpg is reachable while
// M + BusUpg still is not (M coexists with neither S nor C).
func mesicSnoopUnreachable(s State, op BusOp) bool {
	if s == Invalid {
		return false
	}
	if op == BusNone || op == BusRepl {
		return true
	}
	return op == BusUpg && (s == Exclusive || s == Modified)
}

func TestMESICSnoopExhaustive(t *testing.T) {
	states := []State{Invalid, Shared, Exclusive, Modified, Communication}
	ops := []BusOp{BusNone, BusRd, BusRdX, BusUpg, BusRepl}
	for _, s := range states {
		for _, op := range ops {
			next, _, panicked := snoopOrPanic(MESICSnoop, s, op)
			if want := mesicSnoopUnreachable(s, op); panicked != want {
				t.Errorf("MESICSnoop(%v, %v): panicked = %v, want %v", s, op, panicked, want)
				continue
			}
			if panicked {
				continue
			}
			if s == Invalid && next != Invalid {
				t.Errorf("MESICSnoop(I, %v) -> %v", op, next)
			}
			if s == Communication && next != Communication {
				t.Errorf("MESICSnoop(C, %v) -> %v (no exits out of C)", op, next)
			}
		}
	}
}

// rank orders states by access rights for the no-upgrade check.
func rank(s State) int {
	switch s {
	case Invalid:
		return 0
	case Shared:
		return 1
	case Exclusive:
		return 2
	case Modified, Communication:
		return 3
	}
	return -1
}

func TestMESICProcExhaustiveLegality(t *testing.T) {
	states := []State{Invalid, Shared, Exclusive, Modified, Communication}
	sigs := []Signals{{}, {Shared: true}, {Dirty: true}, {Shared: true, Dirty: true}}
	for _, s := range states {
		for _, op := range []ProcOp{PrRd, PrWr} {
			for _, sig := range sigs {
				next, _ := MESICProc(s, op, sig)
				if !next.Valid() {
					t.Errorf("MESICProc(%v, %v, %+v) left the block invalid", s, op, sig)
				}
				if op == PrWr && !(next.Dirty()) {
					t.Errorf("MESICProc(%v, PrWr, %+v) = %v: a write must leave a dirty state", s, sig, next)
				}
			}
		}
	}
}

func TestSnoopActionStrings(t *testing.T) {
	want := map[SnoopAction]string{
		None: "-", Flush: "Flush", FlushClean: "Flush'", InvalidateL1: "InvL1",
	}
	for a, w := range want {
		if a.String() != w {
			t.Errorf("%d.String() = %q, want %q", int8(a), a.String(), w)
		}
	}
	if SnoopAction(9).String() == "" || BusOp(9).String() == "" || State(9).String() == "" {
		t.Error("unknown-value String() should not be empty")
	}
	if BusNone.String() != "-" || BusRepl.String() != "BusRepl" || PrRd.String() != "PrRd" {
		t.Error("enum strings broken")
	}
}

// TestSnoopPanicsOnProvenUnreachablePairs is the regression test for
// the silently-ignored pairs this PR converted to panics: before,
// MESISnoop(E|M, BusUpg) returned (s, None) — a snoop that pretends an
// impossible transaction is benign. protocheck's BFS proves a BusUpg
// can never be observed by an E or M holder, so the only way to get
// here is a cache-model bug, and the functions now crash loudly.
func TestSnoopPanicsOnProvenUnreachablePairs(t *testing.T) {
	cases := []struct {
		name string
		fn   func(State, BusOp) (State, SnoopAction)
		s    State
		op   BusOp
	}{
		{"MESISnoop", MESISnoop, Exclusive, BusUpg},
		{"MESISnoop", MESISnoop, Modified, BusUpg},
		{"MESISnoop", MESISnoop, Shared, BusRepl},
		{"MESICSnoop", MESICSnoop, Modified, BusUpg},
		{"MESICSnoop", MESICSnoop, Communication, BusRepl},
	}
	for _, c := range cases {
		if _, _, panicked := snoopOrPanic(c.fn, c.s, c.op); !panicked {
			t.Errorf("%s(%v, %v) did not panic on a protocheck-proven-unreachable input", c.name, c.s, c.op)
		}
	}
}

func TestMESISnoopPanicsOnC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MESISnoop on C did not panic")
		}
	}()
	MESISnoop(Communication, BusRd)
}
