package coherence_test

import (
	"testing"

	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/rng"
)

// These tests check the paper's §3.2 containment claim at the
// trace level: MESIC behaves exactly like MESI until a requester
// samples an asserted dirty line. internal/protocheck proves the same
// property exhaustively by lockstep BFS; here seeded random walks
// cross-check it through the public API, and a directed test pins the
// one arc the paper deletes.

// diffCaches models n caches sharing one line under one protocol.
type diffCaches struct {
	states []coherence.State
	proc   func(coherence.State, coherence.ProcOp, coherence.Signals) (coherence.State, coherence.BusOp)
	snoop  func(coherence.State, coherence.BusOp) (coherence.State, coherence.SnoopAction)
}

func newMESI(n int) *diffCaches {
	return &diffCaches{make([]coherence.State, n), coherence.MESIProc, coherence.MESISnoop}
}

func newMESIC(n int) *diffCaches {
	return &diffCaches{make([]coherence.State, n), coherence.MESICProc, coherence.MESICSnoop}
}

// signals samples the response lines cache i would see, the same
// wired-OR derivation internal/l2 uses.
func (c *diffCaches) signals(i int) coherence.Signals {
	var sig coherence.Signals
	for j, s := range c.states {
		if j == i || !s.Valid() {
			continue
		}
		if s.Dirty() {
			sig.Dirty = true
		} else {
			sig.Shared = true
		}
	}
	return sig
}

// apply performs op by cache i and the induced snoops, returning the
// bus transaction emitted.
func (c *diffCaches) apply(i int, op coherence.ProcOp) coherence.BusOp {
	next, bus := c.proc(c.states[i], op, c.signals(i))
	c.states[i] = next
	if bus == coherence.BusNone {
		return bus
	}
	for j := range c.states {
		if j != i {
			c.states[j], _ = c.snoop(c.states[j], bus)
		}
	}
	return bus
}

// TestDifferentialRandomTraces drives MESI and MESIC through the same
// seeded random operation sequences, skipping any step where either
// protocol's requester samples an asserted dirty line (the only regime
// where they may diverge), and asserts the traces are identical:
// same signals, same bus transactions, same per-cache states.
func TestDifferentialRandomTraces(t *testing.T) {
	const (
		caches = 3
		walks  = 200
		steps  = 60
	)
	src := rng.New(0xC0FFEE)
	ops := []coherence.ProcOp{coherence.PrRd, coherence.PrWr}
	for walk := 0; walk < walks; walk++ {
		mesi, mesic := newMESI(caches), newMESIC(caches)
		for step := 0; step < steps; step++ {
			i := src.Intn(caches)
			op := ops[src.Intn(len(ops))]
			sigA, sigB := mesi.signals(i), mesic.signals(i)
			if sigA.Dirty || sigB.Dirty {
				continue // dirty sharing: divergence is the point of MESIC
			}
			if sigA != sigB {
				t.Fatalf("walk %d step %d: cache %d samples %+v under MESI, %+v under MESIC\nMESI %v\nMESIC %v",
					walk, step, i, sigA, sigB, mesi.states, mesic.states)
			}
			busA := mesi.apply(i, op)
			busB := mesic.apply(i, op)
			if busA != busB {
				t.Fatalf("walk %d step %d: cache %d %v emits %v under MESI, %v under MESIC",
					walk, step, i, op, busA, busB)
			}
			for j := range mesi.states {
				if mesi.states[j] != mesic.states[j] {
					t.Fatalf("walk %d step %d: after cache %d %v, cache %d is %v under MESI but %v under MESIC",
						walk, step, i, op, j, mesi.states[j], mesic.states[j])
				}
			}
		}
	}
}

// TestDirtySharingIsExercised guards the random walk against silently
// degenerating: with writes in the mix the dirty-skip branch must
// actually trigger, otherwise the differential claim was tested on
// clean traces only.
func TestDirtySharingIsExercised(t *testing.T) {
	src := rng.New(0xC0FFEE)
	ops := []coherence.ProcOp{coherence.PrRd, coherence.PrWr}
	mesic := newMESIC(3)
	dirtySampled := 0
	for step := 0; step < 500; step++ {
		i := src.Intn(3)
		op := ops[src.Intn(len(ops))]
		if mesic.signals(i).Dirty {
			dirtySampled++
		}
		mesic.apply(i, op)
	}
	if dirtySampled == 0 {
		t.Fatal("500 random steps never sampled a dirty line; the differential walk has no teeth")
	}
}

// TestDeletedMToSArc pins the single protocol edit of Figure 4: an M
// holder snooping a BusRd drops to S under MESI but to C under MESIC,
// and the requester correspondingly loads S (clean-shared) vs C
// (dirty-shared).
func TestDeletedMToSArc(t *testing.T) {
	// Snoop side: the M holder.
	if s, act := coherence.MESISnoop(coherence.Modified, coherence.BusRd); s != coherence.Shared || act != coherence.Flush {
		t.Errorf("MESISnoop(M, BusRd) = (%v, %v), want (S, Flush)", s, act)
	}
	if s, act := coherence.MESICSnoop(coherence.Modified, coherence.BusRd); s != coherence.Communication || act != coherence.Flush {
		t.Errorf("MESICSnoop(M, BusRd) = (%v, %v), want (C, Flush)", s, act)
	}
	// Requester side: a read miss that samples the dirty line.
	dirty := coherence.Signals{Dirty: true}
	if s, bus := coherence.MESIProc(coherence.Invalid, coherence.PrRd, dirty); s != coherence.Shared || bus != coherence.BusRd {
		t.Errorf("MESIProc(I, PrRd, dirty) = (%v, %v), want (S, BusRd)", s, bus)
	}
	if s, bus := coherence.MESICProc(coherence.Invalid, coherence.PrRd, dirty); s != coherence.Communication || bus != coherence.BusRd {
		t.Errorf("MESICProc(I, PrRd, dirty) = (%v, %v), want (C, BusRd)", s, bus)
	}
	// End to end: [M I] plus a read by cache 1 lands on [S S] under
	// MESI but [C C] under MESIC — the block stays dirty-shared.
	mesi, mesic := newMESI(2), newMESIC(2)
	mesi.states[0], mesic.states[0] = coherence.Modified, coherence.Modified
	mesi.apply(1, coherence.PrRd)
	mesic.apply(1, coherence.PrRd)
	if mesi.states[0] != coherence.Shared || mesi.states[1] != coherence.Shared {
		t.Errorf("MESI after M+BusRd: %v, want [S S]", mesi.states)
	}
	if mesic.states[0] != coherence.Communication || mesic.states[1] != coherence.Communication {
		t.Errorf("MESIC after M+BusRd: %v, want [C C]", mesic.states)
	}
}
