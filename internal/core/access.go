package core

import (
	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/memsys"
)

// Access implements memsys.L2: one reference by core at cycle now.
// Sequential tag-data access: the private tag array is probed first
// (5 cycles, Table 1); the forward pointer then directs the data
// access to a d-group through the crossbar.
//
// hotpath:root
func (c *Cache) Access(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Result {
	addr = addr.BlockAddr(c.cfg.BlockBytes)
	start := c.tagPort[core].Acquire(now, c.cfg.TagLatency)
	lat := start.Sub(now) + c.cfg.TagLatency
	t := now.Add(lat)

	var res memsys.Result
	if line := c.tags[core].Probe(addr); line != nil {
		res = c.hit(t, core, addr, line, write)
	} else {
		res = c.miss(t, core, addr, write)
	}
	res.Latency += lat
	c.stats.RecordAccess(res)
	return res
}

// hit serves a tag-array hit.
func (c *Cache) hit(t memsys.Cycle, core int, addr memsys.Addr, line *tagLine, write bool) memsys.Result {
	c.tags[core].Touch(line)
	line.Data.reuses++
	var lat memsys.Cycles
	// The d-group that serves this access; captured before promotion or
	// replication moves the pointer, since Figure 9 classifies the
	// access by where the data was when it was read.
	servedDG := line.Data.fwd.dgroup

	switch line.Data.state {
	case coherence.Exclusive, coherence.Modified:
		if write {
			line.Data.state = coherence.Modified // E→M is silent
		}
		lat += c.dgAccess(t, core, line.Data.fwd.dgroup)
		if line.Data.fwd.dgroup != c.closest(core) {
			// Capacity stealing: promote reused private blocks
			// (§3.3.1). The promotion itself is off the critical path.
			c.promote(t, core, line)
		}

	case coherence.Shared:
		if write {
			// S→M upgrade: BusUpg invalidates every other copy; we take
			// ownership of the data copy our pointer targets.
			lat += c.transact(t, bus.BusUpg)
			c.upgradeToM(core, addr, line)
			servedDG = line.Data.fwd.dgroup
			lat += c.dgAccess(t.Add(lat), core, servedDG)
		} else {
			p := line.Data.fwd
			lat += c.dgAccess(t, core, p.dgroup)
			if c.cfg.Replication == ReplicateSecondUse && p.dgroup != c.closest(core) {
				// Controlled replication's second-use copy (§3.1):
				// "P1 makes a copy of X in its closest d-group and
				// updates the forward pointer in its tag entry."
				c.replicate(core, addr, line)
			}
		}

	case coherence.Communication:
		// In-situ communication: both reads and writes access the
		// single data copy wherever it lives — possibly a farther
		// d-group — without any coherence miss (§3.2).
		p := line.Data.fwd
		lat += c.dgAccess(t, core, p.dgroup)
		if !write && c.cfg.CMigrationThreshold > 0 && p.dgroup != c.closest(core) {
			// Future-work extension: a copy stuck far from its only
			// active reader migrates after repeated remote reads.
			line.Data.farReads++
			if line.Data.farReads >= c.cfg.CMigrationThreshold {
				c.migrateC(core, addr, line)
				line.Data.farReads = 0
			}
		} else if !write {
			line.Data.farReads = 0
		}
		if write {
			// Write-through plus a posted invalidating broadcast so C
			// sharers drop stale L1 copies while keeping their tags.
			lat += c.post(t, bus.BusUpg)
			for o := 0; o < c.cfg.Cores; o++ {
				if o == core {
					continue
				}
				if ol := c.tags[o].Probe(addr); ol != nil && ol.Data.state == coherence.Communication {
					c.dropL1(o, addr)
				}
			}
		}

	default: // Invalid — Probe never returns invalid lines
		panic("core: tag hit on line in state " + line.Data.state.String())
	}

	return memsys.Result{
		Latency:       lat,
		Category:      memsys.Hit,
		DGroup:        servedDG,
		ClosestDGroup: servedDG == c.closest(core),
	}
}

// replicate makes core's own copy of a clean shared block in its
// closest d-group. When the existing copy belongs to another core it
// is left in place for its owner (true replication). When the
// replicating core itself owns the old copy — a private block that was
// demoted by capacity stealing and only later became shared — the old
// frame would be left with a dangling reverse pointer (the §3.3.2
// scenario), so the replication degenerates to a move: pointer-sharers
// are repointed to the new copy and the old frame is freed.
func (c *Cache) replicate(core int, addr memsys.Addr, line *tagLine) {
	src := line.Data.fwd
	owns := c.frameAt(src).revCore == core
	c.pin(src)
	cl := c.closest(core)
	nf := c.freeFrameIn(0, core, cl, -1)
	c.unpin()
	np := ptr{cl, nf}
	*c.frameAt(np) = frameInfo{valid: true, addr: addr, revCore: core}
	line.Data.fwd = np
	if owns {
		// Safe to repoint mid-scan: core's own tag already moved to np
		// above, so only other cores' tags still match src.
		for o := 0; o < c.cfg.Cores; o++ {
			if ol := c.pointsAt(o, addr, src); ol != nil {
				ol.Data.fwd = np
			}
		}
		c.releaseFrame(src)
	}
	c.stats.Replications++
}

// migrateC moves a communication-state block's single data copy into
// core's closest d-group and repoints every C tag at it (the stuck-
// copy remedy the paper leaves to future work; same data movement as
// the ISC read-miss flow, triggered from a hit).
func (c *Cache) migrateC(core int, addr memsys.Addr, line *tagLine) {
	q := line.Data.fwd
	c.pin(q)
	cl := c.closest(core)
	nf := c.freeFrameIn(0, core, cl, -1)
	c.unpin()
	np := ptr{cl, nf}
	*c.frameAt(np) = frameInfo{valid: true, addr: addr, revCore: core}
	for o := 0; o < c.cfg.Cores; o++ {
		if ol := c.tags[o].Probe(addr); ol != nil && ol.Data.state == coherence.Communication {
			ol.Data.fwd = np
		}
	}
	c.releaseFrame(q)
	c.CMigrations++
}

// upgradeToM performs the data-side work of an S→M upgrade: every
// other tag copy is invalidated, other cores' owned data copies are
// freed, and the copy the writer points at changes ownership to the
// writer.
func (c *Cache) upgradeToM(core int, addr memsys.Addr, line *tagLine) {
	p := line.Data.fwd
	for o := 0; o < c.cfg.Cores; o++ {
		if o == core {
			continue
		}
		ol := c.tags[o].Probe(addr)
		if ol == nil {
			continue
		}
		op := ol.Data.fwd
		ownsOther := op != p && c.frameAt(op).valid && c.frameAt(op).addr == addr && c.frameAt(op).revCore == o
		c.killTag(o, ol)
		if ownsOther {
			c.releaseFrame(op)
		}
	}
	c.frameAt(p).revCore = core
	line.Data.state = coherence.Modified
}

// snoopState summarizes the other cores' copies sampled by a miss.
type snoopState struct {
	dirty     bool // dirty signal: an M or C copy exists (§3.2)
	clean     bool // shared signal: an S or E copy exists
	dirtyPtr  ptr  // the single dirty data copy
	bestClean ptr  // the clean copy fastest to reach from the requester
	bestLat   memsys.Cycles
}

// snoop samples the other tag arrays the way the bus's wired-OR
// shared/dirty lines would.
func (c *Cache) snoop(core int, addr memsys.Addr) snoopState {
	s := snoopState{bestLat: 1 << 30}
	for o := 0; o < c.cfg.Cores; o++ {
		if o == core {
			continue
		}
		ol := c.tags[o].Probe(addr)
		if ol == nil {
			continue
		}
		if ol.Data.state.Dirty() {
			s.dirty = true
			s.dirtyPtr = ol.Data.fwd
		} else {
			s.clean = true
			if l := c.latTo(core, ol.Data.fwd.dgroup); l < s.bestLat {
				s.bestLat = l
				s.bestClean = ol.Data.fwd
			}
		}
	}
	return s
}

// miss handles a tag-array miss: snoop, classify per the paper's
// taxonomy, and run the matching coherence flow.
func (c *Cache) miss(t memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Result {
	s := c.snoop(core, addr)
	kind := bus.BusRd
	if write {
		kind = bus.BusRdX
	}
	lat := c.transact(t, kind)
	t2 := t.Add(lat)

	switch {
	case s.dirty:
		return c.missDirty(t2, core, addr, write, s, lat)
	case s.clean:
		return c.missClean(t2, core, addr, write, s, lat)
	}
	// Capacity miss: off-chip.
	c.stats.OffChipMisses++
	lat += c.cfg.MemLatency
	st := coherence.Exclusive
	if write {
		st = coherence.Modified
	}
	c.allocClosest(t2, core, addr, tagPayload{state: st, broughtBy: memsys.CapacityMiss})
	return memsys.Result{Latency: lat, Category: memsys.CapacityMiss, DGroup: -1}
}

// missClean handles a miss on a block with clean on-chip copies: a ROS
// miss. Reads use controlled replication; writes take MESI ownership.
func (c *Cache) missClean(t memsys.Cycle, core int, addr memsys.Addr, write bool, s snoopState, lat memsys.Cycles) memsys.Result {
	if write {
		// BusRdX: sample the data from the nearest clean copy, then
		// every other copy is invalidated and we allocate ours.
		lat += c.dgAccess(t, core, s.bestClean.dgroup)
		c.invalidateAllOthers(core, addr)
		c.allocClosest(t, core, addr, tagPayload{state: coherence.Modified, broughtBy: memsys.ROSMiss})
		return memsys.Result{Latency: lat, Category: memsys.ROSMiss, DGroup: -1}
	}

	// Read: all clean holders transition E→S / stay S (snoop side).
	for o := 0; o < c.cfg.Cores; o++ {
		if o == core {
			continue
		}
		if ol := c.tags[o].Probe(addr); ol != nil && ol.Data.state == coherence.Exclusive {
			ol.Data.state = coherence.Shared
		}
	}
	if c.cfg.Replication == ReplicateFirstUse {
		// Uncontrolled replication: copy immediately, like a private
		// cache's cache-to-cache fill.
		lat += c.dgAccess(t, core, s.bestClean.dgroup)
		c.stats.BusTransactions.Inc(memsys.LabelFlush)
		c.allocClosest(t, core, addr, tagPayload{state: coherence.Shared, broughtBy: memsys.ROSMiss})
		return memsys.Result{Latency: lat, Category: memsys.ROSMiss, DGroup: -1}
	}

	// Controlled replication (§3.1): the holder returns its forward
	// pointer on the bus's pointer wires; we keep a tag copy pointing
	// at the existing data copy and access it directly through the
	// crossbar. No data copy is made on first use.
	c.stats.BusTransactions.Inc(memsys.LabelPtrRet)
	c.stats.PointerReturns++
	lat += c.dgAccess(t, core, s.bestClean.dgroup)
	c.installTag(t, core, addr, tagPayload{
		state: coherence.Shared, fwd: s.bestClean, broughtBy: memsys.ROSMiss,
	})
	return memsys.Result{Latency: lat, Category: memsys.ROSMiss, DGroup: -1}
}

// missDirty handles a miss on a block with a dirty on-chip copy: a RWS
// miss. With ISC the requester joins the communication group; without
// it the flows are plain MESI cache-to-cache transfers.
func (c *Cache) missDirty(t memsys.Cycle, core int, addr memsys.Addr, write bool, s snoopState, lat memsys.Cycles) memsys.Result {
	q := s.dirtyPtr
	if !c.cfg.EnableISC {
		return c.missDirtyMESI(t, core, addr, write, q, lat)
	}

	lat += c.dgAccess(t, core, q.dgroup)
	if write {
		// Writer joins the communication group without copying: "the
		// writer enters C pointing its tag entry to the already-
		// existing data copy, and writes to the copy. Thus, the copy
		// stays close to the reader." (§3.2)
		for o := 0; o < c.cfg.Cores; o++ {
			if o == core {
				continue
			}
			if ol := c.tags[o].Probe(addr); ol != nil && ol.Data.state.Dirty() {
				ol.Data.state = coherence.Communication
				c.dropL1(o, addr) // BusRdX: stale L1 copies must go
			}
		}
		c.installTag(t, core, addr, tagPayload{
			state: coherence.Communication, fwd: q, broughtBy: memsys.RWSMiss,
		})
		return memsys.Result{Latency: lat, Category: memsys.RWSMiss, DGroup: -1}
	}

	// Reader: "the reader makes a new copy of the block in its closest
	// d-group, and the previous data copy is invalidated. All the
	// sharers enter (or remain in) C and their tag entries point to the
	// new data copy." (§3.2)
	c.pin(q)
	v := c.tagVictim(core, addr)
	freed := c.evictTagEntry(t, core, v)
	cl := c.closest(core)
	nf := c.freeFrameIn(t, core, cl, freed)
	np := ptr{cl, nf}
	*c.frameAt(np) = frameInfo{valid: true, addr: addr, revCore: core}
	for o := 0; o < c.cfg.Cores; o++ {
		if o == core {
			continue
		}
		if ol := c.tags[o].Probe(addr); ol != nil && ol.Data.state.Dirty() {
			ol.Data.state = coherence.Communication
			ol.Data.fwd = np
		}
	}
	c.unpin()
	c.releaseFrame(q)
	c.tags[core].Install(v, addr, tagPayload{
		state: coherence.Communication, fwd: np, broughtBy: memsys.RWSMiss,
	})
	lat += c.dgAccess(t.Add(lat), core, cl)
	return memsys.Result{Latency: lat, Category: memsys.RWSMiss, DGroup: -1}
}

// missDirtyMESI is the RWS-miss flow with ISC disabled: plain MESI.
func (c *Cache) missDirtyMESI(t memsys.Cycle, core int, addr memsys.Addr, write bool, q ptr, lat memsys.Cycles) memsys.Result {
	lat += c.dgAccess(t, core, q.dgroup)
	c.stats.BusTransactions.Inc(memsys.LabelFlush)
	if write {
		// BusRdX: the M holder flushes and invalidates; we take our own
		// copy in the closest d-group.
		c.invalidateAllOthers(core, addr)
		c.Writebacks++ // flush reaches memory in MESI write-miss
		c.allocClosest(t, core, addr, tagPayload{state: coherence.Modified, broughtBy: memsys.RWSMiss})
		return memsys.Result{Latency: lat, Category: memsys.RWSMiss, DGroup: -1}
	}
	// BusRd: the M holder flushes and drops to S, keeping its copy; we
	// pointer-share or copy per the replication policy.
	holderCore, holderLine := c.ownerLine(q)
	_ = holderCore
	holderLine.Data.state = coherence.Shared
	if c.cfg.Replication == ReplicateFirstUse {
		c.allocClosest(t, core, addr, tagPayload{state: coherence.Shared, broughtBy: memsys.RWSMiss})
	} else {
		c.installTag(t, core, addr, tagPayload{
			state: coherence.Shared, fwd: q, broughtBy: memsys.RWSMiss,
		})
	}
	return memsys.Result{Latency: lat, Category: memsys.RWSMiss, DGroup: -1}
}

// invalidateAllOthers kills every other core's tag entry for addr,
// freeing any data copies those entries own.
func (c *Cache) invalidateAllOthers(core int, addr memsys.Addr) {
	for o := 0; o < c.cfg.Cores; o++ {
		if o == core {
			continue
		}
		ol := c.tags[o].Probe(addr)
		if ol == nil {
			continue
		}
		op := ol.Data.fwd
		owns := c.frameAt(op).valid && c.frameAt(op).addr == addr && c.frameAt(op).revCore == o
		c.killTag(o, ol)
		if owns {
			c.releaseFrame(op)
		}
	}
}
