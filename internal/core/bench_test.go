package core

import (
	"testing"

	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
)

// Micro-benchmarks for the CMP-NuRAPID access paths; these bound the
// simulator's throughput and catch accidental algorithmic regressions
// (the demotion chain and snoop paths are the hot spots).

func benchCache() *Cache {
	return New(DefaultConfig())
}

func BenchmarkHitClosest(b *testing.B) {
	b.ReportAllocs()
	c := benchCache()
	addr := memsys.Addr(0x1000)
	c.Access(0, 0, addr, false)
	b.ResetTimer()
	now := memsys.Cycle(100)
	for i := 0; i < b.N; i++ {
		c.Access(now, 0, addr, false)
		now += 10
	}
}

func BenchmarkHitCommunication(b *testing.B) {
	b.ReportAllocs()
	c := benchCache()
	addr := memsys.Addr(0x2000)
	c.Access(0, 0, addr, true)
	c.Access(50, 1, addr, false) // C group
	b.ResetTimer()
	now := memsys.Cycle(100)
	for i := 0; i < b.N; i++ {
		c.Access(now, i%2, addr, i%2 == 0)
		now += 10
	}
}

func BenchmarkMissCapacity(b *testing.B) {
	b.ReportAllocs()
	c := benchCache()
	b.ResetTimer()
	now := memsys.Cycle(0)
	for i := 0; i < b.N; i++ {
		// A fresh block every time: always a capacity miss with the
		// full placement path (tag victim, demotion chain once full).
		c.Access(now, i%4, memsys.Addr(i*128), false)
		now += 10
	}
}

func BenchmarkMixedWorkload(b *testing.B) {
	b.ReportAllocs()
	c := benchCache()
	r := rng.New(1)
	b.ResetTimer()
	now := memsys.Cycle(0)
	for i := 0; i < b.N; i++ {
		core := r.Intn(4)
		var addr memsys.Addr
		switch r.Intn(3) {
		case 0:
			addr = memsys.Addr(0x100000*(core+1) + r.Intn(4096)*128)
		case 1:
			addr = memsys.Addr(0x800000 + r.Intn(1024)*128)
		default:
			addr = memsys.Addr(0x900000 + r.Intn(256)*128)
		}
		c.Access(now, core, addr, r.Bool(0.3))
		now += 10
	}
}

func BenchmarkCheckInvariants(b *testing.B) {
	b.ReportAllocs()
	c := benchCache()
	r := rng.New(2)
	now := memsys.Cycle(0)
	for i := 0; i < 50000; i++ {
		c.Access(now, r.Intn(4), memsys.Addr(r.Intn(1<<20))*128, r.Bool(0.3))
		now += 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CheckInvariants()
	}
}
