package core

import (
	"testing"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// Tests for the capacity properties the multiprogrammed evaluation
// rests on: the tag arrays bound each core's reach (the §5.2.1
// "slightly higher miss rates ... due to less tag capacity available
// to each core"), while the shared data array lets demand flow across
// d-groups.

// TestTagCapacityBoundsReach: a single core streaming more distinct
// blocks than its tag array holds must take misses even though the
// data array has room for them all.
func TestTagCapacityBoundsReach(t *testing.T) {
	cfg := tinyConfig() // 32 tag entries per core, 64 frames total
	c := New(cfg)
	tagEntries := cfg.TagSets * cfg.TagWays
	blocks := tagEntries + 16 // exceeds tag reach, fits data array? 48 > 32

	now := memsys.Cycle(0)
	for i := 0; i < blocks; i++ {
		c.Access(now, 0, memsys.Addr(i*64), false)
		now += 100
	}
	// Re-scan: some early blocks must have lost their tags (capacity
	// misses on re-access) even though 64 frames could hold all 48.
	misses := 0
	for i := 0; i < blocks; i++ {
		r := c.Access(now, 0, memsys.Addr(i*64), false)
		now += 100
		if r.Category != memsys.Hit {
			misses++
		}
	}
	if misses == 0 {
		t.Error("no misses despite exceeding the per-core tag reach")
	}
	c.CheckInvariants()
}

// TestSharedDataArrayAbsorbsSkewedDemand: one heavy core plus three
// idle ones — the heavy core's blocks must spread over multiple
// d-groups (capacity stealing) and all stay resident up to roughly the
// tag reach.
func TestSharedDataArrayAbsorbsSkewedDemand(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg)
	blocks := cfg.TagSets * cfg.TagWays // exactly the tag reach (32)
	now := memsys.Cycle(0)
	for i := 0; i < blocks; i++ {
		c.Access(now, 0, memsys.Addr(i*64), false)
		now += 100
	}
	occ := c.Occupancy()
	used := 0
	for _, o := range occ {
		if o > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("occupancy %v: heavy core's blocks confined to one d-group", occ)
	}
	hits := 0
	for i := 0; i < blocks; i++ {
		if r := c.Access(now, 0, memsys.Addr(i*64), false); r.Category == memsys.Hit {
			hits++
		}
		now += 100
	}
	if hits < blocks*3/4 {
		t.Errorf("only %d/%d blocks resident after stealing; neighbours' capacity unused", hits, blocks)
	}
	c.CheckInvariants()
}

// TestDemotionsPreserveOwnership: blocks demoted into another core's
// d-group remain the original core's (revCore), so only their owner's
// tag reaches them and a hit by the owner still classifies as a hit.
func TestDemotionsPreserveOwnership(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg)
	now := memsys.Cycle(0)
	for i := 0; i < 24; i++ { // overflow d-group a (16 frames)
		c.Access(now, 0, memsys.Addr(i*64), false)
		now += 100
	}
	if c.Stats().Demotions == 0 {
		t.Fatal("no demotions")
	}
	// Another core reading a demoted block is a ROS miss (clean copy
	// exists), not a hit — the tags are private.
	var demoted memsys.Addr
	found := false
	for i := 0; i < 24 && !found; i++ {
		if _, dg := c.StateOf(0, memsys.Addr(i*64)); dg > 0 {
			demoted, found = memsys.Addr(i*64), true
		}
	}
	if !found {
		t.Fatal("no demoted block found")
	}
	if r := c.Access(now, 1, demoted, false); r.Category != memsys.ROSMiss {
		t.Errorf("foreign access to demoted block: %v, want ROS miss", r.Category)
	}
	c.CheckInvariants()
}

// TestBusReplOnlyForSharedEvictions: evicting private data moves no
// bus traffic (beyond the miss itself), while evicting a multi-pointer
// shared copy broadcasts BusRepl. Guards the paper's §3.1 accounting
// ("CMP-NuRAPID sends an invalidation on the bus every time a shared
// block is replaced").
func TestBusReplOnlyForSharedEvictions(t *testing.T) {
	cfg := tinyConfig()
	cfg.Replication = ReplicateNever // keep pointer sharers
	c := New(cfg)
	// Fill set 0 of core 0 with private blocks, then overflow it:
	// private evictions must not BusRepl.
	stride := cfg.TagSets * 64
	now := memsys.Cycle(0)
	for i := 0; i <= cfg.TagWays; i++ {
		c.Access(now, 0, memsys.Addr(0x100000+i*stride), true)
		now += 100
	}
	if got := c.Bus().Count(bus.BusRepl); got != 0 {
		t.Errorf("private evictions sent %d BusRepl", got)
	}
	c.CheckInvariants()
}

// TestOwnerEvictionOfSharedCopy forces the §3.1 BusRepl flow: a core
// evicts its tag for a shared block whose data copy it owns; the copy
// dies, and every pointer-sharer's tag is invalidated so no dangling
// forward pointers remain.
func TestOwnerEvictionOfSharedCopy(t *testing.T) {
	cfg := tinyConfig()
	cfg.Replication = ReplicateNever // sharers keep pointing at P0's copies
	c := New(cfg)

	// Five shared blocks in P0's tag set 0 (8 sets, 64 B blocks: set-0
	// addresses are multiples of 512). The 4-way set overflows on the
	// fifth, evicting the LRU shared entry — X, whose copy P0 owns.
	X := memsys.Addr(0x2000)
	blocks := []memsys.Addr{X, 0x2200, 0x2400, 0x2600, 0x2800}
	now := memsys.Cycle(0)
	for _, a := range blocks {
		read(c, now, 0, a) // P0 owns the copy (E)
		now += 50
		read(c, now, 1, a) // P1 pointer-shares it (both S)
		now += 50
	}

	// X must be gone from both cores: P0's eviction sent BusRepl and
	// P1's pointer entry was invalidated with it.
	if st, _ := c.StateOf(0, X); st != coherence.Invalid {
		t.Errorf("P0 still has X in %v", st)
	}
	if st, _ := c.StateOf(1, X); st != coherence.Invalid {
		t.Errorf("P1's pointer to the evicted copy survived (%v): dangling", st)
	}
	if got := c.Bus().Count(bus.BusRepl); got == 0 {
		t.Error("owner eviction of a shared copy sent no BusRepl")
	}
	// The other four blocks remain shared and reachable by both.
	for _, a := range blocks[1:] {
		if st, _ := c.StateOf(1, a); st != coherence.Shared {
			t.Errorf("block %#x lost by P1 (%v)", a, st)
		}
	}
	c.CheckInvariants()
}

// TestOwnershipByDGroup checks the capacity-stealing accounting used
// by the capacity report.
func TestOwnershipByDGroup(t *testing.T) {
	c := New(tinyConfig())
	now := memsys.Cycle(0)
	// 24 private blocks for core 0: 16 fill its d-group, 8 are stolen.
	for i := 0; i < 24; i++ {
		read(c, now, 0, memsys.Addr(i*64))
		now += 50
	}
	own, stolen := c.OwnershipByDGroup()
	if own[0] != 16 {
		t.Errorf("own[0] = %d, want 16 (full closest d-group)", own[0])
	}
	if stolen[0] != 8 {
		t.Errorf("stolen[0] = %d, want 8", stolen[0])
	}
	for _, cr := range []int{1, 2, 3} {
		if own[cr] != 0 || stolen[cr] != 0 {
			t.Errorf("idle core %d owns frames: own=%d stolen=%d", cr, own[cr], stolen[cr])
		}
	}
	tags := c.TagOccupancy()
	if tags[0] != 24 || tags[1] != 0 {
		t.Errorf("TagOccupancy = %v, want [24 0 0 0]", tags)
	}
}

// TestNextFastestPromotesOneStep: under the NextFastest policy a
// reused private block moves exactly one step up its core's preference
// order, not all the way to the closest d-group (§3.3.1's conservative
// promotion variant).
func TestNextFastestPromotesOneStep(t *testing.T) {
	cfg := tinyConfig()
	cfg.Promotion = NextFastest
	// Enough tag reach (64 entries) to keep every frame of all four
	// d-groups live at once, so demotion chains push blocks past
	// d-group b.
	cfg.TagSets = 16
	c := New(cfg)
	now := memsys.Cycle(0)
	for i := 0; i < 96; i++ { // overflow d-group a repeatedly
		c.Access(now, 0, memsys.Addr(i*64), false)
		now += 100
	}
	// Find a still-private block demoted at least two steps out.
	addr, cur := memsys.Addr(0), -1
	for i := 0; i < 96 && cur < 0; i++ {
		a := memsys.Addr(i * 64)
		if st, dg := c.StateOf(0, a); st == coherence.Exclusive && topo.Rank(0, dg) >= 2 {
			addr, cur = a, dg
		}
	}
	if cur < 0 {
		t.Fatal("no private block demoted two steps (tune the fill pattern)")
	}
	c.Access(now, 0, addr, false)
	want, _ := topo.NextFaster(0, cur)
	if _, dg := c.StateOf(0, addr); dg != want {
		t.Errorf("after reuse: d-group %d, want %d (one step up from %d, not the closest)", dg, want, cur)
	}
	c.CheckInvariants()
}
