// Package core implements CMP-NuRAPID, the paper's contribution: a
// hybrid last-level cache with private per-core tag arrays and a
// shared, distance-associative data array, extending uniprocessor
// NuRAPID to chip multiprocessors.
//
// The three optimizations (paper §3):
//
//   - Controlled replication (CR): a reader missing on a block that
//     already has an on-chip clean copy receives the forward *pointer*
//     over the bus instead of the data, and shares the existing copy.
//     Only on the second use is a data copy made in the reader's
//     closest d-group, so never-reused blocks cost no extra capacity.
//   - In-situ communication (ISC): read-write-shared blocks live in a
//     single data copy reached through multiple tag copies in the new
//     MESIC communication state; writers write it and readers read it
//     without coherence misses.
//   - Capacity stealing (CS): private blocks are placed in the closest
//     d-group and demoted toward neighbours' d-groups under capacity
//     pressure, letting cores with large working sets steal unused
//     frames from cores with small ones.
//
// The timing-issue countermeasures of §3.1 (busy-marked reads and
// queue-ordered invalidation application) guard against races between
// a replacement invalidation and an in-flight farther-d-group read;
// in this simulator every access completes atomically, so the races
// cannot occur and the mechanisms are documented rather than modelled.
package core

import (
	"fmt"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/cache"
	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
	"cmpnurapid/internal/topo"
)

// PromotionPolicy selects how private blocks migrate on reuse (§3.3.1).
type PromotionPolicy int

const (
	// Fastest promotes straight to the requesting core's closest
	// d-group — the policy the paper found most effective in CMPs
	// ("one core's next-fastest d-group is another core's fastest").
	Fastest PromotionPolicy = iota
	// NextFastest promotes one preference rank closer per reuse ([8]'s
	// uniprocessor policy, kept for the ablation).
	NextFastest
	// NoPromotion disables CS migration (ablation).
	NoPromotion
)

func (p PromotionPolicy) String() string {
	switch p {
	case Fastest:
		return "fastest"
	case NextFastest:
		return "next-fastest"
	case NoPromotion:
		return "none"
	}
	return fmt.Sprintf("PromotionPolicy(%d)", int(p))
}

// Config describes a CMP-NuRAPID instance.
type Config struct {
	Cores      int
	BlockBytes memsys.Bytes

	// TagSets/TagWays size each core's private tag array. The paper
	// doubles the sets of a 2 MB private cache's tag (§2.2.2).
	TagSets int
	TagWays int

	// DGroupFrames is the number of block frames per d-group (one
	// d-group per core).
	DGroupFrames int

	// Latencies (cycles).
	TagLatency memsys.Cycles
	DGroupLat  [topo.NumCores][topo.NumDGroups]memsys.Cycles
	// DGroupOccupancy is how long one access keeps a d-group's single,
	// unpipelined port busy: the bank's intrinsic access time. The
	// remote-access latencies in DGroupLat additionally include wire
	// transit, which pipelines on the crossbar and does not hold the
	// bank.
	DGroupOccupancy memsys.Cycles
	MemLatency      memsys.Cycles

	Bus bus.Config

	// Replication selects the controlled-replication policy for
	// read-only-shared data; EnableISC turns in-situ communication on.
	// The full design uses ReplicateSecondUse + ISC; the other settings
	// exist for Figure 8's CR-only/ISC-only runs and the ablations.
	Replication ReplicationPolicy
	EnableISC   bool
	Promotion   PromotionPolicy

	// CMigrationThreshold implements the paper's future-work item
	// (§3.2): with no exits out of C, "a read-write shared block may
	// get stuck in the d-group closest to a processor that never
	// reuses the block", leaving the active sharers with slow hits.
	// When > 0, a sharer that reads the copy from a farther d-group
	// this many consecutive times migrates the single copy to its own
	// closest d-group (repointing every C tag, like the ISC read-miss
	// flow). 0 — the paper's published design — never migrates.
	CMigrationThreshold int

	Seed uint64
}

// ReplicationPolicy controls when a reader sharing a clean block makes
// its own data copy (§3.1).
type ReplicationPolicy int

const (
	// ReplicateSecondUse is controlled replication: pointer-share on
	// the first use, copy into the closest d-group on the second.
	ReplicateSecondUse ReplicationPolicy = iota
	// ReplicateFirstUse copies immediately, like an uncontrolled
	// private cache (CR disabled).
	ReplicateFirstUse
	// ReplicateNever always pointer-shares a single copy, like [6]'s
	// no-replication shared NUCA (ablation).
	ReplicateNever
)

func (r ReplicationPolicy) String() string {
	switch r {
	case ReplicateSecondUse:
		return "second-use (CR)"
	case ReplicateFirstUse:
		return "first-use (uncontrolled)"
	case ReplicateNever:
		return "never"
	}
	return fmt.Sprintf("ReplicationPolicy(%d)", int(r))
}

// DefaultConfig returns the paper's 8 MB 4-core configuration: four
// 2 MB single-ported d-groups, 8-way doubled tag arrays, Table 1
// latencies, and all three optimizations on.
func DefaultConfig() Config {
	l := topo.Derive()
	return Config{
		Cores:           topo.NumCores,
		BlockBytes:      topo.BlockBytes,
		TagSets:         2 * (topo.PrivateBytes / (topo.BlockBytes * topo.PrivateAssoc)),
		TagWays:         topo.PrivateAssoc,
		DGroupFrames:    topo.DGroupBytes / topo.BlockBytes,
		TagLatency:      l.NuRAPIDTag,
		DGroupLat:       l.DGroupData,
		DGroupOccupancy: l.PrivateData, // a 2 MB bank's access time
		MemLatency:      300,
		Bus:             bus.Config{Latency: l.Bus, SlotCycles: 4},
		Replication:     ReplicateSecondUse,
		EnableISC:       true,
		Promotion:       Fastest,
		Seed:            1,
	}
}

// ptr is a forward pointer: a frame in a d-group.
type ptr struct {
	dgroup int
	frame  int
}

func (p ptr) String() string { return fmt.Sprintf("%s/%d", topo.DGroupNames[p.dgroup], p.frame) }

// tagPayload is the per-tag-entry payload: coherence state, forward
// pointer, and the block-lifetime bookkeeping behind Figure 7.
type tagPayload struct {
	state coherence.State
	fwd   ptr
	// broughtBy records the miss category that installed this entry;
	// reuses counts subsequent hits. Recorded into the reuse
	// histograms when the entry dies.
	broughtBy memsys.Category
	reuses    int
	// farReads counts consecutive farther-d-group reads of a C block,
	// for the optional stuck-copy migration extension.
	farReads int
}

// tagLine is one private tag array entry.
type tagLine = cache.Line[tagPayload]

// frameInfo is one data-array frame. revCore is the reverse pointer:
// the core whose tag entry owns (placed) this copy; the owning tag is
// found by probing that core's array for addr. Only the core closest
// to a d-group replaces frames from it, and BusRepl invalidates any
// other tags pointing here when the frame dies (§3.1).
type frameInfo struct {
	valid   bool
	addr    memsys.Addr
	revCore int
}

// dgroup is one distance group of the shared data array.
type dgroup struct {
	frames []frameInfo
	free   []int
	port   bus.Port
}

// Cache is a CMP-NuRAPID L2. It implements memsys.L2.
type Cache struct {
	cfg     Config
	tags    []*cache.Array[tagPayload]
	tagPort []bus.Port
	dgroups []*dgroup
	bus     *bus.Bus
	rand    *rng.Source
	stats   *memsys.L2Stats
	// l1Invalidate preserves multi-level inclusion: called whenever a
	// core's L1 must drop its copy of addr.
	l1Invalidate func(core int, addr memsys.Addr)
	// pinnedFrame is the busy-marked frame a replication or ISC data
	// move is reading from (see replace.go).
	pinnedFrame ptr
	// Writebacks counts dirty blocks written back to memory.
	Writebacks uint64
	// CMigrations counts stuck-C-copy migrations (the future-work
	// extension; zero under the paper's published design).
	CMigrations uint64
}

// Validate panics unless the configuration is structurally sound: the
// fixed 4-core floorplan, tag arrays that cover at least one d-group,
// and positive geometry. New runs it on every construction, so any
// hand-built Config fails fast instead of producing a silently
// misshapen cache.
func (cfg Config) Validate() {
	if cfg.Cores != topo.NumCores {
		panic(fmt.Sprintf("core: config requires %d cores (floorplan is fixed)", topo.NumCores))
	}
	if cfg.BlockBytes <= 0 || cfg.TagSets <= 0 || cfg.TagWays <= 0 || cfg.DGroupFrames <= 0 {
		panic("core: block size, tag geometry and d-group frames must be positive")
	}
	if cfg.TagSets*cfg.TagWays < cfg.DGroupFrames {
		panic("core: tag arrays must cover at least one d-group of frames")
	}
}

// New builds a CMP-NuRAPID cache.
func New(cfg Config) *Cache {
	cfg.Validate()
	c := &Cache{
		cfg:         cfg,
		tagPort:     make([]bus.Port, cfg.Cores),
		bus:         bus.New(cfg.Bus),
		rand:        rng.New(cfg.Seed),
		stats:       memsys.NewL2Stats(),
		pinnedFrame: ptr{dgroup: -1, frame: -1},
	}
	for i := 0; i < cfg.Cores; i++ {
		c.tags = append(c.tags, cache.NewArray[tagPayload](cache.Geometry{
			Sets: cfg.TagSets, Ways: cfg.TagWays, BlockBytes: cfg.BlockBytes,
		}))
	}
	for g := 0; g < topo.NumDGroups; g++ {
		dg := &dgroup{frames: make([]frameInfo, cfg.DGroupFrames)}
		dg.free = make([]int, cfg.DGroupFrames)
		for i := range dg.free {
			dg.free[i] = cfg.DGroupFrames - 1 - i
		}
		c.dgroups = append(c.dgroups, dg)
	}
	return c
}

// Name implements memsys.L2.
func (c *Cache) Name() string {
	cr := c.cfg.Replication == ReplicateSecondUse
	switch {
	case cr && c.cfg.EnableISC:
		return "CMP-NuRAPID"
	case cr:
		return "CMP-NuRAPID (CR only)"
	case c.cfg.EnableISC:
		return "CMP-NuRAPID (ISC only)"
	}
	return "CMP-NuRAPID (no CR/ISC)"
}

// Stats implements memsys.L2.
func (c *Cache) Stats() *memsys.L2Stats { return c.stats }

// Bus exposes the snoopy bus for traffic analysis.
func (c *Cache) Bus() *bus.Bus { return c.bus }

// SetL1Invalidate implements memsys.L1Invalidator.
func (c *Cache) SetL1Invalidate(fn func(core int, addr memsys.Addr)) {
	c.l1Invalidate = fn
}

// MaintainsL1Coherence implements memsys.L1Coherent: the MESIC
// protocol's snooping keeps the L1s coherent (BusRdX/BusUpg drops and
// inclusion invalidations).
func (c *Cache) MaintainsL1Coherence() {}

// LineState implements memsys.LineStateProber for stall diagnostics:
// core's MESIC tag state for addr, or "I" without a tag entry.
func (c *Cache) LineState(core int, addr memsys.Addr) string {
	l := c.tags[core].Probe(addr.BlockAddr(c.cfg.BlockBytes))
	if l == nil {
		return coherence.Invalid.String()
	}
	return l.Data.state.String()
}

// BusBacklog implements memsys.BusBacklogReporter.
func (c *Cache) BusBacklog(now memsys.Cycle) memsys.Cycles { return c.bus.Backlog(now) }

// IsCommunication reports whether core's copy of addr is in the MESIC
// communication state; the simulator uses this to apply §3.2's
// write-through-L1 rule to C blocks only.
func (c *Cache) IsCommunication(core int, addr memsys.Addr) bool {
	l := c.tags[core].Probe(addr.BlockAddr(c.cfg.BlockBytes))
	return l != nil && l.Data.state == coherence.Communication
}

// dropL1 invokes the inclusion callback.
func (c *Cache) dropL1(core int, addr memsys.Addr) {
	if c.l1Invalidate != nil {
		c.l1Invalidate(core, addr)
	}
}

// closest returns core's closest d-group.
func (c *Cache) closest(core int) int { return topo.Closest(core) }

// latTo returns the d-group access latency from core's position.
func (c *Cache) latTo(core, dg int) memsys.Cycles { return c.cfg.DGroupLat[core][dg] }

// dgAccess reserves dg's single port at cycle now for one access from
// core and returns the latency including any port contention.
func (c *Cache) dgAccess(now memsys.Cycle, core, dg int) memsys.Cycles {
	occ := c.cfg.DGroupOccupancy
	if occ <= 0 {
		occ = c.latTo(dg, dg) // the adjacent-core access time
	}
	start := c.dgroups[dg].port.Acquire(now, occ)
	return start.Sub(now) + c.latTo(core, dg)
}

// countBus tallies a bus transaction into the stats distribution.
func (c *Cache) countBus(kind bus.Kind) {
	switch kind {
	case bus.BusRd:
		c.stats.BusTransactions.Inc(memsys.LabelBusRd)
	case bus.BusRdX:
		c.stats.BusTransactions.Inc(memsys.LabelBusRdX)
	case bus.BusUpg:
		c.stats.BusTransactions.Inc(memsys.LabelBusUpg)
	case bus.BusRepl:
		c.stats.BusTransactions.Inc(memsys.LabelBusRepl)
	case bus.Flush:
		c.stats.BusTransactions.Inc(memsys.LabelFlush)
	case bus.PtrReturn:
		c.stats.BusTransactions.Inc(memsys.LabelPtrRet)
	}
}

// transact issues a bus transaction and returns the cycles it adds to
// the requester's critical path.
func (c *Cache) transact(now memsys.Cycle, kind bus.Kind) memsys.Cycles {
	vis := c.bus.Transact(now, kind)
	c.countBus(kind)
	return vis.Sub(now)
}

// post issues a bus transaction that does not stall the requester
// beyond arbitration (used for the posted write-through invalidations
// of C-state writes).
func (c *Cache) post(now memsys.Cycle, kind bus.Kind) memsys.Cycles {
	vis := c.bus.Transact(now, kind)
	c.countBus(kind)
	wait := vis.Sub(now) - c.bus.Latency()
	if wait < 0 {
		wait = 0
	}
	return wait
}

// recordLifetime folds a dying tag entry into the Figure 7 reuse
// histograms.
func (c *Cache) recordLifetime(p tagPayload) {
	switch p.broughtBy {
	case memsys.ROSMiss:
		c.stats.ReuseROS.Record(p.reuses)
	case memsys.RWSMiss:
		c.stats.ReuseRWS.Record(p.reuses)
	}
}

// killTag invalidates core's tag entry l (recording its lifetime) and
// drops the L1 copy for inclusion.
func (c *Cache) killTag(core int, l *tagLine) {
	addr := c.tags[core].AddrOf(l)
	c.recordLifetime(l.Data)
	c.tags[core].Invalidate(l)
	c.dropL1(core, addr)
}
