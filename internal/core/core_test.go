package core

import (
	"testing"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
	"cmpnurapid/internal/topo"
)

// tinyConfig builds a small CMP-NuRAPID for direct inspection: 4 cores,
// 64 B blocks, 8-set 4-way tag arrays (32 entries per core), 16 frames
// per d-group (64 total), simple latencies.
func tinyConfig() Config {
	cfg := Config{
		Cores: 4, BlockBytes: 64,
		TagSets: 8, TagWays: 4,
		DGroupFrames: 16,
		TagLatency:   1,
		MemLatency:   50,
		Bus:          bus.Config{Latency: 8, SlotCycles: 2},
		Replication:  ReplicateSecondUse,
		EnableISC:    true,
		Promotion:    Fastest,
		Seed:         3,
	}
	for c := 0; c < topo.NumCores; c++ {
		for g := 0; g < topo.NumDGroups; g++ {
			cfg.DGroupLat[c][g] = memsys.CyclesOf(2 + 7*topo.Distance(c, g))
		}
	}
	return cfg
}

func read(c *Cache, now memsys.Cycle, core int, addr memsys.Addr) memsys.Result {
	return c.Access(now, core, addr, false)
}

func write(c *Cache, now memsys.Cycle, core int, addr memsys.Addr) memsys.Result {
	return c.Access(now, core, addr, true)
}

func TestColdMissIsCapacityMiss(t *testing.T) {
	c := New(tinyConfig())
	r := read(c, 0, 0, 0x1000)
	if r.Category != memsys.CapacityMiss {
		t.Errorf("cold miss category = %v, want capacity miss", r.Category)
	}
	if r.Latency < 50 {
		t.Errorf("cold miss latency %d < memory latency", r.Latency)
	}
	if st, dg := c.StateOf(0, 0x1000); st != coherence.Exclusive || dg != topo.Closest(0) {
		t.Errorf("after cold read: state %v d-group %d, want E in closest", st, dg)
	}
	c.CheckInvariants()
}

func TestColdWriteMissInstallsM(t *testing.T) {
	c := New(tinyConfig())
	write(c, 0, 0, 0x1000)
	if st, _ := c.StateOf(0, 0x1000); st != coherence.Modified {
		t.Errorf("cold write state = %v, want M", st)
	}
	c.CheckInvariants()
}

func TestHitLatencyClosest(t *testing.T) {
	c := New(tinyConfig())
	read(c, 0, 0, 0x1000)
	r := read(c, 100, 0, 0x1000)
	if r.Category != memsys.Hit || !r.ClosestDGroup {
		t.Errorf("second read: %+v, want closest hit", r)
	}
	// tag 1 + closest d-group 2 = 3.
	if r.Latency != 3 {
		t.Errorf("hit latency = %d, want 3", r.Latency)
	}
}

// TestControlledReplicationFigure3 walks the paper's Figure 3 example:
// (a) P0 has X in d-group a; (b) P1's first access gets a pointer to
// the copy in a, making no data copy; (c) P1's second access
// replicates X into its closest d-group b.
func TestControlledReplicationFigure3(t *testing.T) {
	c := New(tinyConfig())
	X := memsys.Addr(0x2000)

	// (a) P0 brings X into its closest d-group a.
	read(c, 0, 0, X)
	if st, dg := c.StateOf(0, X); st != coherence.Exclusive || dg != 0 {
		t.Fatalf("(a): P0 state %v d-group %d, want E in a", st, dg)
	}

	// (b) P1 reads X: ROS miss, pointer return, no data copy — P1's tag
	// points into d-group a.
	r := read(c, 100, 1, X)
	if r.Category != memsys.ROSMiss {
		t.Fatalf("(b): category %v, want ROS miss", r.Category)
	}
	if st, dg := c.StateOf(1, X); st != coherence.Shared || dg != 0 {
		t.Fatalf("(b): P1 state %v d-group %d, want S pointing at a", st, dg)
	}
	if st, _ := c.StateOf(0, X); st != coherence.Shared {
		t.Fatalf("(b): P0 state %v, want S (E downgraded by snoop)", st)
	}
	if c.stats.PointerReturns != 1 {
		t.Errorf("(b): PointerReturns = %d, want 1", c.stats.PointerReturns)
	}
	if c.stats.Replications != 0 {
		t.Errorf("(b): Replications = %d, want 0 (no copy on first use)", c.stats.Replications)
	}
	occ := c.Occupancy()
	if occ[0] != 1 || occ[1] != 0 {
		t.Fatalf("(b): occupancy %v, want the single copy in a", occ)
	}

	// (c) P1 reads X again: hit in the farther d-group, then replicate
	// into P1's closest d-group b.
	r = read(c, 200, 1, X)
	if r.Category != memsys.Hit || r.ClosestDGroup {
		t.Fatalf("(c): second use should hit in a farther d-group, got %+v", r)
	}
	if st, dg := c.StateOf(1, X); st != coherence.Shared || dg != 1 {
		t.Fatalf("(c): P1 state %v d-group %d, want S in b after replication", st, dg)
	}
	if st, dg := c.StateOf(0, X); st != coherence.Shared || dg != 0 {
		t.Fatalf("(c): P0 must keep its copy in a, got %v/%d", st, dg)
	}
	if c.stats.Replications != 1 {
		t.Errorf("(c): Replications = %d, want 1", c.stats.Replications)
	}
	occ = c.Occupancy()
	if occ[0] != 1 || occ[1] != 1 {
		t.Fatalf("(c): occupancy %v, want copies in both a and b", occ)
	}
	// Third use: fast local hit.
	r = read(c, 300, 1, X)
	if !r.ClosestDGroup {
		t.Error("(c+): third use should hit P1's closest d-group")
	}
	c.CheckInvariants()
}

func TestReplicateFirstUsePolicy(t *testing.T) {
	cfg := tinyConfig()
	cfg.Replication = ReplicateFirstUse
	c := New(cfg)
	X := memsys.Addr(0x2000)
	read(c, 0, 0, X)
	read(c, 100, 1, X)
	occ := c.Occupancy()
	if occ[0] != 1 || occ[1] != 1 {
		t.Errorf("first-use replication: occupancy %v, want immediate copy in b", occ)
	}
	c.CheckInvariants()
}

func TestReplicateNeverPolicy(t *testing.T) {
	cfg := tinyConfig()
	cfg.Replication = ReplicateNever
	c := New(cfg)
	X := memsys.Addr(0x2000)
	read(c, 0, 0, X)
	read(c, 100, 1, X)
	read(c, 200, 1, X)
	read(c, 300, 1, X)
	occ := c.Occupancy()
	if occ[0] != 1 || occ[1] != 0 {
		t.Errorf("never-replicate: occupancy %v, want single copy", occ)
	}
	c.CheckInvariants()
}

// TestInSituCommunicationReadMiss checks §3.2: a reader missing on a
// dirty block joins C, the data moves to the reader's closest d-group,
// and the writer's tag repoints without losing its copy.
func TestInSituCommunicationReadMiss(t *testing.T) {
	c := New(tinyConfig())
	X := memsys.Addr(0x3000)

	write(c, 0, 0, X) // P0 dirties X in d-group a
	r := read(c, 100, 1, X)
	if r.Category != memsys.RWSMiss {
		t.Fatalf("read of dirty block: category %v, want RWS miss", r.Category)
	}
	// Both in C; data copy now in P1's closest d-group b.
	if st, dg := c.StateOf(1, X); st != coherence.Communication || dg != 1 {
		t.Errorf("reader state %v/%d, want C pointing at b", st, dg)
	}
	if st, dg := c.StateOf(0, X); st != coherence.Communication || dg != 1 {
		t.Errorf("writer state %v/%d, want C repointed at b", st, dg)
	}
	occ := c.Occupancy()
	if occ[0] != 0 || occ[1] != 1 {
		t.Errorf("occupancy %v: old copy must be invalidated, new in b", occ)
	}
	c.CheckInvariants()
}

// TestInSituCommunicationNoCoherenceMisses checks the headline ISC
// property: after the group forms, repeated producer writes and
// consumer reads are all hits.
func TestInSituCommunicationNoCoherenceMisses(t *testing.T) {
	c := New(tinyConfig())
	X := memsys.Addr(0x3000)
	write(c, 0, 0, X)
	read(c, 100, 1, X) // group forms, copy in b

	now := memsys.Cycle(200)
	for i := 0; i < 10; i++ {
		w := write(c, now, 0, X)
		if w.Category != memsys.Hit {
			t.Fatalf("producer write %d: %v, want hit (no coherence miss)", i, w.Category)
		}
		if w.ClosestDGroup {
			t.Errorf("producer write %d hit the writer's closest d-group; copy should stay near the reader", i)
		}
		now += 50
		r := read(c, now, 1, X)
		if r.Category != memsys.Hit || !r.ClosestDGroup {
			t.Fatalf("consumer read %d: %+v, want closest-d-group hit", i, r)
		}
		now += 50
	}
	c.CheckInvariants()
}

// TestISCWriteMissJoinsGroup checks §3.2: a writer missing on a C block
// enters C pointing at the existing copy, which stays close to the
// reader.
func TestISCWriteMissJoinsGroup(t *testing.T) {
	c := New(tinyConfig())
	X := memsys.Addr(0x3000)
	write(c, 0, 0, X)
	read(c, 100, 1, X) // copy moves to b (P1's closest)
	// P2 writes: joins C, copy stays in b.
	r := write(c, 200, 2, X)
	if r.Category != memsys.RWSMiss {
		t.Fatalf("P2 write: %v, want RWS miss", r.Category)
	}
	if st, dg := c.StateOf(2, X); st != coherence.Communication || dg != 1 {
		t.Errorf("P2 state %v/%d, want C pointing at b", st, dg)
	}
	occ := c.Occupancy()
	if occ[1] != 1 || occ[0] != 0 || occ[2] != 0 {
		t.Errorf("occupancy %v, want single copy still in b", occ)
	}
	c.CheckInvariants()
}

// TestISCDisabledFallsBackToMESI checks the ISC-off ablation: a read of
// a dirty block downgrades the writer to S and the next write re-takes
// ownership (coherence misses are back).
func TestISCDisabledFallsBackToMESI(t *testing.T) {
	cfg := tinyConfig()
	cfg.EnableISC = false
	c := New(cfg)
	X := memsys.Addr(0x3000)
	write(c, 0, 0, X)
	r := read(c, 100, 1, X)
	if r.Category != memsys.RWSMiss {
		t.Fatalf("read of dirty: %v, want RWS miss", r.Category)
	}
	if st, _ := c.StateOf(0, X); st != coherence.Shared {
		t.Errorf("writer after flush: %v, want S", st)
	}
	if st, _ := c.StateOf(1, X); st != coherence.Shared {
		t.Errorf("reader: %v, want S", st)
	}
	// Writer writes again: upgrade invalidates the reader.
	w := write(c, 200, 0, X)
	if w.Category != memsys.Hit {
		t.Fatalf("upgrade write: %v, want S-state hit", w.Category)
	}
	if st, _ := c.StateOf(1, X); st != coherence.Invalid {
		t.Errorf("reader after upgrade: %v, want I", st)
	}
	// And the reader's next read is another RWS miss — the ping-pong
	// ISC eliminates.
	r = read(c, 300, 1, X)
	if r.Category != memsys.RWSMiss {
		t.Errorf("reader re-read: %v, want RWS miss", r.Category)
	}
	c.CheckInvariants()
}

// TestROSvsRWSvsCapacityClassification checks the miss taxonomy.
func TestROSvsRWSvsCapacityClassification(t *testing.T) {
	c := New(tinyConfig())
	A, B, C3 := memsys.Addr(0x1000), memsys.Addr(0x2000), memsys.Addr(0x3000)
	if r := read(c, 0, 0, A); r.Category != memsys.CapacityMiss {
		t.Errorf("cold: %v", r.Category)
	}
	if r := read(c, 10, 1, A); r.Category != memsys.ROSMiss {
		t.Errorf("clean copy exists: %v, want ROS", r.Category)
	}
	write(c, 20, 2, B)
	if r := read(c, 30, 3, B); r.Category != memsys.RWSMiss {
		t.Errorf("dirty copy exists: %v, want RWS", r.Category)
	}
	if r := write(c, 40, 0, C3); r.Category != memsys.CapacityMiss {
		t.Errorf("cold write: %v", r.Category)
	}
	c.CheckInvariants()
}

// TestSWriteUpgradeInvalidatesSharers checks S→M: both the pointer
// sharer and the copy owner lose their entries.
func TestSWriteUpgradeInvalidatesSharers(t *testing.T) {
	c := New(tinyConfig())
	X := memsys.Addr(0x2000)
	read(c, 0, 0, X)  // P0: E in a
	read(c, 10, 1, X) // P1: S pointer to a
	read(c, 20, 1, X) // P1 replicates into b
	read(c, 30, 2, X) // P2: S pointer (to a or b)
	w := write(c, 40, 1, X)
	if w.Category != memsys.Hit {
		t.Fatalf("S write: %v, want hit (upgrade)", w.Category)
	}
	if st, dg := c.StateOf(1, X); st != coherence.Modified || dg != 1 {
		t.Errorf("writer: %v/%d, want M in b", st, dg)
	}
	for _, o := range []int{0, 2} {
		if st, _ := c.StateOf(o, X); st != coherence.Invalid {
			t.Errorf("core %d after upgrade: %v, want I", o, st)
		}
	}
	occ := c.Occupancy()
	if occ[0] != 0 || occ[1] != 1 {
		t.Errorf("occupancy %v: P0's copy must be freed, P1's kept", occ)
	}
	c.CheckInvariants()
}

// TestSWriteUpgradeTakesOwnershipOfRemoteCopy: the writer's pointer
// targets another core's copy; ownership must transfer.
func TestSWriteUpgradeTakesOwnershipOfRemoteCopy(t *testing.T) {
	c := New(tinyConfig())
	X := memsys.Addr(0x2000)
	read(c, 0, 0, X)  // P0: E in a
	read(c, 10, 1, X) // P1: S pointer to P0's copy in a
	w := write(c, 20, 1, X)
	if w.Category != memsys.Hit {
		t.Fatalf("upgrade: %v", w.Category)
	}
	if st, dg := c.StateOf(1, X); st != coherence.Modified || dg != 0 {
		t.Errorf("writer: %v/%d, want M still pointing at a", st, dg)
	}
	if st, _ := c.StateOf(0, X); st != coherence.Invalid {
		t.Errorf("P0: %v, want I", st)
	}
	c.CheckInvariants()
}

// TestCapacityStealing fills core 0's closest d-group beyond capacity
// and checks overflow demotes into neighbours' d-groups instead of
// evicting, while the other cores are idle.
func TestCapacityStealing(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg)
	// 24 private blocks for core 0 (d-group holds 16). Use distinct
	// sets to avoid tag conflicts: 8 sets * 4 ways = 32 entries.
	misses := 0
	for i := 0; i < 24; i++ {
		r := read(c, memsys.Cycle(i*100), 0, memsys.Addr(i*64))
		if r.Category != memsys.Hit {
			misses++
		}
	}
	if misses != 24 {
		t.Fatalf("expected 24 cold misses, got %d", misses)
	}
	// All 24 blocks must still be on-chip: re-reads are hits.
	for i := 0; i < 24; i++ {
		r := read(c, memsys.Cycle(10000+i*100), 0, memsys.Addr(i*64))
		if r.Category != memsys.Hit {
			t.Errorf("block %d evicted despite free neighbour capacity", i)
		}
	}
	if c.stats.Demotions == 0 {
		t.Error("no demotions recorded during capacity stealing")
	}
	occ := c.Occupancy()
	total := occ[0] + occ[1] + occ[2] + occ[3]
	if total != 24 {
		t.Errorf("occupancy %v totals %d, want 24", occ, total)
	}
	if occ[0] != 16 {
		t.Errorf("closest d-group occupancy %d, want full (16)", occ[0])
	}
	c.CheckInvariants()
}

// TestPromotionFastest checks a demoted private block returns to the
// closest d-group on reuse.
func TestPromotionFastest(t *testing.T) {
	c := New(tinyConfig())
	for i := 0; i < 20; i++ {
		read(c, memsys.Cycle(i*100), 0, memsys.Addr(i*64))
	}
	// Find a demoted block.
	var demoted memsys.Addr
	found := false
	for i := 0; i < 20 && !found; i++ {
		if _, dg := c.StateOf(0, memsys.Addr(i*64)); dg > 0 {
			demoted, found = memsys.Addr(i*64), true
		}
	}
	if !found {
		t.Fatal("no demoted block found")
	}
	read(c, 5000, 0, demoted)
	if _, dg := c.StateOf(0, demoted); dg != 0 {
		t.Errorf("after reuse, block in d-group %d, want closest", dg)
	}
	if c.stats.Promotions == 0 {
		t.Error("no promotions recorded")
	}
	c.CheckInvariants()
}

// TestSharedBlocksNeverDemoted fills d-groups under contention and
// checks no shared block ever moves to a farther d-group without being
// re-replicated (the §3.3.2 rule); indirectly verified by invariants
// (a demoted shared block would leave a dangling reverse pointer and
// panic CheckInvariants).
func TestSharedBlocksNeverDemoted(t *testing.T) {
	c := New(tinyConfig())
	// Create shared blocks.
	for i := 0; i < 8; i++ {
		a := memsys.Addr(0x8000 + i*64)
		read(c, memsys.Cycle(i*10), 0, a)
		read(c, memsys.Cycle(i*10+500), 1, a)
		read(c, memsys.Cycle(i*10+1000), 1, a) // replicate
	}
	// Pressure core 0's closest d-group with private fills.
	for i := 0; i < 40; i++ {
		read(c, memsys.Cycle(5000+i*50), 0, memsys.Addr(i*64))
	}
	c.CheckInvariants() // would panic on any dangling pointer
}

// TestBusReplInvalidatesPointerSharers: evicting a shared data copy
// must kill the tags pointing at it on other cores (no dangling
// pointers), which then miss again.
func TestBusReplInvalidatesPointerSharers(t *testing.T) {
	cfg := tinyConfig()
	cfg.Replication = ReplicateNever // keep P1 pointing at P0's copy
	c := New(cfg)
	X := memsys.Addr(0x2000)
	read(c, 0, 0, X)
	read(c, 10, 1, X)
	if st, _ := c.StateOf(1, X); st != coherence.Shared {
		t.Fatal("setup failed")
	}
	busReplBefore := c.Bus().Count(bus.BusRepl)

	// Force P0 to evict X's tag by filling its set: X is at set
	// (0x2000>>6)&7 = 0. Blocks at stride sets*block map to set 0.
	stride := 8 * 64
	for i := 1; i <= 4; i++ {
		read(c, memsys.Cycle(100+i*100), 0, memsys.Addr(0x2000+i*stride))
	}
	// P0's set-0 entries: X was LRU... X may be evicted; if the shared
	// X was the victim, P1's pointer must have been invalidated too.
	if st, _ := c.StateOf(0, X); st == coherence.Invalid {
		if st1, _ := c.StateOf(1, X); st1 != coherence.Invalid {
			t.Error("P0's copy evicted but P1's pointer survived (dangling)")
		}
		if c.Bus().Count(bus.BusRepl) == busReplBefore {
			t.Error("shared-copy eviction sent no BusRepl")
		}
	}
	c.CheckInvariants()
}

// TestReuseHistograms checks Figure 7 bookkeeping: lifetimes of blocks
// brought by ROS/RWS misses are recorded with their reuse counts.
func TestReuseHistograms(t *testing.T) {
	c := New(tinyConfig())
	X := memsys.Addr(0x2000)
	read(c, 0, 0, X)  // P0 E
	read(c, 10, 1, X) // P1 ROS miss, 0 reuses so far
	read(c, 20, 1, X) // reuse 1 (replicates)
	read(c, 30, 1, X) // reuse 2
	// Evict P1's entry by upgrading from P0.
	write(c, 40, 0, X)
	if got := c.Stats().ReuseROS.Total(); got != 1 {
		t.Fatalf("ReuseROS lifetimes = %d, want 1", got)
	}
	if got := c.Stats().ReuseROS.Count(3); got != 0 {
		// bucket 3 is >5; two reuses lands in bucket 2 (2-5).
		t.Errorf("reuse bucket >5 = %d, want 0", got)
	}
	c.CheckInvariants()
}

// TestRandomWorkloadInvariants fuzzes the full design and each
// ablation with a mixed shared/private random workload, checking
// invariants throughout.
func TestRandomWorkloadInvariants(t *testing.T) {
	type variant struct {
		name string
		mut  func(*Config)
	}
	variants := []variant{
		{"full", func(*Config) {}},
		{"no-isc", func(c *Config) { c.EnableISC = false }},
		{"first-use", func(c *Config) { c.Replication = ReplicateFirstUse }},
		{"never", func(c *Config) { c.Replication = ReplicateNever }},
		{"next-fastest", func(c *Config) { c.Promotion = NextFastest }},
		{"no-promotion", func(c *Config) { c.Promotion = NoPromotion }},
		{"no-isc-first-use", func(c *Config) { c.EnableISC = false; c.Replication = ReplicateFirstUse }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := tinyConfig()
			v.mut(&cfg)
			c := New(cfg)
			r := rng.New(77)
			now := memsys.Cycle(0)
			for i := 0; i < 30000; i++ {
				coreID := r.Intn(4)
				var addr memsys.Addr
				switch r.Intn(3) {
				case 0: // private per-core region
					addr = memsys.Addr(0x10000*(coreID+1) + r.Intn(40)*64)
				case 1: // read-only shared region
					addr = memsys.Addr(0x80000 + r.Intn(16)*64)
				default: // read-write shared region
					addr = memsys.Addr(0x90000 + r.Intn(8)*64)
				}
				isWrite := r.Bool(0.3)
				res := c.Access(now, coreID, addr, isWrite)
				if res.Latency <= 0 {
					t.Fatalf("non-positive latency at access %d", i)
				}
				now += memsys.Cycle(r.Intn(20) + 1)
				if i%2500 == 0 {
					c.CheckInvariants()
				}
			}
			c.CheckInvariants()
			st := c.Stats()
			if st.Accesses.Total() != 30000 {
				t.Errorf("recorded %d accesses, want 30000", st.Accesses.Total())
			}
			if st.Accesses.Count(memsys.LabelHit) == 0 {
				t.Error("degenerate run: no hits")
			}
		})
	}
}

// TestISCReducesRWSMisses compares RWS miss counts with and without
// ISC on a producer-consumer workload — the paper's central Figure 8
// claim (≈80% reduction).
func TestISCReducesRWSMisses(t *testing.T) {
	run := func(isc bool) uint64 {
		cfg := tinyConfig()
		cfg.EnableISC = isc
		c := New(cfg)
		X := memsys.Addr(0x3000)
		now := memsys.Cycle(0)
		for i := 0; i < 200; i++ {
			write(c, now, 0, X)
			now += 50
			for _, reader := range []int{1, 2} {
				for j := 0; j < 3; j++ { // each write read multiple times
					read(c, now, reader, X)
					now += 50
				}
			}
		}
		return c.Stats().Accesses.Count(memsys.LabelRWS)
	}
	withISC, withoutISC := run(true), run(false)
	if withISC*4 >= withoutISC {
		t.Errorf("ISC RWS misses %d not <25%% of MESI's %d", withISC, withoutISC)
	}
}

// TestCRReducesCapacityPressure: with many streamed read-shared blocks
// that are touched once per core, CR should keep fewer data copies than
// first-use replication.
func TestCRReducesCapacityPressure(t *testing.T) {
	occupied := func(policy ReplicationPolicy) int {
		cfg := tinyConfig()
		cfg.Replication = policy
		c := New(cfg)
		now := memsys.Cycle(0)
		for i := 0; i < 12; i++ {
			a := memsys.Addr(0x8000 + i*64)
			for coreID := 0; coreID < 4; coreID++ {
				read(c, now, coreID, a) // single use per core: no reuse
				now += 10
			}
		}
		occ := c.Occupancy()
		return occ[0] + occ[1] + occ[2] + occ[3]
	}
	cr, first := occupied(ReplicateSecondUse), occupied(ReplicateFirstUse)
	if cr >= first {
		t.Errorf("CR occupies %d frames, first-use %d; CR should use fewer", cr, first)
	}
	if cr != 12 {
		t.Errorf("CR occupancy = %d, want 12 (one copy per block)", cr)
	}
}

func TestNameByConfig(t *testing.T) {
	cfg := tinyConfig()
	if New(cfg).Name() != "CMP-NuRAPID" {
		t.Error("full design name wrong")
	}
	cfg.EnableISC = false
	if New(cfg).Name() != "CMP-NuRAPID (CR only)" {
		t.Error("CR-only name wrong")
	}
	cfg.EnableISC = true
	cfg.Replication = ReplicateFirstUse
	if New(cfg).Name() != "CMP-NuRAPID (ISC only)" {
		t.Error("ISC-only name wrong")
	}
}

func TestDefaultConfigConstructs(t *testing.T) {
	c := New(DefaultConfig())
	// Smoke-run the paper-scale geometry.
	r := rng.New(5)
	now := memsys.Cycle(0)
	for i := 0; i < 5000; i++ {
		c.Access(now, r.Intn(4), memsys.Addr(r.Intn(1<<20)), r.Bool(0.3))
		now += 10
	}
	c.CheckInvariants()
}

func TestIsCommunication(t *testing.T) {
	c := New(tinyConfig())
	X := memsys.Addr(0x3000)
	write(c, 0, 0, X)
	if c.IsCommunication(0, X) {
		t.Error("M block reported as C")
	}
	read(c, 10, 1, X)
	if !c.IsCommunication(0, X) || !c.IsCommunication(1, X) {
		t.Error("C block not reported")
	}
}

// TestL1InvalidateCallback checks the inclusion hook fires for sharers
// on C-state writes and on tag invalidations.
func TestL1InvalidateCallback(t *testing.T) {
	c := New(tinyConfig())
	invalidated := map[[2]uint64]int{}
	c.SetL1Invalidate(func(core int, addr memsys.Addr) {
		invalidated[[2]uint64{uint64(core), uint64(addr)}]++
	})
	X := memsys.Addr(0x3000)
	write(c, 0, 0, X)
	read(c, 10, 1, X)  // forms C group
	write(c, 20, 0, X) // C write → P1's L1 copy must drop
	if invalidated[[2]uint64{1, uint64(X)}] == 0 {
		t.Error("C-state write did not invalidate the sharer's L1 copy")
	}
}
