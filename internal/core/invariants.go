package core

import (
	"fmt"

	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/memsys"
)

// CheckInvariants validates the cache's full pointer and coherence
// structure; tests call it during and after workloads. It panics with
// a description of the first violation found:
//
//  1. Every valid tag entry's forward pointer targets a valid frame
//     holding the tag's block address (no dangling forward pointers —
//     the failure mode BusRepl exists to prevent, §3.1).
//  2. Every valid frame's reverse pointer targets a tag entry that
//     points back at the frame (no dangling reverse pointers — the
//     failure mode shared-block demotion is forbidden to prevent,
//     §3.3.2).
//  3. Free lists exactly complement valid frames.
//  4. MESIC single-writer/single-copy rules: at most one E/M tag per
//     block on the chip; a dirty block (M or C tags) has exactly one
//     data copy and every dirty tag points at it; M never coexists
//     with any other tag copy; S and C never coexist.
func (c *Cache) CheckInvariants() {
	type blockTags struct {
		e, m, cState, s int
		frames          map[ptr]bool
	}
	blocks := map[memsys.Addr]*blockTags{}

	for coreID, ta := range c.tags {
		ta.ForEach(func(_ int, l *tagLine) {
			addr := ta.AddrOf(l)
			st := l.Data.state
			if !st.Valid() {
				panic(fmt.Sprintf("core: core %d valid tag for %#x with invalid coherence state", coreID, addr))
			}
			p := l.Data.fwd
			if p.dgroup < 0 || p.dgroup >= len(c.dgroups) ||
				p.frame < 0 || p.frame >= len(c.dgroups[p.dgroup].frames) {
				panic(fmt.Sprintf("core: core %d tag for %#x has out-of-range pointer %v", coreID, addr, p))
			}
			fr := c.frameAt(p)
			if !fr.valid {
				panic(fmt.Sprintf("core: core %d tag for %#x (state %v) has dangling forward pointer %v",
					coreID, addr, st, p))
			}
			if fr.addr != addr {
				panic(fmt.Sprintf("core: core %d tag for %#x points at frame holding %#x", coreID, addr, fr.addr))
			}
			bt := blocks[addr]
			if bt == nil {
				bt = &blockTags{frames: map[ptr]bool{}}
				blocks[addr] = bt
			}
			bt.frames[p] = true
			switch st {
			case coherence.Exclusive:
				bt.e++
			case coherence.Modified:
				bt.m++
			case coherence.Communication:
				bt.cState++
			case coherence.Shared:
				bt.s++
			default: // Invalid — excluded by the st.Valid() check above
				panic(fmt.Sprintf("core: core %d tag for %#x in unknown state %v", coreID, addr, st))
			}
		})
	}

	// Frame-side checks.
	totalValidFrames := 0
	for gi, dg := range c.dgroups {
		valid := 0
		freeSet := map[int]bool{}
		for _, f := range dg.free {
			if freeSet[f] {
				panic(fmt.Sprintf("core: d-group %d frame %d on free list twice", gi, f))
			}
			freeSet[f] = true
		}
		for fi := range dg.frames {
			fr := &dg.frames[fi]
			if fr.valid == freeSet[fi] {
				panic(fmt.Sprintf("core: d-group %d frame %d valid=%v but on-free-list=%v",
					gi, fi, fr.valid, freeSet[fi]))
			}
			if !fr.valid {
				continue
			}
			valid++
			p := ptr{gi, fi}
			owner := c.tags[fr.revCore].Probe(fr.addr)
			if owner == nil || owner.Data.fwd != p {
				panic(fmt.Sprintf("core: d-group %d frame %d (addr %#x) has dangling reverse pointer to core %d",
					gi, fi, fr.addr, fr.revCore))
			}
		}
		totalValidFrames += valid
	}

	// Block-level coherence checks.
	for addr, bt := range blocks {
		if bt.e+bt.m > 1 {
			panic(fmt.Sprintf("core: block %#x has %d exclusive-owner tags", addr, bt.e+bt.m))
		}
		total := bt.e + bt.m + bt.cState + bt.s
		if bt.m == 1 && total > 1 {
			panic(fmt.Sprintf("core: block %#x M coexists with %d other tags", addr, total-1))
		}
		if bt.e == 1 && total > 1 {
			panic(fmt.Sprintf("core: block %#x E coexists with %d other tags", addr, total-1))
		}
		if bt.cState > 0 && bt.s > 0 {
			panic(fmt.Sprintf("core: block %#x C and S tags coexist", addr))
		}
		if (bt.cState > 0 || bt.m > 0) && len(bt.frames) != 1 {
			panic(fmt.Sprintf("core: block %#x dirty with %d data copies", addr, len(bt.frames)))
		}
	}

	if c.pinnedFrame != noPin {
		panic("core: a frame is still pinned outside an operation")
	}
}

// Occupancy returns the number of valid frames per d-group, for
// capacity-stealing analysis.
func (c *Cache) Occupancy() [4]int {
	var occ [4]int
	for gi, dg := range c.dgroups {
		for _, f := range dg.frames {
			if f.valid {
				occ[gi]++
			}
		}
	}
	return occ
}

// OwnershipByDGroup reports, per owning core, how many of its data
// copies sit in its own closest d-group (own) versus in other cores'
// d-groups (stolen) — the direct measure of capacity stealing.
func (c *Cache) OwnershipByDGroup() (own, stolen [4]int) {
	for gi, dg := range c.dgroups {
		for _, f := range dg.frames {
			if !f.valid {
				continue
			}
			if c.closest(f.revCore) == gi {
				own[f.revCore]++
			} else {
				stolen[f.revCore]++
			}
		}
	}
	return own, stolen
}

// TagOccupancy returns the number of valid tag entries per core.
func (c *Cache) TagOccupancy() []int {
	occ := make([]int, c.cfg.Cores)
	for i, ta := range c.tags {
		occ[i] = ta.CountValid()
	}
	return occ
}

// StateOf reports core's coherence state for addr (Invalid if absent)
// and, when valid, which d-group its pointer targets. Exposed for
// tests and the protocol-walkthrough example.
func (c *Cache) StateOf(core int, addr memsys.Addr) (coherence.State, int) {
	l := c.tags[core].Probe(addr.BlockAddr(c.cfg.BlockBytes))
	if l == nil {
		return coherence.Invalid, -1
	}
	return l.Data.state, l.Data.fwd.dgroup
}
