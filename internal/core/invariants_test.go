package core

import (
	"strings"
	"testing"

	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/topo"
)

// Negative-path tests for CheckInvariants: each deliberately corrupts
// one structure the checker guards — a forward pointer, a free list,
// the MESIC single-writer rule — and asserts the panic names the
// right violation. A checker that cannot fail protects nothing.

// expectInvariantPanic runs CheckInvariants on a deliberately
// corrupted cache and asserts it panics with a message containing
// want.
func expectInvariantPanic(t *testing.T, c *Cache, want string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("CheckInvariants accepted corrupted state; want panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q, want substring %q", msg, want)
		}
		if !strings.HasPrefix(msg, "core: ") {
			t.Fatalf("panic %q does not follow the \"core: \" prefix convention", msg)
		}
	}()
	c.CheckInvariants()
}

func TestInvariantsDetectDanglingForwardPointer(t *testing.T) {
	c := New(tinyConfig())
	read(c, 0, 0, 0x1000)
	l := c.tags[0].Probe(0x1000)
	if l == nil {
		t.Fatal("no tag installed by read")
	}
	// Redirect the tag at a frame still on the free list.
	l.Data.fwd.frame++
	expectInvariantPanic(t, c, "dangling forward pointer")
}

func TestInvariantsDetectFreeListCorruption(t *testing.T) {
	t.Run("duplicate entry", func(t *testing.T) {
		c := New(tinyConfig())
		read(c, 0, 0, 0x1000)
		dg := c.dgroups[topo.Closest(0)]
		dg.free = append(dg.free, dg.free[0])
		expectInvariantPanic(t, c, "on free list twice")
	})
	t.Run("valid frame on free list", func(t *testing.T) {
		c := New(tinyConfig())
		read(c, 0, 0, 0x1000)
		dg := c.dgroups[topo.Closest(0)]
		// The read allocated exactly one frame; push it back on the
		// free list while its tag still points at it.
		for fi := range dg.frames {
			if dg.frames[fi].valid {
				dg.free = append(dg.free, fi)
			}
		}
		expectInvariantPanic(t, c, "on-free-list")
	})
}

func TestInvariantsDetectMultipleWriters(t *testing.T) {
	c := New(tinyConfig())
	write(c, 0, 0, 0x1000)
	l0 := c.tags[0].Probe(0x1000)
	if l0 == nil || l0.Data.state != coherence.Modified {
		t.Fatal("write did not install an M tag")
	}
	// Forge a second M tag for the same block in another core's array,
	// violating the MESIC single-writer rule (§3.1).
	v := c.tags[1].Victim(0x1000)
	c.tags[1].Install(v, 0x1000, tagPayload{state: coherence.Modified, fwd: l0.Data.fwd})
	expectInvariantPanic(t, c, "exclusive-owner tags")
}
