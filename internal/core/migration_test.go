package core

import (
	"testing"

	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/memsys"
)

// These tests cover the stuck-C-copy migration extension (the paper's
// §3.2 future-work item). Scenario: P0 writes block Y; P1's read moves
// the single copy to P1's closest d-group b; P2's read then moves it
// on to d-group c. P1 — who still holds a C tag — now reads Y
// repeatedly from the remote copy: an ISC read *miss* always relocates
// the copy, but a C-tag *hit* never does, so under the published
// design P1 pays farther-d-group latency forever.

func stuckCSetup(t *testing.T, threshold int) (*Cache, memsys.Addr) {
	t.Helper()
	cfg := tinyConfig()
	cfg.CMigrationThreshold = threshold
	c := New(cfg)
	Y := memsys.Addr(0x3000)
	write(c, 0, 0, Y)  // P0: M in a
	read(c, 100, 1, Y) // P1: C group forms, copy in b
	read(c, 200, 2, Y) // P2 joins: copy moves on to c
	if st, dg := c.StateOf(1, Y); st != coherence.Communication || dg != 2 {
		t.Fatalf("setup: P1 %v/%d, want C pointing at c (remote)", st, dg)
	}
	return c, Y
}

func TestStuckCCopyWithoutMigration(t *testing.T) {
	c, Y := stuckCSetup(t, 0) // paper's design: no exits out of C
	now := memsys.Cycle(300)
	for i := 0; i < 20; i++ {
		r := read(c, now, 1, Y)
		if r.Category != memsys.Hit {
			t.Fatalf("read %d: %v, want hit", i, r.Category)
		}
		if r.ClosestDGroup {
			t.Fatalf("read %d served from P1's closest d-group; copy should be stuck in c", i)
		}
		now += 50
	}
	if c.CMigrations != 0 {
		t.Errorf("CMigrations = %d with the extension off", c.CMigrations)
	}
	c.CheckInvariants()
}

func TestStuckCCopyMigrates(t *testing.T) {
	const threshold = 4
	c, Y := stuckCSetup(t, threshold)
	now := memsys.Cycle(300)
	migratedAt := -1
	for i := 0; i < 20; i++ {
		r := read(c, now, 1, Y)
		if r.Category != memsys.Hit {
			t.Fatalf("read %d: %v, want hit (migration must not cause misses)", i, r.Category)
		}
		if r.ClosestDGroup && migratedAt < 0 {
			migratedAt = i
		}
		now += 50
	}
	if migratedAt < 0 {
		t.Fatal("copy never migrated to the active reader")
	}
	if migratedAt > threshold+1 {
		t.Errorf("migration happened at read %d, want within ~%d", migratedAt, threshold)
	}
	if c.CMigrations != 1 {
		t.Errorf("CMigrations = %d, want 1", c.CMigrations)
	}
	// The single-copy property must hold: every C tag points at the new
	// copy in P1's closest d-group b.
	for _, core := range []int{0, 1, 2} {
		if st, dg := c.StateOf(core, Y); st != coherence.Communication || dg != 1 {
			t.Errorf("P%d: %v/%d, want C pointing at d-group b", core, st, dg)
		}
	}
	occ := c.Occupancy()
	if occ[2] != 0 || occ[1] != 1 {
		t.Errorf("occupancy %v: old copy must be freed, new in b", occ)
	}
	c.CheckInvariants()
}

func TestMigrationCounterResetsOnLocalRead(t *testing.T) {
	const threshold = 5
	c, Y := stuckCSetup(t, threshold)
	now := memsys.Cycle(300)
	// P1 reads remotely threshold-1 times (just under the trigger),
	// then the producer writes: writes never trigger migration, and
	// the copy stays where the last reader pulled it.
	for i := 0; i < threshold-1; i++ {
		read(c, now, 1, Y)
		now += 50
	}
	w := write(c, now, 0, Y)
	if w.Category != memsys.Hit {
		t.Fatalf("producer write: %v", w.Category)
	}
	if c.CMigrations != 0 {
		t.Errorf("write triggered a migration")
	}
	c.CheckInvariants()
}

func TestMigrationUnderInvariantFuzz(t *testing.T) {
	cfg := tinyConfig()
	cfg.CMigrationThreshold = 3
	c := New(cfg)
	// Reuse the shared fuzz shape: mixed private/RO/RW traffic.
	now := memsys.Cycle(0)
	seed := uint64(0xfeed)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for i := 0; i < 30000; i++ {
		coreID := next(4)
		var addr memsys.Addr
		switch next(3) {
		case 0:
			addr = memsys.Addr(0x10000*(coreID+1) + next(40)*64)
		case 1:
			addr = memsys.Addr(0x80000 + next(16)*64)
		default:
			addr = memsys.Addr(0x90000 + next(8)*64)
		}
		c.Access(now, coreID, addr, next(10) < 3)
		now += memsys.Cycle(next(20) + 1)
		if i%5000 == 0 {
			c.CheckInvariants()
		}
	}
	c.CheckInvariants()
	if c.CMigrations == 0 {
		t.Error("fuzz produced no migrations despite threshold 3 and RW sharing")
	}
}
