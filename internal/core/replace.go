package core

import (
	"fmt"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// This file implements CMP-NuRAPID's data-array frame management and
// the two replacement forms of §3.3.2: data replacement (evicting a
// block from the cache on a miss, preferring invalid, then private,
// then shared victims) and distance replacement (demoting blocks to
// farther d-groups to create space close to a core).

// noPin marks no frame pinned.
var noPin = ptr{dgroup: -1, frame: -1}

// pinned guards the frame a CR replication or ISC move is copying out
// of, so the demotion chain clearing space for the new copy cannot
// evict the source mid-operation. This realizes §3.1's busy-bit: "the
// tag for the block being read from a farther d-group [is] marked
// busy ... replacement invalidations will be inhibited until the read
// has completed."
func (c *Cache) pin(p ptr) { c.pinnedFrame = p }
func (c *Cache) unpin()    { c.pinnedFrame = noPin }
func (c *Cache) pinned(p ptr) bool {
	return c.pinnedFrame == p
}

// takeFrame pops a free frame from dg.
func (c *Cache) takeFrame(g int) int {
	dg := c.dgroups[g]
	if len(dg.free) == 0 {
		panic("core: takeFrame on full d-group")
	}
	f := dg.free[len(dg.free)-1]
	dg.free = dg.free[:len(dg.free)-1]
	return f
}

// releaseFrame invalidates p and returns it to the free list.
func (c *Cache) releaseFrame(p ptr) {
	dg := c.dgroups[p.dgroup]
	if !dg.frames[p.frame].valid {
		panic("core: releasing an already-free frame")
	}
	dg.frames[p.frame] = frameInfo{}
	// hotpath:alloc free list is pre-sized to the d-group's frame count and never grows past it
	dg.free = append(dg.free, p.frame)
}

// frameAt returns the frame record at p.
func (c *Cache) frameAt(p ptr) *frameInfo { return &c.dgroups[p.dgroup].frames[p.frame] }

// ownerLine returns the tag entry owning frame p (the reverse-pointer
// target). Panics if the reverse pointer dangles — an invariant
// violation, not a runtime condition.
func (c *Cache) ownerLine(p ptr) (int, *tagLine) {
	fr := c.frameAt(p)
	if !fr.valid {
		panic("core: ownerLine of invalid frame")
	}
	l := c.tags[fr.revCore].Probe(fr.addr)
	if l == nil || !l.Data.state.Valid() || l.Data.fwd != p {
		panic(fmt.Sprintf("core: dangling reverse pointer at %v (addr %#x, rev core %d)",
			p, fr.addr, fr.revCore))
	}
	return fr.revCore, l
}

// pointsAt reports whether core o's tag entry for addr points at p.
// Frame-pointer scans loop over cores with this predicate instead of
// materializing a holder slice: eviction runs on the per-miss path,
// where a fresh []int per scan is a measurable allocation.
func (c *Cache) pointsAt(o int, addr memsys.Addr, p ptr) *tagLine {
	if l := c.tags[o].Probe(addr); l != nil && l.Data.state.Valid() && l.Data.fwd == p {
		return l
	}
	return nil
}

// anyDirtyTag reports whether any tag pointing at p holds it dirty.
func (c *Cache) anyDirtyTag(addr memsys.Addr, p ptr) bool {
	for o := 0; o < c.cfg.Cores; o++ {
		if l := c.pointsAt(o, addr, p); l != nil && l.Data.state.Dirty() {
			return true
		}
	}
	return false
}

// evictFrame kills the data copy at p entirely: writes it back if
// dirty, broadcasts BusRepl when the dying block is shared (so sharers
// with tag entries pointing at the frame invalidate them, §3.1), and
// frees the frame.
func (c *Cache) evictFrame(now memsys.Cycle, p ptr) {
	fr := c.frameAt(p)
	addr := fr.addr
	if c.anyDirtyTag(addr, p) {
		c.Writebacks++
	}
	shared := false
	for o := 0; o < c.cfg.Cores; o++ {
		if l := c.pointsAt(o, addr, p); l != nil && !l.Data.state.PrivateBlock() {
			shared = true
		}
	}
	if shared {
		// Replacements proceed in parallel with the miss that triggered
		// them; BusRepl costs bus bandwidth but not requester latency.
		c.post(now, bus.BusRepl)
	}
	// killTag only touches core o's own tag, so re-probing per core
	// sees exactly the holder set the scans above saw.
	for o := 0; o < c.cfg.Cores; o++ {
		if l := c.pointsAt(o, addr, p); l != nil {
			c.killTag(o, l)
		}
	}
	c.releaseFrame(p)
}

// pickVictimFrame returns a random valid, unpinned frame index in
// d-group g. §3.3.2: the in-d-group choice is random because "LRU
// requires O(n^2) hardware to track n frames".
func (c *Cache) pickVictimFrame(g int) int {
	dg := c.dgroups[g]
	n := len(dg.frames)
	for try := 0; try < 8; try++ {
		vi := c.rand.Intn(n)
		if dg.frames[vi].valid && !c.pinned(ptr{g, vi}) {
			return vi
		}
	}
	start := c.rand.Intn(n)
	for i := 0; i < n; i++ {
		vi := (start + i) % n
		if dg.frames[vi].valid && !c.pinned(ptr{g, vi}) {
			return vi
		}
	}
	panic("core: no evictable frame in d-group")
}

// freeFrameIn obtains a free frame in d-group g for core, running the
// distance-replacement demotion chain when g is full: a random private
// victim is demoted to the next-fastest (for core) d-group, repeating
// until the stop d-group; random shared victims and victims at the
// stop d-group are evicted outright, which also ends the chain.
// stop < 0 means "non-specific": a random stop d-group is drawn from
// the d-groups farther than the originating one (§3.3.2: "we break
// this cycle by choosing a d-group at random to stop the demotions" —
// the cycle being broken is the demotion loop around the farther
// d-groups, so the originating d-group itself is excluded; stopping
// there would evict locally even while neighbours sit empty).
func (c *Cache) freeFrameIn(now memsys.Cycle, core, g, stop int) int {
	if stop < 0 {
		if r := topo.Rank(core, g); r < topo.NumDGroups-1 {
			stop = topo.Preference[core][r+1+c.rand.Intn(topo.NumDGroups-1-r)]
		} else {
			stop = g // already farthest: evict here
		}
	}
	return c.freeFrameRec(now, core, g, stop, 0)
}

func (c *Cache) freeFrameRec(now memsys.Cycle, core, g, stop, depth int) int {
	if depth > topo.NumDGroups {
		panic("core: demotion chain did not terminate")
	}
	dg := c.dgroups[g]
	if len(dg.free) > 0 {
		return c.takeFrame(g)
	}
	vi := c.pickVictimFrame(g)
	p := ptr{g, vi}
	_, owner := c.ownerLine(p)
	next, hasNext := topo.NextSlower(core, g)
	// Shared victims are evicted, never demoted (§3.3.2: demoting a
	// shared block would leave a dangling reverse pointer after a CR
	// re-copy). Private victims demote unless the chain stops here.
	if !owner.Data.state.PrivateBlock() || g == stop || !hasNext {
		c.evictFrame(now, p)
		return c.takeFrame(g)
	}
	nf := c.freeFrameRec(now, core, next, stop, depth+1)
	c.moveFrame(p, ptr{next, nf})
	c.stats.Demotions++
	return c.takeFrame(g)
}

// moveFrame relocates the (private) block at src into the already-free
// frame dst, updating the owner tag's forward pointer and the new
// frame's reverse pointer.
func (c *Cache) moveFrame(src, dst ptr) {
	fr := *c.frameAt(src)
	_, owner := c.ownerLine(src)
	if !owner.Data.state.PrivateBlock() {
		panic("core: moveFrame on a shared block")
	}
	c.releaseFrame(src)
	*c.frameAt(dst) = frameInfo{valid: true, addr: fr.addr, revCore: fr.revCore}
	owner.Data.fwd = dst
}

// tagVictim selects the replacement victim in core's tag set for addr,
// in the paper's order: invalid first, then private (E/M), then shared
// (S/C), LRU within each category (§3.3.2).
func (c *Cache) tagVictim(core int, addr memsys.Addr) *tagLine {
	ta := c.tags[core]
	set := ta.SetIndex(addr)
	for i := range ta.Set(set) {
		l := &ta.Set(set)[i]
		if !l.Valid {
			return l
		}
	}
	var privLRU, sharedLRU *tagLine
	// hotpath:alloc non-escaping callback: LRUOrder only calls f, so the closure and its captures stay on the stack (TestStepDoesNotAllocate holds this to zero)
	ta.LRUOrder(set, func(l *tagLine) bool {
		if l.Data.state.PrivateBlock() {
			if privLRU == nil {
				privLRU = l
			}
		} else if sharedLRU == nil {
			sharedLRU = l
		}
		return privLRU == nil || sharedLRU == nil
	})
	if privLRU != nil {
		return privLRU
	}
	return sharedLRU
}

// evictTagEntry removes core's tag entry l from the cache, handling
// the data-side consequences per §3.3.2, and returns the d-group where
// a frame was freed (the specific target for distance replacement), or
// -1 when no frame was freed (pointer-only entries and invalid lines).
func (c *Cache) evictTagEntry(now memsys.Cycle, core int, l *tagLine) int {
	if !l.Valid {
		return -1
	}
	addr := c.tags[core].AddrOf(l)
	p := l.Data.fwd
	st := l.Data.state
	fr := c.frameAt(p)
	owns := fr.valid && fr.addr == addr && fr.revCore == core

	if st.PrivateBlock() {
		// Private block: the data is evicted; its frame frees space in
		// some d-group, which becomes the demotion chain's target.
		if st == coherence.Modified {
			c.Writebacks++
		}
		c.killTag(core, l)
		c.releaseFrame(p)
		return p.dgroup
	}

	if owns {
		// Shared block whose data copy we placed: evict the copy and
		// BusRepl-invalidate every other tag pointing at it.
		c.killTag(core, l)
		c.evictFrameSharedRemainder(now, addr, p)
		return p.dgroup
	}

	// Shared block reached through someone else's copy: drop only the
	// tag; "the data block is not evicted and it is left for the other
	// sharers" (§3.3.2).
	c.killTag(core, l)
	return -1
}

// evictFrameSharedRemainder evicts frame p after its owning tag has
// already been killed: BusRepl, remaining-pointer invalidation,
// write-back if a dirty (C) tag still points here.
func (c *Cache) evictFrameSharedRemainder(now memsys.Cycle, addr memsys.Addr, p ptr) {
	if c.anyDirtyTag(addr, p) {
		c.Writebacks++
	}
	c.post(now, bus.BusRepl)
	for o := 0; o < c.cfg.Cores; o++ {
		if l := c.pointsAt(o, addr, p); l != nil {
			c.killTag(o, l)
		}
	}
	c.releaseFrame(p)
}

// installTag places a new tag entry for addr in core's array with the
// given payload, evicting a victim per the data-replacement policy
// first. When the new entry needs a data frame in core's closest
// d-group, the caller allocates it via allocClosest (which uses the
// freed d-group as the demotion target).
func (c *Cache) installTag(now memsys.Cycle, core int, addr memsys.Addr, pay tagPayload) *tagLine {
	v := c.tagVictim(core, addr)
	c.evictTagEntry(now, core, v)
	return c.tags[core].Install(v, addr, pay)
}

// allocClosest evicts a tag victim and allocates a data frame in
// core's closest d-group for addr, returning the installed tag line.
// This is the common "bring a block into the cache near me" path used
// by placement (§3.3.1: "CMP-NuRAPID initially places all private
// blocks in the data d-group closest to the initiating core").
func (c *Cache) allocClosest(now memsys.Cycle, core int, addr memsys.Addr, pay tagPayload) *tagLine {
	v := c.tagVictim(core, addr)
	freed := c.evictTagEntry(now, core, v)
	cl := c.closest(core)
	nf := c.freeFrameIn(now, core, cl, freed)
	pay.fwd = ptr{cl, nf}
	*c.frameAt(pay.fwd) = frameInfo{valid: true, addr: addr, revCore: core}
	return c.tags[core].Install(v, addr, pay)
}

// promote applies the CS promotion policy to core's private block l
// that just hit in a non-closest d-group (§3.3.1).
func (c *Cache) promote(now memsys.Cycle, core int, l *tagLine) {
	if c.cfg.Promotion == NoPromotion {
		return
	}
	cur := l.Data.fwd.dgroup
	target := c.closest(core)
	if c.cfg.Promotion == NextFastest {
		var ok bool
		target, ok = topo.NextFaster(core, cur)
		if !ok {
			return
		}
	}
	if target == cur {
		return
	}
	src := l.Data.fwd
	dg := c.dgroups[target]
	if len(dg.free) > 0 {
		nf := c.takeFrame(target)
		c.moveFrame(src, ptr{target, nf})
		c.stats.Promotions++
		return
	}
	// No free frame: swap with a random victim. A private victim
	// demotes into the promoted block's old frame; a shared victim is
	// evicted (shared blocks never move, §3.3.1/§3.3.2).
	vi := c.pickVictimFrame(target)
	vp := ptr{target, vi}
	if vp == src {
		return
	}
	_, victimOwner := c.ownerLine(vp)
	if victimOwner.Data.state.PrivateBlock() {
		// Swap: move victim out to a scratch ptr first. Using the
		// source frame directly keeps this a two-assignment swap.
		vfr := *c.frameAt(vp)
		sfr := *c.frameAt(src)
		*c.frameAt(vp) = frameInfo{valid: true, addr: sfr.addr, revCore: sfr.revCore}
		*c.frameAt(src) = frameInfo{valid: true, addr: vfr.addr, revCore: vfr.revCore}
		l.Data.fwd = vp
		victimOwner.Data.fwd = src
		c.stats.Promotions++
		c.stats.Demotions++
		return
	}
	c.evictFrame(now, vp)
	nf := c.takeFrame(target)
	c.moveFrame(src, ptr{target, nf})
	c.stats.Promotions++
}
