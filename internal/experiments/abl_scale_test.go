package experiments

import (
	"strings"
	"testing"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/workload"
)

// cmpsimSpeedup aliases cmpsim.Speedup for test brevity.
var cmpsimSpeedup = cmpsim.Speedup

// ablationRC is the smallest scale at which the ablation effects are
// measurable: the tag arrays and d-groups must actually fill before
// tag capacity or promotion policy can matter.
func ablationRC() RunConfig {
	return RunConfig{WarmupInstr: 3_000_000, Instructions: 1_500_000, Seed: 42}
}

// TestAblationPromotionOrdering checks §3.3.1: in CMPs the fastest
// promotion policy beats next-fastest (which beats no promotion),
// because promoting through intermediate d-groups pollutes other
// cores' fastest d-groups. Measured on MIX3 (mcf driving heavy
// capacity stealing).
func TestAblationPromotionOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation-scale simulation skipped in -short mode")
	}
	fastest, next := PromotionSpeedups(ablationRC(), 2)
	if fastest <= 1.0 {
		t.Errorf("fastest promotion speedup %.4f not above no-promotion", fastest)
	}
	if fastest < next {
		t.Errorf("fastest (%.4f) below next-fastest (%.4f); paper found the opposite", fastest, next)
	}
}

// TestAblationTagCapacity checks §2.2.2: doubling each core's tag
// capacity performs almost as well as quadrupling (within 1%), while
// halving it back to 1x visibly trails.
func TestAblationTagCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation-scale simulation skipped in -short mode")
	}
	s := TagCapacitySpeedups(ablationRC(), workload.OLTP(42))
	x1, x2, x4 := s[0], s[1], s[2]
	if x2 < x4*0.99 {
		t.Errorf("2x tags (%.4f) not within 1%% of 4x (%.4f); paper: 'almost as well'", x2, x4)
	}
	if x1 > x2*0.98 {
		t.Errorf("1x tags (%.4f) suspiciously close to 2x (%.4f); extra tag space should matter", x1, x2)
	}
}

// TestSizeSensitivityShape checks the capacity sweep is well-formed
// and that CMP-NuRAPID beats the same-size uniform-shared cache at
// the paper's 8 MB point.
func TestSizeSensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity simulation skipped in -short mode")
	}
	rc := RunConfig{WarmupInstr: 2_000_000, Instructions: 1_000_000, Seed: 42}
	priv, nur := SizeSpeedups(rc, 8)
	if nur <= 1 || nur <= priv*0.95 {
		t.Errorf("8 MB point broken: private %.3f, NuRAPID %.3f", priv, nur)
	}
}

// TestSeedOrderingStable checks the Figure 10 ordering holds across
// seeds (the reproduction's analogue of the paper's variability runs).
func TestSeedOrderingStable(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity simulation skipped in -short mode")
	}
	rc := RunConfig{WarmupInstr: 1_500_000, Instructions: 700_000, Seed: 0}
	if !SeedOrderingStable(rc, []uint64{7, 1234, 999999}) {
		t.Error("CMP-NuRAPID > private > uniform-shared ordering unstable across seeds")
	}
}

// TestUpdateProtocolTradeoffs checks §3.2's argument end to end on
// OLTP: the update protocol and ISC both beat invalidate-based private
// caches on RWS-heavy sharing, but CMP-NuRAPID (ISC) beats the update
// protocol, which pays a bus broadcast per shared write and a copy per
// sharer.
func TestUpdateProtocolTradeoffs(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation-scale simulation skipped in -short mode")
	}
	rc := RunConfig{WarmupInstr: 2_500_000, Instructions: 1_200_000, Seed: 42}
	inv, upd, isc := UpdateProtocolSpeedups(rc, workload.OLTP(rc.Seed))
	if isc <= upd {
		t.Errorf("ISC (%.3f) not above update protocol (%.3f); §3.2's argument should hold", isc, upd)
	}
	if inv <= 1 || upd <= 1 {
		t.Errorf("degenerate: invalidate %.3f update %.3f", inv, upd)
	}
}

// TestDNUCALosesToSNUCA reproduces [6]'s negative result the paper
// relies on ("[6] shows realistic CMP-DNUCA to perform worse than
// CMP-SNUCA"): under heavy sharing, migration's incremental search and
// block tug-of-war cost more than static placement saves.
func TestDNUCALosesToSNUCA(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation-scale simulation skipped in -short mode")
	}
	rc := RunConfig{WarmupInstr: 2_000_000, Instructions: 1_000_000, Seed: 42}
	p := workload.OLTP(rc.Seed)
	base := RunProfile(UniformShared, p, rc)
	snuca := cmpsimSpeedup(RunProfile(NonUniform, p, rc), base)
	dnuca := cmpsimSpeedup(RunProfile(DNUCA, p, rc), base)
	if dnuca >= snuca {
		t.Errorf("CMP-DNUCA (%.3f) not below CMP-SNUCA (%.3f); [6]'s result should reproduce", dnuca, snuca)
	}
}

// TestDemotionBandwidthClaim checks §3.3.2: "the demotions are not
// frequent enough to cause a bandwidth problem" — a handful per
// thousand instructions, not per ten.
func TestDemotionBandwidthClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation-scale simulation skipped in -short mode")
	}
	rc := RunConfig{WarmupInstr: 2_000_000, Instructions: 1_000_000, Seed: 42}
	// MIX1's non-uniform demand drives capacity stealing; multithreaded
	// workloads replace frame-for-frame in the closest d-group and
	// rarely demote at all.
	rate := DemotionsPer1K(rc, workload.Mixes(rc.Seed)[0])
	if rate > 50 {
		t.Errorf("demotion rate %.2f per 1000 instructions contradicts the bandwidth claim", rate)
	}
	if rate == 0 {
		t.Error("no demotions at all; capacity stealing inactive")
	}
}

func TestBandwidthReportRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	rc := RunConfig{WarmupInstr: 100_000, Instructions: 100_000, Seed: 1}
	s := BandwidthReport(rc).String()
	if len(s) < 100 {
		t.Errorf("bandwidth report suspicious:\n%s", s)
	}
}

// TestCapacityReportShowsStealing checks the §3.3 allocation story on
// MIX3 directly: the cache-hungry app (mcf, core 1) must hold frames
// outside its own d-group, while the small apps (gzip, mesa) stay home.
func TestCapacityReportShowsStealing(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation-scale simulation skipped in -short mode")
	}
	rc := RunConfig{WarmupInstr: 2_000_000, Instructions: 500_000, Seed: 42}
	s := CapacityReport(rc, 2).String()
	if len(s) < 100 {
		t.Fatalf("capacity report suspicious:\n%s", s)
	}
	if !containsAll(s, "mcf", "gzip", "mesa", "apsi") {
		t.Errorf("capacity report missing apps:\n%s", s)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, x := range subs {
		if !strings.Contains(s, x) {
			return false
		}
	}
	return true
}
