package experiments

import (
	"fmt"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/workload"
)

// This file regenerates the design-choice ablations DESIGN.md calls
// out: promotion policy (§3.3.1 prefers fastest in CMPs), tag-array
// capacity (§2.2.2 doubles instead of quadrupling), the CR replication
// trigger (§3.1 copies on the second use), and the CR/ISC optimization
// matrix (§5.1.2). Each ablation is an Eval method backed by memoized
// variant runs, plus a cell declaration so the scheduler can execute
// the runs concurrently before rendering; the package-level functions
// of the same names are sequential convenience wrappers.

// runNuRAPIDVariant runs a workload on a CMP-NuRAPID with the config
// mutated by mut, returning the results.
func runNuRAPIDVariant(w cmpsim.Workload, rc RunConfig, mut func(*core.Config)) cmpsim.Results {
	cfg := core.DefaultConfig()
	mut(&cfg)
	sys := cmpsim.New(cmpsim.DefaultConfig(), core.New(cfg), w)
	sys.Warmup(rc.WarmupInstr)
	return sys.Run(rc.Instructions)
}

// variantMT memoizes a CMP-NuRAPID config variant on a multithreaded
// profile under key.
func (e *Eval) variantMT(key string, p workload.Profile, mut func(*core.Config)) cmpsim.Results {
	return e.results(key, func() cmpsim.Results {
		pp := p
		pp.Seed = e.RC.Seed
		return runNuRAPIDVariant(workload.New(pp), e.RC, mut)
	})
}

// variantMix memoizes a CMP-NuRAPID config variant on a Table 2 mix
// under key. A fresh generator per fill keeps streams identical across
// variants.
func (e *Eval) variantMix(key string, mixIdx int, mut func(*core.Config)) cmpsim.Results {
	return e.results(key, func() cmpsim.Results {
		return runNuRAPIDVariant(workload.Mixes(e.RC.Seed)[mixIdx], e.RC, mut)
	})
}

// --- promotion policy (§3.3.1) ---

var promotionPolicies = []core.PromotionPolicy{core.NoPromotion, core.Fastest, core.NextFastest}

func promotionKey(mixIdx int, pol core.PromotionPolicy) string {
	return fmt.Sprintf("abl/promotion/%d/%d", mixIdx, pol)
}

func (e *Eval) promotionRun(mixIdx int, pol core.PromotionPolicy) cmpsim.Results {
	return e.variantMix(promotionKey(mixIdx, pol), mixIdx,
		func(c *core.Config) { c.Promotion = pol })
}

func (e *Eval) ablationPromotionCells() []Cell {
	var cells []Cell
	for i := range e.mixes {
		for _, pol := range promotionPolicies {
			cells = append(cells, Cell{Key: promotionKey(i, pol), Run: func() { e.promotionRun(i, pol) }})
		}
	}
	return cells
}

// AblationPromotion compares the fastest and next-fastest promotion
// policies (and no promotion) on the multiprogrammed mixes, where
// capacity stealing matters most. The paper found fastest more
// effective in CMPs because "one core's next-fastest d-group is
// another core's fastest" (§3.3.1).
func (e *Eval) AblationPromotion() *stats.Table {
	t := stats.NewTable("Ablation: CS promotion policy (weighted speedup vs no promotion)",
		"Workload", "fastest", "next-fastest")
	for i, m := range e.mixes {
		base := e.promotionRun(i, core.NoPromotion)
		row := []string{m.Name()}
		for _, pol := range []core.PromotionPolicy{core.Fastest, core.NextFastest} {
			row = append(row, stats.Rel(cmpsim.Speedup(e.promotionRun(i, pol), base)))
		}
		t.Row(row...)
	}
	return t
}

// AblationPromotion is the sequential wrapper used by tests and
// benchmarks.
func AblationPromotion(rc RunConfig) *stats.Table { return NewEval(rc).AblationPromotion() }

// PromotionSpeedups returns (fastest, nextFastest) weighted speedups
// over no-promotion for one mix, for tests.
func PromotionSpeedups(rc RunConfig, mixIdx int) (fastest, nextFastest float64) {
	e := NewEval(rc)
	base := e.promotionRun(mixIdx, core.NoPromotion)
	f := e.promotionRun(mixIdx, core.Fastest)
	n := e.promotionRun(mixIdx, core.NextFastest)
	return cmpsim.Speedup(f, base), cmpsim.Speedup(n, base)
}

// --- tag-array capacity (§2.2.2) ---

var tagFactors = []int{1, 2, 4}

func tagKey(factor int, p workload.Profile) string {
	return fmt.Sprintf("abl/tags/%dx/%s", factor, p.Name)
}

func (e *Eval) tagRun(factor int, p workload.Profile) cmpsim.Results {
	return e.variantMT(tagKey(factor, p), p, func(c *core.Config) {
		c.TagSets = c.TagSets * factor / 2 // default is the 2x config
	})
}

func (e *Eval) ablationTagCapacityCells() []Cell {
	cells := e.mtCells([]DesignName{UniformShared}, e.commercial())
	for _, p := range e.commercial() {
		for _, f := range tagFactors {
			cells = append(cells, Cell{Key: tagKey(f, p), Run: func() { e.tagRun(f, p) }})
		}
	}
	return cells
}

// AblationTagCapacity compares 1x, 2x, and 4x tag-array capacity on
// the commercial workloads. The paper found doubling performs almost
// as well as quadrupling at a quarter of the capacity overhead
// (§2.2.2).
func (e *Eval) AblationTagCapacity() *stats.Table {
	t := stats.NewTable("Ablation: private tag capacity (speedup vs uniform-shared)",
		"Workload", "1x tags", "2x tags (paper)", "4x tags")
	for _, p := range e.commercial() {
		base := e.MT(UniformShared, p)
		row := []string{p.Name}
		for _, f := range tagFactors {
			row = append(row, stats.Rel(cmpsim.Speedup(e.tagRun(f, p), base)))
		}
		t.Row(row...)
	}
	return t
}

// AblationTagCapacity is the sequential wrapper used by tests and
// benchmarks.
func AblationTagCapacity(rc RunConfig) *stats.Table { return NewEval(rc).AblationTagCapacity() }

// TagCapacitySpeedups returns the speedups over uniform-shared for
// 1x/2x/4x tags on one commercial workload, for tests.
func TagCapacitySpeedups(rc RunConfig, p workload.Profile) [3]float64 {
	e := NewEval(rc)
	base := e.MT(UniformShared, p)
	var out [3]float64
	for i, f := range tagFactors {
		out[i] = cmpsim.Speedup(e.tagRun(f, p), base)
	}
	return out
}

// --- CR replication trigger (§3.1) ---

var replicationPolicies = []core.ReplicationPolicy{
	core.ReplicateFirstUse, core.ReplicateSecondUse, core.ReplicateNever,
}

func replicationKey(pol core.ReplicationPolicy, p workload.Profile) string {
	return fmt.Sprintf("abl/replication/%d/%s", pol, p.Name)
}

func (e *Eval) replicationRun(pol core.ReplicationPolicy, p workload.Profile) cmpsim.Results {
	return e.variantMT(replicationKey(pol, p), p,
		func(c *core.Config) { c.Replication = pol })
}

func (e *Eval) ablationReplicationCells() []Cell {
	cells := e.mtCells([]DesignName{UniformShared}, e.commercial())
	for _, p := range e.commercial() {
		for _, pol := range replicationPolicies {
			cells = append(cells, Cell{Key: replicationKey(pol, p), Run: func() { e.replicationRun(pol, p) }})
		}
	}
	return cells
}

// AblationReplicationTrigger compares replicating on first use, second
// use (CR), and never, on the commercial workloads (§3.1: not copying
// on the first use saves capacity for the ~40% of blocks never
// reused; copying on the second avoids slow repeat accesses).
func (e *Eval) AblationReplicationTrigger() *stats.Table {
	t := stats.NewTable("Ablation: CR replication trigger (speedup vs uniform-shared)",
		"Workload", "first use", "second use (CR)", "never")
	for _, p := range e.commercial() {
		base := e.MT(UniformShared, p)
		row := []string{p.Name}
		for _, pol := range replicationPolicies {
			row = append(row, stats.Rel(cmpsim.Speedup(e.replicationRun(pol, p), base)))
		}
		t.Row(row...)
	}
	return t
}

// AblationReplicationTrigger is the sequential wrapper used by tests
// and benchmarks.
func AblationReplicationTrigger(rc RunConfig) *stats.Table {
	return NewEval(rc).AblationReplicationTrigger()
}

// --- stuck-C-copy migration extension (§3.2 future work) ---

var cMigrationThresholds = []int{0, 4, 16}

func cMigrationKey(threshold int, p workload.Profile) string {
	return fmt.Sprintf("abl/cmigration/%d/%s", threshold, p.Name)
}

func (e *Eval) cMigrationRun(threshold int, p workload.Profile) cmpsim.Results {
	return e.variantMT(cMigrationKey(threshold, p), p,
		func(c *core.Config) { c.CMigrationThreshold = threshold })
}

func (e *Eval) ablationCMigrationCells() []Cell {
	cells := e.mtCells([]DesignName{UniformShared}, e.commercial())
	for _, p := range e.commercial() {
		for _, th := range cMigrationThresholds {
			cells = append(cells, Cell{Key: cMigrationKey(th, p), Run: func() { e.cMigrationRun(th, p) }})
		}
	}
	return cells
}

// AblationCMigration evaluates the stuck-C-copy migration extension
// (the paper's §3.2 future-work item) on the commercial workloads:
// threshold 0 is the published design; small thresholds let a copy
// abandoned by its host migrate to the reader still using it.
func (e *Eval) AblationCMigration() *stats.Table {
	t := stats.NewTable("Extension: stuck-C-copy migration (speedup vs uniform-shared)",
		"Workload", "off (paper)", "threshold 4", "threshold 16")
	for _, p := range e.commercial() {
		base := e.MT(UniformShared, p)
		row := []string{p.Name}
		for _, th := range cMigrationThresholds {
			row = append(row, stats.Rel(cmpsim.Speedup(e.cMigrationRun(th, p), base)))
		}
		t.Row(row...)
	}
	return t
}

// AblationCMigration is the sequential wrapper used by tests and
// benchmarks.
func AblationCMigration(rc RunConfig) *stats.Table { return NewEval(rc).AblationCMigration() }

// --- invalidate vs update vs ISC (§3.2) ---

var updateProtocolDesigns = []DesignName{Private, PrivateUpdate, NuRAPID}

func (e *Eval) ablationUpdateCells() []Cell {
	return e.mtCells(withBaseline(updateProtocolDesigns), e.commercial())
}

// AblationUpdateProtocol pits in-situ communication against the
// update-protocol alternative §3.2 dismisses: both avoid coherence
// misses on read-write sharing, but the update protocol pays a bus
// broadcast per shared write and keeps a copy per sharer, while ISC
// keeps one copy and posts invalidations only for L1 freshness.
func (e *Eval) AblationUpdateProtocol() *stats.Table {
	t := stats.NewTable("Extension: invalidate vs update vs ISC (speedup vs uniform-shared)",
		"Workload", "private (invalidate)", "private-update", "CMP-NuRAPID (ISC)")
	for _, p := range e.commercial() {
		base := e.MT(UniformShared, p)
		row := []string{p.Name}
		for _, d := range updateProtocolDesigns {
			row = append(row, stats.Rel(cmpsim.Speedup(e.MT(d, p), base)))
		}
		t.Row(row...)
	}
	return t
}

// AblationUpdateProtocol is the sequential wrapper used by tests and
// benchmarks.
func AblationUpdateProtocol(rc RunConfig) *stats.Table { return NewEval(rc).AblationUpdateProtocol() }

// UpdateProtocolSpeedups returns (invalidate, update, isc) speedups on
// one workload, for tests.
func UpdateProtocolSpeedups(rc RunConfig, p workload.Profile) (inv, upd, isc float64) {
	base := RunProfile(UniformShared, p, rc)
	return cmpsim.Speedup(RunProfile(Private, p, rc), base),
		cmpsim.Speedup(RunProfile(PrivateUpdate, p, rc), base),
		cmpsim.Speedup(RunProfile(NuRAPID, p, rc), base)
}

// --- CR x ISC optimization matrix (§5.1.2) ---

// optVariants crosses the replication trigger with ISC: Figure 8's
// one-at-a-time runs, completed to the full 2x2 matrix.
var optVariants = []struct {
	repl core.ReplicationPolicy
	isc  bool
}{
	{core.ReplicateFirstUse, false},
	{core.ReplicateSecondUse, false},
	{core.ReplicateFirstUse, true},
	{core.ReplicateSecondUse, true},
}

func optKey(v int, p workload.Profile) string {
	return fmt.Sprintf("abl/opt/%d-%t/%s", optVariants[v].repl, optVariants[v].isc, p.Name)
}

func (e *Eval) optRun(v int, p workload.Profile) cmpsim.Results {
	return e.variantMT(optKey(v, p), p, func(c *core.Config) {
		c.Replication = optVariants[v].repl
		c.EnableISC = optVariants[v].isc
	})
}

func (e *Eval) ablationOptimizationsCells() []Cell {
	cells := e.mtCells([]DesignName{UniformShared}, e.commercial())
	for _, p := range e.commercial() {
		for v := range optVariants {
			cells = append(cells, Cell{Key: optKey(v, p), Run: func() { e.optRun(v, p) }})
		}
	}
	return cells
}

// AblationOptimizations crosses CR and ISC on the commercial workloads
// (Figure 8's one-at-a-time runs, completed to the full 2x2 matrix).
func (e *Eval) AblationOptimizations() *stats.Table {
	t := stats.NewTable("Ablation: CR x ISC (speedup vs uniform-shared)",
		"Workload", "neither", "CR only", "ISC only", "both")
	for _, p := range e.commercial() {
		base := e.MT(UniformShared, p)
		row := []string{p.Name}
		for v := range optVariants {
			row = append(row, stats.Rel(cmpsim.Speedup(e.optRun(v, p), base)))
		}
		t.Row(row...)
	}
	return t
}

// AblationOptimizations is the sequential wrapper used by tests and
// benchmarks.
func AblationOptimizations(rc RunConfig) *stats.Table { return NewEval(rc).AblationOptimizations() }
