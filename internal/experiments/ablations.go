package experiments

import (
	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/workload"
)

// This file regenerates the design-choice ablations DESIGN.md calls
// out: promotion policy (§3.3.1 prefers fastest in CMPs), tag-array
// capacity (§2.2.2 doubles instead of quadrupling), the CR replication
// trigger (§3.1 copies on the second use), and the CR/ISC optimization
// matrix (§5.1.2).

// runNuRAPIDVariant runs a workload on a CMP-NuRAPID with the config
// mutated by mut, returning the results.
func runNuRAPIDVariant(w cmpsim.Workload, rc RunConfig, mut func(*core.Config)) cmpsim.Results {
	cfg := core.DefaultConfig()
	mut(&cfg)
	sys := cmpsim.New(cmpsim.DefaultConfig(), core.New(cfg), w)
	sys.Warmup(rc.WarmupInstr)
	return sys.Run(rc.Instructions)
}

// AblationPromotion compares the fastest and next-fastest promotion
// policies (and no promotion) on the multiprogrammed mixes, where
// capacity stealing matters most. The paper found fastest more
// effective in CMPs because "one core's next-fastest d-group is
// another core's fastest" (§3.3.1).
func AblationPromotion(rc RunConfig) *stats.Table {
	t := stats.NewTable("Ablation: CS promotion policy (weighted speedup vs no promotion)",
		"Workload", "fastest", "next-fastest")
	policies := []core.PromotionPolicy{core.Fastest, core.NextFastest}
	for i, mixName := range []string{"MIX1", "MIX2", "MIX3", "MIX4"} {
		base := runNuRAPIDVariant(workload.Mixes(rc.Seed)[i], rc,
			func(c *core.Config) { c.Promotion = core.NoPromotion })
		row := []string{mixName}
		for _, p := range policies {
			r := runNuRAPIDVariant(workload.Mixes(rc.Seed)[i], rc,
				func(c *core.Config) { c.Promotion = p })
			row = append(row, stats.Rel(cmpsim.Speedup(r, base)))
		}
		t.Row(row...)
	}
	return t
}

// PromotionSpeedups returns (fastest, nextFastest) weighted speedups
// over no-promotion for one mix, for tests.
func PromotionSpeedups(rc RunConfig, mixIdx int) (fastest, nextFastest float64) {
	base := runNuRAPIDVariant(workload.Mixes(rc.Seed)[mixIdx], rc,
		func(c *core.Config) { c.Promotion = core.NoPromotion })
	f := runNuRAPIDVariant(workload.Mixes(rc.Seed)[mixIdx], rc,
		func(c *core.Config) { c.Promotion = core.Fastest })
	n := runNuRAPIDVariant(workload.Mixes(rc.Seed)[mixIdx], rc,
		func(c *core.Config) { c.Promotion = core.NextFastest })
	return cmpsim.Speedup(f, base), cmpsim.Speedup(n, base)
}

// AblationTagCapacity compares 1x, 2x, and 4x tag-array capacity on
// the commercial workloads. The paper found doubling performs almost
// as well as quadrupling at a quarter of the capacity overhead
// (§2.2.2).
func AblationTagCapacity(rc RunConfig) *stats.Table {
	t := stats.NewTable("Ablation: private tag capacity (speedup vs uniform-shared)",
		"Workload", "1x tags", "2x tags (paper)", "4x tags")
	factors := []int{1, 2, 4}
	for _, p := range workload.Commercial(rc.Seed) {
		base := RunProfile(UniformShared, p, rc)
		row := []string{p.Name}
		for _, f := range factors {
			fac := f
			pp := p
			pp.Seed = rc.Seed
			r := runNuRAPIDVariant(workload.New(pp), rc, func(c *core.Config) {
				c.TagSets = c.TagSets * fac / 2 // default is the 2x config
			})
			row = append(row, stats.Rel(cmpsim.Speedup(r, base)))
		}
		t.Row(row...)
	}
	return t
}

// TagCapacitySpeedups returns the speedups over uniform-shared for
// 1x/2x/4x tags on one commercial workload, for tests.
func TagCapacitySpeedups(rc RunConfig, p workload.Profile) [3]float64 {
	base := RunProfile(UniformShared, p, rc)
	var out [3]float64
	for i, f := range []int{1, 2, 4} {
		fac := f
		pp := p
		pp.Seed = rc.Seed
		r := runNuRAPIDVariant(workload.New(pp), rc, func(c *core.Config) {
			c.TagSets = c.TagSets * fac / 2
		})
		out[i] = cmpsim.Speedup(r, base)
	}
	return out
}

// AblationReplicationTrigger compares replicating on first use, second
// use (CR), and never, on the commercial workloads (§3.1: not copying
// on the first use saves capacity for the ~40% of blocks never
// reused; copying on the second avoids slow repeat accesses).
func AblationReplicationTrigger(rc RunConfig) *stats.Table {
	t := stats.NewTable("Ablation: CR replication trigger (speedup vs uniform-shared)",
		"Workload", "first use", "second use (CR)", "never")
	pols := []core.ReplicationPolicy{
		core.ReplicateFirstUse, core.ReplicateSecondUse, core.ReplicateNever,
	}
	for _, p := range workload.Commercial(rc.Seed) {
		base := RunProfile(UniformShared, p, rc)
		row := []string{p.Name}
		for _, pol := range pols {
			pol := pol
			pp := p
			pp.Seed = rc.Seed
			r := runNuRAPIDVariant(workload.New(pp), rc, func(c *core.Config) {
				c.Replication = pol
			})
			row = append(row, stats.Rel(cmpsim.Speedup(r, base)))
		}
		t.Row(row...)
	}
	return t
}

// AblationCMigration evaluates the stuck-C-copy migration extension
// (the paper's §3.2 future-work item) on the commercial workloads:
// threshold 0 is the published design; small thresholds let a copy
// abandoned by its host migrate to the reader still using it.
func AblationCMigration(rc RunConfig) *stats.Table {
	t := stats.NewTable("Extension: stuck-C-copy migration (speedup vs uniform-shared)",
		"Workload", "off (paper)", "threshold 4", "threshold 16")
	for _, p := range workload.Commercial(rc.Seed) {
		base := RunProfile(UniformShared, p, rc)
		row := []string{p.Name}
		for _, th := range []int{0, 4, 16} {
			th := th
			pp := p
			pp.Seed = rc.Seed
			r := runNuRAPIDVariant(workload.New(pp), rc, func(c *core.Config) {
				c.CMigrationThreshold = th
			})
			row = append(row, stats.Rel(cmpsim.Speedup(r, base)))
		}
		t.Row(row...)
	}
	return t
}

// AblationUpdateProtocol pits in-situ communication against the
// update-protocol alternative §3.2 dismisses: both avoid coherence
// misses on read-write sharing, but the update protocol pays a bus
// broadcast per shared write and keeps a copy per sharer, while ISC
// keeps one copy and posts invalidations only for L1 freshness.
func AblationUpdateProtocol(rc RunConfig) *stats.Table {
	t := stats.NewTable("Extension: invalidate vs update vs ISC (speedup vs uniform-shared)",
		"Workload", "private (invalidate)", "private-update", "CMP-NuRAPID (ISC)")
	for _, p := range workload.Commercial(rc.Seed) {
		base := RunProfile(UniformShared, p, rc)
		row := []string{p.Name}
		for _, d := range []DesignName{Private, PrivateUpdate, NuRAPID} {
			r := RunProfile(d, p, rc)
			row = append(row, stats.Rel(cmpsim.Speedup(r, base)))
		}
		t.Row(row...)
	}
	return t
}

// UpdateProtocolSpeedups returns (invalidate, update, isc) speedups on
// one workload, for tests.
func UpdateProtocolSpeedups(rc RunConfig, p workload.Profile) (inv, upd, isc float64) {
	base := RunProfile(UniformShared, p, rc)
	return cmpsim.Speedup(RunProfile(Private, p, rc), base),
		cmpsim.Speedup(RunProfile(PrivateUpdate, p, rc), base),
		cmpsim.Speedup(RunProfile(NuRAPID, p, rc), base)
}

// AblationOptimizations crosses CR and ISC on the commercial workloads
// (Figure 8's one-at-a-time runs, completed to the full 2x2 matrix).
func AblationOptimizations(rc RunConfig) *stats.Table {
	t := stats.NewTable("Ablation: CR x ISC (speedup vs uniform-shared)",
		"Workload", "neither", "CR only", "ISC only", "both")
	type variant struct {
		repl core.ReplicationPolicy
		isc  bool
	}
	variants := []variant{
		{core.ReplicateFirstUse, false},
		{core.ReplicateSecondUse, false},
		{core.ReplicateFirstUse, true},
		{core.ReplicateSecondUse, true},
	}
	for _, p := range workload.Commercial(rc.Seed) {
		base := RunProfile(UniformShared, p, rc)
		row := []string{p.Name}
		for _, v := range variants {
			v := v
			pp := p
			pp.Seed = rc.Seed
			r := runNuRAPIDVariant(workload.New(pp), rc, func(c *core.Config) {
				c.Replication = v.repl
				c.EnableISC = v.isc
			})
			row = append(row, stats.Rel(cmpsim.Speedup(r, base)))
		}
		t.Row(row...)
	}
	return t
}
