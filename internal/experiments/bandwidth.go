package experiments

import (
	"fmt"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/l2"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/workload"
)

// BandwidthReport quantifies the traffic claims the paper makes
// without a figure:
//
//   - §3.3.2: "the demotions are not frequent enough to cause a
//     bandwidth problem in the tag arrays or data d-groups" — reported
//     as demotions per 1 000 retired instructions.
//   - §3.2: "write through for C blocks is not likely to cause
//     bandwidth problems" — reported as write-throughs and posted
//     BusUpg invalidations per 1 000 instructions.
//   - Bus health overall: transactions per 1 000 instructions and
//     cumulative arbitration wait.
func BandwidthReport(rc RunConfig) *stats.Table {
	t := stats.NewTable("Bandwidth: bus and d-group traffic per 1000 instructions",
		"Workload", "Design", "Bus txns", "Bus wait cyc", "Demotions", "Promotions", "Write-throughs")

	type run struct {
		name string
		mk   func() cmpsim.Workload
	}
	runs := []run{
		// OLTP exercises the write-through/BusUpg claim; MIX1 (non-
		// uniform demand) exercises the demotion-bandwidth claim.
		{"oltp", func() cmpsim.Workload { return workload.New(workload.OLTP(rc.Seed)) }},
		{"MIX1", func() cmpsim.Workload { return workload.Mixes(rc.Seed)[0] }},
	}
	for _, rn := range runs {
		for _, d := range []DesignName{Private, NuRAPID} {
			sys := cmpsim.New(cmpsim.DefaultConfig(), NewDesign(d), rn.mk())
			sys.Warmup(rc.WarmupInstr)
			r := sys.Run(rc.Instructions)

			per1k := func(n uint64) string {
				return fmt.Sprintf("%.2f", 1000*float64(n)/float64(r.Instructions))
			}
			var busTx, busWait uint64
			switch l2d := sys.L2().(type) {
			case *core.Cache:
				busTx, busWait = l2d.Bus().TotalTransactions(), l2d.Bus().WaitCycles()
			case *l2.Private:
				busTx, busWait = l2d.Bus().TotalTransactions(), l2d.Bus().WaitCycles()
			}
			var wt uint64
			for _, c := range r.Cores {
				wt += c.Writethroughs
			}
			s := r.L2
			t.Row(rn.name, string(d), per1k(busTx), fmt.Sprint(busWait),
				per1k(s.Demotions), per1k(s.Promotions), per1k(wt))
		}
	}
	return t
}

// DemotionsPer1K returns CMP-NuRAPID's demotion rate on a workload,
// for the §3.3.2 bandwidth-claim test.
func DemotionsPer1K(rc RunConfig, w cmpsim.Workload) float64 {
	sys := cmpsim.New(cmpsim.DefaultConfig(), NewDesign(NuRAPID), w)
	sys.Warmup(rc.WarmupInstr)
	r := sys.Run(rc.Instructions)
	return 1000 * float64(r.L2.Demotions) / float64(r.Instructions)
}

// DNUCAComparison extends Figure 6 with the CMP-DNUCA baseline [6]
// whose negative result the paper cites.
func DNUCAComparison(rc RunConfig) *stats.Table {
	t := stats.NewTable("Extension: CMP-DNUCA vs CMP-SNUCA vs CMP-NuRAPID (speedup vs uniform-shared)",
		"Workload", "SNUCA (static)", "DNUCA (migration)", "CMP-NuRAPID")
	for _, p := range workload.Commercial(rc.Seed) {
		base := RunProfile(UniformShared, p, rc)
		row := []string{p.Name}
		for _, d := range []DesignName{NonUniform, DNUCA, NuRAPID} {
			r := RunProfile(d, p, rc)
			row = append(row, stats.Rel(cmpsim.Speedup(r, base)))
		}
		t.Row(row...)
	}
	return t
}
