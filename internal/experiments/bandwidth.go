package experiments

import (
	"fmt"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/l2"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/workload"
)

// bandwidthWorkloads names the two traffic cases the report measures:
// OLTP exercises the write-through/BusUpg claim; MIX1 (non-uniform
// demand) exercises the demotion-bandwidth claim.
var bandwidthWorkloads = []string{"oltp", "MIX1"}

// bandwidthDesigns are the designs whose bus traffic is compared.
var bandwidthDesigns = []DesignName{Private, NuRAPID}

// busRun carries one bandwidth measurement: the simulation results
// plus the bus counters read from the live system (Results alone does
// not expose them).
type busRun struct {
	results cmpsim.Results
	busTx   uint64
	busWait memsys.Cycles
}

func bandwidthKey(wname string, d DesignName) string { return "bw/" + wname + "/" + string(d) }

// bandwidthRun memoizes one (workload, design) traffic measurement.
func (e *Eval) bandwidthRun(wname string, d DesignName) busRun {
	return e.memo(bandwidthKey(wname, d), func() any {
		var w cmpsim.Workload
		switch wname {
		case "oltp":
			w = workload.New(workload.OLTP(e.RC.Seed))
		case "MIX1":
			w = workload.Mixes(e.RC.Seed)[0]
		default:
			panic(fmt.Sprintf("experiments: unknown bandwidth workload %q", wname))
		}
		sys := cmpsim.New(cmpsim.DefaultConfig(), NewDesign(d), w)
		sys.Warmup(e.RC.WarmupInstr)
		br := busRun{results: sys.Run(e.RC.Instructions)}
		switch l2d := sys.L2().(type) {
		case *core.Cache:
			br.busTx, br.busWait = l2d.Bus().TotalTransactions(), l2d.Bus().WaitCycles()
		case *l2.Private:
			br.busTx, br.busWait = l2d.Bus().TotalTransactions(), l2d.Bus().WaitCycles()
		}
		return br
	}).(busRun)
}

func (e *Eval) bandwidthCells() []Cell {
	var cells []Cell
	for _, wname := range bandwidthWorkloads {
		for _, d := range bandwidthDesigns {
			cells = append(cells, Cell{Key: bandwidthKey(wname, d), Run: func() { e.bandwidthRun(wname, d) }})
		}
	}
	return cells
}

// BandwidthReport quantifies the traffic claims the paper makes
// without a figure:
//
//   - §3.3.2: "the demotions are not frequent enough to cause a
//     bandwidth problem in the tag arrays or data d-groups" — reported
//     as demotions per 1 000 retired instructions.
//   - §3.2: "write through for C blocks is not likely to cause
//     bandwidth problems" — reported as write-throughs and posted
//     BusUpg invalidations per 1 000 instructions.
//   - Bus health overall: transactions per 1 000 instructions and
//     cumulative arbitration wait.
func (e *Eval) BandwidthReport() *stats.Table {
	t := stats.NewTable("Bandwidth: bus and d-group traffic per 1000 instructions",
		"Workload", "Design", "Bus txns", "Bus wait cyc", "Demotions", "Promotions", "Write-throughs")
	for _, wname := range bandwidthWorkloads {
		for _, d := range bandwidthDesigns {
			br := e.bandwidthRun(wname, d)
			r := br.results
			per1k := func(n uint64) string {
				return fmt.Sprintf("%.2f", 1000*float64(n)/float64(r.Instructions))
			}
			var wt uint64
			for _, c := range r.Cores {
				wt += c.Writethroughs
			}
			s := r.L2
			t.Row(wname, string(d), per1k(br.busTx), fmt.Sprint(br.busWait),
				per1k(s.Demotions), per1k(s.Promotions), per1k(wt))
		}
	}
	return t
}

// BandwidthReport is the sequential wrapper used by tests.
func BandwidthReport(rc RunConfig) *stats.Table { return NewEval(rc).BandwidthReport() }

// DemotionsPer1K returns CMP-NuRAPID's demotion rate on a workload,
// for the §3.3.2 bandwidth-claim test.
func DemotionsPer1K(rc RunConfig, w cmpsim.Workload) float64 {
	sys := cmpsim.New(cmpsim.DefaultConfig(), NewDesign(NuRAPID), w)
	sys.Warmup(rc.WarmupInstr)
	r := sys.Run(rc.Instructions)
	return 1000 * float64(r.L2.Demotions) / float64(r.Instructions)
}

// dnucaDesigns extends Figure 6's series with the CMP-DNUCA baseline.
var dnucaDesigns = []DesignName{NonUniform, DNUCA, NuRAPID}

func (e *Eval) dnucaCells() []Cell {
	return e.mtCells(withBaseline(dnucaDesigns), e.commercial())
}

// DNUCAComparison extends Figure 6 with the CMP-DNUCA baseline [6]
// whose negative result the paper cites.
func (e *Eval) DNUCAComparison() *stats.Table {
	t := stats.NewTable("Extension: CMP-DNUCA vs CMP-SNUCA vs CMP-NuRAPID (speedup vs uniform-shared)",
		"Workload", "SNUCA (static)", "DNUCA (migration)", "CMP-NuRAPID")
	for _, p := range e.commercial() {
		base := e.MT(UniformShared, p)
		row := []string{p.Name}
		for _, d := range dnucaDesigns {
			row = append(row, stats.Rel(cmpsim.Speedup(e.MT(d, p), base)))
		}
		t.Row(row...)
	}
	return t
}

// DNUCAComparison is the sequential wrapper used by tests.
func DNUCAComparison(rc RunConfig) *stats.Table { return NewEval(rc).DNUCAComparison() }
