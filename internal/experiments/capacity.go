package experiments

import (
	"fmt"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/topo"
	"cmpnurapid/internal/workload"
)

// capacityMixIdx selects MIX3 (mcf vs small apps), the mix whose
// non-uniform demand makes capacity stealing most visible.
const capacityMixIdx = 2

func capacityKey(mixIdx int) string { return fmt.Sprintf("cap/%d", mixIdx) }

// capacityCell declares the report's single simulation. The whole
// rendered table is the memo value: the report reads structural state
// (tag and frame occupancy) off the live cache, so the run and its
// rendering are one unit.
func (e *Eval) capacityCell(mixIdx int) Cell {
	return Cell{Key: capacityKey(mixIdx), Run: func() { e.CapacityReport(mixIdx) }}
}

// CapacityReport makes capacity stealing visible structurally: for a
// multiprogrammed mix on CMP-NuRAPID, it reports each core's tag
// occupancy (how many blocks it can reach), each d-group's frame
// occupancy, and how many of each core's blocks ended up in each
// d-group — the "cores with more capacity demand demote their
// less-frequently-used data to unused frames in the d-groups closer to
// the cores with less capacity demands" of §3.3.
func (e *Eval) CapacityReport(mixIdx int) *stats.Table {
	return e.memo(capacityKey(mixIdx), func() any {
		return capacityTable(e.RC, mixIdx)
	}).(*stats.Table)
}

// CapacityReport is the sequential wrapper used by tests.
func CapacityReport(rc RunConfig, mixIdx int) *stats.Table {
	return capacityTable(rc, mixIdx)
}

func capacityTable(rc RunConfig, mixIdx int) *stats.Table {
	m := workload.Mixes(rc.Seed)[mixIdx]
	apps := m.Apps()
	nu := core.New(core.DefaultConfig())
	sys := cmpsim.New(cmpsim.DefaultConfig(), nu, m)
	sys.Warmup(rc.WarmupInstr)
	sys.Run(rc.Instructions)

	t := stats.NewTable(
		fmt.Sprintf("Capacity allocation on %s (CMP-NuRAPID)", m.Name()),
		"Core (app)", "Tag entries used", "Blocks in own d-group", "Blocks stolen elsewhere")
	own, stolen := nu.OwnershipByDGroup()
	tags := nu.TagOccupancy()
	for c := 0; c < topo.NumCores; c++ {
		t.Row(fmt.Sprintf("P%d (%s)", c, apps[c].Name),
			fmt.Sprint(tags[c]), fmt.Sprint(own[c]), fmt.Sprint(stolen[c]))
	}
	occ := nu.Occupancy()
	t.Row("d-group frames used", fmt.Sprintf("a=%d b=%d c=%d d=%d", occ[0], occ[1], occ[2], occ[3]), "", "")
	return t
}
