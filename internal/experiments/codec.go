package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/stats"
)

// Cell-result codec (docs/ROBUSTNESS.md). When a cell executes in an
// isolated worker subprocess, the worker's only durable effect is the
// set of Eval cache entries its run filled. ExportPayload serializes
// that set — typed, losslessly, in sorted key order — into the payload
// the farm protocol ships back to the coordinator and the result store
// writes to disk; ImportPayload installs a payload into this
// evaluation so rendering reads it exactly as if the cell had run
// in-process. Every counter is an integer and Go's float64 JSON
// encoding round-trips exactly, so the imported values render
// byte-identically — the property the farm's golden-diff gates pin.

// ExportedEntry is one serialized cache fill.
type ExportedEntry struct {
	// Path names the chain of sub-evaluation namespace keys
	// ("eval/seed/<n>") from the root evaluation to the cache that
	// holds the entry; empty for the root's own cache.
	Path []string `json:"path,omitempty"`
	// Key is the memo key within that cache.
	Key string `json:"key"`
	// Kind selects the decoder: "results", "busrun", or "table".
	Kind string `json:"kind"`
	// Data is the kind-specific JSON encoding of the value.
	Data json.RawMessage `json:"data"`
}

// Entry kinds.
const (
	kindResults = "results"
	kindBusRun  = "busrun"
	kindTable   = "table"
)

// subEvalPrefix namespaces the memo entries that hold child
// evaluations (seed-sensitivity sweeps run the same cells at shifted
// seeds; see subEval).
const subEvalPrefix = "eval/seed/"

// busRunJSON is busRun's wire shape (its fields are unexported).
type busRunJSON struct {
	Results cmpsim.Results `json:"results"`
	BusTx   uint64         `json:"busTx"`
	BusWait memsys.Cycles  `json:"busWait"`
}

// ExportPayload serializes every completed cache entry of this
// evaluation (and its sub-evaluations) into a payload. It is called in
// a worker subprocess after its single cell has completed, where the
// evaluation is fresh and single-threaded: the cache holds exactly the
// entries that cell filled. A value of a type the codec does not know
// is an error — a future cell kind must be taught to the codec before
// it can run isolated, not silently dropped.
func (e *Eval) ExportPayload() ([]byte, error) {
	entries, err := e.exportEntries(nil)
	if err != nil {
		return nil, err
	}
	return json.Marshal(entries)
}

// exportEntries walks one evaluation's cache in sorted key order,
// recursing into sub-evaluations with an extended path.
func (e *Eval) exportEntries(path []string) ([]ExportedEntry, error) {
	e.mu.Lock()
	keys := make([]string, 0, len(e.cache))
	for k := range e.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ents := make([]*cacheEntry, len(keys))
	for i, k := range keys {
		ents[i] = e.cache[k]
	}
	e.mu.Unlock()

	var out []ExportedEntry
	for i, key := range keys {
		ent := ents[i]
		if ent.pv != nil {
			// A poisoned entry has no value to ship; the worker reports
			// the failure through the protocol's failure field instead.
			continue
		}
		switch v := ent.val.(type) {
		case cmpsim.Results:
			data, err := json.Marshal(v)
			if err != nil {
				return nil, fmt.Errorf("experiments: encoding %q: %w", key, err)
			}
			out = append(out, ExportedEntry{Path: path, Key: key, Kind: kindResults, Data: data})
		case busRun:
			data, err := json.Marshal(busRunJSON{Results: v.results, BusTx: v.busTx, BusWait: v.busWait})
			if err != nil {
				return nil, fmt.Errorf("experiments: encoding %q: %w", key, err)
			}
			out = append(out, ExportedEntry{Path: path, Key: key, Kind: kindBusRun, Data: data})
		case *stats.Table:
			data, err := json.Marshal(v)
			if err != nil {
				return nil, fmt.Errorf("experiments: encoding %q: %w", key, err)
			}
			out = append(out, ExportedEntry{Path: path, Key: key, Kind: kindTable, Data: data})
		case *Eval:
			sub, err := v.exportEntries(append(append([]string(nil), path...), key))
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		default:
			return nil, fmt.Errorf("experiments: cell value %q has unserializable type %T (teach codec.go about it before isolating this cell)", key, ent.val)
		}
	}
	return out, nil
}

// ImportPayload decodes a payload produced by ExportPayload and
// installs its entries into this evaluation's caches. Entries that
// already exist are left untouched (two overlapping cells may both
// export a shared entry; determinism makes the values identical), so
// importing is idempotent and safe against concurrent fills.
func (e *Eval) ImportPayload(payload []byte) error {
	var entries []ExportedEntry
	if err := json.Unmarshal(payload, &entries); err != nil {
		return fmt.Errorf("experiments: decoding payload: %w", err)
	}
	for _, ent := range entries {
		target := e
		for _, ns := range ent.Path {
			sub, err := target.subEvalByKey(ns)
			if err != nil {
				return err
			}
			target = sub
		}
		var val any
		switch ent.Kind {
		case kindResults:
			var r cmpsim.Results
			if err := json.Unmarshal(ent.Data, &r); err != nil {
				return fmt.Errorf("experiments: decoding %q: %w", ent.Key, err)
			}
			val = r
		case kindBusRun:
			var w busRunJSON
			if err := json.Unmarshal(ent.Data, &w); err != nil {
				return fmt.Errorf("experiments: decoding %q: %w", ent.Key, err)
			}
			val = busRun{results: w.Results, busTx: w.BusTx, busWait: w.BusWait}
		case kindTable:
			t := &stats.Table{}
			if err := json.Unmarshal(ent.Data, t); err != nil {
				return fmt.Errorf("experiments: decoding %q: %w", ent.Key, err)
			}
			val = t
		default:
			return fmt.Errorf("experiments: payload entry %q has unknown kind %q", ent.Key, ent.Kind)
		}
		target.install(ent.Key, val)
	}
	return nil
}

// subEvalByKey resolves a namespace key ("eval/seed/<n>") to the child
// evaluation it names, creating it if needed.
func (e *Eval) subEvalByKey(ns string) (*Eval, error) {
	seedStr, ok := strings.CutPrefix(ns, subEvalPrefix)
	if !ok {
		return nil, fmt.Errorf("experiments: payload path element %q is not a sub-evaluation key", ns)
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("experiments: payload path element %q: bad seed: %w", ns, err)
	}
	return e.subEval(seed), nil
}

// install fills the cache entry for key if it is not already filled.
func (e *Eval) install(key string, val any) {
	e.mu.Lock()
	ent, ok := e.cache[key]
	if !ok {
		ent = &cacheEntry{}
		e.cache[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() { ent.val = val })
}

// remoteFailure is the poison value for a cell that failed in a worker
// subprocess: rendering re-panics with the worker's diagnostic, so ERR
// lines and the failure report read identically to an in-process
// failure with the same root cause.
//
// panicmsg:diagnostic
type remoteFailure struct{ diagnostic string }

func (f remoteFailure) Error() string { return f.diagnostic }

// InstallFailure poisons the cache entry behind cellKey with a
// worker-side diagnostic, routing seed-namespaced plan keys
// ("seed/<n>/<key>") to the sub-evaluation whose cache the cell would
// have filled. Rendering an experiment that needs the entry then fails
// exactly like an in-process cell panic with the same diagnostic.
func (e *Eval) InstallFailure(cellKey, diagnostic, stack string) {
	target, key := e.resolveCellKey(cellKey)
	target.mu.Lock()
	ent, ok := target.cache[key]
	if !ok {
		ent = &cacheEntry{}
		target.cache[key] = ent
	}
	target.mu.Unlock()
	ent.once.Do(func() {
		ent.pv = remoteFailure{diagnostic: diagnostic}
		ent.stack = stack
	})
}

// resolveCellKey maps a plan cell key to the evaluation whose cache it
// fills and the memo key within it. Seed-sensitivity cells are
// namespaced "seed/<n>/<key>" in the plan but fill the seed-<n>
// sub-evaluation's cache under the bare key (seedSensitivityCells).
func (e *Eval) resolveCellKey(cellKey string) (*Eval, string) {
	rest, ok := strings.CutPrefix(cellKey, "seed/")
	if !ok {
		return e, cellKey
	}
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return e, cellKey
	}
	seed, err := strconv.ParseUint(rest[:slash], 10, 64)
	if err != nil {
		return e, cellKey
	}
	return e.subEval(seed), rest[slash+1:]
}

// Digest returns a short stable digest of everything in the run
// configuration that determines cell results. The farm's result store
// keys entries by (cell key, this digest, code version), so results
// from a different scale or seed can never be served to this run.
func (rc RunConfig) Digest() string {
	return fmt.Sprintf("w%d-i%d-s%d-mc%d",
		rc.WarmupInstr, rc.Instructions, rc.Seed, int64(rc.MaxCycles))
}
