package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// codecRC is a tiny scale: the codec tests care about lossless
// serialization, not simulation fidelity.
func codecRC() RunConfig {
	return RunConfig{WarmupInstr: 2_000, Instructions: 2_000, Seed: 42}
}

// TestExportImportRendersIdentically is the codec's core contract:
// run a mixed set of cells (plain results, a busRun, a whole-table
// memo) in one evaluation, ship the payload, import it into a fresh
// evaluation, and every experiment must render byte-identically from
// the imported cache — without running a single simulation.
func TestExportImportRendersIdentically(t *testing.T) {
	sel, err := Select("fig7,bandwidth,capacity")
	if err != nil {
		t.Fatal(err)
	}
	src := NewEval(codecRC())
	cells := Plan(sel, src)
	if fails := ExecuteCells(cells, 4, false, nil); len(fails) != 0 {
		t.Fatalf("cell failures: %v", fails)
	}
	payload, err := src.ExportPayload()
	if err != nil {
		t.Fatal(err)
	}

	dst := NewEval(codecRC())
	if err := dst.ImportPayload(payload); err != nil {
		t.Fatal(err)
	}
	for _, ex := range sel {
		want := ex.Table(src).String()
		got := ex.Table(dst).String()
		if got != want {
			t.Errorf("%s renders differently from imported cache:\n--- original ---\n%s\n--- imported ---\n%s",
				ex.Name, want, got)
		}
	}
}

// TestExportImportIsIdempotent: importing a payload into an evaluation
// that already holds some of its entries must leave them untouched.
func TestExportImportIsIdempotent(t *testing.T) {
	src := NewEval(codecRC())
	p := src.Profiles()[0]
	want := src.MT(Private, p)
	payload, err := src.ExportPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := src.ImportPayload(payload); err != nil {
		t.Fatal(err)
	}
	if got := src.MT(Private, p); !reflect.DeepEqual(got, want) {
		t.Error("re-importing over a filled cache changed the entry")
	}
}

// TestExportImportSubEval: a seed-sensitivity cell fills a child
// evaluation's cache; the payload must carry the namespace path and
// importing must land the entry in the right child.
func TestExportImportSubEval(t *testing.T) {
	src := NewEval(codecRC())
	sub := src.subEval(99)
	p := sub.Profiles()[0]
	want := sub.MT(UniformShared, p)
	payload, err := src.ExportPayload()
	if err != nil {
		t.Fatal(err)
	}
	dst := NewEval(codecRC())
	if err := dst.ImportPayload(payload); err != nil {
		t.Fatal(err)
	}
	if got := dst.subEval(99).MT(UniformShared, p); !reflect.DeepEqual(got, want) {
		t.Error("sub-evaluation entry did not survive the round trip")
	}
}

// TestInstallFailurePoisonsLikeAPanic: a farm-side failure installed
// for a cell must make rendering fail with the worker's diagnostic,
// exactly like an in-process cell panic would.
func TestInstallFailurePoisonsLikeAPanic(t *testing.T) {
	e := NewEval(codecRC())
	p := e.Profiles()[0]
	key := mtKey(Private, p)
	e.InstallFailure(key, "farm: worker crashed 3 times", "stack trace here")
	f := CapturePanic("render", func() { e.MT(Private, p) })
	if f == nil {
		t.Fatal("reading a poisoned entry did not fail")
	}
	if f.Diagnostic != "farm: worker crashed 3 times" {
		t.Errorf("diagnostic = %q, want the installed one", f.Diagnostic)
	}
	if f.Stack != "stack trace here" {
		t.Errorf("stack = %q, want the worker's", f.Stack)
	}
}

// TestResolveCellKeyRoutesSeedNamespace: seed-prefixed plan keys
// resolve to the sub-evaluation and bare key; everything else stays in
// the root evaluation under its full key.
func TestResolveCellKeyRoutesSeedNamespace(t *testing.T) {
	e := NewEval(codecRC())
	ev, key := e.resolveCellKey("seed/43/mt/private/oltp")
	if ev == e || key != "mt/private/oltp" {
		t.Errorf("seed-namespaced key resolved to (%p, %q)", ev, key)
	}
	if ev2, _ := e.resolveCellKey("seed/43/mt/x/y"); ev2 != ev {
		t.Error("same seed resolved to a different sub-evaluation")
	}
	// The evaluation's own seed namespaces to itself (subEval contract).
	if ev3, key3 := e.resolveCellKey("seed/42/mt/private/oltp"); ev3 != e || key3 != "mt/private/oltp" {
		t.Error("own-seed namespace did not resolve to the root evaluation")
	}
	for _, plain := range []string{"mt/private/oltp", "cap/2", "seed/x/bad", "seed/9"} {
		if ev4, key4 := e.resolveCellKey(plain); ev4 != e || key4 != plain {
			t.Errorf("plain key %q was rerouted to (%p, %q)", plain, ev4, key4)
		}
	}
}

// TestImportRejectsCorruptPayloads: malformed payloads error with a
// structured message instead of installing garbage.
func TestImportRejectsCorruptPayloads(t *testing.T) {
	e := NewEval(codecRC())
	for _, tc := range []struct{ name, payload, wantErr string }{
		{"not json", `{{{`, "decoding payload"},
		{"unknown kind", `[{"key":"k","kind":"mystery","data":"{}"}]`, "unknown kind"},
		{"bad path", `[{"path":["bogus/ns"],"key":"k","kind":"table","data":"{}"}]`, "not a sub-evaluation"},
		{"bad seed", `[{"path":["eval/seed/xyz"],"key":"k","kind":"table","data":"{}"}]`, "bad seed"},
		{"bad data", `[{"key":"k","kind":"results","data":"not-results"}]`, "decoding"},
	} {
		err := e.ImportPayload([]byte(tc.payload))
		if err == nil {
			t.Errorf("%s: imported without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestRunConfigDigestSeparatesScales: any field that changes results
// must change the digest, and equal configs must agree.
func TestRunConfigDigestSeparatesScales(t *testing.T) {
	base := codecRC()
	if base.Digest() != codecRC().Digest() {
		t.Error("equal configs digest differently")
	}
	seen := map[string]string{base.Digest(): "base"}
	for name, rc := range map[string]RunConfig{
		"warmup":    {WarmupInstr: 3_000, Instructions: 2_000, Seed: 42},
		"instr":     {WarmupInstr: 2_000, Instructions: 3_000, Seed: 42},
		"seed":      {WarmupInstr: 2_000, Instructions: 2_000, Seed: 43},
		"maxcycles": {WarmupInstr: 2_000, Instructions: 2_000, Seed: 42, MaxCycles: 5},
	} {
		d := rc.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("%s collides with %s: %s", name, prev, d)
		}
		seen[d] = name
	}
}
