package experiments

import (
	"reflect"
	"testing"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/workload"
)

// TestDeterminismDeepEqual is the runtime counterpart of the simlint
// determinism rule: the full cmpsim pipeline run twice with the same
// seed on a multiprogrammed mix must be bit-identical — every per-core
// counter, distribution bucket and latency sum, not just the headline
// cycle count. Any wall-clock, environment or map-iteration dependence
// anywhere in the simulated path shows up here as a diff.
func TestDeterminismDeepEqual(t *testing.T) {
	rc := RunConfig{WarmupInstr: 80_000, Instructions: 80_000, Seed: 11}
	run := func() cmpsim.Results {
		// Fresh workload per run: the mix generators are stateful
		// reference streams.
		return Run(NuRAPID, workload.Mixes(rc.Seed)[0], rc)
	}
	a, b := run(), run()
	if a.Cycles == 0 || a.Instructions == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\nrun 1: %+v\nrun 2: %+v", a, b)
		if !reflect.DeepEqual(a.L2, b.L2) {
			t.Errorf("L2 stats diverge:\nrun 1: %+v\nrun 2: %+v", *a.L2, *b.L2)
		}
	}
}
