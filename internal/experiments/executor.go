package experiments

// The scheduler's execution strategy is pluggable (docs/PARALLEL.md,
// docs/ROBUSTNESS.md): the worker pool dispatches each planned cell to
// a CellExecutor, and the executor decides *where* the simulation
// runs. InProcess — the historical behaviour — runs the cell's Run
// closure in this process under CapturePanic. internal/farm's
// Supervisor runs it in an isolated worker subprocess and imports the
// serialized results back into the Eval cache, so a hard crash (OOM,
// SIGKILL, runtime fault) of one cell cannot take down the run.
// Either way the cell's cache entry ends up filled or poisoned, and
// rendering afterwards cannot tell the difference — the executor is
// unobservable in stdout.

// CellExecutor runs one planned cell to completion. Execute returns
// nil on success or the cell's failure; in both cases the evaluation's
// cache entry for the cell must be left filled (success) or poisoned
// (failure) so rendering behaves identically across executors.
// Execute is called concurrently from the scheduler's worker pool and
// must be safe for concurrent use.
type CellExecutor interface {
	Execute(c Cell) *CellFailure
}

// inProcess is the default executor: the cell runs on the calling
// goroutine, and a panic is recovered into a CellFailure (the memo
// cache poisons its own entry on the way out).
type inProcess struct{}

func (inProcess) Execute(c Cell) *CellFailure { return CapturePanic(c.Key, c.Run) }

// InProcess returns the in-process executor.
func InProcess() CellExecutor { return inProcess{} }
