// Package experiments regenerates every table and figure in the
// paper's evaluation (§5). Each FigureN/TableN function runs the
// required simulations and returns structured results plus a formatted
// text table whose rows mirror the paper's figure series. The cmd/
// experiments binary and the repository benchmarks drive these.
package experiments

import (
	"fmt"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/l2"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/topo"
	"cmpnurapid/internal/workload"
)

// RunConfig scales the simulations. The paper runs ~1 G instructions
// per core in Simics; the defaults here are sized so the full
// evaluation regenerates in minutes while distributions are stable.
type RunConfig struct {
	WarmupInstr  int    // per-core warm-up instructions before the measurement window
	Instructions uint64 // per-core instructions measured
	Seed         uint64
	// MaxCycles is the hard per-phase clock ceiling passed through to
	// cmpsim.Config.MaxCycles; 0 derives a ceiling from the instruction
	// budget (see docs/ROBUSTNESS.md).
	MaxCycles memsys.Cycles
}

// Validate panics unless the configuration can produce a meaningful
// measurement window. Binaries building a RunConfig from flags call
// this before starting a run (the simlint configvalidate rule enforces
// it); library paths use the checked Default/Quick constructors.
func (rc RunConfig) Validate() {
	if rc.WarmupInstr < 0 {
		panic("experiments: negative warm-up instruction count")
	}
	if rc.Instructions == 0 {
		panic("experiments: zero measured instructions")
	}
	if rc.MaxCycles < 0 {
		panic("experiments: negative MaxCycles (0 derives a ceiling from the instruction budget)")
	}
}

// DefaultRunConfig is the standard evaluation scale: the warm-up must
// touch the multi-megabyte footprints enough times that the
// measurement window reflects steady state rather than cold misses.
func DefaultRunConfig() RunConfig {
	return RunConfig{WarmupInstr: 5_000_000, Instructions: 3_000_000, Seed: 42}
}

// QuickRunConfig is a fast smoke-scale configuration for tests; its
// short warm-up leaves more cold misses in the window, so tests using
// it assert ordering rather than absolute fractions.
func QuickRunConfig() RunConfig {
	return RunConfig{WarmupInstr: 400_000, Instructions: 400_000, Seed: 42}
}

// DesignName identifies one evaluated cache organization.
type DesignName string

const (
	UniformShared DesignName = "uniform-shared"
	NonUniform    DesignName = "non-uniform-shared"
	Private       DesignName = "private"
	Ideal         DesignName = "ideal"
	NuRAPID       DesignName = "CMP-NuRAPID"
	NuRAPIDCR     DesignName = "CMP-NuRAPID-CR"  // CR only (Figure 8c)
	NuRAPIDISC    DesignName = "CMP-NuRAPID-ISC" // ISC only (Figure 8d)
	// PrivateUpdate is the update-protocol alternative §3.2 argues
	// against (extension baseline, not in the paper's figures).
	PrivateUpdate DesignName = "private-update"
	// DNUCA is CMP-DNUCA from [6], whose negative result the paper
	// cites: migration without replication loses to static SNUCA
	// (extension baseline, not in the paper's figures).
	DNUCA DesignName = "non-uniform-shared-dynamic"
)

// NewDesign constructs a fresh instance of the named design.
func NewDesign(d DesignName) memsys.L2 {
	switch d {
	case UniformShared:
		return l2.NewUniformShared()
	case NonUniform:
		return l2.NewSNUCA()
	case Private:
		return l2.NewPrivate()
	case Ideal:
		return l2.NewIdeal()
	case NuRAPID:
		return core.New(core.DefaultConfig())
	case NuRAPIDCR:
		cfg := core.DefaultConfig()
		cfg.EnableISC = false
		return core.New(cfg)
	case NuRAPIDISC:
		cfg := core.DefaultConfig()
		cfg.Replication = core.ReplicateFirstUse
		return core.New(cfg)
	case PrivateUpdate:
		return l2.NewPrivateUpdate()
	case DNUCA:
		return l2.NewDNUCA()
	}
	panic(fmt.Sprintf("experiments: unknown design %q", d))
}

// Run simulates one (design, workload) pair: build the system, warm it
// up, run the measurement window.
func Run(d DesignName, w cmpsim.Workload, rc RunConfig) cmpsim.Results {
	cfg := cmpsim.DefaultConfig()
	cfg.MaxCycles = rc.MaxCycles
	sys := cmpsim.New(cfg, NewDesign(d), w)
	sys.Warmup(rc.WarmupInstr)
	return sys.Run(rc.Instructions)
}

// RunProfile builds a fresh workload generator for p and runs it on d.
// Every design sees an identical per-core reference stream.
func RunProfile(d DesignName, p workload.Profile, rc RunConfig) cmpsim.Results {
	p.Seed = rc.Seed
	return Run(d, workload.New(p), rc)
}

// RunMix runs a Table 2 multiprogrammed mix on d.
func RunMix(d DesignName, apps [topo.NumCores]workload.App, name string, rc RunConfig) cmpsim.Results {
	return Run(d, workload.NewMix(name, apps, rc.Seed), rc)
}

// Table1 regenerates the paper's Table 1 (cache and bus latencies)
// from the cacti timing model and the floorplan.
func Table1() *stats.Table {
	l := topo.Derive()
	t := stats.NewTable("Table 1: 8 MB Cache and Bus Latencies (cycles)",
		"Cache and Component", "Latency")
	t.Row("Shared 8 MB 32-way, 4 ports (latency of 8-way, 1-port)", "")
	t.Rowf("  Tag (includes wire delay of central tag)", "%d", l.SharedTag)
	t.Rowf("  Data", "%d", l.SharedData)
	t.Rowf("  Total", "%d", l.SharedTotal)
	t.Row("Private 2 MB 8-way, 1 port", "")
	t.Rowf("  Tag", "%d", l.PrivateTag)
	t.Rowf("  Data", "%d", l.PrivateData)
	t.Rowf("  Total", "%d", l.PrivateTotal)
	t.Row("CMP-NuRAPID with four 2 MB d-groups", "")
	t.Rowf("  Tag w/ extra tag space", "%d", l.NuRAPIDTag)
	t.Rowf("  Data d-groups (a,b,c,d)", "%d,%d,%d,%d",
		l.DGroupData[0][0], l.DGroupData[0][1], l.DGroupData[0][2], l.DGroupData[0][3])
	t.Rowf("Pipelined split-transaction bus", "%d", l.Bus)
	return t
}

// Table2 lists the multiprogrammed workloads.
func Table2() *stats.Table {
	t := stats.NewTable("Table 2: Multiprogrammed Workloads", "Workload", "Benchmarks")
	apps := workload.MixApps()
	for _, name := range []string{"MIX1", "MIX2", "MIX3", "MIX4"} {
		a := apps[name]
		t.Row(name, fmt.Sprintf("%s, %s, %s, %s", a[0].Name, a[1].Name, a[2].Name, a[3].Name))
	}
	return t
}

// Table3 lists the multithreaded workloads and their synthetic-profile
// parameters (the reproduction's analogue of the paper's workload
// descriptions). It takes the run seed so the printed profiles always
// describe the streams the figures actually ran.
func Table3(seed uint64) *stats.Table {
	t := stats.NewTable("Table 3: Multithreaded Workloads (synthetic profiles)",
		"Workload", "Instr", "RO", "RW", "Private/core", "Footprint")
	for _, p := range workload.Multithreaded(seed) {
		perCore := (p.PrivateBlocks[0] + p.CodeBlocks + p.ROBlocks + p.RWBlocks) * workload.BlockBytes
		t.Row(p.Name,
			stats.Pct(p.InstrFrac), stats.Pct(p.ROFrac), stats.Pct(p.RWFrac),
			fmt.Sprintf("%.1f MB", float64(p.PrivateBlocks[0]*workload.BlockBytes)/(1<<20)),
			fmt.Sprintf("%.1f MB/core", float64(perCore)/(1<<20)))
	}
	return t
}

// accessRow formats an L2 access distribution as Figure 5/8-style
// cells: hits, ROS, RWS, capacity fractions.
func accessRow(s *memsys.L2Stats) []string {
	return []string{
		stats.Pct(s.Accesses.Frac(memsys.LabelHit)),
		stats.Pct(s.Accesses.Frac(memsys.LabelROS)),
		stats.Pct(s.Accesses.Frac(memsys.LabelRWS)),
		stats.Pct(s.Accesses.Frac(memsys.LabelCapacity)),
	}
}
