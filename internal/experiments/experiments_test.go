package experiments

import (
	"strings"
	"sync"
	"testing"

	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/workload"
)

// The experiment tests run at quick scale and assert the *shape* of the
// paper's results — orderings and direction of effects — rather than
// absolute percentages, which need the full-scale runs (see
// EXPERIMENTS.md for those).

func quickEval(t *testing.T) *Eval {
	t.Helper()
	quickOnce.Do(func() { quickShared = NewEval(QuickRunConfig()) })
	return quickShared
}

// mediumEval is for distribution-shape assertions, which need the
// caches warm enough that cold misses do not swamp the window.
func mediumEval(t *testing.T) *Eval {
	t.Helper()
	if testing.Short() {
		t.Skip("medium-scale evaluation skipped in -short mode")
	}
	mediumOnce.Do(func() {
		mediumShared = NewEval(RunConfig{WarmupInstr: 2_500_000, Instructions: 1_000_000, Seed: 42})
	})
	return mediumShared
}

var (
	quickOnce    sync.Once
	quickShared  *Eval
	mediumOnce   sync.Once
	mediumShared *Eval
)

func TestTable1Renders(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"26", "33", "59", "10", "6,20,20,33", "32"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	s := Table2().String()
	for _, want := range []string{"apsi, art, equake, mesa", "ammp, gzip, vortex, wupwise"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3ListsAllWorkloads(t *testing.T) {
	s := Table3(42).String()
	for _, w := range []string{"oltp", "apache", "specjbb", "ocean", "barnes"} {
		if !strings.Contains(s, w) {
			t.Errorf("Table 3 missing %s", w)
		}
	}
}

func TestNewDesignUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown design did not panic")
		}
	}()
	NewDesign("bogus")
}

func TestAllDesignsConstruct(t *testing.T) {
	for _, d := range []DesignName{UniformShared, NonUniform, Private, Ideal, NuRAPID, NuRAPIDCR, NuRAPIDISC} {
		l2 := NewDesign(d)
		if l2 == nil {
			t.Errorf("NewDesign(%s) = nil", d)
		}
	}
}

// TestFigure5Shape checks the core Figure 5 claims on OLTP at quick
// scale: the shared cache has no sharing misses; the private caches
// have all four access types with more capacity misses than shared.
func TestFigure5Shape(t *testing.T) {
	e := mediumEval(t)
	p := e.Profiles()[0] // oltp
	shared := e.MT(UniformShared, p).L2
	private := e.MT(Private, p).L2

	if shared.Accesses.Count(memsys.LabelROS) != 0 || shared.Accesses.Count(memsys.LabelRWS) != 0 {
		t.Error("shared cache recorded sharing misses")
	}
	for _, l := range []string{memsys.LabelHit, memsys.LabelROS, memsys.LabelRWS, memsys.LabelCapacity} {
		if private.Accesses.Count(l) == 0 {
			t.Errorf("private cache recorded no %s", l)
		}
	}
	if private.Accesses.Frac(memsys.LabelCapacity) <= shared.Accesses.Frac(memsys.LabelCapacity) {
		t.Error("private capacity-miss fraction not above shared's (uncontrolled replication)")
	}
	// OLTP's private-cache misses are RWS-dominated.
	if private.Accesses.Frac(memsys.LabelRWS) <= private.Accesses.Frac(memsys.LabelROS) {
		t.Error("OLTP should be RWS-dominated on private caches")
	}
}

// TestFigure6Ordering checks ideal > private > uniform-shared and
// ideal > non-uniform-shared > uniform-shared on the commercial
// average.
func TestFigure6Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("deterministic full-pipeline ordering; skipped under -short (race gate)")
	}
	e := quickEval(t)
	ideal := e.Speedup(Ideal)
	private := e.Speedup(Private)
	snuca := e.Speedup(NonUniform)
	if !(ideal > private && private > 1) {
		t.Errorf("ordering broken: ideal %.3f, private %.3f", ideal, private)
	}
	if !(ideal > snuca && snuca > 1) {
		t.Errorf("ordering broken: ideal %.3f, snuca %.3f", ideal, snuca)
	}
}

// TestFigure8CRReducesCapacityMisses: CR's controlled replication must
// cut the private caches' capacity-miss fraction.
func TestFigure8CRReducesCapacityMisses(t *testing.T) {
	e := mediumEval(t)
	priv := e.MissFrac(Private, memsys.LabelCapacity)
	cr := e.MissFrac(NuRAPIDCR, memsys.LabelCapacity)
	if cr >= priv {
		t.Errorf("CR capacity misses %.4f not below private %.4f", cr, priv)
	}
}

// TestFigure8ISCReducesRWSMisses: ISC must cut RWS misses by a large
// factor (the paper reports 80%).
func TestFigure8ISCReducesRWSMisses(t *testing.T) {
	e := quickEval(t)
	priv := e.MissFrac(Private, memsys.LabelRWS)
	isc := e.MissFrac(NuRAPIDISC, memsys.LabelRWS)
	if isc > priv/2 {
		t.Errorf("ISC RWS misses %.4f not below half of private's %.4f", isc, priv)
	}
}

// TestFigure9ClosestDominates: both CR and ISC serve most accesses
// from the closest d-group, and CR more so than ISC (the producer's
// writes go to the copy near the reader).
func TestFigure9ClosestDominates(t *testing.T) {
	e := mediumEval(t)
	crClosest := e.DataFrac(NuRAPIDCR, memsys.LabelClosest)
	iscClosest := e.DataFrac(NuRAPIDISC, memsys.LabelClosest)
	if crClosest < 0.5 || iscClosest < 0.5 {
		t.Errorf("closest-d-group fractions too low: CR %.3f ISC %.3f", crClosest, iscClosest)
	}
	// At full scale CR's closest fraction additionally exceeds ISC's
	// (75% vs 71%; paper: 83% vs 76%) — that ordering needs CR's
	// replicas fully built, so it is asserted only by the full-scale
	// regeneration recorded in EXPERIMENTS.md, not at this test scale.
	crFar := e.DataFrac(NuRAPIDCR, memsys.LabelFarther)
	iscFar := e.DataFrac(NuRAPIDISC, memsys.LabelFarther)
	if iscFar <= crFar {
		t.Errorf("ISC farther fraction %.3f not above CR's %.3f (writer reaches the remote copy)", iscFar, crFar)
	}
}

// TestFigure10Headline: the paper's headline — CMP-NuRAPID outperforms
// both the uniform-shared cache and the private caches on the
// commercial average, and sits below ideal.
func TestFigure10Headline(t *testing.T) {
	e := quickEval(t)
	nur := e.Speedup(NuRAPID)
	priv := e.Speedup(Private)
	ideal := e.Speedup(Ideal)
	if nur <= 1 {
		t.Errorf("CMP-NuRAPID speedup %.3f <= 1 over uniform-shared", nur)
	}
	if nur <= priv {
		t.Errorf("CMP-NuRAPID %.3f not above private %.3f", nur, priv)
	}
	if nur >= ideal {
		t.Errorf("CMP-NuRAPID %.3f above ideal %.3f", nur, ideal)
	}
}

// TestFigure11MissRateOrdering: shared <= CMP-NuRAPID < private on the
// mix average (the paper's 8.9% / 9.7% / 14%).
func TestFigure11MissRateOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("deterministic full-pipeline ordering; skipped under -short (race gate)")
	}
	e := quickEval(t)
	sh := e.MixMissRate(UniformShared)
	nu := e.MixMissRate(NuRAPID)
	pr := e.MixMissRate(Private)
	if !(sh <= nu+0.02 && nu < pr) {
		t.Errorf("miss-rate ordering broken: shared %.3f, NuRAPID %.3f, private %.3f", sh, nu, pr)
	}
}

// TestFigure12Ordering: CMP-NuRAPID > private > non-uniform-shared >
// uniform-shared on the mix average.
func TestFigure12Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("deterministic full-pipeline ordering; skipped under -short (race gate)")
	}
	e := quickEval(t)
	nu := e.MixSpeedup(NuRAPID)
	pr := e.MixSpeedup(Private)
	sn := e.MixSpeedup(NonUniform)
	if !(nu > pr && pr > sn && sn > 1) {
		t.Errorf("ordering broken: NuRAPID %.3f, private %.3f, snuca %.3f", nu, pr, sn)
	}
}

// TestClosestDGroupHitFrac: §5.2.1 reports 85% of CMP-NuRAPID's
// accesses hit the closest d-group on the mixes.
func TestClosestDGroupHitFrac(t *testing.T) {
	e := quickEval(t)
	if f := e.ClosestDGroupHitFrac(); f < 0.6 {
		t.Errorf("closest-d-group fraction %.3f too low", f)
	}
}

// TestDeterminism: identical run configs give identical results.
func TestDeterminism(t *testing.T) {
	rc := RunConfig{WarmupInstr: 50_000, Instructions: 50_000, Seed: 7}
	a := RunProfile(NuRAPID, workload.OLTP(rc.Seed), rc)
	b := RunProfile(NuRAPID, workload.OLTP(rc.Seed), rc)
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Errorf("non-deterministic: %d/%d vs %d/%d cycles/instr",
			a.Cycles, a.Instructions, b.Cycles, b.Instructions)
	}
	if a.L2.Accesses.Total() != b.L2.Accesses.Total() {
		t.Error("non-deterministic L2 access counts")
	}
}

// TestIdenticalStreamsAcrossDesigns: different designs must see the
// same workload (same op counts at the stream level ⇒ same retired
// instruction mix at equal instruction targets).
func TestIdenticalStreamsAcrossDesigns(t *testing.T) {
	rc := RunConfig{WarmupInstr: 20_000, Instructions: 20_000, Seed: 3}
	a := RunProfile(UniformShared, workload.Barnes(rc.Seed), rc)
	b := RunProfile(Ideal, workload.Barnes(rc.Seed), rc)
	// Same instruction quantum retired per core.
	for c := range a.Cores {
		if a.Cores[c].Instructions == 0 || b.Cores[c].Instructions == 0 {
			t.Fatal("degenerate run")
		}
	}
	if a.Design == b.Design {
		t.Error("designs not distinct")
	}
}

func TestEvalCaching(t *testing.T) {
	e := NewEval(RunConfig{WarmupInstr: 10_000, Instructions: 10_000, Seed: 1})
	p := e.Profiles()[4] // barnes (smallest)
	r1 := e.MT(Ideal, p)
	r2 := e.MT(Ideal, p)
	if r1.Cycles != r2.Cycles {
		t.Error("cached run differs")
	}
	if len(e.cache) != 1 {
		t.Errorf("cache holds %d entries, want 1", len(e.cache))
	}
}

func TestSummaryMentionsHeadline(t *testing.T) {
	e := quickEval(t)
	s := e.Summary()
	if !strings.Contains(s, "uniform-shared") || !strings.Contains(s, "private") {
		t.Errorf("summary missing designs:\n%s", s)
	}
}
