package experiments

import (
	"fmt"
	"sync"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/workload"
)

// Eval runs and caches (design, workload) simulations so the figures
// that share runs (5/6 and 8/9/10, 11/12) reuse them. The cache is
// concurrency-safe with single-fill semantics: when the scheduler
// (scheduler.go) executes an evaluation's cells on a worker pool, a
// cell requested by several figures is simulated exactly once, and
// figures rendered afterwards read the completed entries without
// running anything. Sequential use (call a FigureN method directly)
// still works: a missing entry is filled on demand.
type Eval struct {
	// synccheck:unguarded immutable after NewEval
	RC RunConfig
	// synccheck:unguarded immutable after NewEval
	profiles []workload.Profile
	// synccheck:unguarded immutable after NewEval
	mixes []*workload.Multiprogrammed

	mu sync.Mutex
	// synccheck:guardedby mu
	cache map[string]*cacheEntry
}

// cacheEntry is one memoized simulation (or derived value). The entry
// is inserted under Eval.mu, but filled under its own once so that
// concurrent requesters of *different* keys never serialize on the
// evaluation-wide lock while a simulation runs. A fill that panics
// poisons the entry (pv/stack) instead of completing it: every later
// read re-panics with the original value, so a failed cell fails
// identically no matter which figure reads it or in what order.
type cacheEntry struct {
	once  sync.Once
	val   any
	pv    any    // the fill's panic value, when it failed
	stack string // the fill's stack at panic time
}

// NewEval builds an evaluation context at the given scale.
func NewEval(rc RunConfig) *Eval {
	return &Eval{
		RC:       rc,
		profiles: workload.Multithreaded(rc.Seed),
		mixes:    workload.Mixes(rc.Seed),
		cache:    map[string]*cacheEntry{},
	}
}

// memo returns the value cached under key, computing it at most once
// even when called concurrently (every caller blocks until the single
// fill completes). Each fill draws only from its own seeded workload
// split, so the value is independent of which goroutine fills it.
func (e *Eval) memo(key string, fill func() any) any {
	e.mu.Lock()
	ent, ok := e.cache[key]
	if !ok {
		ent = &cacheEntry{}
		e.cache[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		if f := CapturePanic(key, func() { ent.val = fill() }); f != nil {
			ent.pv, ent.stack = f.Value, f.Stack
		}
	})
	if ent.pv != nil {
		panic(cellPanic{value: ent.pv, stack: ent.stack})
	}
	return ent.val
}

// results is memo specialized to simulation results, the common case.
func (e *Eval) results(key string, fill func() cmpsim.Results) cmpsim.Results {
	return e.memo(key, func() any { return fill() }).(cmpsim.Results)
}

// Profiles returns the multithreaded workloads in Figure 5 order.
func (e *Eval) Profiles() []workload.Profile { return e.profiles }

// Mixes returns the Table 2 workloads.
func (e *Eval) Mixes() []*workload.Multiprogrammed { return e.mixes }

// commercial returns the three commercial workloads the headline
// numbers average over (the first three of the Figure 5 order).
func (e *Eval) commercial() []workload.Profile { return e.profiles[:3] }

func mtKey(d DesignName, p workload.Profile) string { return "mt/" + string(d) + "/" + p.Name }

func (e *Eval) mpKey(d DesignName, mixIdx int) string {
	return "mp/" + string(d) + "/" + e.mixes[mixIdx].Name()
}

// MT returns the cached result for (design, multithreaded workload).
func (e *Eval) MT(d DesignName, p workload.Profile) cmpsim.Results {
	return e.results(mtKey(d, p), func() cmpsim.Results {
		return RunProfile(d, p, e.RC)
	})
}

// MP returns the cached result for (design, mix).
func (e *Eval) MP(d DesignName, mixIdx int) cmpsim.Results {
	return e.results(e.mpKey(d, mixIdx), func() cmpsim.Results {
		// Each design must see identical streams: fresh generator per run.
		fresh := workload.Mixes(e.RC.Seed)[mixIdx]
		return Run(d, fresh, e.RC)
	})
}

// mtCells declares one cell per (design, profile) pair; running a cell
// fills the MT cache entry the figures read.
func (e *Eval) mtCells(designs []DesignName, profiles []workload.Profile) []Cell {
	cells := make([]Cell, 0, len(designs)*len(profiles))
	for _, p := range profiles {
		for _, d := range designs {
			cells = append(cells, Cell{Key: mtKey(d, p), Run: func() { e.MT(d, p) }})
		}
	}
	return cells
}

// mpCells declares one cell per (design, mix) pair.
func (e *Eval) mpCells(designs []DesignName) []Cell {
	cells := make([]Cell, 0, len(designs)*len(e.mixes))
	for i := range e.mixes {
		for _, d := range designs {
			cells = append(cells, Cell{Key: e.mpKey(d, i), Run: func() { e.MP(d, i) }})
		}
	}
	return cells
}

// Per-figure design series. The cell declarations below and the
// renderers share these so the plan always matches what rendering
// reads.
var (
	figure5Designs  = []DesignName{UniformShared, Private}
	figure6Designs  = []DesignName{NonUniform, Private, Ideal}
	figure8Designs  = []DesignName{UniformShared, Private, NuRAPIDCR, NuRAPIDISC}
	figure9Designs  = []DesignName{NuRAPIDCR, NuRAPIDISC}
	figure10Designs = []DesignName{NonUniform, Private, Ideal, NuRAPID}
	figure11Designs = []DesignName{UniformShared, Private, NuRAPID}
	figure12Designs = []DesignName{NonUniform, Private, NuRAPID}
)

// withBaseline prepends the uniform-shared baseline the relative
// figures normalize against.
func withBaseline(designs []DesignName) []DesignName {
	return append([]DesignName{UniformShared}, designs...)
}

func (e *Eval) figure5Cells() []Cell { return e.mtCells(figure5Designs, e.profiles) }
func (e *Eval) figure6Cells() []Cell { return e.mtCells(withBaseline(figure6Designs), e.profiles) }
func (e *Eval) figure7Cells() []Cell { return e.mtCells([]DesignName{Private}, e.profiles) }
func (e *Eval) figure8Cells() []Cell { return e.mtCells(figure8Designs, e.profiles) }
func (e *Eval) figure9Cells() []Cell { return e.mtCells(figure9Designs, e.profiles) }
func (e *Eval) figure10Cells() []Cell {
	return e.mtCells(withBaseline(figure10Designs), e.profiles)
}
func (e *Eval) figure11Cells() []Cell { return e.mpCells(figure11Designs) }
func (e *Eval) figure12Cells() []Cell { return e.mpCells(withBaseline(figure12Designs)) }
func (e *Eval) summaryCells() []Cell {
	return e.mtCells([]DesignName{UniformShared, Private, NuRAPID}, e.commercial())
}

// commercialAvg averages a metric over the three commercial workloads.
func (e *Eval) commercialAvg(f func(p workload.Profile) float64) float64 {
	sum := 0.0
	for _, p := range e.commercial() {
		sum += f(p)
	}
	return sum / 3
}

// barGlyphs mirrors the paper's stacked-bar legend: hits, ROS misses,
// RWS misses, capacity misses.
var barGlyphs = []rune{'#', 'r', 'w', '.'}

// accessBar renders an access distribution as a Figure 5-style
// stacked bar (#=hits r=ROS w=RWS .=capacity).
func accessBar(s *memsys.L2Stats) string {
	return stats.StackedBar([]float64{
		s.Accesses.Frac(memsys.LabelHit),
		s.Accesses.Frac(memsys.LabelROS),
		s.Accesses.Frac(memsys.LabelRWS),
		s.Accesses.Frac(memsys.LabelCapacity),
	}, 30, barGlyphs)
}

// Figure5 regenerates the distribution of L2 cache accesses for shared
// and private caches across the multithreaded workloads. The last
// column is a stacked bar (#=hits r=ROS w=RWS .=capacity), the
// terminal analogue of the paper's figure.
func (e *Eval) Figure5() *stats.Table {
	t := stats.NewTable("Figure 5: Distribution of Cache Accesses (fraction of L2 accesses)",
		"Workload", "Design", "Hits", "ROS miss", "RWS miss", "Capacity miss", "# hits  r ROS  w RWS  . capacity")
	for _, p := range e.profiles {
		for _, d := range figure5Designs {
			s := e.MT(d, p).L2
			row := append([]string{p.Name, string(d)}, accessRow(s)...)
			row = append(row, accessBar(s))
			t.Row(row...)
		}
	}
	for _, d := range figure5Designs {
		avg := e.avgAccessRow(d)
		t.Row(append([]string{"commercial-avg", string(d)}, avg...)...)
	}
	return t
}

func (e *Eval) avgAccessRow(d DesignName) []string {
	labels := []string{memsys.LabelHit, memsys.LabelROS, memsys.LabelRWS, memsys.LabelCapacity}
	cells := make([]string, 0, 4)
	for _, l := range labels {
		cells = append(cells, stats.Pct(e.commercialAvg(func(p workload.Profile) float64 {
			return e.MT(d, p).L2.Accesses.Frac(l)
		})))
	}
	return cells
}

// Figure6 regenerates the performance-opportunity figure: non-uniform-
// shared, private, and ideal caches normalized to the uniform-shared
// cache.
func (e *Eval) Figure6() *stats.Table {
	return e.perfTable(
		"Figure 6: Performance Opportunity (relative to uniform-shared)",
		figure6Designs)
}

// Figure10 regenerates the headline performance figure, adding
// CMP-NuRAPID to Figure 6's designs.
func (e *Eval) Figure10() *stats.Table {
	return e.perfTable(
		"Figure 10: Performance (relative to uniform-shared)",
		figure10Designs)
}

func (e *Eval) perfTable(title string, designs []DesignName) *stats.Table {
	header := []string{"Workload"}
	for _, d := range designs {
		header = append(header, string(d))
	}
	t := stats.NewTable(title, header...)
	for _, p := range e.profiles {
		base := e.MT(UniformShared, p)
		row := []string{p.Name}
		for _, d := range designs {
			row = append(row, stats.Rel(cmpsim.Speedup(e.MT(d, p), base)))
		}
		t.Row(row...)
	}
	row := []string{"commercial-avg"}
	for _, d := range designs {
		avg := e.commercialAvg(func(p workload.Profile) float64 {
			return cmpsim.Speedup(e.MT(d, p), e.MT(UniformShared, p))
		})
		row = append(row, stats.Rel(avg))
	}
	t.Row(row...)
	return t
}

// Speedup returns design d's commercial-average speedup over the
// uniform-shared baseline (the paper's headline metric).
func (e *Eval) Speedup(d DesignName) float64 {
	return e.commercialAvg(func(p workload.Profile) float64 {
		return cmpsim.Speedup(e.MT(d, p), e.MT(UniformShared, p))
	})
}

// Figure7 regenerates the block-reuse patterns measured on the private
// caches: replaced ROS-brought blocks and invalidated RWS-brought
// blocks, bucketed by reuse count.
func (e *Eval) Figure7() *stats.Table {
	t := stats.NewTable("Figure 7: Reuse Patterns (private caches; fraction of lifetimes)",
		"Workload", "Kind", "0 reuses", "1 reuse", "2-5 reuses", ">5 reuses")
	var avgROS, avgRWS [4]float64
	for _, p := range e.profiles {
		s := e.MT(Private, p).L2
		ros, rws := s.ReuseROS.Fracs(), s.ReuseRWS.Fracs()
		t.Row(p.Name, "ROS-replaced", stats.Pct(ros[0]), stats.Pct(ros[1]), stats.Pct(ros[2]), stats.Pct(ros[3]))
		t.Row(p.Name, "RWS-invalidated", stats.Pct(rws[0]), stats.Pct(rws[1]), stats.Pct(rws[2]), stats.Pct(rws[3]))
	}
	for _, p := range e.commercial() {
		s := e.MT(Private, p).L2
		ros, rws := s.ReuseROS.Fracs(), s.ReuseRWS.Fracs()
		for b := 0; b < 4; b++ {
			avgROS[b] += ros[b] / 3
			avgRWS[b] += rws[b] / 3
		}
	}
	t.Row("commercial-avg", "ROS-replaced", stats.Pct(avgROS[0]), stats.Pct(avgROS[1]), stats.Pct(avgROS[2]), stats.Pct(avgROS[3]))
	t.Row("commercial-avg", "RWS-invalidated", stats.Pct(avgRWS[0]), stats.Pct(avgRWS[1]), stats.Pct(avgRWS[2]), stats.Pct(avgRWS[3]))
	return t
}

// ReuseFracs exposes the commercial-average reuse fractions for tests
// and EXPERIMENTS.md (kind: true = ROS, false = RWS).
func (e *Eval) ReuseFracs(ros bool) [4]float64 {
	var avg [4]float64
	for _, p := range e.commercial() {
		s := e.MT(Private, p).L2
		var f [4]float64
		if ros {
			f = s.ReuseROS.Fracs()
		} else {
			f = s.ReuseRWS.Fracs()
		}
		for b := 0; b < 4; b++ {
			avg[b] += f[b] / 3
		}
	}
	return avg
}

// Figure8 regenerates the tag-array access distribution for shared,
// private, CMP-NuRAPID-with-CR, and CMP-NuRAPID-with-ISC.
func (e *Eval) Figure8() *stats.Table {
	t := stats.NewTable("Figure 8: Distribution of Tag Array Accesses",
		"Workload", "Design", "Hits", "ROS miss", "RWS miss", "Capacity miss")
	for _, p := range e.profiles {
		for _, d := range figure8Designs {
			t.Row(append([]string{p.Name, string(d)}, accessRow(e.MT(d, p).L2)...)...)
		}
	}
	for _, d := range figure8Designs {
		t.Row(append([]string{"commercial-avg", string(d)}, e.avgAccessRow(d)...)...)
	}
	return t
}

// MissFrac returns design d's commercial-average fraction of L2
// accesses in the given category.
func (e *Eval) MissFrac(d DesignName, label string) float64 {
	return e.commercialAvg(func(p workload.Profile) float64 {
		return e.MT(d, p).L2.Accesses.Frac(label)
	})
}

// Figure9 regenerates the data-array access distribution (closest
// d-group hits, farther d-group hits, misses) for CR and ISC.
func (e *Eval) Figure9() *stats.Table {
	t := stats.NewTable("Figure 9: Distribution of Data Array Accesses",
		"Workload", "Design", "Closest d-grp", "Farther d-grps", "Misses")
	for _, p := range e.profiles {
		for _, d := range figure9Designs {
			s := e.MT(d, p).L2
			t.Row(p.Name, string(d),
				stats.Pct(s.DataArray.Frac(memsys.LabelClosest)),
				stats.Pct(s.DataArray.Frac(memsys.LabelFarther)),
				stats.Pct(s.DataArray.Frac(memsys.LabelMiss)))
		}
	}
	for _, d := range figure9Designs {
		t.Row("commercial-avg", string(d),
			stats.Pct(e.dataFrac(d, memsys.LabelClosest)),
			stats.Pct(e.dataFrac(d, memsys.LabelFarther)),
			stats.Pct(e.dataFrac(d, memsys.LabelMiss)))
	}
	return t
}

func (e *Eval) dataFrac(d DesignName, label string) float64 {
	return e.commercialAvg(func(p workload.Profile) float64 {
		return e.MT(d, p).L2.DataArray.Frac(label)
	})
}

// DataFrac exposes the commercial-average data-array fractions.
func (e *Eval) DataFrac(d DesignName, label string) float64 { return e.dataFrac(d, label) }

// Figure11 regenerates the multiprogrammed access distributions for
// shared, private, and CMP-NuRAPID.
func (e *Eval) Figure11() *stats.Table {
	t := stats.NewTable("Figure 11: Distribution of Cache Accesses (multiprogrammed)",
		"Workload", "Design", "Hits", "Misses")
	avg := map[DesignName]float64{}
	for i, m := range e.mixes {
		for _, d := range figure11Designs {
			s := e.MP(d, i).L2
			t.Row(m.Name(), string(d),
				stats.Pct(s.Accesses.Frac(memsys.LabelHit)), stats.Pct(s.MissRate()))
			avg[d] += s.MissRate() / float64(len(e.mixes))
		}
	}
	for _, d := range figure11Designs {
		t.Row("average", string(d), stats.Pct(1-avg[d]), stats.Pct(avg[d]))
	}
	return t
}

// MixMissRate returns design d's average miss rate over the mixes.
func (e *Eval) MixMissRate(d DesignName) float64 {
	sum := 0.0
	for i := range e.mixes {
		sum += e.MP(d, i).L2.MissRate()
	}
	return sum / float64(len(e.mixes))
}

// Figure12 regenerates the multiprogrammed IPC figure: non-uniform-
// shared, private, and CMP-NuRAPID relative to uniform-shared.
func (e *Eval) Figure12() *stats.Table {
	header := []string{"Workload"}
	for _, d := range figure12Designs {
		header = append(header, string(d))
	}
	t := stats.NewTable("Figure 12: Performance, multiprogrammed (IPC relative to uniform-shared)", header...)
	avg := map[DesignName]float64{}
	for i, m := range e.mixes {
		base := e.MP(UniformShared, i)
		row := []string{m.Name()}
		for _, d := range figure12Designs {
			sp := cmpsim.Speedup(e.MP(d, i), base)
			row = append(row, stats.Rel(sp))
			avg[d] += sp / float64(len(e.mixes))
		}
		t.Row(row...)
	}
	row := []string{"average"}
	for _, d := range figure12Designs {
		row = append(row, stats.Rel(avg[d]))
	}
	t.Row(row...)
	return t
}

// MixSpeedup returns design d's average speedup over uniform-shared
// across the mixes.
func (e *Eval) MixSpeedup(d DesignName) float64 {
	sum := 0.0
	for i := range e.mixes {
		sum += cmpsim.Speedup(e.MP(d, i), e.MP(UniformShared, i))
	}
	return sum / float64(len(e.mixes))
}

// ClosestDGroupHitFrac returns, for CMP-NuRAPID on the mixes, the
// fraction of all accesses served by the closest d-group (§5.2.1
// reports 85%, i.e. 93% of hits).
func (e *Eval) ClosestDGroupHitFrac() float64 {
	sum := 0.0
	for i := range e.mixes {
		s := e.MP(NuRAPID, i).L2
		sum += s.DataArray.Frac(memsys.LabelClosest)
	}
	return sum / float64(len(e.mixes))
}

// Summary prints the headline numbers the abstract reports.
func (e *Eval) Summary() string {
	return fmt.Sprintf(
		"CMP-NuRAPID vs uniform-shared (commercial avg): %+.1f%%\n"+
			"CMP-NuRAPID vs private (commercial avg):        %+.1f%%\n",
		(e.Speedup(NuRAPID)-1)*100,
		(e.Speedup(NuRAPID)/e.Speedup(Private)-1)*100)
}
