package experiments

import (
	"fmt"
	"runtime/debug"
)

// Graceful degradation (docs/ROBUSTNESS.md): a panicking cell — a
// simguard watchdog abort, an invariant violation, any bug in one
// (design, workload) simulation — must not take down the dozens of
// healthy cells sharing the run. CapturePanic converts the panic into
// a CellFailure at the cell boundary; the scheduler collects failures
// and keeps executing, and cmd/experiments renders failed experiments
// as ERR with a failure report after the tables.

// CellFailure describes one failed cell or experiment render.
type CellFailure struct {
	// Key is the cell key (or experiment name) that failed.
	Key string
	// Diagnostic is the panic value rendered for the failure report:
	// Error() for errors (simguard diagnostics), %v otherwise.
	Diagnostic string
	// Value is the recovered panic value, preserved so tests can
	// assert on structured diagnostics (*simguard.ProgressStall, ...).
	Value any
	// Stack is the goroutine stack captured where the panic was first
	// recovered — the simulation's stack, not a later cache read's.
	Stack string
}

// cellPanic re-throws a poisoned cache entry's original panic: reads
// of a failed memo entry panic with the original value and the stack
// of the original fill, so a cell that failed once fails identically
// everywhere it is read, in any execution order. CapturePanic unwraps
// it, so the reported diagnostic is always the original value's.
//
// panicmsg:diagnostic
type cellPanic struct {
	value any
	stack string
}

// describeDiagnostic renders a panic value for the failure report.
func describeDiagnostic(v any) string {
	switch d := v.(type) {
	case error:
		return d.Error()
	case fmt.Stringer:
		return d.String()
	}
	return fmt.Sprintf("%v", v)
}

// CapturePanic runs fn and converts a panic into a *CellFailure (nil
// when fn completes). It is the scheduler's designated cell-recovery
// helper — the only function in the repository allowed to call
// recover() over simulation code (the simlint recovercheck rule
// enforces this), so a panic can never be silently swallowed anywhere
// else.
func CapturePanic(key string, fn func()) (failure *CellFailure) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if cp, ok := r.(cellPanic); ok {
			// A poisoned cache entry: report the original panic and
			// the stack of the fill that produced it.
			failure = &CellFailure{
				Key: key, Diagnostic: describeDiagnostic(cp.value),
				Value: cp.value, Stack: cp.stack,
			}
			return
		}
		failure = &CellFailure{
			Key: key, Diagnostic: describeDiagnostic(r),
			Value: r, Stack: string(debug.Stack()),
		}
	}()
	fn()
	return nil
}
