package experiments

import (
	"strings"
	"testing"
)

// TestAllFiguresRender regenerates every figure and ablation at a tiny
// scale and checks the rendered tables are well-formed (right titles,
// every workload present). This is the rendering-path guard; the
// shape assertions live in experiments_test.go and the full-scale
// numbers in EXPERIMENTS.md.
func TestAllFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("rendering evaluation skipped in -short mode")
	}
	rc := RunConfig{WarmupInstr: 60_000, Instructions: 60_000, Seed: 11}
	e := NewEval(rc)

	figures := []struct {
		title string
		gen   func() interface{ String() string }
		rows  []string
	}{
		{"Figure 5", func() interface{ String() string } { return e.Figure5() },
			[]string{"oltp", "apache", "specjbb", "ocean", "barnes", "commercial-avg"}},
		{"Figure 6", func() interface{ String() string } { return e.Figure6() },
			[]string{"non-uniform-shared", "private", "ideal"}},
		{"Figure 7", func() interface{ String() string } { return e.Figure7() },
			[]string{"ROS-replaced", "RWS-invalidated", "2-5 reuses"}},
		{"Figure 8", func() interface{ String() string } { return e.Figure8() },
			[]string{"CMP-NuRAPID-CR", "CMP-NuRAPID-ISC"}},
		{"Figure 9", func() interface{ String() string } { return e.Figure9() },
			[]string{"Closest d-grp", "Farther d-grps"}},
		{"Figure 10", func() interface{ String() string } { return e.Figure10() },
			[]string{"CMP-NuRAPID", "ideal"}},
		{"Figure 11", func() interface{ String() string } { return e.Figure11() },
			[]string{"MIX1", "MIX2", "MIX3", "MIX4", "average"}},
		{"Figure 12", func() interface{ String() string } { return e.Figure12() },
			[]string{"MIX1", "MIX4", "average"}},
	}
	for _, f := range figures {
		s := f.gen().String()
		if !strings.Contains(s, f.title) {
			t.Errorf("%s: missing title in rendering", f.title)
		}
		for _, row := range f.rows {
			if !strings.Contains(s, row) {
				t.Errorf("%s: missing %q:\n%s", f.title, row, s)
			}
		}
	}
}

func TestAblationTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation rendering skipped in -short mode")
	}
	rc := RunConfig{WarmupInstr: 40_000, Instructions: 40_000, Seed: 13}
	tables := map[string]interface{ String() string }{
		"promotion":   AblationPromotion(rc),
		"tags":        AblationTagCapacity(rc),
		"replication": AblationReplicationTrigger(rc),
		"cross":       AblationOptimizations(rc),
		"cmigration":  AblationCMigration(rc),
	}
	for name, tb := range tables {
		s := tb.String()
		if len(s) < 50 || !strings.Contains(s, "oltp") && !strings.Contains(s, "MIX") {
			t.Errorf("ablation %s rendering suspicious:\n%s", name, s)
		}
	}
}
