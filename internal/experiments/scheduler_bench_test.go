package experiments

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkExecuteCells measures the worker-pool overhead of the cell
// farm itself — queue fill, goroutine spawn, per-cell publication —
// against a synthetic plan of 256 cheap deterministic cells, at the
// two worker counts the parallel-throughput baseline tracks. Cells do
// fixed arithmetic rather than simulate, so the number is the
// scheduler's own cost: farm-scale PRs (sharded multi-process
// execution, MSHR-driven async cells) inherit this as the floor their
// coordination overhead is diffed against via BENCH_quick.json.
func BenchmarkExecuteCells(b *testing.B) {
	for _, workers := range []int{4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			var sink atomic.Int64
			cells := make([]Cell, 256)
			for i := range cells {
				cells[i] = Cell{Key: fmt.Sprintf("bench/cell%03d", i), Run: func() {
					x := 0
					for j := 0; j < 8192; j++ {
						x += j ^ (x >> 3)
					}
					sink.Add(int64(x))
				}}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				ExecuteCells(cells, workers, false, nil)
			}
		})
	}
}
