package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSelectAll(t *testing.T) {
	sel, err := Select("all")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ex := range sel {
		if !ex.InAll {
			t.Errorf("Select(all) included opt-in experiment %s", ex.Name)
		}
		names[ex.Name] = true
	}
	for _, want := range []string{"table1", "table3", "fig5", "fig12", "summary"} {
		if !names[want] {
			t.Errorf("Select(all) missing %s", want)
		}
	}
	if names["abl-promotion"] || names["sens-seed"] {
		t.Error("ablations/sensitivity must be opt-in, not part of all")
	}
}

func TestSelectAllPlusOptIn(t *testing.T) {
	sel, err := Select("all,abl-promotion")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ex := range sel {
		if ex.Name == "abl-promotion" {
			found = true
		}
	}
	if !found {
		t.Error("all,abl-promotion did not include the ablation")
	}
}

func TestSelectUnknownName(t *testing.T) {
	_, err := Select("fig13")
	if err == nil {
		t.Fatal("unknown experiment name accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "fig13") {
		t.Errorf("error does not name the offender: %v", err)
	}
	for _, want := range []string{"fig5", "table1", "summary", "abl-promotion"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error does not list valid name %s: %v", want, err)
		}
	}
}

func TestSelectEmpty(t *testing.T) {
	for _, spec := range []string{"", " ", ",", " , "} {
		if _, err := Select(spec); err == nil {
			t.Errorf("empty selection %q accepted", spec)
		}
	}
}

func TestSelectPreservesRenderOrder(t *testing.T) {
	// Selection order must be the registry's rendering order, not the
	// order the user typed the names in.
	sel, err := Select("fig10,table1,fig5")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, ex := range sel {
		got = append(got, ex.Name)
	}
	want := []string{"table1", "fig5", "fig10"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("render order %v, want %v", got, want)
	}
}

func TestExperimentsDeclareRenderers(t *testing.T) {
	for _, ex := range Experiments() {
		if (ex.Table == nil) == (ex.Text == nil) {
			t.Errorf("%s must declare exactly one of Table/Text", ex.Name)
		}
	}
}

// TestPlanDeduplicates: figures 8, 9, and 10 share runs; the plan must
// request each (design, workload) cell once.
func TestPlanDeduplicates(t *testing.T) {
	e := NewEval(RunConfig{WarmupInstr: 1, Instructions: 1, Seed: 1})
	sel, err := Select("fig8,fig9,fig10")
	if err != nil {
		t.Fatal(err)
	}
	cells := Plan(sel, e)
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key] {
			t.Errorf("duplicate cell %s in plan", c.Key)
		}
		seen[c.Key] = true
	}
	// fig8: shared, private, CR, ISC; fig9: CR, ISC (shared with fig8);
	// fig10: shared (dup), snuca, private (dup), ideal, NuRAPID.
	// Unique designs: shared, private, CR, ISC, snuca, ideal, NuRAPID = 7
	// across 5 profiles.
	if want := 7 * len(e.Profiles()); len(cells) != want {
		t.Errorf("plan has %d cells, want %d", len(cells), want)
	}
}

// TestExecuteCellsSingleFill: many cells racing on few cache keys must
// fill each key exactly once.
func TestExecuteCellsSingleFill(t *testing.T) {
	e := NewEval(RunConfig{WarmupInstr: 1, Instructions: 1, Seed: 1})
	var fills atomic.Int64
	var cells []Cell
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("test/key%d", i%4)
		cells = append(cells, Cell{Key: key, Run: func() {
			e.memo(key, func() any {
				fills.Add(1)
				return key
			})
		}})
	}
	ExecuteCells(cells, 8, false, nil)
	if got := fills.Load(); got != 4 {
		t.Errorf("filled %d times, want 4 (single-fill broken)", got)
	}
}

// TestExecuteCellsProgress: the progress callback is serialized and
// sees every completion exactly once, in counting order.
func TestExecuteCellsProgress(t *testing.T) {
	var cells []Cell
	for i := 0; i < 17; i++ {
		cells = append(cells, Cell{Key: fmt.Sprintf("c%d", i), Run: func() {}})
	}
	var dones []int
	ExecuteCells(cells, 4, false, func(done, total int, key string, _ time.Duration) {
		dones = append(dones, done)
		if total != len(cells) {
			t.Errorf("progress total %d, want %d", total, len(cells))
		}
	})
	if len(dones) != len(cells) {
		t.Fatalf("progress called %d times, want %d", len(dones), len(cells))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence out of order at %d: %v", i, dones)
		}
	}
}

// TestSchedulerEquivalence is the determinism contract: a parallel
// execution of the plan followed by rendering must produce the exact
// bytes a purely sequential evaluation produces. Runs at tiny scale so
// the race-short gate (`go test -race -short`) exercises the
// concurrent path on every CI run.
func TestSchedulerEquivalence(t *testing.T) {
	rc := RunConfig{WarmupInstr: 20_000, Instructions: 20_000, Seed: 9}
	render := func(e *Eval) string {
		return e.Figure5().String() + "\n" + e.Figure11().String() + "\n" + e.Summary()
	}

	seq := NewEval(rc) // no scheduling: every run fills on demand
	seqOut := render(seq)

	par := NewEval(rc)
	sel, err := Select("fig5,fig11,summary")
	if err != nil {
		t.Fatal(err)
	}
	ExecuteCells(Plan(sel, par), 8, false, nil)
	parOut := render(par)

	if seqOut != parOut {
		t.Errorf("parallel rendering differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}
}

// TestExecuteCellsRecoversPanics: a panicking cell becomes a
// CellFailure while every other cell still runs to completion.
func TestExecuteCellsRecoversPanics(t *testing.T) {
	var ran atomic.Int64
	cells := []Cell{
		{Key: "good-0", Run: func() { ran.Add(1) }},
		{Key: "boom", Run: func() { panic("experiments: injected cell fault") }},
		{Key: "good-1", Run: func() { ran.Add(1) }},
		{Key: "good-2", Run: func() { ran.Add(1) }},
	}
	failures := ExecuteCells(cells, 2, false, nil)
	if ran.Load() != 3 {
		t.Errorf("healthy cells ran %d times, want 3", ran.Load())
	}
	if len(failures) != 1 {
		t.Fatalf("got %d failures, want 1: %+v", len(failures), failures)
	}
	f := failures[0]
	if f.Key != "boom" {
		t.Errorf("failure key %q, want boom", f.Key)
	}
	if f.Diagnostic != "experiments: injected cell fault" {
		t.Errorf("diagnostic %q", f.Diagnostic)
	}
	if !strings.Contains(f.Stack, "scheduler_test") {
		t.Errorf("stack does not point at the panicking cell:\n%s", f.Stack)
	}
}

// TestExecuteCellsFailuresInPlanOrder: failures come back sorted by
// plan position regardless of completion order.
func TestExecuteCellsFailuresInPlanOrder(t *testing.T) {
	var cells []Cell
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("cell-%02d", i)
		cells = append(cells, Cell{Key: key, Run: func() { panic("experiments: fault in " + key) }})
	}
	failures := ExecuteCells(cells, 6, false, nil)
	if len(failures) != len(cells) {
		t.Fatalf("got %d failures, want %d", len(failures), len(cells))
	}
	for i, f := range failures {
		if want := fmt.Sprintf("cell-%02d", i); f.Key != want {
			t.Fatalf("failure %d is %q, want %q (plan order)", i, f.Key, want)
		}
	}
}

// TestExecuteCellsFailFast: with failFast set, no cells are dispatched
// after the first failure is observed.
func TestExecuteCellsFailFast(t *testing.T) {
	var ran atomic.Int64
	cells := []Cell{
		{Key: "boom", Run: func() { panic("experiments: first cell fails") }},
	}
	for i := 0; i < 32; i++ {
		cells = append(cells, Cell{Key: fmt.Sprintf("tail-%d", i), Run: func() {
			ran.Add(1)
			time.Sleep(time.Millisecond)
		}})
	}
	failures := ExecuteCells(cells, 1, true, nil)
	if len(failures) == 0 {
		t.Fatal("failfast run reported no failures")
	}
	if failures[0].Key != "boom" {
		t.Errorf("first failure %q, want boom", failures[0].Key)
	}
	// With one worker the failure lands before any tail cell can be
	// dispatched, so nothing after it may run.
	if ran.Load() != 0 {
		t.Errorf("failfast still ran %d cells after the failure", ran.Load())
	}
}

// TestExecuteCellsFailFastDrainsQueue: with failFast and several
// workers, the first failure cancels the run by making the workers
// drain the remaining queue — skipped cells neither run nor count.
// Only cells already in flight when the failure landed may still
// finish, so at most workers-1 tails (plus the handful a worker can
// grab in the microseconds before the stop lands) ever execute.
func TestExecuteCellsFailFastDrainsQueue(t *testing.T) {
	const tails = 64
	var ran atomic.Int64
	cells := []Cell{
		{Key: "boom", Run: func() { panic("experiments: first cell fails") }},
	}
	for i := 0; i < tails; i++ {
		cells = append(cells, Cell{Key: fmt.Sprintf("tail-%d", i), Run: func() {
			ran.Add(1)
			time.Sleep(2 * time.Millisecond)
		}})
	}
	var progressed atomic.Int64
	failures := ExecuteCells(cells, 4, true, func(done, total int, key string, _ time.Duration) {
		progressed.Add(1)
	})
	if len(failures) != 1 || failures[0].Key != "boom" {
		t.Fatalf("failures = %+v, want exactly boom", failures)
	}
	if got := ran.Load(); got >= tails/2 {
		t.Errorf("failfast ran %d of %d tail cells; the queue was not drained", got, tails)
	}
	// Drained cells are skipped entirely: every progress callback is a
	// cell that actually executed, nothing more and nothing less.
	if got, want := progressed.Load(), ran.Load()+1; got != want {
		t.Errorf("progress fired %d times for %d executed cells; drained cells must not be counted", got, want)
	}
}

// TestCellRunPublishesAtomically pins that a cell's completion commits
// in one piece: the progress callback runs inside finish's critical
// section, so at the instant it observes done == N, the failures slice
// already holds every failure among those N completions. A finish that
// bumped the count before (or without) recording the failure, or fired
// progress outside the lock, fails this test under -race.
func TestCellRunPublishesAtomically(t *testing.T) {
	const n = 96
	r := &cellRun{total: n, stop: make(chan struct{})}
	r.progress = func(done, total int, key string, _ time.Duration) {
		// Safe: finish holds r.mu while invoking progress.
		if len(r.failures) != done {
			t.Errorf("progress saw done=%d with %d failures recorded; completion published partially", done, len(r.failures))
		}
	}
	var wg sync.WaitGroup
	wg.Add(8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				key := fmt.Sprintf("w%d-c%d", w, i)
				r.finish(key, &CellFailure{Key: key, Diagnostic: "experiments: synthetic"}, 0)
			}
		}(w)
	}
	wg.Wait()
	if r.done != n || len(r.failures) != n {
		t.Errorf("final state done=%d failures=%d, want %d/%d", r.done, len(r.failures), n, n)
	}
}

// TestMemoPoisoning: a panicking fill poisons the memo — every later
// read re-panics deterministically with the original value, and
// CapturePanic unwraps it back to the original diagnostic and stack.
func TestMemoPoisoning(t *testing.T) {
	e := NewEval(RunConfig{WarmupInstr: 1000, Instructions: 1000, Seed: 1})
	var fills atomic.Int64
	read := func() (failure *CellFailure) {
		return CapturePanic("poisoned", func() {
			e.memo("poisoned", func() any {
				fills.Add(1)
				panic("experiments: fill exploded")
			})
		})
	}
	f1 := read()
	f2 := read()
	if f1 == nil || f2 == nil {
		t.Fatal("poisoned memo read did not fail")
	}
	if fills.Load() != 1 {
		t.Errorf("fill ran %d times, want 1 (poison must be cached)", fills.Load())
	}
	if f1.Diagnostic != "experiments: fill exploded" || f2.Diagnostic != f1.Diagnostic {
		t.Errorf("poison diagnostics: %q then %q", f1.Diagnostic, f2.Diagnostic)
	}
	if f1.Value != f2.Value {
		t.Errorf("re-panic value differs: %v vs %v", f1.Value, f2.Value)
	}
	if !strings.Contains(f1.Stack, "scheduler_test") {
		t.Errorf("poisoned stack lost the original fill frame:\n%s", f1.Stack)
	}
	if f2.Stack != f1.Stack {
		t.Error("re-panic did not preserve the original fill stack")
	}
}

// TestCapturePanicPassthrough: no panic means no failure, and an
// error-valued panic is rendered via Error().
func TestCapturePanicPassthrough(t *testing.T) {
	if f := CapturePanic("ok", func() {}); f != nil {
		t.Errorf("clean run reported failure %+v", f)
	}
	f := CapturePanic("err", func() { panic(errors.New("experiments: wrapped error")) })
	if f == nil || f.Diagnostic != "experiments: wrapped error" {
		t.Errorf("error panic diagnostic: %+v", f)
	}
}
