package experiments

import (
	"fmt"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/l2"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/topo"
	"cmpnurapid/internal/workload"
)

// This file extends the evaluation with sensitivity studies the paper
// motivates but does not run: total L2 capacity (the latency–capacity
// tradeoff CMP-NuRAPID navigates shifts with cache size) and workload
// seed (the paper injects random perturbations and reruns, §4.3).

// SizedDesign constructs one of the three principal designs at an
// alternative total capacity, with latencies re-derived from the
// timing model at that geometry.
func SizedDesign(d DesignName, totalBytes int) memsys.L2 {
	dgroupBytes := totalBytes / topo.NumDGroups
	lat := topo.DeriveWith(dgroupBytes)
	switch d {
	case UniformShared:
		return l2.NewShared("uniform-shared", totalBytes, topo.SharedAssoc,
			topo.BlockBytes, lat.SharedTotal, 300)
	case Private:
		return l2.NewPrivateWith(dgroupBytes, topo.PrivateAssoc, topo.BlockBytes,
			lat.PrivateTotal, bus.Config{Latency: lat.Bus, SlotCycles: 4}, 300)
	case NuRAPID:
		cfg := core.DefaultConfig()
		cfg.TagSets = 2 * (dgroupBytes / (topo.BlockBytes * topo.PrivateAssoc))
		cfg.DGroupFrames = dgroupBytes / topo.BlockBytes
		cfg.TagLatency = lat.NuRAPIDTag
		cfg.DGroupLat = lat.DGroupData
		cfg.DGroupOccupancy = lat.PrivateData
		cfg.Bus = bus.Config{Latency: lat.Bus, SlotCycles: 4}
		return core.New(cfg)
	}
	panic(fmt.Sprintf("experiments: SizedDesign does not support %q", d))
}

// SizeSensitivity sweeps the total L2 capacity on one commercial
// workload and reports each design's speedup over the same-size
// uniform-shared cache. Smaller caches raise capacity pressure (CR's
// territory); larger ones leave latency as the only differentiator.
func SizeSensitivity(rc RunConfig, totalsMB []int) *stats.Table {
	header := []string{"Total L2"}
	for _, d := range []DesignName{Private, NuRAPID} {
		header = append(header, string(d))
	}
	t := stats.NewTable("Sensitivity: total L2 capacity (speedup vs same-size uniform-shared, OLTP)", header...)
	for _, mb := range totalsMB {
		total := mb << 20
		row := []string{fmt.Sprintf("%d MB", mb)}
		base := runSized(UniformShared, total, rc)
		for _, d := range []DesignName{Private, NuRAPID} {
			r := runSized(d, total, rc)
			row = append(row, stats.Rel(cmpsim.Speedup(r, base)))
		}
		t.Row(row...)
	}
	return t
}

func runSized(d DesignName, totalBytes int, rc RunConfig) cmpsim.Results {
	p := workload.OLTP(rc.Seed)
	sys := cmpsim.New(cmpsim.DefaultConfig(), SizedDesign(d, totalBytes), workload.New(p))
	sys.Warmup(rc.WarmupInstr)
	return sys.Run(rc.Instructions)
}

// SizeSpeedups returns (private, nurapid) speedups over uniform-shared
// at one capacity, for tests.
func SizeSpeedups(rc RunConfig, totalMB int) (private, nurapid float64) {
	total := totalMB << 20
	base := runSized(UniformShared, total, rc)
	return cmpsim.Speedup(runSized(Private, total, rc), base),
		cmpsim.Speedup(runSized(NuRAPID, total, rc), base)
}

// SeedSensitivity reruns the Figure 10 headline comparison across
// seeds and reports each design's commercial-average speedup per seed;
// the orderings must be stable for the reproduction's claims to mean
// anything (the paper likewise accounts for multithreaded variability
// by rerunning with perturbations, §4.3).
func SeedSensitivity(rc RunConfig, seeds []uint64) *stats.Table {
	t := stats.NewTable("Sensitivity: workload seed (commercial-avg speedup vs uniform-shared)",
		"Seed", "private", "CMP-NuRAPID", "ideal")
	for _, seed := range seeds {
		rcs := rc
		rcs.Seed = seed
		e := NewEval(rcs)
		t.Row(fmt.Sprint(seed),
			stats.Rel(e.Speedup(Private)),
			stats.Rel(e.Speedup(NuRAPID)),
			stats.Rel(e.Speedup(Ideal)))
	}
	return t
}

// SeedOrderingStable reports whether NuRAPID > private > 1 holds for
// every seed (used by tests).
func SeedOrderingStable(rc RunConfig, seeds []uint64) bool {
	for _, seed := range seeds {
		rcs := rc
		rcs.Seed = seed
		e := NewEval(rcs)
		nur, priv := e.Speedup(NuRAPID), e.Speedup(Private)
		if !(nur > priv && priv > 1) {
			return false
		}
	}
	return true
}
