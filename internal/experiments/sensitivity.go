package experiments

import (
	"fmt"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/l2"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/stats"
	"cmpnurapid/internal/topo"
	"cmpnurapid/internal/workload"
)

// This file extends the evaluation with sensitivity studies the paper
// motivates but does not run: total L2 capacity (the latency–capacity
// tradeoff CMP-NuRAPID navigates shifts with cache size) and workload
// seed (the paper injects random perturbations and reruns, §4.3).

// SizedDesign constructs one of the three principal designs at an
// alternative total capacity, with latencies re-derived from the
// timing model at that geometry.
func SizedDesign(d DesignName, totalBytes memsys.Bytes) memsys.L2 {
	dgroupBytes := totalBytes / topo.NumDGroups
	lat := topo.DeriveWith(dgroupBytes)
	switch d {
	case UniformShared:
		return l2.NewShared("uniform-shared", totalBytes, topo.SharedAssoc,
			topo.BlockBytes, lat.SharedTotal, 300)
	case Private:
		return l2.NewPrivateWith(dgroupBytes, topo.PrivateAssoc, topo.BlockBytes,
			lat.PrivateTotal, bus.Config{Latency: lat.Bus, SlotCycles: 4}, 300)
	case NuRAPID:
		cfg := core.DefaultConfig()
		cfg.TagSets = 2 * dgroupBytes.Per(topo.BlockBytes*topo.PrivateAssoc)
		cfg.DGroupFrames = dgroupBytes.Per(topo.BlockBytes)
		cfg.TagLatency = lat.NuRAPIDTag
		cfg.DGroupLat = lat.DGroupData
		cfg.DGroupOccupancy = lat.PrivateData
		cfg.Bus = bus.Config{Latency: lat.Bus, SlotCycles: 4}
		return core.New(cfg)
	}
	panic(fmt.Sprintf("experiments: SizedDesign does not support %q", d))
}

// sizeSweepMB is the capacity sweep the "sens-size" experiment runs.
var sizeSweepMB = []int{4, 8, 16}

// sizeSweepDesigns are the designs compared at each capacity point
// (uniform-shared is the per-point baseline).
var sizeSweepDesigns = []DesignName{Private, NuRAPID}

func sizedKey(d DesignName, totalMB int) string {
	return fmt.Sprintf("sens/size/%dMB/%s", totalMB, d)
}

// sizedRun memoizes one (design, capacity) point of the sweep.
func (e *Eval) sizedRun(d DesignName, totalMB int) cmpsim.Results {
	return e.results(sizedKey(d, totalMB), func() cmpsim.Results {
		return runSized(d, memsys.MB(totalMB), e.RC)
	})
}

func (e *Eval) sizeSensitivityCells(totalsMB []int) []Cell {
	var cells []Cell
	for _, mb := range totalsMB {
		for _, d := range withBaseline(sizeSweepDesigns) {
			cells = append(cells, Cell{Key: sizedKey(d, mb), Run: func() { e.sizedRun(d, mb) }})
		}
	}
	return cells
}

// SizeSensitivity sweeps the total L2 capacity on one commercial
// workload and reports each design's speedup over the same-size
// uniform-shared cache. Smaller caches raise capacity pressure (CR's
// territory); larger ones leave latency as the only differentiator.
func (e *Eval) SizeSensitivity(totalsMB []int) *stats.Table {
	header := []string{"Total L2"}
	for _, d := range sizeSweepDesigns {
		header = append(header, string(d))
	}
	t := stats.NewTable("Sensitivity: total L2 capacity (speedup vs same-size uniform-shared, OLTP)", header...)
	for _, mb := range totalsMB {
		row := []string{fmt.Sprintf("%d MB", mb)}
		base := e.sizedRun(UniformShared, mb)
		for _, d := range sizeSweepDesigns {
			row = append(row, stats.Rel(cmpsim.Speedup(e.sizedRun(d, mb), base)))
		}
		t.Row(row...)
	}
	return t
}

// SizeSensitivity is the sequential wrapper used by tests.
func SizeSensitivity(rc RunConfig, totalsMB []int) *stats.Table {
	return NewEval(rc).SizeSensitivity(totalsMB)
}

func runSized(d DesignName, totalBytes memsys.Bytes, rc RunConfig) cmpsim.Results {
	p := workload.OLTP(rc.Seed)
	sys := cmpsim.New(cmpsim.DefaultConfig(), SizedDesign(d, totalBytes), workload.New(p))
	sys.Warmup(rc.WarmupInstr)
	return sys.Run(rc.Instructions)
}

// SizeSpeedups returns (private, nurapid) speedups over uniform-shared
// at one capacity, for tests.
func SizeSpeedups(rc RunConfig, totalMB int) (private, nurapid float64) {
	total := memsys.MB(totalMB)
	base := runSized(UniformShared, total, rc)
	return cmpsim.Speedup(runSized(Private, total, rc), base),
		cmpsim.Speedup(runSized(NuRAPID, total, rc), base)
}

// seedSweep is the seed series the "sens-seed" experiment reruns the
// headline comparison over: the configured seed and its two
// successors (matching the historical cmd/experiments default).
func (e *Eval) seedSweep() []uint64 {
	return []uint64{e.RC.Seed, e.RC.Seed + 1, e.RC.Seed + 2}
}

// seedSweepDesigns are the designs whose commercial-average speedups
// the sweep reports (plus the uniform-shared baseline each needs).
var seedSweepDesigns = []DesignName{Private, NuRAPID, Ideal}

// subEval returns a child evaluation at the same scale but a different
// seed, memoized so cells and rendering share one instance (and one
// run cache). For the evaluation's own seed it returns e itself, so a
// combined "-exp all,sens-seed" reuses the figures' runs.
func (e *Eval) subEval(seed uint64) *Eval {
	if seed == e.RC.Seed {
		return e
	}
	return e.memo(fmt.Sprintf("eval/seed/%d", seed), func() any {
		rcs := e.RC
		rcs.Seed = seed
		return NewEval(rcs)
	}).(*Eval)
}

func (e *Eval) seedSensitivityCells(seeds []uint64) []Cell {
	var cells []Cell
	for _, seed := range seeds {
		sub := e.subEval(seed)
		// Namespace the child's cells by seed: the same (design,
		// workload) pair at two seeds is two distinct simulations, and
		// the planner deduplicates by key.
		prefix := fmt.Sprintf("seed/%d/", seed)
		for _, c := range sub.mtCells(withBaseline(seedSweepDesigns), sub.commercial()) {
			cells = append(cells, Cell{Key: prefix + c.Key, Run: c.Run})
		}
	}
	return cells
}

// SeedSensitivity reruns the Figure 10 headline comparison across
// seeds and reports each design's commercial-average speedup per seed;
// the orderings must be stable for the reproduction's claims to mean
// anything (the paper likewise accounts for multithreaded variability
// by rerunning with perturbations, §4.3).
func (e *Eval) SeedSensitivity(seeds []uint64) *stats.Table {
	t := stats.NewTable("Sensitivity: workload seed (commercial-avg speedup vs uniform-shared)",
		"Seed", "private", "CMP-NuRAPID", "ideal")
	for _, seed := range seeds {
		sub := e.subEval(seed)
		t.Row(fmt.Sprint(seed),
			stats.Rel(sub.Speedup(Private)),
			stats.Rel(sub.Speedup(NuRAPID)),
			stats.Rel(sub.Speedup(Ideal)))
	}
	return t
}

// SeedSensitivity is the sequential wrapper used by tests.
func SeedSensitivity(rc RunConfig, seeds []uint64) *stats.Table {
	return NewEval(rc).SeedSensitivity(seeds)
}

// SeedOrderingStable reports whether NuRAPID > private > 1 holds for
// every seed (used by tests).
func SeedOrderingStable(rc RunConfig, seeds []uint64) bool {
	e := NewEval(rc)
	for _, seed := range seeds {
		sub := e.subEval(seed)
		nur, priv := sub.Speedup(NuRAPID), sub.Speedup(Private)
		if !(nur > priv && priv > 1) {
			return false
		}
	}
	return true
}
