package farm

import (
	"fmt"
	"testing"

	"cmpnurapid/internal/experiments"
)

// BenchmarkFarmOverhead measures what -isolate costs per cell over the
// in-process executor: spawning a worker subprocess and round-tripping
// the frame protocol plus the store write ("dispatch"), and serving a
// cell from the durable store without any worker ("store-hit"), against
// the bare in-process dispatch baseline ("in-process"). Run without
// -benchmem: subprocess allocation counts are not deterministic, so
// only wall time is tracked in the trajectory (docs/PERF.md).
func BenchmarkFarmOverhead(b *testing.B) {
	b.Run("dispatch", func(b *testing.B) {
		dir := b.TempDir()
		store, err := OpenStore(dir, "bench", "v1")
		if err != nil {
			b.Fatal(err)
		}
		sk := newSink()
		sup := New(Config{
			Seed:         7,
			Store:        store,
			NewWorkerCmd: stubCmd(b, "ok"),
			Install:      sk.install,
			Fail:         sk.fail,
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh key per iteration keeps the store cold: this measures
			// spawn + protocol + Put, never a hit.
			if f := sup.Execute(cell(fmt.Sprintf("bench/cell-%d", i))); f != nil {
				b.Fatalf("%+v", f)
			}
		}
	})
	b.Run("store-hit", func(b *testing.B) {
		dir := b.TempDir()
		store, err := OpenStore(dir, "bench", "v1")
		if err != nil {
			b.Fatal(err)
		}
		sk := newSink()
		sup := New(Config{
			Seed:         7,
			Store:        store,
			NewWorkerCmd: stubCmd(b, "crash"), // a hit must never need the worker
			Install:      sk.install,
			Fail:         sk.fail,
		})
		if err := store.Put("bench/cell", []byte(`{"cell":"bench/cell"}`)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f := sup.Execute(cell("bench/cell")); f != nil {
				b.Fatalf("%+v", f)
			}
		}
	})
	b.Run("in-process", func(b *testing.B) {
		exec := experiments.InProcess()
		c := experiments.Cell{Key: "bench/cell", Run: func() {}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f := exec.Execute(c); f != nil {
				b.Fatalf("%+v", f)
			}
		}
	})
}
