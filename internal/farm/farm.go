package farm

import (
	"bytes"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"cmpnurapid/internal/experiments"
	"cmpnurapid/internal/rng"
)

// Config parameterizes a Supervisor. NewWorkerCmd, Install, and Fail
// are the three seams to the host binary: how to spawn a worker for a
// cell, how to commit a completed payload into the evaluation cache,
// and how to record a permanent failure so rendering degrades exactly
// like an in-process cell panic.
type Config struct {
	// Retries is the per-cell retry budget: a cell may be attempted
	// 1+Retries times before its failure becomes permanent. Negative is
	// treated as 0.
	Retries int
	// Timeout is the per-attempt wall-clock ceiling; a worker still
	// running after it is killed and the attempt counts as retryable
	// (the stall-then-kill path). 0 disables the ceiling.
	Timeout time.Duration
	// Backoff is the base delay before a crash/timeout retry; attempt n
	// waits Backoff<<n plus seeded jitter. 0 uses 100ms.
	Backoff time.Duration
	// Seed seeds the per-cell jitter and chaos-delay streams
	// (internal/rng), so a retry schedule is reproducible from (Seed,
	// cell key) no matter how goroutines interleave.
	Seed uint64
	// Store, when non-nil, is consulted before computing and updated
	// after every success.
	Store *Store
	// NewWorkerCmd builds the (unstarted) worker subprocess for one
	// attempt at key; the supervisor wires stdin/stdout itself.
	NewWorkerCmd func(key string) *exec.Cmd
	// Install commits a completed payload (from a worker or a store
	// hit). An error means the payload is undecodable.
	Install func(key string, payload []byte) error
	// Fail records a permanently failed cell so rendering shows an ERR
	// line with the same diagnostic as the returned CellFailure.
	Fail func(key, diagnostic, stack string)
	// Log receives supervision diagnostics (store rejections, retry
	// notices); nil discards them. Never written concurrently with
	// result output: it is the coordinator's stderr.
	Log io.Writer
	// Kill and Stall are the chaos-injection hooks
	// (simguard.WorkerKill / simguard.WorkerStall): Kill SIGKILLs the
	// worker for (key, attempt) after a short seeded delay, Stall makes
	// the worker hang so the Timeout path fires. Nil disables each.
	Kill  func(key string, attempt int) bool
	Stall func(key string, attempt int) bool
	// KillDelayMax bounds the seeded delay before an injected kill
	// lands (default 25ms) — long enough to be mid-cell, short enough
	// for tests.
	KillDelayMax time.Duration
	// sleep replaces time.Sleep in tests to record backoff schedules.
	sleep func(time.Duration)
}

// Stats counts what a farm run did. Every counter is monotonic; a
// chaos test asserts over them (killed attempts were retried, the
// store served hits on resume).
type Stats struct {
	// Cells is the number of Execute calls (plan cells dispatched).
	Cells int
	// StoreHits is the number of cells served from the store.
	StoreHits int
	// Computed is the number of cells completed by a worker.
	Computed int
	// Failed is the number of cells that became permanent failures.
	Failed int
	// Retries counts attempts after the first, across all cells.
	Retries int
	// KilledAttempts counts chaos-injected SIGKILLs that were actually
	// delivered before the worker answered.
	KilledAttempts int
	// Timeouts counts attempts killed by the per-attempt ceiling.
	Timeouts int
	// Crashes counts attempts that died without a valid response
	// (excluding timeouts).
	Crashes int
	// CorruptEntries counts store entries rejected by integrity checks.
	CorruptEntries int
}

// Supervisor executes cells in isolated worker subprocesses with
// retry, timeout, backoff, and the durable store. It implements
// experiments.CellExecutor, so experiments.ExecuteCellsOn drives it
// with the same pool, fail-fast, and progress machinery as in-process
// runs. Safe for concurrent use.
type Supervisor struct {
	// synccheck:unguarded immutable after New
	cfg Config

	mu sync.Mutex
	// synccheck:guardedby mu
	stats Stats
}

// New validates the configuration and returns a Supervisor.
func New(cfg Config) *Supervisor {
	if cfg.NewWorkerCmd == nil {
		panic("farm: Config.NewWorkerCmd is required")
	}
	if cfg.Install == nil {
		panic("farm: Config.Install is required")
	}
	if cfg.Fail == nil {
		panic("farm: Config.Fail is required")
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.KillDelayMax <= 0 {
		cfg.KillDelayMax = 25 * time.Millisecond
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
	return &Supervisor{cfg: cfg}
}

// Stats returns a snapshot of the run counters.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// count applies one mutation to the stats under the lock.
func (s *Supervisor) count(f func(*Stats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.stats)
}

// logf writes one supervision diagnostic line under the lock (multiple
// pool goroutines supervise concurrently; lines must not interleave).
func (s *Supervisor) logf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.cfg.Log, format+"\n", args...)
}

// Execute runs one cell: store lookup, then supervised worker attempts
// with bounded retries. Crashes, timeouts, and protocol errors are
// retryable; a deterministic in-cell panic (the worker answered with a
// structured failure) is retried at most until the same diagnostic
// repeats — the same failure twice proves determinism, so further
// attempts cannot succeed. On permanent failure the cell's cache entry
// is poisoned via cfg.Fail and the failure is returned in the same
// shape an in-process panic would produce.
func (s *Supervisor) Execute(c experiments.Cell) *experiments.CellFailure {
	key := c.Key
	s.count(func(st *Stats) { st.Cells++ })

	if s.cfg.Store != nil {
		payload, entErr := s.cfg.Store.Get(key)
		if entErr != nil {
			s.count(func(st *Stats) { st.CorruptEntries++ })
			s.logf("farm: %v (recomputing)", entErr)
		} else if payload != nil {
			if err := s.cfg.Install(key, payload); err != nil {
				s.count(func(st *Stats) { st.CorruptEntries++ })
				s.logf("farm: store entry for %q undecodable: %v (recomputing)", key, err)
			} else {
				s.count(func(st *Stats) { st.StoreHits++ })
				return nil
			}
		}
	}

	// jitter is this cell's private backoff stream: seeded from (Seed,
	// key), so the schedule is reproducible however the pool interleaves.
	jitter := rng.New(s.cfg.Seed ^ hashKey(key))
	var lastPanic *Failure
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			s.count(func(st *Stats) { st.Retries++ })
		}
		resp, crash := s.runAttempt(key, attempt, jitter)
		switch {
		case crash == "" && resp.Failure == nil:
			if err := s.cfg.Install(key, resp.Payload); err != nil {
				crash = fmt.Sprintf("worker payload undecodable: %v", err)
				break
			}
			if s.cfg.Store != nil {
				if err := s.cfg.Store.Put(key, resp.Payload); err != nil {
					s.logf("farm: %v", err) // the result is installed; a store write failure only costs incrementality
				}
			}
			s.count(func(st *Stats) { st.Computed++ })
			return nil
		case crash == "":
			// A deterministic panic inside the cell, reported cleanly.
			f := resp.Failure
			if lastPanic != nil && lastPanic.Diagnostic == f.Diagnostic {
				s.logf("farm: cell %q failed identically twice (deterministic); not retrying", key)
				return s.permanent(key, f.Diagnostic, f.Stack)
			}
			if attempt >= s.cfg.Retries {
				return s.permanent(key, f.Diagnostic, f.Stack)
			}
			lastPanic = f
			s.logf("farm: cell %q panicked (attempt %d/%d): %s; retrying", key, attempt+1, s.cfg.Retries+1, firstLine(f.Diagnostic))
			continue
		}
		// Retryable: crash, timeout, exec or protocol error.
		if attempt >= s.cfg.Retries {
			diag := fmt.Sprintf("farm: cell %q gave up after %d attempt(s): %s", key, attempt+1, crash)
			return s.permanent(key, diag, "")
		}
		delay := s.backoff(attempt, jitter)
		s.logf("farm: cell %q attempt %d/%d failed: %s; backing off %v", key, attempt+1, s.cfg.Retries+1, crash, delay)
		s.cfg.sleep(delay)
	}
}

// permanent records a cell's final failure and returns it.
func (s *Supervisor) permanent(key, diagnostic, stack string) *experiments.CellFailure {
	s.count(func(st *Stats) { st.Failed++ })
	s.cfg.Fail(key, diagnostic, stack)
	return &experiments.CellFailure{Key: key, Diagnostic: diagnostic, Value: diagnostic, Stack: stack}
}

// backoff computes the delay before retrying after attempt: base<<n,
// capped at 64x base, plus up to 50% seeded jitter so simultaneous
// crashers (an OOM burst killing many workers) do not retry in
// lockstep.
func (s *Supervisor) backoff(attempt int, jitter *rng.Source) time.Duration {
	d := s.cfg.Backoff
	for i := 0; i < attempt && d < 64*s.cfg.Backoff; i++ {
		d *= 2
	}
	return d + time.Duration(jitter.Intn(int(d/2)+1))
}

// runAttempt spawns one worker for (key, attempt) and returns either
// its response or a non-empty crash description. The request frame is
// written to the worker's stdin and exactly one response frame is read
// from its stdout; anything else — a death by signal, a truncated
// frame, trailing garbage, a response for the wrong key — is a crash.
func (s *Supervisor) runAttempt(key string, attempt int, jitter *rng.Source) (*Response, string) {
	stall := s.cfg.Stall != nil && s.cfg.Stall(key, attempt)
	kill := s.cfg.Kill != nil && s.cfg.Kill(key, attempt)

	var req bytes.Buffer
	if err := WriteFrame(&req, Request{Key: key, Attempt: attempt, Stall: stall}); err != nil {
		return nil, fmt.Sprintf("encoding request: %v", err)
	}
	cmd := s.cfg.NewWorkerCmd(key)
	cmd.Stdin = &req
	var out bytes.Buffer
	cmd.Stdout = &out
	if err := cmd.Start(); err != nil {
		return nil, fmt.Sprintf("worker failed to start: %v", err)
	}

	var timedOut atomic.Bool
	if s.cfg.Timeout > 0 {
		t := time.AfterFunc(s.cfg.Timeout, func() { // synccheck:nondet supervision timing; results unaffected
			timedOut.Store(true)
			_ = cmd.Process.Kill()
		})
		defer t.Stop()
	}
	var killed atomic.Bool
	if kill {
		// The injected SIGKILL lands after a short seeded delay — mid-
		// cell for any real simulation — modeling an OOM kill or node
		// failure. Landing after the worker already answered is
		// harmless: the response was complete, so it counts as a
		// success, not a kill.
		delay := time.Duration(jitter.Intn(int(s.cfg.KillDelayMax) + 1))
		t := time.AfterFunc(delay, func() { // synccheck:nondet chaos injection timing; results unaffected
			killed.Store(true)
			_ = cmd.Process.Kill()
		})
		defer t.Stop()
	}

	waitErr := cmd.Wait()
	var resp Response
	frameErr := ReadFrame(bytes.NewReader(out.Bytes()), &resp)
	if frameErr == nil && resp.Key == key {
		// A complete response outruns any late kill or timeout signal.
		return &resp, ""
	}
	if timedOut.Load() {
		s.count(func(st *Stats) { st.Timeouts++ })
		return nil, fmt.Sprintf("attempt timed out after %v", s.cfg.Timeout)
	}
	if killed.Load() {
		s.count(func(st *Stats) { st.KilledAttempts++; st.Crashes++ })
		return nil, "worker killed (injected chaos)"
	}
	s.count(func(st *Stats) { st.Crashes++ })
	if waitErr != nil {
		return nil, fmt.Sprintf("worker exited abnormally: %v", waitErr)
	}
	if frameErr != nil {
		return nil, fmt.Sprintf("worker protocol error: %v", frameErr)
	}
	return nil, fmt.Sprintf("worker answered for wrong cell %q", resp.Key)
}

// hashKey folds a cell key into a 64-bit seed component (FNV-1a).
func hashKey(key string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// firstLine truncates a multi-line diagnostic for log lines.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
