package farm

import (
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"cmpnurapid/internal/experiments"
	"cmpnurapid/internal/simguard"
)

// TestMain doubles this test binary as a scripted stub worker: when
// FARM_STUB_WORKER names a behaviour, the process speaks one frame
// exchange (or misbehaves in the scripted way) instead of running
// tests. The supervisor under test execs os.Executable() with that
// environment set, so no second binary is needed.
func TestMain(m *testing.M) {
	if mode := os.Getenv("FARM_STUB_WORKER"); mode != "" {
		os.Exit(stubWorker(mode))
	}
	os.Exit(m.Run())
}

func stubWorker(mode string) int {
	var req Request
	if err := ReadFrame(os.Stdin, &req); err != nil {
		return 3
	}
	ok := func() int {
		payload := fmt.Sprintf(`{"cell":%q}`, req.Key)
		if err := WriteFrame(os.Stdout, Response{Key: req.Key, Payload: []byte(payload)}); err != nil {
			return 3
		}
		return 0
	}
	panicWith := func(diag string) int {
		resp := Response{Key: req.Key, Failure: &Failure{Diagnostic: diag, Stack: "goroutine 1 [running]:\nstub"}}
		if err := WriteFrame(os.Stdout, resp); err != nil {
			return 3
		}
		return 0
	}
	switch mode {
	case "ok":
		return ok()
	case "slow-ok":
		// Slow enough that an injected SIGKILL (≤25ms) always lands
		// first; honors the protocol's stall request by hanging.
		if req.Stall {
			time.Sleep(time.Minute)
		}
		time.Sleep(50 * time.Millisecond)
		return ok()
	case "crash":
		os.Exit(7)
	case "crash-then-ok":
		if req.Attempt == 0 {
			os.Exit(7)
		}
		return ok()
	case "panic":
		return panicWith("simguard: deterministic boom")
	case "flaky-panic":
		return panicWith(fmt.Sprintf("simguard: boom on attempt %d", req.Attempt))
	case "garbage":
		fmt.Fprint(os.Stdout, "this is not a frame")
		return 0
	case "truncated":
		var prefix [4]byte
		binary.BigEndian.PutUint32(prefix[:], 1000)
		os.Stdout.Write(prefix[:])
		fmt.Fprint(os.Stdout, `{"key":`)
		return 0
	case "wrong-key":
		if err := WriteFrame(os.Stdout, Response{Key: req.Key + "/other", Payload: []byte(`{}`)}); err != nil {
			return 3
		}
		return 0
	case "hang":
		time.Sleep(time.Minute)
		return 0
	}
	return 3
}

// stubCmd builds a NewWorkerCmd that re-execs this test binary in the
// named stub mode.
func stubCmd(t testing.TB, mode string) func(key string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(key string) *exec.Cmd {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "FARM_STUB_WORKER="+mode)
		return cmd
	}
}

// sink records what the supervisor committed: installed payloads and
// permanent failures.
type sink struct {
	mu sync.Mutex
	// synccheck:guardedby mu
	installs map[string]string
	// synccheck:guardedby mu
	fails map[string]string
}

func newSink() *sink {
	return &sink{installs: map[string]string{}, fails: map[string]string{}}
}

func (s *sink) install(key string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installs[key] = string(payload)
	return nil
}

func (s *sink) fail(key, diagnostic, stack string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fails[key] = diagnostic
}

func testConfig(t *testing.T, mode string, sk *sink) Config {
	t.Helper()
	return Config{
		Seed:         7,
		Backoff:      time.Millisecond,
		NewWorkerCmd: stubCmd(t, mode),
		Install:      sk.install,
		Fail:         sk.fail,
	}
}

func cell(key string) experiments.Cell { return experiments.Cell{Key: key} }

func TestSupervisorSuccess(t *testing.T) {
	sk := newSink()
	sup := New(testConfig(t, "ok", sk))
	if f := sup.Execute(cell("fig7/a")); f != nil {
		t.Fatalf("healthy worker failed: %+v", f)
	}
	if got := sk.installs["fig7/a"]; got != `{"cell":"fig7/a"}` {
		t.Errorf("installed payload %q", got)
	}
	st := sup.Stats()
	if st.Computed != 1 || st.Retries != 0 || st.Failed != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestSupervisorRetriesCrashWithBackoff: a worker that dies on its
// first attempt is retried after a backoff delay drawn from the cell's
// seeded jitter stream, and the retry's result is installed normally.
func TestSupervisorRetriesCrashWithBackoff(t *testing.T) {
	sk := newSink()
	cfg := testConfig(t, "crash-then-ok", sk)
	cfg.Retries = 2
	var slept []time.Duration
	cfg.sleep = func(d time.Duration) { slept = append(slept, d) }
	sup := New(cfg)
	if f := sup.Execute(cell("fig7/a")); f != nil {
		t.Fatalf("crash-then-ok failed permanently: %+v", f)
	}
	if len(slept) != 1 {
		t.Fatalf("recorded %d backoff sleeps, want 1: %v", len(slept), slept)
	}
	if slept[0] < cfg.Backoff || slept[0] > cfg.Backoff+cfg.Backoff/2 {
		t.Errorf("first backoff %v outside [base, base+50%%] of %v", slept[0], cfg.Backoff)
	}
	st := sup.Stats()
	if st.Crashes != 1 || st.Retries != 1 || st.Computed != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestSupervisorBackoffScheduleIsDeterministic: the same (seed, key)
// yields the same backoff delays regardless of when the attempts run.
func TestSupervisorBackoffScheduleIsDeterministic(t *testing.T) {
	schedule := func() []time.Duration {
		sk := newSink()
		cfg := testConfig(t, "crash", sk)
		cfg.Retries = 3
		var slept []time.Duration
		cfg.sleep = func(d time.Duration) { slept = append(slept, d) }
		sup := New(cfg)
		if f := sup.Execute(cell("fig7/a")); f == nil {
			t.Fatal("always-crashing worker succeeded")
		}
		return slept
	}
	a, b := schedule(), schedule()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("backoff schedules differ across runs: %v vs %v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1]/2 {
			t.Errorf("backoff not growing: %v", a)
		}
	}
}

// TestSupervisorCrashExhaustsBudget: a persistently crashing worker
// becomes a permanent CellFailure whose diagnostic records the attempt
// count, and the failure is committed through cfg.Fail.
func TestSupervisorCrashExhaustsBudget(t *testing.T) {
	sk := newSink()
	cfg := testConfig(t, "crash", sk)
	cfg.Retries = 1
	sup := New(cfg)
	f := sup.Execute(cell("fig7/a"))
	if f == nil {
		t.Fatal("always-crashing worker succeeded")
	}
	if !strings.Contains(f.Diagnostic, `gave up after 2 attempt(s)`) ||
		!strings.Contains(f.Diagnostic, "exited abnormally") {
		t.Errorf("diagnostic %q", f.Diagnostic)
	}
	if sk.fails["fig7/a"] != f.Diagnostic {
		t.Errorf("Fail hook got %q, CellFailure says %q", sk.fails["fig7/a"], f.Diagnostic)
	}
	st := sup.Stats()
	if st.Crashes != 2 || st.Retries != 1 || st.Failed != 1 || st.Computed != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestSupervisorZeroRetriesFailsImmediately mirrors the CLI's
// -retries 0 contract: one attempt, no sleeps, immediate permanent
// failure.
func TestSupervisorZeroRetriesFailsImmediately(t *testing.T) {
	sk := newSink()
	cfg := testConfig(t, "crash", sk)
	var slept []time.Duration
	cfg.sleep = func(d time.Duration) { slept = append(slept, d) }
	sup := New(cfg)
	f := sup.Execute(cell("fig7/a"))
	if f == nil || !strings.Contains(f.Diagnostic, "gave up after 1 attempt(s)") {
		t.Fatalf("failure %+v", f)
	}
	if len(slept) != 0 {
		t.Errorf("slept %v with no retry budget", slept)
	}
}

// TestSupervisorDeterministicPanicStopsEarly: a worker that reports the
// same structured failure twice has proven the failure deterministic;
// the supervisor must stop burning budget and surface the worker's own
// diagnostic and stack, exactly as an in-process panic would.
func TestSupervisorDeterministicPanicStopsEarly(t *testing.T) {
	sk := newSink()
	cfg := testConfig(t, "panic", sk)
	cfg.Retries = 5
	sup := New(cfg)
	f := sup.Execute(cell("fig7/a"))
	if f == nil {
		t.Fatal("deterministically panicking cell succeeded")
	}
	if f.Diagnostic != "simguard: deterministic boom" {
		t.Errorf("diagnostic %q, want the worker's own", f.Diagnostic)
	}
	if !strings.Contains(f.Stack, "stub") {
		t.Errorf("worker stack not preserved: %q", f.Stack)
	}
	st := sup.Stats()
	if st.Retries != 1 {
		t.Errorf("took %d retries to prove determinism, want exactly 1: %+v", st.Retries, st)
	}
}

// TestSupervisorFlakyPanicUsesFullBudget: failures with differing
// diagnostics are not provably deterministic, so the whole budget is
// spent before giving up with the latest diagnostic.
func TestSupervisorFlakyPanicUsesFullBudget(t *testing.T) {
	sk := newSink()
	cfg := testConfig(t, "flaky-panic", sk)
	cfg.Retries = 2
	sup := New(cfg)
	f := sup.Execute(cell("fig7/a"))
	if f == nil {
		t.Fatal("flaky-panicking cell succeeded")
	}
	if f.Diagnostic != "simguard: boom on attempt 2" {
		t.Errorf("diagnostic %q, want the final attempt's", f.Diagnostic)
	}
	if st := sup.Stats(); st.Retries != 2 {
		t.Errorf("stats %+v, want the full budget spent", st)
	}
}

// TestSupervisorTimeoutKillsStalledWorker: the stall-then-kill path —
// a hung worker is killed at the per-attempt ceiling and counted as a
// timeout, not a crash.
func TestSupervisorTimeoutKillsStalledWorker(t *testing.T) {
	sk := newSink()
	cfg := testConfig(t, "hang", sk)
	cfg.Timeout = 100 * time.Millisecond
	sup := New(cfg)
	f := sup.Execute(cell("fig7/a"))
	if f == nil || !strings.Contains(f.Diagnostic, "timed out after") {
		t.Fatalf("failure %+v", f)
	}
	if st := sup.Stats(); st.Timeouts != 1 || st.Crashes != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestSupervisorProtocolErrorsAreRetryable: garbage output, a
// truncated frame, and an answer for the wrong cell are all crashes —
// retryable, never silently decoded.
func TestSupervisorProtocolErrorsAreRetryable(t *testing.T) {
	for mode, wantSub := range map[string]string{
		"garbage":   "protocol error",
		"truncated": "protocol error",
		"wrong-key": "wrong cell",
	} {
		t.Run(mode, func(t *testing.T) {
			sk := newSink()
			sup := New(testConfig(t, mode, sk))
			f := sup.Execute(cell("fig7/a"))
			if f == nil {
				t.Fatalf("%s worker succeeded", mode)
			}
			if !strings.Contains(f.Diagnostic, wantSub) {
				t.Errorf("diagnostic %q does not mention %q", f.Diagnostic, wantSub)
			}
			if len(sk.installs) != 0 {
				t.Errorf("defective response installed: %v", sk.installs)
			}
		})
	}
}

// TestSupervisorStoreHitSkipsWorker: a cell already in the store is
// installed from disk; the worker command is never spawned (proven by
// wiring a crashing worker behind a warm store).
func TestSupervisorStoreHitSkipsWorker(t *testing.T) {
	dir := t.TempDir()
	store := mustStore(t, dir, "d", "v1")

	sk1 := newSink()
	cfg1 := testConfig(t, "ok", sk1)
	cfg1.Store = store
	if f := New(cfg1).Execute(cell("fig7/a")); f != nil {
		t.Fatalf("priming run failed: %+v", f)
	}

	sk2 := newSink()
	cfg2 := testConfig(t, "crash", sk2)
	cfg2.Store = mustStore(t, dir, "d", "v1")
	sup := New(cfg2)
	if f := sup.Execute(cell("fig7/a")); f != nil {
		t.Fatalf("store-backed run failed (worker must not have been needed): %+v", f)
	}
	if sk2.installs["fig7/a"] != sk1.installs["fig7/a"] {
		t.Errorf("store served %q, computed %q", sk2.installs["fig7/a"], sk1.installs["fig7/a"])
	}
	if st := sup.Stats(); st.StoreHits != 1 || st.Computed != 0 || st.Crashes != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestSupervisorCorruptStoreEntryRecomputed: a defective entry is
// rejected, counted, and the cell recomputed — never served.
func TestSupervisorCorruptStoreEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	store := mustStore(t, dir, "d", "v1")
	if err := store.Put("fig7/a", []byte(`{"cell":"stale"}`)); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(store.path("fig7/a"))
	if err := os.WriteFile(store.path("fig7/a"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var logBuf strings.Builder
	sk := newSink()
	cfg := testConfig(t, "ok", sk)
	cfg.Store = store
	cfg.Log = &logBuf
	sup := New(cfg)
	if f := sup.Execute(cell("fig7/a")); f != nil {
		t.Fatalf("recompute failed: %+v", f)
	}
	if got := sk.installs["fig7/a"]; got != `{"cell":"fig7/a"}` {
		t.Errorf("corrupt entry leaked into the install: %q", got)
	}
	if st := sup.Stats(); st.CorruptEntries != 1 || st.Computed != 1 {
		t.Errorf("stats %+v", st)
	}
	if !strings.Contains(logBuf.String(), "rejected") {
		t.Errorf("rejection not logged: %q", logBuf.String())
	}
	if payload, entErr := store.Get("fig7/a"); entErr != nil || string(payload) != `{"cell":"fig7/a"}` {
		t.Errorf("store not repaired after recompute: %q, %v", payload, entErr)
	}
}

// chaosKeys is the plan the chaos sweep supervises.
func chaosKeys() []string {
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("fig7/design-%02d", i)
	}
	return keys
}

// runChaos executes the full plan under one injector through the real
// scheduler pool and returns the supervisor's stats plus any failures.
func runChaos(t *testing.T, inj simguard.FarmInjector, dir string, retries int) (Stats, []experiments.CellFailure, *sink) {
	t.Helper()
	sk := newSink()
	cfg := testConfig(t, "slow-ok", sk)
	cfg.Retries = retries
	cfg.Timeout = 2 * time.Second
	cfg.Kill = inj.Kill
	cfg.Stall = inj.Stall
	cfg.sleep = func(time.Duration) {} // chaos retries need no real backoff delay
	if dir != "" {
		cfg.Store = mustStore(t, dir, "d", "v1")
	}
	sup := New(cfg)
	var cells []experiments.Cell
	for _, k := range chaosKeys() {
		cells = append(cells, cell(k))
	}
	failures := experiments.ExecuteCellsOn(sup, cells, 4, false, nil)
	return sup.Stats(), failures, sk
}

// TestChaosSweep drives the simguard farm-injector catalog through the
// supervisor and the real scheduler pool: every injected fault must be
// absorbed (killed and stalled cells retried to success), the final
// installs must be byte-identical to the fault-free control, the store
// must hold only complete, verified entries, and the whole outcome must
// be deterministic run-to-run.
func TestChaosSweep(t *testing.T) {
	control, controlFailures, controlSink := runChaos(t, simguard.FarmInjector{Name: "none"}, "", 3)
	if len(controlFailures) != 0 || control.Computed != len(chaosKeys()) {
		t.Fatalf("control run unhealthy: %+v, failures %+v", control, controlFailures)
	}
	for _, inj := range simguard.FarmInjectors(7) {
		inj := inj
		t.Run(inj.Name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			st, failures, sk := runChaos(t, inj, dir, 3)
			if len(failures) != 0 {
				t.Fatalf("injector %s caused permanent failures: %+v", inj.Name, failures)
			}
			if st.Computed+st.StoreHits != len(chaosKeys()) {
				t.Errorf("not every cell completed: %+v", st)
			}
			// Every faulted attempt was retried: the injectors fault only
			// first attempts, so retries must exactly cover them.
			if st.Retries != st.KilledAttempts+st.Timeouts {
				t.Errorf("retries %d do not cover kills %d + timeouts %d",
					st.Retries, st.KilledAttempts, st.Timeouts)
			}
			if inj.Kill != nil && st.KilledAttempts == 0 {
				t.Errorf("kill injector landed no kills: %+v", st)
			}
			if inj.Stall != nil && st.Timeouts == 0 {
				t.Errorf("stall injector drove no timeouts: %+v", st)
			}
			// Installs are byte-identical to the fault-free control.
			if !reflect.DeepEqual(sk.installs, controlSink.installs) {
				t.Errorf("chaos changed the installed results:\n%v\nvs control\n%v", sk.installs, controlSink.installs)
			}
			// The store holds a complete, checksum-verified entry for
			// every cell and no temp droppings.
			store := mustStore(t, dir, "d", "v1")
			for _, k := range chaosKeys() {
				if payload, entErr := store.Get(k); entErr != nil || payload == nil {
					t.Errorf("store entry for %s incomplete after chaos: %v", k, entErr)
				}
			}
			if tmps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*")); len(tmps) != 0 {
				t.Errorf("partial writes left in store: %v", tmps)
			}
			// Determinism: the same injector over the same plan produces
			// the same fault and completion counts.
			st2, failures2, _ := runChaos(t, inj, t.TempDir(), 3)
			if len(failures2) != 0 || st2 != st {
				t.Errorf("chaos outcome not deterministic: %+v vs %+v", st2, st)
			}
		})
	}
}

// TestChaosFailureReportIsDeterministic: with the retry budget at zero
// and every first attempt killed, the run fails — and the failure
// report (keys and diagnostics) is identical run to run.
func TestChaosFailureReportIsDeterministic(t *testing.T) {
	report := func() []string {
		_, failures, _ := runChaos(t, simguard.FarmInjector{
			Name: "kill-all", Kill: simguard.WorkerKill(7, 1),
		}, "", 0)
		var lines []string
		for _, f := range failures {
			lines = append(lines, f.Key+": "+f.Diagnostic)
		}
		sort.Strings(lines)
		return lines
	}
	a, b := report(), report()
	if len(a) != len(chaosKeys()) {
		t.Fatalf("kill-all with no retries left %d/%d cells failed", len(a), len(chaosKeys()))
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("failure report not deterministic:\n%v\nvs\n%v", a, b)
	}
	for _, line := range a {
		if !strings.Contains(line, "gave up after 1 attempt(s)") {
			t.Errorf("unexpected failure line %q", line)
		}
	}
}
