// Package farm is the crash-resilient experiment farm
// (docs/ROBUSTNESS.md): a coordinator/worker split in which each
// planned (design, workload) cell can execute in an isolated worker
// subprocess, supervised with per-attempt wall-clock timeouts and
// bounded seeded-backoff retries, over a durable content-checksummed
// result store that makes re-runs of interrupted sweeps incremental.
// The Supervisor implements experiments.CellExecutor, so the existing
// scheduler, fail-fast drain, and failure reporting work unchanged —
// and stdout stays byte-identical to an in-process run.
package farm

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// The coordinator and worker speak length-prefixed JSON frames: a
// 4-byte big-endian payload length followed by that many bytes of
// JSON. The coordinator writes exactly one Request on the worker's
// stdin; the worker writes exactly one Response on stdout and exits.
// Length prefixes make truncation detectable (a SIGKILLed worker's
// half-written frame never parses as a success), and the one-shot
// shape means there is no connection state to resynchronize after a
// crash.

// maxFrame bounds a frame's payload so a corrupt length prefix cannot
// make the coordinator allocate unbounded memory. Cell payloads are a
// few KB; 1 GiB is comfortably above any legitimate frame.
const maxFrame = 1 << 30

// Request is the coordinator's frame to a worker: which cell to run
// and, for the chaos harness, whether to stall instead of answering
// (driving the coordinator's stall-then-kill timeout path). Attempt is
// informational — workers behave identically on every attempt; the
// chaos test worker uses it to script attempt-dependent faults.
type Request struct {
	Key     string `json:"key"`
	Attempt int    `json:"attempt"`
	Stall   bool   `json:"stall,omitempty"`
}

// Failure is a worker-reported deterministic cell failure: the cell's
// code panicked (watchdog abort, invariant violation) rather than the
// worker crashing. The diagnostic is the same string an in-process run
// would report for the cell.
type Failure struct {
	Diagnostic string `json:"diagnostic"`
	Stack      string `json:"stack,omitempty"`
}

// Response is the worker's single reply: a serialized result payload
// (experiments.ExportPayload) on success, or a structured Failure.
type Response struct {
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Failure *Failure        `json:"failure,omitempty"`
}

// WriteFrame writes one length-prefixed JSON frame.
func WriteFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("farm: encoding frame: %w", err)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(data)))
	if _, err := w.Write(prefix[:]); err != nil {
		return fmt.Errorf("farm: writing frame: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("farm: writing frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed JSON frame into v. A short read
// — the torso of a frame from a killed worker — is an error, never a
// silent partial decode.
func ReadFrame(r io.Reader, v any) error {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return fmt.Errorf("farm: reading frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > maxFrame {
		return fmt.Errorf("farm: frame length %d exceeds limit %d", n, maxFrame)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("farm: reading %d-byte frame: %w", n, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("farm: decoding frame: %w", err)
	}
	return nil
}
