package farm

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := Request{Key: "fig7/CMP-SNUCA/L2-8MB", Attempt: 2, Stall: true}
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := ReadFrame(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Errorf("round trip changed the request: %+v != %+v", got, req)
	}

	buf.Reset()
	resp := Response{
		Key:     "fig7/x",
		Payload: json.RawMessage(`{"a":1}`),
		Failure: &Failure{Diagnostic: "simguard: boom", Stack: "goroutine 1"},
	}
	if err := WriteFrame(&buf, resp); err != nil {
		t.Fatal(err)
	}
	var gotR Response
	if err := ReadFrame(&buf, &gotR); err != nil {
		t.Fatal(err)
	}
	if gotR.Key != resp.Key || string(gotR.Payload) != string(resp.Payload) ||
		gotR.Failure == nil || *gotR.Failure != *resp.Failure {
		t.Errorf("round trip changed the response: %+v != %+v", gotR, resp)
	}
}

// TestTruncatedFrameIsAnError: the torso of a frame from a killed
// worker must never decode as a success.
func TestTruncatedFrameIsAnError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Request{Key: "k"}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		var got Request
		if err := ReadFrame(bytes.NewReader(full[:cut]), &got); err == nil {
			t.Errorf("frame truncated to %d/%d bytes decoded cleanly", cut, len(full))
		}
	}
}

// TestOversizedFrameRejected: a corrupt length prefix must not drive an
// unbounded allocation.
func TestOversizedFrameRejected(t *testing.T) {
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], maxFrame+1)
	var got Request
	err := ReadFrame(bytes.NewReader(prefix[:]), &got)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame not rejected: %v", err)
	}
}

// TestCorruptFrameBodyRejected: a correctly-sized but non-JSON body is
// a decode error, not a zero-valued success.
func TestCorruptFrameBodyRejected(t *testing.T) {
	body := []byte("not json at all")
	var buf bytes.Buffer
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	buf.Write(prefix[:])
	buf.Write(body)
	var got Response
	if err := ReadFrame(&buf, &got); err == nil || !strings.Contains(err.Error(), "decoding") {
		t.Errorf("corrupt body not rejected: %v", err)
	}
}
