package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
)

// Store is the durable result store (docs/ROBUSTNESS.md): one file per
// completed cell, keyed by (cell key, config digest, code version),
// with a SHA-256 integrity checksum over the payload. Writes are
// atomic — an O_EXCL temp file renamed into place — so a store shared
// by concurrent farm runs, or hit by a coordinator crash mid-write,
// never contains a partial entry under a final name. Reads trust
// nothing: a truncated, bit-flipped, mis-keyed, or stale-code-version
// entry is rejected with a structured diagnostic and the cell is
// recomputed.
type Store struct {
	dir string
	// digest is the run-configuration digest (experiments.RunConfig
	// .Digest); it is part of the entry filename, so two scales never
	// contend for the same entry.
	digest string
	// version is the code version baked into entries; an entry written
	// by different code is stale and recomputed.
	version string
}

// storeEntry is the on-disk shape of one cached cell.
type storeEntry struct {
	Key     string `json:"key"`
	Digest  string `json:"digest"`
	Version string `json:"version"`
	// SHA256 is the hex checksum of the exact Payload bytes.
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// EntryError is a structured store-entry rejection: which entry, why,
// and where on disk. The supervisor logs it and recomputes the cell;
// a rejected entry is never served.
type EntryError struct {
	Key    string
	Path   string
	Reason string
}

func (e *EntryError) Error() string {
	return fmt.Sprintf("farm: store entry for %q rejected (%s): %s", e.Key, e.Path, e.Reason)
}

// OpenStore opens (creating if needed) a store rooted at dir for the
// given config digest and code version.
func OpenStore(dir, digest, version string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("farm: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: creating store: %w", err)
	}
	return &Store{dir: dir, digest: digest, version: version}, nil
}

// DefaultStoreDir returns the per-user default store location
// (~/.cache/cmpnurapid/cells on Linux), or an error when the
// environment defines no cache home.
func DefaultStoreDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("farm: no user cache dir: %w", err)
	}
	return filepath.Join(base, "cmpnurapid", "cells"), nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a cell key to its entry file. The name hashes (key,
// digest) so arbitrary cell keys (slashes and all) become flat, fixed
// -length filenames, and entries from different run scales coexist.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key + "\x00" + s.digest))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:16])+".json")
}

// Get returns the stored payload for key, or (nil, nil) on a clean
// miss. Any defect — unreadable file, truncated or unparsable JSON,
// checksum mismatch, wrong key, wrong config digest, stale code
// version — returns a *EntryError and the entry is deleted so the
// recompute's Put starts clean.
func (s *Store) Get(key string) ([]byte, *EntryError) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, s.reject(key, path, fmt.Sprintf("unreadable: %v", err))
	}
	var ent storeEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil, s.reject(key, path, fmt.Sprintf("corrupt: %v", err))
	}
	if ent.Key != key {
		return nil, s.reject(key, path, fmt.Sprintf("keyed for %q", ent.Key))
	}
	if ent.Digest != s.digest {
		return nil, s.reject(key, path, fmt.Sprintf("config digest %q, want %q", ent.Digest, s.digest))
	}
	if ent.Version != s.version {
		return nil, s.reject(key, path, fmt.Sprintf("stale code version %q, want %q", ent.Version, s.version))
	}
	sum := sha256.Sum256(ent.Payload)
	if got := hex.EncodeToString(sum[:]); got != ent.SHA256 {
		return nil, s.reject(key, path, fmt.Sprintf("payload checksum %s does not match recorded %s", got, ent.SHA256))
	}
	return ent.Payload, nil
}

// reject builds the structured rejection and removes the bad entry
// (best-effort: a concurrent run may already have replaced it).
func (s *Store) reject(key, path, reason string) *EntryError {
	_ = os.Remove(path)
	return &EntryError{Key: key, Path: path, Reason: reason}
}

// Put durably records a completed cell's payload. The entry becomes
// visible only via rename, so concurrent readers (and other farm runs
// sharing the directory) see either nothing or a complete entry —
// never a partial write.
func (s *Store) Put(key string, payload []byte) error {
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(storeEntry{
		Key:     key,
		Digest:  s.digest,
		Version: s.version,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("farm: encoding store entry for %q: %w", key, err)
	}
	// CreateTemp opens with O_EXCL, so two concurrent writers get two
	// distinct temp files; whichever renames last wins with a complete
	// entry either way.
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("farm: creating store temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("farm: writing store entry for %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("farm: closing store entry for %q: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("farm: publishing store entry for %q: %w", key, err)
	}
	return nil
}

// CodeVersion derives the code-version component of store keys from
// the running binary's build info: the VCS revision (plus a -dirty
// marker) when the binary was built from a checkout, else the main
// module version. Binaries without build info (or uncommitted test
// builds) share the conservative "unversioned" bucket — still distinct
// from any released revision.
func CodeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unversioned"
	}
	var rev, dirty string
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		return rev + dirty
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "unversioned"
}
