package farm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustStore(t *testing.T, dir, digest, version string) *Store {
	t.Helper()
	s, err := OpenStore(dir, digest, version)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := mustStore(t, t.TempDir(), "w1-i1-s1-mc0", "v1")
	payload := []byte(`{"cell":"fig7/a","v":[1,2,3]}`)
	if got, entErr := s.Get("fig7/a"); got != nil || entErr != nil {
		t.Fatalf("empty store Get = %q, %v; want clean miss", got, entErr)
	}
	if err := s.Put("fig7/a", payload); err != nil {
		t.Fatal(err)
	}
	got, entErr := s.Get("fig7/a")
	if entErr != nil {
		t.Fatal(entErr)
	}
	if string(got) != string(payload) {
		t.Errorf("Get returned %q, want %q", got, payload)
	}
}

// corrupt each stored entry a different way and check every defect is
// rejected with a structured diagnostic, the bad entry is deleted, and
// the next lookup is a clean miss (so the recompute's Put starts
// fresh).
func TestStoreRejectsDefectiveEntries(t *testing.T) {
	cases := []struct {
		name    string
		mangle  func(t *testing.T, path string)
		wantSub string
	}{
		{
			name: "truncated",
			mangle: func(t *testing.T, path string) {
				data, _ := os.ReadFile(path)
				if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSub: "corrupt",
		},
		{
			name: "bit flip in payload",
			mangle: func(t *testing.T, path string) {
				data, _ := os.ReadFile(path)
				// Flip a digit inside the JSON payload without breaking
				// the JSON shape: integrity must come from the checksum,
				// not from parse failures.
				flipped := strings.Replace(string(data), `[1,2,3]`, `[1,2,4]`, 1)
				if flipped == string(data) {
					t.Fatal("payload marker not found")
				}
				if err := os.WriteFile(path, []byte(flipped), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSub: "checksum",
		},
		{
			name: "empty file",
			mangle: func(t *testing.T, path string) {
				if err := os.WriteFile(path, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSub: "corrupt",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustStore(t, t.TempDir(), "d", "v1")
			if err := s.Put("fig7/a", []byte(`{"v":[1,2,3]}`)); err != nil {
				t.Fatal(err)
			}
			tc.mangle(t, s.path("fig7/a"))
			got, entErr := s.Get("fig7/a")
			if got != nil || entErr == nil {
				t.Fatalf("defective entry served: payload %q, err %v", got, entErr)
			}
			if !strings.Contains(entErr.Error(), tc.wantSub) {
				t.Errorf("rejection %q does not mention %q", entErr.Error(), tc.wantSub)
			}
			if again, entErr2 := s.Get("fig7/a"); again != nil || entErr2 != nil {
				t.Errorf("defective entry not deleted: second Get = %q, %v", again, entErr2)
			}
		})
	}
}

// TestStoreRejectsStaleCodeVersion: an entry written by a different
// code revision is stale — detected, reported, and recomputed rather
// than served.
func TestStoreRejectsStaleCodeVersion(t *testing.T) {
	dir := t.TempDir()
	old := mustStore(t, dir, "d", "rev-old")
	if err := old.Put("fig7/a", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	cur := mustStore(t, dir, "d", "rev-new")
	got, entErr := cur.Get("fig7/a")
	if got != nil || entErr == nil {
		t.Fatalf("stale-version entry served: %q, %v", got, entErr)
	}
	if !strings.Contains(entErr.Error(), "stale code version") {
		t.Errorf("rejection %q does not name the stale version", entErr.Error())
	}
}

// TestStoreRejectsMiskeyedEntry: a file sitting at key B's path but
// recording key A (filesystem-level tampering or a copy gone wrong) is
// rejected by the in-content key check.
func TestStoreRejectsMiskeyedEntry(t *testing.T) {
	s := mustStore(t, t.TempDir(), "d", "v1")
	if err := s.Put("fig7/a", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path("fig7/a"), s.path("fig7/b")); err != nil {
		t.Fatal(err)
	}
	got, entErr := s.Get("fig7/b")
	if got != nil || entErr == nil {
		t.Fatalf("mis-keyed entry served: %q, %v", got, entErr)
	}
	if !strings.Contains(entErr.Error(), `keyed for "fig7/a"`) {
		t.Errorf("rejection %q does not name the actual key", entErr.Error())
	}
}

// TestStoreDigestsCoexist: the digest is part of the filename, so two
// run scales share a directory without contending for entries.
func TestStoreDigestsCoexist(t *testing.T) {
	dir := t.TempDir()
	small := mustStore(t, dir, "w1-i1-s1-mc0", "v1")
	large := mustStore(t, dir, "w2-i2-s1-mc0", "v1")
	if err := small.Put("fig7/a", []byte(`{"scale":"small"}`)); err != nil {
		t.Fatal(err)
	}
	if err := large.Put("fig7/a", []byte(`{"scale":"large"}`)); err != nil {
		t.Fatal(err)
	}
	gotS, errS := small.Get("fig7/a")
	gotL, errL := large.Get("fig7/a")
	if errS != nil || errL != nil {
		t.Fatal(errS, errL)
	}
	if string(gotS) != `{"scale":"small"}` || string(gotL) != `{"scale":"large"}` {
		t.Errorf("scales interfered: small %q, large %q", gotS, gotL)
	}
}

// TestStoreConcurrentWritersNeverInterleave: two farm runs sharing a
// store directory hammer the same keys; every surviving entry must be
// complete and internally consistent (atomic rename, O_EXCL temps),
// and no temp files may remain.
func TestStoreConcurrentWritersNeverInterleave(t *testing.T) {
	dir := t.TempDir()
	a := mustStore(t, dir, "d", "v1")
	b := mustStore(t, dir, "d", "v1")
	const keys, rounds = 8, 20
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(s *Store, w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for k := 0; k < keys; k++ {
						key := fmt.Sprintf("cell/%d", k)
						payload := []byte(fmt.Sprintf(`{"key":"cell/%d","round":%d,"writer":%d}`, k, r, w))
						if err := s.Put(key, payload); err != nil {
							t.Error(err)
							return
						}
						if got, entErr := s.Get(key); entErr != nil {
							t.Errorf("reader saw a defective entry mid-write: %v", entErr)
							return
						} else if got == nil {
							t.Error("reader saw a miss while writers were active")
							return
						}
					}
				}
			}(s, w)
		}
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("cell/%d", k)
		got, entErr := a.Get(key)
		if entErr != nil || got == nil {
			t.Fatalf("final entry for %s defective: %v", key, entErr)
		}
		var decoded struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(got, &decoded); err != nil || decoded.Key != key {
			t.Errorf("final entry for %s interleaved or corrupt: %q (err %v)", key, got, err)
		}
	}
	tmps, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil || len(tmps) != 0 {
		t.Errorf("temp files left behind: %v (err %v)", tmps, err)
	}
}

func TestCodeVersionIsNonEmpty(t *testing.T) {
	if CodeVersion() == "" {
		t.Error("CodeVersion returned an empty string")
	}
}
