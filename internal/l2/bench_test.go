package l2

import (
	"testing"

	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
)

func BenchmarkSharedAccess(b *testing.B) {
	b.ReportAllocs()
	s := NewUniformShared()
	r := rng.New(1)
	now := memsys.Cycle(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(now, r.Intn(4), memsys.Addr(r.Intn(1<<16)*128), r.Bool(0.3))
		now += 10
	}
}

func BenchmarkSNUCAAccess(b *testing.B) {
	b.ReportAllocs()
	s := NewSNUCA()
	r := rng.New(1)
	now := memsys.Cycle(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(now, r.Intn(4), memsys.Addr(r.Intn(1<<16)*128), r.Bool(0.3))
		now += 10
	}
}

func BenchmarkPrivateAccess(b *testing.B) {
	b.ReportAllocs()
	p := NewPrivate()
	r := rng.New(1)
	now := memsys.Cycle(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core := r.Intn(4)
		var addr memsys.Addr
		if r.Bool(0.7) {
			addr = memsys.Addr(0x100000*(core+1) + r.Intn(8192)*128)
		} else {
			addr = memsys.Addr(0x800000 + r.Intn(1024)*128)
		}
		p.Access(now, core, addr, r.Bool(0.3))
		now += 10
	}
}
