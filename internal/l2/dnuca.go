package l2

import (
	"fmt"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/cache"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// DNUCA models CMP-DNUCA from [6]: a banked shared cache where blocks
// *migrate* between banks toward their requesters (no replication —
// one copy per block, like SNUCA). The paper cites [6]'s negative
// result — "realistic CMP-DNUCA [performs] worse than CMP-SNUCA" and
// "migration is ineffective in the presence of sharing because each
// sharer pulls the block toward it, leaving the block in the middle,
// far away from all the sharers" — and this model lets the repository
// demonstrate both effects:
//
//   - Migration is bankset-restricted, as in [6]: a block may only
//     live in the banks of its address's bankset (half the banks
//     here), so — unlike CMP-NuRAPID's distance associativity — a core
//     can never gather all its hot blocks in its closest bank.
//   - A lookup *searches* the bankset: banks are probed in the
//     requester's preference order, each wrong probe costing a full
//     bank round-trip (the incremental search that makes realistic
//     DNUCA slow; the requester cannot know where migration left the
//     block).
//   - A hit in a non-preferred bank migrates the block toward the
//     requester within its bankset, swapping with a victim when the
//     target bank is full. Sharers pulling in different directions
//     bounce the block back and forth.
type DNUCA struct {
	banks      []*cache.Array[sharedPayload]
	ports      []bus.Port
	lat        [topo.NumCores][topo.NumDGroups]memsys.Cycles
	memLatency memsys.Cycles
	stats      *memsys.L2Stats
	l1inv      func(core int, addr memsys.Addr)
	// Migrations counts inter-bank block moves.
	Migrations uint64
}

// NewDNUCA builds the paper-scale configuration: the SNUCA geometry
// plus migration and incremental search.
func NewDNUCA() *DNUCA {
	l := topo.Derive()
	return NewDNUCAWith(topo.DGroupBytes, topo.PrivateAssoc, topo.BlockBytes,
		l.DGroupData, SNUCANetOverhead, 300)
}

// NewDNUCAWith builds a DNUCA with explicit geometry and timing.
func NewDNUCAWith(bankBytes memsys.Bytes, ways int, blockBytes memsys.Bytes, dist [topo.NumCores][topo.NumDGroups]memsys.Cycles, netOverhead, memLatency memsys.Cycles) *DNUCA {
	d := &DNUCA{
		ports:      make([]bus.Port, topo.NumDGroups),
		memLatency: memLatency,
		stats:      memsys.NewL2Stats(),
	}
	for c := 0; c < topo.NumCores; c++ {
		for b := 0; b < topo.NumDGroups; b++ {
			d.lat[c][b] = dist[c][b] + netOverhead
		}
	}
	for b := 0; b < topo.NumDGroups; b++ {
		d.banks = append(d.banks, cache.NewArray[sharedPayload](
			cache.GeometryFor(bankBytes, ways, blockBytes)))
	}
	return d
}

// Name implements memsys.L2.
func (d *DNUCA) Name() string { return "non-uniform-shared-dynamic" }

// Stats implements memsys.L2.
func (d *DNUCA) Stats() *memsys.L2Stats { return d.stats }

// SetL1Invalidate implements memsys.L1Invalidator.
func (d *DNUCA) SetL1Invalidate(fn func(core int, addr memsys.Addr)) { d.l1inv = fn }

func (d *DNUCA) blockBytes() memsys.Bytes { return d.banks[0].Geometry().BlockBytes }

// bankset returns the banks addr may live in, ordered by the
// requester's preference. With four banks there are two banksets —
// diagonal pairs {a,d} and {b,c} — so every core has one bankset whose
// nearest member is its closest bank and one whose members are both a
// middle-distance hop away.
func (d *DNUCA) bankset(core int, addr memsys.Addr) [2]int {
	bit := int(uint64(addr)>>uint(log2i(int(d.blockBytes())))) & 1
	var set [2]int
	if bit == 0 {
		set = [2]int{0, 3} // a, d
	} else {
		set = [2]int{1, 2} // b, c
	}
	if d.lat[core][set[1]] < d.lat[core][set[0]] {
		set[0], set[1] = set[1], set[0]
	}
	return set
}

func log2i(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// BankOf returns the bank currently holding addr, or -1 (exposed for
// tests and the migration analysis).
func (d *DNUCA) BankOf(addr memsys.Addr) int {
	addr = addr.BlockAddr(d.blockBytes())
	for b, arr := range d.banks {
		if arr.Probe(addr) != nil {
			return b
		}
	}
	return -1
}

// LineState implements memsys.LineStateProber for stall diagnostics:
// residency plus the bank currently holding the block.
func (d *DNUCA) LineState(core int, addr memsys.Addr) string {
	if b := d.BankOf(addr); b >= 0 {
		return fmt.Sprintf("resident(bank%d)", b)
	}
	return "absent"
}

// Access implements memsys.L2: incremental search of the bankset in
// the requester's preference order, migration toward the requester on
// a hit in the less-preferred bank.
//
// hotpath:root
func (d *DNUCA) Access(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Result {
	addr = addr.BlockAddr(d.blockBytes())
	set := d.bankset(core, addr)
	var lat memsys.Cycles
	for i, b := range set {
		if l := d.banks[b].Probe(addr); l != nil {
			d.banks[b].Touch(l)
			start := d.ports[b].Acquire(now.Add(lat), snucaSlotCycles)
			lat += start.Sub(now.Add(lat)) + d.lat[core][b]
			closest := b == topo.Closest(core)
			if i > 0 {
				d.migrate(addr, b, set[0])
			}
			res := memsys.Result{Latency: lat, Category: memsys.Hit, DGroup: b,
				ClosestDGroup: closest}
			d.stats.RecordAccess(res)
			return res
		}
		// A wrong probe costs a full round to that bank: the requester
		// cannot know where migration left the block.
		lat += d.lat[core][b]
	}

	// Miss: place in the bankset's bank nearest the requester.
	d.stats.OffChipMisses++
	lat += d.memLatency
	d.install(addr, set[0])
	res := memsys.Result{Latency: lat, Category: memsys.CapacityMiss, DGroup: -1}
	d.stats.RecordAccess(res)
	_ = write
	return res
}

// migrate moves addr from bank `from` to bank `to` within its bankset,
// swapping with a victim when the target is full.
func (d *DNUCA) migrate(addr memsys.Addr, from, to int) {
	if to == from {
		return
	}
	src := d.banks[from].Probe(addr)
	if src == nil {
		return
	}
	d.banks[from].Invalidate(src)
	// Displaced victim (if any) moves to the vacated slot in `from` —
	// the swap that keeps occupancy constant.
	v := d.banks[to].Victim(addr)
	if v.Valid {
		displaced := d.banks[to].AddrOf(v)
		d.banks[to].Invalidate(v)
		fv := d.banks[from].Victim(displaced)
		if fv.Valid {
			// Conflict in the vacated set: evict outright (inclusion).
			d.evict(d.banks[from].AddrOf(fv))
			d.banks[from].Invalidate(fv)
		}
		d.banks[from].Install(fv, displaced, sharedPayload{})
	}
	nv := d.banks[to].Victim(addr)
	if nv.Valid {
		d.evict(d.banks[to].AddrOf(nv))
		d.banks[to].Invalidate(nv)
	}
	d.banks[to].Install(nv, addr, sharedPayload{})
	d.Migrations++
}

// install places addr into bank b, evicting as needed.
func (d *DNUCA) install(addr memsys.Addr, b int) {
	v := d.banks[b].Victim(addr)
	if v.Valid {
		d.evict(d.banks[b].AddrOf(v))
	}
	d.banks[b].Install(v, addr, sharedPayload{})
}

// evict preserves inclusion for a dying block.
func (d *DNUCA) evict(addr memsys.Addr) {
	if d.l1inv != nil {
		for c := 0; c < topo.NumCores; c++ {
			d.l1inv(c, addr)
		}
	}
}

// CheckInvariants verifies the single-copy property: no block appears
// in two banks.
func (d *DNUCA) CheckInvariants() {
	seen := map[memsys.Addr]int{}
	for b, arr := range d.banks {
		arr.ForEach(func(_ int, l *cache.Line[sharedPayload]) {
			a := arr.AddrOf(l)
			if prev, dup := seen[a]; dup {
				panic(fmt.Sprintf("l2: DNUCA block %#x duplicated in banks %d and %d", a, prev, b))
			}
			seen[a] = b
		})
	}
}
