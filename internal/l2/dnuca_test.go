package l2

import (
	"testing"

	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
	"cmpnurapid/internal/topo"
)

func smallDNUCA() *DNUCA {
	var dist [topo.NumCores][topo.NumDGroups]memsys.Cycles
	for c := 0; c < topo.NumCores; c++ {
		for g := 0; g < topo.NumDGroups; g++ {
			dist[c][g] = memsys.CyclesOf(2 + 7*topo.Distance(c, g))
		}
	}
	return NewDNUCAWith(4<<10, 4, 64, dist, 10, 300)
}

func TestDNUCAMissPlacesInBanksetNearestBank(t *testing.T) {
	d := smallDNUCA()
	a := memsys.Addr(0x1000)
	r := d.Access(0, 2, a, false)
	if r.Category != memsys.CapacityMiss {
		t.Fatalf("cold: %v", r.Category)
	}
	set := d.bankset(2, a)
	if got := d.BankOf(a); got != set[0] {
		t.Errorf("block placed in bank %d, want the bankset's nearest %d", got, set[0])
	}
	d.CheckInvariants()
}

// TestDNUCABanksetRestriction is the structural limitation [6]'s
// design carries and CMP-NuRAPID removes: for every core, one of the
// two banksets has no member in the core's closest bank, so those
// blocks can never be gathered next to the core.
func TestDNUCABanksetRestriction(t *testing.T) {
	d := smallDNUCA()
	for core := 0; core < topo.NumCores; core++ {
		withClosest := 0
		for bit := 0; bit < 2; bit++ {
			a := memsys.Addr(bit * 64)
			set := d.bankset(core, a)
			if set[0] == topo.Closest(core) || set[1] == topo.Closest(core) {
				withClosest++
			}
		}
		if withClosest != 1 {
			t.Errorf("core %d: %d banksets include its closest bank, want exactly 1", core, withClosest)
		}
	}
}

func TestDNUCAMigrationTowardRequester(t *testing.T) {
	d := smallDNUCA()
	a := memsys.Addr(0x1000) // bankset {a, d}
	d.Access(0, 0, a, false) // placed in a (P0's nearest in the set)
	// P3 reads: the block migrates to d (P3's nearest in the set).
	d.Access(100, 3, a, false)
	d.Access(200, 3, a, false)
	set := d.bankset(3, a)
	if got := d.BankOf(a); got != set[0] {
		t.Errorf("after P3 reads, block in bank %d, want %d", got, set[0])
	}
	if d.Migrations == 0 {
		t.Error("no migrations recorded")
	}
	d.CheckInvariants()
}

func TestDNUCASingleCopy(t *testing.T) {
	d := smallDNUCA()
	a := memsys.Addr(0x1000)
	for c := 0; c < 4; c++ {
		d.Access(memsys.Cycle(c*100), c, a, false)
	}
	copies := 0
	for b := 0; b < topo.NumDGroups; b++ {
		if d.banks[b].Probe(a) != nil {
			copies++
		}
	}
	if copies != 1 {
		t.Errorf("%d copies, want 1 (DNUCA does not replicate)", copies)
	}
	d.CheckInvariants()
}

// TestDNUCASharersPullBlockAround is [6]'s negative result the paper
// leans on: with multiple sharers pulling, the block keeps migrating
// and no sharer gets stable fast access.
func TestDNUCASharersPullBlockAround(t *testing.T) {
	d := smallDNUCA()
	a := memsys.Addr(0x1000)
	d.Access(0, 0, a, false)
	// Opposite-corner sharers alternate.
	banks := map[int]bool{}
	migBefore := d.Migrations
	now := memsys.Cycle(100)
	for i := 0; i < 40; i++ {
		d.Access(now, []int{0, 3}[i%2], a, false)
		banks[d.BankOf(a)] = true
		now += 50
	}
	if d.Migrations-migBefore < 10 {
		t.Errorf("only %d migrations under alternating sharers; the tug-of-war should continue",
			d.Migrations-migBefore)
	}
	if len(banks) < 2 {
		t.Error("block never moved between banks under opposing sharers")
	}
	d.CheckInvariants()
}

// TestDNUCASearchCostsAccumulate: a hit in the bankset's far bank pays
// a full wrong-probe round first — the requester cannot know where
// migration left the block.
func TestDNUCASearchCostsAccumulate(t *testing.T) {
	d := smallDNUCA()
	a := memsys.Addr(0x1000) // bankset {a, d}
	d.Access(0, 3, a, false) // placed at d (P3's nearest)
	// P0's access probes a first (wrong, full round: 2+10=12), then
	// hits in d (2+7*2+10=26): at least 38 cycles.
	r := d.Access(100, 0, a, false)
	if r.Category != memsys.Hit {
		t.Fatalf("expected hit, got %v", r.Category)
	}
	if r.Latency < 38 {
		t.Errorf("far-bank search hit = %d cycles, want >= 38 (wrong probe + far bank)", r.Latency)
	}
	d.CheckInvariants()
}

func TestDNUCARandomInvariants(t *testing.T) {
	d := smallDNUCA()
	r := rng.New(17)
	now := memsys.Cycle(0)
	for i := 0; i < 30000; i++ {
		coreID := r.Intn(4)
		var addr memsys.Addr
		if r.Bool(0.5) {
			addr = memsys.Addr(0x10000*(coreID+1) + r.Intn(48)*64)
		} else {
			addr = memsys.Addr(0x80000 + r.Intn(24)*64)
		}
		d.Access(now, coreID, addr, r.Bool(0.3))
		now += memsys.Cycle(r.Intn(20) + 1)
		if i%5000 == 0 {
			d.CheckInvariants()
		}
	}
	d.CheckInvariants()
	s := d.Stats()
	if s.Accesses.Count(memsys.LabelHit) == 0 || d.Migrations == 0 {
		t.Error("degenerate DNUCA run")
	}
}
