package l2

import (
	"testing"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
	"cmpnurapid/internal/topo"
)

// Small configurations for direct inspection.

func smallShared() *Shared {
	return NewShared("uniform-shared", 16<<10, 4, 64, 59, 300)
}

func smallPrivate() *Private {
	return NewPrivateWith(4<<10, 4, 64, 10, bus.Config{Latency: 32, SlotCycles: 4}, 300)
}

func smallSNUCA() *SNUCA {
	var dist [topo.NumCores][topo.NumDGroups]memsys.Cycles
	for c := 0; c < topo.NumCores; c++ {
		for g := 0; g < topo.NumDGroups; g++ {
			dist[c][g] = memsys.CyclesOf(2 + 7*topo.Distance(c, g))
		}
	}
	return NewSNUCAWith(4<<10, 4, 64, dist, 24, 300)
}

func TestSharedHitAndCapacityOnly(t *testing.T) {
	s := smallShared()
	a := memsys.Addr(0x1000)
	r := s.Access(0, 0, a, false)
	if r.Category != memsys.CapacityMiss || r.Latency != 359 {
		t.Errorf("cold = %+v, want capacity miss at 359", r)
	}
	// A different core hits the same copy: shared caches never take
	// sharing misses.
	r = s.Access(10, 3, a, true)
	if r.Category != memsys.Hit || r.Latency != 59 {
		t.Errorf("other-core access = %+v, want hit at 59", r)
	}
	if s.Stats().Accesses.Count(memsys.LabelROS) != 0 ||
		s.Stats().Accesses.Count(memsys.LabelRWS) != 0 {
		t.Error("shared cache recorded sharing misses")
	}
}

func TestSharedEvictionInvalidatesAllL1s(t *testing.T) {
	s := NewShared("x", 1<<10, 1, 64, 10, 100) // 16 blocks direct-mapped
	dropped := map[int]bool{}
	s.SetL1Invalidate(func(core int, addr memsys.Addr) {
		if addr == 0 {
			dropped[core] = true
		}
	})
	s.Access(0, 0, 0, false)
	s.Access(10, 0, 1<<10, false) // conflicts with block 0
	for c := 0; c < topo.NumCores; c++ {
		if !dropped[c] {
			t.Errorf("core %d's L1 not invalidated on shared eviction", c)
		}
	}
}

func TestUniformSharedPaperLatency(t *testing.T) {
	s := NewUniformShared()
	s.Access(0, 0, 0x1000, false)
	r := s.Access(100, 1, 0x1000, false)
	if r.Latency != 59 {
		t.Errorf("uniform-shared hit = %d cycles, want 59 (Table 1)", r.Latency)
	}
}

func TestIdealPaperLatency(t *testing.T) {
	s := NewIdeal()
	s.Access(0, 0, 0x1000, false)
	r := s.Access(100, 1, 0x1000, false)
	if r.Latency != 10 {
		t.Errorf("ideal hit = %d cycles, want 10 (private latency)", r.Latency)
	}
}

func TestSNUCABankMapping(t *testing.T) {
	s := smallSNUCA()
	// Consecutive blocks interleave across the 4 banks.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[s.bankOf(memsys.Addr(i*64))] = true
	}
	if len(seen) != 4 {
		t.Errorf("4 consecutive blocks mapped to %d banks, want 4", len(seen))
	}
	// Same block always maps to the same bank.
	if s.bankOf(0x1040) != s.bankOf(0x1040) {
		t.Error("bank mapping not deterministic")
	}
}

func TestSNUCANonUniformLatency(t *testing.T) {
	s := smallSNUCA()
	// Warm one block per bank, then compare hit latencies from core 0.
	for i := 0; i < 4; i++ {
		s.Access(memsys.Cycle(i*1000), 0, memsys.Addr(i*64), false)
	}
	lats := map[int]memsys.Cycles{}
	for i := 0; i < 4; i++ {
		r := s.Access(memsys.Cycle(10000+i*1000), 0, memsys.Addr(i*64), false)
		if r.Category != memsys.Hit {
			t.Fatalf("block %d missed", i)
		}
		lats[r.DGroup] = r.Latency
	}
	close0 := topo.Closest(0)
	for b, l := range lats {
		if b == close0 {
			continue
		}
		if l <= lats[close0] {
			t.Errorf("bank %d latency %d not greater than closest bank's %d", b, l, lats[close0])
		}
	}
}

func TestSNUCANoReplication(t *testing.T) {
	s := smallSNUCA()
	a := memsys.Addr(0x40) // some bank
	s.Access(0, 0, a, false)
	s.Access(100, 1, a, false)
	s.Access(200, 2, a, false)
	// Still exactly one copy: exactly one bank holds the (bank-folded)
	// address.
	copies := 0
	for _, b := range s.banks {
		if b.Probe(s.innerAddr(a)) != nil {
			copies++
		}
	}
	if copies != 1 {
		t.Errorf("%d copies in SNUCA, want 1 (no replication)", copies)
	}
}

func TestSNUCAInnerOuterRoundTrip(t *testing.T) {
	s := smallSNUCA()
	for _, raw := range []memsys.Addr{0, 64, 128, 0x1040, 0xffc0, 0x12345 &^ 63} {
		b := s.bankOf(raw)
		if got := s.outerAddr(s.innerAddr(raw), b); got != raw.BlockAddr(64) {
			t.Errorf("round trip of %#x via bank %d = %#x", raw, b, got)
		}
	}
}

func TestSNUCABankFoldingUsesFullSets(t *testing.T) {
	// Blocks mapping to one bank must spread across all of its sets,
	// not just every fourth one (the aliasing bug this guards against
	// quadruples the conflict-miss rate).
	s := smallSNUCA()
	bank := s.banks[0]
	sets := map[int]bool{}
	for i := 0; i < 64; i++ {
		a := memsys.Addr(i * 64)
		if s.bankOf(a) != 0 {
			continue
		}
		sets[bank.SetIndex(s.innerAddr(a))] = true
	}
	if len(sets) < 8 {
		t.Errorf("bank 0 blocks cover only %d sets; bank bits alias into the index", len(sets))
	}
}

func TestPrivateHitLatency(t *testing.T) {
	p := smallPrivate()
	p.Access(0, 0, 0x1000, false)
	r := p.Access(1000, 0, 0x1000, false)
	if r.Category != memsys.Hit || r.Latency != 10 {
		t.Errorf("private hit = %+v, want 10-cycle hit", r)
	}
}

func TestPrivateMissClassification(t *testing.T) {
	p := smallPrivate()
	A, B := memsys.Addr(0x1000), memsys.Addr(0x2000)
	if r := p.Access(0, 0, A, false); r.Category != memsys.CapacityMiss {
		t.Errorf("cold: %v", r.Category)
	}
	if r := p.Access(100, 1, A, false); r.Category != memsys.ROSMiss {
		t.Errorf("clean elsewhere: %v, want ROS", r.Category)
	}
	p.Access(200, 2, B, true)
	if r := p.Access(300, 3, B, false); r.Category != memsys.RWSMiss {
		t.Errorf("dirty elsewhere: %v, want RWS", r.Category)
	}
	p.CheckInvariants()
}

func TestPrivateReplicationMakesCopies(t *testing.T) {
	p := smallPrivate()
	a := memsys.Addr(0x1000)
	for c := 0; c < 4; c++ {
		p.Access(memsys.Cycle(c*100), c, a, false)
	}
	copies := 0
	for c := 0; c < 4; c++ {
		if p.StateOf(c, a) == coherence.Shared {
			copies++
		}
	}
	if copies != 4 {
		t.Errorf("%d shared copies, want 4 (uncontrolled replication)", copies)
	}
}

func TestPrivateWriteInvalidatesSharers(t *testing.T) {
	p := smallPrivate()
	a := memsys.Addr(0x1000)
	p.Access(0, 0, a, false)
	p.Access(100, 1, a, false)
	// Core 0 writes: S→M upgrade, core 1 invalidated.
	r := p.Access(200, 0, a, true)
	if r.Category != memsys.Hit {
		t.Fatalf("upgrade: %v, want hit", r.Category)
	}
	if p.StateOf(0, a) != coherence.Modified {
		t.Errorf("writer: %v, want M", p.StateOf(0, a))
	}
	if p.StateOf(1, a) != coherence.Invalid {
		t.Errorf("sharer: %v, want I", p.StateOf(1, a))
	}
	p.CheckInvariants()
}

// TestPrivateRWSPingPong demonstrates the coherence-miss ping-pong ISC
// eliminates: alternating writer/reader always misses.
func TestPrivateRWSPingPong(t *testing.T) {
	p := smallPrivate()
	a := memsys.Addr(0x3000)
	p.Access(0, 0, a, true) // M in core 0
	now := memsys.Cycle(100)
	for i := 0; i < 5; i++ {
		r := p.Access(now, 1, a, false)
		if r.Category != memsys.RWSMiss {
			t.Fatalf("reader iteration %d: %v, want RWS miss", i, r.Category)
		}
		now += 100
		w := p.Access(now, 0, a, true)
		if w.Category == memsys.Hit && i > 0 {
			// After the read, writer is in S; its write is an upgrade
			// hit (invalidation), which MESI allows — but the *reader*
			// must then miss again, which the next loop checks.
			_ = w
		}
		now += 100
	}
	p.CheckInvariants()
}

func TestPrivateEvictionRecordsReuse(t *testing.T) {
	p := smallPrivate()
	a := memsys.Addr(0x1000)
	p.Access(0, 0, a, false)  // core 0 has it
	p.Access(10, 1, a, false) // core 1: ROS miss, brought in
	p.Access(20, 1, a, false) // reuse 1
	// Evict core 1's copy via set conflicts: 4 KB 4-way 64 B = 16 sets.
	stride := 16 * 64
	for i := 1; i <= 4; i++ {
		p.Access(memsys.Cycle(100+i*10), 1, memsys.Addr(0x1000+i*stride), false)
	}
	if got := p.Stats().ReuseROS.Total(); got != 1 {
		t.Fatalf("ReuseROS lifetimes = %d, want 1", got)
	}
	if got := p.Stats().ReuseROS.Count(1); got != 1 {
		t.Errorf("1-reuse bucket = %d, want 1", got)
	}
}

func TestPrivateInvalidationRecordsRWSReuse(t *testing.T) {
	p := smallPrivate()
	a := memsys.Addr(0x3000)
	p.Access(0, 0, a, true)   // core 0 dirties
	p.Access(10, 1, a, false) // core 1: RWS miss
	p.Access(20, 1, a, false) // reuse 1
	p.Access(30, 1, a, false) // reuse 2
	p.Access(40, 0, a, true)  // write invalidates core 1
	if got := p.Stats().ReuseRWS.Total(); got != 1 {
		t.Fatalf("ReuseRWS lifetimes = %d, want 1", got)
	}
	if got := p.Stats().ReuseRWS.Count(2); got != 1 { // bucket 2 = 2-5 reuses
		t.Errorf("2-5-reuse bucket = %d, want 1", got)
	}
}

func TestPrivateRandomWorkloadInvariants(t *testing.T) {
	p := smallPrivate()
	r := rng.New(55)
	now := memsys.Cycle(0)
	for i := 0; i < 30000; i++ {
		coreID := r.Intn(4)
		var addr memsys.Addr
		if r.Bool(0.5) {
			addr = memsys.Addr(0x10000*(coreID+1) + r.Intn(32)*64)
		} else {
			addr = memsys.Addr(0x80000 + r.Intn(16)*64)
		}
		p.Access(now, coreID, addr, r.Bool(0.3))
		now += memsys.Cycle(r.Intn(20) + 1)
		if i%5000 == 0 {
			p.CheckInvariants()
		}
	}
	p.CheckInvariants()
	if p.Stats().Accesses.Total() != 30000 {
		t.Error("access count mismatch")
	}
}

func TestL2InterfaceCompliance(t *testing.T) {
	// All five designs satisfy memsys.L2 and the L1-invalidator hook.
	var designs = []memsys.L2{smallShared(), smallSNUCA(), smallPrivate()}
	for _, d := range designs {
		if _, ok := d.(memsys.L1Invalidator); !ok {
			t.Errorf("%s does not implement L1Invalidator", d.Name())
		}
		d.Access(0, 0, 0x400, false)
		if d.Stats().Accesses.Total() != 1 {
			t.Errorf("%s did not record the access", d.Name())
		}
	}
}

// TestPrivateWritebackOnlyOnModifiedEviction: evicting a Modified
// block reaches memory exactly once; clean evictions write nothing
// back.
func TestPrivateWritebackOnlyOnModifiedEviction(t *testing.T) {
	p := smallPrivate() // 16 sets, 4 ways
	base := memsys.Addr(0x8000)
	p.Access(0, 0, base, true) // M
	now := memsys.Cycle(100)
	for k := 1; k <= 4; k++ { // same set: fill the ways, then evict the M block
		p.Access(now, 0, base+memsys.Addr(k*16*64), false)
		now += 100
	}
	if p.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want exactly 1 (the Modified eviction)", p.Writebacks)
	}
}
