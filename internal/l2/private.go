package l2

import (
	"fmt"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/cache"
	"cmpnurapid/internal/coherence"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// privPayload is a private-cache line's coherence state plus the
// block-lifetime bookkeeping behind Figure 7.
type privPayload struct {
	state     coherence.State
	broughtBy memsys.Category
	reuses    int
}

// Private models the per-core private cache baseline: four 2 MB 8-way
// caches snooping a split-transaction bus with the MESI protocol.
// Every fill replicates into the requester's cache (uncontrolled
// replication), and read-write sharing ping-pongs through coherence
// misses — the two behaviours CR and ISC exist to fix.
type Private struct {
	caches     []*cache.Array[privPayload]
	ports      []bus.Port
	bus        *bus.Bus
	hitLatency memsys.Cycles
	memLatency memsys.Cycles
	stats      *memsys.L2Stats
	l1inv      func(core int, addr memsys.Addr)
	// Writebacks counts dirty evictions and flushes reaching memory.
	Writebacks uint64
}

// NewPrivate builds the paper's configuration: 2 MB 8-way per core,
// 10-cycle hit (Table 1), 32-cycle bus, 300-cycle memory.
func NewPrivate() *Private {
	l := topo.Derive()
	return NewPrivateWith(topo.PrivateBytes, topo.PrivateAssoc, topo.BlockBytes,
		l.PrivateTotal, bus.Config{Latency: l.Bus, SlotCycles: 4}, 300)
}

// NewPrivateWith builds private caches with explicit geometry/timing.
func NewPrivateWith(capacityBytes memsys.Bytes, ways int, blockBytes memsys.Bytes, hitLatency memsys.Cycles, busCfg bus.Config, memLatency memsys.Cycles) *Private {
	p := &Private{
		ports:      make([]bus.Port, topo.NumCores),
		bus:        bus.New(busCfg),
		hitLatency: hitLatency,
		memLatency: memLatency,
		stats:      memsys.NewL2Stats(),
	}
	for c := 0; c < topo.NumCores; c++ {
		p.caches = append(p.caches, cache.NewArray[privPayload](
			cache.GeometryFor(capacityBytes, ways, blockBytes)))
	}
	return p
}

// Name implements memsys.L2.
func (p *Private) Name() string { return "private" }

// Stats implements memsys.L2.
func (p *Private) Stats() *memsys.L2Stats { return p.stats }

// SetL1Invalidate implements memsys.L1Invalidator.
func (p *Private) SetL1Invalidate(fn func(core int, addr memsys.Addr)) { p.l1inv = fn }

// MaintainsL1Coherence implements memsys.L1Coherent: MESI snooping
// invalidates and downgrades L1 copies.
func (p *Private) MaintainsL1Coherence() {}

// Bus exposes the snoopy bus for traffic analysis.
func (p *Private) Bus() *bus.Bus { return p.bus }

// StateOf reports core's MESI state for addr (exposed for tests).
func (p *Private) StateOf(core int, addr memsys.Addr) coherence.State {
	l := p.caches[core].Probe(addr.BlockAddr(p.blockBytes()))
	if l == nil {
		return coherence.Invalid
	}
	return l.Data.state
}

// LineState implements memsys.LineStateProber for stall diagnostics.
func (p *Private) LineState(core int, addr memsys.Addr) string {
	return p.StateOf(core, addr).String()
}

// BusBacklog implements memsys.BusBacklogReporter.
func (p *Private) BusBacklog(now memsys.Cycle) memsys.Cycles { return p.bus.Backlog(now) }

func (p *Private) blockBytes() memsys.Bytes { return p.caches[0].Geometry().BlockBytes }

// kill invalidates core's line, recording its lifetime and preserving
// L1 inclusion.
func (p *Private) kill(core int, l *cache.Line[privPayload]) {
	addr := p.caches[core].AddrOf(l)
	switch l.Data.broughtBy {
	case memsys.ROSMiss:
		p.stats.ReuseROS.Record(l.Data.reuses)
	case memsys.RWSMiss:
		p.stats.ReuseRWS.Record(l.Data.reuses)
	}
	if l.Data.state == coherence.Modified {
		p.Writebacks++
	}
	p.caches[core].Invalidate(l)
	if p.l1inv != nil {
		p.l1inv(core, addr)
	}
}

// signals samples the wired-OR bus lines from the other caches.
func (p *Private) signals(core int, addr memsys.Addr) coherence.Signals {
	var sig coherence.Signals
	for o := 0; o < topo.NumCores; o++ {
		if o == core {
			continue
		}
		if l := p.caches[o].Probe(addr); l != nil {
			if l.Data.state.Dirty() {
				sig.Dirty = true
			} else {
				sig.Shared = true
			}
		}
	}
	return sig
}

// snoopOthers applies a bus transaction from core to every other cache
// per MESI and returns the core that supplied the block, or -1. A
// cache holding the block in S does not flush under basic MESI, but
// being on-chip it still supplies the data more cheaply than memory;
// we return it as the supplier without a Flush transaction.
func (p *Private) snoopOthers(core int, addr memsys.Addr, op coherence.BusOp) (supplier int) {
	supplier = -1
	for o := 0; o < topo.NumCores; o++ {
		if o == core {
			continue
		}
		l := p.caches[o].Probe(addr)
		if l == nil {
			continue
		}
		next, act := coherence.MESISnoop(l.Data.state, op)
		switch act {
		case coherence.Flush:
			supplier = o
			p.Writebacks++ // MESI flush updates memory
			p.stats.BusTransactions.Inc(memsys.LabelFlush)
		case coherence.FlushClean:
			supplier = o
			p.stats.BusTransactions.Inc(memsys.LabelFlush)
		case coherence.None:
			if supplier < 0 && l.Data.state == coherence.Shared && op != coherence.BusUpg {
				supplier = o
			}
		default: // InvalidateL1 is MESIC-only; MESISnoop never returns it
			panic("l2: MESI snoop returned action " + act.String())
		}
		if next == coherence.Invalid {
			p.kill(o, l)
		} else {
			if next != l.Data.state && p.l1inv != nil {
				// Downgrade (M→S, E→S): the holder's L1 copy may be
				// dirty; drop it so a later local store cannot be
				// absorbed by a stale-exclusive L1 line.
				p.l1inv(o, addr)
			}
			l.Data.state = next
		}
	}
	return supplier
}

// Access implements memsys.L2.
//
// hotpath:root
func (p *Private) Access(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Result {
	addr = addr.BlockAddr(p.blockBytes())
	arr := p.caches[core]
	start := p.ports[core].Acquire(now, p.hitLatency)
	lat := start.Sub(now) + p.hitLatency
	t := now.Add(lat)

	if l := arr.Probe(addr); l != nil {
		arr.Touch(l)
		l.Data.reuses++
		op := coherence.PrRd
		if write {
			op = coherence.PrWr
		}
		next, busOp := coherence.MESIProc(l.Data.state, op, coherence.Signals{})
		if busOp != coherence.BusNone {
			// S→M upgrade: the bus transaction is on the critical path.
			vis := p.bus.Transact(t, bus.BusUpg)
			p.stats.BusTransactions.Inc(memsys.LabelBusUpg)
			lat += vis.Sub(t)
			p.snoopOthers(core, addr, coherence.BusUpg)
		}
		l.Data.state = next
		res := memsys.Result{Latency: lat, Category: memsys.Hit, DGroup: -1}
		p.stats.RecordAccess(res)
		return res
	}

	// Miss: classify from the other caches' states (the paper's
	// taxonomy), then run the MESI flow.
	sig := p.signals(core, addr)
	category := memsys.CapacityMiss
	if sig.Dirty {
		category = memsys.RWSMiss
	} else if sig.Shared {
		category = memsys.ROSMiss
	}

	op := coherence.PrRd
	busKind := bus.BusRd
	mesiOp := coherence.BusRd
	if write {
		op = coherence.PrWr
		busKind = bus.BusRdX
		mesiOp = coherence.BusRdX
	}
	vis := p.bus.Transact(t, busKind)
	if busKind == bus.BusRd {
		p.stats.BusTransactions.Inc(memsys.LabelBusRd)
	} else {
		p.stats.BusTransactions.Inc(memsys.LabelBusRdX)
	}
	lat += vis.Sub(t)
	t2 := now.Add(lat)

	supplier := p.snoopOthers(core, addr, mesiOp)
	if supplier >= 0 {
		// Cache-to-cache transfer: the supplier's access time.
		remStart := p.ports[supplier].Acquire(t2, p.hitLatency)
		lat += remStart.Sub(t2) + p.hitLatency
	} else {
		p.stats.OffChipMisses++
		lat += p.memLatency
	}

	newState, _ := coherence.MESIProc(coherence.Invalid, op, sig)
	v := arr.Victim(addr)
	if v.Valid {
		p.kill(core, v)
	}
	arr.Install(v, addr, privPayload{state: newState, broughtBy: category})

	res := memsys.Result{Latency: lat, Category: category, DGroup: -1}
	p.stats.RecordAccess(res)
	return res
}

// CheckInvariants validates MESI single-owner rules across the private
// caches; tests call it after workloads.
func (p *Private) CheckInvariants() {
	type counts struct{ m, e, s int }
	blocks := map[memsys.Addr]*counts{}
	for c := 0; c < topo.NumCores; c++ {
		p.caches[c].ForEach(func(_ int, l *cache.Line[privPayload]) {
			addr := p.caches[c].AddrOf(l)
			b := blocks[addr]
			if b == nil {
				b = &counts{}
				blocks[addr] = b
			}
			switch l.Data.state {
			case coherence.Modified:
				b.m++
			case coherence.Exclusive:
				b.e++
			case coherence.Shared:
				b.s++
			default:
				panic("l2: private line in invalid coherence state")
			}
		})
	}
	for addr, b := range blocks {
		if b.m+b.e > 1 {
			panic(fmt.Sprintf("l2: block %#x has multiple exclusive owners", addr))
		}
		if (b.m == 1 || b.e == 1) && b.s > 0 {
			panic(fmt.Sprintf("l2: block %#x owner coexists with sharers", addr))
		}
	}
}
