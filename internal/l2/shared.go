// Package l2 implements the baseline last-level cache organizations
// the paper evaluates CMP-NuRAPID against (§4.2): the conventional
// uniform-shared cache, the non-uniform-shared cache (CMP-SNUCA from
// [6]), per-core private caches kept coherent with MESI, and the ideal
// cache (shared capacity at private latency) that upper-bounds the
// achievable improvement.
package l2

import (
	"cmpnurapid/internal/cache"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// sharedPayload tracks nothing; a shared cache has one copy per block
// and no coherence state below the L1s.
type sharedPayload struct{}

// Shared is a monolithic shared L2: one copy per block, uniform access
// latency from every core. With the paper's Table 1 latencies it is the
// "uniform-shared" baseline (59 cycles); with private-cache latency it
// is the "ideal" cache of Figure 6.
type Shared struct {
	name       string
	arr        *cache.Array[sharedPayload]
	hitLatency memsys.Cycles
	memLatency memsys.Cycles
	stats      *memsys.L2Stats
	l1inv      func(core int, addr memsys.Addr)
}

// NewUniformShared builds the paper's base configuration: 8 MB, 32-way,
// 128 B blocks, 59-cycle access (26 tag + 33 data, Table 1), 300-cycle
// memory.
func NewUniformShared() *Shared {
	l := topo.Derive()
	return NewShared("uniform-shared", topo.TotalL2Bytes, topo.SharedAssoc,
		topo.BlockBytes, l.SharedTotal, 300)
}

// NewIdeal builds the ideal cache: the full shared capacity at each
// private cache's 10-cycle latency. "The ideal cache has the capacity
// advantages of shared and latency advantages of private caches"
// (§5.1.1); it is unbuildable and serves as the upper bound.
func NewIdeal() *Shared {
	l := topo.Derive()
	return NewShared("ideal", topo.TotalL2Bytes, topo.SharedAssoc,
		topo.BlockBytes, l.PrivateTotal, 300)
}

// NewShared builds a shared cache with explicit geometry and timing.
func NewShared(name string, capacityBytes memsys.Bytes, ways int, blockBytes memsys.Bytes, hitLatency, memLatency memsys.Cycles) *Shared {
	return &Shared{
		name:       name,
		arr:        cache.NewArray[sharedPayload](cache.GeometryFor(capacityBytes, ways, blockBytes)),
		hitLatency: hitLatency,
		memLatency: memLatency,
		stats:      memsys.NewL2Stats(),
	}
}

// Name implements memsys.L2.
func (s *Shared) Name() string { return s.name }

// Stats implements memsys.L2.
func (s *Shared) Stats() *memsys.L2Stats { return s.stats }

// SetL1Invalidate implements memsys.L1Invalidator.
func (s *Shared) SetL1Invalidate(fn func(core int, addr memsys.Addr)) { s.l1inv = fn }

// LineState implements memsys.LineStateProber for stall diagnostics:
// a monolithic shared cache has no per-core coherence state, so it
// reports whether the block is resident.
func (s *Shared) LineState(core int, addr memsys.Addr) string {
	if s.arr.Probe(addr.BlockAddr(s.arr.Geometry().BlockBytes)) != nil {
		return "resident"
	}
	return "absent"
}

// Access implements memsys.L2. A shared cache has only hits and
// capacity misses: every on-chip block has exactly one copy that all
// cores reach at the same latency, so sharing never misses (Figure 5:
// "Shared cache has only hits and capacity misses").
//
// hotpath:root
func (s *Shared) Access(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Result {
	addr = addr.BlockAddr(s.arr.Geometry().BlockBytes)
	if l := s.arr.Probe(addr); l != nil {
		s.arr.Touch(l)
		res := memsys.Result{Latency: s.hitLatency, Category: memsys.Hit, DGroup: -1}
		s.stats.RecordAccess(res)
		return res
	}
	s.stats.OffChipMisses++
	v := s.arr.Victim(addr)
	if v.Valid {
		evicted := s.arr.AddrOf(v)
		// Inclusion: every core's L1 may hold the dying block.
		if s.l1inv != nil {
			for c := 0; c < topo.NumCores; c++ {
				s.l1inv(c, evicted)
			}
		}
	}
	s.arr.Install(v, addr, sharedPayload{})
	res := memsys.Result{
		Latency:  s.hitLatency + s.memLatency,
		Category: memsys.CapacityMiss,
		DGroup:   -1,
	}
	s.stats.RecordAccess(res)
	_ = write // writes allocate identically; the L1s handle dirtiness
	return res
}
