package l2

import (
	"fmt"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/cache"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// SNUCA is the non-uniform-shared baseline, modelling CMP-SNUCA from
// [6] (similar to Piranha's banked shared cache [4]): the address space
// is statically interleaved across banks, each bank has a distinct
// latency from each core, and — the property that distinguishes it from
// CMP-NuRAPID — there is no replication and no migration, so a shared
// block sits in whichever bank its address hashes to, equidistant from
// nobody in particular.
//
// Bank latencies are the d-group data latencies plus a switched-network
// overhead: [6]'s banks are reached through a switch fabric with
// distributed tags rather than CMP-NuRAPID's core-adjacent private tags
// and direct crossbar. NetOverhead is calibrated so the design lands
// where the paper measures it — a few percent above uniform-shared,
// well short of ideal (Figure 6).
type SNUCA struct {
	banks      []*cache.Array[sharedPayload]
	ports      []bus.Port
	lat        [topo.NumCores][topo.NumDGroups]memsys.Cycles
	memLatency memsys.Cycles
	stats      *memsys.L2Stats
	l1inv      func(core int, addr memsys.Addr)
}

// SNUCANetOverhead is the per-access switched-network and distributed-
// tag overhead in cycles added to each bank's wire-distance latency.
const SNUCANetOverhead memsys.Cycles = 20

// snucaSlotCycles is a bank's issue interval: SNUCA banks are
// pipelined (they are ordinary banked-cache banks), unlike
// CMP-NuRAPID's deliberately unpipelined d-groups (§3.3.2).
const snucaSlotCycles memsys.Cycles = 4

// NewSNUCA builds the paper-scale configuration: four 2 MB 8-way banks
// at the Table 1 d-group distances plus the network overhead.
func NewSNUCA() *SNUCA {
	l := topo.Derive()
	return NewSNUCAWith(topo.DGroupBytes, topo.PrivateAssoc, topo.BlockBytes,
		l.DGroupData, SNUCANetOverhead, 300)
}

// NewSNUCAWith builds a SNUCA with explicit geometry and timing.
func NewSNUCAWith(bankBytes memsys.Bytes, ways int, blockBytes memsys.Bytes, dist [topo.NumCores][topo.NumDGroups]memsys.Cycles, netOverhead, memLatency memsys.Cycles) *SNUCA {
	s := &SNUCA{
		ports:      make([]bus.Port, topo.NumDGroups),
		memLatency: memLatency,
		stats:      memsys.NewL2Stats(),
	}
	for c := 0; c < topo.NumCores; c++ {
		for b := 0; b < topo.NumDGroups; b++ {
			s.lat[c][b] = dist[c][b] + netOverhead
		}
	}
	for b := 0; b < topo.NumDGroups; b++ {
		s.banks = append(s.banks, cache.NewArray[sharedPayload](
			cache.GeometryFor(bankBytes, ways, blockBytes)))
	}
	return s
}

// Name implements memsys.L2.
func (s *SNUCA) Name() string { return "non-uniform-shared" }

// Stats implements memsys.L2.
func (s *SNUCA) Stats() *memsys.L2Stats { return s.stats }

// SetL1Invalidate implements memsys.L1Invalidator.
func (s *SNUCA) SetL1Invalidate(fn func(core int, addr memsys.Addr)) { s.l1inv = fn }

// blockBits returns log2 of the block size.
func (s *SNUCA) blockBits() uint {
	b := uint(0)
	for bs := int(s.banks[0].Geometry().BlockBytes); bs > 1; bs >>= 1 {
		b++
	}
	return b
}

// bankOf statically interleaves block addresses across banks.
func (s *SNUCA) bankOf(addr memsys.Addr) int {
	return int((uint64(addr) >> s.blockBits()) % uint64(len(s.banks)))
}

// innerAddr folds the bank-select bits out of an address so the bank's
// set index uses the full set range (without this, addresses in bank b
// all share set indices congruent to b and three quarters of each bank
// would go unused).
func (s *SNUCA) innerAddr(addr memsys.Addr) memsys.Addr {
	bb := s.blockBits()
	block := uint64(addr) >> bb
	return memsys.Addr((block / uint64(len(s.banks))) << bb)
}

// outerAddr inverts innerAddr for the given bank (used to reconstruct
// the original address of an evicted block for L1 invalidation).
func (s *SNUCA) outerAddr(inner memsys.Addr, bank int) memsys.Addr {
	bb := s.blockBits()
	block := uint64(inner) >> bb
	return memsys.Addr((block*uint64(len(s.banks)) + uint64(bank)) << bb)
}

// LineState implements memsys.LineStateProber for stall diagnostics:
// a shared design has no per-core coherence state, so it reports
// residency in the owning bank.
func (s *SNUCA) LineState(core int, addr memsys.Addr) string {
	addr = addr.BlockAddr(s.banks[0].Geometry().BlockBytes)
	b := s.bankOf(addr)
	if s.banks[b].Probe(s.innerAddr(addr)) != nil {
		return fmt.Sprintf("resident(bank%d)", b)
	}
	return fmt.Sprintf("absent(bank%d)", b)
}

// CheckInvariants verifies SNUCA's single-copy property at the bank
// level: no bank holds two valid lines for the same block. Static
// interleaving makes cross-bank duplication impossible by
// construction, so the remaining failure mode is an install path that
// skips the probe and double-allocates within a set.
func (s *SNUCA) CheckInvariants() {
	for b, bank := range s.banks {
		seen := map[memsys.Addr]bool{}
		bank.ForEach(func(_ int, l *cache.Line[sharedPayload]) {
			a := bank.AddrOf(l)
			if seen[a] {
				panic(fmt.Sprintf("l2: SNUCA bank %d holds block %#x twice", b, a))
			}
			seen[a] = true
		})
	}
}

// Access implements memsys.L2.
//
// hotpath:root
func (s *SNUCA) Access(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Result {
	addr = addr.BlockAddr(s.banks[0].Geometry().BlockBytes)
	b := s.bankOf(addr)
	lat := s.lat[core][b]
	start := s.ports[b].Acquire(now, snucaSlotCycles)
	lat += start.Sub(now)

	bank := s.banks[b]
	inner := s.innerAddr(addr)
	if l := bank.Probe(inner); l != nil {
		bank.Touch(l)
		res := memsys.Result{Latency: lat, Category: memsys.Hit, DGroup: b,
			ClosestDGroup: b == topo.Closest(core)}
		s.stats.RecordAccess(res)
		return res
	}
	s.stats.OffChipMisses++
	v := bank.Victim(inner)
	if v.Valid && s.l1inv != nil {
		evicted := s.outerAddr(bank.AddrOf(v), b)
		for c := 0; c < topo.NumCores; c++ {
			s.l1inv(c, evicted)
		}
	}
	bank.Install(v, inner, sharedPayload{})
	res := memsys.Result{Latency: lat + s.memLatency, Category: memsys.CapacityMiss, DGroup: -1}
	s.stats.RecordAccess(res)
	_ = write
	return res
}
