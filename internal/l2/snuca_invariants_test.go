package l2

import (
	"strings"
	"testing"

	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
	"cmpnurapid/internal/topo"
)

func TestSNUCAInvariantsHoldUnderTraffic(t *testing.T) {
	s := smallSNUCA()
	s.SetL1Invalidate(func(core int, addr memsys.Addr) {})
	r := rng.New(7)
	now := memsys.Cycle(0)
	for i := 0; i < 20000; i++ {
		coreID := r.Intn(topo.NumCores)
		addr := memsys.Addr(0x4000*(coreID+1) + r.Intn(256)*64)
		s.Access(now, coreID, addr, r.Bool(0.25))
		now += memsys.Cycle(r.Intn(10) + 1)
		if i%4000 == 0 {
			s.CheckInvariants()
		}
	}
	s.CheckInvariants()
	if s.Stats().Accesses.Total() != 20000 {
		t.Error("access count mismatch")
	}
}

func TestSNUCAInvariantsDetectDoubleResidency(t *testing.T) {
	s := smallSNUCA()
	// Bypass Access's probe-before-install discipline and allocate the
	// same block in two ways of the same set.
	bank := s.banks[0]
	set := bank.Set(0)
	bank.Install(&set[0], 0, sharedPayload{})
	bank.Install(&set[1], 0, sharedPayload{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CheckInvariants accepted a double-resident block")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "twice") || !strings.HasPrefix(msg, "l2: ") {
			t.Fatalf("panic = %v, want l2-prefixed double-residency message", r)
		}
	}()
	s.CheckInvariants()
}
