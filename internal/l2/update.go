package l2

import (
	"fmt"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/cache"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// PrivateUpdate models private caches under an update-based protocol
// (Dragon-style), the alternative §3.2 argues against: "It may seem
// that private caches can avoid coherence misses in read-write sharing
// by using an update protocol ... However, an update protocol requires
// the updates to go through the bus for copying the data to the
// reader's caches, incurring an overhead on every write. Furthermore,
// update protocols keep multiple copies of the read-write shared
// block," recreating uncontrolled replication's capacity problem.
//
// The model keeps MESI-like bookkeeping but never invalidates on
// writes: a store to a block with remote copies broadcasts a BusUpd
// (full bus latency on the writer's critical path) that freshens the
// sharers' L2 copies in place; their L1 copies drop and refill from
// their own updated L2 copy at private-hit cost — no coherence misses,
// exactly the property the protocol buys, at exactly the costs the
// paper names.
type PrivateUpdate struct {
	caches     []*cache.Array[updPayload]
	ports      []bus.Port
	bus        *bus.Bus
	hitLatency memsys.Cycles
	memLatency memsys.Cycles
	stats      *memsys.L2Stats
	l1inv      func(core int, addr memsys.Addr)
	// Updates counts write-triggered bus update broadcasts.
	Updates uint64
	// Writebacks counts dirty evictions reaching memory.
	Writebacks uint64
}

// updPayload: valid copies are shared or exclusive; dirty marks the
// current owner (last writer) responsible for write-back.
type updPayload struct {
	exclusive bool
	dirty     bool
	broughtBy memsys.Category
	reuses    int
}

// NewPrivateUpdate builds the update-protocol baseline at the paper's
// private-cache geometry.
func NewPrivateUpdate() *PrivateUpdate {
	l := topo.Derive()
	return NewPrivateUpdateWith(topo.PrivateBytes, topo.PrivateAssoc, topo.BlockBytes,
		l.PrivateTotal, bus.Config{Latency: l.Bus, SlotCycles: 4}, 300)
}

// NewPrivateUpdateWith builds the baseline with explicit geometry.
func NewPrivateUpdateWith(capacityBytes memsys.Bytes, ways int, blockBytes memsys.Bytes, hitLatency memsys.Cycles, busCfg bus.Config, memLatency memsys.Cycles) *PrivateUpdate {
	p := &PrivateUpdate{
		ports:      make([]bus.Port, topo.NumCores),
		bus:        bus.New(busCfg),
		hitLatency: hitLatency,
		memLatency: memLatency,
		stats:      memsys.NewL2Stats(),
	}
	for c := 0; c < topo.NumCores; c++ {
		p.caches = append(p.caches, cache.NewArray[updPayload](
			cache.GeometryFor(capacityBytes, ways, blockBytes)))
	}
	return p
}

// Name implements memsys.L2.
func (p *PrivateUpdate) Name() string { return "private-update" }

// Stats implements memsys.L2.
func (p *PrivateUpdate) Stats() *memsys.L2Stats { return p.stats }

// SetL1Invalidate implements memsys.L1Invalidator.
func (p *PrivateUpdate) SetL1Invalidate(fn func(core int, addr memsys.Addr)) { p.l1inv = fn }

// MaintainsL1Coherence implements memsys.L1Coherent: updates drop the
// sharers' L1 copies themselves.
func (p *PrivateUpdate) MaintainsL1Coherence() {}

// Bus exposes the bus for traffic analysis.
func (p *PrivateUpdate) Bus() *bus.Bus { return p.bus }

// LineState implements memsys.LineStateProber for stall diagnostics.
func (p *PrivateUpdate) LineState(core int, addr memsys.Addr) string {
	l := p.caches[core].Probe(addr.BlockAddr(p.blockBytes()))
	switch {
	case l == nil:
		return "I"
	case l.Data.exclusive && l.Data.dirty:
		return "M"
	case l.Data.exclusive:
		return "E"
	case l.Data.dirty:
		return "S(owner)"
	}
	return "S"
}

// BusBacklog implements memsys.BusBacklogReporter.
func (p *PrivateUpdate) BusBacklog(now memsys.Cycle) memsys.Cycles { return p.bus.Backlog(now) }

// IsCommunication implements cmpsim's write-through hook: update
// protocols must see *every* store to a shared block at the L2 (each
// one broadcasts), so shared blocks are write-through in the L1 — the
// same discipline MESIC's C blocks need, and the per-write overhead
// §3.2 charges update protocols with.
func (p *PrivateUpdate) IsCommunication(core int, addr memsys.Addr) bool {
	addr = addr.BlockAddr(p.blockBytes())
	if p.caches[core].Probe(addr) == nil {
		return false
	}
	n, _, _ := p.copies(core, addr)
	return n > 0
}

func (p *PrivateUpdate) blockBytes() memsys.Bytes { return p.caches[0].Geometry().BlockBytes }

// copies counts the cores (other than core) holding addr, returning
// the count, the lowest such core (-1 when none), and whether any copy
// is dirty. Counting instead of materializing a holder slice keeps the
// per-access path allocation-free; sites that need the full set loop
// over the cores again (update).
func (p *PrivateUpdate) copies(core int, addr memsys.Addr) (n, first int, dirty bool) {
	first = -1
	for o := 0; o < topo.NumCores; o++ {
		if o == core {
			continue
		}
		if l := p.caches[o].Probe(addr); l != nil {
			if first < 0 {
				first = o
			}
			n++
			dirty = dirty || l.Data.dirty
		}
	}
	return n, first, dirty
}

func (p *PrivateUpdate) kill(core int, l *cache.Line[updPayload]) {
	addr := p.caches[core].AddrOf(l)
	switch l.Data.broughtBy {
	case memsys.ROSMiss:
		p.stats.ReuseROS.Record(l.Data.reuses)
	case memsys.RWSMiss:
		p.stats.ReuseRWS.Record(l.Data.reuses)
	}
	if l.Data.dirty {
		// The owner's eviction hands write-back duty to memory; any
		// remaining sharers keep clean copies.
		p.Writebacks++
	}
	p.caches[core].Invalidate(l)
	if p.l1inv != nil {
		p.l1inv(core, addr)
	}
}

// update broadcasts core's write to the sharers: their L2 copies
// freshen in place (stay valid, clean), their L1 copies drop, and the
// writer becomes the dirty owner.
func (p *PrivateUpdate) update(core int, addr memsys.Addr) {
	p.Updates++
	p.stats.BusTransactions.Inc(memsys.LabelBusUpg)
	for o := 0; o < topo.NumCores; o++ {
		if o == core {
			continue
		}
		if l := p.caches[o].Probe(addr); l != nil {
			l.Data.dirty = false
			l.Data.exclusive = false
			if p.l1inv != nil {
				p.l1inv(o, addr)
			}
		}
	}
}

// Access implements memsys.L2.
//
// hotpath:root
func (p *PrivateUpdate) Access(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Result {
	addr = addr.BlockAddr(p.blockBytes())
	arr := p.caches[core]
	start := p.ports[core].Acquire(now, p.hitLatency)
	lat := start.Sub(now) + p.hitLatency
	t := now.Add(lat)

	if l := arr.Probe(addr); l != nil {
		arr.Touch(l)
		l.Data.reuses++
		if write {
			n, _, _ := p.copies(core, addr)
			if n > 0 {
				// The update goes through the bus on every write —
				// the overhead the paper charges this protocol with.
				vis := p.bus.Transact(t, bus.BusUpg)
				lat += vis.Sub(t)
				p.update(core, addr)
			}
			l.Data.dirty = true
		}
		res := memsys.Result{Latency: lat, Category: memsys.Hit, DGroup: -1}
		p.stats.RecordAccess(res)
		return res
	}

	// Miss: classify per the paper's taxonomy, fill a local copy
	// (uncontrolled replication), no invalidations.
	n, first, dirty := p.copies(core, addr)
	category := memsys.CapacityMiss
	if dirty {
		category = memsys.RWSMiss
	} else if n > 0 {
		category = memsys.ROSMiss
	}
	vis := p.bus.Transact(t, bus.BusRd)
	p.stats.BusTransactions.Inc(memsys.LabelBusRd)
	lat += vis.Sub(t)
	t2 := now.Add(lat)
	if n > 0 {
		remStart := p.ports[first].Acquire(t2, p.hitLatency)
		lat += remStart.Sub(t2) + p.hitLatency
	} else {
		p.stats.OffChipMisses++
		lat += p.memLatency
	}

	v := arr.Victim(addr)
	if v.Valid {
		p.kill(core, v)
	}
	pay := updPayload{exclusive: n == 0, broughtBy: category}
	if write {
		pay.dirty = true
		if n > 0 {
			// The sharer set is unchanged since copies(): the victim
			// kill above only touched core's own cache.
			p.update(core, addr)
		}
	}
	arr.Install(v, addr, pay)

	res := memsys.Result{Latency: lat, Category: category, DGroup: -1}
	p.stats.RecordAccess(res)
	return res
}

// CheckInvariants validates the update protocol's single-owner rule:
// at most one dirty copy per block.
func (p *PrivateUpdate) CheckInvariants() {
	owners := map[memsys.Addr]int{}
	for c := 0; c < topo.NumCores; c++ {
		p.caches[c].ForEach(func(_ int, l *cache.Line[updPayload]) {
			if l.Data.dirty {
				owners[p.caches[c].AddrOf(l)]++
			}
		})
	}
	for addr, n := range owners {
		if n > 1 {
			panic(fmt.Sprintf("l2: update protocol has %d dirty owners for block %#x", n, addr))
		}
	}
}
