package l2

import (
	"testing"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
)

func smallUpdate() *PrivateUpdate {
	return NewPrivateUpdateWith(4<<10, 4, 64, 10, bus.Config{Latency: 32, SlotCycles: 4}, 300)
}

func TestUpdateNoInvalidationOnWrite(t *testing.T) {
	p := smallUpdate()
	a := memsys.Addr(0x1000)
	p.Access(0, 0, a, false)
	p.Access(100, 1, a, false) // both hold copies
	// Core 0 writes: core 1's copy is UPDATED, not invalidated.
	p.Access(200, 0, a, true)
	if p.caches[1].Probe(a) == nil {
		t.Fatal("update protocol invalidated the sharer")
	}
	// Core 1's next read is a hit — no coherence miss.
	r := p.Access(300, 1, a, false)
	if r.Category != memsys.Hit {
		t.Errorf("sharer read after update: %v, want hit", r.Category)
	}
	p.CheckInvariants()
}

func TestUpdateBroadcastCostsBus(t *testing.T) {
	p := smallUpdate()
	a := memsys.Addr(0x1000)
	p.Access(0, 0, a, false)
	p.Access(100, 1, a, false)
	before := p.Updates
	r := p.Access(200, 0, a, true)
	if p.Updates != before+1 {
		t.Fatalf("write to shared block sent %d updates, want 1", p.Updates-before)
	}
	// The update's full bus latency lands on the writer's critical path.
	if r.Latency < 10+32 {
		t.Errorf("write latency %d does not include the bus update", r.Latency)
	}
	// Writes to exclusive blocks are free of bus traffic.
	b := memsys.Addr(0x2000)
	p.Access(300, 2, b, true)
	upd := p.Updates
	p.Access(400, 2, b, true)
	if p.Updates != upd {
		t.Error("write to exclusive block broadcast an update")
	}
}

func TestUpdateSingleDirtyOwner(t *testing.T) {
	p := smallUpdate()
	a := memsys.Addr(0x3000)
	p.Access(0, 0, a, true)
	p.Access(100, 1, a, false)
	p.Access(200, 1, a, true) // ownership moves to core 1
	p.Access(300, 0, a, true) // and back
	p.CheckInvariants()
}

func TestUpdateKeepsMultipleCopies(t *testing.T) {
	// The capacity cost §3.2 names: every reader keeps a full copy.
	p := smallUpdate()
	a := memsys.Addr(0x1000)
	for c := 0; c < 4; c++ {
		p.Access(memsys.Cycle(c*100), c, a, false)
	}
	p.Access(500, 0, a, true)
	copies := 0
	for c := 0; c < 4; c++ {
		if p.caches[c].Probe(a) != nil {
			copies++
		}
	}
	if copies != 4 {
		t.Errorf("%d copies after writes, want 4 (updates keep all copies)", copies)
	}
}

func TestUpdateIsCommunicationHook(t *testing.T) {
	p := smallUpdate()
	a := memsys.Addr(0x1000)
	p.Access(0, 0, a, false)
	if p.IsCommunication(0, a) {
		t.Error("exclusive block reported write-through")
	}
	p.Access(100, 1, a, false)
	if !p.IsCommunication(0, a) || !p.IsCommunication(1, a) {
		t.Error("shared block not reported write-through")
	}
	if p.IsCommunication(2, a) {
		t.Error("non-holder reported write-through")
	}
}

func TestUpdateRandomInvariants(t *testing.T) {
	p := smallUpdate()
	r := rng.New(31)
	now := memsys.Cycle(0)
	for i := 0; i < 30000; i++ {
		coreID := r.Intn(4)
		var addr memsys.Addr
		if r.Bool(0.5) {
			addr = memsys.Addr(0x10000*(coreID+1) + r.Intn(32)*64)
		} else {
			addr = memsys.Addr(0x80000 + r.Intn(16)*64)
		}
		p.Access(now, coreID, addr, r.Bool(0.3))
		now += memsys.Cycle(r.Intn(20) + 1)
		if i%5000 == 0 {
			p.CheckInvariants()
		}
	}
	p.CheckInvariants()
	if p.Updates == 0 {
		t.Error("no updates broadcast under shared writes")
	}
}

// TestUpdateEliminatesRWSMissesAtACost is §3.2's argument in one test:
// versus invalidate-based private caches, the update protocol nearly
// removes RWS misses but pays a bus transaction on every shared write.
func TestUpdateEliminatesRWSMissesAtACost(t *testing.T) {
	drive := func(l2 memsys.L2) (rws uint64, busTraffic uint64) {
		now := memsys.Cycle(0)
		a := memsys.Addr(0x3000)
		for i := 0; i < 200; i++ {
			l2.Access(now, 0, a, true)
			now += 50
			for _, reader := range []int{1, 2} {
				l2.Access(now, reader, a, false)
				now += 50
			}
		}
		return l2.Stats().Accesses.Count(memsys.LabelRWS),
			l2.Stats().BusTransactions.Total()
	}
	inv := smallPrivate()
	upd := smallUpdate()
	invRWS, _ := drive(inv)
	updRWS, updBus := drive(upd)
	if updRWS*4 >= invRWS {
		t.Errorf("update RWS misses %d not well below invalidate's %d", updRWS, invRWS)
	}
	if updBus < 200 {
		t.Errorf("update bus traffic %d suspiciously low; every shared write must broadcast", updBus)
	}
}

// TestUpdateLineStateTracksExclusivity: a cold fill with no other
// copies installs exclusive (E, or M when dirty), while a fill that
// finds an existing copy installs shared. LineState is the
// stall-diagnostics window into that flag, so it must be exact.
func TestUpdateLineStateTracksExclusivity(t *testing.T) {
	p := smallUpdate()
	a, b := memsys.Addr(0x4000), memsys.Addr(0x5000)
	p.Access(0, 0, a, false)
	if st := p.LineState(0, a); st != "E" {
		t.Errorf("cold read fill state = %q, want E", st)
	}
	p.Access(100, 1, b, true)
	if st := p.LineState(1, b); st != "M" {
		t.Errorf("cold write fill state = %q, want M", st)
	}
	p.Access(200, 2, a, false)
	if st := p.LineState(2, a); st != "S" {
		t.Errorf("second sharer's fill state = %q, want S", st)
	}
}
