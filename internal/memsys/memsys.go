// Package memsys defines the types shared across the memory hierarchy:
// addresses, access descriptors, the paper's miss taxonomy (hits,
// read-only-sharing misses, read-write-sharing misses, capacity
// misses), the L2 design interface that all five evaluated cache
// organizations implement, and the per-design statistics every
// experiment reads.
package memsys

import (
	"cmpnurapid/internal/stats"
)

// Addr is a physical byte address.
type Addr uint64

// BlockAddr returns the address truncated to a block boundary.
func (a Addr) BlockAddr(blockBytes Bytes) Addr {
	return a &^ Addr(blockBytes-1)
}

// Access describes one memory reference issued by a core.
type Access struct {
	Core  int
	Addr  Addr
	Write bool
	// Instr marks instruction fetches (routed through the L1 I-cache).
	Instr bool
}

// Category classifies an L2 access outcome the way the paper's
// Figures 5, 8, and 11 do.
type Category int

const (
	// Hit: the L2 supplied the block without an off-chip access or a
	// coherence transfer from another private cache.
	Hit Category = iota
	// ROSMiss: miss on a block another on-chip copy holds in a clean
	// shared state — a read-only-sharing miss ("we count a miss as a
	// ROS miss when another copy of the block exists in shared state").
	ROSMiss
	// RWSMiss: miss on a block a dirty on-chip copy exists for — a
	// read-write-sharing (coherence) miss.
	RWSMiss
	// CapacityMiss: no other on-chip copy; the block comes from memory.
	// Cold misses are folded in, as the paper measures after warm-up.
	CapacityMiss
	numCategories
)

func (c Category) String() string {
	switch c {
	case Hit:
		return "hit"
	case ROSMiss:
		return "ROS miss"
	case RWSMiss:
		return "RWS miss"
	case CapacityMiss:
		return "capacity miss"
	}
	return "unknown"
}

// IsMiss reports whether the category is any kind of miss.
func (c Category) IsMiss() bool { return c != Hit }

// Result describes the outcome of one L2 access.
type Result struct {
	// Latency is the total cycles the L2 and everything below it
	// (bus, other caches, memory) added to this access, measured from
	// the cycle the request reached the L2.
	Latency Cycles
	// Category is the paper's miss-taxonomy classification.
	Category Category
	// DGroup is the data d-group that supplied a hit in a
	// distance-associative design, or -1 when not applicable.
	DGroup int
	// ClosestDGroup reports whether the hit was served by the
	// requesting core's closest d-group (Figure 9's breakdown).
	ClosestDGroup bool
}

// L2 is implemented by each evaluated cache organization:
// uniform-shared, non-uniform-shared (SNUCA), private with MESI, ideal,
// and CMP-NuRAPID.
type L2 interface {
	// Access performs a data reference for core at absolute cycle now
	// and returns its outcome. Implementations account for bus and
	// port contention internally using now.
	Access(now Cycle, core int, addr Addr, write bool) Result
	// Name identifies the design in experiment output.
	Name() string
	// Stats exposes the accumulated measurements.
	Stats() *L2Stats
}

// L1Invalidator is implemented by L2 designs that must invalidate L1
// copies to preserve inclusion (the simulator wires this to the cores'
// L1s).
type L1Invalidator interface {
	// SetL1Invalidate registers a callback invoked when core's L1 must
	// drop any copy of addr.
	SetL1Invalidate(fn func(core int, addr Addr))
}

// LineStateProber is optionally implemented by L2 designs that can
// report a human-readable coherence/residency state for core's view of
// the block containing addr (e.g. "M", "C", "resident"). The simulator
// uses it to enrich forward-progress stall diagnostics; it must not
// mutate any state (no LRU touch, no stat count).
type LineStateProber interface {
	LineState(core int, addr Addr) string
}

// BusBacklogReporter is optionally implemented by L2 designs built
// around a snoopy bus: it reports the arbitration backlog a request
// issued at now would face. Stall diagnostics include it so a livelock
// caused by bus saturation is distinguishable from one caused by a
// protocol bug.
type BusBacklogReporter interface {
	BusBacklog(now Cycle) Cycles
}

// L1Coherent marks L2 designs whose own protocol keeps the L1s
// coherent across cores (the snoopy designs: private MESI and
// CMP-NuRAPID's MESIC). For designs without it — the shared caches —
// the simulator provides directory-style L1 management, mirroring how
// shared-L2 CMPs keep "L1 tag copies at the L2" to keep L1s coherent
// (paper §2.2.2, citing Piranha).
type L1Coherent interface {
	MaintainsL1Coherence()
}

// Access-distribution labels shared by all figures.
const (
	LabelHit      = "hits"
	LabelROS      = "ROS misses"
	LabelRWS      = "RWS misses"
	LabelCapacity = "capacity misses"
)

// Data-array distribution labels (Figure 9).
const (
	LabelClosest = "hits in closest d-grp"
	LabelFarther = "hits in farther d-grps"
	LabelMiss    = "misses"
)

// L2Stats accumulates everything the evaluation figures need.
type L2Stats struct {
	// Accesses is the tag-array access distribution by category
	// (Figures 5, 8, 11).
	Accesses *stats.Dist
	// DataArray is the data-array access distribution: closest d-group
	// hit, farther d-group hit, miss (Figure 9).
	DataArray *stats.Dist
	// ReuseROS/ReuseRWS are the Figure 7 lifetime-reuse histograms for
	// blocks brought in by ROS misses (recorded at replacement) and by
	// RWS misses (recorded at invalidation).
	ReuseROS stats.ReuseHist
	ReuseRWS stats.ReuseHist
	// BusTransactions counts snoop traffic by kind.
	BusTransactions *stats.Dist
	// Replications counts data copies made by controlled replication;
	// PointerReturns counts CR pointer transfers that avoided a copy.
	Replications   uint64
	PointerReturns uint64
	// Promotions and Demotions count capacity-stealing block moves.
	Promotions uint64
	Demotions  uint64
	// OffChipMisses counts accesses that went to memory.
	OffChipMisses uint64
	// LatencySum accumulates every access's latency, for average-
	// latency analysis (LatencySum / Accesses.Total()).
	LatencySum uint64
}

// Bus-transaction labels.
const (
	LabelBusRd   = "BusRd"
	LabelBusRdX  = "BusRdX"
	LabelBusUpg  = "BusUpg"
	LabelBusRepl = "BusRepl"
	LabelFlush   = "Flush"
	LabelPtrRet  = "PtrReturn"
)

// NewL2Stats returns zeroed statistics.
func NewL2Stats() *L2Stats {
	return &L2Stats{
		Accesses:  stats.NewDist(LabelHit, LabelROS, LabelRWS, LabelCapacity),
		DataArray: stats.NewDist(LabelClosest, LabelFarther, LabelMiss),
		BusTransactions: stats.NewDist(
			LabelBusRd, LabelBusRdX, LabelBusUpg, LabelBusRepl, LabelFlush, LabelPtrRet),
	}
}

// RecordAccess tallies one access outcome into the tag and data
// distributions.
func (s *L2Stats) RecordAccess(r Result) {
	s.LatencySum += uint64(r.Latency)
	switch r.Category {
	case Hit:
		s.Accesses.Inc(LabelHit)
		if r.DGroup >= 0 {
			if r.ClosestDGroup {
				s.DataArray.Inc(LabelClosest)
			} else {
				s.DataArray.Inc(LabelFarther)
			}
		} else {
			// Designs without d-groups count every hit as closest so
			// the data-array distribution stays well-defined.
			s.DataArray.Inc(LabelClosest)
		}
	case ROSMiss:
		s.Accesses.Inc(LabelROS)
		s.DataArray.Inc(LabelMiss)
	case RWSMiss:
		s.Accesses.Inc(LabelRWS)
		s.DataArray.Inc(LabelMiss)
	case CapacityMiss:
		s.Accesses.Inc(LabelCapacity)
		s.DataArray.Inc(LabelMiss)
	}
}

// Reset zeroes all measurements; the simulator calls it after cache
// warm-up so figures reflect steady state, as the paper measures.
func (s *L2Stats) Reset() {
	s.Accesses.Reset()
	s.DataArray.Reset()
	s.ReuseROS.Reset()
	s.ReuseRWS.Reset()
	s.BusTransactions.Reset()
	s.Replications = 0
	s.PointerReturns = 0
	s.Promotions = 0
	s.Demotions = 0
	s.OffChipMisses = 0
	s.LatencySum = 0
}

// MissRate returns the fraction of accesses that missed.
func (s *L2Stats) MissRate() float64 {
	t := s.Accesses.Total()
	if t == 0 {
		return 0
	}
	return 1 - s.Accesses.Frac(LabelHit)
}
