package memsys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBlockAddr(t *testing.T) {
	cases := []struct {
		addr  Addr
		block Bytes
		want  Addr
	}{
		{0, 128, 0},
		{127, 128, 0},
		{128, 128, 128},
		{1000, 128, 896},
		{1000, 64, 960},
	}
	for _, c := range cases {
		if got := c.addr.BlockAddr(c.block); got != c.want {
			t.Errorf("%d.BlockAddr(%d) = %d, want %d", c.addr, c.block, got, c.want)
		}
	}
}

func TestBlockAddrProperties(t *testing.T) {
	// Properties: result is block-aligned, idempotent, and never
	// exceeds the input.
	f := func(a uint64) bool {
		addr := Addr(a)
		b := addr.BlockAddr(128)
		return uint64(b)%128 == 0 && b.BlockAddr(128) == b && b <= addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{
		Hit: "hit", ROSMiss: "ROS miss", RWSMiss: "RWS miss",
		CapacityMiss: "capacity miss", Category(99): "unknown",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestCategoryIsMiss(t *testing.T) {
	if Hit.IsMiss() {
		t.Error("Hit.IsMiss() = true")
	}
	for _, c := range []Category{ROSMiss, RWSMiss, CapacityMiss} {
		if !c.IsMiss() {
			t.Errorf("%v.IsMiss() = false", c)
		}
	}
}

func TestRecordAccessCategories(t *testing.T) {
	s := NewL2Stats()
	s.RecordAccess(Result{Category: Hit, DGroup: 0, ClosestDGroup: true})
	s.RecordAccess(Result{Category: Hit, DGroup: 2, ClosestDGroup: false})
	s.RecordAccess(Result{Category: ROSMiss, DGroup: -1})
	s.RecordAccess(Result{Category: RWSMiss, DGroup: -1})
	s.RecordAccess(Result{Category: CapacityMiss, DGroup: -1})

	if got := s.Accesses.Count(LabelHit); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	for _, l := range []string{LabelROS, LabelRWS, LabelCapacity} {
		if got := s.Accesses.Count(l); got != 1 {
			t.Errorf("%s = %d, want 1", l, got)
		}
	}
	if got := s.DataArray.Count(LabelClosest); got != 1 {
		t.Errorf("closest = %d, want 1", got)
	}
	if got := s.DataArray.Count(LabelFarther); got != 1 {
		t.Errorf("farther = %d, want 1", got)
	}
	if got := s.DataArray.Count(LabelMiss); got != 3 {
		t.Errorf("data misses = %d, want 3", got)
	}
}

func TestRecordAccessNoDGroupCountsClosest(t *testing.T) {
	s := NewL2Stats()
	s.RecordAccess(Result{Category: Hit, DGroup: -1})
	if got := s.DataArray.Count(LabelClosest); got != 1 {
		t.Errorf("d-group-less hit should count as closest, got %d", got)
	}
}

func TestMissRate(t *testing.T) {
	s := NewL2Stats()
	if s.MissRate() != 0 {
		t.Error("empty stats should have 0 miss rate")
	}
	for i := 0; i < 9; i++ {
		s.RecordAccess(Result{Category: Hit, DGroup: -1})
	}
	s.RecordAccess(Result{Category: CapacityMiss, DGroup: -1})
	if got := s.MissRate(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MissRate = %v, want 0.1", got)
	}
}

// TestRecordAccessDataArrayLabels pins the Figure 9 data-array
// breakdown: a d-grouped hit (DGroup >= 0, including d-group 0)
// classifies by ClosestDGroup; designs without d-groups (DGroup < 0)
// count every hit as closest.
func TestRecordAccessDataArrayLabels(t *testing.T) {
	s := NewL2Stats()
	s.RecordAccess(Result{Category: Hit, DGroup: 0, ClosestDGroup: true})
	s.RecordAccess(Result{Category: Hit, DGroup: 2, ClosestDGroup: true})
	s.RecordAccess(Result{Category: Hit, DGroup: 0, ClosestDGroup: false})
	s.RecordAccess(Result{Category: Hit, DGroup: -1})
	if got := s.DataArray.Count(LabelClosest); got != 3 {
		t.Errorf("closest hits = %d, want 3", got)
	}
	if got := s.DataArray.Count(LabelFarther); got != 1 {
		t.Errorf("farther hits = %d, want 1 (d-group 0 is a real d-group)", got)
	}
}
