package memsys

// This file defines the dimensional unit types every simulator quantity
// travels through. Before them, timestamps, durations and capacities
// were bare uint64/int and a picosecond↔cycle or timestamp↔duration
// mix-up compiled clean; now the Go type system rejects most unit
// confusions outright and the simlint `unitcheck` analyzer (see
// docs/ANALYSIS.md) flags the remainder — the arithmetic forms Go still
// accepts (timestamp+timestamp, duration×duration), raw conversions
// that would launder a value into a unit, and raw-typed declarations
// whose names claim a unit.
//
// Convention (recorded in DESIGN.md):
//
//   - memsys.Cycle is an absolute point on a core's simulated clock.
//   - memsys.Cycles is a signed span of clock cycles (a latency).
//   - memsys.Bytes is a storage capacity or block size.
//   - cacti.Picoseconds and cacti.Millimeters carry the analytical
//     timing model's physical quantities; cacti.ToCycles is the only
//     ps→cycle conversion, and it always rounds up (ceiling).
//
// Arithmetic across units happens only through the named methods and
// constructors below (and cacti's), which live in the unit-declaring
// packages — the one place `unitcheck` permits raw conversions.

// Cycle is an absolute simulated timestamp: a point on the global
// cycle clock. Timestamps are ordered (comparisons are fine) but do
// not add — only a duration may be added to a timestamp.
//
// unitcheck:unit timestamp
type Cycle uint64

// Cycles is a duration in clock cycles: a latency, an occupancy, a
// makespan. Durations add and subtract; duration×duration has no
// dimensional meaning and is rejected by unitcheck.
//
// unitcheck:unit duration
type Cycles int64

// Bytes is a storage capacity or block size.
//
// unitcheck:unit size
type Bytes int

// Add returns the timestamp d cycles after t.
func (t Cycle) Add(d Cycles) Cycle { return t + Cycle(d) }

// Sub returns the duration elapsed from u to t (t - u).
func (t Cycle) Sub(u Cycle) Cycles { return Cycles(t) - Cycles(u) }

// CyclesOf types a raw count of cycles as a duration. It is the one
// named constructor for durations arriving from dimensionless sources
// (e.g. a workload op's compute-instruction count at CPI 1).
func CyclesOf(n int) Cycles { return Cycles(n) }

// Times scales a duration by a dimensionless count.
func (d Cycles) Times(n int) Cycles { return d * Cycles(n) }

// BytesOf types a raw byte count as a capacity.
func BytesOf(n int) Bytes { return Bytes(n) }

// MB types a mebibyte count as a capacity (the sweep inputs are in MB).
func MB(n int) Bytes { return Bytes(n) << 20 }

// Times scales a capacity by a dimensionless count.
func (b Bytes) Times(n int) Bytes { return b * Bytes(n) }

// Per returns how many unit-sized items fit in b (b / unit, truncated).
func (b Bytes) Per(unit Bytes) int { return int(b / unit) }

// KB returns the capacity in kilobytes as a dimensionless float for
// the analytical timing model's sqrt-scaling formulas.
func (b Bytes) KB() float64 { return float64(b) / 1024 }
