package mutcheck

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// The allowlist (MUTATION_allow at the module root) names mutants that
// are genuinely equivalent — survivors no test *could* kill — one per
// line, with a mandatory reason:
//
//	<site-id> mutcheck:survives <reason>
//
// e.g.
//
//	internal/cache/cache.go:57:12:orderswap mutcheck:survives operands are pure locals, swap is observation-equivalent
//
// The reason is not decoration: a survivor without an allowlist entry
// fails the run, and an entry without a reason fails parsing. This
// mirrors the `hotpath:alloc <reason>` audit discipline — every
// exemption carries its justification next to the exemption.
const allowMarker = "mutcheck:survives"

// Allowlist maps site ID -> reason.
type Allowlist map[string]string

// ParseAllowlist reads the allowlist format. Blank lines and lines
// starting with # are ignored.
func ParseAllowlist(r io.Reader) (Allowlist, error) {
	al := Allowlist{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		id, rest, ok := strings.Cut(text, " ")
		if !ok {
			return nil, fmt.Errorf("mutcheck: allowlist line %d: want %q, got %q", line, "<site-id> "+allowMarker+" <reason>", text)
		}
		rest = strings.TrimSpace(rest)
		reason, ok := strings.CutPrefix(rest, allowMarker)
		if !ok {
			return nil, fmt.Errorf("mutcheck: allowlist line %d: missing %q marker", line, allowMarker)
		}
		reason = strings.TrimSpace(reason)
		if reason == "" {
			return nil, fmt.Errorf("mutcheck: allowlist line %d: %s without a reason (reasons are mandatory)", line, allowMarker)
		}
		if _, dup := al[id]; dup {
			return nil, fmt.Errorf("mutcheck: allowlist line %d: duplicate entry for %s", line, id)
		}
		al[id] = reason
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return al, nil
}

// LoadAllowlist reads path; a missing file is an empty allowlist.
func LoadAllowlist(path string) (Allowlist, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return Allowlist{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseAllowlist(f)
}
