package mutcheck

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// candidate is one matched (operator, node) pair inside a single file.
type candidate struct {
	op    *Operator
	index int // per (file, operator) ordinal
	node  ast.Node
}

// enumerateFile walks f in lexical order and returns every operator
// candidate. The walk order — and therefore each candidate's index —
// is part of the deterministic site identity, shared by enumeration
// and application.
func enumerateFile(f *ast.File) []candidate {
	counts := make(map[string]int, len(Operators))
	var cands []candidate
	var path []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			path = path[:len(path)-1]
			return false
		}
		for _, op := range Operators {
			if op.Match(path, n) {
				cands = append(cands, candidate{op: op, index: counts[op.Name], node: n})
				counts[op.Name]++
			}
		}
		path = append(path, n)
		return true
	})
	return cands
}

// EnumeratePackage parses every non-test Go file in the package
// directory pkgDir (relative to root) that is part of the default
// build, and returns all mutation sites in deterministic order.
func EnumeratePackage(root, pkgDir string) ([]Site, error) {
	dir := filepath.Join(root, filepath.FromSlash(pkgDir))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("mutcheck: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" ||
			len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go" {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var sites []Site
	for _, name := range names {
		rel := pkgDir + "/" + name
		if pkgDir == "." || pkgDir == "" {
			rel = name
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("mutcheck: %w", err)
		}
		if !inDefaultBuild(f) {
			// Files gated behind custom tags (e.g. the seeded
			// schedmutant scheduler bug) are not in the build the
			// target tests compile, so mutating them proves nothing.
			continue
		}
		for _, c := range enumerateFile(f) {
			pos := fset.Position(c.node.Pos())
			before := renderNode(fset, c.node)
			undo := c.op.Apply(c.node)
			after := renderNode(fset, c.node)
			undo()
			sites = append(sites, Site{
				File:   rel,
				Line:   pos.Line,
				Col:    pos.Column,
				Op:     c.op.Name,
				Index:  c.index,
				Before: before,
				After:  after,
			})
		}
	}
	return sites, nil
}

// Mutate parses the original file bytes, applies the site's mutation,
// and returns the formatted mutant source. Locating the candidate by
// (operator, index) re-runs the same walk as enumeration, so the two
// always agree on which node is meant.
func Mutate(src []byte, site Site) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, site.File, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("mutcheck: %w", err)
	}
	for _, c := range enumerateFile(f) {
		if c.op.Name == site.Op && c.index == site.Index {
			c.op.Apply(c.node)
			var buf bytes.Buffer
			if err := format.Node(&buf, fset, f); err != nil {
				return nil, fmt.Errorf("mutcheck: format %s: %w", site.ID(), err)
			}
			return buf.Bytes(), nil
		}
	}
	return nil, fmt.Errorf("mutcheck: site %s not found (stale selection?)", site.ID())
}

// inDefaultBuild reports whether the file's //go:build constraint (if
// any) is satisfied by the default build configuration — the same
// rule internal/simlint's loader applies.
func inDefaultBuild(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "gc" || tag == "unix"
			})
		}
	}
	return true
}
