// Package mutcheck is a stdlib-only (go/ast, go/token, go/format)
// mutation-testing engine for this repository: it enumerates small,
// plausible single-edit faults ("mutants") over the hot simulator
// packages, applies one at a time into a shadow copy of the module,
// runs the test set that should catch a bug in that package, and
// records whether the tests killed the mutant.
//
// The resulting kill ratio is a *measured* answer to "would the tests
// catch a subtle break here?" — the same test-strength question the
// protocheck model checker answers for the coherence protocol, asked
// of the whole timing/allocation substrate. The quick tier (capped
// mutant count per package, -short tests) runs in CI against the
// committed MUTATION_quick.json baseline; the full tier enumerates
// every site for local audits. See docs/ANALYSIS.md, "Mutation
// testing".
//
// Everything is deterministic: site enumeration follows lexical file
// and syntax order, quick-tier sampling orders sites by an FNV-1a hash
// of the site identity (file, position, operator) — no wall clock, no
// global rand — and the JSON report carries no timings, so two
// consecutive runs over the same tree are byte-identical.
package mutcheck

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// A Site is one potential mutation: the Index-th candidate that
// operator Op finds in File when the file's syntax tree is walked in
// lexical order. Sites are located by (File, Op, Index) rather than by
// node pointer so that enumeration and application can parse the file
// independently and still agree.
type Site struct {
	// File is the module-relative, slash-separated path.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Op names the mutation operator (see Operators).
	Op string `json:"op"`
	// Index is the per-(file, operator) candidate ordinal.
	Index int `json:"-"`
	// Before and After are compact renderings of the mutated
	// construct — the "exact diff" a survivor report shows.
	Before string `json:"before"`
	After  string `json:"after"`
}

// ID is the stable identity used by the allowlist and the report:
// file:line:col:op. Positions shift when the file is edited, which is
// intended — a survivor allowlist entry must be re-justified when the
// code around it changes.
func (s Site) ID() string {
	return fmt.Sprintf("%s:%d:%d:%s", s.File, s.Line, s.Col, s.Op)
}

// hash is the deterministic sampling key for quick-tier selection:
// FNV-1a over the site identity. No wall clock, no process state.
func (s Site) hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s:%d:%d:%s", s.File, s.Line, s.Col, s.Op)
	return h.Sum64()
}

// SelectSites returns up to cap sites chosen deterministically by
// hash order (ties broken by ID), or all sites when cap <= 0. The
// hash spreads the sample across files and operators instead of
// front-loading whatever happens to be first in the first file.
func SelectSites(sites []Site, cap int) []Site {
	out := append([]Site(nil), sites...)
	sort.Slice(out, func(i, j int) bool {
		hi, hj := out[i].hash(), out[j].hash()
		if hi != hj {
			return hi < hj
		}
		return out[i].ID() < out[j].ID()
	})
	if cap > 0 && len(out) > cap {
		out = out[:cap]
	}
	// Report and execution order is ID order — stable and readable.
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// DefaultPackages maps each hot package (module-relative directory)
// to the `go test` targets that are expected to kill a mutant in it:
// the package's own tests, the unit tests of its closest dependents,
// and the root facade tests (which run every design end-to-end).
// Heavyweight suites (internal/experiments, internal/simguard) are
// deliberately excluded to keep the quick tier inside its CI budget;
// the full tier uses the same sets, so a kill here is a kill a
// developer can reproduce with plain `go test`.
var DefaultPackages = map[string][]string{
	"internal/bus":       {"./internal/bus", "./internal/cmpsim", "."},
	"internal/cache":     {"./internal/cache", "./internal/core", "./internal/l2", "./internal/nurapid", "./internal/cmpsim", "."},
	"internal/cmpsim":    {"./internal/cmpsim", "."},
	"internal/coherence": {"./internal/coherence", "./internal/core", "./internal/l2", "."},
	"internal/core":      {"./internal/core", "./internal/cmpsim", "."},
	"internal/l2":        {"./internal/l2", "."},
	"internal/memsys":    {"./internal/memsys", "./internal/bus", "./internal/cache", "./internal/core", "./internal/l2", "./internal/cmpsim", "."},
	"internal/nurapid":   {"./internal/nurapid", "."},
}

// PackageNames returns the DefaultPackages keys, sorted.
func PackageNames() []string {
	names := make([]string, 0, len(DefaultPackages))
	for name := range DefaultPackages {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
