package mutcheck

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const minimod = "testdata/minimod"

func enumerateMinimod(t *testing.T) []Site {
	t.Helper()
	sites, err := EnumeratePackage(minimod, ".")
	if err != nil {
		t.Fatalf("EnumeratePackage: %v", err)
	}
	if len(sites) == 0 {
		t.Fatal("no sites enumerated in fixture")
	}
	return sites
}

// Every operator must find at least one candidate in the fixture, and
// every enumerated site must be applicable (Mutate succeeds and
// changes the source).
func TestEveryOperatorEnumeratesAndMutates(t *testing.T) {
	sites := enumerateMinimod(t)
	src, err := os.ReadFile(filepath.Join(minimod, "lib.go"))
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string]int{}
	for _, s := range sites {
		byOp[s.Op]++
		mutated, err := Mutate(src, s)
		if err != nil {
			t.Fatalf("Mutate(%s): %v", s.ID(), err)
		}
		if bytes.Equal(mutated, src) {
			t.Errorf("Mutate(%s) left the source unchanged", s.ID())
		}
		if s.Before == s.After {
			t.Errorf("site %s: before and after render identically: %q", s.ID(), s.Before)
		}
	}
	for _, op := range Operators {
		if byOp[op.Name] == 0 {
			t.Errorf("operator %s found no candidate in the fixture", op.Name)
		}
	}
}

// Each operator's first fixture mutant must compile: the operators are
// designed to produce type-correct single edits, with the compile
// check only as a backstop for rare contexts (branchdel of a
// terminating arm, constant-overflow indexes).
func TestEveryOperatorProducesCompilableMutant(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the fixture once per operator")
	}
	sites := enumerateMinimod(t)
	src, err := os.ReadFile(filepath.Join(minimod, "lib.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range Operators {
		var site *Site
		for i := range sites {
			if sites[i].Op == op.Name {
				site = &sites[i]
				break
			}
		}
		if site == nil {
			t.Errorf("operator %s: no fixture site", op.Name)
			continue
		}
		mutated, err := Mutate(src, *site)
		if err != nil {
			t.Fatalf("Mutate(%s): %v", site.ID(), err)
		}
		dir := t.TempDir()
		gomod, err := os.ReadFile(filepath.Join(minimod, "go.mod"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), gomod, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "lib.go"), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command("go", "build", "./...")
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("operator %s: mutant %s does not compile:\n%s\n--- mutated source:\n%s",
				op.Name, site.ID(), out, mutated)
		}
	}
}

// Site enumeration and quick-tier selection are deterministic: two
// independent runs agree exactly, including hash-sampled subsets.
func TestEnumerationDeterministic(t *testing.T) {
	first := enumerateMinimod(t)
	second := enumerateMinimod(t)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("two enumerations of the same tree differ")
	}
	selA := SelectSites(first, 5)
	selB := SelectSites(second, 5)
	if !reflect.DeepEqual(selA, selB) {
		t.Fatal("two cap-5 selections of the same sites differ")
	}
	if len(selA) != 5 {
		t.Fatalf("cap 5 selected %d sites", len(selA))
	}
	all := SelectSites(first, 0)
	if len(all) != len(first) {
		t.Fatalf("cap 0 selected %d of %d sites", len(all), len(first))
	}
}

func TestAllowlistReasonsEnforced(t *testing.T) {
	good := "# comment\n\nlib.go:9:5:relswap mutcheck:survives clamp boundary is value-equivalent\n"
	al, err := ParseAllowlist(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ParseAllowlist: %v", err)
	}
	if al["lib.go:9:5:relswap"] != "clamp boundary is value-equivalent" {
		t.Fatalf("parsed allowlist = %v", al)
	}
	for _, bad := range []string{
		"lib.go:9:5:relswap mutcheck:survives",                // reason-less
		"lib.go:9:5:relswap mutcheck:survives   ",             // whitespace reason
		"lib.go:9:5:relswap because I said so",                // missing marker
		"lib.go:9:5:relswap",                                  // bare ID
		good + "lib.go:9:5:relswap mutcheck:survives twice\n", // duplicate
	} {
		if _, err := ParseAllowlist(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseAllowlist(%q) accepted an invalid entry", bad)
		}
	}
}

func TestLoadAllowlistMissingFileIsEmpty(t *testing.T) {
	al, err := LoadAllowlist(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(al) != 0 {
		t.Fatalf("LoadAllowlist(missing) = %v, %v", al, err)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Format: 1, Tier: "quick", Cap: 8,
		Packages: []PackageReport{{
			Package: "internal/cache", Sites: 42, Selected: 8, Killed: 7, Survived: 1,
			Survivors: []Survivor{{
				ID: "internal/cache/cache.go:10:2:relswap", File: "internal/cache/cache.go",
				Line: 10, Col: 2, Op: "relswap", Before: "a < b", After: "a <= b",
				Allowlisted: true, Reason: "boundary equivalent",
			}},
		}},
	}
	rep.finish()
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", data, data2)
	}
	if _, err := UnmarshalReport([]byte(`{"format":99}`)); err == nil {
		t.Error("UnmarshalReport accepted unknown format")
	}
}

func TestCompareRatioMayRiseNeverFall(t *testing.T) {
	mk := func(killed, survived int) *Report {
		r := &Report{Format: 1, Tier: "quick", Cap: 8,
			Packages: []PackageReport{{Package: "internal/cache", Killed: killed, Survived: survived}}}
		r.finish()
		return r
	}
	var buf bytes.Buffer
	if n := Compare(mk(7, 1), mk(7, 1), &buf); n != 0 {
		t.Errorf("identical reports: %d failures\n%s", n, buf.String())
	}
	if n := Compare(mk(7, 1), mk(8, 0), &buf); n != 0 {
		t.Errorf("ratio rise: %d failures\n%s", n, buf.String())
	}
	buf.Reset()
	if n := Compare(mk(7, 1), mk(6, 2), &buf); n == 0 {
		t.Error("ratio fall not detected")
	} else if !strings.Contains(buf.String(), "fell below baseline") {
		t.Errorf("unexpected failure output:\n%s", buf.String())
	}
	buf.Reset()
	base := mk(7, 1)
	fresh := &Report{Format: 1, Tier: "quick", Cap: 8}
	fresh.finish()
	if n := Compare(base, fresh, &buf); n == 0 {
		t.Error("missing baseline package not detected")
	}
}

// The full campaign against the fixture: killed and surviving mutants
// land where the fixture's tests say they must, the allowlist turns
// survivors into accounted-for survivors, and two consecutive runs
// produce byte-identical reports.
func TestFixtureCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go test once per fixture mutant")
	}
	shadow := filepath.Join(t.TempDir(), "shadow")
	cfg := Config{
		Root:     minimod,
		Packages: map[string][]string{".": {"."}},
		Shadow:   shadow,
		Short:    true,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Tier != "full" {
		t.Errorf("tier = %q, want full", rep.Tier)
	}
	total := rep.Total
	if total.Killed == 0 {
		t.Fatal("no mutants killed — fixture tests are not running")
	}
	if total.Survived == 0 {
		t.Fatal("no mutants survived — Untested should leak survivors")
	}
	if total.Stillborn > 0 {
		t.Errorf("%d stillborn mutants in fixture (all fixture mutants should compile)", total.Stillborn)
	}
	// Untested is uncovered: every one of its mutants must survive.
	// Its sites all sit on lines 44-48 of lib.go.
	var untestedSurvivors int
	for _, s := range rep.Packages[0].Survivors {
		if s.Line >= 44 && s.Line <= 48 {
			untestedSurvivors++
		}
		if s.Allowlisted {
			t.Errorf("survivor %s allowlisted with empty allowlist", s.ID)
		}
	}
	if untestedSurvivors < 4 {
		t.Errorf("only %d survivors in Untested (want its boolnegate, branchdel, relswap, constret, ... mutants)", untestedSurvivors)
	}
	if got := len(rep.Unallowlisted()); got != total.Survived {
		t.Errorf("Unallowlisted() = %d, want all %d survivors", got, total.Survived)
	}

	// Allowlist every survivor and rerun: the same survivors come
	// back, now accounted for — and after normalizing the allowlist
	// fields away, the rerun's JSON is byte-identical to the first
	// run's, which is the determinism contract the committed
	// MUTATION_quick.json baseline depends on.
	allow := Allowlist{}
	for _, s := range rep.Packages[0].Survivors {
		allow[s.ID] = "fixture: deliberately uncovered"
	}
	cfg.Allow = allow
	rep2, err := Run(cfg)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if rep2.Total.Survived != total.Survived || rep2.Total.Allowlisted != total.Survived {
		t.Errorf("allowlisted rerun: survived %d allowlisted %d, want both %d",
			rep2.Total.Survived, rep2.Total.Allowlisted, total.Survived)
	}
	if len(rep2.Unallowlisted()) != 0 {
		t.Errorf("allowlisted rerun still reports %d unaccounted survivors", len(rep2.Unallowlisted()))
	}
	for i := range rep2.Packages {
		p := &rep2.Packages[i]
		p.Allowlisted = 0
		for j := range p.Survivors {
			p.Survivors[j].Allowlisted = false
			p.Survivors[j].Reason = ""
		}
	}
	rep2.Total.Allowlisted = 0
	b1, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rep2.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two identical campaigns differ beyond allowlist fields:\n%s\nvs\n%s", b1, b2)
	}
}
