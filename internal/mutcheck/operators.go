package mutcheck

import (
	"go/ast"
	"go/format"
	"go/token"
	"strconv"
	"strings"
)

// An Operator is one class of single-edit fault. Match decides whether
// a node (with its ancestor path, root first) is a candidate; Apply
// mutates the node in place and returns an undo func so enumeration
// can render the mutated form without keeping a dirty tree.
type Operator struct {
	Name string
	Doc  string
	// Match reports whether n is a mutation candidate. path holds n's
	// ancestors, outermost first, excluding n itself.
	Match func(path []ast.Node, n ast.Node) bool
	// Apply mutates n in place and returns an undo.
	Apply func(n ast.Node) (undo func())
}

// Operators is the fixed operator suite, in enumeration order. The
// order is part of the deterministic site identity contract — append
// only.
var Operators = []*Operator{
	opRelSwap,
	opOffByOne,
	opBoolNegate,
	opBranchDel,
	opConstRet,
	opOrderSwap,
}

// OperatorNames returns the operator names in enumeration order.
func OperatorNames() []string {
	names := make([]string, len(Operators))
	for i, op := range Operators {
		names[i] = op.Name
	}
	return names
}

// relswap: boundary-condition faults. < ↔ <=, > ↔ >=, == ↔ !=.
var relSwapped = map[token.Token]token.Token{
	token.LSS: token.LEQ,
	token.LEQ: token.LSS,
	token.GTR: token.GEQ,
	token.GEQ: token.GTR,
	token.EQL: token.NEQ,
	token.NEQ: token.EQL,
}

var opRelSwap = &Operator{
	Name: "relswap",
	Doc:  "swap a relational operator with its boundary neighbour (< <-> <=, > <-> >=, == <-> !=)",
	Match: func(path []ast.Node, n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		_, ok = relSwapped[b.Op]
		return ok
	},
	Apply: func(n ast.Node) func() {
		b := n.(*ast.BinaryExpr)
		old := b.Op
		b.Op = relSwapped[old]
		return func() { b.Op = old }
	},
}

// comparisonOps are the operators that make an enclosing BinaryExpr a
// comparison for the purposes of off-by-one context.
var comparisonOps = map[token.Token]bool{
	token.LSS: true, token.LEQ: true, token.GTR: true,
	token.GEQ: true, token.EQL: true, token.NEQ: true,
}

// intLitInContext reports whether the integer literal at the end of
// path participates in a comparison or in index arithmetic — the two
// places the paper-reproduction code hides fence-post constants.
// Scanning stops at expression boundaries (calls, composite literals,
// array lengths, statements) so unrelated constants stay untouched.
func intLitInContext(path []ast.Node, lit *ast.BasicLit) bool {
	child := ast.Node(lit)
	for i := len(path) - 1; i >= 0; i-- {
		switch p := path[i].(type) {
		case *ast.BinaryExpr:
			if comparisonOps[p.Op] {
				return true
			}
		case *ast.IndexExpr:
			return p.Index == child
		case *ast.ParenExpr, *ast.UnaryExpr:
			// transparent wrappers — keep climbing
		case *ast.CallExpr, *ast.CompositeLit, *ast.ArrayType, *ast.KeyValueExpr:
			return false
		default:
			if _, isStmt := p.(ast.Stmt); isStmt {
				return false
			}
			if _, isDecl := p.(ast.Decl); isDecl {
				return false
			}
		}
		child = path[i]
	}
	return false
}

var opOffByOne = &Operator{
	Name: "offbyone",
	Doc:  "add one to an integer literal used in a comparison or in index arithmetic",
	Match: func(path []ast.Node, n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.INT {
			return false
		}
		if _, err := strconv.ParseInt(lit.Value, 0, 32); err != nil {
			return false
		}
		return intLitInContext(path, lit)
	},
	Apply: func(n ast.Node) func() {
		lit := n.(*ast.BasicLit)
		old := lit.Value
		v, _ := strconv.ParseInt(old, 0, 64)
		lit.Value = strconv.FormatInt(v+1, 10)
		return func() { lit.Value = old }
	},
}

var opBoolNegate = &Operator{
	Name: "boolnegate",
	Doc:  "negate the controlling condition of an if or for statement",
	Match: func(path []ast.Node, n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			return s.Cond != nil
		case *ast.ForStmt:
			return s.Cond != nil
		}
		return false
	},
	Apply: func(n ast.Node) func() {
		neg := func(c ast.Expr) ast.Expr {
			return &ast.UnaryExpr{OpPos: c.Pos(), Op: token.NOT, X: &ast.ParenExpr{Lparen: c.Pos(), X: c, Rparen: c.End()}}
		}
		switch s := n.(type) {
		case *ast.IfStmt:
			old := s.Cond
			s.Cond = neg(old)
			return func() { s.Cond = old }
		case *ast.ForStmt:
			old := s.Cond
			s.Cond = neg(old)
			return func() { s.Cond = old }
		}
		panic("mutcheck: boolnegate applied to non-if/for node")
	},
}

var opBranchDel = &Operator{
	Name: "branchdel",
	Doc:  "delete the body of an if statement (branch arm becomes a no-op)",
	Match: func(path []ast.Node, n ast.Node) bool {
		s, ok := n.(*ast.IfStmt)
		return ok && s.Body != nil && len(s.Body.List) > 0
	},
	Apply: func(n ast.Node) func() {
		s := n.(*ast.IfStmt)
		old := s.Body.List
		s.Body.List = nil
		return func() { s.Body.List = old }
	},
}

var opConstRet = &Operator{
	Name: "constret",
	Doc:  "perturb a returned constant (integer literal +1, true <-> false)",
	Match: func(path []ast.Node, n ast.Node) bool {
		if len(path) == 0 {
			return false
		}
		if _, ok := path[len(path)-1].(*ast.ReturnStmt); !ok {
			return false
		}
		switch v := n.(type) {
		case *ast.BasicLit:
			if v.Kind != token.INT {
				return false
			}
			_, err := strconv.ParseInt(v.Value, 0, 32)
			return err == nil
		case *ast.Ident:
			return v.Name == "true" || v.Name == "false"
		}
		return false
	},
	Apply: func(n ast.Node) func() {
		switch v := n.(type) {
		case *ast.BasicLit:
			old := v.Value
			i, _ := strconv.ParseInt(old, 0, 64)
			v.Value = strconv.FormatInt(i+1, 10)
			return func() { v.Value = old }
		case *ast.Ident:
			old := v.Name
			if old == "true" {
				v.Name = "false"
			} else {
				v.Name = "true"
			}
			return func() { v.Name = old }
		}
		panic("mutcheck: constret applied to non-literal node")
	},
}

// orderswap covers tie-break and evaluation-order faults: swapping the
// operands of && / || changes short-circuit order, and swapping the
// operands of an ordered comparison reverses a stable tie-break —
// the fault class PR 7's scheduler work showed matters most here.
// ==/!= operand swaps are excluded as (almost always) equivalent.
var orderSwapOps = map[token.Token]bool{
	token.LAND: true, token.LOR: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
}

var opOrderSwap = &Operator{
	Name: "orderswap",
	Doc:  "swap the operands of && / || or of an ordered comparison (tie-break reversal)",
	Match: func(path []ast.Node, n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		return ok && orderSwapOps[b.Op]
	},
	Apply: func(n ast.Node) func() {
		b := n.(*ast.BinaryExpr)
		b.X, b.Y = b.Y, b.X
		return func() { b.X, b.Y = b.Y, b.X }
	},
}

// renderNode formats a node compactly for Before/After display:
// whitespace runs collapse to single spaces and long renderings are
// truncated. Display only — application formats the whole file.
func renderNode(fset *token.FileSet, n ast.Node) string {
	var sb strings.Builder
	if err := format.Node(&sb, fset, n); err != nil {
		return "<unprintable>"
	}
	s := strings.Join(strings.Fields(sb.String()), " ")
	const max = 120
	if len(s) > max {
		s = s[:max] + "..."
	}
	return s
}
