package mutcheck

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Outcome classifies one executed mutant.
type Outcome string

const (
	// Killed: the target tests failed (or timed out — the watchdogs
	// turn livelocks into failures) against the mutant.
	Killed Outcome = "killed"
	// Survived: every target test passed with the mutant in place.
	Survived Outcome = "survived"
	// Stillborn: the mutant did not compile (or failed vet). Not a
	// test-strength signal, so stillborns are excluded from the kill
	// ratio denominator.
	Stillborn Outcome = "stillborn"
)

// Survivor is one surviving mutant, with the exact diff.
type Survivor struct {
	ID          string `json:"id"`
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Op          string `json:"op"`
	Before      string `json:"before"`
	After       string `json:"after"`
	Allowlisted bool   `json:"allowlisted"`
	Reason      string `json:"reason,omitempty"`
}

// PackageReport aggregates one package's mutants. KillRatio is
// killed/(killed+survived) — allowlisted survivors still count
// against it, so the committed baseline reflects genuine test
// strength, not allowlist growth.
type PackageReport struct {
	Package     string     `json:"package"`
	Sites       int        `json:"sites"`
	Selected    int        `json:"selected"`
	Killed      int        `json:"killed"`
	Survived    int        `json:"survived"`
	Stillborn   int        `json:"stillborn"`
	Allowlisted int        `json:"allowlisted"`
	KillRatio   float64    `json:"kill_ratio"`
	Survivors   []Survivor `json:"survivors,omitempty"`
}

// Report is the MUTATION_quick.json shape. No timestamps, host info,
// or durations: two runs over the same tree must be byte-identical.
type Report struct {
	Format   int             `json:"format"`
	Tier     string          `json:"tier"`
	Cap      int             `json:"cap_per_package"`
	Packages []PackageReport `json:"packages"`
	Total    PackageReport   `json:"total"`
}

// ratio returns killed/(killed+survived), or 1 for an empty
// denominator (no executable mutants means nothing survived).
func ratio(killed, survived int) float64 {
	if killed+survived == 0 {
		return 1
	}
	return float64(killed) / float64(killed+survived)
}

// finish sorts, totals, and fills derived fields.
func (r *Report) finish() {
	sort.Slice(r.Packages, func(i, j int) bool { return r.Packages[i].Package < r.Packages[j].Package })
	total := PackageReport{Package: "total"}
	for i := range r.Packages {
		p := &r.Packages[i]
		sort.Slice(p.Survivors, func(a, b int) bool { return p.Survivors[a].ID < p.Survivors[b].ID })
		p.KillRatio = ratio(p.Killed, p.Survived)
		total.Sites += p.Sites
		total.Selected += p.Selected
		total.Killed += p.Killed
		total.Survived += p.Survived
		total.Stillborn += p.Stillborn
		total.Allowlisted += p.Allowlisted
	}
	total.KillRatio = ratio(total.Killed, total.Survived)
	r.Total = total
}

// Unallowlisted returns the survivors that carry no allowlist reason —
// the ones that fail the run.
func (r *Report) Unallowlisted() []Survivor {
	var out []Survivor
	for _, p := range r.Packages {
		for _, s := range p.Survivors {
			if !s.Allowlisted {
				out = append(out, s)
			}
		}
	}
	return out
}

// MarshalIndent renders the canonical byte-stable JSON form.
func (r *Report) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// UnmarshalReport parses the canonical JSON form.
func UnmarshalReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Format != 1 {
		return nil, fmt.Errorf("mutcheck: unsupported report format %d", r.Format)
	}
	return &r, nil
}

// Compare diffs a fresh report against the committed baseline: the
// kill ratio may rise but never fall, per package and in total, and
// no baseline package may disappear. Returns the number of failures,
// writing one line per failure (and per informational note) to out.
func Compare(base, fresh *Report, out io.Writer) int {
	failures := 0
	byName := make(map[string]*PackageReport, len(fresh.Packages))
	for i := range fresh.Packages {
		byName[fresh.Packages[i].Package] = &fresh.Packages[i]
	}
	for _, b := range base.Packages {
		got, ok := byName[b.Package]
		if !ok {
			fmt.Fprintf(out, "FAIL %s: in baseline but missing from this run\n", b.Package)
			failures++
			continue
		}
		delete(byName, b.Package)
		if got.KillRatio < b.KillRatio {
			fmt.Fprintf(out, "FAIL %s: kill ratio %.3f fell below baseline %.3f (%d/%d killed vs %d/%d)\n",
				b.Package, got.KillRatio, b.KillRatio,
				got.Killed, got.Killed+got.Survived, b.Killed, b.Killed+b.Survived)
			failures++
		}
	}
	extra := make([]string, 0, len(byName))
	for name := range byName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(out, "note: %s is not in the baseline yet\n", name)
	}
	if fresh.Total.KillRatio < base.Total.KillRatio {
		fmt.Fprintf(out, "FAIL total: kill ratio %.3f fell below baseline %.3f\n",
			fresh.Total.KillRatio, base.Total.KillRatio)
		failures++
	}
	return failures
}
