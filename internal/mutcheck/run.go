package mutcheck

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Config drives one mutation run.
type Config struct {
	// Root is the module root to mutate (read-only; mutants are
	// applied in a shadow copy).
	Root string
	// Packages maps module-relative package dirs to the `go test`
	// targets expected to kill mutants there. Defaults to
	// DefaultPackages when nil.
	Packages map[string][]string
	// Cap bounds selected mutants per package; <= 0 means all (full
	// tier).
	Cap int
	// Shadow is the reusable shadow-copy directory. Reusing the same
	// path across runs keeps Go's build cache warm for unmutated
	// packages. Defaults to a fixed name under os.TempDir().
	Shadow string
	// Short passes -short to the target tests (the quick tier).
	Short bool
	// TestTimeout is handed to `go test -timeout` so runaway mutants
	// (e.g. a negated loop condition) self-kill; a second, doubled
	// context deadline backstops the whole invocation. Defaults to
	// 60s.
	TestTimeout time.Duration
	// Allow marks genuinely-equivalent survivors.
	Allow Allowlist
	// Progress, when non-nil, receives one line per executed mutant.
	// Keep it off stdout when byte-stable output matters.
	Progress io.Writer
}

// Validate checks the configuration for nonsense values. Zero values
// mean "use the default" and are valid.
func (c *Config) Validate() error {
	if c.Root == "" {
		return fmt.Errorf("mutcheck: Config.Root must name the module root")
	}
	if c.Cap < 0 {
		return fmt.Errorf("mutcheck: Config.Cap must be >= 0 (0 = full tier), got %d", c.Cap)
	}
	if c.TestTimeout < 0 {
		return fmt.Errorf("mutcheck: Config.TestTimeout must be >= 0, got %v", c.TestTimeout)
	}
	for pkg, targets := range c.packages() {
		if len(targets) == 0 {
			return fmt.Errorf("mutcheck: package %s has no test targets", pkg)
		}
	}
	return nil
}

func (c *Config) packages() map[string][]string {
	if c.Packages == nil {
		return DefaultPackages
	}
	return c.Packages
}

func (c *Config) shadowDir() string {
	if c.Shadow != "" {
		return c.Shadow
	}
	return filepath.Join(os.TempDir(), "cmpnurapid-mutcheck-shadow")
}

func (c *Config) testTimeout() time.Duration {
	if c.TestTimeout > 0 {
		return c.TestTimeout
	}
	return 60 * time.Second
}

// Run executes the configured mutation campaign and returns the
// report. Mutants run one at a time in the shadow copy; the mutated
// file is restored after each, so Go's content-keyed build cache
// makes consecutive mutants of the same package cheap.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shadow := cfg.shadowDir()
	if err := refreshShadow(cfg.Root, shadow); err != nil {
		return nil, err
	}
	if err := preflight(cfg, shadow); err != nil {
		return nil, err
	}
	tier := "full"
	if cfg.Cap > 0 {
		tier = "quick"
	}
	rep := &Report{Format: 1, Tier: tier, Cap: cfg.Cap}
	pkgs := make([]string, 0, len(cfg.packages()))
	for pkg := range cfg.packages() {
		pkgs = append(pkgs, pkg)
	}
	// Sorted for deterministic execution and report order.
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		pr, err := runPackage(cfg, shadow, pkg, cfg.packages()[pkg])
		if err != nil {
			return nil, err
		}
		rep.Packages = append(rep.Packages, *pr)
	}
	rep.finish()
	return rep, nil
}

func runPackage(cfg Config, shadow, pkg string, targets []string) (*PackageReport, error) {
	sites, err := EnumeratePackage(cfg.Root, pkg)
	if err != nil {
		return nil, err
	}
	selected := SelectSites(sites, cfg.Cap)
	pr := &PackageReport{Package: pkg, Sites: len(sites), Selected: len(selected)}
	for _, site := range selected {
		outcome, err := runMutant(cfg, shadow, site, targets)
		if err != nil {
			return nil, err
		}
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-9s %s  %s => %s\n", outcome, site.ID(), site.Before, site.After)
		}
		switch outcome {
		case Killed:
			pr.Killed++
		case Stillborn:
			pr.Stillborn++
		case Survived:
			pr.Survived++
			reason, ok := cfg.Allow[site.ID()]
			if ok {
				pr.Allowlisted++
			}
			pr.Survivors = append(pr.Survivors, Survivor{
				ID: site.ID(), File: site.File, Line: site.Line, Col: site.Col,
				Op: site.Op, Before: site.Before, After: site.After,
				Allowlisted: ok, Reason: reason,
			})
		}
	}
	return pr, nil
}

// preflight runs the union of every target test set against the
// unmutated shadow. This proves the baseline passes — a pre-existing
// failure would spuriously "kill" every mutant — and warms the build
// cache for the shadow path, so the first mutant is as cheap as the
// rest.
func preflight(cfg Config, shadow string) error {
	seen := map[string]bool{}
	var union []string
	for _, targets := range cfg.packages() {
		for _, t := range targets {
			if !seen[t] {
				seen[t] = true
				union = append(union, t)
			}
		}
	}
	sort.Strings(union)
	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, "preflight: go test %s\n", strings.Join(union, " "))
	}
	outcome, out, err := goTest(cfg, shadow, union, 10*cfg.testTimeout())
	if err != nil {
		return err
	}
	if outcome != Survived {
		return fmt.Errorf("mutcheck: target tests fail before any mutation — fix the tree first:\n%s", out)
	}
	return nil
}

// runMutant applies one site into the shadow copy, runs the target
// test sets in order — stopping at the first failure, which is the
// kill — and restores the original file.
func runMutant(cfg Config, shadow string, site Site, targets []string) (Outcome, error) {
	orig, err := os.ReadFile(filepath.Join(cfg.Root, filepath.FromSlash(site.File)))
	if err != nil {
		return "", err
	}
	mutated, err := Mutate(orig, site)
	if err != nil {
		return "", err
	}
	shadowFile := filepath.Join(shadow, filepath.FromSlash(site.File))
	if err := os.WriteFile(shadowFile, mutated, 0o644); err != nil {
		return "", err
	}
	defer os.WriteFile(shadowFile, orig, 0o644)

	// Targets are ordered cheapest-and-likeliest-killer first (the
	// mutated package's own tests), so most kills never pay for the
	// heavier downstream test binaries.
	for _, target := range targets {
		outcome, _, err := goTest(cfg, shadow, []string{target}, cfg.testTimeout())
		if err != nil {
			return "", err
		}
		if outcome != Survived {
			return outcome, nil
		}
	}
	return Survived, nil
}

// goTest runs one `go test` invocation in dir and classifies the
// result: Survived (all pass), Stillborn (build/vet failure), or
// Killed (test failure or hang past the doubled timeout backstop).
func goTest(cfg Config, dir string, targets []string, timeout time.Duration) (Outcome, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*timeout+30*time.Second)
	defer cancel()
	args := []string{"test", "-timeout", timeout.String()}
	if cfg.Short {
		args = append(args, "-short")
	}
	args = append(args, targets...)
	cmd := exec.CommandContext(ctx, "go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	runErr := cmd.Run()
	if runErr == nil {
		return Survived, out.String(), nil
	}
	if ctx.Err() != nil {
		// The backstop fired: the go tool itself hung past the
		// doubled -timeout. The mutant broke forward progress.
		return Killed, out.String(), nil
	}
	if bytes.Contains(out.Bytes(), []byte("[build failed]")) ||
		bytes.Contains(out.Bytes(), []byte("vet: ")) ||
		bytes.Contains(out.Bytes(), []byte("setup failed")) {
		return Stillborn, out.String(), nil
	}
	if _, ok := runErr.(*exec.ExitError); ok {
		return Killed, out.String(), nil
	}
	return "", "", fmt.Errorf("mutcheck: go test: %w (output: %s)", runErr, out.String())
}

// refreshShadow mirrors the module at root into dir, skipping VCS
// metadata. Every file is rewritten each run so a stale shadow can
// never leak old sources into a fresh campaign; the Go build cache is
// content-keyed, so rewriting identical bytes costs nothing there.
func refreshShadow(root, dir string) error {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return err
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	if absDir == absRoot || isUnder(absRoot, absDir) {
		return fmt.Errorf("mutcheck: shadow dir %s must not contain the module root", absDir)
	}
	if err := os.RemoveAll(absDir); err != nil {
		return err
	}
	return filepath.WalkDir(absRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(absRoot, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || (rel != "." && isUnder(path, absDir)) {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(absDir, rel), 0o755)
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(absDir, rel), data, 0o644)
	})
}

// isUnder reports whether path is inside (or equal to) dir.
func isUnder(path, dir string) bool {
	rel, err := filepath.Rel(dir, path)
	if err != nil {
		return false
	}
	return rel == "." || (rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)))
}
