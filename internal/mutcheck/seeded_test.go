package mutcheck

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cmpnurapid/internal/protocheck"
)

// These tests pin scripts/mutants.sh — the single entry point for the
// repo's hand-seeded mutant gates — against the registries it claims
// to cover, so adding a mutant without wiring its gate (or unwiring
// the script from check.sh/CI) fails the suite.

func readRepoFile(t *testing.T, rel string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", filepath.FromSlash(rel)))
	if err != nil {
		t.Fatalf("read %s: %v", rel, err)
	}
	return string(data)
}

// Every registered protocol mutant must appear in the script's loop:
// a new entry in internal/protocheck's registry that nobody added to
// the gate would otherwise go unexercised by check.sh and CI.
func TestMutantsScriptCoversProtocolMutants(t *testing.T) {
	script := readRepoFile(t, "scripts/mutants.sh")
	for _, name := range protocheck.MutantNames() {
		if !strings.Contains(script, name) {
			t.Errorf("scripts/mutants.sh does not gate protocol mutant %q", name)
		}
	}
}

// The script must keep gating every seeded-mutant family, and both
// check.sh and the CI workflow must invoke it (one owner, no drift).
func TestMutantsScriptGatesAndCallers(t *testing.T) {
	script := readRepoFile(t, "scripts/mutants.sh")
	for _, gate := range []string{
		"testdata/unitmutants",    // unit-confusion mutants vs unitcheck
		"testdata/hotpathmutants", // per-tick allocation mutants vs hotpath
		"testdata/syncmutants",    // seeded race mutants vs synccheck (one -race-invisible)
		"-tags schedmutant",       // tie-break-dropping scheduler vs equivalence tests
		"cmd/protocheck -mutant",  // protocol mutants vs the model checker
	} {
		if !strings.Contains(script, gate) {
			t.Errorf("scripts/mutants.sh lost the %q gate", gate)
		}
	}
	for _, caller := range []string{"scripts/check.sh", ".github/workflows/ci.yml"} {
		if !strings.Contains(readRepoFile(t, caller), "mutants.sh") {
			t.Errorf("%s does not invoke scripts/mutants.sh", caller)
		}
	}
}

// TestSeededProtocolMutantsKilled runs the protocheck half of the
// gate for real: every registered mutant must fail the checker. The
// same subprocesses scripts/mutants.sh spawns, so a regression shows
// up here even when nobody runs the script.
func TestSeededProtocolMutantsKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs protocheck once per mutant")
	}
	for _, name := range protocheck.MutantNames() {
		cmd := exec.Command("go", "run", "./cmd/protocheck", "-mutant", name, "-q")
		cmd.Dir = filepath.Join("..", "..")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("seeded protocol mutant %q passed the checker:\n%s", name, out)
		}
	}
}
