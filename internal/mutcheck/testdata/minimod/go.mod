module minimod

go 1.22
