// Package minimod is the mutation-testing fixture: a tiny module with
// at least one candidate site for every mutcheck operator. lib_test.go
// kills the mutants in the tested functions; Untested is deliberately
// uncovered so its mutants survive, exercising the allowlist path.
package minimod

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Last returns the final element of a.
func Last(a []int) int {
	return a[len(a)-1]
}

// Ready reports whether n has reached the threshold.
func Ready(n int) bool {
	if n >= 3 {
		return true
	}
	return false
}

// FirstPositive returns the index of the first positive element that
// is also below limit, or -1.
func FirstPositive(a []int, limit int) int {
	for i := 0; i < len(a); i++ {
		if a[i] > 0 && a[i] < limit {
			return i
		}
	}
	return -1
}

// Untested is never exercised by the fixture tests: every mutant in
// here survives.
func Untested(x int) int {
	if x < 10 {
		return 0
	}
	return 1
}
