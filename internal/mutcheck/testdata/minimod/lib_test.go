package minimod

import "testing"

// The tests hit every boundary the operators perturb: exact threshold
// values (kills relswap/offbyone), both sides of each branch (kills
// boolnegate/branchdel/constret), and sign/limit asymmetries (kills
// orderswap).
func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want int }{
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{5, 0, 10, 5},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%d,%d,%d) = %d, want %d", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLast(t *testing.T) {
	if got := Last([]int{7, 9}); got != 9 {
		t.Errorf("Last = %d, want 9", got)
	}
}

func TestReady(t *testing.T) {
	for n, want := range map[int]bool{0: false, 2: false, 3: true, 4: true} {
		if got := Ready(n); got != want {
			t.Errorf("Ready(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestFirstPositive(t *testing.T) {
	cases := []struct {
		a     []int
		limit int
		want  int
	}{
		{[]int{-1, 1, 3}, 5, 1},
		{[]int{1}, 5, 0},
		{[]int{5}, 5, -1},
		{[]int{-2, -3}, 5, -1},
		{nil, 5, -1},
	}
	for _, c := range cases {
		if got := FirstPositive(c.a, c.limit); got != c.want {
			t.Errorf("FirstPositive(%v,%d) = %d, want %d", c.a, c.limit, got, c.want)
		}
	}
}
