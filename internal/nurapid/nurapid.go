// Package nurapid implements the uniprocessor NuRAPID cache [8]
// ("Non-uniform access with Replacement And Placement usIng Distance
// associativity") that CMP-NuRAPID extends. It is both a substrate —
// the CMP design inherits its sequential tag-data access, d-groups,
// forward/reverse pointers, and promotion/demotion machinery — and a
// reference model the tests compare mechanisms against.
//
// Key ideas reproduced from [8] (paper §2.1):
//
//   - Sequential tag-data access: the tag array is probed first; the
//     forward pointer stored in the matching tag entry pinpoints the
//     data frame, so data placement is decoupled from set-associative
//     way number ("distance associativity").
//   - The data array is divided into large d-groups, each with a single
//     uniform access latency; frequently-accessed blocks are promoted
//     to closer d-groups, and replacement demotes blocks to farther
//     d-groups instead of evicting them.
//   - Each data frame carries a reverse pointer to its tag entry so a
//     demoted block's forward pointer can be updated.
package nurapid

import (
	"fmt"

	"cmpnurapid/internal/cache"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
)

// PromotionPolicy selects how a block moves toward the processor on
// reuse (§3.3.1 and [8] §4).
type PromotionPolicy int

const (
	// NextFastest promotes one d-group closer per reuse ([8]'s best
	// uniprocessor policy).
	NextFastest PromotionPolicy = iota
	// Fastest promotes straight to the closest d-group (the CMP
	// paper's preferred policy, §3.3.1).
	Fastest
	// NoPromotion leaves blocks where they land (for ablation).
	NoPromotion
)

func (p PromotionPolicy) String() string {
	switch p {
	case NextFastest:
		return "next-fastest"
	case Fastest:
		return "fastest"
	case NoPromotion:
		return "none"
	}
	return fmt.Sprintf("PromotionPolicy(%d)", int(p))
}

// DGroupConfig sizes one distance group.
type DGroupConfig struct {
	Frames  int           // number of block frames
	Latency memsys.Cycles // uniform access latency in cycles
}

// Config describes a NuRAPID cache.
type Config struct {
	Sets       int
	Ways       int
	BlockBytes memsys.Bytes
	TagLatency memsys.Cycles
	MemLatency memsys.Cycles
	DGroups    []DGroupConfig
	Promotion  PromotionPolicy
	Seed       uint64
}

// DefaultConfig returns an 8 MB, 8-way NuRAPID with four 2 MB d-groups
// at the latencies of the paper's Table 1 (6/20/20/33 cycles seen from
// the single processor, nearest first) and a 300-cycle memory.
func DefaultConfig() Config {
	const blockBytes = 128
	frames := (2 << 20) / blockBytes
	return Config{
		Sets:       (8 << 20) / (blockBytes * 8),
		Ways:       8,
		BlockBytes: blockBytes,
		TagLatency: 4,
		MemLatency: 300,
		DGroups: []DGroupConfig{
			{Frames: frames, Latency: 6},
			{Frames: frames, Latency: 20},
			{Frames: frames, Latency: 20},
			{Frames: frames, Latency: 33},
		},
		Promotion: NextFastest,
		Seed:      1,
	}
}

// ptr is a forward pointer: which frame in which d-group holds a block.
type ptr struct {
	dgroup int
	frame  int
}

// tagData is the payload of one tag entry.
type tagData struct {
	fwd ptr
}

// frame is one data-array frame; rev is the reverse pointer.
type frame struct {
	valid bool
	rev   *cache.Line[tagData]
}

type dgroup struct {
	latency memsys.Cycles
	frames  []frame
	free    []int // indices of invalid frames
	used    int
}

// Stats accumulates NuRAPID measurements.
type Stats struct {
	Hits       uint64
	Misses     uint64
	HitsByDG   []uint64
	Promotions uint64
	Demotions  uint64
	Evictions  uint64
}

// Cache is a uniprocessor NuRAPID cache.
type Cache struct {
	cfg     Config
	tags    *cache.Array[tagData]
	dgroups []*dgroup
	rand    *rng.Source
	stats   Stats
}

// New builds a NuRAPID cache. The total frame count must equal the tag
// entry count: in the uniprocessor design tags and frames are 1:1, so
// an invalid tag entry exists exactly when a free frame exists.
func New(cfg Config) *Cache {
	if len(cfg.DGroups) == 0 {
		panic("nurapid: no d-groups")
	}
	totalFrames := 0
	for _, d := range cfg.DGroups {
		totalFrames += d.Frames
	}
	if totalFrames != cfg.Sets*cfg.Ways {
		panic(fmt.Sprintf("nurapid: %d frames != %d tag entries", totalFrames, cfg.Sets*cfg.Ways))
	}
	c := &Cache{
		cfg:  cfg,
		tags: cache.NewArray[tagData](cache.Geometry{Sets: cfg.Sets, Ways: cfg.Ways, BlockBytes: cfg.BlockBytes}),
		rand: rng.New(cfg.Seed),
	}
	for _, dc := range cfg.DGroups {
		dg := &dgroup{latency: dc.Latency, frames: make([]frame, dc.Frames)}
		dg.free = make([]int, dc.Frames)
		for i := range dg.free {
			dg.free[i] = dc.Frames - 1 - i // pop from the end -> ascending use
		}
		c.dgroups = append(c.dgroups, dg)
	}
	c.stats.HitsByDG = make([]uint64, len(cfg.DGroups))
	return c
}

// Stats returns the accumulated measurements.
func (c *Cache) Stats() Stats { return c.stats }

// Access performs one reference and returns the total latency in
// cycles and whether it hit. NuRAPID is a uniprocessor cache: there is
// no coherence, and writes behave like reads for placement purposes.
//
// hotpath:root
func (c *Cache) Access(addr memsys.Addr) (latency memsys.Cycles, hit bool) {
	addr = addr.BlockAddr(c.cfg.BlockBytes)
	latency = c.cfg.TagLatency

	if line := c.tags.Probe(addr); line != nil {
		c.tags.Touch(line)
		dg := line.Data.fwd.dgroup
		latency += c.dgroups[dg].latency
		c.stats.Hits++
		c.stats.HitsByDG[dg]++
		c.promote(line)
		return latency, true
	}

	// Miss: data replacement (evict the tag victim, freeing its frame),
	// then place the new block in the closest d-group, demoting a chain
	// of blocks toward the freed frame.
	c.stats.Misses++
	latency += c.cfg.MemLatency

	victim := c.tags.Victim(addr)
	freedDG := -1
	if victim.Valid {
		p := victim.Data.fwd
		c.releaseFrame(p)
		freedDG = p.dgroup
		c.stats.Evictions++
		c.tags.Invalidate(victim)
	}
	target := c.dgroupWithFreeFrame(freedDG)
	c.makeRoomInClosest(target)
	f := c.takeFrame(0)
	c.tags.Install(victim, addr, tagData{fwd: ptr{dgroup: 0, frame: f}})
	c.dgroups[0].frames[f] = frame{valid: true, rev: victim}
	return latency, false
}

// promote applies the configured promotion policy to a block that hit
// in a non-closest d-group.
func (c *Cache) promote(line *cache.Line[tagData]) {
	cur := line.Data.fwd.dgroup
	if cur == 0 || c.cfg.Promotion == NoPromotion {
		return
	}
	target := 0
	if c.cfg.Promotion == NextFastest {
		target = cur - 1
	}
	c.moveBlock(line, target)
	c.stats.Promotions++
}

// moveBlock moves line's data to d-group target by swapping with a
// random victim there (or taking a free frame).
func (c *Cache) moveBlock(line *cache.Line[tagData], target int) {
	from := line.Data.fwd
	dg := c.dgroups[target]
	if len(dg.free) > 0 {
		to := c.takeFrame(target)
		c.releaseFrame(from)
		c.placeAt(line, ptr{target, to})
		return
	}
	// Swap with a random victim in the target d-group (demoting it to
	// the promoted block's old frame).
	vi := c.rand.Intn(len(dg.frames))
	victimRev := dg.frames[vi].rev
	c.placeAt(victimRev, from)
	c.placeAt(line, ptr{target, vi})
	c.stats.Demotions++
}

// placeAt points tag entry line at p and fixes p's reverse pointer.
func (c *Cache) placeAt(line *cache.Line[tagData], p ptr) {
	line.Data.fwd = p
	c.dgroups[p.dgroup].frames[p.frame] = frame{valid: true, rev: line}
}

// dgroupWithFreeFrame returns freedDG when valid, else the nearest
// d-group holding a free frame.
func (c *Cache) dgroupWithFreeFrame(freedDG int) int {
	if freedDG >= 0 {
		return freedDG
	}
	for i, dg := range c.dgroups {
		if len(dg.free) > 0 {
			return i
		}
	}
	panic("nurapid: no free frame anywhere despite invalid tag (tag/frame accounting broken)")
}

// makeRoomInClosest demotes a chain of random victims from d-group 0
// toward target so a free frame ends up in d-group 0. This is [8]'s
// distance replacement to a specific d-group: repeated demotions from
// each d-group to the next-fastest until the freed frame is reached.
func (c *Cache) makeRoomInClosest(target int) {
	for g := target; g > 0; g-- {
		// Move a random block from d-group g-1 into the free frame of
		// d-group g.
		to := c.takeFrame(g)
		src := c.dgroups[g-1]
		vi := c.pickValidFrame(src)
		mov := src.frames[vi].rev
		c.releaseFrame(ptr{g - 1, vi})
		c.placeAt(mov, ptr{g, to})
		c.stats.Demotions++
	}
}

// pickValidFrame returns a random valid frame index in dg. A few
// random draws almost always succeed (demotion sources are full or
// near-full); the linear fallback bounds the worst case.
func (c *Cache) pickValidFrame(dg *dgroup) int {
	for try := 0; try < 8; try++ {
		vi := c.rand.Intn(len(dg.frames))
		if dg.frames[vi].valid {
			return vi
		}
	}
	start := c.rand.Intn(len(dg.frames))
	for i := 0; i < len(dg.frames); i++ {
		vi := (start + i) % len(dg.frames)
		if dg.frames[vi].valid {
			return vi
		}
	}
	panic("nurapid: no valid frame to demote")
}

func (c *Cache) takeFrame(dgroup int) int {
	dg := c.dgroups[dgroup]
	if len(dg.free) == 0 {
		panic("nurapid: takeFrame on full d-group")
	}
	f := dg.free[len(dg.free)-1]
	dg.free = dg.free[:len(dg.free)-1]
	dg.used++
	return f
}

func (c *Cache) releaseFrame(p ptr) {
	dg := c.dgroups[p.dgroup]
	dg.frames[p.frame] = frame{}
	// hotpath:alloc free list is pre-sized to the d-group's frame count and never grows past it
	dg.free = append(dg.free, p.frame)
	dg.used--
}

// CheckInvariants verifies pointer consistency: every valid tag's
// forward pointer targets a valid frame whose reverse pointer is that
// tag, frame free-lists are exact complements of valid frames, and the
// number of valid tags equals the number of used frames. Tests call
// this after workloads; it panics with a description on violation.
func (c *Cache) CheckInvariants() {
	validTags := 0
	c.tags.ForEach(func(_ int, l *cache.Line[tagData]) {
		validTags++
		p := l.Data.fwd
		if p.dgroup < 0 || p.dgroup >= len(c.dgroups) {
			panic(fmt.Sprintf("nurapid: tag fwd d-group %d out of range", p.dgroup))
		}
		fr := c.dgroups[p.dgroup].frames[p.frame]
		if !fr.valid {
			panic("nurapid: tag forward pointer targets an invalid frame (dangling)")
		}
		if fr.rev != l {
			panic("nurapid: frame reverse pointer does not match tag entry")
		}
	})
	usedFrames := 0
	for gi, dg := range c.dgroups {
		valid := 0
		for _, f := range dg.frames {
			if f.valid {
				valid++
			}
		}
		usedFrames += valid
		if valid != dg.used {
			panic(fmt.Sprintf("nurapid: d-group %d used count %d != %d valid frames", gi, dg.used, valid))
		}
		if valid+len(dg.free) != len(dg.frames) {
			panic(fmt.Sprintf("nurapid: d-group %d free list inconsistent", gi))
		}
	}
	if validTags != usedFrames {
		panic(fmt.Sprintf("nurapid: %d valid tags != %d used frames", validTags, usedFrames))
	}
}

// DGroupOf returns which d-group currently holds addr, or -1.
func (c *Cache) DGroupOf(addr memsys.Addr) int {
	if l := c.tags.Probe(addr.BlockAddr(c.cfg.BlockBytes)); l != nil {
		return l.Data.fwd.dgroup
	}
	return -1
}
