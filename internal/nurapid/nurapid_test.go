package nurapid

import (
	"fmt"
	"strings"
	"testing"

	"cmpnurapid/internal/cache"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
)

// tinyConfig builds a small NuRAPID for direct inspection: 16 sets,
// 4 ways, 64 B blocks, two 32-frame d-groups (64 frames = 64 tags).
func tinyConfig(promo PromotionPolicy) Config {
	return Config{
		Sets: 16, Ways: 4, BlockBytes: 64,
		TagLatency: 4, MemLatency: 300,
		DGroups: []DGroupConfig{
			{Frames: 32, Latency: 6},
			{Frames: 32, Latency: 20},
		},
		Promotion: promo,
		Seed:      7,
	}
}

func TestNewValidatesFrameCount(t *testing.T) {
	cfg := tinyConfig(NextFastest)
	cfg.DGroups[0].Frames = 31 // 63 != 64
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched frame/tag count did not panic")
		}
	}()
	New(cfg)
}

func TestMissThenHitLatency(t *testing.T) {
	c := New(tinyConfig(NextFastest))
	addr := memsys.Addr(0x1000)
	lat, hit := c.Access(addr)
	if hit {
		t.Fatal("cold access hit")
	}
	if lat != 4+300 {
		t.Errorf("miss latency = %d, want 304", lat)
	}
	// Second access hits in the closest d-group.
	lat, hit = c.Access(addr)
	if !hit {
		t.Fatal("second access missed")
	}
	if lat != 4+6 {
		t.Errorf("closest-d-group hit latency = %d, want 10", lat)
	}
	c.CheckInvariants()
}

func TestNewBlocksPlaceInClosest(t *testing.T) {
	c := New(tinyConfig(NextFastest))
	for i := 0; i < 8; i++ {
		c.Access(memsys.Addr(i * 64))
	}
	for i := 0; i < 8; i++ {
		if g := c.DGroupOf(memsys.Addr(i * 64)); g != 0 {
			t.Errorf("block %d placed in d-group %d, want 0", i, g)
		}
	}
	c.CheckInvariants()
}

// TestDemotionChain fills the closest d-group and checks overflow
// demotes blocks to the farther d-group rather than evicting them.
func TestDemotionChain(t *testing.T) {
	c := New(tinyConfig(NextFastest))
	// 33 distinct blocks spread across sets: closest d-group holds 32.
	for i := 0; i < 33; i++ {
		c.Access(memsys.Addr(i * 64))
	}
	c.CheckInvariants()
	// All 33 must still be cached (capacity is 64 frames): no block was
	// evicted, one was demoted.
	inFar := 0
	for i := 0; i < 33; i++ {
		g := c.DGroupOf(memsys.Addr(i * 64))
		if g == -1 {
			t.Fatalf("block %d evicted despite free capacity", i)
		}
		if g == 1 {
			inFar++
		}
	}
	if inFar != 1 {
		t.Errorf("%d blocks in farther d-group, want exactly 1", inFar)
	}
	if c.Stats().Demotions == 0 {
		t.Error("no demotions recorded")
	}
}

// TestPromotionNextFastest checks a block that hits in a farther
// d-group moves one group closer.
func TestPromotionNextFastest(t *testing.T) {
	c := New(tinyConfig(NextFastest))
	for i := 0; i < 33; i++ {
		c.Access(memsys.Addr(i * 64))
	}
	// Find the demoted block and re-access it.
	var demoted memsys.Addr = 0xffffffff
	for i := 0; i < 33; i++ {
		if c.DGroupOf(memsys.Addr(i*64)) == 1 {
			demoted = memsys.Addr(i * 64)
		}
	}
	if demoted == 0xffffffff {
		t.Fatal("no demoted block found")
	}
	lat, hit := c.Access(demoted)
	if !hit || lat != 4+20 {
		t.Fatalf("farther hit = (%d, %v), want (24, true)", lat, hit)
	}
	if g := c.DGroupOf(demoted); g != 0 {
		t.Errorf("block not promoted: d-group %d, want 0", g)
	}
	if c.Stats().Promotions != 1 {
		t.Errorf("Promotions = %d, want 1", c.Stats().Promotions)
	}
	c.CheckInvariants()
}

// TestPromotionSwapsVictim checks promotion into a full closest d-group
// demotes a victim (a swap), preserving total occupancy.
func TestPromotionSwapsVictim(t *testing.T) {
	c := New(tinyConfig(Fastest))
	for i := 0; i < 40; i++ {
		c.Access(memsys.Addr(i * 64))
	}
	c.CheckInvariants()
	// Re-access any block in the farther d-group; it must land in 0.
	for i := 0; i < 40; i++ {
		a := memsys.Addr(i * 64)
		if c.DGroupOf(a) == 1 {
			c.Access(a)
			if g := c.DGroupOf(a); g != 0 {
				t.Fatalf("fastest promotion left block in d-group %d", g)
			}
			break
		}
	}
	c.CheckInvariants()
}

func TestNoPromotionPolicy(t *testing.T) {
	c := New(tinyConfig(NoPromotion))
	for i := 0; i < 33; i++ {
		c.Access(memsys.Addr(i * 64))
	}
	var demoted memsys.Addr
	found := false
	for i := 0; i < 33; i++ {
		if c.DGroupOf(memsys.Addr(i*64)) == 1 {
			demoted, found = memsys.Addr(i*64), true
		}
	}
	if !found {
		t.Fatal("no demoted block")
	}
	c.Access(demoted)
	if g := c.DGroupOf(demoted); g != 1 {
		t.Errorf("NoPromotion moved block to d-group %d", g)
	}
	if c.Stats().Promotions != 0 {
		t.Error("NoPromotion recorded promotions")
	}
}

// TestEvictionOnSetConflict checks data replacement: conflicting blocks
// in one set evict the LRU once associativity is exhausted.
func TestEvictionOnSetConflict(t *testing.T) {
	cfg := tinyConfig(NextFastest)
	c := New(cfg)
	// 5 blocks mapping to set 0 in a 4-way cache: stride = sets*block.
	stride := cfg.BlockBytes.Times(cfg.Sets)
	for i := 0; i < 5; i++ {
		c.Access(memsys.Addr(stride.Times(i)))
	}
	if c.DGroupOf(0) != -1 {
		t.Error("LRU conflict victim still present")
	}
	for i := 1; i < 5; i++ {
		if c.DGroupOf(memsys.Addr(stride.Times(i))) == -1 {
			t.Errorf("recent block %d evicted", i)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", c.Stats().Evictions)
	}
	c.CheckInvariants()
}

// TestInvariantsUnderRandomWorkload hammers the cache with a random
// address stream and verifies full pointer consistency afterwards.
func TestInvariantsUnderRandomWorkload(t *testing.T) {
	for _, promo := range []PromotionPolicy{NextFastest, Fastest, NoPromotion} {
		c := New(tinyConfig(promo))
		r := rng.New(42)
		for i := 0; i < 20000; i++ {
			addr := memsys.Addr(r.Intn(256) * 64) // 256-block footprint, 4x capacity
			c.Access(addr)
			if i%1000 == 0 {
				c.CheckInvariants()
			}
		}
		c.CheckInvariants()
		s := c.Stats()
		if s.Hits == 0 || s.Misses == 0 {
			t.Errorf("%v: degenerate run (hits=%d misses=%d)", promo, s.Hits, s.Misses)
		}
	}
}

// TestHotBlocksMigrateClose runs a skewed workload and checks that the
// distance-associativity goal holds: most hits land in the closest
// d-group even though it is only half the capacity.
func TestHotBlocksMigrateClose(t *testing.T) {
	c := New(tinyConfig(NextFastest))
	r := rng.New(9)
	z := rng.NewZipf(r, 256, 1.2)
	for i := 0; i < 50000; i++ {
		c.Access(memsys.Addr(z.Next() * 64))
	}
	s := c.Stats()
	if s.HitsByDG[0] <= s.HitsByDG[1]*2 {
		t.Errorf("closest d-group not dominating: %v", s.HitsByDG)
	}
	c.CheckInvariants()
}

func TestDefaultConfigGeometry(t *testing.T) {
	cfg := DefaultConfig()
	frames := 0
	for _, d := range cfg.DGroups {
		frames += d.Frames
	}
	if frames != cfg.Sets*cfg.Ways {
		t.Errorf("default config frames %d != tags %d", frames, cfg.Sets*cfg.Ways)
	}
	if cfg.DGroups[0].Latency != 6 || cfg.DGroups[3].Latency != 33 {
		t.Error("default d-group latencies do not match Table 1")
	}
	// Smoke: the 8 MB default must construct and run.
	c := New(cfg)
	for i := 0; i < 1000; i++ {
		c.Access(memsys.Addr(i * 128))
	}
	c.CheckInvariants()
}

func TestPromotionPolicyString(t *testing.T) {
	if NextFastest.String() != "next-fastest" || Fastest.String() != "fastest" ||
		NoPromotion.String() != "none" {
		t.Error("PromotionPolicy String() broken")
	}
}

// TestCheckInvariantsReportsOutOfRangeDGroup: a forward pointer whose
// d-group equals len(dgroups) is out of range and must be reported by
// the invariant checker itself (with the package's "nurapid:" panic
// prefix), not left to surface as a raw index-out-of-range later.
func TestCheckInvariantsReportsOutOfRangeDGroup(t *testing.T) {
	c := New(tinyConfig(NoPromotion))
	c.Access(0x1000)
	c.tags.ForEach(func(_ int, l *cache.Line[tagData]) {
		l.Data.fwd.dgroup = len(c.dgroups)
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CheckInvariants accepted a fwd d-group == len(dgroups)")
		}
		if !strings.Contains(fmt.Sprint(r), "nurapid:") {
			t.Fatalf("panic %v is not the invariant checker's own diagnostic", r)
		}
	}()
	c.CheckInvariants()
}
