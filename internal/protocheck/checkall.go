package protocheck

import "fmt"

// Result aggregates every check protocheck runs over a set of
// protocols.
type Result struct {
	MaxN         int
	Explorations []*Exploration // per protocol, per N in 2..MaxN
	DiffStates   int            // lockstep differential state count at MaxN
	Violations   []Violation
}

// Ok reports whether every check passed.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// CheckAll runs the full battery over the given protocols: golden
// Figure 4 drift, processor-side totality, joint-state BFS with the
// safety invariants at every cache count from 2 to maxN, the
// snoop-panic/unreachability cross-check, and (when both MESI and
// MESIC are present) the dirty-free differential.
func CheckAll(maxN int, protocols ...*Protocol) *Result {
	if maxN < 2 {
		panic("protocheck: CheckAll needs maxN >= 2")
	}
	if len(protocols) == 0 {
		protocols = []*Protocol{MESI(), MESIC()}
	}
	r := &Result{MaxN: maxN}
	names := map[string]bool{}
	for _, p := range protocols {
		names[p.Name] = true
		r.Violations = append(r.Violations, CheckGolden(p)...)
		r.Violations = append(r.Violations, p.CheckTotality()...)
		for n := 2; n <= maxN; n++ {
			e := p.Explore(n)
			r.Explorations = append(r.Explorations, e)
			r.Violations = append(r.Violations, e.Violations...)
			if n == maxN {
				r.Violations = append(r.Violations, p.CheckSnoopPanics(e)...)
			}
		}
	}
	if names["MESI"] && names["MESIC"] {
		states, violations := DiffExplore(maxN)
		r.DiffStates = states
		r.Violations = append(r.Violations, violations...)
	}
	return r
}

// Summary renders a short human-readable account of what was checked.
func (r *Result) Summary() string {
	out := ""
	for _, e := range r.Explorations {
		out += fmt.Sprintf("%-6s N=%d: %4d joint states, %5d transitions, %2d unreachable snoop inputs\n",
			e.Protocol.Name, e.N, e.States, e.Edges, len(e.UnreachableSnoopPairs()))
	}
	if r.DiffStates > 0 {
		out += fmt.Sprintf("differential (dirty-free lockstep, N=%d): %d state pairs, MESI ≡ MESIC\n",
			r.MaxN, r.DiffStates)
	}
	out += fmt.Sprintf("violations: %d\n", len(r.Violations))
	return out
}
