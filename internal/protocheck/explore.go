package protocheck

import (
	"fmt"
	"sort"

	"cmpnurapid/internal/coherence"
)

// SnoopPair is one (holder state, snooped transaction) input to a
// snoop function.
type SnoopPair struct {
	S  coherence.State
	Op coherence.BusOp
}

func (p SnoopPair) String() string { return "(" + p.S.String() + ", " + p.Op.String() + ")" }

// maxViolations caps the number of violations one exploration records;
// a broken protocol repeats the same class of failure across thousands
// of states and the first few are what a human reads.
const maxViolations = 50

// Exploration is the result of a BFS over the joint state space of N
// caches sharing one line.
type Exploration struct {
	Protocol *Protocol
	N        int
	States   int // distinct joint states reached
	Edges    int // transitions taken

	// Reachable records every snoop input some interleaving actually
	// exercised; the complement over States × snoopableOps is the
	// proven-unreachable set.
	Reachable map[SnoopPair]bool

	Violations []Violation
	seen       map[string]bool
}

// Explore BFSes the joint state space of n caches, all starting at I,
// under every interleaving of per-cache PrRd/PrWr operations, checking
// the safety invariants on each reached state, C-monotonicity on each
// edge, and that no reachable input panics.
func (p *Protocol) Explore(n int) *Exploration {
	if n < 2 {
		panic("protocheck: Explore needs at least 2 caches")
	}
	e := &Exploration{
		Protocol:  p,
		N:         n,
		Reachable: map[SnoopPair]bool{},
		seen:      map[string]bool{},
	}
	start := make([]coherence.State, n)
	e.visit(start, "initial state")
	queue := [][]coherence.State{start}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		for i := 0; i < n; i++ {
			for _, op := range procOps {
				next, ok := e.step(st, i, op)
				if !ok {
					continue
				}
				e.Edges++
				provenance := fmt.Sprintf("%s, cache %d issues %v", fmtStates(st), i, op)
				for j := range st {
					if st[j] == coherence.Communication && next[j] != coherence.Communication {
						e.violate("c-exit", "cache %d left C for %v on edge %s (only replacement may exit C)",
							j, next[j], provenance)
					}
				}
				if !e.seen[key(next)] {
					e.visit(next, provenance)
					queue = append(queue, next)
				}
			}
		}
	}
	return e
}

// visit marks a joint state reached and checks its safety.
func (e *Exploration) visit(st []coherence.State, provenance string) {
	e.seen[key(st)] = true
	e.States++
	if msg := checkSafety(e.Protocol, st); msg != "" {
		e.violate("safety", "%s at %s (reached via %s)", msg, fmtStates(st), provenance)
	}
}

// step applies one processor operation by cache i and the induced
// snoops, returning the successor state. ok is false when a transition
// function panicked (recorded as a violation): the edge is dropped so
// the BFS can keep exploring the rest of the space.
func (e *Exploration) step(st []coherence.State, i int, op coherence.ProcOp) (next []coherence.State, ok bool) {
	sig := signalsFor(st, i)
	nextI, busOp, panicMsg := callProc(e.Protocol.Proc, st[i], op, sig)
	if panicMsg != "" {
		e.violate("panic", "%s.Proc(%v, %v, %+v) panicked on reachable input at %s: %s",
			e.Protocol.Name, st[i], op, sig, fmtStates(st), panicMsg)
		return nil, false
	}
	next = make([]coherence.State, len(st))
	copy(next, st)
	next[i] = nextI
	if busOp == coherence.BusNone {
		return next, true
	}
	for j := range st {
		if j == i {
			continue
		}
		e.Reachable[SnoopPair{st[j], busOp}] = true
		nextJ, _, panicMsg := callSnoop(e.Protocol.Snoop, st[j], busOp)
		if panicMsg != "" {
			e.violate("panic", "%s.Snoop(%v, %v) panicked on reachable input at %s (cache %d issued %v): %s",
				e.Protocol.Name, st[j], busOp, fmtStates(st), i, op, panicMsg)
			return nil, false
		}
		next[j] = nextJ
	}
	return next, true
}

// UnreachableSnoopPairs returns every (state, snoopable op) input no
// interleaving produced, sorted for deterministic output. These are
// the inputs internal/coherence may legitimately panic on.
func (e *Exploration) UnreachableSnoopPairs() []SnoopPair {
	var pairs []SnoopPair
	for _, s := range e.Protocol.States {
		for _, op := range snoopableOps {
			if !e.Reachable[SnoopPair{s, op}] {
				pairs = append(pairs, SnoopPair{s, op})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].S != pairs[j].S {
			return pairs[i].S < pairs[j].S
		}
		return pairs[i].Op < pairs[j].Op
	})
	return pairs
}

func (e *Exploration) violate(kind, format string, args ...any) {
	if len(e.Violations) >= maxViolations {
		return
	}
	v := Violation{Kind: kind, Message: fmt.Sprintf(format, args...)}
	for _, have := range e.Violations {
		if have == v {
			return
		}
	}
	e.Violations = append(e.Violations, v)
}

// key serializes a joint state for the visited set.
func key(st []coherence.State) string {
	b := make([]byte, len(st))
	for i, s := range st {
		b[i] = byte(s)
	}
	return string(b)
}

func callProc(fn func(coherence.State, coherence.ProcOp, coherence.Signals) (coherence.State, coherence.BusOp),
	s coherence.State, op coherence.ProcOp, sig coherence.Signals) (next coherence.State, bus coherence.BusOp, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	next, bus = fn(s, op, sig)
	return next, bus, ""
}

func callSnoop(fn func(coherence.State, coherence.BusOp) (coherence.State, coherence.SnoopAction),
	s coherence.State, op coherence.BusOp) (next coherence.State, act coherence.SnoopAction, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	next, act = fn(s, op)
	return next, act, ""
}

// DiffExplore runs MESI and MESIC in lockstep over every interleaving
// in which no requester ever samples an asserted dirty line (in either
// protocol), and verifies the two executions are indistinguishable:
// identical joint states, identical bus transactions, identical snoop
// results. This is §3.2's containment claim — MESIC changes protocol
// behaviour only for dirty sharing — verified over the full pruned
// state space rather than sampled traces.
func DiffExplore(n int) (states int, violations []Violation) {
	mesi, mesic := MESI(), MESIC()
	type pair struct{ a, b []coherence.State }
	start := pair{make([]coherence.State, n), make([]coherence.State, n)}
	seen := map[string]bool{key(start.a) + "|" + key(start.b): true}
	queue := []pair{start}
	states = 1
	addViolation := func(format string, args ...any) {
		if len(violations) < maxViolations {
			violations = append(violations, Violation{Kind: "differential", Message: fmt.Sprintf(format, args...)})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i := 0; i < n; i++ {
			sigA, sigB := signalsFor(cur.a, i), signalsFor(cur.b, i)
			if sigA.Dirty || sigB.Dirty {
				continue // dirty sharing: the protocols are allowed to diverge
			}
			if sigA != sigB {
				addViolation("signal divergence at %s vs %s: cache %d samples %+v under MESI, %+v under MESIC",
					fmtStates(cur.a), fmtStates(cur.b), i, sigA, sigB)
				continue
			}
			for _, op := range procOps {
				nextA, busA, panicA := stepLockstep(mesi, cur.a, i, op, sigA)
				nextB, busB, panicB := stepLockstep(mesic, cur.b, i, op, sigB)
				if panicA != "" || panicB != "" {
					addViolation("panic on dirty-free input (%v by cache %d at %s): MESI=%q MESIC=%q",
						op, i, fmtStates(cur.a), panicA, panicB)
					continue
				}
				if busA != busB {
					addViolation("bus divergence: cache %d %v at %s emits %v under MESI but %v under MESIC",
						i, op, fmtStates(cur.a), busA, busB)
				}
				if key(nextA) != key(nextB) {
					addViolation("state divergence after cache %d %v at %s: MESI → %s, MESIC → %s",
						i, op, fmtStates(cur.a), fmtStates(nextA), fmtStates(nextB))
				}
				k := key(nextA) + "|" + key(nextB)
				if !seen[k] {
					seen[k] = true
					states++
					queue = append(queue, pair{nextA, nextB})
				}
			}
		}
	}
	return states, violations
}

// stepLockstep is Exploration.step without the reachability recording,
// for the differential BFS.
func stepLockstep(p *Protocol, st []coherence.State, i int, op coherence.ProcOp, sig coherence.Signals) (next []coherence.State, bus coherence.BusOp, panicMsg string) {
	nextI, busOp, pmsg := callProc(p.Proc, st[i], op, sig)
	if pmsg != "" {
		return nil, coherence.BusNone, pmsg
	}
	next = make([]coherence.State, len(st))
	copy(next, st)
	next[i] = nextI
	if busOp == coherence.BusNone {
		return next, busOp, ""
	}
	for j := range st {
		if j == i {
			continue
		}
		nextJ, _, pmsg := callSnoop(p.Snoop, st[j], busOp)
		if pmsg != "" {
			return nil, busOp, pmsg
		}
		next[j] = nextJ
	}
	return next, busOp, ""
}
