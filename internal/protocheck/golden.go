package protocheck

import (
	"fmt"

	"cmpnurapid/internal/coherence"
)

// golden.go pins the paper's Figure 4 as data. Each transition
// function has an ordered rule list; the first rule whose state, op
// and signal condition match a concrete input gives the expected
// result ("panic" for inputs the function must reject). CheckGolden
// sweeps the complete input space and reports every divergence between
// internal/coherence and this encoding, so any edit to the protocol —
// deliberate or accidental — must update the golden side in the same
// change or fail CI.

// grule is one golden rule. States, ops and outputs are matched on
// their String() forms ("I", "PrRd", "BusRd", "-", "Flush'", ...);
// "*" is a wildcard. sig is a condition over the sampled bus signals:
// "*" always matches, "d" the dirty line, "s" the shared line, "s|d"
// either.
type grule struct {
	s, op, sig string
	next, out  string // next state and bus op / snoop action; next == "panic" expects a panic
}

func (r grule) matches(s, op string, sig coherence.Signals) bool {
	if r.s != "*" && r.s != s {
		return false
	}
	if r.op != "*" && r.op != op {
		return false
	}
	switch r.sig {
	case "*":
		return true
	case "d":
		return sig.Dirty
	case "s":
		return sig.Shared
	case "s|d":
		return sig.Shared || sig.Dirty
	default:
		panic("protocheck: unknown golden signal condition " + r.sig)
	}
}

// goldenMESIProc encodes the solid arcs of Figure 4a.
var goldenMESIProc = []grule{
	{"I", "PrRd", "s|d", "S", "BusRd"},
	{"I", "PrRd", "*", "E", "BusRd"},
	{"I", "PrWr", "*", "M", "BusRdX"},
	{"S", "PrRd", "*", "S", "-"},
	{"S", "PrWr", "*", "M", "BusUpg"},
	{"E", "PrRd", "*", "E", "-"},
	{"E", "PrWr", "*", "M", "-"}, // silent upgrade
	{"M", "*", "*", "M", "-"},
	{"C", "*", "*", "panic", ""}, // C is not a MESI state
}

// goldenMESISnoop encodes the dotted arcs of Figure 4a plus the
// protocheck-proven-unreachable inputs, which must panic.
var goldenMESISnoop = []grule{
	{"I", "*", "*", "I", "-"},
	{"S", "BusRd", "*", "S", "-"},
	{"S", "BusRdX", "*", "I", "-"},
	{"S", "BusUpg", "*", "I", "-"},
	{"S", "*", "*", "panic", ""},
	{"E", "BusRd", "*", "S", "Flush'"},
	{"E", "BusRdX", "*", "I", "Flush'"},
	{"E", "*", "*", "panic", ""},
	{"M", "BusRd", "*", "S", "Flush"}, // the M→S arc MESIC deletes
	{"M", "BusRdX", "*", "I", "Flush"},
	{"M", "*", "*", "panic", ""},
	{"C", "*", "*", "panic", ""},
}

// goldenMESICProc encodes the solid arcs of Figure 4b: the dirty line
// steers misses into C, and C self-loops on both processor ops.
var goldenMESICProc = []grule{
	{"I", "PrRd", "d", "C", "BusRd"},  // reader joins the communication group
	{"I", "PrWr", "d", "C", "BusRdX"}, // writer joins without making a copy
	{"I", "PrRd", "s", "S", "BusRd"},
	{"I", "PrRd", "*", "E", "BusRd"},
	{"I", "PrWr", "*", "M", "BusRdX"},
	{"S", "PrRd", "*", "S", "-"},
	{"S", "PrWr", "*", "M", "BusUpg"},
	{"E", "PrRd", "*", "E", "-"},
	{"E", "PrWr", "*", "M", "-"},
	{"M", "*", "*", "M", "-"},
	{"C", "PrRd", "*", "C", "-"},      // in-situ read, no bus traffic
	{"C", "PrWr", "*", "C", "BusUpg"}, // write-through + invalidating broadcast
}

// goldenMESICSnoop encodes the dotted arcs of Figure 4b. The deleted
// M→S arc shows as M + BusRd → C; there are no transitions out of C.
var goldenMESICSnoop = []grule{
	{"I", "*", "*", "I", "-"},
	{"S", "BusRd", "*", "S", "-"},
	{"S", "BusRdX", "*", "I", "-"},
	{"S", "BusUpg", "*", "I", "-"},
	{"S", "*", "*", "panic", ""},
	{"E", "BusRd", "*", "S", "Flush'"},
	{"E", "BusRdX", "*", "I", "Flush'"},
	{"E", "*", "*", "panic", ""},
	{"M", "BusRd", "*", "C", "Flush"}, // arc x: M enters C instead of S
	{"M", "BusRdX", "*", "C", "Flush"},
	{"M", "*", "*", "panic", ""},
	{"C", "BusRd", "*", "C", "Flush"},
	{"C", "BusRdX", "*", "C", "InvL1"},
	{"C", "BusUpg", "*", "C", "InvL1"},
	{"C", "*", "*", "panic", ""},
}

// goldenFor returns the rule lists for a protocol by name.
func goldenFor(name string) (proc, snoop []grule, ok bool) {
	switch name {
	case "MESI":
		return goldenMESIProc, goldenMESISnoop, true
	case "MESIC":
		return goldenMESICProc, goldenMESICSnoop, true
	}
	return nil, nil, false
}

func lookupRule(rules []grule, s, op string, sig coherence.Signals) (grule, bool) {
	for _, r := range rules {
		if r.matches(s, op, sig) {
			return r, true
		}
	}
	return grule{}, false
}

// CheckGolden sweeps the complete input space of p's transition
// functions and reports every divergence from the golden Figure 4
// encoding. Protocols without a golden table (mutants) return nil.
func CheckGolden(p *Protocol) []Violation {
	procRules, snoopRules, ok := goldenFor(p.Name)
	if !ok {
		return nil
	}
	var violations []Violation
	drift := func(format string, args ...any) {
		if len(violations) < maxViolations {
			violations = append(violations, Violation{Kind: "golden", Message: fmt.Sprintf(format, args...)})
		}
	}

	for _, s := range allStates {
		for _, op := range procOps {
			for _, sig := range allSignals {
				rule, found := lookupRule(procRules, s.String(), op.String(), sig)
				if !found {
					drift("%sProc(%v, %v, %+v): no golden rule covers this input", p.Name, s, op, sig)
					continue
				}
				next, bus, panicMsg := callProc(p.Proc, s, op, sig)
				got := describeOutcome(next.String(), bus.String(), panicMsg)
				want := describeOutcome(rule.next, rule.out, panicExpected(rule))
				if got != want {
					drift("%sProc(%v, %v, %+v) = %s, Figure 4 says %s", p.Name, s, op, sig, got, want)
				}
			}
		}
		for _, op := range allBusOps {
			rule, found := lookupRule(snoopRules, s.String(), op.String(), coherence.Signals{})
			if !found {
				drift("%sSnoop(%v, %v): no golden rule covers this input", p.Name, s, op)
				continue
			}
			next, act, panicMsg := callSnoop(p.Snoop, s, op)
			got := describeOutcome(next.String(), act.String(), panicMsg)
			want := describeOutcome(rule.next, rule.out, panicExpected(rule))
			if got != want {
				drift("%sSnoop(%v, %v) = %s, Figure 4 says %s", p.Name, s, op, got, want)
			}
		}
	}
	return violations
}

func panicExpected(r grule) string {
	if r.next == "panic" {
		return "panic"
	}
	return ""
}

// describeOutcome canonicalizes a transition result for comparison:
// any panic collapses to "panic" (the message is informational, not
// part of the protocol).
func describeOutcome(next, out, panicMsg string) string {
	if panicMsg != "" {
		return "panic"
	}
	return "(" + next + ", " + out + ")"
}
