package protocheck

import (
	"fmt"
	"sort"

	"cmpnurapid/internal/coherence"
)

// Mutants are deliberately broken variants of MESIC used to prove the
// checker actually catches protocol bugs (cmd/protocheck's -mutant
// flag and the tests in this package). Each one re-introduces a
// plausible hand-coding mistake.
var mutants = map[string]func() *Protocol{
	// restore-m-to-s puts back the MESI M→S arc the paper deletes: an
	// M holder snooping a BusRd hands the reader a C copy while itself
	// dropping to S, violating "S never coexists with C".
	"restore-m-to-s": func() *Protocol {
		p := MESIC()
		p.Name = "MESIC(restore-m-to-s)"
		p.Snoop = func(s coherence.State, op coherence.BusOp) (coherence.State, coherence.SnoopAction) {
			if s == coherence.Modified && op == coherence.BusRd {
				return coherence.Shared, coherence.Flush
			}
			return coherence.MESICSnoop(s, op)
		}
		return p
	},
	// exit-c-on-busrdx lets a write miss steal a communication block
	// back to I, breaking the only-replacement-exits-C invariant.
	"exit-c-on-busrdx": func() *Protocol {
		p := MESIC()
		p.Name = "MESIC(exit-c-on-busrdx)"
		p.Snoop = func(s coherence.State, op coherence.BusOp) (coherence.State, coherence.SnoopAction) {
			if s == coherence.Communication && op == coherence.BusRdX {
				return coherence.Invalid, coherence.Flush
			}
			return coherence.MESICSnoop(s, op)
		}
		return p
	},
	// panic-on-shared-busrd makes a reachable snoop input panic, the
	// failure mode the no-panics-on-reachable-inputs check exists for.
	"panic-on-shared-busrd": func() *Protocol {
		p := MESIC()
		p.Name = "MESIC(panic-on-shared-busrd)"
		p.Snoop = func(s coherence.State, op coherence.BusOp) (coherence.State, coherence.SnoopAction) {
			if s == coherence.Shared && op == coherence.BusRd {
				panic("protocheck: seeded mutant panic")
			}
			return coherence.MESICSnoop(s, op)
		}
		return p
	},
}

// Mutant returns the named seeded-broken protocol.
func Mutant(name string) (*Protocol, error) {
	if build, ok := mutants[name]; ok {
		return build(), nil
	}
	return nil, fmt.Errorf("protocheck: unknown mutant %q (have %v)", name, MutantNames())
}

// MutantNames lists the available mutants, sorted.
func MutantNames() []string {
	names := make([]string, 0, len(mutants))
	for name := range mutants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
