// Package protocheck is an explicit-state model checker for the
// coherence protocols in internal/coherence. It drives the *actual*
// transition functions — MESIProc/MESISnoop and MESICProc/MESICSnoop,
// not a re-encoding of them — through three layers of checking:
//
//  1. Totality: enumerate the complete single-cache input space
//     (State × ProcOp × Signals for the processor side, State × BusOp
//     for the snoop side) and record every result or panic, producing
//     the transition tables published in docs/PROTOCOL.md.
//  2. Reachability: BFS the joint state space of N caches sharing one
//     line under all interleavings of processor operations, checking
//     the paper's safety invariants on every reached state and edge —
//     SWMR (at most one M/E holder, owning alone), S never coexisting
//     with M, E or C, no transition out of C except replacement
//     (which the protocol layer does not model), and no panic on any
//     reachable input. The BFS also proves which snoop inputs are
//     unreachable, justifying the panicking defaults in
//     internal/coherence.
//  3. Equivalence: a lockstep BFS of MESI and MESIC restricted to
//     interleavings in which no requester ever samples an asserted
//     dirty line, verifying the two protocols are trace-identical
//     there — MESIC's divergence is confined to dirty sharing, the
//     paper's §3.2 claim.
//
// A golden encoding of the paper's Figure 4 (golden.go) pins the
// expected transition relation, so any drift in internal/coherence —
// including re-introducing the deleted M→S arc — fails the check.
// cmd/protocheck wires this into scripts/check.sh and CI.
package protocheck

import (
	"fmt"

	"cmpnurapid/internal/coherence"
)

// Protocol bundles the transition functions of one coherence protocol
// together with the states a cache may legally occupy under it.
type Protocol struct {
	Name   string
	States []coherence.State
	Proc   func(coherence.State, coherence.ProcOp, coherence.Signals) (coherence.State, coherence.BusOp)
	Snoop  func(coherence.State, coherence.BusOp) (coherence.State, coherence.SnoopAction)
}

// MESI returns the 4-state baseline protocol (Figure 4a).
func MESI() *Protocol {
	return &Protocol{
		Name: "MESI",
		States: []coherence.State{
			coherence.Invalid, coherence.Shared, coherence.Exclusive, coherence.Modified,
		},
		Proc:  coherence.MESIProc,
		Snoop: coherence.MESISnoop,
	}
}

// MESIC returns the paper's 5-state protocol (Figure 4b).
func MESIC() *Protocol {
	return &Protocol{
		Name: "MESIC",
		States: []coherence.State{
			coherence.Invalid, coherence.Shared, coherence.Exclusive,
			coherence.Modified, coherence.Communication,
		},
		Proc:  coherence.MESICProc,
		Snoop: coherence.MESICSnoop,
	}
}

// allStates spans both protocols; the totality scan sweeps every state
// even for MESI so the tables document the out-of-protocol panics.
var allStates = []coherence.State{
	coherence.Invalid, coherence.Shared, coherence.Exclusive,
	coherence.Modified, coherence.Communication,
}

var procOps = []coherence.ProcOp{coherence.PrRd, coherence.PrWr}

// allBusOps is the full BusOp domain, including the two values that
// never reach a snoop function (BusNone is the absence of a
// transaction; BusRepl is CMP-NuRAPID's tag-layer broadcast handled by
// the cache model).
var allBusOps = []coherence.BusOp{
	coherence.BusNone, coherence.BusRd, coherence.BusRdX,
	coherence.BusUpg, coherence.BusRepl,
}

// snoopableOps are the transactions another cache can actually place
// on the bus; reachability of (state, op) snoop pairs is judged over
// these.
var snoopableOps = []coherence.BusOp{
	coherence.BusRd, coherence.BusRdX, coherence.BusUpg,
}

// allSignals enumerates the wired-OR response-line combinations, in
// the fixed order used for condition grouping in the tables.
var allSignals = []coherence.Signals{
	{},
	{Dirty: true},
	{Shared: true},
	{Shared: true, Dirty: true},
}

// Violation is one check failure, with enough provenance to reproduce
// it by hand.
type Violation struct {
	Kind    string // "safety", "c-exit", "panic", "totality", "unreachable", "golden", "differential", "doc"
	Message string
}

func (v Violation) String() string { return "[" + v.Kind + "] " + v.Message }

// member reports whether s is one of the protocol's states.
func (p *Protocol) member(s coherence.State) bool {
	for _, ps := range p.States {
		if ps == s {
			return true
		}
	}
	return false
}

// signalsFor samples the bus response lines cache i would see: the
// shared line is asserted by any other clean valid copy, the dirty
// line by any other M or C copy — the same derivation the cache models
// use (internal/l2 signals, internal/core).
func signalsFor(states []coherence.State, i int) coherence.Signals {
	var sig coherence.Signals
	for j, s := range states {
		if j == i || !s.Valid() {
			continue
		}
		if s.Dirty() {
			sig.Dirty = true
		} else {
			sig.Shared = true
		}
	}
	return sig
}

// checkSafety validates one joint state against the protocol
// invariants and returns a description of the first violation, or "".
//
// The invariants (docs/PROTOCOL.md, paper §3.2):
//   - every cache is in a state the protocol defines;
//   - at most one M and at most one E holder (single writer);
//   - an M or E holder coexists with no other valid copy;
//   - S never coexists with C (a block is either clean-shared or
//     dirty-shared, never both).
func checkSafety(p *Protocol, states []coherence.State) string {
	var m, e, s, c, valid int
	for _, st := range states {
		if !p.member(st) {
			return fmt.Sprintf("state %v is not a %s state", st, p.Name)
		}
		if st.Valid() {
			valid++
		}
		switch st {
		case coherence.Modified:
			m++
		case coherence.Exclusive:
			e++
		case coherence.Shared:
			s++
		case coherence.Communication:
			c++
		case coherence.Invalid:
		default:
			return fmt.Sprintf("unknown state %v", st)
		}
	}
	switch {
	case m > 1:
		return fmt.Sprintf("%d M holders (single-writer violated)", m)
	case e > 1:
		return fmt.Sprintf("%d E holders", e)
	case m == 1 && valid > 1:
		return "M coexists with other valid copies"
	case e == 1 && valid > 1:
		return "E coexists with other valid copies"
	case s > 0 && c > 0:
		return "S coexists with C (clean- and dirty-shared at once)"
	}
	return ""
}

// fmtStates renders a joint state like [I S M I].
func fmtStates(states []coherence.State) string {
	out := "["
	for i, s := range states {
		if i > 0 {
			out += " "
		}
		out += s.String()
	}
	return out + "]"
}
