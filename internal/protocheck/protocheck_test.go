package protocheck

import (
	"strings"
	"testing"

	"cmpnurapid/internal/coherence"
)

// TestRealProtocolsPassEverything is the headline acceptance check:
// both shipping protocols survive the complete battery — golden,
// totality, N=2..4 BFS, snoop-panic cross-check, differential — with
// zero violations.
func TestRealProtocolsPassEverything(t *testing.T) {
	r := CheckAll(4)
	for _, v := range r.Violations {
		t.Errorf("%s", v)
	}
	if len(r.Explorations) != 6 { // 2 protocols × N=2,3,4
		t.Errorf("got %d explorations, want 6", len(r.Explorations))
	}
}

func TestExplorationCounts(t *testing.T) {
	// The joint spaces are small enough to pin exactly; a change here
	// means the protocol's reachable space changed, which must be
	// deliberate.
	cases := []struct {
		p      *Protocol
		n      int
		states int
	}{
		{MESI(), 2, 6}, // II, plus {S,E,M} alone and SS via the I+PrRd(shared) path
		{MESI(), 3, 11},
		{MESIC(), 2, 7},  // MESI's plus CC
		{MESIC(), 3, 15}, // C groups of 2 and 3
		{MESIC(), 4, 31},
	}
	for _, c := range cases {
		e := c.p.Explore(c.n)
		if len(e.Violations) != 0 {
			t.Errorf("%s N=%d: unexpected violations %v", c.p.Name, c.n, e.Violations)
		}
		if e.States != c.states {
			t.Errorf("%s N=%d reached %d joint states, want %d", c.p.Name, c.n, e.States, c.states)
		}
	}
}

// TestUnreachableSnoopPairs pins the BFS proof the panicking defaults
// in internal/coherence cite: with 3+ caches, exactly (E, BusUpg) and
// (M, BusUpg) are unreachable in both protocols.
func TestUnreachableSnoopPairs(t *testing.T) {
	want := []SnoopPair{
		{coherence.Exclusive, coherence.BusUpg},
		{coherence.Modified, coherence.BusUpg},
	}
	for _, p := range []*Protocol{MESI(), MESIC()} {
		for n := 3; n <= 4; n++ {
			got := p.Explore(n).UnreachableSnoopPairs()
			if len(got) != len(want) {
				t.Errorf("%s N=%d unreachable = %v, want %v", p.Name, n, got, want)
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s N=%d unreachable = %v, want %v", p.Name, n, got, want)
					break
				}
			}
		}
	}
}

// TestMutantsAreCaught is the seeded-mutant acceptance criterion: each
// deliberately broken protocol must produce violations of the kind the
// break causes.
func TestMutantsAreCaught(t *testing.T) {
	cases := []struct {
		mutant   string
		kind     string
		contains string
	}{
		{"restore-m-to-s", "safety", "S coexists with C"},
		{"exit-c-on-busrdx", "c-exit", "left C"},
		{"panic-on-shared-busrd", "panic", "panicked on reachable input"},
	}
	for _, c := range cases {
		p, err := Mutant(c.mutant)
		if err != nil {
			t.Fatal(err)
		}
		r := CheckAll(3, p)
		if r.Ok() {
			t.Errorf("mutant %s passed the checker", c.mutant)
			continue
		}
		found := false
		for _, v := range r.Violations {
			if v.Kind == c.kind && strings.Contains(v.Message, c.contains) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("mutant %s: no [%s] violation containing %q in %v", c.mutant, c.kind, c.contains, r.Violations)
		}
	}
}

func TestMutantUnknownName(t *testing.T) {
	if _, err := Mutant("nope"); err == nil || !strings.Contains(err.Error(), "restore-m-to-s") {
		t.Errorf("unknown mutant error should list valid names, got %v", err)
	}
}

// TestGoldenCatchesDrift gives CheckGolden a protocol that claims to
// be MESIC but has the deleted arc restored: the Figure 4 encoding
// must flag the exact transition.
func TestGoldenCatchesDrift(t *testing.T) {
	p := MESIC()
	p.Snoop = func(s coherence.State, op coherence.BusOp) (coherence.State, coherence.SnoopAction) {
		if s == coherence.Modified && op == coherence.BusRd {
			return coherence.Shared, coherence.Flush // MESI behaviour
		}
		return coherence.MESICSnoop(s, op)
	}
	violations := CheckGolden(p)
	if len(violations) != 1 {
		t.Fatalf("got %d golden violations, want 1: %v", len(violations), violations)
	}
	if !strings.Contains(violations[0].Message, "MESICSnoop(M, BusRd)") {
		t.Errorf("violation does not name the drifted transition: %s", violations[0])
	}
}

func TestGoldenCleanOnRealProtocols(t *testing.T) {
	for _, p := range []*Protocol{MESI(), MESIC()} {
		if v := CheckGolden(p); len(v) != 0 {
			t.Errorf("%s drifts from Figure 4: %v", p.Name, v)
		}
	}
}

// TestTotalityCatchesPartialProc covers the totality layer with a
// processor function that panics on an in-protocol input.
func TestTotalityCatchesPartialProc(t *testing.T) {
	p := MESIC()
	p.Name = "MESIC(partial-proc)"
	p.Proc = func(s coherence.State, op coherence.ProcOp, sig coherence.Signals) (coherence.State, coherence.BusOp) {
		if s == coherence.Shared && op == coherence.PrWr {
			panic("protocheck: seeded partial proc")
		}
		return coherence.MESICProc(s, op, sig)
	}
	violations := p.CheckTotality()
	if len(violations) != 4 { // one per signal combination
		t.Fatalf("got %d totality violations, want 4: %v", len(violations), violations)
	}
	for _, v := range violations {
		if v.Kind != "totality" || !strings.Contains(v.Message, "(S, PrWr") {
			t.Errorf("unexpected totality violation: %s", v)
		}
	}
}

// TestDifferentialEquivalence re-runs the lockstep BFS directly and
// also checks it has real coverage: the dirty-free space still
// exercises E, S and M.
func TestDifferentialEquivalence(t *testing.T) {
	states, violations := DiffExplore(4)
	if len(violations) != 0 {
		t.Errorf("MESI/MESIC diverge on dirty-free interleavings: %v", violations)
	}
	if states < 10 {
		t.Errorf("differential explored only %d state pairs; pruning is too aggressive", states)
	}
}

// TestDifferentialCatchesCleanPathDivergence seeds a divergence on a
// clean-sharing path (E + BusRd flushes to I instead of S) and checks
// the lockstep BFS — not just the invariants — would see it. Because
// DiffExplore is fixed to the shipping protocols, this drives the
// internals via stepLockstep.
func TestDifferentialCatchesCleanPathDivergence(t *testing.T) {
	mutant := MESIC()
	mutant.Snoop = func(s coherence.State, op coherence.BusOp) (coherence.State, coherence.SnoopAction) {
		if s == coherence.Exclusive && op == coherence.BusRd {
			return coherence.Invalid, coherence.FlushClean
		}
		return coherence.MESICSnoop(s, op)
	}
	// E holder at cache 0, cache 1 reads: MESI keeps S+S, the mutant
	// drops to I+S.
	st := []coherence.State{coherence.Exclusive, coherence.Invalid}
	sig := signalsFor(st, 1)
	nextA, _, _ := stepLockstep(MESI(), st, 1, coherence.PrRd, sig)
	nextB, _, _ := stepLockstep(mutant, st, 1, coherence.PrRd, sig)
	if key(nextA) == key(nextB) {
		t.Fatal("seeded clean-path divergence not visible to the lockstep step")
	}
}

func TestCheckSafetyDirectly(t *testing.T) {
	mesic := MESIC()
	cases := []struct {
		states []coherence.State
		bad    bool
	}{
		{[]coherence.State{coherence.Invalid, coherence.Invalid}, false},
		{[]coherence.State{coherence.Modified, coherence.Invalid}, false},
		{[]coherence.State{coherence.Communication, coherence.Communication}, false},
		{[]coherence.State{coherence.Shared, coherence.Shared, coherence.Shared}, false},
		{[]coherence.State{coherence.Modified, coherence.Modified}, true},
		{[]coherence.State{coherence.Exclusive, coherence.Shared}, true},
		{[]coherence.State{coherence.Modified, coherence.Shared}, true},
		{[]coherence.State{coherence.Shared, coherence.Communication}, true},
		{[]coherence.State{coherence.Modified, coherence.Communication}, true},
	}
	for _, c := range cases {
		msg := checkSafety(mesic, c.states)
		if (msg != "") != c.bad {
			t.Errorf("checkSafety(%s) = %q, want violation=%v", fmtStates(c.states), msg, c.bad)
		}
	}
	// C is a violation under MESI even though MESIC allows it.
	if msg := checkSafety(MESI(), []coherence.State{coherence.Communication}); !strings.Contains(msg, "not a MESI state") {
		t.Errorf("MESI safety accepted C: %q", msg)
	}
}

func TestExploreRejectsTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Explore(1) did not panic")
		}
	}()
	MESI().Explore(1)
}
