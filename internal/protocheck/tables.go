package protocheck

import (
	"fmt"
	"strings"

	"cmpnurapid/internal/coherence"
)

// ProcEntry is one row of the single-cache processor-side scan.
type ProcEntry struct {
	S        coherence.State
	Op       coherence.ProcOp
	Sig      coherence.Signals
	Next     coherence.State
	Bus      coherence.BusOp
	Panicked bool
}

// SnoopEntry is one row of the single-cache snoop-side scan.
type SnoopEntry struct {
	S        coherence.State
	Op       coherence.BusOp
	Next     coherence.State
	Act      coherence.SnoopAction
	Panicked bool
}

// ScanProc enumerates the complete processor-side input space —
// including states outside the protocol, so the tables document the
// panics — and records each outcome.
func (p *Protocol) ScanProc() []ProcEntry {
	var entries []ProcEntry
	for _, s := range allStates {
		for _, op := range procOps {
			for _, sig := range allSignals {
				next, bus, panicMsg := callProc(p.Proc, s, op, sig)
				entries = append(entries, ProcEntry{
					S: s, Op: op, Sig: sig,
					Next: next, Bus: bus, Panicked: panicMsg != "",
				})
			}
		}
	}
	return entries
}

// ScanSnoop enumerates the complete snoop-side input space.
func (p *Protocol) ScanSnoop() []SnoopEntry {
	var entries []SnoopEntry
	for _, s := range allStates {
		for _, op := range allBusOps {
			next, act, panicMsg := callSnoop(p.Snoop, s, op)
			entries = append(entries, SnoopEntry{
				S: s, Op: op, Next: next, Act: act, Panicked: panicMsg != "",
			})
		}
	}
	return entries
}

// CheckTotality verifies the processor side is total over the
// protocol's own states: a reachable-state panic there can never be
// legitimate, because every (op, signals) combination can occur on a
// miss or hit.
func (p *Protocol) CheckTotality() []Violation {
	var violations []Violation
	for _, entry := range p.ScanProc() {
		if entry.Panicked && p.member(entry.S) {
			violations = append(violations, Violation{
				Kind: "totality",
				Message: fmt.Sprintf("%sProc(%v, %v, %+v) panics on an in-protocol input",
					p.Name, entry.S, entry.Op, entry.Sig),
			})
		}
	}
	return violations
}

// CheckSnoopPanics cross-checks the snoop scan against an exploration:
// every input the snoop function rejects with a panic must be outside
// the BFS-reachable set (the reverse direction — a reachable input
// panicking — is caught live during the BFS).
func (p *Protocol) CheckSnoopPanics(e *Exploration) []Violation {
	var violations []Violation
	for _, entry := range p.ScanSnoop() {
		if entry.Panicked && e.Reachable[SnoopPair{entry.S, entry.Op}] {
			violations = append(violations, Violation{
				Kind: "unreachable",
				Message: fmt.Sprintf("%sSnoop(%v, %v) panics but the N=%d BFS reaches that input",
					p.Name, entry.S, entry.Op, e.N),
			})
		}
	}
	return violations
}

// --- markdown rendering ---

// sigIndex maps a signal combination to its position in allSignals.
func sigIndex(sig coherence.Signals) int {
	for i, s := range allSignals {
		if s == sig {
			return i
		}
	}
	panic("protocheck: signal combination outside the enumerated domain")
}

// sigGroupLabel names a set of signal combinations (a bitmask over
// allSignals indices) in bus terms. Masks that do not correspond to a
// single line predicate fall back to an explicit listing.
func sigGroupLabel(mask int) string {
	switch mask {
	case 0b1111:
		return "any"
	case 0b1010: // {d}, {s,d}
		return "dirty line"
	case 0b0101: // {}, {s}
		return "no dirty line"
	case 0b1100: // {s}, {s,d}
		return "shared line"
	case 0b0011: // {}, {d}
		return "no shared line"
	case 0b1110: // {d}, {s}, {s,d}
		return "shared or dirty line"
	case 0b0001: // {}
		return "no other copies"
	case 0b0100: // {s}
		return "shared line only"
	case 0b0010: // {d}
		return "dirty line only"
	}
	var parts []string
	for i, sig := range allSignals {
		if mask&(1<<i) != 0 {
			parts = append(parts, fmt.Sprintf("S=%t,D=%t", sig.Shared, sig.Dirty))
		}
	}
	return strings.Join(parts, " | ")
}

// ProcTable renders the processor-side transition table, merging
// signal combinations with identical outcomes into one labelled row.
func (p *Protocol) ProcTable() string {
	entries := p.ScanProc()
	byInput := map[string]ProcEntry{}
	for _, entry := range entries {
		byInput[fmt.Sprintf("%v|%v|%d", entry.S, entry.Op, sigIndex(entry.Sig))] = entry
	}

	var b strings.Builder
	fmt.Fprintf(&b, "| State | Op | Bus signals | → State | Bus transaction |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	for _, s := range allStates {
		for _, op := range procOps {
			// Group the four signal combinations by outcome.
			type outcome struct {
				text string
				mask int
			}
			var groups []outcome
			for i := range allSignals {
				entry := byInput[fmt.Sprintf("%v|%v|%d", s, op, i)]
				text := "**✗ panic**"
				if !entry.Panicked {
					text = fmt.Sprintf("**%v** | %v", entry.Next, entry.Bus)
				}
				merged := false
				for gi := range groups {
					if groups[gi].text == text {
						groups[gi].mask |= 1 << i
						merged = true
						break
					}
				}
				if !merged {
					groups = append(groups, outcome{text, 1 << i})
				}
			}
			for _, g := range groups {
				result := g.text
				if result == "**✗ panic**" {
					result += " | —"
				}
				fmt.Fprintf(&b, "| %v | %v | %s | %s |\n", s, op, sigGroupLabel(g.mask), result)
			}
		}
	}
	return b.String()
}

// SnoopTable renders the snoop-side transition table; reach (from an
// exploration, may be nil) annotates which inputs any interleaving can
// produce.
func (p *Protocol) SnoopTable(e *Exploration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| State | Snooped | → State | Action |\n")
	fmt.Fprintf(&b, "|---|---|---|---|\n")
	for _, entry := range p.ScanSnoop() {
		result := fmt.Sprintf("**%v** | %v", entry.Next, entry.Act)
		if entry.Panicked {
			result = "**✗ panic** | unreachable"
		} else if e != nil && !e.Reachable[SnoopPair{entry.S, entry.Op}] {
			result += " *(unreachable)*"
		}
		fmt.Fprintf(&b, "| %v | %v | %s |\n", entry.S, entry.Op, result)
	}
	return b.String()
}

// Markers bracketing the generated block in docs/PROTOCOL.md.
const (
	DocBegin = "<!-- BEGIN protocheck:generated — run `go run ./cmd/protocheck -write` to refresh -->"
	DocEnd   = "<!-- END protocheck:generated -->"
)

// DocExplorations runs the canonical exploration set the published
// tables are generated from — both protocols at N=2..4 — so the doc
// block is byte-identical no matter what -n a particular check run
// used.
func DocExplorations() []*Exploration {
	var es []*Exploration
	for _, p := range []*Protocol{MESI(), MESIC()} {
		for n := 2; n <= 4; n++ {
			es = append(es, p.Explore(n))
		}
	}
	return es
}

// GenerateDoc renders the generated docs/PROTOCOL.md block: the four
// transition tables straight from the code, the invariants the checker
// enforces, and the per-N exploration statistics.
func GenerateDoc(explorations []*Exploration) string {
	var b strings.Builder
	b.WriteString("## Verified transition tables (generated)\n\n")
	b.WriteString("Everything between the `protocheck:generated` markers is produced by\n")
	b.WriteString("`go run ./cmd/protocheck -write` from the *actual* transition functions\n")
	b.WriteString("in `internal/coherence` — do not edit by hand. `cmd/protocheck` fails\n")
	b.WriteString("CI if this section drifts from the code or the code drifts from the\n")
	b.WriteString("golden Figure 4 encoding (`internal/protocheck/golden.go`).\n\n")

	byProto := map[string][]*Exploration{}
	var order []string
	for _, e := range explorations {
		if _, ok := byProto[e.Protocol.Name]; !ok {
			order = append(order, e.Protocol.Name)
		}
		byProto[e.Protocol.Name] = append(byProto[e.Protocol.Name], e)
	}

	for _, name := range order {
		es := byProto[name]
		p := es[0].Protocol
		largest := es[len(es)-1]
		fmt.Fprintf(&b, "### %s\n\n", name)
		fmt.Fprintf(&b, "Processor side (`%sProc`):\n\n%s\n", name, p.ProcTable())
		fmt.Fprintf(&b, "Snoop side (`%sSnoop`), annotated with N=%d reachability:\n\n%s\n",
			name, largest.N, p.SnoopTable(largest))
		b.WriteString("State space explored (all caches start at I; every interleaving of\nper-cache PrRd/PrWr):\n\n")
		b.WriteString("| Caches | Joint states | Transitions |\n|---|---|---|\n")
		for _, e := range es {
			fmt.Fprintf(&b, "| %d | %d | %d |\n", e.N, e.States, e.Edges)
		}
		b.WriteString("\nSnoop inputs no interleaving can produce (the panicking defaults in\n`internal/coherence` are justified by this set):\n\n")
		unreachable := largest.UnreachableSnoopPairs()
		if len(unreachable) == 0 {
			b.WriteString("- none\n")
		}
		for _, pair := range unreachable {
			fmt.Fprintf(&b, "- `%s`\n", pair)
		}
		b.WriteString("\n")
	}

	b.WriteString("### Invariants checked on every reached state\n\n")
	b.WriteString("1. Every cache is in a state its protocol defines.\n")
	b.WriteString("2. At most one M and at most one E holder (single writer).\n")
	b.WriteString("3. An M or E holder coexists with no other valid copy.\n")
	b.WriteString("4. S never coexists with C (clean-shared xor dirty-shared).\n")
	b.WriteString("5. No transition out of C on any edge (only replacement, which the\n   protocol layer does not model, may leave C).\n")
	b.WriteString("6. No transition function panics on a reachable input.\n")
	b.WriteString("7. MESI and MESIC are trace-identical on every interleaving where no\n   requester samples an asserted dirty line (§3.2 containment).\n")
	return b.String()
}

// SpliceDoc replaces the generated block between DocBegin/DocEnd in an
// existing document. It errors if the markers are missing or inverted,
// rather than guessing where the block belongs.
func SpliceDoc(doc []byte, block string) ([]byte, error) {
	text := string(doc)
	begin := strings.Index(text, DocBegin)
	end := strings.Index(text, DocEnd)
	if begin < 0 || end < 0 {
		return nil, fmt.Errorf("protocheck: docs are missing the %q / %q markers", DocBegin, DocEnd)
	}
	if end < begin {
		return nil, fmt.Errorf("protocheck: doc markers are inverted")
	}
	return []byte(text[:begin+len(DocBegin)] + "\n\n" + block + "\n" + text[end:]), nil
}

// DocInSync reports whether the generated block inside doc matches
// block exactly.
func DocInSync(doc []byte, block string) bool {
	want, err := SpliceDoc(doc, block)
	if err != nil {
		return false
	}
	return string(doc) == string(want)
}
