package protocheck

import (
	"strings"
	"testing"
)

func TestProcTableContent(t *testing.T) {
	table := MESIC().ProcTable()
	cases := []string{
		// The C self-loop: a write in C stays in C and write-throughs.
		"| C | PrWr | any | **C** | BusUpg |",
		// Read miss splits on the dirty line: C vs E/S.
		"| I | PrRd | dirty line | **C** | BusRd |",
	}
	for _, want := range cases {
		if !strings.Contains(table, want) {
			t.Errorf("MESIC proc table missing %q:\n%s", want, table)
		}
	}
	// MESI's table documents the out-of-protocol C rows as panics.
	if mesi := MESI().ProcTable(); !strings.Contains(mesi, "| C | PrRd | any | **✗ panic** | — |") {
		t.Errorf("MESI proc table does not document C as a panic:\n%s", mesi)
	}
}

func TestSnoopTableAnnotatesReachability(t *testing.T) {
	table := MESIC().SnoopTable(MESIC().Explore(3))
	if !strings.Contains(table, "| M | BusRd | **C** | Flush |") {
		t.Errorf("snoop table missing the deleted-arc replacement (M+BusRd → C):\n%s", table)
	}
	if !strings.Contains(table, "**✗ panic** | unreachable") {
		t.Errorf("snoop table does not document the panicking defaults:\n%s", table)
	}
}

func TestSigGroupLabelFallback(t *testing.T) {
	// {} with {s,d} is no single line predicate: explicit listing.
	got := sigGroupLabel(0b1001)
	if !strings.Contains(got, "S=false,D=false") || !strings.Contains(got, "S=true,D=true") {
		t.Errorf("fallback label = %q", got)
	}
}

func TestSpliceDocErrors(t *testing.T) {
	if _, err := SpliceDoc([]byte("no markers here"), "block"); err == nil {
		t.Error("SpliceDoc accepted a doc without markers")
	}
	inverted := []byte(DocEnd + "\n" + DocBegin)
	if _, err := SpliceDoc(inverted, "block"); err == nil {
		t.Error("SpliceDoc accepted inverted markers")
	}
}

func TestSpliceDocRoundTrip(t *testing.T) {
	doc := []byte("# Title\n\n" + DocBegin + "\nstale\n" + DocEnd + "\ntrailer\n")
	block := "fresh content"
	updated, err := SpliceDoc(doc, block)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(updated), block) || strings.Contains(string(updated), "stale") {
		t.Errorf("splice result:\n%s", updated)
	}
	if !DocInSync(updated, block) {
		t.Error("freshly spliced doc reported out of sync")
	}
	if DocInSync(doc, block) {
		t.Error("stale doc reported in sync")
	}
}
