// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Every source of randomness in the reproduction — workload address
// streams, the random choice of d-group at which distance replacement
// stops, and the random in-d-group victim selection the paper mandates
// (§3.3.2: "This choice is at random as well because LRU requires
// O(n^2) hardware") — draws from seeded streams of this package, so
// every experiment is bit-reproducible.
package rng

import "math"

// Source is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; use New to seed explicitly. splitmix64 passes BigCrush
// and is the canonical seeder for xoshiro-family generators, while
// being trivially small and allocation-free.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and avoids the
	// modulo on the fast path.
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success
// (support 0, 1, 2, ...). For p >= 1 it returns 0.
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	n := 0
	for !s.Bool(p) {
		n++
		if n >= 1<<20 { // safety bound; astronomically unlikely for sane p
			break
		}
	}
	return n
}

// Split returns a new Source whose seed is derived from this source's
// stream. Independent subsystems each take a Split so that adding a
// consumer does not perturb the draws seen by others.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Zipf generates Zipf-distributed ranks in [0, n) with exponent theta.
// Commercial workload footprints are famously Zipf-like; the workload
// package uses this to produce realistic block popularity skew.
type Zipf struct {
	src   *Source
	n     int
	theta float64
	// alias tables would be overkill; we use the classic inverse-CDF
	// approximation of Knuth vol. 3 via precomputed harmonic sums for
	// small n, and rejection sampling for large n.
	cdf []float64 // non-nil when n is small enough to tabulate
}

// zipfTabulateLimit is the largest n for which we precompute the CDF.
const zipfTabulateLimit = 1 << 16

// NewZipf returns a Zipf sampler over [0, n) with exponent theta > 0.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	z := &Zipf{src: src, n: n, theta: theta}
	if n <= zipfTabulateLimit {
		z.cdf = make([]float64, n)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += 1 / powFloat(float64(i+1), theta)
			z.cdf[i] = sum
		}
		for i := range z.cdf {
			z.cdf[i] /= sum
		}
	}
	return z
}

// Next returns the next Zipf-distributed rank.
func (z *Zipf) Next() int {
	if z.cdf != nil {
		u := z.src.Float64()
		// Binary search the CDF.
		lo, hi := 0, len(z.cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if z.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Rejection-free approximate inverse for large n: map a uniform
	// through the continuous Zipf inverse CDF. Adequate for workload
	// skew purposes.
	u := z.src.Float64()
	if z.theta == 1 {
		return int(powFloat(float64(z.n), u)) - 1
	}
	oneMinus := 1 - z.theta
	x := powFloat(u*(powFloat(float64(z.n), oneMinus)-1)+1, 1/oneMinus)
	r := int(x) - 1
	if r < 0 {
		r = 0
	}
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

func powFloat(x, y float64) float64 {
	return math.Pow(x, y)
}
