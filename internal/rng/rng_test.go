package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d: %d draws, want ~%.0f (±5%%)", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %.4f, want 0.3±0.01", got)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	const p, draws = 0.25, 50000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += s.Geometric(p)
	}
	mean := float64(sum) / draws
	want := (1 - p) / p // mean of geometric counting failures
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("Geometric(%v) mean = %.3f, want ~%.3f", p, mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	s := New(17)
	if got := s.Geometric(1); got != 0 {
		t.Errorf("Geometric(1) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	s.Geometric(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	a := parent.Split()
	b := parent.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("sibling splits produced identical first draws")
	}
}

func TestMul64MatchesBig(t *testing.T) {
	// Property: our portable 128-bit multiply agrees with the
	// identity (x*y) mod 2^64 for the low word, and with schoolbook
	// computation for a few fixed cases for the high word.
	f := func(x, y uint64) bool {
		_, lo := mul64(x, y)
		return lo == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	cases := []struct{ x, y, hi uint64 }{
		{0, 0, 0},
		{1 << 63, 2, 1},
		{1 << 32, 1 << 32, 1},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1},
	}
	for _, c := range cases {
		hi, _ := mul64(c.x, c.y)
		if hi != c.hi {
			t.Errorf("mul64(%#x, %#x) hi = %#x, want %#x", c.x, c.y, hi, c.hi)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	s := New(21)
	z := NewZipf(s, 1000, 0.9)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		r := z.Next()
		if r < 0 || r >= 1000 {
			t.Fatalf("Zipf rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must be the most popular, and dramatically more popular
	// than the median rank.
	if counts[0] < counts[500]*10 {
		t.Errorf("Zipf skew too weak: rank0=%d rank500=%d", counts[0], counts[500])
	}
}

func TestZipfLargeN(t *testing.T) {
	s := New(23)
	n := zipfTabulateLimit * 4
	z := NewZipf(s, n, 1.0)
	if z.cdf != nil {
		t.Fatal("large-n Zipf should not tabulate")
	}
	low := 0
	for i := 0; i < 10000; i++ {
		r := z.Next()
		if r < 0 || r >= n {
			t.Fatalf("Zipf rank %d out of range [0,%d)", r, n)
		}
		if r < n/100 {
			low++
		}
	}
	// With theta=1 the first 1% of ranks should draw far more than 1%
	// of the samples.
	if low < 2000 {
		t.Errorf("large-n Zipf skew too weak: %d/10000 in first 1%%", low)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(_, 0, _) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}
