// Chaos sweep (docs/ROBUSTNESS.md): every fault injector crossed with
// every adversarial workload on every bus-bearing and shared design,
// asserting that injected timing perturbations never change
// *functional* behaviour — invariants (including SWMR) hold, every
// core completes its quantum, and the results stay sane. The file
// lives in an external test package so it can drive cmpsim and the
// workload catalog without an import cycle.
package simguard_test

import (
	"fmt"
	"strings"
	"testing"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/l2"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/simguard"
	"cmpnurapid/internal/topo"
	"cmpnurapid/internal/workload"
)

// invariantChecker is implemented by every design the sweep covers.
type invariantChecker interface {
	CheckInvariants()
}

// chaosDesigns builds one fresh instance of each swept design with the
// injector's bus hook wired in (designs without a bus ignore it).
func chaosDesigns(inj simguard.Injector) []memsys.L2 {
	lat := topo.Derive()
	busCfg := bus.Config{Latency: lat.Bus, SlotCycles: 4, GrantJitter: inj.Bus}
	nur := core.DefaultConfig()
	nur.Bus.GrantJitter = inj.Bus
	return []memsys.L2{
		l2.NewPrivateWith(topo.PrivateBytes, topo.PrivateAssoc, topo.BlockBytes,
			lat.PrivateTotal, busCfg, 300),
		l2.NewPrivateUpdateWith(topo.PrivateBytes, topo.PrivateAssoc, topo.BlockBytes,
			lat.PrivateTotal, busCfg, 300),
		l2.NewSNUCA(),
		core.New(nur),
	}
}

// TestChaosSweep is the fault-injection matrix: injector × adversarial
// workload × design. Fault injection perturbs only timing, so every
// run must still complete its quantum with invariants clean.
func TestChaosSweep(t *testing.T) {
	const seed = 0xC0FFEE
	const quantum = 4000
	for _, inj := range simguard.Injectors(seed) {
		for wi, w := range workload.Adversarial(seed) {
			for _, design := range chaosDesigns(inj) {
				name := fmt.Sprintf("%s/%s/%s", inj.Name, w.Name(), design.Name())
				t.Run(name, func(t *testing.T) {
					// Fresh workload per system: adversarial streams are
					// stateful and every design must see its own copy.
					fresh := workload.Adversarial(seed)[wi]
					cfg := cmpsim.DefaultConfig()
					cfg.ExtraLatency = inj.Latency
					sys := cmpsim.New(cfg, design, fresh)
					sys.Warmup(quantum / 2)
					res := sys.Run(quantum)

					if chk, ok := design.(invariantChecker); ok {
						chk.CheckInvariants()
					}
					if len(res.Cores) != topo.NumCores {
						t.Fatalf("results cover %d cores", len(res.Cores))
					}
					for c, cr := range res.Cores {
						if cr.Instructions < quantum {
							t.Errorf("core %d retired %d instructions, want >= %d", c, cr.Instructions, quantum)
						}
						if cr.Cycles <= 0 {
							t.Errorf("core %d has non-positive cycle count %d", c, cr.Cycles)
						}
					}
					if res.IPC <= 0 {
						t.Errorf("aggregate IPC %v not positive", res.IPC)
					}
					if res.Cycles <= 0 {
						t.Errorf("makespan %d not positive", res.Cycles)
					}
				})
			}
		}
	}
}

// TestControlInjectorIsBitIdentical: the "none" injector must produce
// exactly the results of a run with no hooks installed at all — the
// guarantee that keeps docs/golden byte-identical on fault-free runs.
func TestControlInjectorIsBitIdentical(t *testing.T) {
	const quantum = 4000
	run := func(inj simguard.Injector) cmpsim.Results {
		cfg := cmpsim.DefaultConfig()
		cfg.ExtraLatency = inj.Latency
		sys := cmpsim.New(cfg, chaosDesigns(inj)[0], workload.New(workload.Hammer(5)))
		sys.Warmup(quantum / 2)
		return sys.Run(quantum)
	}
	plain := run(simguard.Injector{Name: "no-hooks"})
	control := run(simguard.Injectors(77)[0])
	if plain.Cycles != control.Cycles || plain.Instructions != control.Instructions || plain.IPC != control.IPC {
		t.Errorf("control injector perturbs results: %+v vs %+v", control, plain)
	}
	for c := range plain.Cores {
		if plain.Cores[c] != control.Cores[c] {
			t.Errorf("core %d diverges under control injector", c)
		}
	}
}

// TestWatchdogCatchesLivelockMutant feeds the seeded livelock mutant —
// healthy ops, then zero-work ops forever — into a full system and
// requires the forward-progress watchdog to abort with a structured
// ProgressStall within the configured window. The bound on Steps below
// doubles as the detection-window gate for the event-driven scheduler
// loop: if skip-ahead ever widened the window, the trip would land
// outside ~window steps and this test would fail (cmpsim's
// TestWatchdogTripIdenticalUnderHeap additionally pins the trip point
// to the pre-heap scan loop exactly).
func TestWatchdogCatchesLivelockMutant(t *testing.T) {
	const window = 4096
	mut := &workload.LivelockMutant{Inner: workload.New(workload.Hammer(7)), After: 200}
	cfg := cmpsim.DefaultConfig()
	cfg.StallWindow = memsys.CyclesOf(window)
	sys := cmpsim.New(cfg, l2.NewPrivate(), mut)
	defer func() {
		stall, ok := recover().(*simguard.ProgressStall)
		if !ok {
			t.Fatal("livelock mutant did not trigger a ProgressStall")
		}
		if stall.Window != window {
			t.Errorf("stall window %d, want %d", stall.Window, window)
		}
		if stall.Steps == 0 || stall.Steps > 2*window {
			t.Errorf("watchdog fired after %d steps, want within ~%d", stall.Steps, window)
		}
		if stall.Design != "private" {
			t.Errorf("stall design %q", stall.Design)
		}
		if !strings.Contains(stall.Workload, "livelock-mutant") {
			t.Errorf("stall workload %q does not name the mutant", stall.Workload)
		}
		if len(stall.Cores) != topo.NumCores {
			t.Errorf("stall snapshot covers %d cores", len(stall.Cores))
		}
		for _, cs := range stall.Cores {
			if cs.OutstandingMiss && cs.LineState == "?" {
				t.Errorf("core %d: private design should report a line state, got %q", cs.Core, cs.LineState)
			}
		}
		if stall.BusBacklog < 0 {
			t.Error("private design has a bus; backlog should be reported")
		}
		if !strings.HasPrefix(stall.Error(), "simguard: ") {
			t.Errorf("diagnostic prefix: %q", stall.Error())
		}
	}()
	sys.Run(1_000_000)
}

// TestCycleCeilingAborts: the hard MaxCycles ceiling fires with a
// structured CycleLimitExceeded even on a healthy (retiring) workload.
func TestCycleCeilingAborts(t *testing.T) {
	cfg := cmpsim.DefaultConfig()
	cfg.MaxCycles = memsys.CyclesOf(1000)
	sys := cmpsim.New(cfg, l2.NewPrivate(), workload.New(workload.Hammer(3)))
	defer func() {
		lim, ok := recover().(*simguard.CycleLimitExceeded)
		if !ok {
			t.Fatal("run past MaxCycles did not abort with CycleLimitExceeded")
		}
		if lim.Derived {
			t.Error("explicit MaxCycles reported as derived")
		}
		if uint64(lim.Limit) != 1000 {
			t.Errorf("limit %d, want 1000", uint64(lim.Limit))
		}
		if lim.Now <= lim.Limit {
			t.Errorf("abort at clock %d not past limit %d", uint64(lim.Now), uint64(lim.Limit))
		}
	}()
	sys.Run(10_000_000)
}
