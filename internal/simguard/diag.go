package simguard

import (
	"fmt"
	"strings"

	"cmpnurapid/internal/memsys"
)

// This file defines the structured diagnostics the simulator aborts
// with. They are panic values (the simulator's public API returns
// Results, and an abort must unwind through arbitrary depth), but
// structured ones: the experiment scheduler recovers them into
// CellFailures, and tests assert on their fields instead of matching
// message strings. Both types carry the `panicmsg:diagnostic` marker —
// the simlint panicmsg rule accepts panics whose argument is a marked
// diagnostic type, and TestDiagnosticsCarryPackagePrefix locks the
// "simguard: " prefix the rule would otherwise have enforced.

// CoreSnapshot is one core's architectural state at abort time.
type CoreSnapshot struct {
	Core         int
	Cycles       memsys.Cycle // the core's local clock
	Instructions uint64       // instructions retired since construction
	// OutstandingMiss describes the core's most recent memory
	// reference — with a single outstanding miss per core this is the
	// reference the core is stalled behind.
	OutstandingMiss bool
	Addr            memsys.Addr
	Write           bool
	Instr           bool
	// LineState is the L2 design's coherence/residency state for Addr
	// as seen by this core ("M", "C", "resident", ...), or "?" when
	// the design does not implement memsys.LineStateProber.
	LineState string
}

func (c CoreSnapshot) String() string {
	miss := "no memory reference issued yet"
	if c.OutstandingMiss {
		kind := "read"
		switch {
		case c.Write:
			kind = "write"
		case c.Instr:
			kind = "ifetch"
		}
		miss = fmt.Sprintf("last reference %s %#x (line state %s)", kind, uint64(c.Addr), c.LineState)
	}
	return fmt.Sprintf("core %d: cycle %d, %d instr, %s",
		c.Core, uint64(c.Cycles), c.Instructions, miss)
}

// ProgressStall is the watchdog's abort diagnostic: no core retired an
// instruction for a full window. It is thrown as a panic value by
// cmpsim.System and recovered into a CellFailure by the experiment
// scheduler.
//
// panicmsg:diagnostic
type ProgressStall struct {
	// Window is the configured stall window; Steps the scheduler steps
	// taken since the last retirement when the watchdog fired.
	Window memsys.Cycles
	Steps  uint64
	// Now is the laggard core's clock at abort.
	Now memsys.Cycle
	// Design and Workload identify the simulation.
	Design   string
	Workload string
	// Cores is the per-core architectural state.
	Cores []CoreSnapshot
	// BusBacklog is the bus arbitration queue depth (cycles a request
	// issued at Now would wait), or -1 when the design has no bus.
	BusBacklog memsys.Cycles
}

// Error implements error. The message carries the package prefix the
// repository's panic convention requires.
func (p *ProgressStall) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simguard: forward-progress stall: no instruction retired for %d steps (window %d cycles) at cycle %d on %s/%s",
		p.Steps, int64(p.Window), uint64(p.Now), p.Design, p.Workload)
	for _, c := range p.Cores {
		b.WriteString("\n  " + c.String())
	}
	if p.BusBacklog >= 0 {
		fmt.Fprintf(&b, "\n  bus arbitration backlog: %d cycles", int64(p.BusBacklog))
	} else {
		b.WriteString("\n  bus arbitration backlog: n/a (design has no bus)")
	}
	return b.String()
}

func (p *ProgressStall) String() string { return p.Error() }

// CycleLimitExceeded is the hard-ceiling abort diagnostic: the global
// clock passed cmpsim.Config.MaxCycles (or the budget derived from the
// instruction quantum). It exists so that even a watchdog bug cannot
// hang a run — the ceiling check is a one-line comparison with no
// state machine to get wrong.
//
// panicmsg:diagnostic
type CycleLimitExceeded struct {
	// Limit is the ceiling that was crossed; Derived reports whether
	// it came from the instruction budget rather than an explicit
	// MaxCycles.
	Limit   memsys.Cycle
	Derived bool
	// Now is the clock value that crossed the ceiling.
	Now memsys.Cycle
	// Design and Workload identify the simulation.
	Design   string
	Workload string
	// Cores is the per-core architectural state.
	Cores []CoreSnapshot
}

// Error implements error.
func (c *CycleLimitExceeded) Error() string {
	src := "explicit MaxCycles"
	if c.Derived {
		src = "ceiling derived from instruction budget"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "simguard: cycle limit exceeded: clock %d passed %d (%s) on %s/%s",
		uint64(c.Now), uint64(c.Limit), src, c.Design, c.Workload)
	for _, cs := range c.Cores {
		b.WriteString("\n  " + cs.String())
	}
	return b.String()
}

func (c *CycleLimitExceeded) String() string { return c.Error() }
