package simguard

import "cmpnurapid/internal/rng"

// Farm-level fault injectors (docs/ROBUSTNESS.md). The in-simulator
// injectors above perturb timing inside a healthy process; these model
// the process-level failures the experiment farm (internal/farm) must
// survive: a worker SIGKILLed mid-cell (OOM killer, node failure) and
// a worker that livelocks without crashing (stall-then-kill via the
// coordinator's per-attempt timeout). Decisions are pure functions of
// (seed, cell key, attempt), so a chaos schedule is reproducible and a
// killed cell's retry — attempt 1 — deterministically runs clean,
// which is why a chaos run's final stdout is byte-identical to a
// fault-free one.

// farmHash folds a cell key into a seeded rng stream.
func farmHash(seed uint64, key string) *rng.Source {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return rng.New(seed ^ h)
}

// WorkerKill returns a coordinator-side kill decision: SIGKILL the
// worker running (key, attempt) after a short seeded delay. A seeded
// frac of cells is killed on their first attempt only, so every killed
// cell's retry succeeds and the sweep still completes with exit 0.
func WorkerKill(seed uint64, frac float64) func(key string, attempt int) bool {
	return func(key string, attempt int) bool {
		return attempt == 0 && farmHash(seed^0x4b11, key).Bool(frac)
	}
}

// WorkerStall returns a worker-side stall decision: the chosen
// (key, attempt) hangs instead of answering, driving the
// coordinator's timeout (stall-then-kill). First attempts only, as
// with WorkerKill.
func WorkerStall(seed uint64, frac float64) func(key string, attempt int) bool {
	return func(key string, attempt int) bool {
		return attempt == 0 && farmHash(seed^0x57a11, key).Bool(frac)
	}
}

// FarmInjector is one catalog entry of the farm chaos sweep: named,
// seeded process-level faults the farm tests apply to a full plan.
// Either hook may be nil.
type FarmInjector struct {
	Name string
	// Kill is wired into farm.Config.Kill (SIGKILL mid-cell).
	Kill func(key string, attempt int) bool
	// Stall is wired into farm.Config.Stall (hang until the timeout).
	Stall func(key string, attempt int) bool
}

// FarmInjectors returns the standard farm chaos catalog at the given
// seed: no fault (the control), worker kills, worker stalls, and both
// at once.
func FarmInjectors(seed uint64) []FarmInjector {
	return []FarmInjector{
		{Name: "none"},
		{Name: "worker-kill", Kill: WorkerKill(seed, 0.5)},
		{Name: "worker-stall", Stall: WorkerStall(seed, 0.5)},
		{
			Name:  "worker-kill+worker-stall",
			Kill:  WorkerKill(seed+1, 0.4),
			Stall: WorkerStall(seed+1, 0.4),
		},
	}
}
