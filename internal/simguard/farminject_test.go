package simguard

import (
	"fmt"
	"testing"
)

func farmTestKeys() []string {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("fig7/design-%02d", i)
	}
	return keys
}

// TestWorkerKillIsDeterministic: the kill decision is a pure function
// of (seed, key, attempt) — the property that makes a chaos schedule
// reproducible.
func TestWorkerKillIsDeterministic(t *testing.T) {
	a, b := WorkerKill(7, 0.5), WorkerKill(7, 0.5)
	other := WorkerKill(8, 0.5)
	differs := false
	for _, key := range farmTestKeys() {
		if a(key, 0) != b(key, 0) {
			t.Fatalf("same seed disagreed on %s", key)
		}
		if a(key, 0) != other(key, 0) {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 chose identical kill sets over 64 keys")
	}
}

// TestFarmInjectorsFaultFirstAttemptsOnly: retries (attempt > 0) are
// never faulted, so every chaos run deterministically converges.
func TestFarmInjectorsFaultFirstAttemptsOnly(t *testing.T) {
	for _, inj := range FarmInjectors(7) {
		for _, hook := range []func(string, int) bool{inj.Kill, inj.Stall} {
			if hook == nil {
				continue
			}
			for _, key := range farmTestKeys() {
				for attempt := 1; attempt < 4; attempt++ {
					if hook(key, attempt) {
						t.Fatalf("injector %s faults attempt %d of %s", inj.Name, attempt, key)
					}
				}
			}
		}
	}
}

// TestWorkerKillFractionBounds: frac 0 never kills, frac 1 kills every
// first attempt, and an intermediate frac kills some but not all.
func TestWorkerKillFractionBounds(t *testing.T) {
	none, all, half := WorkerKill(7, 0), WorkerKill(7, 1), WorkerKill(7, 0.5)
	kills := 0
	for _, key := range farmTestKeys() {
		if none(key, 0) {
			t.Errorf("frac 0 killed %s", key)
		}
		if !all(key, 0) {
			t.Errorf("frac 1 spared %s", key)
		}
		if half(key, 0) {
			kills++
		}
	}
	if kills == 0 || kills == len(farmTestKeys()) {
		t.Errorf("frac 0.5 killed %d/%d keys", kills, len(farmTestKeys()))
	}
}

// TestWorkerKillAndStallStreamsAreIndependent: the kill and stall
// decisions at the same seed are drawn from distinct streams — a cell
// is not automatically stalled because it would have been killed.
func TestWorkerKillAndStallStreamsAreIndependent(t *testing.T) {
	kill, stall := WorkerKill(7, 0.5), WorkerStall(7, 0.5)
	same := true
	for _, key := range farmTestKeys() {
		if kill(key, 0) != stall(key, 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("kill and stall decisions identical across 64 keys")
	}
}

// TestFarmInjectorsCatalog: the catalog shape the chaos sweep relies
// on — a fault-free control plus kill, stall, and combined entries.
func TestFarmInjectorsCatalog(t *testing.T) {
	injs := FarmInjectors(7)
	want := map[string]struct{ kill, stall bool }{
		"none":                     {false, false},
		"worker-kill":              {true, false},
		"worker-stall":             {false, true},
		"worker-kill+worker-stall": {true, true},
	}
	if len(injs) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(injs), len(want))
	}
	for _, inj := range injs {
		w, ok := want[inj.Name]
		if !ok {
			t.Errorf("unexpected injector %q", inj.Name)
			continue
		}
		if (inj.Kill != nil) != w.kill || (inj.Stall != nil) != w.stall {
			t.Errorf("injector %q hooks kill=%v stall=%v, want kill=%v stall=%v",
				inj.Name, inj.Kill != nil, inj.Stall != nil, w.kill, w.stall)
		}
	}
}
