package simguard

import (
	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
)

// Fault injectors. Each constructor seeds its own internal/rng stream,
// so a chaos run is bit-reproducible from (injector, seed): the
// simulator is single-threaded per system, draws happen in simulation
// order, and nothing else shares the stream. Injected delays are pure
// timing perturbations — they must never change *functional* behaviour
// (which block is where, which states hold), which is exactly what the
// chaos sweep's CheckInvariants assertions verify.

// BusJitter returns a bus.Config.GrantJitter hook adding a uniform
// [0, max] cycle arbitration delay to every bus transaction.
func BusJitter(seed uint64, max memsys.Cycles) func(now memsys.Cycle, kind bus.Kind) memsys.Cycles {
	src := rng.New(seed ^ 0xb05_717e8)
	return func(now memsys.Cycle, kind bus.Kind) memsys.Cycles {
		return memsys.CyclesOf(src.Intn(int(max) + 1))
	}
}

// LatencyNoise returns a cmpsim.Config.ExtraLatency hook adding a
// uniform [0, max] cycle perturbation to every L2 access a core
// observes (miss handling, queueing variation, DVFS wobble — anything
// that stretches an access without changing what it does).
func LatencyNoise(seed uint64, max memsys.Cycles) func(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Cycles {
	src := rng.New(seed ^ 0x1a7e_0c15)
	return func(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Cycles {
		return memsys.CyclesOf(src.Intn(int(max) + 1))
	}
}

// Injector is one catalog entry of the fault-injection sweep: a named,
// seeded perturbation the chaos tests apply to every design. Either
// hook may be nil.
type Injector struct {
	Name string
	// Bus perturbs bus arbitration (wired into bus.Config.GrantJitter
	// through the design's Config).
	Bus func(now memsys.Cycle, kind bus.Kind) memsys.Cycles
	// Latency perturbs observed L2 latency (wired into
	// cmpsim.Config.ExtraLatency).
	Latency func(now memsys.Cycle, core int, addr memsys.Addr, write bool) memsys.Cycles
}

// Injectors returns the standard catalog at the given seed: no fault
// (the control), bus-grant jitter, latency perturbation, and both at
// once. docs/ROBUSTNESS.md documents each entry.
func Injectors(seed uint64) []Injector {
	return []Injector{
		{Name: "none"},
		{Name: "bus-jitter", Bus: BusJitter(seed, 24)},
		{Name: "latency-noise", Latency: LatencyNoise(seed, 64)},
		{
			Name:    "bus-jitter+latency-noise",
			Bus:     BusJitter(seed+1, 24),
			Latency: LatencyNoise(seed+1, 64),
		},
	}
}
