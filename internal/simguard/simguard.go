// Package simguard is the simulator's robustness layer: a
// forward-progress watchdog, structured stall/limit diagnostics, and
// deterministic seeded fault injectors.
//
// The reproduction's claims rest on dozens of independent (design,
// workload) simulations. Before this package, a single livelocked or
// panicking cell either spun forever or killed the whole experiment
// run with nothing to show for the cells that were healthy. simguard
// follows the chaos-testing discipline of large-scale simulator stacks
// (FoundationDB-style deterministic fault injection; gem5's
// forward-progress assertions):
//
//   - The Watchdog detects livelock — no core retiring an instruction
//     for a configured window — and cmpsim.System aborts with a
//     *ProgressStall carrying per-core architectural state, the
//     outstanding memory reference, bus arbitration backlog, and the
//     coherence states of the stalled lines.
//   - A hard cycle ceiling (cmpsim.Config.MaxCycles, derived from the
//     instruction budget when unset) bounds every phase even if the
//     watchdog itself is buggy, aborting with a *CycleLimitExceeded.
//   - Fault injectors (inject.go) perturb bus arbitration and L2
//     latency from internal/rng seeds, so every chaos run reproduces
//     bit-identically from its seed; adversarial workload profiles
//     live in internal/workload (Adversarial, LivelockMutant).
//   - The experiment scheduler (internal/experiments) recovers cell
//     panics and watchdog aborts into CellFailures, keeps running the
//     remaining cells, and cmd/experiments renders failed experiments
//     as ERR with a failure report after the tables.
//
// See docs/ROBUSTNESS.md for the watchdog semantics, the injector
// catalog, the failure-report format and the reproduction recipe.
package simguard

import "cmpnurapid/internal/memsys"

// DefaultStallWindow is the forward-progress window used when a
// configuration does not set one: if no core retires an instruction
// for this many cycles — or this many scheduler steps, for livelocks
// that stop the clock entirely — the run aborts. At CPI 1 the slowest
// legitimate instruction in the modelled hierarchy costs well under
// 10^3 cycles, so a million-cycle window has zero false-positive
// margin while still firing in well under a second of host time.
const DefaultStallWindow memsys.Cycles = 1 << 20

// Watchdog detects forward-progress stalls. The simulator feeds it one
// Observe call per scheduler step with the laggard core's clock and
// the number of instructions that step retired; the watchdog trips
// when a full window passes with no retirement.
//
// Two clocks guard the window because livelocks come in two shapes:
// a run whose cycle clock advances without retiring (spinning on
// resource reservations) trips the cycle check, and a run whose clock
// stops entirely (zero-work ops forever — the clock only moves when
// work is done) trips the step check, which the cycle check could
// never see.
type Watchdog struct {
	window memsys.Cycles
	// lastRetire is the laggard clock at the last observed retirement.
	lastRetire memsys.Cycle
	// steps counts Observe calls since the last retirement.
	steps uint64
	armed bool
}

// NewWatchdog returns a watchdog with the given window; window <= 0
// selects DefaultStallWindow.
//
// hotpath:alloc one watchdog allocation per run phase, not per cycle
func NewWatchdog(window memsys.Cycles) *Watchdog {
	if window <= 0 {
		window = DefaultStallWindow
	}
	return &Watchdog{window: window}
}

// Window returns the configured stall window.
func (w *Watchdog) Window() memsys.Cycles { return w.window }

// StepsSinceRetire returns how many scheduler steps have run since the
// last observed instruction retirement.
func (w *Watchdog) StepsSinceRetire() uint64 { return w.steps }

// Observe records one scheduler step: now is the laggard core's clock,
// retired the instructions that step completed. It reports whether the
// run is stalled — a full window of cycles or steps without a single
// retirement.
//
// Observation-point contract: now is the clock the scheduler popped —
// the laggard's pre-step clock, before the step's latency is charged.
// The event-driven loop (cmpsim sched.go) pops the identical clock
// sequence the historical linear scan produced, so the detection
// window is unchanged by the refactor: cmpsim's
// TestWatchdogTripIdenticalUnderHeap pins the trip step and clock to
// the scan reference exactly, and the chaos sweep re-proves both
// window clauses (cycle-based and step-based) against the livelock
// mutant under the heap loop. Pre-step observation is also the tight
// choice: anchoring lastRetire at the clock a retiring step *started*
// means a following dead window is measured from the last instant
// useful work was initiated, not from after its (possibly long)
// latency had already been charged.
func (w *Watchdog) Observe(now memsys.Cycle, retired uint64) (stalled bool) {
	if !w.armed || retired > 0 {
		w.armed = true
		w.lastRetire = now
		w.steps = 0
		return false
	}
	w.steps++
	return now.Sub(w.lastRetire) > w.window || w.steps > uint64(w.window)
}
