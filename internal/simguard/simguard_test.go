package simguard

import (
	"strings"
	"testing"

	"cmpnurapid/internal/bus"
	"cmpnurapid/internal/memsys"
)

func TestWatchdogTripsOnStepsWithFrozenClock(t *testing.T) {
	// The zero-work livelock: the clock never advances, so only the
	// step counter can see the stall.
	wd := NewWatchdog(memsys.CyclesOf(100))
	var now memsys.Cycle
	if wd.Observe(now, 1) {
		t.Fatal("tripped on a retiring step")
	}
	for i := 0; i < 100; i++ {
		if wd.Observe(now, 0) {
			t.Fatalf("tripped after %d steps, window is 100", i+1)
		}
	}
	if !wd.Observe(now, 0) {
		t.Fatal("did not trip after a full step window without retirement")
	}
	if wd.StepsSinceRetire() != 101 {
		t.Errorf("StepsSinceRetire = %d, want 101", wd.StepsSinceRetire())
	}
}

func TestWatchdogTripsOnCycles(t *testing.T) {
	// The spinning livelock: the clock advances but nothing retires.
	wd := NewWatchdog(memsys.CyclesOf(100))
	var now memsys.Cycle
	wd.Observe(now, 1)
	now = now.Add(memsys.CyclesOf(100))
	if wd.Observe(now, 0) {
		t.Fatal("tripped exactly at the window boundary")
	}
	now = now.Add(memsys.CyclesOf(1))
	if !wd.Observe(now, 0) {
		t.Fatal("did not trip past the cycle window")
	}
}

func TestWatchdogResetsOnRetirement(t *testing.T) {
	wd := NewWatchdog(memsys.CyclesOf(50))
	var now memsys.Cycle
	for i := 0; i < 1000; i++ {
		now = now.Add(memsys.CyclesOf(40))
		if wd.Observe(now, 1) {
			t.Fatalf("tripped at step %d despite steady retirement", i)
		}
	}
	if wd.StepsSinceRetire() != 0 {
		t.Errorf("StepsSinceRetire = %d after retirement, want 0", wd.StepsSinceRetire())
	}
}

func TestNewWatchdogDefaultWindow(t *testing.T) {
	for _, w := range []memsys.Cycles{0, -5} {
		if got := NewWatchdog(w).Window(); got != DefaultStallWindow {
			t.Errorf("NewWatchdog(%d).Window() = %d, want default %d", w, got, DefaultStallWindow)
		}
	}
	if got := NewWatchdog(memsys.CyclesOf(7)).Window(); got != 7 {
		t.Errorf("explicit window = %d, want 7", got)
	}
}

// TestDiagnosticsCarryPackagePrefix locks the "simguard: " message
// prefix the repository's panic convention requires. The simlint
// panicmsg rule exempts these marked diagnostic types from its
// constant-string check on the strength of this test.
func TestDiagnosticsCarryPackagePrefix(t *testing.T) {
	stall := &ProgressStall{
		Window: memsys.CyclesOf(100), Steps: 101,
		Design: "private", Workload: "adv-hammer",
		Cores: []CoreSnapshot{
			{Core: 0, OutstandingMiss: true, Addr: 0x2000_0000, Write: true, LineState: "M"},
			{Core: 1},
		},
		BusBacklog: memsys.CyclesOf(12),
	}
	msg := stall.Error()
	if !strings.HasPrefix(msg, "simguard: forward-progress stall") {
		t.Errorf("ProgressStall prefix wrong: %q", msg)
	}
	for _, want := range []string{"private", "adv-hammer", "core 0", "core 1",
		"write 0x20000000", "line state M", "no memory reference issued yet",
		"bus arbitration backlog: 12 cycles"} {
		if !strings.Contains(msg, want) {
			t.Errorf("ProgressStall message missing %q:\n%s", want, msg)
		}
	}
	if stall.String() != msg {
		t.Error("ProgressStall String() != Error()")
	}

	noBus := &ProgressStall{BusBacklog: memsys.CyclesOf(-1)}
	if !strings.Contains(noBus.Error(), "n/a (design has no bus)") {
		t.Errorf("busless stall message: %q", noBus.Error())
	}

	lim := &CycleLimitExceeded{Limit: 1000, Now: 1001, Design: "ideal", Workload: "oltp"}
	msg = lim.Error()
	if !strings.HasPrefix(msg, "simguard: cycle limit exceeded") {
		t.Errorf("CycleLimitExceeded prefix wrong: %q", msg)
	}
	if !strings.Contains(msg, "explicit MaxCycles") {
		t.Errorf("explicit-limit message wrong: %q", msg)
	}
	lim.Derived = true
	if !strings.Contains(lim.Error(), "derived from instruction budget") {
		t.Errorf("derived-limit message wrong: %q", lim.Error())
	}
	if lim.String() != lim.Error() {
		t.Error("CycleLimitExceeded String() != Error()")
	}
}

func TestInjectorsDeterministicAndBounded(t *testing.T) {
	a := BusJitter(9, 24)
	b := BusJitter(9, 24)
	for i := 0; i < 500; i++ {
		now := memsys.Cycle(0).Add(memsys.CyclesOf(i))
		ja, jb := a(now, bus.BusRd), b(now, bus.BusRd)
		if ja != jb {
			t.Fatalf("BusJitter not reproducible at draw %d: %d vs %d", i, ja, jb)
		}
		if ja < 0 || ja > 24 {
			t.Fatalf("BusJitter out of range: %d", ja)
		}
	}
	la := LatencyNoise(9, 64)
	lb := LatencyNoise(9, 64)
	for i := 0; i < 500; i++ {
		now := memsys.Cycle(0).Add(memsys.CyclesOf(i))
		ja, jb := la(now, i%4, 0x100, false), lb(now, i%4, 0x100, false)
		if ja != jb {
			t.Fatalf("LatencyNoise not reproducible at draw %d", i)
		}
		if ja < 0 || ja > 64 {
			t.Fatalf("LatencyNoise out of range: %d", ja)
		}
	}
}

func TestInjectorsCatalog(t *testing.T) {
	inj := Injectors(1)
	want := []string{"none", "bus-jitter", "latency-noise", "bus-jitter+latency-noise"}
	if len(inj) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(inj), len(want))
	}
	for i, in := range inj {
		if in.Name != want[i] {
			t.Errorf("injector %d = %q, want %q", i, in.Name, want[i])
		}
	}
	if inj[0].Bus != nil || inj[0].Latency != nil {
		t.Error("the control injector must inject nothing")
	}
	if inj[3].Bus == nil || inj[3].Latency == nil {
		t.Error("the combined injector must set both hooks")
	}
}
