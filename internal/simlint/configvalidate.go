package simlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewConfigValidate builds the config-validation rule: a Config struct
// literal built in cmd/ or examples/ must flow through a validation
// path before use — either directly as a constructor argument (whose
// New/Run-style callee validates it), nested inside an enclosing
// config literal (validated with its parent), or via a .Validate()
// call on the assigned variable in the same function. Binaries are
// where hand-edited parameters enter the system; an unvalidated
// literal there turns a typo'd latency into a silently wrong figure
// instead of an immediate panic.
func NewConfigValidate() *Analyzer {
	return &Analyzer{
		Name: "configvalidate",
		Doc:  "Config literals in cmd/ and examples/ must pass through a Validate/constructor path",
		Run: func(prog *Program, report Reporter) {
			for _, pkg := range prog.Packages {
				if !pkg.UnderRel("cmd", "examples") {
					continue
				}
				for _, file := range pkg.Files {
					checkConfigFile(prog, pkg, file, report)
				}
			}
		},
	}
}

func checkConfigFile(prog *Program, pkg *Package, file *ast.File, report Reporter) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		checkConfigFunc(prog, pkg, fd.Body, report)
	}
}

func checkConfigFunc(prog *Program, pkg *Package, body *ast.BlockStmt, report Reporter) {
	sanctioned := map[*ast.CompositeLit]bool{}
	validated := map[string]bool{} // variable names with a .Validate() call
	assignedTo := map[*ast.CompositeLit]string{}

	markLit := func(expr ast.Expr) *ast.CompositeLit {
		expr = unwrapAddr(expr)
		if cl, ok := expr.(*ast.CompositeLit); ok {
			return cl
		}
		return nil
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Validate" {
				if id, ok := sel.X.(*ast.Ident); ok {
					validated[id.Name] = true
				}
			}
			// A literal handed straight to a call is the constructor
			// path: core.New(core.Config{...}).
			for _, arg := range n.Args {
				if cl := markLit(arg); cl != nil {
					sanctioned[cl] = true
				}
			}
		case *ast.CompositeLit:
			// Nested config literals are validated through their parent.
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if cl := markLit(elt); cl != nil {
					sanctioned[cl] = true
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					cl := markLit(rhs)
					id, ok := n.Lhs[i].(*ast.Ident)
					if cl != nil && ok {
						assignedTo[cl] = id.Name
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, v := range n.Values {
					if cl := markLit(v); cl != nil {
						assignedTo[cl] = n.Names[i].Name
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || !isInternalConfigType(prog, pkg, cl) || sanctioned[cl] {
			return true
		}
		if name, ok := assignedTo[cl]; ok && validated[name] {
			return true
		}
		report(cl.Pos(), "%s literal is neither passed to a constructor nor Validate()d; "+
			"call its Validate method (or build it via the package constructor) before use",
			configTypeName(cl))
		return true
	})
}

func unwrapAddr(expr ast.Expr) ast.Expr {
	if ue, ok := expr.(*ast.UnaryExpr); ok {
		return ue.X
	}
	return expr
}

// isInternalConfigType reports whether the literal builds a *Config
// struct exported from one of this module's packages. With type
// information the origin package is checked exactly; otherwise any
// pkg.XxxConfig selector literal counts.
func isInternalConfigType(prog *Program, pkg *Package, cl *ast.CompositeLit) bool {
	name := configTypeName(cl)
	if name == "" || !strings.HasSuffix(name, "Config") {
		return false
	}
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[cl]; ok && tv.Type != nil {
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return false
			}
			return strings.HasPrefix(named.Obj().Pkg().Path(), prog.ModulePath)
		}
	}
	_, isSelector := cl.Type.(*ast.SelectorExpr)
	return isSelector
}

func configTypeName(cl *ast.CompositeLit) string {
	switch t := cl.Type.(type) {
	case *ast.SelectorExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name + "." + t.Sel.Name
		}
		return t.Sel.Name
	case *ast.Ident:
		return t.Name
	}
	return ""
}
