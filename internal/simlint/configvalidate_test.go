package simlint

import "testing"

// simFixture exports a Config with the standard Validate/constructor
// surface.
const simFixture = `package sim

type Config struct {
	N int
	Inner SubConfig
}

type SubConfig struct {
	M int
}

func (c Config) Validate() {
	if c.N <= 0 {
		panic("sim: non-positive N")
	}
}

func New(c Config) int {
	c.Validate()
	return c.N
}
`

func TestConfigValidateFlagsRawLiterals(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/sim/sim.go": simFixture,
		"cmd/app/main.go": `package main

import "fix.example/m/internal/sim"

func main() {
	cfg := sim.Config{N: 1}
	_ = cfg.N
}
`,
		"examples/demo/main.go": `package main

import "fix.example/m/internal/sim"

func main() {
	var cfg = sim.Config{N: 2}
	_ = cfg.N
}
`,
	}, NewConfigValidate())
	expectDiags(t, diags,
		"sim.Config literal is neither passed to a constructor nor Validate()d",
		"sim.Config literal is neither passed to a constructor nor Validate()d",
	)
}

func TestConfigValidateAcceptsSanctionedPaths(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/sim/sim.go": simFixture,
		"cmd/app/main.go": `package main

import "fix.example/m/internal/sim"

func main() {
	// Constructor path: literal handed straight to a call.
	_ = sim.New(sim.Config{N: 1})

	// Validate path: explicit call on the assigned variable.
	cfg := sim.Config{N: 2, Inner: sim.SubConfig{M: 3}}
	cfg.Validate()
	_ = cfg.N
}
`,
		// Literals inside library code are the library's business, not
		// this rule's.
		"internal/sim/use.go": `package sim

func Default() Config { return Config{N: 4} }
`,
	}, NewConfigValidate())
	expectDiags(t, diags)
}

func TestConfigValidateIgnoresNonConfigTypes(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/sim/sim.go": simFixture,
		"cmd/app/main.go": `package main

import "fix.example/m/internal/sim"

type options struct{ v int }

func main() {
	o := options{v: 1}
	_ = o
	_ = sim.New(sim.Config{N: 1})
}
`,
	}, NewConfigValidate())
	expectDiags(t, diags)
}
