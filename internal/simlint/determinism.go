package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// DefaultRestrictedPaths are the simulator-model packages in which any
// nondeterministic input would silently skew reproduction numbers:
// same seed must give bit-identical Figure 5/7 results.
var DefaultRestrictedPaths = []string{
	"internal/core",
	"internal/cmpsim",
	"internal/l2",
	"internal/bus",
	"internal/coherence",
	"internal/nurapid",
	"internal/workload",
}

// bannedTimeFuncs are wall-clock sources; time.Duration constants and
// arithmetic remain allowed.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// bannedOSFuncs make model behaviour depend on the process
// environment.
var bannedOSFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// emitCalls are output sinks whose call order is observable: reaching
// one from inside a map iteration makes the emitted order depend on Go
// map randomization.
var emitFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteRune": true, "WriteByte": true,
	"Row": true, "Rowf": true,
}

// NewDeterminism builds the determinism rule: inside the restricted
// simulator packages there must be no wall-clock reads (time.Now and
// friends), no global math/rand use (randomness must flow through
// internal/rng's seeded streams), no environment reads, and no output
// emitted while iterating a map (Go randomizes iteration order).
func NewDeterminism(restricted []string) *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "simulator packages must be bit-reproducible: no wall clock, " +
			"global math/rand, environment reads, or map-iteration-ordered output",
		Run: func(prog *Program, report Reporter) {
			for _, pkg := range prog.Packages {
				if !pkg.UnderRel(restricted...) {
					continue
				}
				for _, file := range pkg.Files {
					checkDeterminismFile(pkg, file, report)
				}
			}
		},
	}
}

func checkDeterminismFile(pkg *Package, file *ast.File, report Reporter) {
	for _, spec := range file.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			report(spec.Pos(), "import of %s: randomness must flow through internal/rng so runs are seed-reproducible", path)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if usesPackage(pkg, file, n, "time") && bannedTimeFuncs[n.Sel.Name] {
				report(n.Pos(), "time.%s reads the wall clock; simulator state must depend only on the seed", n.Sel.Name)
			}
			if usesPackage(pkg, file, n, "os") && bannedOSFuncs[n.Sel.Name] {
				report(n.Pos(), "os.%s makes model behaviour depend on the process environment", n.Sel.Name)
			}
		case *ast.RangeStmt:
			if isMapType(pkg, n.X) {
				if pos, name, found := findEmit(pkg, file, n.Body); found {
					report(pos, "%s emits output inside a map iteration; map order is randomized — sort the keys first (stats.SortedKeys)", name)
				}
			}
		}
		return true
	})
}

func isMapType(pkg *Package, expr ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// findEmit returns the first order-observable output call in body: a
// fmt print function or a writer/table method.
func findEmit(pkg *Package, file *ast.File, body *ast.BlockStmt) (pos token.Pos, name string, found bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if usesPackage(pkg, file, sel, "fmt") && emitFuncs[sel.Sel.Name] {
			pos, name, found = call.Pos(), "fmt."+sel.Sel.Name, true
			return false
		}
		if emitMethods[sel.Sel.Name] && !isPackageSelector(pkg, sel) {
			pos, name, found = call.Pos(), "."+sel.Sel.Name, true
			return false
		}
		return true
	})
	return pos, name, found
}

func isPackageSelector(pkg *Package, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id]; ok {
			_, isPkg := obj.(*types.PkgName)
			return isPkg
		}
	}
	return false
}
