package simlint

import "testing"

func TestDeterminismFlagsWallClockRandAndEnv(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/core/clock.go": `package core

import (
	"math/rand"
	"os"
	"time"
)

func Stamp() int64 {
	if os.Getenv("FAST") != "" {
		return 0
	}
	_ = rand.Int()
	return time.Now().UnixNano()
}
`,
	}, NewDeterminism(DefaultRestrictedPaths))
	expectDiags(t, diags,
		"import of math/rand",
		"os.Getenv",
		"time.Now",
	)
}

func TestDeterminismFlagsMapOrderedOutput(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/workload/dump.go": `package workload

import "fmt"

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`,
	}, NewDeterminism(DefaultRestrictedPaths))
	expectDiags(t, diags, "map iteration")
}

func TestDeterminismAllowsSeededAndOutOfScopeCode(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		// Restricted package: duration constants, sorted map iteration
		// and slice iteration with output are all fine.
		"internal/core/ok.go": `package core

import (
	"fmt"
	"sort"
	"time"
)

const tick = 10 * time.Millisecond

func Dump(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`,
		// cmd/ is outside the restricted set: wall-clock timing of a
		// run is legitimate there.
		"cmd/tool/main.go": `package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
`,
	}, NewDeterminism(DefaultRestrictedPaths))
	expectDiags(t, diags)
}
