package simlint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// enumInfo describes one domain enum: a named type declared in an
// internal package whose underlying type is int8 and which has at
// least one package-level constant of that exact type (the iota-enum
// idiom used by coherence.State, ProcOp, BusOp and SnoopAction).
type enumInfo struct {
	typ       *types.Named
	constants []*types.Const // declaration order not guaranteed; sorted by value
}

// NewEnumSwitch builds the enum-exhaustiveness rule: every switch over
// a domain enum must either handle all declared constants explicitly
// or carry a default clause that unconditionally panics. A switch that
// misses constants and then falls through to whatever code follows is
// exactly how a protocol transition function silently returns a
// zero-value (state, action) for an input the author never considered;
// internal/protocheck then model-checks the semantics this rule makes
// syntactically total.
func NewEnumSwitch() *Analyzer {
	return &Analyzer{
		Name: "enumswitch",
		Doc: "switches over int8-backed internal enums must handle every " +
			"constant or panic in default",
		Run: func(prog *Program, report Reporter) {
			enums := collectEnums(prog)
			if len(enums) == 0 {
				return
			}
			for _, pkg := range prog.Packages {
				if pkg.Info == nil {
					continue
				}
				for _, file := range pkg.Files {
					checkEnumSwitchFile(pkg, file, enums, report)
				}
			}
		},
	}
}

// collectEnums finds every int8-backed enum declared under internal/.
func collectEnums(prog *Program) map[*types.Named]*enumInfo {
	enums := map[*types.Named]*enumInfo{}
	for _, pkg := range prog.Packages {
		if pkg.Types == nil || !pkg.UnderRel("internal") {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Kind() != types.Int8 {
				continue
			}
			enums[named] = &enumInfo{typ: named}
		}
		// Second pass over the same scope: attach constants to the
		// enums they belong to.
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			named, ok := c.Type().(*types.Named)
			if !ok {
				continue
			}
			if info, ok := enums[named]; ok {
				info.constants = append(info.constants, c)
			}
		}
	}
	for t, info := range enums {
		if len(info.constants) == 0 {
			delete(enums, t) // an int8 type with no constants is not an enum
			continue
		}
		sort.Slice(info.constants, func(i, j int) bool {
			vi, _ := constant.Int64Val(info.constants[i].Val())
			vj, _ := constant.Int64Val(info.constants[j].Val())
			if vi != vj {
				return vi < vj
			}
			return info.constants[i].Name() < info.constants[j].Name()
		})
	}
	return enums
}

func checkEnumSwitchFile(pkg *Package, file *ast.File, enums map[*types.Named]*enumInfo, report Reporter) {
	ast.Inspect(file, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tv, ok := pkg.Info.Types[sw.Tag]
		if !ok || tv.Type == nil {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return true
		}
		info, ok := enums[named]
		if !ok {
			return true
		}

		covered := map[int64]bool{}
		var defaultClause *ast.CaseClause
		for _, stmt := range sw.Body.List {
			clause, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if clause.List == nil {
				defaultClause = clause
				continue
			}
			for _, expr := range clause.List {
				ctv, ok := pkg.Info.Types[expr]
				if !ok || ctv.Value == nil {
					continue
				}
				if v, exact := constant.Int64Val(ctv.Value); exact {
					covered[v] = true
				}
			}
		}

		var missing []string
		seen := map[int64]bool{}
		for _, c := range info.constants {
			v, _ := constant.Int64Val(c.Val())
			if covered[v] || seen[v] {
				continue
			}
			seen[v] = true
			missing = append(missing, c.Name())
		}
		if len(missing) == 0 {
			return true
		}
		if defaultClause != nil && clausePanics(defaultClause) {
			return true
		}
		typeName := named.Obj().Pkg().Name() + "." + named.Obj().Name()
		if defaultClause != nil {
			report(sw.Pos(), "switch over %s misses %s and its default does not panic; handle the missing constants or make the default panic",
				typeName, strings.Join(missing, ", "))
		} else {
			report(sw.Pos(), "switch over %s misses %s with no default; control falls through silently — handle them or add a panicking default",
				typeName, strings.Join(missing, ", "))
		}
		return true
	})
}

// clausePanics reports whether the clause body ends in an unconditional
// call to the builtin panic. A conditional panic does not count: the
// fall-through path the rule exists to close would still be open.
func clausePanics(clause *ast.CaseClause) bool {
	if len(clause.Body) == 0 {
		return false
	}
	expr, ok := clause.Body[len(clause.Body)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	return ok && fn.Name == "panic"
}
