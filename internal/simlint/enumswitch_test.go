package simlint

import "testing"

// enumDecl is a minimal int8-backed iota enum in an internal package,
// mirroring coherence.State.
const enumDecl = `package proto

type St int8

const (
	A St = iota
	B
	C
)

func (s St) Known() bool { return s <= C }
`

func TestEnumSwitchFlagsMissingConstants(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/proto/proto.go": enumDecl,
		"internal/proto/use.go": `package proto

func Step(s St) int {
	switch s {
	case A:
		return 1
	case B:
		return 2
	}
	return 0 // silent fallthrough for C
}
`,
	}, NewEnumSwitch())
	expectDiags(t, diags, "switch over proto.St misses C with no default")
}

func TestEnumSwitchFlagsNonPanickingDefault(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/proto/proto.go": enumDecl,
		"internal/proto/use.go": `package proto

func Step(s St) int {
	switch s {
	case A:
		return 1
	default:
		return 0
	}
}
`,
	}, NewEnumSwitch())
	expectDiags(t, diags, "misses B, C and its default does not panic")
}

func TestEnumSwitchFlagsConditionalPanicDefault(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/proto/proto.go": enumDecl,
		"internal/proto/use.go": `package proto

func Step(s St, strict bool) int {
	switch s {
	case A:
		return 1
	default:
		if strict {
			panic("proto: bad state")
		}
		return 0
	}
}
`,
	}, NewEnumSwitch())
	expectDiags(t, diags, "default does not panic")
}

func TestEnumSwitchAcceptsExhaustiveAndPanickingForms(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/proto/proto.go": enumDecl,
		"internal/proto/use.go": `package proto

import "fmt"

// All constants handled: no default needed, trailing code allowed
// (the String() idiom).
func Name(s St) string {
	switch s {
	case A:
		return "a"
	case B, C:
		return "bc"
	}
	return fmt.Sprintf("St(%d)", int8(s))
}

// Panicking default closes the gap for unhandled constants.
func Step(s St) int {
	switch s {
	case A:
		return 1
	default:
		panic(fmt.Sprintf("proto: unhandled state %v", s))
	}
}

// An empty case body still counts as explicit handling.
func Count(s St) (n int) {
	switch s {
	case A, B:
		n++
	case C:
	}
	return n
}
`,
		// Switches over internal enums are checked outside internal/ too.
		"cmd/tool/main.go": `package main

import "fix.example/m/internal/proto"

func main() {
	switch proto.A {
	case proto.A, proto.B, proto.C:
	}
}
`,
	}, NewEnumSwitch())
	expectDiags(t, diags)
}

func TestEnumSwitchChecksUsesOutsideDeclaringPackage(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/proto/proto.go": enumDecl,
		"cmd/tool/main.go": `package main

import "fix.example/m/internal/proto"

func classify(s proto.St) int {
	switch s {
	case proto.A:
		return 1
	}
	return 0
}

func main() { _ = classify(proto.B) }
`,
	}, NewEnumSwitch())
	expectDiags(t, diags, "misses B, C")
}

func TestEnumSwitchIgnoresOutOfScopeTypes(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		// int-backed enums are not domain enums for this rule.
		"internal/policy/policy.go": `package policy

type Mode int

const (
	On Mode = iota
	Off
)

func Flip(m Mode) Mode {
	switch m {
	case On:
		return Off
	}
	return On
}
`,
		// int8 enums declared outside internal/ are out of scope.
		"toplevel.go": `package m

type Kind int8

const (
	K0 Kind = iota
	K1
)

func Pick(k Kind) int {
	switch k {
	case K0:
		return 0
	}
	return 1
}
`,
		// An int8 type with no constants is not an enum.
		"internal/raw/raw.go": `package raw

type Delta int8

func Sign(d Delta) int {
	switch d {
	case 1:
		return 1
	}
	return 0
}
`,
		// Tagless switches are ordinary if-chains.
		"internal/proto/proto.go": enumDecl,
		"internal/proto/use.go": `package proto

func Classify(s St) int {
	switch {
	case s == A:
		return 1
	}
	return 0
}
`,
	}, NewEnumSwitch())
	expectDiags(t, diags)
}

func TestEnumSwitchAliasedConstantValues(t *testing.T) {
	// Two names for the same value: covering either name covers the
	// value, and a miss is reported once under one representative name.
	diags := lintFixture(t, map[string]string{
		"internal/proto/proto.go": `package proto

type St int8

const (
	A St = iota
	B
	BAlias = B
)

func Step(s St) int {
	switch s {
	case A, BAlias:
		return 1
	}
	return 0
}
`,
	}, NewEnumSwitch())
	expectDiags(t, diags)
}
