package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DefaultFloatComparePaths are the packages that turn simulation
// counters into the paper's reported numbers; an exact float
// comparison there (e.g. a speedup == 1.0 guard) silently
// misclassifies results that differ in the last ulp.
var DefaultFloatComparePaths = []string{
	"internal/experiments",
	"internal/stats",
}

// NewFloatCompare builds the float-compare rule: no == or != between
// floating-point operands in the result-reporting packages. Ordered
// comparisons (<, >=, ...) stay allowed — they are how thresholds are
// meant to be written.
func NewFloatCompare(paths []string) *Analyzer {
	return &Analyzer{
		Name: "floatcmp",
		Doc:  "no ==/!= on floating-point operands in result-reporting packages",
		Run: func(prog *Program, report Reporter) {
			for _, pkg := range prog.Packages {
				if !pkg.UnderRel(paths...) {
					continue
				}
				for _, file := range pkg.Files {
					checkFloatFile(pkg, file, report)
				}
			}
		},
	}
}

func checkFloatFile(pkg *Package, file *ast.File, report Reporter) {
	if pkg.Info == nil {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if isFloat(pkg, be.X) || isFloat(pkg, be.Y) {
			report(be.Pos(), "floating-point %s comparison; compare with an explicit tolerance or restructure around integer counters", be.Op)
		}
		return true
	})
}

func isFloat(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
