package simlint

import "testing"

func TestFloatCompareFlagsEquality(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/stats/frac.go": `package stats

func Same(a, b float64) bool { return a == b }

func Changed(f float32) bool { return f != 1.0 }
`,
	}, NewFloatCompare(DefaultFloatComparePaths))
	expectDiags(t, diags,
		"floating-point == comparison",
		"floating-point != comparison",
	)
}

func TestFloatCompareAllowsOrderedAndOutOfScope(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		// Ordered comparisons and integer equality are fine in scope.
		"internal/stats/ok.go": `package stats

func Pos(f float64) bool { return f > 0 }

func SameCount(a, b uint64) bool { return a == b }
`,
		// Equality on floats outside the reporting packages is out of
		// scope (e.g. rng's theta == 1 fast path).
		"internal/rng/rng.go": `package rng

func IsUnit(theta float64) bool { return theta == 1 }
`,
	}, NewFloatCompare(DefaultFloatComparePaths))
	expectDiags(t, diags)
}
