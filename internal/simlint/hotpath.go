package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpath is the static hot-path allocation/indirection rule group.
//
// The simulator's throughput is bounded by its per-cycle path: the
// cmpsim scheduler loop, the L1/L2 lookups it drives, bus arbitration,
// and the coherence transitions. Go's compiler accepts — silently —
// a long list of constructs that heap-allocate or indirect on every
// execution (a fresh make per access, an fmt call in a tick loop, an
// argument boxed into an interface{} parameter), and a single one of
// them inside the per-cycle path costs more than the cache model it
// implements. hotpath makes the property checkable: a call graph is
// built from `hotpath:root`-annotated entry points, and every function
// statically reachable from a root is scanned for the allocating and
// indirecting constructs below. Audited exceptions carry a
// `hotpath:alloc <reason>` marker (see docs/PERF.md).
//
// Flagged constructs:
//
//   - make and new builtins
//   - append (the backing array may grow)
//   - slice and map composite literals, and &T{...} (escapes to heap)
//   - string concatenation (+ and +=) on non-constant operands
//   - any call into package fmt
//   - arguments boxed into interface{} / any parameters
//   - defer (allocates a deferred-call record on older toolchains and
//     hides work at scope exit)
//   - function literals that capture enclosing variables
//   - range over a map (forces randomized iteration machinery)
//
// Exemptions:
//
//   - everything inside a panic(...) argument list: panics are
//     terminal, so diagnostic construction there is off the hot path
//     and its calls do not extend the graph;
//   - constructs on a line carrying (or directly below) a
//     `hotpath:alloc <reason>` comment;
//   - whole functions whose doc comment carries the marker.
//
// Dynamic dispatch (interface method calls, calls through function
// values and fields) cannot be traversed statically; each concrete
// implementation of a hot interface method is therefore its own root.

const (
	hotRootMarker  = "hotpath:root"
	hotAllocMarker = "hotpath:alloc"
)

// NewHotpath builds the hot-path rule group.
func NewHotpath() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc: "functions reachable from hotpath:root entry points are free of " +
			"allocation and indirection constructs (make/new/append, composite " +
			"literals, string concat, fmt, interface boxing, defer, capturing " +
			"closures, map iteration) unless audited with hotpath:alloc",
		Run: runHotpath,
	}
}

// hotFunc is one module-local function declaration the call graph can
// reach.
type hotFunc struct {
	pkg    *Package
	file   *ast.File
	decl   *ast.FuncDecl
	root   bool
	exempt bool // function-doc hotpath:alloc marker: body not scanned
}

// hotChecker carries the per-run state of the analysis.
type hotChecker struct {
	prog   *Program
	report Reporter
	funcs  map[*types.Func]*hotFunc
	// reachedVia maps each reachable function to the root whose
	// traversal first found it, for diagnostics.
	reachedVia map[*types.Func]string
	// markers caches per-file hotpath:alloc comment lines.
	markers map[*ast.File]map[int]string
}

func runHotpath(prog *Program, report Reporter) {
	hc := &hotChecker{
		prog:       prog,
		report:     report,
		funcs:      map[*types.Func]*hotFunc{},
		reachedVia: map[*types.Func]string{},
		markers:    map[*ast.File]map[int]string{},
	}
	roots := hc.collect()
	if len(hc.funcs) == 0 {
		return
	}
	// Breadth-first over static calls, roots first so reachedVia names
	// the nearest root.
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		name := hotFuncName(r)
		hc.reachedVia[r] = name
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		hf := hc.funcs[fn]
		via := hc.reachedVia[fn]
		for _, callee := range hc.scan(hf, via) {
			if _, seen := hc.reachedVia[callee]; seen {
				continue
			}
			if _, local := hc.funcs[callee]; !local {
				continue
			}
			hc.reachedVia[callee] = via
			queue = append(queue, callee)
		}
	}
}

// collect indexes every module-local function declaration, returning
// the hotpath:root entry points in source order.
func (hc *hotChecker) collect() []*types.Func {
	var roots []*types.Func
	for _, pkg := range hc.prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			hc.collectMarkers(pkg, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				obj = obj.Origin()
				hf := &hotFunc{pkg: pkg, file: file, decl: fd}
				if markerLine(fd.Doc, hotRootMarker) {
					hf.root = true
					roots = append(roots, obj)
				}
				if reason, found := markerReason(fd.Doc, hotAllocMarker); found {
					hf.exempt = true
					if reason == "" {
						hc.report(fd.Pos(), "hotpath:alloc marker on %s is missing a reason", fd.Name.Name)
					}
				}
				hc.funcs[obj] = hf
			}
		}
	}
	return roots
}

// collectMarkers records the line of every hotpath:alloc comment in
// file, flagging reason-less markers.
func (hc *hotChecker) collectMarkers(pkg *Package, file *ast.File) {
	lines := map[int]string{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, found := strings.CutPrefix(text, hotAllocMarker)
			if !found {
				continue
			}
			reason := strings.TrimSpace(rest)
			if reason == "" {
				hc.report(c.Pos(), "hotpath:alloc marker is missing a reason")
				continue
			}
			lines[hc.prog.Fset.Position(c.Pos()).Line] = reason
		}
	}
	if len(lines) > 0 {
		hc.markers[file] = lines
	}
}

// suppressed reports whether a diagnostic at pos is covered by a
// hotpath:alloc marker on the same line or the line directly above.
func (hc *hotChecker) suppressed(hf *hotFunc, pos token.Pos) bool {
	lines := hc.markers[hf.file]
	if lines == nil {
		return false
	}
	line := hc.prog.Fset.Position(pos).Line
	_, same := lines[line]
	_, above := lines[line-1]
	return same || above
}

// flag reports one construct unless a marker audits it.
func (hc *hotChecker) flag(hf *hotFunc, via string, pos token.Pos, detail string) {
	if hf.exempt || hc.suppressed(hf, pos) {
		return
	}
	hc.report(pos, "hot path via %s: %s (restructure, or audit with a hotpath:alloc marker)", via, detail)
}

// scan walks one reachable function: it flags hot-path constructs and
// returns the statically resolvable callees that extend the graph.
func (hc *hotChecker) scan(hf *hotFunc, via string) []*types.Func {
	var callees []*types.Func
	info := hf.pkg.Info
	ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(info, e, "panic") {
				// Terminal: panic-argument construction is off the hot
				// path and its calls do not extend the graph.
				return false
			}
			hc.checkCall(hf, via, e, &callees)
		case *ast.CompositeLit:
			if t := exprType(info, e); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					hc.flag(hf, via, e.Pos(), "slice literal allocates its backing array per evaluation")
				case *types.Map:
					hc.flag(hf, via, e.Pos(), "map literal allocates per evaluation")
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, lit := e.X.(*ast.CompositeLit); lit {
					hc.flag(hf, via, e.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isNonConstString(info, e) {
				hc.flag(hf, via, e.OpPos, "string concatenation allocates; build messages off the hot path")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringType(exprType(info, e.Lhs[0])) {
				hc.flag(hf, via, e.TokPos, "string += allocates; build messages off the hot path")
			}
		case *ast.DeferStmt:
			hc.flag(hf, via, e.Pos(), "defer on the hot path; call at the exit sites instead")
		case *ast.FuncLit:
			if name, captures := capturesOuter(info, hf.decl, e); captures {
				hc.flag(hf, via, e.Pos(), "closure captures "+name+" by reference and may force it to the heap")
			}
		case *ast.RangeStmt:
			if t := exprType(info, e.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					hc.flag(hf, via, e.Range, "map iteration on the hot path; use an indexable structure")
				}
			}
		}
		return true
	})
	return callees
}

// checkCall handles one call expression: builtin allocators, fmt
// calls, interface boxing, and static callee resolution.
func (hc *hotChecker) checkCall(hf *hotFunc, via string, call *ast.CallExpr, callees *[]*types.Func) {
	info := hf.pkg.Info
	switch {
	case isBuiltinCall(info, call, "make"):
		hc.flag(hf, via, call.Pos(), "make allocates per call; pre-size a reusable buffer")
		return
	case isBuiltinCall(info, call, "new"):
		hc.flag(hf, via, call.Pos(), "new allocates per call; reuse a value instead")
		return
	case isBuiltinCall(info, call, "append"):
		hc.flag(hf, via, call.Pos(), "append may grow its backing array; pre-size the buffer")
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && usesPackage(hf.pkg, hf.file, sel, "fmt") {
		hc.flag(hf, via, call.Pos(), "fmt."+sel.Sel.Name+" formats and allocates; format off the hot path")
		// Boxing into fmt's ...any parameters is implied; one
		// diagnostic per call is enough.
		return
	}
	if sig := callSignature(info, call); sig != nil {
		hc.checkBoxing(hf, via, call, sig)
	}
	if callee := staticCallee(info, call); callee != nil {
		*callees = append(*callees, callee)
	}
}

// checkBoxing flags arguments whose concrete values are implicitly
// boxed into empty-interface parameters.
func (hc *hotChecker) checkBoxing(hf *hotFunc, via string, call *ast.CallExpr, sig *types.Signature) {
	if call.Ellipsis.IsValid() {
		return // x... passes an existing slice; nothing new is boxed
	}
	info := hf.pkg.Info
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		iface, ok := pt.Underlying().(*types.Interface)
		if !ok || !iface.Empty() {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
			continue // constants fold; nil boxes no value
		}
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			continue
		}
		hc.flag(hf, via, arg.Pos(), "argument of type "+typeLabel(tv.Type)+" is boxed into an interface{} parameter")
	}
}

// --- resolution helpers ---

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if obj, ok := info.Uses[id]; ok {
		_, builtin := obj.(*types.Builtin)
		return builtin
	}
	return true // unresolved: trust the name (degraded, syntax-only)
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isNonConstString reports whether e is a string concatenation that
// survives to run time (constant concatenations fold at compile time).
func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	return isStringType(tv.Type)
}

// callSignature resolves the signature of a call's target, returning
// nil for conversions and builtins.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// staticCallee resolves a call to a concrete function or method the
// graph can follow. Interface methods and calls through function
// values return nil: they dispatch dynamically, which is why each
// concrete implementation of a hot interface is its own root.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // method value/expr or field read, not a direct call
			}
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if recv := f.Type().(*types.Signature).Recv(); recv != nil {
				if _, iface := recv.Type().Underlying().(*types.Interface); iface {
					return nil
				}
			}
			return f.Origin()
		}
		// Package-qualified call: pkg.F(...).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f.Origin()
		}
	}
	return nil
}

// capturesOuter reports whether lit references a variable declared in
// the enclosing function but outside lit, naming the first one found.
func capturesOuter(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= enclosing.Pos() && pos < lit.Pos() {
			name = v.Name()
		}
		return true
	})
	return name, name != ""
}

// markerLine reports whether a doc comment carries the given marker.
func markerLine(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// markerReason extracts the reason from a `marker <reason>` doc line.
func markerReason(doc *ast.CommentGroup, marker string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, found := strings.CutPrefix(text, marker); found {
			if rest == "" || strings.HasPrefix(rest, " ") {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// hotFuncName renders a function as pkgname.Func or
// pkgname.(*Recv).Method for diagnostics.
func hotFuncName(f *types.Func) string {
	name := f.Name()
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		rt := recv.Type()
		prefix := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			prefix = "*"
		}
		if named, ok := rt.(*types.Named); ok {
			rname := named.Obj().Name()
			if prefix != "" {
				name = "(" + prefix + rname + ")." + name
			} else {
				name = rname + "." + name
			}
		}
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + name
	}
	return name
}
