package simlint

import "testing"

// hotFixture wraps a body into a module whose single hotpath:root
// function contains it, so construct tests stay one-liners.
func hotFixture(body string) map[string]string {
	return map[string]string{
		"internal/sim/sim.go": "package sim\n\n" + body,
	}
}

func TestHotpathFlagsAllocatingBuiltins(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
// hotpath:root
func Tick() {
	buf := make([]int, 8)
	_ = buf
	p := new(int)
	_ = p
	buf = append(buf, 1)
}
`), NewHotpath())
	expectDiags(t, diags,
		"hot path via sim.Tick: make allocates per call",
		"hot path via sim.Tick: new allocates per call",
		"hot path via sim.Tick: append may grow its backing array",
	)
}

func TestHotpathFlagsCompositeLiterals(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
type ev struct{ n int }

// hotpath:root
func Tick() {
	s := []int{1, 2}
	_ = s
	m := map[int]int{1: 2}
	_ = m
	e := &ev{n: 1}
	_ = e
	v := ev{n: 1} // value literal: no heap allocation, not flagged
	_ = v
}
`), NewHotpath())
	expectDiags(t, diags,
		"slice literal allocates its backing array",
		"map literal allocates",
		"&composite literal escapes to the heap",
	)
}

func TestHotpathFlagsStringConcatAndFmt(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
import "fmt"

const prefix = "a" + "b" // constant-folds; not flagged

// hotpath:root
func Tick(name string) string {
	msg := "core " + name
	msg += "!"
	fmt.Println(msg)
	return msg
}
`), NewHotpath())
	expectDiags(t, diags,
		"string concatenation allocates",
		"string += allocates",
		"fmt.Println formats and allocates",
	)
}

func TestHotpathFlagsBoxingIntoEmptyInterface(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
func sink(v any)            {}
func sinks(vs ...any)       {}
func typed(v int)           {}
func ifaceIn(v interface{ M() }) {}

// hotpath:root
func Tick(n int, already any) {
	sink(n)       // boxes the int
	sink(already) // already an interface: no new boxing
	sink(nil)     // nil boxes nothing
	sinks(n, n)   // each variadic arg boxes
	typed(n)      // concrete parameter: fine
}
`), NewHotpath())
	expectDiags(t, diags,
		"argument of type int is boxed into an interface{} parameter",
		"argument of type int is boxed into an interface{} parameter",
		"argument of type int is boxed into an interface{} parameter",
	)
}

func TestHotpathFlagsDeferClosureAndMapRange(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
// hotpath:root
func Tick(m map[int]int) int {
	defer func() {}()
	total := 0
	add := func(n int) { total += n } // captures total
	pure := func(n int) int { return n } // captures nothing: not flagged
	add(pure(1))
	for _, v := range m {
		total += v
	}
	return total
}
`), NewHotpath())
	expectDiags(t, diags,
		"defer on the hot path",
		"closure captures total by reference",
		"map iteration on the hot path",
	)
}

func TestHotpathTraversesStaticCalls(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/sim/sim.go": `package sim

import "fix.example/m/internal/util"

type core struct{ n int }

// hotpath:root
func Tick(c *core) {
	c.step()
}

func (c *core) step() {
	util.Scratch()
}
`,
		"internal/util/util.go": `package util

func Scratch() []byte {
	return make([]byte, 64)
}
`,
	}, NewHotpath())
	expectDiags(t, diags, "hot path via sim.Tick: make allocates per call")
}

func TestHotpathIgnoresUnreachableAndDynamicCalls(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
type worker interface{ Work() }

// hotpath:root
func Tick(w worker, f func()) {
	w.Work() // interface dispatch: not traversed
	f()      // function value: not traversed
}

// Unreachable from any root: allocations here are fine.
func Setup() []int {
	return make([]int, 1024)
}

type impl struct{ buf []byte }

// Work is an implementation of worker, but with no root marker it is
// outside the graph.
func (i *impl) Work() {
	i.buf = append(i.buf, 0)
}
`), NewHotpath())
	expectDiags(t, diags)
}

func TestHotpathExemptsPanicArguments(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
import "fmt"

type fault struct{ core int }

func describe(core int) string {
	return fmt.Sprintf("core %d", core)
}

// hotpath:root
func Tick(core int) {
	if core < 0 {
		// Terminal path: neither the concat, the literal, nor the
		// describe call (and its fmt.Sprintf) count.
		panic("bad core " + describe(core) + fmt.Sprint(&fault{core: core}))
	}
}
`), NewHotpath())
	expectDiags(t, diags)
}

func TestHotpathAllocMarkerSuppression(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
// hotpath:root
func Tick(log []int, n int) []int {
	log = append(log, n) // hotpath:alloc pre-sized by caller, never grows in steady state
	// hotpath:alloc scratch reused across calls
	scratch := make([]int, 0, 8)
	_ = scratch
	unaudited := make([]int, 8)
	_ = unaudited
	return log
}

// audited allocates on every call, but the whole function is vetted.
// hotpath:alloc cold path, runs once per run phase
func audited() *int {
	return new(int)
}

// hotpath:root
func Boot() { _ = audited() }
`), NewHotpath())
	expectDiags(t, diags, "make allocates per call")
}

func TestHotpathMarkerRequiresReason(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
// hotpath:root
func Tick() {
	buf := make([]int, 8) // hotpath:alloc
	_ = buf
}
`), NewHotpath())
	// A reason-less marker is itself a diagnostic, and it does not
	// suppress the construct it rides on. (The construct sorts first:
	// the marker comment sits later on the same line.)
	expectDiags(t, diags,
		"make allocates per call",
		"hotpath:alloc marker is missing a reason",
	)
}

func TestHotpathGenericCalleeResolvedViaOrigin(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
type box[T any] struct{ items []T }

func (b *box[T]) push(v T) {
	b.items = append(b.items, v)
}

// hotpath:root
func Tick(b *box[int]) {
	b.push(1)
}
`), NewHotpath())
	expectDiags(t, diags, "append may grow its backing array")
}

func TestHotpathNoRootsNoDiagnostics(t *testing.T) {
	diags := lintFixture(t, hotFixture(`
func Setup() []int { return make([]int, 64) }
`), NewHotpath())
	expectDiags(t, diags)
}
