package simlint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestHotpathMutantsCaught locks the seeded hot-path mutants in
// testdata/hotpathmutants to the diagnostics the hotpath rule must
// produce for them: a fresh make inside a tick loop, a growing trace
// append, and the fmt.Sprintf feeding it. If an analyzer refactor
// stops catching any of these shapes, this test fails before CI's
// mutant-catch step does.
func TestHotpathMutantsCaught(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "hotpathmutants"))
	if err != nil {
		t.Fatalf("Load(testdata/hotpathmutants): %v", err)
	}
	for _, pkg := range prog.Packages {
		if len(pkg.TypeErrors) != 0 {
			t.Fatalf("mutant fixture must compile (the bugs are silent): %v", pkg.TypeErrors)
		}
	}

	diags := prog.Run([]*Analyzer{NewHotpath()})
	want := []struct {
		file    string
		message string
	}{
		{"sim/sim.go", "make allocates per call"},
		{"sim/sim.go", "append may grow its backing array"},
		{"sim/sim.go", "fmt.Sprintf formats and allocates"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(want), formatDiags(diags))
	}
	for i, w := range want {
		if !strings.HasSuffix(filepath.ToSlash(diags[i].Pos.Filename), w.file) {
			t.Errorf("diagnostic %d in %s, want %s", i, diags[i].Pos.Filename, w.file)
		}
		if !strings.Contains(diags[i].Message, w.message) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w.message)
		}
		if !strings.Contains(diags[i].Message, "hot path via sim.(*Core).Tick") {
			t.Errorf("diagnostic %d = %q, want the root named", i, diags[i].Message)
		}
		if diags[i].Rule != "hotpath" {
			t.Errorf("diagnostic %d rule = %q, want hotpath", i, diags[i].Rule)
		}
	}
}
