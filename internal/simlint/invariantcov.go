package simlint

import (
	"go/ast"
	"go/token"
)

// CoverageTarget names one cache type whose mutating surface must be
// exercised under its invariant checker.
type CoverageTarget struct {
	Rel  string // module-relative package path, e.g. "internal/core"
	Type string // type name, e.g. "Cache"
}

// DefaultCoverageTargets are the designs that maintain cross-structure
// pointer/coherence invariants and expose a CheckInvariants method.
// (l2.Shared is a single set-associative array with no cross-structure
// state, so it has nothing to check.)
var DefaultCoverageTargets = []CoverageTarget{
	{Rel: "internal/core", Type: "Cache"},
	{Rel: "internal/l2", Type: "Private"},
	{Rel: "internal/l2", Type: "PrivateUpdate"},
	{Rel: "internal/l2", Type: "DNUCA"},
	{Rel: "internal/l2", Type: "SNUCA"},
}

// mutatorLeafNames are methods on embedded structures (cache.Array,
// bus.Port, stats counters) that mutate state; a call to one of these
// rooted at the receiver marks the calling method as mutating.
var mutatorLeafNames = map[string]bool{
	"Install": true, "Invalidate": true, "Touch": true, "Acquire": true,
	"Inc": true, "Add": true, "Record": true, "Reset": true,
}

// NewInvariantCoverage builds the invariant-coverage rule: every
// exported mutating method on each target type must be called from at
// least one _test.go file that also calls CheckInvariants, so no
// state-changing operation can regress the pointer structure or the
// MESIC single-writer rule unnoticed. "Mutating" is computed as a
// fixpoint over the type's methods: a method mutates if it assigns
// through the receiver, calls a mutating sibling, or calls a known
// mutator (Install, Invalidate, ...) on receiver-owned state. Call
// sites in tests are matched by method name, which can only
// under-report coverage gaps, never invent them for covered methods.
func NewInvariantCoverage(targets []CoverageTarget) *Analyzer {
	return &Analyzer{
		Name: "invariantcov",
		Doc:  "every exported mutating method on invariant-carrying cache types needs a CheckInvariants-bracketed test",
		Run: func(prog *Program, report Reporter) {
			covered := coveredMethodNames(prog)
			for _, tgt := range targets {
				pkg := prog.ByRel(tgt.Rel)
				if pkg == nil {
					report(token.NoPos, "coverage target %s.%s: package %q not found", tgt.Rel, tgt.Type, tgt.Rel)
					continue
				}
				checkTargetCoverage(pkg, tgt, covered, report)
			}
		},
	}
}

// coveredMethodNames scans every test file in the program: a file that
// calls CheckInvariants contributes all method names it calls to the
// covered set.
func coveredMethodNames(prog *Program) map[string]bool {
	covered := map[string]bool{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.TestFiles {
			names := map[string]bool{}
			checksInvariants := false
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					names[sel.Sel.Name] = true
					if sel.Sel.Name == "CheckInvariants" {
						checksInvariants = true
					}
				}
				return true
			})
			if checksInvariants {
				for name := range names {
					covered[name] = true
				}
			}
		}
	}
	return covered
}

// methodInfo is one method of the target type during the mutating-set
// fixpoint computation.
type methodInfo struct {
	decl     *ast.FuncDecl
	recv     string          // receiver identifier ("" if anonymous)
	mutating bool            // assigns through receiver or calls a mutator leaf
	calls    map[string]bool // sibling methods invoked on the receiver
}

func checkTargetCoverage(pkg *Package, tgt CoverageTarget, covered map[string]bool, report Reporter) {
	methods := map[string]*methodInfo{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if receiverTypeName(fd.Recv.List[0].Type) != tgt.Type {
				continue
			}
			mi := &methodInfo{decl: fd, calls: map[string]bool{}}
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				mi.recv = names[0].Name
			}
			methods[fd.Name.Name] = mi
		}
	}
	if len(methods) == 0 {
		report(token.NoPos, "coverage target %s.%s: type has no methods", tgt.Rel, tgt.Type)
		return
	}
	if _, ok := methods["CheckInvariants"]; !ok {
		report(token.NoPos, "coverage target %s.%s: type has no CheckInvariants method", tgt.Rel, tgt.Type)
		return
	}

	for name, mi := range methods {
		if name == "CheckInvariants" || mi.recv == "" || mi.decl.Body == nil {
			continue
		}
		scanMethodBody(mi, methods)
	}
	// Fixpoint: mutation propagates up the sibling call graph.
	for changed := true; changed; {
		changed = false
		for _, mi := range methods {
			if mi.mutating {
				continue
			}
			for callee := range mi.calls {
				if cm, ok := methods[callee]; ok && cm.mutating {
					mi.mutating = true
					changed = true
					break
				}
			}
		}
	}

	for name, mi := range methods {
		if name == "CheckInvariants" || !mi.mutating || !ast.IsExported(name) {
			continue
		}
		if !covered[name] {
			report(mi.decl.Pos(),
				"%s.%s.%s mutates cache state but no test file calls it alongside CheckInvariants",
				pkg.Name, tgt.Type, name)
		}
	}
}

func scanMethodBody(mi *methodInfo, methods map[string]*methodInfo) {
	recv := mi.recv
	rootedAtRecv := func(expr ast.Expr) bool {
		id := rootIdent(expr)
		return id != nil && id.Name == recv
	}
	ast.Inspect(mi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootedAtRecv(lhs) {
					mi.mutating = true
				}
			}
		case *ast.IncDecStmt:
			if rootedAtRecv(n.X) {
				mi.mutating = true
			}
		case *ast.CallExpr:
			switch fn := n.Fun.(type) {
			case *ast.Ident:
				// delete(recv.m, k) mutates receiver-owned state.
				if fn.Name == "delete" && len(n.Args) == 2 && rootedAtRecv(n.Args[0]) {
					mi.mutating = true
				}
			case *ast.SelectorExpr:
				if !rootedAtRecv(fn.X) {
					break
				}
				if id, ok := fn.X.(*ast.Ident); ok && id.Name == recv {
					if _, sibling := methods[fn.Sel.Name]; sibling {
						mi.calls[fn.Sel.Name] = true
						break
					}
				}
				if mutatorLeafNames[fn.Sel.Name] {
					mi.mutating = true
				}
			}
		}
		return true
	})
}

func receiverTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return ""
}
