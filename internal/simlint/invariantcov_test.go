package simlint

import "testing"

// cacheFixture is a miniature invariant-carrying type: Mutate and
// Access (via its unexported helper) change state, Get does not.
const cacheFixture = `package core

type Cache struct {
	n     int
	valid bool
}

func (c *Cache) Mutate() { c.n++ }

func (c *Cache) Access() int {
	c.install()
	return c.n
}

func (c *Cache) install() { c.valid = true }

func (c *Cache) Get() int { return c.n }

func (c *Cache) CheckInvariants() {
	if c.n < 0 {
		panic("core: negative count")
	}
}
`

var fixtureTargets = []CoverageTarget{{Rel: "internal/core", Type: "Cache"}}

func TestInvariantCoverageFlagsUntestedMutators(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/core/cache.go": cacheFixture,
		// The test calls CheckInvariants and the read-only method, but
		// never the mutators.
		"internal/core/cache_test.go": `package core

import "testing"

func TestGet(t *testing.T) {
	var c Cache
	_ = c.Get()
	c.CheckInvariants()
}
`,
	}, NewInvariantCoverage(fixtureTargets))
	expectDiags(t, diags,
		"Cache.Mutate mutates cache state",
		"Cache.Access mutates cache state",
	)
}

func TestInvariantCoverageSatisfiedByBracketedTests(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/core/cache.go": cacheFixture,
		"internal/core/cache_test.go": `package core

import "testing"

func TestMutators(t *testing.T) {
	var c Cache
	c.Mutate()
	_ = c.Access()
	c.CheckInvariants()
}
`,
	}, NewInvariantCoverage(fixtureTargets))
	expectDiags(t, diags)
}

func TestInvariantCoverageIgnoresUncheckedTestFiles(t *testing.T) {
	// Calling the mutators in a test that never runs CheckInvariants
	// does not count as coverage.
	diags := lintFixture(t, map[string]string{
		"internal/core/cache.go": cacheFixture,
		"internal/core/cache_test.go": `package core

import "testing"

func TestMutators(t *testing.T) {
	var c Cache
	c.Mutate()
	_ = c.Access()
}
`,
	}, NewInvariantCoverage(fixtureTargets))
	expectDiags(t, diags,
		"Cache.Mutate mutates cache state",
		"Cache.Access mutates cache state",
	)
}

func TestInvariantCoverageRequiresCheckerMethod(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/core/cache.go": `package core

type Cache struct{ n int }

func (c *Cache) Mutate() { c.n++ }
`,
	}, NewInvariantCoverage(fixtureTargets))
	expectDiags(t, diags, "no CheckInvariants method")
}
