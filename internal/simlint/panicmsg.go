package simlint

import (
	"go/ast"
	"strings"
)

// sprintfFuncs are fmt helpers whose first argument carries the
// message; panic(fmt.Sprintf("pkg: ...", ...)) is the dominant idiom.
var sprintfFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// NewPanicMsg builds the panic-message-convention rule: every panic in
// an internal package must carry a constant message starting with
// "<pkg>: " (e.g. "bus: non-positive latency"), so an invariant
// violation deep inside a 30-minute reproduction run is immediately
// attributable to the subsystem that detected it.
func NewPanicMsg() *Analyzer {
	return &Analyzer{
		Name: "panicmsg",
		Doc:  `panics in internal packages must carry a "pkg: " message prefix`,
		Run: func(prog *Program, report Reporter) {
			for _, pkg := range prog.Packages {
				if !pkg.UnderRel("internal") {
					continue
				}
				prefix := pkg.Name + ": "
				for _, file := range pkg.Files {
					checkPanicFile(pkg, file, prefix, report)
				}
			}
		},
	}
}

func checkPanicFile(pkg *Package, file *ast.File, prefix string, report Reporter) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "panic" || len(call.Args) != 1 {
			return true
		}
		if pkg.Info != nil {
			// Don't misfire on a local function shadowing the builtin.
			if obj, found := pkg.Info.Uses[fn]; found && obj.Pkg() != nil {
				return true
			}
		}
		if msg, ok := panicMessage(pkg, file, call.Args[0]); !ok || !strings.HasPrefix(msg, prefix) {
			report(call.Pos(), "panic message must be a constant string starting with %q (got %s)",
				prefix, describePanicArg(pkg, file, call.Args[0]))
		}
		return true
	})
}

// panicMessage extracts the constant head of the panic argument: a
// string constant (or concatenation with a constant head), or the
// format string of a fmt.Sprintf-family call.
func panicMessage(pkg *Package, file *ast.File, arg ast.Expr) (string, bool) {
	if s, ok := constString(pkg, arg); ok {
		return s, true
	}
	if call, ok := arg.(*ast.CallExpr); ok && len(call.Args) > 0 {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			usesPackage(pkg, file, sel, "fmt") && sprintfFuncs[sel.Sel.Name] {
			return constString(pkg, call.Args[0])
		}
	}
	return "", false
}

func describePanicArg(pkg *Package, file *ast.File, arg ast.Expr) string {
	if msg, ok := panicMessage(pkg, file, arg); ok {
		return "\"" + msg + "\""
	}
	return "a non-constant message"
}
