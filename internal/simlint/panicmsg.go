package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// sprintfFuncs are fmt helpers whose first argument carries the
// message; panic(fmt.Sprintf("pkg: ...", ...)) is the dominant idiom.
var sprintfFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// diagnosticMarker marks a named type as a structured panic
// diagnostic in its declaration doc comment. Panics whose argument is
// a marked type (simguard.ProgressStall, simguard.CycleLimitExceeded)
// are exempt from the constant-message requirement: the type's Error()
// carries the "pkg: " prefix instead, and the declaring package's
// tests lock that prefix.
const diagnosticMarker = "panicmsg:diagnostic"

// NewPanicMsg builds the panic-message-convention rule: every panic in
// an internal package must carry a constant message starting with
// "<pkg>: " (e.g. "bus: non-positive latency"), so an invariant
// violation deep inside a 30-minute reproduction run is immediately
// attributable to the subsystem that detected it. The one exception is
// a structured diagnostic: a panic whose argument is a named type
// whose declaration doc carries the panicmsg:diagnostic marker.
func NewPanicMsg() *Analyzer {
	return &Analyzer{
		Name: "panicmsg",
		Doc:  `panics in internal packages must carry a "pkg: " message prefix or throw a marked diagnostic type`,
		Run: func(prog *Program, report Reporter) {
			marked := diagnosticTypes(prog)
			for _, pkg := range prog.Packages {
				if !pkg.UnderRel("internal") {
					continue
				}
				prefix := pkg.Name + ": "
				for _, file := range pkg.Files {
					checkPanicFile(pkg, file, prefix, marked, report)
				}
			}
		},
	}
}

// diagnosticTypes collects every named type in the module whose
// declaration doc contains the panicmsg:diagnostic marker, keyed both
// by qualified path ("pkg/path.Type", for type-informed matching) and
// bare name (the syntactic fallback when type info is unavailable).
func diagnosticTypes(prog *Program) map[string]bool {
	marked := map[string]bool{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					if doc != nil && strings.Contains(doc.Text(), diagnosticMarker) {
						marked[pkg.Path+"."+ts.Name.Name] = true
						marked[ts.Name.Name] = true
					}
				}
			}
		}
	}
	return marked
}

func checkPanicFile(pkg *Package, file *ast.File, prefix string, marked map[string]bool, report Reporter) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "panic" || len(call.Args) != 1 {
			return true
		}
		if pkg.Info != nil {
			// Don't misfire on a local function shadowing the builtin.
			if obj, found := pkg.Info.Uses[fn]; found && obj.Pkg() != nil {
				return true
			}
		}
		if isDiagnosticArg(pkg, call.Args[0], marked) {
			return true
		}
		if msg, ok := panicMessage(pkg, file, call.Args[0]); !ok || !strings.HasPrefix(msg, prefix) {
			report(call.Pos(), "panic message must be a constant string starting with %q (got %s)",
				prefix, describePanicArg(pkg, file, call.Args[0]))
		}
		return true
	})
}

// isDiagnosticArg reports whether the panic argument's type is a
// marked diagnostic: by type information when available, else
// syntactically for the panic(&T{...}) / panic(&pkg.T{...}) shapes.
func isDiagnosticArg(pkg *Package, arg ast.Expr, marked map[string]bool) bool {
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[arg]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				obj := n.Obj()
				if obj.Pkg() != nil {
					return marked[obj.Pkg().Path()+"."+obj.Name()]
				}
			}
			return false
		}
	}
	e := arg
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	if cl, ok := e.(*ast.CompositeLit); ok {
		switch t := cl.Type.(type) {
		case *ast.Ident:
			return marked[t.Name]
		case *ast.SelectorExpr:
			return marked[t.Sel.Name]
		}
	}
	return false
}

// panicMessage extracts the constant head of the panic argument: a
// string constant (or concatenation with a constant head), or the
// format string of a fmt.Sprintf-family call.
func panicMessage(pkg *Package, file *ast.File, arg ast.Expr) (string, bool) {
	if s, ok := constString(pkg, arg); ok {
		return s, true
	}
	if call, ok := arg.(*ast.CallExpr); ok && len(call.Args) > 0 {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			usesPackage(pkg, file, sel, "fmt") && sprintfFuncs[sel.Sel.Name] {
			return constString(pkg, call.Args[0])
		}
	}
	return "", false
}

func describePanicArg(pkg *Package, file *ast.File, arg ast.Expr) string {
	if msg, ok := panicMessage(pkg, file, arg); ok {
		return "\"" + msg + "\""
	}
	return "a non-constant message"
}
