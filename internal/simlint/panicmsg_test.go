package simlint

import "testing"

func TestPanicMsgFlagsMissingPrefix(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/bus/bus.go": `package bus

import "fmt"

func A() { panic("non-positive latency") }

func B(n int) { panic(fmt.Sprintf("bad slot count %d", n)) }

func C(err error) { panic(err) }
`,
	}, NewPanicMsg())
	expectDiags(t, diags,
		`must be a constant string starting with "bus: "`,
		`must be a constant string starting with "bus: "`,
		`must be a constant string starting with "bus: "`,
	)
}

func TestPanicMsgAcceptsConventionalForms(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/bus/bus.go": `package bus

import "fmt"

const cycleMsg = "bus: scheduling cycle"

func A() { panic("bus: non-positive latency") }

func B(n int) { panic(fmt.Sprintf("bus: bad slot count %d", n)) }

func C(label string) { panic("bus: unknown label " + label) }

func D() { panic(cycleMsg) }
`,
		// Outside internal/ the convention is not enforced.
		"cmd/tool/main.go": `package main

func main() { panic("anything goes") }
`,
	}, NewPanicMsg())
	expectDiags(t, diags)
}

func TestPanicMsgAcceptsMarkedDiagnosticTypes(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/guard/diag.go": `package guard

// ProgressStall is a structured abort diagnostic.
//
// panicmsg:diagnostic
type ProgressStall struct {
	Now uint64
}

func (p *ProgressStall) Error() string { return "guard: stall" }

// Plain is NOT marked: panicking with it stays a violation.
type Plain struct{}
`,
		"internal/sim/sim.go": `package sim

import "fix.example/m/internal/guard"

func Abort(now uint64) {
	panic(&guard.ProgressStall{Now: now})
}
`,
		"internal/sim/bad.go": `package sim

type local struct{}

func Bad() { panic(local{}) }
`,
	}, NewPanicMsg())
	expectDiags(t, diags, `must be a constant string starting with "sim: "`)
}

func TestPanicMsgMarkedTypeInOwnPackage(t *testing.T) {
	// The declaring package may throw its own diagnostics too.
	diags := lintFixture(t, map[string]string{
		"internal/guard/diag.go": `package guard

// panicmsg:diagnostic
type LimitExceeded struct{ Limit uint64 }

func Check(now, limit uint64) {
	if now > limit {
		panic(&LimitExceeded{Limit: limit})
	}
}
`,
	}, NewPanicMsg())
	expectDiags(t, diags)
}

func TestPanicMsgUsesPackageNameNotDirName(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/l2/private.go": `package l2

func A() { panic("l2: private line in invalid state") }

func B() { panic("private: wrong prefix") }
`,
	}, NewPanicMsg())
	expectDiags(t, diags, `starting with "l2: "`)
}
