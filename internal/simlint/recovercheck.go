package simlint

import (
	"go/ast"
	"sort"
	"strings"
)

// DefaultRecoverAllowed is the repository's recover() allowlist,
// keyed by module-relative package path:
//
//   - internal/experiments.CapturePanic is the scheduler's designated
//     cell-recovery helper — the single place a simulation panic may
//     be converted into a CellFailure.
//   - internal/protocheck.callProc / callSnoop probe the protocol
//     tables for undefined transitions; recovering the table's panic
//     is how the model checker observes "no transition defined".
var DefaultRecoverAllowed = map[string][]string{
	"internal/experiments": {"CapturePanic"},
	"internal/protocheck":  {"callProc", "callSnoop"},
}

// NewRecoverCheck builds the recovery-containment rule: recover() may
// appear only inside the allowlisted functions. Everywhere else a
// recover() would silently swallow the structured diagnostics the
// simulator aborts with (simguard.ProgressStall, invariant panics),
// turning a detected livelock or coherence violation into a wrong
// number in a table. Test files are exempt — tests legitimately assert
// that code panics.
func NewRecoverCheck(allowed map[string][]string) *Analyzer {
	return &Analyzer{
		Name: "recovercheck",
		Doc:  "recover() is legal only inside the scheduler's designated cell-recovery helper (and the protocol checker's probes)",
		Run: func(prog *Program, report Reporter) {
			for _, pkg := range prog.Packages {
				allowedFns := map[string]bool{}
				for _, fn := range allowed[pkg.Rel] {
					allowedFns[fn] = true
				}
				for _, file := range pkg.Files {
					checkRecoverFile(pkg, file, allowedFns, report)
				}
			}
		},
	}
}

func checkRecoverFile(pkg *Package, file *ast.File, allowedFns map[string]bool, report Reporter) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		// A recover() anywhere inside an allowlisted top-level function
		// is fine — including the deferred closure the idiom requires.
		if fd.Recv == nil && allowedFns[fd.Name.Name] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "recover" || len(call.Args) != 0 {
				return true
			}
			if pkg.Info != nil {
				// Don't misfire on a local function shadowing the builtin.
				if obj, found := pkg.Info.Uses[fn]; found && obj.Pkg() != nil {
					return true
				}
			}
			report(call.Pos(), "recover() outside the designated recovery helpers (allowed here: %s)",
				describeAllowed(allowedFns))
			return true
		})
	}
}

func describeAllowed(allowedFns map[string]bool) string {
	if len(allowedFns) == 0 {
		return "none"
	}
	names := make([]string, 0, len(allowedFns))
	for fn := range allowedFns {
		names = append(names, fn)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
