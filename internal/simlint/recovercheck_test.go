package simlint

import "testing"

func TestRecoverCheckFlagsStrayRecover(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/sim/sim.go": `package sim

func Step() (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return true
}
`,
	}, NewRecoverCheck(map[string][]string{}))
	expectDiags(t, diags, "recover() outside the designated recovery helpers")
}

func TestRecoverCheckAllowsDesignatedHelper(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/experiments/recover.go": `package experiments

func CapturePanic(key string, fn func()) (failed bool) {
	defer func() {
		if recover() != nil {
			failed = true
		}
	}()
	fn()
	return false
}
`,
	}, NewRecoverCheck(map[string][]string{"internal/experiments": {"CapturePanic"}}))
	expectDiags(t, diags)
}

func TestRecoverCheckAllowlistIsPerPackage(t *testing.T) {
	// The same function name outside the allowlisted package is still a
	// violation: the allowlist names (package, function) pairs.
	diags := lintFixture(t, map[string]string{
		"internal/other/other.go": `package other

func CapturePanic(fn func()) {
	defer func() { _ = recover() }()
	fn()
}
`,
	}, NewRecoverCheck(map[string][]string{"internal/experiments": {"CapturePanic"}}))
	expectDiags(t, diags, "recover() outside the designated recovery helpers")
}

func TestRecoverCheckMethodsNotExempt(t *testing.T) {
	// The allowlist names top-level functions; a method of the same
	// name is not covered.
	diags := lintFixture(t, map[string]string{
		"internal/experiments/m.go": `package experiments

type Eval struct{}

func (e *Eval) CapturePanic(fn func()) {
	defer func() { _ = recover() }()
	fn()
}
`,
	}, NewRecoverCheck(map[string][]string{"internal/experiments": {"CapturePanic"}}))
	expectDiags(t, diags, "recover() outside the designated recovery helpers")
}

func TestRecoverCheckIgnoresTestFilesAndShadows(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		// Tests asserting "this panics" legitimately recover.
		"internal/sim/sim_test.go": `package sim

import "testing"

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	panic("sim: boom")
}
`,
		// A local function named recover is not the builtin.
		"internal/sim/shadow.go": `package sim

func recoverState() int { return 1 }

func recover2() any { return nil }

func Use() int {
	_ = recover2()
	return recoverState()
}
`,
	}, NewRecoverCheck(map[string][]string{}))
	expectDiags(t, diags)
}

func TestRecoverCheckDefaultAllowlistCoversRepo(t *testing.T) {
	for _, rel := range []string{"internal/experiments", "internal/protocheck"} {
		if len(DefaultRecoverAllowed[rel]) == 0 {
			t.Errorf("DefaultRecoverAllowed missing %s", rel)
		}
	}
}
