package simlint

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestSelfLint runs the full default pass suite over this repository —
// the same gate cmd/simlint applies in scripts/check.sh and CI — so a
// plain `go test ./...` already exercises every analyzer end-to-end on
// real sources and fails on any new violation.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		// The race-short gate runs `go run ./cmd/simlint ./...`
		// separately; type-checking the stdlib under -race is the
		// slowest single test in the tree.
		t.Skip("self-lint skipped under -short; cmd/simlint covers it")
	}
	prog, err := Load(repoRoot(t))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Packages) < 15 {
		t.Fatalf("loaded only %d packages; loader lost part of the tree", len(prog.Packages))
	}
	for _, pkg := range prog.Packages {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", pkg.Path, terr)
		}
	}
	diags := prog.Run(DefaultAnalyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
