// Package simlint is a simulator-aware static-analysis pass suite for
// this repository. The Go compiler cannot check the properties the
// reproduction's credibility rests on — cycle-accurate determinism
// (same seed ⇒ bit-identical Figure 5/7 numbers), the "pkg: " panic
// convention that makes invariant violations attributable, exact
// float comparisons that silently mask drift, and invariant-checker
// coverage of every mutating cache operation — so simlint enforces
// them at analysis time, before a full reproduction run ever starts.
//
// The engine is built only on the standard library (go/parser, go/ast,
// go/types with the source importer), matching the repository's
// zero-dependency go.mod. Each rule is an independent Analyzer with
// its own file and table-driven tests on synthetic source fixtures;
// cmd/simlint wires them into a CLI that scripts/check.sh and CI run
// on every change. See docs/ANALYSIS.md for the rule catalogue.
package simlint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

// Package is one loaded, parsed and (best-effort) type-checked package
// of the module under analysis.
type Package struct {
	Path string // import path, e.g. "cmpnurapid/internal/core"
	Rel  string // slash path relative to the module root; "" for the root package
	Name string // package name
	Dir  string

	Files     []*ast.File // non-test sources, type-checked
	TestFiles []*ast.File // _test.go sources, parsed but not type-checked

	Types      *types.Package
	Info       *types.Info
	TypeErrors []error // non-fatal: rules degrade to syntax-only checks
}

// UnderRel reports whether the package sits at or below any of the
// given module-relative paths ("internal/core", "cmd", ...).
func (p *Package) UnderRel(prefixes ...string) bool {
	for _, pre := range prefixes {
		if p.Rel == pre || strings.HasPrefix(p.Rel, pre+"/") {
			return true
		}
	}
	return false
}

// Program is a fully loaded module.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string
	Packages   []*Package // sorted by import path
	byRel      map[string]*Package
}

// ByRel returns the package at the given module-relative path, or nil.
func (p *Program) ByRel(rel string) *Package { return p.byRel[rel] }

// Reporter records one diagnostic for the analyzer that owns it.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one independently runnable and testable rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program, Reporter)
}

// The source importer re-type-checks any standard-library package it
// is asked for from GOROOT source. Sharing one importer (and therefore
// one FileSet) across Load calls means the fixture-heavy rule tests
// and the self-lint gate pay that cost once per process, not per load.
// loadMu serializes whole loads: both vars are only touched while it
// is held, and each load hands out through Program.Fset / progImporter
// the references it captured inside its own critical section.
var (
	loadMu sync.Mutex
	// synccheck:guardedby loadMu
	sharedFset = token.NewFileSet()
	// synccheck:guardedby loadMu
	stdlibImport types.ImporterFrom
)

// Load parses and type-checks every package under root, which must be
// a module root (contain go.mod). Type errors are collected per
// package rather than failing the load, so analysis degrades
// gracefully on broken trees.
func Load(root string) (*Program, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       sharedFset,
		ModulePath: modPath,
		Root:       root,
		byRel:      map[string]*Package{},
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := parseDir(prog, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Packages = append(prog.Packages, pkg)
			prog.byRel[pkg.Rel] = pkg
		}
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].Path < prog.Packages[j].Path
	})

	if stdlibImport == nil {
		stdlibImport = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	}
	checkAll(prog)
	return prog, nil
}

// Run executes the analyzers over the program and returns their
// diagnostics sorted by position.
func (p *Program) Run(analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a := a
		report := func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:     p.Fset.Position(pos),
				Rule:    a.Name,
				Message: fmt.Sprintf(format, args...),
			})
		}
		a.Run(p, report)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// DefaultAnalyzers returns the full pass suite with this repository's
// standard configuration.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(DefaultRestrictedPaths),
		NewPanicMsg(),
		NewFloatCompare(DefaultFloatComparePaths),
		NewInvariantCoverage(DefaultCoverageTargets),
		NewConfigValidate(),
		NewEnumSwitch(),
		NewUnitCheck(),
		NewRecoverCheck(DefaultRecoverAllowed),
		NewHotpath(),
		NewSyncCheck(),
	}
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("simlint: not a module root: %w", err)
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("simlint: no module directive in %s", gomod)
	}
	return string(m[1]), nil
}

// packageDirs walks the module and returns every directory containing
// Go files, skipping vendored, hidden and testdata trees.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

func parseDir(prog *Program, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(prog.Root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	path := prog.ModulePath
	if rel != "" {
		path += "/" + rel
	}
	pkg := &Package{Path: path, Rel: rel, Dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(prog.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !inDefaultBuild(file) {
			continue
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, file)
		} else {
			pkg.Files = append(pkg.Files, file)
		}
	}
	if len(pkg.Files) == 0 && len(pkg.TestFiles) == 0 {
		return nil, nil
	}
	if len(pkg.Files) > 0 {
		pkg.Name = pkg.Files[0].Name.Name
	} else {
		pkg.Name = strings.TrimSuffix(pkg.TestFiles[0].Name.Name, "_test")
	}
	return pkg, nil
}

// inDefaultBuild reports whether file's build constraint (if any) is
// satisfied by the default build configuration — host GOOS/GOARCH, the
// gc toolchain, and no custom tags. Files gated behind custom tags
// (e.g. the seeded `schedmutant` scheduler bug in internal/cmpsim) are
// excluded from the default `go build ./...` and must be excluded here
// too, or the loader would type-check two declarations of the same
// symbol at once. Only `//go:build` lines are recognized; the module
// predates the legacy `// +build` form.
func inDefaultBuild(file *ast.File) bool {
	for _, cg := range file.Comments {
		// Build constraints must precede the package clause.
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				// Malformed constraint: keep the file and let the
				// type-checker surface whatever is wrong.
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "gc" || tag == "unix"
			})
		}
	}
	return true
}

// progImporter resolves module-local imports from the in-progress load
// and everything else (the standard library) through the shared source
// importer. It carries its own reference to that importer, captured
// while loadMu was held, so ImportFrom never reads the guarded
// package var outside the lock.
type progImporter struct {
	prog    *Program
	stdlib  types.ImporterFrom
	checked map[string]*types.Package
}

func (i *progImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *progImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == i.prog.ModulePath || strings.HasPrefix(path, i.prog.ModulePath+"/") {
		if pkg, ok := i.checked[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("simlint: local package %s not yet type-checked (import cycle?)", path)
	}
	return i.stdlib.ImportFrom(path, dir, mode)
}

// checkAll type-checks every package in local-dependency order.
//
// synccheck:holds loadMu
func checkAll(prog *Program) {
	imp := &progImporter{prog: prog, stdlib: stdlibImport, checked: map[string]*types.Package{}}

	deps := map[string][]string{}
	byPath := map[string]*Package{}
	for _, pkg := range prog.Packages {
		byPath[pkg.Path] = pkg
		for _, f := range pkg.Files {
			for _, spec := range f.Imports {
				ip, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if ip == prog.ModulePath || strings.HasPrefix(ip, prog.ModulePath+"/") {
					deps[pkg.Path] = append(deps[pkg.Path], ip)
				}
			}
		}
	}

	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		if state[path] != 0 {
			return
		}
		state[path] = 1
		for _, dep := range deps[path] {
			if state[dep] == 0 {
				visit(dep)
			}
		}
		state[path] = 2
		checkPackage(prog, imp, byPath[path])
	}
	for _, pkg := range prog.Packages {
		visit(pkg.Path)
	}
}

func checkPackage(prog *Program, imp *progImporter, pkg *Package) {
	if pkg == nil || len(pkg.Files) == 0 {
		return
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(pkg.Path, prog.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	imp.checked[pkg.Path] = tpkg
}

// --- shared helpers for rules ---

// usesPackage reports whether sel is a selection on the named import
// path (e.g. time.Now with pkgPath "time"), using type information
// when present and falling back to the file's import table.
func usesPackage(pkg *Package, file *ast.File, sel *ast.SelectorExpr, pkgPath string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id]; ok {
			pn, ok := obj.(*types.PkgName)
			return ok && pn.Imported().Path() == pkgPath
		}
	}
	return id.Name == localImportName(file, pkgPath)
}

// localImportName returns the name pkgPath is imported under in file,
// or "" if it is not imported.
func localImportName(file *ast.File, pkgPath string) string {
	for _, spec := range file.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil || p != pkgPath {
			continue
		}
		if spec.Name != nil {
			return spec.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// constString resolves expr to a compile-time string constant when
// possible: a literal, a concatenation with a literal head, or (with
// type information) any string-typed constant expression.
func constString(pkg *Package, expr ast.Expr) (string, bool) {
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[expr]; ok && tv.Value != nil {
			if s, err := strconv.Unquote(tv.Value.ExactString()); err == nil {
				return s, true
			}
			return tv.Value.ExactString(), true
		}
	}
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return constString(pkg, e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return constString(pkg, e.X)
		}
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			if s, err := strconv.Unquote(e.Value); err == nil {
				return s, true
			}
		}
	}
	return "", false
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier, e.g. c.dgroups[g].frames → c.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
