package simlint

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// writeFixture materializes a synthetic module in a temp dir. A go.mod
// for module fix.example/m is supplied unless the fixture brings its
// own.
func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fix.example/m\n\ngo 1.22\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// lintFixture loads a synthetic module and runs the given analyzers.
func lintFixture(t *testing.T, files map[string]string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	prog, err := Load(writeFixture(t, files))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return prog.Run(analyzers)
}

// expectDiags asserts that the diagnostics contain exactly the given
// message substrings, in positional order.
func expectDiags(t *testing.T, diags []Diagnostic, want ...string) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(want), formatDiags(diags))
	}
	for i, w := range want {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w)
		}
	}
}

func formatDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

func TestLoadBasics(t *testing.T) {
	prog, err := Load(writeFixture(t, map[string]string{
		"a.go":                    "package m\n\nfunc A() int { return 1 }\n",
		"internal/core/b.go":      "package core\n\nimport \"fix.example/m\"\n\nfunc B() int { return m.A() }\n",
		"internal/core/b_test.go": "package core\n\nimport \"testing\"\n\nfunc TestB(t *testing.T) { _ = B() }\n",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if prog.ModulePath != "fix.example/m" {
		t.Errorf("module path = %q", prog.ModulePath)
	}
	if len(prog.Packages) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(prog.Packages))
	}
	core := prog.ByRel("internal/core")
	if core == nil || core.Name != "core" || core.Path != "fix.example/m/internal/core" {
		t.Fatalf("ByRel(internal/core) = %+v", core)
	}
	if len(core.Files) != 1 || len(core.TestFiles) != 1 {
		t.Errorf("core has %d files / %d test files, want 1/1", len(core.Files), len(core.TestFiles))
	}
	if len(core.TypeErrors) != 0 {
		t.Errorf("unexpected type errors: %v", core.TypeErrors)
	}
	if !core.UnderRel("internal") || core.UnderRel("cmd") {
		t.Error("UnderRel misclassifies internal/core")
	}
}

// TestLoadHonorsBuildConstraints: a file gated behind a custom build
// tag (the seeded-mutant pattern, e.g. cmpsim's schedmutant) is
// excluded from the default build and must be excluded from the load
// too — otherwise the loader type-checks both declarations of the
// tag-switched symbol and reports a phantom redeclaration.
func TestLoadHonorsBuildConstraints(t *testing.T) {
	prog, err := Load(writeFixture(t, map[string]string{
		"internal/x/x.go":        "package x\n\nfunc X() bool { return mutant }\n",
		"internal/x/real.go":     "//go:build !somemutant\n\npackage x\n\nconst mutant = false\n",
		"internal/x/mutant.go":   "//go:build somemutant\n\npackage x\n\nconst mutant = true\n",
		"internal/x/hostos.go":   "//go:build " + runtime.GOOS + "\n\npackage x\n\nconst onHost = true\n",
		"internal/x/otheros.go":  "//go:build !" + runtime.GOOS + "\n\npackage x\n\nconst onHost = false\n",
		"internal/x/use_host.go": "package x\n\nfunc Host() bool { return onHost }\n",
	}))
	if err != nil {
		t.Fatal(err)
	}
	pkg := prog.ByRel("internal/x")
	if pkg == nil {
		t.Fatal("package not loaded")
	}
	if len(pkg.TypeErrors) != 0 {
		t.Errorf("tag-excluded files still type-checked: %v", pkg.TypeErrors)
	}
	if len(pkg.Files) != 4 {
		t.Errorf("loaded %d files, want 4 (mutant.go and otheros.go excluded)", len(pkg.Files))
	}
}

// TestLoadParallel exercises loadMu under the race gate: concurrent
// loads of distinct modules share the process-wide FileSet and stdlib
// importer, and must serialize on loadMu without corrupting either —
// each caller still gets its own module's packages back. This is the
// dynamic half of the loader's concurrency story; the static half is
// synccheck's guardedby annotations on sharedFset/stdlibImport
// (TestSyncCheckAcceptsLoaderShape pins the annotation shape).
func TestLoadParallel(t *testing.T) {
	dirs := []string{
		writeFixture(t, map[string]string{
			"go.mod": "module fix.example/para\n\ngo 1.22\n",
			"a.go":   "package para\n\nfunc A() int { return 1 }\n",
		}),
		writeFixture(t, map[string]string{
			"go.mod":            "module fix.example/parb\n\ngo 1.22\n",
			"internal/x/x.go":   "package x\n\nimport \"sync\"\n\nvar mu sync.Mutex\n\nfunc X() { mu.Lock(); defer mu.Unlock() }\n",
			"internal/y/y.go":   "package y\n\nfunc Y() string { return \"y\" }\n",
			"internal/y/doc.go": "// Package y exists to give the load a second file.\npackage y\n",
		}),
	}
	wantPkgs := []int{1, 2}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		which := i % len(dirs)
		wg.Add(1)
		go func() {
			defer wg.Done()
			prog, err := Load(dirs[which])
			if err != nil {
				t.Errorf("parallel Load(%s): %v", dirs[which], err)
				return
			}
			if len(prog.Packages) != wantPkgs[which] {
				t.Errorf("parallel Load(%s) got %d packages, want %d", dirs[which], len(prog.Packages), wantPkgs[which])
			}
			for _, pkg := range prog.Packages {
				if len(pkg.TypeErrors) != 0 {
					t.Errorf("parallel Load(%s) type errors: %v", dirs[which], pkg.TypeErrors)
				}
			}
		}()
	}
	wg.Wait()
}

func TestLoadCollectsTypeErrorsWithoutFailing(t *testing.T) {
	prog, err := Load(writeFixture(t, map[string]string{
		"internal/x/x.go": "package x\n\nfunc X() int { return undefinedName }\n",
	}))
	if err != nil {
		t.Fatalf("Load should tolerate type errors, got %v", err)
	}
	pkg := prog.ByRel("internal/x")
	if pkg == nil || len(pkg.TypeErrors) == 0 {
		t.Fatal("expected recorded type errors for broken package")
	}
}

func TestRunSortsDiagnosticsByPosition(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": "package a\n\nfunc A() { panic(\"x\") }\n\nfunc B() { panic(\"y\") }\n",
	}, NewPanicMsg())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	if diags[0].Pos.Line >= diags[1].Pos.Line {
		t.Errorf("diagnostics not sorted: line %d before line %d", diags[0].Pos.Line, diags[1].Pos.Line)
	}
	if diags[0].Rule != "panicmsg" {
		t.Errorf("rule = %q, want panicmsg", diags[0].Rule)
	}
}

func TestDefaultAnalyzersComplete(t *testing.T) {
	want := map[string]bool{
		"determinism": true, "panicmsg": true, "floatcmp": true,
		"invariantcov": true, "configvalidate": true, "enumswitch": true,
		"unitcheck": true, "recovercheck": true, "hotpath": true,
		"synccheck": true,
	}
	for _, a := range DefaultAnalyzers() {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
	for name := range want {
		t.Errorf("missing analyzer %q", name)
	}
}
