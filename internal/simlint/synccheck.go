package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// synccheck is the annotation-driven concurrency-discipline rule
// group. `go test -race` only catches races the test inputs happen to
// execute; synccheck makes the locking discipline itself checkable,
// before any schedule runs:
//
//  1. Guarded-by discipline. A struct field annotated
//     `synccheck:guardedby <mutexField>` may only be read or written
//     while that mutex is held; lock state is tracked through
//     Lock/RLock/Unlock/RUnlock and `defer Unlock` in the enclosing
//     function (writes require the write lock). In any struct that
//     has a sync.Mutex/RWMutex field, every other field must carry
//     either `synccheck:guardedby <mutexField>` or
//     `synccheck:unguarded <reason>`, so the annotation set stays
//     total. Package-level vars opt in with the same guardedby marker
//     naming a package-level mutex. A function whose doc carries
//     `synccheck:holds <recv>.<mutexField>` (or a package-level mutex
//     name) is checked assuming the caller holds that lock, and every
//     call site must actually hold it. A lock still held at return
//     without a deferred unlock, an unlock without a matching lock,
//     and re-locking a held mutex are all diagnostics — the static
//     shadow of a deadlock or a dropped Unlock.
//
//  2. Goroutine capture. `go func` bodies (and function literals in
//     general) start with an empty lock set, so a guarded field they
//     touch lock-free is flagged even when the spawn site held the
//     lock. A goroutine that captures its enclosing loop variable is
//     flagged: pass it as an argument instead.
//
//  3. Lifecycle pairing. A goroutine that calls WaitGroup.Done must
//     be covered by an Add that precedes the spawn (an Add inside the
//     goroutine is the classic Add-after-Wait race) and the Done must
//     be deferred so panic paths still release it. A channel may be
//     closed at most once across the module; sends are only legal in
//     the function that owns the channel — sends to a captured
//     channel inside a function literal, or to a channel-typed
//     parameter/field, require a `synccheck:producer <name>`
//     registration on the sending function. sync.Once values must
//     never be copied or reassigned.
//
//  4. Determinism bridge. Functions reachable from a `go` statement
//     may not write package-level variables or call the determinism
//     rule's nondeterminism sinks (wall clock, global math/rand,
//     environment reads): parallel execution must stay inside the
//     byte-identical-output contract the experiment scheduler
//     promises. Audited exceptions carry `synccheck:nondet <reason>`
//     on the line (or the line above, or the function doc), e.g. for
//     progress timing that only ever reaches stderr.
//
// Known approximations (documented in docs/ANALYSIS.md): lock state
// is tracked per named expression, so aliases (`m := &s.mu`) escape
// it; branches are merged by intersection, so a lock held on only one
// path counts as not held afterwards; dynamic calls (interface
// methods, function values) are not traversed, the same boundary the
// hotpath rule draws.

const (
	syncGuardedByMarker = "synccheck:guardedby"
	syncUnguardedMarker = "synccheck:unguarded"
	syncHoldsMarker     = "synccheck:holds"
	syncProducerMarker  = "synccheck:producer"
	syncNondetMarker    = "synccheck:nondet"
)

// NewSyncCheck builds the concurrency-discipline rule group.
func NewSyncCheck() *Analyzer {
	return &Analyzer{
		Name: "synccheck",
		Doc: "synccheck:guardedby fields are only touched under their mutex " +
			"(total over mutex-bearing structs), goroutines capture no loop vars " +
			"and pair WaitGroup/chan/Once lifecycles, and nothing reachable from " +
			"a goroutine writes globals or reads nondeterminism sinks",
		Run: runSyncCheck,
	}
}

// guardInfo ties one guarded variable to the mutex that protects it.
type guardInfo struct {
	mutexName string     // field or package-var name of the mutex
	mutexObj  *types.Var // package-level mutex var (nil for struct fields)
}

// syncChecker carries the per-run state of the analysis.
type syncChecker struct {
	prog   *Program
	report Reporter

	guards    map[*types.Var]*guardInfo // guarded field/var -> its mutex
	unguarded map[*types.Var]bool       // audited lock-free fields
	holds     map[*types.Func]string    // fn -> raw synccheck:holds marker text
	producers map[*types.Func]map[string]bool
	// nondet caches per-file synccheck:nondet comment lines.
	nondet map[*ast.File]map[int]bool
	// closes records every close(ch) site per channel variable.
	closes map[*types.Var][]token.Pos

	// goRoots are the function literals spawned by go statements and
	// goCallees the statically resolved functions they (transitively)
	// call; both feed the determinism bridge.
	goRoots   []goRoot
	goCallees []*types.Func
	funcs     map[*types.Func]*syncFunc
}

// syncFunc is one module-local function declaration.
type syncFunc struct {
	pkg  *Package
	file *ast.File
	decl *ast.FuncDecl
}

type goRoot struct {
	pkg  *Package
	file *ast.File
	lit  *ast.FuncLit
}

func runSyncCheck(prog *Program, report Reporter) {
	sc := &syncChecker{
		prog:      prog,
		report:    report,
		guards:    map[*types.Var]*guardInfo{},
		unguarded: map[*types.Var]bool{},
		holds:     map[*types.Func]string{},
		producers: map[*types.Func]map[string]bool{},
		nondet:    map[*ast.File]map[int]bool{},
		closes:    map[*types.Var][]token.Pos{},
		funcs:     map[*types.Func]*syncFunc{},
	}
	sc.collect()
	for _, sf := range sc.funcs {
		sc.checkFunc(sf)
	}
	sc.checkCloseCounts()
	sc.checkBridge()
}

// --- annotation collection ---

func (sc *syncChecker) collect() {
	for _, pkg := range sc.prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			sc.collectNondetLines(pkg, file)
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					sc.collectGenDecl(pkg, d)
				case *ast.FuncDecl:
					sc.collectFuncDecl(pkg, file, d)
				}
			}
		}
	}
}

// collectNondetLines records the line of every synccheck:nondet
// comment, flagging reason-less markers.
func (sc *syncChecker) collectNondetLines(pkg *Package, file *ast.File) {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, found := strings.CutPrefix(text, syncNondetMarker)
			if !found {
				continue
			}
			if strings.TrimSpace(rest) == "" {
				sc.report(c.Pos(), "synccheck:nondet marker is missing a reason")
				continue
			}
			lines[sc.prog.Fset.Position(c.Pos()).Line] = true
		}
	}
	if len(lines) > 0 {
		sc.nondet[file] = lines
	}
}

// nondetSuppressed reports whether a bridge diagnostic at pos is
// audited by a synccheck:nondet marker on the same line or the line
// directly above (or the enclosing function's doc, handled by caller).
func (sc *syncChecker) nondetSuppressed(file *ast.File, pos token.Pos) bool {
	lines := sc.nondet[file]
	if lines == nil {
		return false
	}
	line := sc.prog.Fset.Position(pos).Line
	return lines[line] || lines[line-1]
}

// collectGenDecl handles struct-type declarations (guarded-by
// totality) and package-level var annotations.
func (sc *syncChecker) collectGenDecl(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if st, ok := s.Type.(*ast.StructType); ok {
				sc.collectStruct(pkg, s.Name.Name, st)
			}
		case *ast.ValueSpec:
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			sc.collectPackageVar(pkg, s, doc)
		}
	}
}

// collectStruct enforces annotation totality over mutex-bearing
// structs and records the guarded-field map.
func (sc *syncChecker) collectStruct(pkg *Package, name string, st *ast.StructType) {
	mutexFields := map[string]bool{}
	for _, f := range st.Fields.List {
		if isSyncMutexType(fieldType(pkg, f)) {
			for _, id := range f.Names {
				mutexFields[id.Name] = true
			}
		}
	}
	for _, f := range st.Fields.List {
		target, hasGuard := fieldMarkerReason(f, syncGuardedByMarker)
		unguardReason, hasUnguard := fieldMarkerReason(f, syncUnguardedMarker)
		ft := fieldType(pkg, f)
		switch {
		case hasGuard && target == "":
			sc.report(f.Pos(), "synccheck:guardedby marker on %s.%s is missing its mutex field name", name, fieldLabel(f))
		case hasGuard && !mutexFields[target]:
			sc.report(f.Pos(), "synccheck:guardedby names %s, which is not a sync.Mutex/RWMutex field of %s", target, name)
		case hasGuard:
			for _, id := range f.Names {
				if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
					sc.guards[v] = &guardInfo{mutexName: target}
				}
			}
		}
		if hasUnguard {
			if unguardReason == "" {
				sc.report(f.Pos(), "synccheck:unguarded marker on %s.%s is missing a reason", name, fieldLabel(f))
			}
			for _, id := range f.Names {
				if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
					sc.unguarded[v] = true
				}
			}
		}
		if len(mutexFields) > 0 && !hasGuard && !hasUnguard &&
			!isSyncPackageType(ft) && len(f.Names) > 0 {
			sc.report(f.Pos(),
				"field %s of mutex-bearing struct %s needs a synccheck:guardedby <mutex> or synccheck:unguarded <reason> marker",
				fieldLabel(f), name)
		}
	}
}

// collectPackageVar records package-level `synccheck:guardedby`
// annotations; package-level coverage is opt-in (only annotated vars
// are checked).
func (sc *syncChecker) collectPackageVar(pkg *Package, s *ast.ValueSpec, doc *ast.CommentGroup) {
	target, found := markerReason(doc, syncGuardedByMarker)
	if !found {
		return
	}
	if target == "" {
		sc.report(s.Pos(), "synccheck:guardedby marker is missing its mutex name")
		return
	}
	var mu *types.Var
	if pkg.Types != nil {
		if obj, ok := pkg.Types.Scope().Lookup(target).(*types.Var); ok && isSyncMutexType(obj.Type()) {
			mu = obj
		}
	}
	if mu == nil {
		sc.report(s.Pos(), "synccheck:guardedby names %s, which is not a package-level sync.Mutex/RWMutex in %s", target, pkg.Name)
		return
	}
	for _, id := range s.Names {
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
			sc.guards[v] = &guardInfo{mutexName: target, mutexObj: mu}
		}
	}
}

// collectFuncDecl indexes the function and its holds/producer markers.
func (sc *syncChecker) collectFuncDecl(pkg *Package, file *ast.File, d *ast.FuncDecl) {
	obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
	if !ok {
		return
	}
	obj = obj.Origin()
	if d.Body != nil {
		sc.funcs[obj] = &syncFunc{pkg: pkg, file: file, decl: d}
	}
	if marker, found := markerReason(d.Doc, syncHoldsMarker); found {
		if marker == "" {
			sc.report(d.Pos(), "synccheck:holds marker on %s is missing its mutex", d.Name.Name)
		} else {
			sc.holds[obj] = marker
		}
	}
	if marker, found := markerReason(d.Doc, syncProducerMarker); found {
		if marker == "" {
			sc.report(d.Pos(), "synccheck:producer marker on %s is missing its channel name", d.Name.Name)
		} else {
			set := map[string]bool{}
			for _, name := range strings.Fields(marker) {
				set[name] = true
			}
			sc.producers[obj] = set
		}
	}
}

// --- per-function lock-flow analysis ---

// lockHeld is one held mutex in the flow state.
type lockHeld struct {
	display  string // source rendering, e.g. "e.mu", for diagnostics
	pos      token.Pos
	write    bool // Lock (vs RLock)
	deferred bool // a deferred unlock pins release to function exit
}

// lockState maps canonical mutex keys to held-lock info.
type lockState map[string]*lockHeld

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		c := *v
		out[k] = &c
	}
	return out
}

// merge intersects two branch outcomes: a lock is held afterwards
// only if both paths hold it.
func mergeLockStates(a, b lockState) lockState {
	out := lockState{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// syncScope is the walk state for one function body (a declaration or
// a function literal).
type syncScope struct {
	sc   *syncChecker
	pkg  *Package
	file *ast.File
	// decl is the enclosing declaration (for producer/holds markers
	// and loop-variable provenance); lit is non-nil inside a literal.
	decl *ast.FuncDecl
	lit  *ast.FuncLit
	// adds records WaitGroup.Add sites seen so far, by mutex-style key.
	adds map[string]token.Pos
}

func (sc *syncChecker) checkFunc(sf *syncFunc) {
	scope := &syncScope{sc: sc, pkg: sf.pkg, file: sf.file, decl: sf.decl, adds: map[string]token.Pos{}}
	st := lockState{}
	if marker, ok := sc.holds[funcObj(sf.pkg, sf.decl)]; ok {
		if key, display, ok := sc.resolveHoldsMarker(sf.pkg, sf.decl, marker); ok {
			// The caller holds it; release is the caller's job too.
			st[key] = &lockHeld{display: display, pos: sf.decl.Pos(), write: true, deferred: true}
		} else {
			sc.report(sf.decl.Pos(), "synccheck:holds marker %q on %s does not resolve to a receiver mutex field or package-level mutex", marker, sf.decl.Name.Name)
		}
	}
	end, terminated := scope.walkStmts(sf.decl.Body.List, st)
	if !terminated {
		scope.checkLeaks(end, sf.decl.Body.Rbrace)
	}
}

// funcObj resolves a declaration to its (origin) types.Func.
func funcObj(pkg *Package, d *ast.FuncDecl) *types.Func {
	if f, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
		return f.Origin()
	}
	return nil
}

// resolveHoldsMarker maps a holds marker to the canonical lock key as
// seen from inside the function: `recv.mu` via the receiver object,
// or a bare package-level mutex name.
func (sc *syncChecker) resolveHoldsMarker(pkg *Package, d *ast.FuncDecl, marker string) (key, display string, ok bool) {
	if recv, rest, found := strings.Cut(marker, "."); found {
		if d.Recv == nil || len(d.Recv.List) == 0 || len(d.Recv.List[0].Names) == 0 {
			return "", "", false
		}
		rid := d.Recv.List[0].Names[0]
		if rid.Name != recv {
			return "", "", false
		}
		v, okDef := pkg.Info.Defs[rid].(*types.Var)
		if !okDef {
			return "", "", false
		}
		return varKey(v) + "." + rest, marker, true
	}
	if pkg.Types != nil {
		if obj, okVar := pkg.Types.Scope().Lookup(marker).(*types.Var); okVar && isSyncMutexType(obj.Type()) {
			return varKey(obj), marker, true
		}
	}
	return "", "", false
}

// checkLeaks flags locks still held (without a deferred unlock) when
// control can leave the function.
func (s *syncScope) checkLeaks(st lockState, pos token.Pos) {
	for _, h := range st {
		if !h.deferred {
			s.sc.report(pos, "%s is still held here; release it on every path or defer the unlock", h.display)
		}
	}
}

// walkStmts walks a statement list in source order, threading lock
// state. It returns the final state and whether every path terminated
// (return/panic), so branch merges can discard dead ends.
func (s *syncScope) walkStmts(list []ast.Stmt, st lockState) (lockState, bool) {
	for _, stmt := range list {
		var terminated bool
		st, terminated = s.walkStmt(stmt, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (s *syncScope) walkStmt(stmt ast.Stmt, st lockState) (lockState, bool) {
	switch t := stmt.(type) {
	case *ast.ExprStmt:
		s.walkExpr(t.X, st, false)
		if isTerminalCall(s.pkg, t.X) {
			return st, true
		}
	case *ast.AssignStmt:
		s.walkAssign(t, st)
	case *ast.IncDecStmt:
		s.walkExpr(t.X, st, true)
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.walkExpr(v, st, false)
					}
				}
			}
		}
	case *ast.SendStmt:
		s.checkSend(t, st)
		s.walkExpr(t.Chan, st, false)
		s.walkExpr(t.Value, st, false)
	case *ast.DeferStmt:
		s.walkDefer(t, st)
	case *ast.GoStmt:
		s.walkGo(t, st)
	case *ast.ReturnStmt:
		for _, r := range t.Results {
			s.walkExpr(r, st, false)
		}
		s.checkLeaks(st, t.Pos())
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave this path; treat as terminal for
		// merge purposes (approximation).
		return st, true
	case *ast.BlockStmt:
		return s.walkStmts(t.List, st)
	case *ast.LabeledStmt:
		return s.walkStmt(t.Stmt, st)
	case *ast.IfStmt:
		return s.walkIf(t, st)
	case *ast.ForStmt:
		if t.Init != nil {
			st, _ = s.walkStmt(t.Init, st)
		}
		if t.Cond != nil {
			s.walkExpr(t.Cond, st, false)
		}
		return s.walkLoopBody(t.Body, t.Post, st), false
	case *ast.RangeStmt:
		s.walkExpr(t.X, st, false)
		if t.Key != nil {
			s.walkExpr(t.Key, st, t.Tok == token.ASSIGN)
		}
		if t.Value != nil {
			s.walkExpr(t.Value, st, t.Tok == token.ASSIGN)
		}
		return s.walkLoopBody(t.Body, nil, st), false
	case *ast.SwitchStmt:
		if t.Init != nil {
			st, _ = s.walkStmt(t.Init, st)
		}
		if t.Tag != nil {
			s.walkExpr(t.Tag, st, false)
		}
		return s.walkClauses(t.Body, st)
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			st, _ = s.walkStmt(t.Init, st)
		}
		st, _ = s.walkStmt(t.Assign, st)
		return s.walkClauses(t.Body, st)
	case *ast.SelectStmt:
		return s.walkClauses(t.Body, st)
	}
	return st, false
}

// walkIf threads state through both branches and merges by
// intersection; terminated branches drop out of the merge.
func (s *syncScope) walkIf(t *ast.IfStmt, st lockState) (lockState, bool) {
	if t.Init != nil {
		st, _ = s.walkStmt(t.Init, st)
	}
	s.walkExpr(t.Cond, st, false)
	thenSt, thenTerm := s.walkStmts(t.Body.List, st.clone())
	elseSt, elseTerm := st, false
	if t.Else != nil {
		elseSt, elseTerm = s.walkStmt(t.Else, st.clone())
	}
	switch {
	case thenTerm && elseTerm:
		return st, true
	case thenTerm:
		return elseSt, false
	case elseTerm:
		return thenSt, false
	default:
		return mergeLockStates(thenSt, elseSt), false
	}
}

// walkClauses handles switch/select bodies: every clause starts from
// the incoming state; the result intersects the non-terminated ones.
func (s *syncScope) walkClauses(body *ast.BlockStmt, st lockState) (lockState, bool) {
	var merged lockState
	sawLive := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				s.walkExpr(e, st, false)
			}
			stmts = c.Body
		case *ast.CommClause:
			cst := st.clone()
			if c.Comm != nil {
				cst, _ = s.walkStmt(c.Comm, cst)
			}
			out, term := s.walkStmts(c.Body, cst)
			if !term {
				if !sawLive {
					merged, sawLive = out, true
				} else {
					merged = mergeLockStates(merged, out)
				}
			}
			continue
		}
		out, term := s.walkStmts(stmts, st.clone())
		if !term {
			if !sawLive {
				merged, sawLive = out, true
			} else {
				merged = mergeLockStates(merged, out)
			}
		}
	}
	if !sawLive {
		// No live clause; fall back to the incoming state (a switch
		// need not execute any case).
		return st, false
	}
	return mergeLockStates(merged, st), false
}

// walkLoopBody walks a loop body once on a cloned state. A lock
// acquired inside the body and still held (non-deferred) at the end
// of the iteration never releases on iteration two — the dropped
// Unlock shape.
func (s *syncScope) walkLoopBody(body *ast.BlockStmt, post ast.Stmt, st lockState) lockState {
	bodySt, terminated := s.walkStmts(body.List, st.clone())
	if post != nil && !terminated {
		bodySt, _ = s.walkStmt(post, bodySt)
	}
	if !terminated {
		for key, h := range bodySt {
			if _, before := st[key]; !before && !h.deferred {
				s.sc.report(h.pos, "%s locked in this loop body is still held at the end of the iteration; it deadlocks on the next Lock", h.display)
			}
		}
	}
	// The body may run zero times: keep only locks held on both paths.
	if terminated {
		return st
	}
	return mergeLockStates(st, bodySt)
}

// walkAssign checks guarded writes, Once copies, and walks both sides.
func (s *syncScope) walkAssign(t *ast.AssignStmt, st lockState) {
	for _, r := range t.Rhs {
		s.walkExpr(r, st, false)
		if t.Tok != token.DEFINE {
			continue
		}
		// `x := other.once` copies a live Once even though x is new.
		if isSyncOnceValue(s.pkg, r) {
			s.sc.report(r.Pos(), "sync.Once value copied by assignment; share a pointer instead")
		}
	}
	for _, l := range t.Lhs {
		if t.Tok == token.DEFINE {
			if id, ok := l.(*ast.Ident); ok {
				if _, isDef := s.pkg.Info.Defs[id]; isDef {
					continue // fresh variable, not an access
				}
			}
		}
		if t.Tok != token.DEFINE && isSyncOnceExpr(s.pkg, l) {
			s.sc.report(l.Pos(), "sync.Once value reassigned; a reused Once silently re-arms Do")
			continue
		}
		s.walkExpr(l, st, true)
	}
}

// walkDefer handles deferred unlocks (pinning the lock to function
// exit) and deferred closures (fresh lock state).
func (s *syncScope) walkDefer(t *ast.DeferStmt, st lockState) {
	if key, h := s.mutexOp(t.Call, st); h != "" {
		switch h {
		case "Unlock", "RUnlock":
			if held, ok := st[key]; ok {
				held.deferred = true
			} else {
				s.sc.report(t.Pos(), "deferred %s of a mutex that is not held here", h)
			}
		case "Lock", "RLock":
			s.sc.report(t.Pos(), "deferred %s acquires at function exit; lock before the defer instead", h)
		}
		return
	}
	if lit, ok := t.Call.Fun.(*ast.FuncLit); ok {
		s.walkLit(lit, false)
		return
	}
	for _, a := range t.Call.Args {
		s.walkExpr(a, st, false)
	}
}

// walkGo handles a goroutine spawn: loop-variable capture, WaitGroup
// pairing, and scheduling the body for the determinism bridge.
func (s *syncScope) walkGo(t *ast.GoStmt, st lockState) {
	lit, isLit := t.Call.Fun.(*ast.FuncLit)
	for _, a := range t.Call.Args {
		s.walkExpr(a, st, false)
	}
	if !isLit {
		s.walkExpr(t.Call.Fun, st, false)
		if callee := staticCallee(s.pkg.Info, t.Call); callee != nil {
			s.sc.goCallees = append(s.sc.goCallees, callee)
		}
		return
	}
	s.checkLoopCapture(t, lit)
	s.checkWaitGroupPairing(t, lit)
	s.sc.goRoots = append(s.sc.goRoots, goRoot{pkg: s.pkg, file: s.file, lit: lit})
	s.walkLit(lit, true)
}

// walkLit analyzes a function literal body as its own scope with an
// empty lock set: whatever the creating function holds is not held
// when the literal eventually runs.
func (s *syncScope) walkLit(lit *ast.FuncLit, spawned bool) {
	inner := &syncScope{sc: s.sc, pkg: s.pkg, file: s.file, decl: s.decl, lit: lit, adds: map[string]token.Pos{}}
	end, terminated := inner.walkStmts(lit.Body.List, lockState{})
	if !terminated {
		inner.checkLeaks(end, lit.Body.Rbrace)
	}
	_ = spawned
}

// checkLoopCapture flags goroutines that capture the variable of an
// enclosing for/range statement.
func (s *syncScope) checkLoopCapture(t *ast.GoStmt, lit *ast.FuncLit) {
	loopVars := map[*types.Var]bool{}
	outer := s.decl
	if outer == nil {
		return
	}
	ast.Inspect(outer.Body, func(n ast.Node) bool {
		if n == nil || n.Pos() > t.Pos() {
			return false
		}
		switch loop := n.(type) {
		case *ast.RangeStmt:
			if loop.End() < t.Pos() {
				return true // the spawn is not inside this loop
			}
			for _, e := range []ast.Expr{loop.Key, loop.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if v, ok := s.pkg.Info.Defs[id].(*types.Var); ok {
						loopVars[v] = true
					}
				}
			}
		case *ast.ForStmt:
			if loop.End() < t.Pos() {
				return true
			}
			if init, ok := loop.Init.(*ast.AssignStmt); ok {
				for _, l := range init.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						if v, ok := s.pkg.Info.Defs[id].(*types.Var); ok {
							loopVars[v] = true
						}
					}
				}
			}
		}
		return true
	})
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := s.pkg.Info.Uses[id].(*types.Var); ok && loopVars[v] {
			s.sc.report(id.Pos(), "goroutine captures loop variable %s; pass it as an argument so each iteration gets its own copy", v.Name())
			delete(loopVars, v) // one diagnostic per variable
		}
		return true
	})
}

// checkWaitGroupPairing: a spawned body calling wg.Done needs an Add
// on the same WaitGroup before the spawn, the Done should be
// deferred, and an Add inside the body is the Add-after-Wait race.
func (s *syncScope) checkWaitGroupPairing(t *ast.GoStmt, lit *ast.FuncLit) {
	deferredDones := map[ast.Node]bool{}
	for _, stmt := range lit.Body.List {
		if d, ok := stmt.(*ast.DeferStmt); ok {
			deferredDones[d.Call] = true
		}
	}
	// Adds inside the body are their own diagnostic; remember them so
	// the matching Done is not double-flagged as uncovered too.
	insideAdds := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" && isSyncMethod(s.pkg, sel, "WaitGroup") {
				if key, _, ok := syncExprKey(s.pkg.Info, sel.X); ok {
					insideAdds[key] = true
				}
			}
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isSyncMethod(s.pkg, sel, "WaitGroup") {
			return true
		}
		key, display, _ := syncExprKey(s.pkg.Info, sel.X)
		switch sel.Sel.Name {
		case "Done":
			if _, added := s.adds[key]; !added && !insideAdds[key] {
				s.sc.report(call.Pos(), "goroutine calls %s.Done but no %s.Add precedes the spawn; Add must happen-before the go statement", display, display)
			}
			if !deferredDones[call] {
				s.sc.report(call.Pos(), "%s.Done in a goroutine should be deferred so a panicking body still releases the WaitGroup", display)
			}
		case "Add":
			s.sc.report(call.Pos(), "%s.Add inside the goroutine it covers races Wait; call Add before the go statement", display)
		}
		return true
	})
}

// checkSend enforces the producer registration on channel sends: the
// declaring function may send freely; a literal sending on a captured
// channel, or any function sending on a parameter/field/package
// channel, must be registered with synccheck:producer.
func (s *syncScope) checkSend(t *ast.SendStmt, st lockState) {
	v := chanVar(s.pkg, t.Chan)
	if v == nil {
		return
	}
	_, display, _ := syncExprKey(s.pkg.Info, t.Chan)
	if display == "" {
		display = v.Name()
	}
	if s.lit != nil && !insideNode(s.lit, v.Pos()) {
		s.sc.report(t.Arrow, "send on captured channel %s inside a function literal; only the declaring function or a registered synccheck:producer may send", display)
		return
	}
	localToFunc := s.decl != nil && insideNode(s.decl, v.Pos()) && !v.IsField()
	isParam := false
	if s.decl != nil && s.decl.Type.Params != nil && insideNode(s.decl.Type.Params, v.Pos()) {
		isParam, localToFunc = true, false
	}
	if localToFunc && !isParam {
		return
	}
	if s.decl != nil {
		if set := s.sc.producers[funcObj(s.pkg, s.decl)]; set[v.Name()] {
			return
		}
	}
	s.sc.report(t.Arrow, "send on channel %s outside its declaring function; register the sender with a synccheck:producer %s marker", display, v.Name())
}

// chanVar resolves the variable a send/close targets.
func chanVar(pkg *Package, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

func insideNode(n ast.Node, pos token.Pos) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// walkExpr walks one expression in evaluation order, checking guarded
// accesses (isWrite for assignment targets), mutex operations, holds
// obligations, Once copies into calls, and close() sites.
func (s *syncScope) walkExpr(e ast.Expr, st lockState, isWrite bool) {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		s.checkGuardedAccess(t, nil, st, isWrite)
	case *ast.SelectorExpr:
		s.checkGuardedAccess(t.Sel, t, st, isWrite)
		s.walkExpr(t.X, st, false)
	case *ast.CallExpr:
		s.walkCall(t, st)
	case *ast.UnaryExpr:
		// &x may let the guarded value escape its lock; treat as write.
		s.walkExpr(t.X, st, isWrite || t.Op == token.AND)
	case *ast.StarExpr:
		s.walkExpr(t.X, st, isWrite)
	case *ast.IndexExpr:
		s.walkExpr(t.X, st, isWrite)
		s.walkExpr(t.Index, st, false)
	case *ast.SliceExpr:
		s.walkExpr(t.X, st, isWrite)
		for _, idx := range []ast.Expr{t.Low, t.High, t.Max} {
			if idx != nil {
				s.walkExpr(idx, st, false)
			}
		}
	case *ast.BinaryExpr:
		s.walkExpr(t.X, st, false)
		s.walkExpr(t.Y, st, false)
	case *ast.KeyValueExpr:
		s.walkExpr(t.Value, st, false)
	case *ast.CompositeLit:
		for _, el := range t.Elts {
			s.walkExpr(el, st, false)
		}
	case *ast.TypeAssertExpr:
		s.walkExpr(t.X, st, false)
	case *ast.FuncLit:
		s.walkLit(t, false)
	}
}

// walkCall dispatches one call: mutex ops mutate the lock state,
// holds-marked callees impose their lock at the call site, close()
// sites are recorded, Once arguments by value are flagged.
func (s *syncScope) walkCall(call *ast.CallExpr, st lockState) {
	if key, op := s.mutexOp(call, st); op != "" {
		s.applyMutexOp(call, key, op, st)
		return
	}
	if isBuiltinCall(s.pkg.Info, call, "close") && len(call.Args) == 1 {
		if v := chanVar(s.pkg, call.Args[0]); v != nil {
			s.sc.closes[v] = append(s.sc.closes[v], call.Pos())
		}
		return
	}
	if isBuiltinCall(s.pkg.Info, call, "panic") {
		return // terminal; diagnostic construction is exempt
	}
	// Once.Do runs its argument; other literal arguments are callbacks
	// analyzed with their own empty lock state by walkExpr below.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if isSyncMethod(s.pkg, sel, "Once") && sel.Sel.Name == "Do" {
			s.walkExpr(sel.X, st, false)
			for _, a := range call.Args {
				if lit, ok := a.(*ast.FuncLit); ok {
					s.walkLit(lit, false)
				} else {
					s.walkExpr(a, st, false)
				}
			}
			return
		}
	}
	if callee := staticCallee(s.pkg.Info, call); callee != nil {
		if marker, ok := s.sc.holds[callee]; ok {
			s.checkHoldsCall(call, callee, marker, st)
		}
		if s.adds != nil {
			s.recordAdd(call)
		}
	} else {
		s.recordAdd(call)
	}
	s.walkExpr(call.Fun, st, false)
	for _, a := range call.Args {
		if isSyncOnceValue(s.pkg, a) {
			s.sc.report(a.Pos(), "sync.Once passed by value; the copy re-arms Do — pass a pointer")
		}
		s.walkExpr(a, st, false)
	}
}

// recordAdd notes WaitGroup.Add sites for the spawn-pairing check.
func (s *syncScope) recordAdd(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" || !isSyncMethod(s.pkg, sel, "WaitGroup") {
		return
	}
	if key, _, ok := syncExprKey(s.pkg.Info, sel.X); ok {
		if _, seen := s.adds[key]; !seen {
			s.adds[key] = call.Pos()
		}
	}
}

// mutexOp reports whether call is Lock/Unlock/RLock/RUnlock on a
// sync.Mutex/RWMutex, returning the canonical key of the mutex.
func (s *syncScope) mutexOp(call *ast.CallExpr, st lockState) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	if !isSyncMethod(s.pkg, sel, "Mutex") && !isSyncMethod(s.pkg, sel, "RWMutex") {
		return "", ""
	}
	k, _, ok := syncExprKey(s.pkg.Info, sel.X)
	if !ok {
		return "", ""
	}
	return k, sel.Sel.Name
}

func (s *syncScope) applyMutexOp(call *ast.CallExpr, key, op string, st lockState) {
	sel := call.Fun.(*ast.SelectorExpr)
	_, display, _ := syncExprKey(s.pkg.Info, sel.X)
	switch op {
	case "Lock", "RLock":
		if held, ok := st[key]; ok {
			s.sc.report(call.Pos(), "%s.%s while %s is already held (locked at %s); this self-deadlocks", display, op, display, s.sc.prog.Fset.Position(held.pos))
			return
		}
		st[key] = &lockHeld{display: display, pos: call.Pos(), write: op == "Lock"}
	case "Unlock", "RUnlock":
		if _, ok := st[key]; !ok {
			s.sc.report(call.Pos(), "%s.%s without a matching lock on this path", display, op)
			return
		}
		delete(st, key)
	}
}

// checkHoldsCall enforces a callee's synccheck:holds obligation at
// the call site.
func (s *syncScope) checkHoldsCall(call *ast.CallExpr, callee *types.Func, marker string, st lockState) {
	var required, display string
	if recvName, rest, found := strings.Cut(marker, "."); found {
		_ = recvName
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		base, disp, ok := syncExprKey(s.pkg.Info, sel.X)
		if !ok {
			return
		}
		required, display = base+"."+rest, disp+"."+rest
	} else {
		if callee.Pkg() == nil {
			return
		}
		obj, ok := callee.Pkg().Scope().Lookup(marker).(*types.Var)
		if !ok {
			return
		}
		required, display = varKey(obj), marker
	}
	if _, ok := st[required]; !ok {
		s.sc.report(call.Pos(), "call to %s requires holding %s (synccheck:holds)", callee.Name(), display)
	}
}

// checkGuardedAccess flags reads/writes of guarded fields and package
// vars performed without their mutex.
func (s *syncScope) checkGuardedAccess(id *ast.Ident, sel *ast.SelectorExpr, st lockState, isWrite bool) {
	var obj *types.Var
	if sel != nil {
		if selection, ok := s.pkg.Info.Selections[sel]; ok {
			obj, _ = selection.Obj().(*types.Var)
		} else if v, ok := s.pkg.Info.Uses[sel.Sel].(*types.Var); ok {
			obj = v
		}
	} else if v, ok := s.pkg.Info.Uses[id].(*types.Var); ok {
		obj = v
	}
	if obj == nil {
		return
	}
	guard, guarded := s.sc.guards[obj]
	if !guarded {
		return
	}
	var required, display string
	if guard.mutexObj != nil {
		required, display = varKey(guard.mutexObj), guard.mutexName
	} else {
		if sel == nil {
			return // field object referenced without a selector (shouldn't happen)
		}
		base, disp, ok := syncExprKey(s.pkg.Info, sel.X)
		if !ok {
			s.sc.report(id.Pos(), "access to %s (guarded by %s) through an untrackable expression; synccheck cannot prove %s is held", obj.Name(), guard.mutexName, guard.mutexName)
			return
		}
		required, display = base+"."+guard.mutexName, disp+"."+guard.mutexName
	}
	held, ok := st[required]
	verb := "read"
	if isWrite {
		verb = "write"
	}
	if !ok {
		s.sc.report(id.Pos(), "%s of %s (guarded by %s) without holding %s", verb, obj.Name(), guard.mutexName, display)
		return
	}
	if isWrite && !held.write {
		s.sc.report(id.Pos(), "write of %s (guarded by %s) under RLock; writes need the write lock", obj.Name(), guard.mutexName)
	}
}

// --- module-wide checks after the walks ---

// checkCloseCounts enforces exactly-one-close per channel variable.
func (sc *syncChecker) checkCloseCounts() {
	for v, sites := range sc.closes {
		if len(sites) <= 1 {
			continue
		}
		for _, pos := range sites[1:] {
			sc.report(pos, "channel %s is closed more than once (first close at %s); a second close panics at run time", v.Name(), sc.prog.Fset.Position(sites[0]))
		}
	}
}

// checkBridge walks everything reachable from a go statement —
// spawned literal bodies plus the static call graph out of them — and
// flags nondeterminism sinks and package-level writes.
func (sc *syncChecker) checkBridge() {
	seen := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), sc.goCallees...)
	for _, root := range sc.goRoots {
		queue = append(queue, sc.scanBridgeNode(root.pkg, root.file, root.lit.Body, nil)...)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		sf, ok := sc.funcs[fn]
		if !ok {
			continue // outside the module (stdlib) or no body
		}
		queue = append(queue, sc.scanBridgeNode(sf.pkg, sf.file, sf.decl.Body, sf.decl.Doc)...)
	}
}

// scanBridgeNode scans one goroutine-reachable body for sinks and
// global writes, returning the static callees that extend the graph.
func (sc *syncChecker) scanBridgeNode(pkg *Package, file *ast.File, body *ast.BlockStmt, doc *ast.CommentGroup) []*types.Func {
	if body == nil {
		return nil
	}
	exemptAll := markerLine(doc, syncNondetMarker)
	var callees []*types.Func
	flag := func(pos token.Pos, format string, args ...any) {
		if exemptAll || sc.nondetSuppressed(file, pos) {
			return
		}
		sc.report(pos, format, args...)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pkg.Info, t, "panic") {
				return false // terminal
			}
			if sel, ok := t.Fun.(*ast.SelectorExpr); ok {
				switch {
				case usesPackage(pkg, file, sel, "time") && bannedTimeFuncs[sel.Sel.Name]:
					flag(t.Pos(), "goroutine-reachable code calls time.%s; wall-clock reads break the byte-identical parallel-output contract (audit with synccheck:nondet if it cannot reach results)", sel.Sel.Name)
				case usesPackage(pkg, file, sel, "os") && bannedOSFuncs[sel.Sel.Name]:
					flag(t.Pos(), "goroutine-reachable code calls os.%s; environment reads are nondeterministic across runs", sel.Sel.Name)
				case usesPackage(pkg, file, sel, "math/rand") || usesPackage(pkg, file, sel, "math/rand/v2"):
					flag(t.Pos(), "goroutine-reachable code calls the process-global math/rand; use a seeded internal/rng stream owned by one goroutine")
				}
			}
			if callee := staticCallee(pkg.Info, t); callee != nil {
				callees = append(callees, callee)
			}
		case *ast.AssignStmt:
			for _, l := range t.Lhs {
				sc.flagGlobalWrite(pkg, flag, l)
			}
		case *ast.IncDecStmt:
			sc.flagGlobalWrite(pkg, flag, t.X)
		}
		return true
	})
	return callees
}

// flagGlobalWrite reports an assignment target that is (or roots in) a
// package-level variable, unless that variable is itself guarded (the
// guarded-by discipline already polices those).
func (sc *syncChecker) flagGlobalWrite(pkg *Package, flag func(token.Pos, string, ...any), target ast.Expr) {
	root := rootIdent(target)
	if root == nil {
		return
	}
	v, ok := pkg.Info.Uses[root].(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if v.Parent() == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return // not package-level
	}
	if _, guarded := sc.guards[v]; guarded {
		return
	}
	flag(target.Pos(), "goroutine-reachable code writes package-level var %s; shared globals make parallel runs order-dependent (guard it with synccheck:guardedby or pass state explicitly)", v.Name())
}

// --- type and marker helpers ---

// isSyncMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	return isNamedSyncType(t, "Mutex") || isNamedSyncType(t, "RWMutex")
}

// isSyncPackageType reports whether t is any named type from sync or
// sync/atomic — self-synchronizing, so exempt from guard totality.
func isSyncPackageType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

func isNamedSyncType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isSyncMethod reports whether sel selects a method of the named sync
// type (directly or through an embedded field).
func isSyncMethod(pkg *Package, sel *ast.SelectorExpr, typeName string) bool {
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	f, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	return isNamedSyncType(rt, typeName)
}

func isSyncOnceExpr(pkg *Package, e ast.Expr) bool {
	return isNamedSyncType(exprType(pkg.Info, e), "Once")
}

// isSyncOnceValue reports whether e evaluates to a sync.Once value
// that already exists (composite literals create fresh, un-armed
// Onces and are fine to assign into a new variable).
func isSyncOnceValue(pkg *Package, e ast.Expr) bool {
	if _, isLit := ast.Unparen(e).(*ast.CompositeLit); isLit {
		return false
	}
	return isSyncOnceExpr(pkg, e)
}

// fieldType resolves a struct field's type.
func fieldType(pkg *Package, f *ast.Field) types.Type {
	return exprType(pkg.Info, f.Type)
}

// fieldLabel names a field list entry for diagnostics.
func fieldLabel(f *ast.Field) string {
	if len(f.Names) == 0 {
		return "(embedded)"
	}
	names := make([]string, len(f.Names))
	for i, n := range f.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ",")
}

// fieldMarkerReason extracts a `marker <rest>` line from a field's
// doc or trailing line comment.
func fieldMarkerReason(f *ast.Field, marker string) (string, bool) {
	if r, ok := markerReason(f.Doc, marker); ok {
		return r, true
	}
	return markerReason(f.Comment, marker)
}

// syncExprKey canonicalizes a mutex/field base expression to an
// identity key (rooted at the variable object, so two locals with the
// same name never collide) plus a human-readable rendering.
func syncExprKey(info *types.Info, e ast.Expr) (key, display string, ok bool) {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		var obj types.Object
		if u, found := info.Uses[t]; found {
			obj = u
		} else if d, found := info.Defs[t]; found {
			obj = d
		}
		if v, isVar := obj.(*types.Var); isVar {
			return varKey(v), t.Name, true
		}
		return "", "", false
	case *ast.SelectorExpr:
		base, disp, okBase := syncExprKey(info, t.X)
		if !okBase {
			return "", "", false
		}
		return base + "." + t.Sel.Name, disp + "." + t.Sel.Name, true
	case *ast.StarExpr:
		return syncExprKey(info, t.X)
	case *ast.IndexExpr:
		base, disp, okBase := syncExprKey(info, t.X)
		if !okBase {
			return "", "", false
		}
		switch idx := ast.Unparen(t.Index).(type) {
		case *ast.BasicLit:
			return base + "[" + idx.Value + "]", disp + "[" + idx.Value + "]", true
		case *ast.Ident:
			ik, id, okIdx := syncExprKey(info, idx)
			if okIdx {
				return base + "[" + ik + "]", disp + "[" + id + "]", true
			}
		}
		return "", "", false
	}
	return "", "", false
}

// varKey is the identity key of one variable object.
func varKey(v *types.Var) string {
	return "v@" + strconv.FormatUint(uint64(v.Pos()), 10) + "/" + v.Name()
}

// isTerminalCall reports whether an expression statement is a panic
// call, ending the control-flow path.
func isTerminalCall(pkg *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	return ok && isBuiltinCall(pkg.Info, call, "panic")
}
