package simlint

import "testing"

// --- guarded-by discipline ---

func TestSyncCheckTotalityOverMutexStructs(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

type Pool struct {
	mu sync.Mutex
	// synccheck:guardedby mu
	count int
	// synccheck:unguarded immutable after construction
	name string
	// sync fields synchronize themselves and need no marker.
	once sync.Once
	bare int
}

// Entry has no mutex, so totality does not apply.
type Entry struct {
	val int
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"field bare of mutex-bearing struct Pool needs a synccheck:guardedby")
}

func TestSyncCheckMarkerValidation(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

type P struct {
	mu sync.Mutex
	// synccheck:guardedby
	a int
	// synccheck:guardedby nosuch
	b int
	// synccheck:unguarded
	c int
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"missing its mutex field name",
		"synccheck:guardedby names nosuch, which is not a sync.Mutex/RWMutex field of P",
		"synccheck:unguarded marker on P.c is missing a reason")
}

func TestSyncCheckGuardedAccessNeedsLock(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

type P struct {
	mu sync.Mutex
	// synccheck:guardedby mu
	count int
}

func (p *P) Bad() int {
	return p.count
}

func (p *P) Good() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.count++
	return p.count
}

func (p *P) BadWrite() {
	p.count = 1
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"read of count (guarded by mu) without holding p.mu",
		"write of count (guarded by mu) without holding p.mu")
}

func TestSyncCheckRWMutexWriteNeedsWriteLock(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

type P struct {
	mu sync.RWMutex
	// synccheck:guardedby mu
	count int
}

func (p *P) ReadOK() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.count
}

func (p *P) WriteUnderRLock() {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.count++
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"write of count (guarded by mu) under RLock")
}

func TestSyncCheckLockFlow(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

type P struct {
	mu sync.Mutex
	// synccheck:guardedby mu
	n int
}

func (p *P) Leak() {
	p.mu.Lock()
	p.n = 1
}

func (p *P) DoubleLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mu.Lock()
}

func (p *P) StrayUnlock() {
	p.mu.Unlock()
}

func (p *P) BranchRelease(b bool) {
	p.mu.Lock()
	if b {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"p.mu is still held here",
		"p.mu.Lock while p.mu is already held",
		"p.mu.Unlock without a matching lock")
}

func TestSyncCheckDroppedUnlockInLoop(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

type P struct {
	mu sync.Mutex
	// synccheck:guardedby mu
	n int
}

func (p *P) Sum(xs []int) {
	for _, x := range xs {
		p.mu.Lock()
		p.n += x
	}
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"locked in this loop body is still held at the end of the iteration")
}

func TestSyncCheckHoldsMarker(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

type P struct {
	mu sync.Mutex
	// synccheck:guardedby mu
	n int
}

// bump increments without re-locking.
//
// synccheck:holds p.mu
func (p *P) bump() {
	p.n++
}

func (p *P) OK() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bump()
}

func (p *P) Bad() {
	p.bump()
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"call to bump requires holding p.mu")
}

func TestSyncCheckPackageLevelGuard(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

var stateMu sync.Mutex

// synccheck:guardedby stateMu
var hits int

func Bad() int {
	return hits
}

func Good() int {
	stateMu.Lock()
	defer stateMu.Unlock()
	hits++
	return hits
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"read of hits (guarded by stateMu) without holding stateMu")
}

// --- goroutine capture ---

func TestSyncCheckGoroutineLockFreeAccess(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

type P struct {
	mu sync.Mutex
	// synccheck:guardedby mu
	n int
}

func (p *P) Spawn() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.n++ // spawn site holds the lock; the goroutine does not
	}()
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"write of n (guarded by mu) without holding p.mu")
}

func TestSyncCheckLoopVariableCapture(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

func Run(xs []int, f func(int)) {
	for _, x := range xs {
		go func() {
			f(x)
		}()
	}
	for _, x := range xs {
		go func(x int) {
			f(x)
		}(x)
	}
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"goroutine captures loop variable x")
}

// --- lifecycle pairing ---

func TestSyncCheckWaitGroupPairing(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

func AddBeforeSpawn(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
	wg.Wait()
}

func AddInsideGoroutine(f func()) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1)
		defer wg.Done()
		f()
	}()
	wg.Wait()
}

func DoneNotDeferred(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		f()
		wg.Done()
	}()
	wg.Wait()
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"wg.Add inside the goroutine it covers races Wait",
		"wg.Done in a goroutine should be deferred")
}

func TestSyncCheckChannelDiscipline(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

func DoubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch)
}

func SendFromLiteral() {
	ch := make(chan int, 1)
	func() {
		ch <- 1
	}()
}

func SendToParam(ch chan int) {
	ch <- 1
}

// feed is the registered producer for out.
//
// synccheck:producer out
func feed(out chan int) {
	out <- 1
}

func LocalSendOK() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"channel ch is closed more than once",
		"send on captured channel ch inside a function literal",
		"send on channel ch outside its declaring function")
}

func TestSyncCheckOnceCopies(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

type P struct {
	once sync.Once
}

func Reset(p *P) {
	p.once = sync.Once{}
}

func Copy(p *P) {
	local := p.once
	local.Do(func() {})
}

func FreshOK() {
	var once sync.Once
	once.Do(func() {})
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"sync.Once value reassigned",
		"sync.Once value copied by assignment")
}

// --- determinism bridge ---

func TestSyncCheckDeterminismBridge(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "time"

var total int

func helper() {
	total++
}

func Spawn(f func()) {
	go func() {
		_ = time.Now()
		helper()
		f()
	}()
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"goroutine-reachable code writes package-level var total",
		"goroutine-reachable code calls time.Now")
}

func TestSyncCheckNondetMarkerSuppressesBridge(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "time"

func Spawn(report func(time.Duration)) {
	go func() {
		start := time.Now() // synccheck:nondet progress timing only, never reaches results
		// synccheck:nondet progress timing only, never reaches results
		report(time.Since(start))
	}()
}

func Unreasoned(f func()) {
	go func() {
		// synccheck:nondet
		f()
	}()
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags,
		"synccheck:nondet marker is missing a reason")
}

// TestSyncCheckAcceptsLoaderShape pins the annotation shape the
// loader itself uses — a package-level mutex guarding package-level
// state, accessed only inside the critical section — so the self-lint
// of internal/simlint stays expressible.
func TestSyncCheckAcceptsLoaderShape(t *testing.T) {
	diags := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

var loadMu sync.Mutex

// synccheck:guardedby loadMu
var shared map[string]int

func Load(key string) int {
	loadMu.Lock()
	defer loadMu.Unlock()
	if shared == nil {
		shared = map[string]int{}
	}
	shared[key]++
	return shared[key]
}
`,
	}, NewSyncCheck())
	expectDiags(t, diags)
}
