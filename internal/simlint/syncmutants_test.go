package simlint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSyncMutantsCaught locks the seeded concurrency mutants in
// testdata/syncmutants to the diagnostics synccheck must produce for
// them: a WaitGroup.Add inside the goroutine it covers, an Unlock
// dropped from a loop body, and a guarded-field read outside the lock.
// The last one is the earn-your-keep mutant: its package test passes
// `go test -race -short` (the lock-free read only executes after
// wg.Wait, so no racy schedule ever runs), which scripts/mutants.sh
// verifies alongside the synccheck catch. If an analyzer refactor
// stops catching any of these shapes, this test fails before CI's
// mutant-catch step does.
func TestSyncMutantsCaught(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "syncmutants"))
	if err != nil {
		t.Fatalf("Load(testdata/syncmutants): %v", err)
	}
	for _, pkg := range prog.Packages {
		if len(pkg.TypeErrors) != 0 {
			t.Fatalf("mutant fixture must compile (the races are silent): %v", pkg.TypeErrors)
		}
	}

	diags := prog.Run([]*Analyzer{NewSyncCheck()})
	want := []struct {
		file    string
		message string
	}{
		{"addafter/farm.go", "wg.Add inside the goroutine it covers races Wait"},
		{"droppedunlock/pool.go", "locked in this loop body is still held at the end of the iteration"},
		{"lockfree/pool.go", "read of done (guarded by mu) without holding p.mu"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(want), formatDiags(diags))
	}
	for i, w := range want {
		if !strings.HasSuffix(filepath.ToSlash(diags[i].Pos.Filename), w.file) {
			t.Errorf("diagnostic %d in %s, want %s", i, diags[i].Pos.Filename, w.file)
		}
		if !strings.Contains(diags[i].Message, w.message) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w.message)
		}
		if diags[i].Rule != "synccheck" {
			t.Errorf("diagnostic %d rule = %q, want synccheck", i, diags[i].Rule)
		}
	}
}
