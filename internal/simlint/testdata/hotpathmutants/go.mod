module fix.example/hotpathmutants

go 1.22
