// Package sim seeds the hot-path allocation mutants CI proves the
// hotpath rule catches: a fresh make and an fmt.Sprintf-fed growing
// append inside a per-cycle tick function. Both compile cleanly and
// run correctly — the compiler accepts them silently, which is exactly
// why the lint exists.
package sim

import "fmt"

// Core is a toy per-cycle simulator core.
type Core struct {
	Cycles uint64
	regs   [8]uint64
	trace  []string
}

// Tick advances the core one cycle.
//
// hotpath:root
func (c *Core) Tick() {
	c.Cycles++
	// MUTANT: a fresh scratch buffer every cycle. The allocation is
	// invisible at the call site and costs more than the work below.
	scratch := make([]uint64, 8)
	for i := range c.regs {
		scratch[i] = c.regs[i] + c.Cycles
	}
	c.regs = [8]uint64(scratch)
	// MUTANT: per-cycle trace formatting — a growing append fed by
	// fmt.Sprintf, the classic debug leftover.
	c.trace = append(c.trace, fmt.Sprintf("cycle %d", c.Cycles))
}

// Trace returns the accumulated trace lines.
func (c *Core) Trace() []string { return c.trace }
