// Package addafter seeds the Add-after-spawn mutant: the WaitGroup
// Add moved inside the goroutine it covers, so Wait can observe a
// zero counter and return before any worker has registered — the
// classic lost-completion race. A schedule where every goroutine runs
// its Add before the parent reaches Wait behaves perfectly, which is
// why catching this dynamically needs scheduling luck and the static
// pairing rule does not.
package addafter

import "sync"

// Fanout runs fn once per input on its own goroutine and waits.
func Fanout(inputs []int, fn func(int)) {
	var wg sync.WaitGroup
	for _, in := range inputs {
		go func(v int) {
			wg.Add(1)
			defer wg.Done()
			fn(v)
		}(in)
	}
	wg.Wait()
}
