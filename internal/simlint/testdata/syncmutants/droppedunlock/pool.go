// Package droppedunlock seeds the dropped-Unlock mutant: the
// aggregation loop locks the accumulator on every iteration but the
// Unlock was lost in a refactor, so iteration two deadlocks against
// iteration one's still-held lock. There is deliberately no test in
// this package — executing Merge with two or more parts hangs forever,
// which is exactly why a static pass has to own this shape: a dynamic
// gate would have to *run* the deadlock to see it.
package droppedunlock

import "sync"

// Accumulator collects per-worker partial sums.
type Accumulator struct {
	mu sync.Mutex
	// synccheck:guardedby mu
	total int
}

// Merge folds every partial sum into the total.
func (a *Accumulator) Merge(parts []int) {
	for _, p := range parts {
		a.mu.Lock()
		a.total += p
	}
}

// Total reads the merged sum.
func (a *Accumulator) Total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}
