module fix.example/syncmutants

go 1.22
