// Package lockfree seeds the guarded-read-outside-the-lock mutant —
// the one `go test -race -short` provably does NOT catch (see the
// package test): Done reads p.done lock-free, a real data race for
// any caller polling progress while workers run, but the only test
// reads it after Run returns, so no racy schedule ever executes and
// the race detector observes nothing. synccheck flags the read from
// the annotation alone, no schedule required.
package lockfree

import "sync"

// Pool counts completed work items across a bounded worker set.
type Pool struct {
	mu sync.Mutex
	// synccheck:guardedby mu
	done int
}

// Run executes n work items on k workers, counting completions.
func (p *Pool) Run(n, k int, work func(int)) {
	var wg sync.WaitGroup
	wg.Add(k)
	queue := make(chan int, n)
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
	for w := 0; w < k; w++ {
		go func() {
			defer wg.Done()
			for i := range queue {
				work(i)
				p.mu.Lock()
				p.done++
				p.mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// Done reports how many items have completed. The lock was dropped in
// a refactor: a progress poller calling this mid-run races the
// workers' writes.
func (p *Pool) Done() int {
	return p.done
}
