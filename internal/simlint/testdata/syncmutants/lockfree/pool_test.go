package lockfree

import (
	"sync/atomic"
	"testing"
)

// TestPoolCountsAll drives the pool exactly the way a polite caller
// would: the workers run genuinely concurrently (so -race watches
// real parallelism), but Done is only read after Run returns. Run's
// wg.Wait happens-before that read, so the race detector never sees
// the lock-free access overlap a write and `go test -race -short`
// passes — yet any caller polling Done *during* a run races the
// workers' increments. scripts/mutants.sh pins both halves of the
// demonstration: this test green under -race, synccheck red.
func TestPoolCountsAll(t *testing.T) {
	var p Pool
	var sum atomic.Int64
	p.Run(64, 4, func(i int) { sum.Add(int64(i)) })
	if got := p.Done(); got != 64 {
		t.Fatalf("Done() = %d, want 64", got)
	}
	if got := sum.Load(); got != 64*63/2 {
		t.Fatalf("sum = %d, want %d", got, 64*63/2)
	}
}
