module unitmutants.example/m

go 1.22
