// Package sim carries two seeded unit-confusion mutants — the two
// bug shapes the dimensional types alone cannot reject because both
// compile clean. unitcheck must flag both; the locking test in
// internal/simlint pins the exact rules and lines.
package sim

import "unitmutants.example/m/units"

// tagPS is a physical delay the timing model produced.
var tagPS = units.Picoseconds(800)

// MUTANT 1 (ps-as-cycles swap): the picosecond value is laundered into
// a cycle count with a raw conversion instead of units.ToCycles,
// silently treating 800 ps as 800 cycles — a 160x latency error that
// still compiles.
func TagLatency() units.Cycles {
	return units.Cycles(tagPS)
}

// MUTANT 2 (timestamp+timestamp): the port-free time and the request
// time are both absolute timestamps; adding them compiles (same type)
// but the sum is a meaningless point far in the future. The fix is
// release.Sub(now) or now.Add(span).
func NextFree(now, release units.Cycle) units.Cycle {
	return now + release
}
