// Package units mirrors the repository's memsys/cacti unit split in
// miniature so the seeded mutants in ../sim exercise unitcheck exactly
// the way a real regression would.
package units

// Cycle is an absolute simulated timestamp.
//
// unitcheck:unit timestamp
type Cycle uint64

// Cycles is a duration in clock cycles.
//
// unitcheck:unit duration
type Cycles int64

// Picoseconds is a duration in the analytical timing model's scale.
//
// unitcheck:unit duration
type Picoseconds float64

// CyclePS is the clock period at 5 GHz.
const CyclePS Picoseconds = 200

// Add returns the timestamp d cycles after t.
func (t Cycle) Add(d Cycles) Cycle { return t + Cycle(d) }

// Sub returns the duration elapsed from u to t.
func (t Cycle) Sub(u Cycle) Cycles { return Cycles(t) - Cycles(u) }

// ToCycles converts a physical delay to whole cycles, rounding up with
// a one-cycle floor — the only legal ps→cycle crossing.
func ToCycles(ps Picoseconds) Cycles {
	c := Cycles((ps + CyclePS - 1) / CyclePS)
	if c < 1 {
		c = 1
	}
	return c
}
