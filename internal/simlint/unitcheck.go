package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// unitKind classifies a dimensional unit type. The distinction that
// matters to the rules is absolute (timestamp) versus relative
// (duration, size, length): relative quantities add and subtract
// within their dimension, absolute ones do not.
type unitKind string

const (
	kindTimestamp unitKind = "timestamp"
	kindDuration  unitKind = "duration"
	kindSize      unitKind = "size"
	kindLength    unitKind = "length"
)

// unitRegistry is the set of unit types discovered from
// `unitcheck:unit <kind>` markers in type doc comments, plus the
// packages that declare them. A declaring package is the one place raw
// conversions and cross-unit arithmetic are legitimate — that is where
// the named constructors live — so it is exempt from every rule.
type unitRegistry struct {
	kinds map[*types.TypeName]unitKind
	pkgs  map[string]bool // package paths declaring at least one unit
}

// unitWords are the identifier words that claim a unit. A raw
// int/uint64/float64 field, parameter or named result whose name
// word-splits to one of these outside a unit package is a quantity
// that escaped the type system.
var unitWords = map[string]bool{
	"cycle": true, "cycles": true, "latency": true, "ps": true,
	"mm": true, "bytes": true, "now": true, "when": true,
}

// NewUnitCheck builds the dimensional-safety rule group. The Go type
// system already rejects most unit mix-ups once quantities are named
// types; unitcheck closes the four holes it leaves open:
//
//  1. arithmetic mixing two distinct unit types, or a unit type with a
//     non-constant raw numeric (constants are dimensionless scalars);
//  2. same-type arithmetic that is dimensionally meaningless —
//     timestamp±timestamp (use Add/Sub with a duration) and
//     duration×duration;
//  3. raw conversions T(x) into a unit type outside the package that
//     declares T — values must enter a unit through its named
//     constructors (cacti.ToCycles, memsys.CyclesOf, ...), which
//     fix the rounding direction in one place;
//  4. raw-typed declarations whose names claim a unit (latency,
//     cycles, ps, mm, bytes, now, when, ...).
func NewUnitCheck() *Analyzer {
	return &Analyzer{
		Name: "unitcheck",
		Doc: "simulator quantities flow through unit types: no cross-unit " +
			"arithmetic, no timestamp+timestamp or duration*duration, raw " +
			"conversions and unit-named raw declarations only in unit packages",
		Run: func(prog *Program, report Reporter) {
			reg := collectUnits(prog)
			if len(reg.kinds) == 0 {
				return
			}
			for _, pkg := range prog.Packages {
				if pkg.Info == nil || reg.pkgs[pkg.Path] {
					continue
				}
				for _, file := range pkg.Files {
					checkUnitFile(pkg, file, reg, report)
				}
			}
		},
	}
}

// collectUnits scans every type declaration for a unitcheck:unit
// marker and resolves the marked names to their type objects.
func collectUnits(prog *Program) *unitRegistry {
	reg := &unitRegistry{kinds: map[*types.TypeName]unitKind{}, pkgs: map[string]bool{}}
	for _, pkg := range prog.Packages {
		if pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					kind, ok := unitMarker(doc)
					if !ok {
						continue
					}
					tn, ok := pkg.Types.Scope().Lookup(ts.Name.Name).(*types.TypeName)
					if !ok {
						continue
					}
					reg.kinds[tn] = kind
					reg.pkgs[pkg.Path] = true
				}
			}
		}
	}
	return reg
}

// unitMarker extracts the kind from a `unitcheck:unit <kind>` line in
// a doc comment.
func unitMarker(doc *ast.CommentGroup) (unitKind, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, found := strings.CutPrefix(text, "unitcheck:unit"); found {
			if k := strings.TrimSpace(rest); k != "" {
				return unitKind(k), true
			}
		}
	}
	return "", false
}

// unitOf returns the unit classification of a type, if it has one.
func (r *unitRegistry) unitOf(t types.Type) (*types.TypeName, unitKind, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, "", false
	}
	k, ok := r.kinds[named.Obj()]
	return named.Obj(), k, ok
}

// unitName renders a unit type as pkg.Name for diagnostics.
func unitName(tn *types.TypeName) string {
	if tn.Pkg() != nil {
		return tn.Pkg().Name() + "." + tn.Name()
	}
	return tn.Name()
}

// arithOf maps compound-assignment tokens onto their underlying binary
// operators; plain binary operators map to themselves.
var arithOf = map[token.Token]token.Token{
	token.ADD: token.ADD, token.SUB: token.SUB, token.MUL: token.MUL,
	token.QUO: token.QUO, token.REM: token.REM,
	token.ADD_ASSIGN: token.ADD, token.SUB_ASSIGN: token.SUB,
	token.MUL_ASSIGN: token.MUL, token.QUO_ASSIGN: token.QUO,
	token.REM_ASSIGN: token.REM,
}

func checkUnitFile(pkg *Package, file *ast.File, reg *unitRegistry, report Reporter) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if op, ok := arithOf[e.Op]; ok {
				checkUnitArith(pkg, reg, op, e.X, e.Y, e.OpPos, report)
			}
		case *ast.AssignStmt:
			if op, ok := arithOf[e.Tok]; ok && len(e.Lhs) == 1 && len(e.Rhs) == 1 {
				checkUnitArith(pkg, reg, op, e.Lhs[0], e.Rhs[0], e.TokPos, report)
			}
		case *ast.CallExpr:
			checkUnitConversion(pkg, reg, e, report)
		case *ast.StructType:
			for _, field := range e.Fields.List {
				checkUnitNames(pkg, reg, "field", field, report)
			}
		case *ast.FuncType:
			if e.Params != nil {
				for _, field := range e.Params.List {
					checkUnitNames(pkg, reg, "parameter", field, report)
				}
			}
			if e.Results != nil {
				for _, field := range e.Results.List {
					checkUnitNames(pkg, reg, "result", field, report)
				}
			}
		}
		return true
	})
}

// checkUnitArith enforces rules 1 and 2 on one arithmetic operation.
// Constant operands are dimensionless scalars and exempt the whole
// expression: `lat * 2` scales a duration, `now + 32` advances a
// timestamp by a literal span — both fine.
func checkUnitArith(pkg *Package, reg *unitRegistry, op token.Token, x, y ast.Expr, pos token.Pos, report Reporter) {
	xt, xConst := operandType(pkg, x)
	yt, yConst := operandType(pkg, y)
	if xConst || yConst || xt == nil || yt == nil {
		return
	}
	xu, xk, xok := reg.unitOf(xt)
	yu, _, yok := reg.unitOf(yt)
	switch {
	case xok && yok && xu != yu:
		report(pos, "arithmetic mixes %s and %s; convert through a named constructor in the unit's package",
			unitName(xu), unitName(yu))
	case xok && yok: // same unit type on both sides
		if xk == kindTimestamp {
			report(pos, "direct %s arithmetic on two %s timestamps; use Add with a duration or Sub to get one",
				op, unitName(xu))
		} else if op == token.MUL || op == token.REM {
			report(pos, "%s %s %s has no dimensional meaning; scale with a dimensionless count instead",
				unitName(xu), op, unitName(yu))
		}
	case xok != yok:
		raw, u := yt, xu
		if yok {
			raw, u = xt, yu
		}
		if basic, ok := raw.Underlying().(*types.Basic); ok && basic.Info()&types.IsNumeric != 0 {
			report(pos, "arithmetic mixes %s with a raw %s value; type the value or use the unit's named methods",
				unitName(u), raw)
		}
	}
}

// operandType resolves an operand's type and whether it is a
// compile-time constant.
func operandType(pkg *Package, e ast.Expr) (types.Type, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil, false
	}
	return tv.Type, tv.Value != nil
}

// checkUnitConversion enforces rule 3: T(x) where T is a unit type is
// only legal in T's declaring package, on a constant (typing a
// literal), or when x already has type T.
func checkUnitConversion(pkg *Package, reg *unitRegistry, call *ast.CallExpr, report Reporter) {
	if len(call.Args) != 1 || call.Ellipsis.IsValid() {
		return
	}
	tvFun, ok := pkg.Info.Types[call.Fun]
	if !ok || !tvFun.IsType() {
		return
	}
	u, _, isUnit := reg.unitOf(tvFun.Type)
	if !isUnit {
		return
	}
	argType, argConst := operandType(pkg, call.Args[0])
	if argConst {
		return
	}
	if argType != nil && types.Identical(argType, tvFun.Type) {
		return
	}
	report(call.Pos(), "raw conversion of %s into %s outside its declaring package; use a named constructor so the unit boundary stays auditable",
		typeLabel(argType), unitName(u))
}

func typeLabel(t types.Type) string {
	if t == nil {
		return "a value"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// checkUnitNames enforces rule 4 on one field list entry: a raw
// numeric declaration must not carry a name that claims a unit.
func checkUnitNames(pkg *Package, reg *unitRegistry, role string, field *ast.Field, report Reporter) {
	tv, ok := pkg.Info.Types[field.Type]
	if !ok || tv.Type == nil {
		return
	}
	if _, _, isUnit := reg.unitOf(tv.Type); isUnit {
		return
	}
	basic, ok := tv.Type.(*types.Basic)
	if !ok || basic.Info()&types.IsNumeric == 0 {
		return
	}
	for _, name := range field.Names {
		if name.Name == "_" {
			continue
		}
		if w, claims := claimsUnit(name.Name); claims {
			report(name.Pos(), "%s %q is raw %s but its name (%q) claims a unit; give it a unit type",
				role, name.Name, basic, w)
		}
	}
}

// claimsUnit reports whether an identifier word-splits (camelCase and
// snake_case) to a whole word naming a unit, returning the word.
func claimsUnit(name string) (string, bool) {
	for _, w := range nameWords(name) {
		if unitWords[w] {
			return w, true
		}
	}
	return "", false
}

// nameWords splits an identifier into lowercase words at underscores
// and camelCase boundaries, treating acronym runs (PS, MM) as one word.
func nameWords(s string) []string {
	var words []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = nil
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case r == '_':
			flush()
		case unicode.IsUpper(r):
			if i > 0 && !unicode.IsUpper(runes[i-1]) {
				flush() // lower→Upper boundary: hitLatency
			} else if i > 0 && i+1 < len(runes) && unicode.IsUpper(runes[i-1]) && unicode.IsLower(runes[i+1]) {
				flush() // acronym→Word boundary: PSValue
			}
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return words
}
