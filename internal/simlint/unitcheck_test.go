package simlint

import (
	"reflect"
	"testing"
)

// unitsFixture is a minimal unit-declaring package mirroring the real
// memsys/cacti split: a timestamp, two durations in different scales,
// and the named constructors that cross between them.
const unitsFixture = `package units

// Stamp is an absolute point on the simulated clock.
//
// unitcheck:unit timestamp
type Stamp uint64

// Span is a duration in cycles.
//
// unitcheck:unit duration
type Span int64

// Picos is a duration in picoseconds.
//
// unitcheck:unit duration
type Picos float64

func (t Stamp) Add(d Span) Stamp { return t + Stamp(d) }

func (t Stamp) Sub(u Stamp) Span { return Span(t) - Span(u) }

func SpanOf(n int) Span { return Span(n) }

func ToSpan(p Picos) Span { return Span(p / 200) }
`

func lintUnits(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return lintFixture(t, map[string]string{
		"units/units.go":      unitsFixture,
		"internal/sim/sim.go": src,
	}, NewUnitCheck())
}

func TestUnitCheckTimestampArithmetic(t *testing.T) {
	diags := lintUnits(t, `package sim

import "fix.example/m/units"

func bad(a, b units.Stamp) units.Stamp { return a + b }

func worse(t units.Stamp) units.Stamp {
	t += t
	return t
}

func good(t units.Stamp, d units.Span) units.Stamp { return t.Add(d) }

func alsoGood(t units.Stamp) units.Stamp { return t + 100 } // literal span
`)
	expectDiags(t, diags,
		"direct + arithmetic on two units.Stamp timestamps",
		"direct + arithmetic on two units.Stamp timestamps")
}

func TestUnitCheckDurationTimesDuration(t *testing.T) {
	diags := lintUnits(t, `package sim

import "fix.example/m/units"

func area(a, b units.Span) units.Span { return a * b }

func sum(a, b units.Span) units.Span { return a + b }   // fine: spans add
func diff(a, b units.Span) units.Span { return a - b }  // fine
func ratio(a, b units.Span) units.Span { return a / b } // fine: dimensionless ratio idiom
func scaled(a units.Span) units.Span { return a * 4 }   // fine: constant scalar
`)
	expectDiags(t, diags, "units.Span * units.Span has no dimensional meaning")
}

func TestUnitCheckCrossUnitArithmetic(t *testing.T) {
	// Mixed-unit arithmetic does not type-check, but the analyzer must
	// still name the dimensional clash (the load tolerates type errors,
	// so mid-refactor trees get unit diagnoses, not just compiler
	// noise).
	diags := lintUnits(t, `package sim

import "fix.example/m/units"

func mix(a units.Span, b units.Picos) {
	_ = a + b
}
`)
	expectDiags(t, diags, "arithmetic mixes units.Span and units.Picos")
}

func TestUnitCheckRawMix(t *testing.T) {
	diags := lintUnits(t, `package sim

import "fix.example/m/units"

func pad(a units.Span, n int64) {
	_ = a + n
}
`)
	expectDiags(t, diags, "arithmetic mixes units.Span with a raw int64 value")
}

func TestUnitCheckConversionRules(t *testing.T) {
	diags := lintUnits(t, `package sim

import "fix.example/m/units"

func launder(p units.Picos) units.Span { return units.Span(p) }

func retype(n uint64) units.Stamp { return units.Stamp(n) }

func typed() units.Span { return units.Span(32) } // fine: constant literal

func same(s units.Span) units.Span { return units.Span(s) } // fine: identity

func out(s units.Span) int64 { return int64(s) } // fine: leaving the unit is free

func named(p units.Picos) units.Span { return units.ToSpan(p) } // fine: constructor
`)
	expectDiags(t, diags,
		"raw conversion of units.Picos into units.Span",
		"raw conversion of uint64 into units.Stamp")
}

func TestUnitCheckUnitPackageExempt(t *testing.T) {
	// The constructors in the units fixture are full of raw conversions
	// and timestamp arithmetic; none of it may be flagged.
	diags := lintUnits(t, `package sim
`)
	expectDiags(t, diags)
}

func TestUnitCheckNameClaimsUnit(t *testing.T) {
	diags := lintUnits(t, `package sim

import "fix.example/m/units"

type Cfg struct {
	HitLatency  int        // flagged: raw with a unit name
	TagCycles   uint64     // flagged
	WirePS      float64    // flagged (acronym split)
	wire_mm     float64    // flagged (snake split)
	MissLatency units.Span // fine: carries the unit type
	Ways        int        // fine: dimensionless
	Comm        float64    // fine: "comm" is not "mm"
	Mbps        float64    // fine: "mbps" is not "ps"
}

func step(now uint64, busCycles int) (latency int) { return busCycles }
`)
	expectDiags(t, diags,
		`field "HitLatency" is raw int but its name ("latency") claims a unit`,
		`field "TagCycles" is raw uint64 but its name ("cycles") claims a unit`,
		`field "WirePS" is raw float64 but its name ("ps") claims a unit`,
		`field "wire_mm" is raw float64 but its name ("mm") claims a unit`,
		`parameter "now" is raw uint64 but its name ("now") claims a unit`,
		`parameter "busCycles" is raw int but its name ("cycles") claims a unit`,
		`result "latency" is raw int but its name ("latency") claims a unit`,
	)
}

func TestUnitCheckNoUnitsNoDiagnostics(t *testing.T) {
	// A module with no marked unit types (every other analyzer fixture)
	// must pass untouched, whatever its names look like.
	diags := lintFixture(t, map[string]string{
		"internal/sim/sim.go": `package sim

func run(now uint64, latency int) uint64 { return now + uint64(latency) }
`,
	}, NewUnitCheck())
	expectDiags(t, diags)
}

func TestNameWords(t *testing.T) {
	cases := map[string][]string{
		"hitLatency": {"hit", "latency"},
		"WirePS":     {"wire", "ps"},
		"PSValue":    {"ps", "value"},
		"wire_mm":    {"wire", "mm"},
		"now":        {"now"},
		"Comm":       {"comm"},
		"TagMM":      {"tag", "mm"},
		"busCycles":  {"bus", "cycles"},
	}
	for in, want := range cases {
		if got := nameWords(in); !reflect.DeepEqual(got, want) {
			t.Errorf("nameWords(%q) = %v, want %v", in, got, want)
		}
	}
}
