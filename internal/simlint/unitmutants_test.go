package simlint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestUnitMutantsCaught locks the seeded unit-confusion mutants in
// testdata/unitmutants to the diagnostics unitcheck must produce for
// them. If a refactor of the analyzer stops catching either bug shape
// — the ps-as-cycles conversion swap or the timestamp+timestamp add —
// this test fails before CI's mutant-catch step does.
func TestUnitMutantsCaught(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "unitmutants"))
	if err != nil {
		t.Fatalf("Load(testdata/unitmutants): %v", err)
	}
	for _, pkg := range prog.Packages {
		if len(pkg.TypeErrors) != 0 {
			t.Fatalf("mutant fixture must compile (the bugs are type-correct): %v", pkg.TypeErrors)
		}
	}

	diags := prog.Run([]*Analyzer{NewUnitCheck()})
	want := []struct {
		file    string
		message string
	}{
		{"sim/sim.go", "raw conversion of units.Picoseconds into units.Cycles"},
		{"sim/sim.go", "direct + arithmetic on two units.Cycle timestamps"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(want), formatDiags(diags))
	}
	for i, w := range want {
		if !strings.HasSuffix(filepath.ToSlash(diags[i].Pos.Filename), w.file) {
			t.Errorf("diagnostic %d in %s, want %s", i, diags[i].Pos.Filename, w.file)
		}
		if !strings.Contains(diags[i].Message, w.message) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w.message)
		}
		if diags[i].Rule != "unitcheck" {
			t.Errorf("diagnostic %d rule = %q, want unitcheck", i, diags[i].Rule)
		}
	}
}
