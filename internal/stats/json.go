package stats

import (
	"encoding/json"
	"fmt"
)

// JSON round-tripping for the measurement types. The experiment farm
// (internal/farm, docs/ROBUSTNESS.md) ships completed simulation
// results across a process boundary and through the durable result
// store, so every type a cell can produce must serialize losslessly:
// counts are integers (exact in JSON), and label order — which is
// presentation order in the figures — is preserved explicitly. A
// decoded value must render byte-identically to the original; the
// round-trip tests pin that.

// distJSON is the wire shape of a Dist: labels in presentation order
// with their parallel counts.
type distJSON struct {
	Labels []string `json:"labels"`
	Counts []uint64 `json:"counts"`
}

// MarshalJSON encodes the distribution with its label order intact.
func (d *Dist) MarshalJSON() ([]byte, error) {
	return json.Marshal(distJSON{Labels: d.labels, Counts: d.counts})
}

// UnmarshalJSON rebuilds the distribution, including its label index.
func (d *Dist) UnmarshalJSON(data []byte) error {
	var w distJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Labels) != len(w.Counts) {
		return fmt.Errorf("stats: dist with %d labels but %d counts", len(w.Labels), len(w.Counts))
	}
	nd := NewDist(w.Labels...)
	copy(nd.counts, w.Counts)
	*d = *nd
	return nil
}

// MarshalJSON encodes the reuse histogram as its bucket counts in
// bucket order.
func (h ReuseHist) MarshalJSON() ([]byte, error) {
	return json.Marshal(h.counts[:])
}

// UnmarshalJSON decodes the bucket counts.
func (h *ReuseHist) UnmarshalJSON(data []byte) error {
	var counts []uint64
	if err := json.Unmarshal(data, &counts); err != nil {
		return err
	}
	if len(counts) != len(h.counts) {
		return fmt.Errorf("stats: reuse histogram with %d buckets, want %d", len(counts), len(h.counts))
	}
	copy(h.counts[:], counts)
	return nil
}

// tableJSON is the wire shape of a rendered-table value (the capacity
// report memoizes a whole Table as its cell value).
type tableJSON struct {
	Title string     `json:"title"`
	Rows  [][]string `json:"rows"`
}

// MarshalJSON encodes the table's title and rows.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{Title: t.Title, Rows: t.rows})
}

// UnmarshalJSON decodes a table encoded by MarshalJSON.
func (t *Table) UnmarshalJSON(data []byte) error {
	var w tableJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	t.Title, t.rows = w.Title, w.Rows
	return nil
}
