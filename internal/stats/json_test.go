package stats

import (
	"encoding/json"
	"testing"
)

// TestDistJSONRoundTrip: a decoded Dist must be indistinguishable from
// the original — same label order, counts, fractions, and rendering —
// because the farm's byte-identical-output contract rides on it.
func TestDistJSONRoundTrip(t *testing.T) {
	d := NewDist("hit", "ros", "rws", "capacity")
	d.Add("hit", 12345)
	d.Add("rws", 7)
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var got Dist
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != d.String() {
		t.Errorf("round trip changed rendering:\n%s\nvs\n%s", got.String(), d.String())
	}
	if got.Count("hit") != 12345 || got.Count("ros") != 0 {
		t.Errorf("counts lost: %v", got.counts)
	}
	// The rebuilt index must be live: Add on a decoded dist works.
	got.Inc("ros")
	if got.Count("ros") != 1 {
		t.Error("decoded dist has a dead label index")
	}
}

// TestDistJSONRejectsMismatchedCounts: a corrupt wire value (label and
// count arrays of different lengths) must error, not half-decode.
func TestDistJSONRejectsMismatchedCounts(t *testing.T) {
	var d Dist
	if err := json.Unmarshal([]byte(`{"labels":["a","b"],"counts":[1]}`), &d); err == nil {
		t.Error("mismatched labels/counts decoded without error")
	}
}

// TestReuseHistJSONRoundTrip pins exact bucket counts through JSON.
func TestReuseHistJSONRoundTrip(t *testing.T) {
	var h ReuseHist
	h.Record(0)
	h.Record(1)
	h.Record(1)
	h.Record(100)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got ReuseHist
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip changed histogram: %v vs %v", got, h)
	}
	if err := json.Unmarshal([]byte(`[1,2]`), &got); err == nil {
		t.Error("short bucket array decoded without error")
	}
}

// TestTableJSONRoundTrip: a decoded table renders byte-identically.
func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("Capacity allocation", "Core", "Tags", "Blocks")
	tb.Row("P0 (mcf)", "123", "456")
	tb.Rowf("d-groups", "a=%d b=%d", 1, 2)
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != tb.String() {
		t.Errorf("round trip changed rendering:\n%s\nvs\n%s", got.String(), tb.String())
	}
	if got.CSV() != tb.CSV() {
		t.Error("round trip changed CSV rendering")
	}
}
