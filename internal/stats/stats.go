// Package stats provides the measurement plumbing for the simulator:
// named categorical distributions (for the paper's access-breakdown
// figures), bucketed reuse histograms (Figure 7), and plain-text table
// rendering used by the experiment harness to print paper-style rows.
package stats

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strings"
)

// Dist is an ordered categorical distribution: a fixed set of labels,
// each with a count. Order is presentation order (the order labels were
// registered), matching the stacked-bar ordering in the paper's figures.
type Dist struct {
	labels []string
	index  map[string]int
	counts []uint64
}

// NewDist creates a distribution over the given labels, all zero.
func NewDist(labels ...string) *Dist {
	d := &Dist{
		labels: append([]string(nil), labels...),
		index:  make(map[string]int, len(labels)),
		counts: make([]uint64, len(labels)),
	}
	for i, l := range labels {
		if _, dup := d.index[l]; dup {
			panic("stats: duplicate label " + l)
		}
		d.index[l] = i
	}
	return d
}

// Add increments label by n. It panics on an unknown label: a typo in a
// measurement site is a bug we want to fail loudly on.
func (d *Dist) Add(label string, n uint64) {
	i, ok := d.index[label]
	if !ok {
		panic("stats: unknown label " + label)
	}
	d.counts[i] += n
}

// Inc increments label by one.
func (d *Dist) Inc(label string) { d.Add(label, 1) }

// Count returns the count for label.
func (d *Dist) Count(label string) uint64 {
	i, ok := d.index[label]
	if !ok {
		panic("stats: unknown label " + label)
	}
	return d.counts[i]
}

// Total returns the sum of all counts.
func (d *Dist) Total() uint64 {
	var t uint64
	for _, c := range d.counts {
		t += c
	}
	return t
}

// Frac returns label's fraction of the total, or 0 for an empty dist.
func (d *Dist) Frac(label string) float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return float64(d.Count(label)) / float64(t)
}

// Labels returns the labels in presentation order.
func (d *Dist) Labels() []string { return append([]string(nil), d.labels...) }

// Reset zeroes all counts.
func (d *Dist) Reset() {
	for i := range d.counts {
		d.counts[i] = 0
	}
}

// Merge adds other's counts into d. The label sets must be identical.
func (d *Dist) Merge(other *Dist) {
	if len(other.labels) != len(d.labels) {
		panic("stats: merging dists with different label sets")
	}
	for i, l := range other.labels {
		if d.labels[i] != l {
			panic("stats: merging dists with different label sets")
		}
		d.counts[i] += other.counts[i]
	}
}

// String renders the distribution as "label: count (frac%)" lines.
func (d *Dist) String() string {
	var b strings.Builder
	t := d.Total()
	for i, l := range d.labels {
		frac := 0.0
		if t > 0 {
			frac = float64(d.counts[i]) / float64(t) * 100
		}
		fmt.Fprintf(&b, "%-18s %12d  %6.2f%%\n", l, d.counts[i], frac)
	}
	return b.String()
}

// ReuseBucket is one of the paper's Figure 7 reuse-count buckets.
type ReuseBucket int

// The paper buckets block lifetimes by how many times the block was
// reused (re-accessed after the miss that brought it in) before being
// replaced or invalidated: 0, 1, 2–5, and more than 5 reuses.
const (
	Reuse0 ReuseBucket = iota
	Reuse1
	Reuse2to5
	ReuseOver5
	numReuseBuckets
)

func (b ReuseBucket) String() string {
	switch b {
	case Reuse0:
		return "0 reuses"
	case Reuse1:
		return "1 reuse"
	case Reuse2to5:
		return "2-5 reuses"
	case ReuseOver5:
		return ">5 reuses"
	}
	return fmt.Sprintf("ReuseBucket(%d)", int(b))
}

// BucketOf maps a raw reuse count to its Figure 7 bucket.
func BucketOf(reuses int) ReuseBucket {
	switch {
	case reuses <= 0:
		return Reuse0
	case reuses == 1:
		return Reuse1
	case reuses <= 5:
		return Reuse2to5
	default:
		return ReuseOver5
	}
}

// ReuseHist counts block lifetimes by reuse bucket.
type ReuseHist struct {
	counts [numReuseBuckets]uint64
}

// Record adds one lifetime that saw the given number of reuses.
func (h *ReuseHist) Record(reuses int) { h.counts[BucketOf(reuses)]++ }

// Count returns the number of lifetimes in bucket b.
func (h *ReuseHist) Count(b ReuseBucket) uint64 { return h.counts[b] }

// Total returns the number of recorded lifetimes.
func (h *ReuseHist) Total() uint64 {
	var t uint64
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Frac returns bucket b's fraction of all lifetimes (0 if empty).
func (h *ReuseHist) Frac(b ReuseBucket) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.counts[b]) / float64(t)
}

// Fracs returns all four bucket fractions in bucket order.
func (h *ReuseHist) Fracs() [4]float64 {
	var f [4]float64
	for b := Reuse0; b < numReuseBuckets; b++ {
		f[b] = h.Frac(b)
	}
	return f
}

// Merge adds other's counts into h.
func (h *ReuseHist) Merge(other *ReuseHist) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
}

// Reset zeroes the histogram.
func (h *ReuseHist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
}

// Table accumulates rows of string cells and renders them with aligned
// columns, in the style of the paper's tables. The first row added is
// the header.
type Table struct {
	Title string
	rows  [][]string
}

// NewTable creates a table with the given title and header cells.
func NewTable(title string, header ...string) *Table {
	t := &Table{Title: title}
	if len(header) > 0 {
		t.rows = append(t.rows, header)
	}
	return t
}

// Row appends a row. Cells beyond the header width are allowed; the
// table simply widens.
func (t *Table) Row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rowf appends a row built from (label, formatted values...).
func (t *Table) Rowf(label string, format string, args ...any) {
	t.rows = append(t.rows, []string{label, fmt.Sprintf(format, args...)})
}

// NumRows returns the number of rows including the header.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := []int{}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 && len(t.rows) > 1 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total-2))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV renders the table as comma-separated values (RFC 4180 quoting),
// one line per row, header first; the title is omitted.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	for _, row := range t.rows {
		// Writer.Write only fails on the underlying writer, which for
		// a strings.Builder cannot happen.
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// StackedBar renders fractions as a fixed-width ASCII stacked bar, the
// terminal analogue of the paper's stacked-bar figures. Each segment
// uses the corresponding rune from glyphs (cycled if short); segments
// are sized by largest-remainder so the bar is always exactly width
// runes when the fractions sum to ~1.
func StackedBar(fracs []float64, width int, glyphs []rune) string {
	if width <= 0 || len(fracs) == 0 {
		return ""
	}
	if len(glyphs) == 0 {
		glyphs = []rune{'#', '=', '+', '.'}
	}
	total := 0.0
	for _, f := range fracs {
		if f > 0 {
			total += f
		}
	}
	if total <= 0 {
		return strings.Repeat(" ", width)
	}
	// Largest-remainder apportionment of width cells.
	cells := make([]int, len(fracs))
	rems := make([]float64, len(fracs))
	used := 0
	for i, f := range fracs {
		if f < 0 {
			f = 0
		}
		exact := f / total * float64(width)
		cells[i] = int(exact)
		rems[i] = exact - float64(cells[i])
		used += cells[i]
	}
	for used < width {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i] > rems[best] {
				best = i
			}
		}
		cells[best]++
		rems[best] = -1
		used++
	}
	var b strings.Builder
	for i, n := range cells {
		g := glyphs[i%len(glyphs)]
		for j := 0; j < n; j++ {
			b.WriteRune(g)
		}
	}
	return b.String()
}

// Pct formats a fraction as a percentage cell, e.g. 0.132 -> "13.2%".
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Rel formats a relative-performance ratio, e.g. 1.13 -> "1.13x".
func Rel(f float64) string { return fmt.Sprintf("%.3fx", f) }

// SortedKeys returns the keys of m in sorted order; a tiny helper for
// deterministic iteration when printing maps.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
