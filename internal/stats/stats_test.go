package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	d := NewDist("hit", "miss")
	d.Inc("hit")
	d.Add("miss", 3)
	if got := d.Count("hit"); got != 1 {
		t.Errorf("Count(hit) = %d, want 1", got)
	}
	if got := d.Count("miss"); got != 3 {
		t.Errorf("Count(miss) = %d, want 3", got)
	}
	if got := d.Total(); got != 4 {
		t.Errorf("Total = %d, want 4", got)
	}
	if got := d.Frac("miss"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Frac(miss) = %v, want 0.75", got)
	}
}

func TestDistEmptyFrac(t *testing.T) {
	d := NewDist("a")
	if got := d.Frac("a"); got != 0 {
		t.Errorf("Frac on empty dist = %v, want 0", got)
	}
}

func TestDistUnknownLabelPanics(t *testing.T) {
	d := NewDist("a")
	defer func() {
		if recover() == nil {
			t.Fatal("Inc on unknown label did not panic")
		}
	}()
	d.Inc("b")
}

func TestDistDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDist with duplicate labels did not panic")
		}
	}()
	NewDist("a", "a")
}

func TestDistReset(t *testing.T) {
	d := NewDist("a", "b")
	d.Add("a", 5)
	d.Reset()
	if d.Total() != 0 {
		t.Errorf("Total after Reset = %d, want 0", d.Total())
	}
}

func TestDistMerge(t *testing.T) {
	a := NewDist("x", "y")
	b := NewDist("x", "y")
	a.Add("x", 2)
	b.Add("x", 3)
	b.Add("y", 1)
	a.Merge(b)
	if a.Count("x") != 5 || a.Count("y") != 1 {
		t.Errorf("after merge: x=%d y=%d, want 5, 1", a.Count("x"), a.Count("y"))
	}
}

func TestDistMergeMismatchPanics(t *testing.T) {
	a := NewDist("x")
	b := NewDist("y")
	defer func() {
		if recover() == nil {
			t.Fatal("Merge with different labels did not panic")
		}
	}()
	a.Merge(b)
}

func TestDistLabelsOrder(t *testing.T) {
	d := NewDist("hits", "ros", "rws", "capacity")
	got := d.Labels()
	want := []string{"hits", "ros", "rws", "capacity"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDistString(t *testing.T) {
	d := NewDist("hit", "miss")
	d.Add("hit", 3)
	d.Add("miss", 1)
	s := d.String()
	if !strings.Contains(s, "hit") || !strings.Contains(s, "75.00%") {
		t.Errorf("String() missing expected content:\n%s", s)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		reuses int
		want   ReuseBucket
	}{
		{-1, Reuse0}, {0, Reuse0}, {1, Reuse1}, {2, Reuse2to5},
		{3, Reuse2to5}, {5, Reuse2to5}, {6, ReuseOver5}, {100, ReuseOver5},
	}
	for _, c := range cases {
		if got := BucketOf(c.reuses); got != c.want {
			t.Errorf("BucketOf(%d) = %v, want %v", c.reuses, got, c.want)
		}
	}
}

func TestBucketOfProperty(t *testing.T) {
	// Property: every int maps to exactly one of the four buckets and
	// the mapping is monotone in the bucket boundaries.
	f := func(n int) bool {
		b := BucketOf(n)
		return b >= Reuse0 && b < numReuseBuckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReuseHist(t *testing.T) {
	var h ReuseHist
	for _, r := range []int{0, 0, 1, 3, 10} {
		h.Record(r)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if h.Count(Reuse0) != 2 || h.Count(Reuse1) != 1 ||
		h.Count(Reuse2to5) != 1 || h.Count(ReuseOver5) != 1 {
		t.Errorf("bucket counts wrong: %v", h.counts)
	}
	f := h.Fracs()
	sum := f[0] + f[1] + f[2] + f[3]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
}

func TestReuseHistEmpty(t *testing.T) {
	var h ReuseHist
	if h.Frac(Reuse0) != 0 {
		t.Error("Frac on empty hist should be 0")
	}
}

func TestReuseHistMerge(t *testing.T) {
	var a, b ReuseHist
	a.Record(0)
	b.Record(0)
	b.Record(7)
	a.Merge(&b)
	if a.Count(Reuse0) != 2 || a.Count(ReuseOver5) != 1 {
		t.Errorf("merge result wrong: %v", a.counts)
	}
}

func TestReuseBucketString(t *testing.T) {
	if Reuse2to5.String() != "2-5 reuses" {
		t.Errorf("Reuse2to5.String() = %q", Reuse2to5.String())
	}
	if ReuseBucket(42).String() != "ReuseBucket(42)" {
		t.Errorf("unknown bucket String() = %q", ReuseBucket(42).String())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Latencies", "Component", "Cycles")
	tb.Row("Tag", "26")
	tb.Row("Data", "33")
	tb.Rowf("Total", "%d", 59)
	s := tb.String()
	for _, want := range []string{"Latencies", "Component", "Tag", "26", "59"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if tb.NumRows() != 4 {
		t.Errorf("NumRows = %d, want 4", tb.NumRows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.Row("cccccc", "d")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// header, separator, one row
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), tb.String())
	}
	// Column 2 should start at the same offset in header and data row.
	h, r := lines[0], lines[2]
	if strings.Index(h, "bbbb") != strings.Index(r, "d") {
		t.Errorf("columns not aligned:\n%s", tb.String())
	}
}

func TestStackedBar(t *testing.T) {
	bar := StackedBar([]float64{0.5, 0.25, 0.25}, 8, []rune{'#', '=', '.'})
	if bar != "####==.." {
		t.Errorf("StackedBar = %q, want ####==..", bar)
	}
	if got := len([]rune(StackedBar([]float64{0.3, 0.3, 0.4}, 10, nil))); got != 10 {
		t.Errorf("bar width = %d, want 10", got)
	}
	if got := StackedBar([]float64{0, 0}, 4, nil); got != "    " {
		t.Errorf("all-zero bar = %q, want spaces", got)
	}
	if StackedBar(nil, 5, nil) != "" || StackedBar([]float64{1}, 0, nil) != "" {
		t.Error("degenerate inputs should render empty")
	}
	// Largest remainder: 3 equal thirds of 10 cells -> 4+3+3.
	bar = StackedBar([]float64{1, 1, 1}, 10, []rune{'a', 'b', 'c'})
	if len(bar) != 10 || strings.Count(bar, "a")+strings.Count(bar, "b")+strings.Count(bar, "c") != 10 {
		t.Errorf("thirds bar = %q", bar)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Title ignored", "a", "b")
	tb.Row("x,with,commas", "1")
	tb.Row("plain", "2")
	got := tb.CSV()
	want := "a,b\n\"x,with,commas\",1\nplain,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	if strings.Contains(got, "Title") {
		t.Error("CSV must omit the title")
	}
}

func TestPctRel(t *testing.T) {
	if got := Pct(0.132); got != "13.2%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Rel(1.13); got != "1.130x" {
		t.Errorf("Rel = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}
