// Package topo models the CMP floorplan of the paper's Figure 1: four
// cores (P0–P3) around four 2 MB data d-groups (a–d) arranged in a 2x2
// grid, each core adjacent to one d-group. It provides the per-core
// d-group distances, the staggered d-group preference rankings that
// avoid contention between cores (§2.2.1), and the derived Table 1
// latencies computed through the cacti timing model.
package topo

import (
	"fmt"
	"math"

	"cmpnurapid/internal/cacti"
	"cmpnurapid/internal/memsys"
)

// NumCores and NumDGroups fix the paper's 4-core, 4-d-group floorplan.
// The number of d-groups need not equal the number of cores in general,
// but "bandwidth considerations make it preferable to have at least one
// d-group per core" (§2.2.1), and all of the paper's experiments use
// exactly four of each.
const (
	NumCores   = 4
	NumDGroups = 4
)

// DGroupNames gives the paper's a–d naming for messages and tables.
var DGroupNames = [NumDGroups]string{"a", "b", "c", "d"}

// gridPos places d-group i (and its adjacent core i) on the 2x2 grid.
var gridPos = [NumDGroups][2]int{
	{0, 0}, // a / P0
	{1, 0}, // b / P1
	{0, 1}, // c / P2
	{1, 1}, // d / P3
}

// Distance returns the Manhattan grid distance (0, 1, or 2 d-group
// pitches) from core to the given d-group. Core i sits adjacent to
// d-group i.
func Distance(core, dgroup int) int {
	c, g := gridPos[core], gridPos[dgroup]
	return abs(c[0]-g[0]) + abs(c[1]-g[1])
}

// Routing distances in millimetres for each grid distance. Distance 2
// is slightly less than twice distance 1 because the longer route has a
// diagonal component rather than routing twice around a neighbour.
// Calibrated with the cacti wire model against Table 1 (20- and
// 33-cycle d-group latencies) and the 32-cycle bus.
var distanceMM = [3]cacti.Millimeters{0, 7, 13.5}

// CentralTagMM is the route from a core to a chip-central shared tag
// array (the uniform-shared baseline), and BusRouteMM the route to the
// farthest tag array, which the paper uses as the bus latency.
const (
	CentralTagMM cacti.Millimeters = 9.5
	BusRouteMM   cacti.Millimeters = 16
)

// DGroupMM returns the routing distance in mm from core to dgroup.
func DGroupMM(core, dgroup int) cacti.Millimeters {
	return distanceMM[Distance(core, dgroup)]
}

// Preference is the staggered d-group ranking of the paper's Figure 1:
// each row lists, for one core, the d-groups from most to least
// preferred. Rankings are distance-ordered, with ties between
// equidistant d-groups broken so that no two cores contend for the same
// second-choice d-group.
var Preference = [NumCores][NumDGroups]int{
	{0, 1, 2, 3}, // P0: a b c d
	{1, 3, 0, 2}, // P1: b d a c
	{2, 0, 3, 1}, // P2: c a d b
	{3, 2, 1, 0}, // P3: d c b a
}

// Closest returns the d-group adjacent to core (its first preference).
func Closest(core int) int { return Preference[core][0] }

// Rank returns the position (0 = most preferred) of dgroup in core's
// preference order.
func Rank(core, dgroup int) int {
	for r, g := range Preference[core] {
		if g == dgroup {
			return r
		}
	}
	panic(fmt.Sprintf("topo: d-group %d not in core %d's preference", dgroup, core))
}

// NextFaster returns the next d-group closer to core than dgroup in
// core's preference order (used by the next-fastest promotion policy),
// and ok=false when dgroup is already the closest.
func NextFaster(core, dgroup int) (int, bool) {
	r := Rank(core, dgroup)
	if r == 0 {
		return dgroup, false
	}
	return Preference[core][r-1], true
}

// NextSlower returns the next d-group farther from core than dgroup
// (used by demotion), and ok=false when dgroup is already the farthest.
func NextSlower(core, dgroup int) (int, bool) {
	r := Rank(core, dgroup)
	if r == NumDGroups-1 {
		return dgroup, false
	}
	return Preference[core][r+1], true
}

// Latencies collects every derived Table 1 number, in cycles.
type Latencies struct {
	// Uniform-shared 8 MB 32-way baseline (timed as 8-way 1-port).
	SharedTag   memsys.Cycles
	SharedData  memsys.Cycles
	SharedTotal memsys.Cycles

	// Private 2 MB 8-way per-core caches.
	PrivateTag   memsys.Cycles
	PrivateData  memsys.Cycles
	PrivateTotal memsys.Cycles

	// CMP-NuRAPID: doubled private tag with pointers, plus per-core
	// per-d-group data latencies.
	NuRAPIDTag memsys.Cycles
	DGroupData [NumCores][NumDGroups]memsys.Cycles

	// Pipelined split-transaction bus.
	Bus memsys.Cycles
}

// Paper §4.2 cache geometry.
const (
	TotalL2Bytes = 8 << 20
	BlockBytes   = 128
	SharedAssoc  = 32
	TimedAssoc   = 8 // shared latency conservatively timed as 8-way
	PrivateBytes = 2 << 20
	PrivateAssoc = 8
	DGroupBytes  = 2 << 20
)

// DeriveWith computes latencies for an alternative per-d-group
// capacity (the cache-size sensitivity sweep). The floorplan distances
// scale with the square root of the bank area: smaller banks sit
// closer together.
func DeriveWith(dgroupBytes memsys.Bytes) Latencies {
	scale := sqrtRatio(dgroupBytes, DGroupBytes)
	var l Latencies

	totalBytes := dgroupBytes.Times(NumDGroups)
	sharedTag := cacti.TagGeometry{
		CacheBytes: totalBytes, BlockBytes: BlockBytes, Assoc: SharedAssoc,
	}
	l.SharedTag = cacti.TagCycles(sharedTag, CentralTagMM.Scale(scale))
	l.SharedData = cacti.DataBankCycles(dgroupBytes, TimedAssoc, distanceMM[2].Scale(scale))
	l.SharedTotal = l.SharedTag + l.SharedData

	privTag := cacti.TagGeometry{
		CacheBytes: dgroupBytes, BlockBytes: BlockBytes, Assoc: PrivateAssoc,
	}
	l.PrivateTag = cacti.TagCycles(privTag, 0)
	l.PrivateData = cacti.DataBankCycles(dgroupBytes, PrivateAssoc, 0)
	l.PrivateTotal = l.PrivateTag + l.PrivateData

	nuTag := cacti.TagGeometry{
		CacheBytes: dgroupBytes, BlockBytes: BlockBytes, Assoc: PrivateAssoc,
		SetFactor: 2, Pointers: true,
	}
	l.NuRAPIDTag = cacti.TagCycles(nuTag, 0)
	for c := 0; c < NumCores; c++ {
		for g := 0; g < NumDGroups; g++ {
			l.DGroupData[c][g] = cacti.DataBankCycles(dgroupBytes, PrivateAssoc, DGroupMM(c, g).Scale(scale))
		}
	}
	l.Bus = cacti.BusCycles(BusRouteMM.Scale(scale))
	return l
}

func sqrtRatio(a, b memsys.Bytes) float64 {
	return math.Sqrt(float64(a) / float64(b))
}

// Derive computes all latencies from geometry through the cacti model
// at the paper's configuration (2 MB d-groups, Table 1).
func Derive() Latencies { return DeriveWith(DGroupBytes) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
