package topo

import (
	"testing"

	"cmpnurapid/internal/memsys"
)

func TestDistanceSymmetricStructure(t *testing.T) {
	// Each core is adjacent to its own d-group, one pitch from two
	// d-groups, and two pitches from the last.
	for c := 0; c < NumCores; c++ {
		counts := map[int]int{}
		for g := 0; g < NumDGroups; g++ {
			counts[Distance(c, g)]++
		}
		if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
			t.Errorf("core %d distance profile = %v, want {0:1, 1:2, 2:1}", c, counts)
		}
		if Distance(c, c) != 0 {
			t.Errorf("core %d not adjacent to its own d-group", c)
		}
	}
}

func TestPreferenceMatchesFigure1(t *testing.T) {
	// Paper Figure 1 ranking table (d-groups named a=0..d=3).
	want := [NumCores][NumDGroups]int{
		{0, 1, 2, 3},
		{1, 3, 0, 2},
		{2, 0, 3, 1},
		{3, 2, 1, 0},
	}
	if Preference != want {
		t.Errorf("Preference = %v, want Figure 1's %v", Preference, want)
	}
}

func TestPreferenceIsPermutation(t *testing.T) {
	for c := 0; c < NumCores; c++ {
		seen := map[int]bool{}
		for _, g := range Preference[c] {
			if g < 0 || g >= NumDGroups || seen[g] {
				t.Fatalf("core %d preference %v is not a permutation", c, Preference[c])
			}
			seen[g] = true
		}
	}
}

func TestPreferenceDistanceOrdered(t *testing.T) {
	// Rankings must never prefer a farther d-group over a closer one.
	for c := 0; c < NumCores; c++ {
		for r := 1; r < NumDGroups; r++ {
			if Distance(c, Preference[c][r]) < Distance(c, Preference[c][r-1]) {
				t.Errorf("core %d rank %d (%s) closer than rank %d (%s)",
					c, r, DGroupNames[Preference[c][r]], r-1, DGroupNames[Preference[c][r-1]])
			}
		}
	}
}

func TestPreferenceStaggered(t *testing.T) {
	// §2.2.1: the second preferences must not collide — "if P0 and P1
	// use each other's first preference as their second preference, the
	// cores will compete". Every rank column must be a permutation of
	// the d-groups.
	for r := 0; r < NumDGroups; r++ {
		seen := map[int]bool{}
		for c := 0; c < NumCores; c++ {
			g := Preference[c][r]
			if seen[g] {
				t.Errorf("rank %d assigned d-group %s to two cores", r, DGroupNames[g])
			}
			seen[g] = true
		}
	}
}

func TestClosest(t *testing.T) {
	for c := 0; c < NumCores; c++ {
		if Closest(c) != c {
			t.Errorf("Closest(%d) = %d, want %d", c, Closest(c), c)
		}
	}
}

func TestRankRoundTrip(t *testing.T) {
	for c := 0; c < NumCores; c++ {
		for r := 0; r < NumDGroups; r++ {
			if Rank(c, Preference[c][r]) != r {
				t.Errorf("Rank(%d, Preference[%d][%d]) != %d", c, c, r, r)
			}
		}
	}
}

func TestNextFasterSlower(t *testing.T) {
	for c := 0; c < NumCores; c++ {
		if _, ok := NextFaster(c, Closest(c)); ok {
			t.Errorf("core %d: NextFaster of closest should report !ok", c)
		}
		farthest := Preference[c][NumDGroups-1]
		if _, ok := NextSlower(c, farthest); ok {
			t.Errorf("core %d: NextSlower of farthest should report !ok", c)
		}
		// Walking slower from closest then faster again must return.
		g := Closest(c)
		for i := 0; i < NumDGroups-1; i++ {
			ng, ok := NextSlower(c, g)
			if !ok {
				t.Fatalf("core %d: NextSlower failed mid-chain at %d", c, g)
			}
			back, ok := NextFaster(c, ng)
			if !ok || back != g {
				t.Fatalf("core %d: NextFaster(NextSlower(%d)) = %d", c, g, back)
			}
			g = ng
		}
	}
}

func TestDeriveReproducesTable1(t *testing.T) {
	l := Derive()
	if l.SharedTag != 26 || l.SharedData != 33 || l.SharedTotal != 59 {
		t.Errorf("shared = %d/%d/%d, want 26/33/59 (Table 1)",
			l.SharedTag, l.SharedData, l.SharedTotal)
	}
	if l.PrivateTag != 4 || l.PrivateData != 6 || l.PrivateTotal != 10 {
		t.Errorf("private = %d/%d/%d, want 4/6/10 (Table 1)",
			l.PrivateTag, l.PrivateData, l.PrivateTotal)
	}
	if l.NuRAPIDTag != 5 {
		t.Errorf("NuRAPID tag = %d, want 5 (Table 1)", l.NuRAPIDTag)
	}
	if l.Bus != 32 {
		t.Errorf("bus = %d, want 32 (Table 1)", l.Bus)
	}
	// D-group data latencies from each core must be {6, 20, 20, 33} in
	// preference order (Table 1 lists P0's view: 6, 20, 20, 33; the
	// paper notes results are symmetric for the other cores).
	for c := 0; c < NumCores; c++ {
		want := [NumDGroups]memsys.Cycles{6, 20, 20, 33}
		for r := 0; r < NumDGroups; r++ {
			g := Preference[c][r]
			if l.DGroupData[c][g] != want[r] {
				t.Errorf("core %d d-group %s = %d cycles, want %d",
					c, DGroupNames[g], l.DGroupData[c][g], want[r])
			}
		}
	}
}

func TestDGroupLatencyMonotoneInPreference(t *testing.T) {
	l := Derive()
	for c := 0; c < NumCores; c++ {
		for r := 1; r < NumDGroups; r++ {
			a := l.DGroupData[c][Preference[c][r-1]]
			b := l.DGroupData[c][Preference[c][r]]
			if b < a {
				t.Errorf("core %d: latency decreases along preference (%d then %d)", c, a, b)
			}
		}
	}
}

func TestDeriveWithMatchesDeriveAtDefault(t *testing.T) {
	if DeriveWith(DGroupBytes) != Derive() {
		t.Error("DeriveWith at the default d-group size diverges from Derive")
	}
}

func TestDeriveWithScales(t *testing.T) {
	small := DeriveWith(1 << 20) // 1 MB d-groups (4 MB total)
	big := DeriveWith(4 << 20)   // 4 MB d-groups (16 MB total)
	def := Derive()
	if small.PrivateTotal >= def.PrivateTotal || def.PrivateTotal >= big.PrivateTotal {
		t.Errorf("private latency not monotone in size: %d / %d / %d",
			small.PrivateTotal, def.PrivateTotal, big.PrivateTotal)
	}
	if small.Bus >= def.Bus || def.Bus >= big.Bus {
		t.Errorf("bus latency not monotone in chip size: %d / %d / %d",
			small.Bus, def.Bus, big.Bus)
	}
	for c := 0; c < NumCores; c++ {
		for r := 1; r < NumDGroups; r++ {
			a := small.DGroupData[c][Preference[c][r-1]]
			b := small.DGroupData[c][Preference[c][r]]
			if b < a {
				t.Fatalf("scaled latencies lose preference monotonicity")
			}
		}
	}
}
