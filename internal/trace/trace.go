// Package trace records and replays memory-reference traces. A trace
// captures a workload's per-core op streams in a compact binary format
// so experiments can be re-run bit-identically without the generator,
// exchanged between machines, or inspected offline — the reproduction's
// stand-in for the paper's captured Simics runs.
//
// Format (little-endian):
//
//	magic "CNRT" | version u16 | cores u16
//	then one record per op:
//	  core u8 | flags u8 | compute u16 | addr u64
//	flags: bit0 write, bit1 instr, bit2 nomem
//
// Records appear in the interleaved order they were drawn, so replay
// hands each core its ops in the original per-core order regardless of
// how the consuming simulator interleaves cores.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/memsys"
)

// Magic identifies trace streams.
var Magic = [4]byte{'C', 'N', 'R', 'T'}

// Version is the current format version.
const Version = 1

const (
	flagWrite = 1 << iota
	flagInstr
	flagNoMem
)

// Writer streams ops into a trace.
type Writer struct {
	w     *bufio.Writer
	cores int
	count uint64
}

// NewWriter writes a trace header for the given core count.
func NewWriter(w io.Writer, cores int) (*Writer, error) {
	if cores <= 0 || cores > 255 {
		return nil, fmt.Errorf("trace: core count %d out of range", cores)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Version)
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(cores))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, cores: cores}, nil
}

// Write appends one op for core.
func (t *Writer) Write(core int, op cmpsim.Op) error {
	if core < 0 || core >= t.cores {
		return fmt.Errorf("trace: core %d out of range [0, %d)", core, t.cores)
	}
	if op.Compute < 0 || op.Compute > 0xffff {
		return fmt.Errorf("trace: compute %d does not fit in 16 bits", op.Compute)
	}
	var rec [12]byte
	rec[0] = byte(core)
	var flags byte
	if op.Write {
		flags |= flagWrite
	}
	if op.Instr {
		flags |= flagInstr
	}
	if op.NoMem {
		flags |= flagNoMem
	}
	rec[1] = flags
	binary.LittleEndian.PutUint16(rec[2:4], uint16(op.Compute))
	binary.LittleEndian.PutUint64(rec[4:12], uint64(op.Addr))
	if _, err := t.w.Write(rec[:]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns the number of ops written.
func (t *Writer) Count() uint64 { return t.count }

// Flush drains buffered records to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record captures n ops per core from w into out.
func Record(out io.Writer, w cmpsim.Workload, cores, opsPerCore int) error {
	tw, err := NewWriter(out, cores)
	if err != nil {
		return err
	}
	for i := 0; i < opsPerCore; i++ {
		for c := 0; c < cores; c++ {
			if err := tw.Write(c, w.Next(c)); err != nil {
				return err
			}
		}
	}
	return tw.Flush()
}

// Reader decodes a trace.
type Reader struct {
	r     *bufio.Reader
	cores int
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, errors.New("trace: bad magic (not a trace stream)")
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	cores := int(binary.LittleEndian.Uint16(hdr[2:4]))
	if cores <= 0 || cores > 255 {
		return nil, fmt.Errorf("trace: core count %d out of range", cores)
	}
	return &Reader{r: br, cores: cores}, nil
}

// Cores returns the trace's core count.
func (t *Reader) Cores() int { return t.cores }

// Next returns the next record, or io.EOF at the end of the trace.
func (t *Reader) Next() (core int, op cmpsim.Op, err error) {
	var rec [12]byte
	if _, err = io.ReadFull(t.r, rec[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			err = fmt.Errorf("trace: truncated record: %w", err)
		}
		return 0, cmpsim.Op{}, err
	}
	core = int(rec[0])
	if core >= t.cores {
		return 0, cmpsim.Op{}, fmt.Errorf("trace: record for core %d in a %d-core trace", core, t.cores)
	}
	flags := rec[1]
	op = cmpsim.Op{
		Compute: int(binary.LittleEndian.Uint16(rec[2:4])),
		Addr:    memsys.Addr(binary.LittleEndian.Uint64(rec[4:12])),
		Write:   flags&flagWrite != 0,
		Instr:   flags&flagInstr != 0,
		NoMem:   flags&flagNoMem != 0,
	}
	return core, op, nil
}

// Replayer feeds a fully loaded trace to the simulator as a
// cmpsim.Workload. Cores that exhaust their recorded stream receive
// single-instruction compute ops, like a program spinning after its
// measured region.
type Replayer struct {
	name string
	ops  [][]cmpsim.Op
	pos  []int
}

// Load reads an entire trace into a Replayer.
func Load(r io.Reader, name string) (*Replayer, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	rp := &Replayer{
		name: name,
		ops:  make([][]cmpsim.Op, tr.Cores()),
		pos:  make([]int, tr.Cores()),
	}
	for {
		core, op, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return rp, nil
		}
		if err != nil {
			return nil, err
		}
		rp.ops[core] = append(rp.ops[core], op)
	}
}

// Name implements cmpsim.Workload.
func (rp *Replayer) Name() string { return rp.name }

// Len returns the recorded op count for core.
func (rp *Replayer) Len(core int) int { return len(rp.ops[core]) }

// Next implements cmpsim.Workload.
func (rp *Replayer) Next(core int) cmpsim.Op {
	if rp.pos[core] < len(rp.ops[core]) {
		op := rp.ops[core][rp.pos[core]]
		rp.pos[core]++
		return op
	}
	return cmpsim.Op{Compute: 1, NoMem: true}
}

// Rewind restarts replay from the beginning.
func (rp *Replayer) Rewind() {
	for i := range rp.pos {
		rp.pos[i] = 0
	}
}
