package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/workload"
)

func TestRoundTripSingleOp(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	op := cmpsim.Op{Compute: 7, Addr: 0xdeadbe00, Write: true}
	if err := w.Write(2, op); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores() != 4 {
		t.Errorf("Cores = %d, want 4", r.Cores())
	}
	core, got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if core != 2 || got != op {
		t.Errorf("round trip: core %d op %+v, want core 2 %+v", core, got, op)
	}
	if _, _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(core uint8, compute uint16, addr uint64, write, instr, nomem bool) bool {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, 256-1)
		op := cmpsim.Op{
			Compute: int(compute), Addr: memsys.Addr(addr),
			Write: write, Instr: instr, NoMem: nomem,
		}
		c := int(core) % 255
		if err := w.Write(c, op); err != nil {
			return false
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		gc, gop, err := r.Next()
		return err == nil && gc == c && gop == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	w.Write(0, cmpsim.Op{Addr: 0x40})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0); err == nil {
		t.Error("0-core writer accepted")
	}
	w, _ := NewWriter(&buf, 2)
	if err := w.Write(5, cmpsim.Op{}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := w.Write(0, cmpsim.Op{Compute: 1 << 16}); err == nil {
		t.Error("oversized compute accepted")
	}
}

func TestRecordAndReplayMatchesGenerator(t *testing.T) {
	// A replayed trace must feed the simulator exactly the ops a fresh
	// generator with the same seed would have.
	var buf bytes.Buffer
	if err := Record(&buf, workload.New(workload.SPECjbb(9)), 4, 500); err != nil {
		t.Fatal(err)
	}
	rp, err := Load(bytes.NewReader(buf.Bytes()), "jbb")
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "jbb" {
		t.Errorf("Name = %q", rp.Name())
	}
	fresh := workload.New(workload.SPECjbb(9))
	for i := 0; i < 500; i++ {
		for c := 0; c < 4; c++ {
			want := fresh.Next(c)
			got := rp.Next(c)
			if got != want {
				t.Fatalf("op %d core %d: replay %+v != generator %+v", i, c, got, want)
			}
		}
	}
	if rp.Len(0) != 500 {
		t.Errorf("Len(0) = %d, want 500", rp.Len(0))
	}
}

func TestReplayerExhaustionAndRewind(t *testing.T) {
	var buf bytes.Buffer
	if err := Record(&buf, workload.New(workload.Barnes(3)), 4, 10); err != nil {
		t.Fatal(err)
	}
	rp, err := Load(bytes.NewReader(buf.Bytes()), "b")
	if err != nil {
		t.Fatal(err)
	}
	first := rp.Next(1)
	for i := 1; i < 10; i++ {
		rp.Next(1)
	}
	// Exhausted: spins on compute ops.
	if op := rp.Next(1); !op.NoMem {
		t.Errorf("exhausted replayer returned %+v, want compute spin", op)
	}
	rp.Rewind()
	if got := rp.Next(1); got != first {
		t.Errorf("after Rewind: %+v, want %+v", got, first)
	}
}
