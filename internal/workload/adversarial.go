package workload

import (
	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/topo"
)

// Adversarial workloads for simguard's chaos sweep (docs/ROBUSTNESS.md).
// Unlike the calibrated Table 3 profiles, these are deliberately
// pathological streams: they push a single resource (one block, one
// bus, one region) to its limit, which is where livelocks, invariant
// violations and accounting bugs hide. Each is deterministic per seed,
// like every other workload in the package.

// Hammer is the single-address hammer: every core read-modify-writes
// the same read-write shared block with no intervening compute. Under
// MESI this is the worst-case ownership ping-pong; under MESIC the
// block collapses into one C copy that all four cores pound through
// the bus.
func Hammer(seed uint64) Profile {
	return Profile{
		Name:         "adv-hammer",
		RWFrac:       1,
		RWBlocks:     1,
		RWModifyFrac: 1,
		Seed:         seed,
	}
}

// AllShared makes every reference shared — half read-only, half
// read-write with a high store fraction — over footprints larger than
// the shared L2, so sharing, replication and capacity pressure all
// peak at once.
func AllShared(seed uint64) Profile {
	return Profile{
		Name:       "adv-all-shared",
		ComputeMin: 1, ComputeMax: 2,
		ROFrac: 0.5, RWFrac: 0.5,
		ROBlocks: blocksForMB(6), ROTheta: 0.6,
		RWBlocks: blocksForMB(6), RWTheta: 0.6,
		RWModifyFrac: 0.25, RWWriteFrac: 0.50,
		Seed: seed,
	}
}

// MaxThreads is maximal thread pressure: all four cores issue
// back-to-back memory references (zero compute between them) across
// code, shared and private regions, saturating the bus and every
// single-ported structure simultaneously.
func MaxThreads(seed uint64) Profile {
	return Profile{
		Name:      "adv-max-threads",
		InstrFrac: 0.2,
		ROFrac:    0.3, RWFrac: 0.3,
		CodeBlocks: blocksForMB(0.5), CodeTheta: 0.9,
		ROBlocks: blocksForMB(2), ROTheta: 0.8,
		RWBlocks: blocksForMB(1), RWTheta: 0.8,
		PrivateBlocks: uniform(blocksForMB(2)), PrivateTheta: 0.8,
		RWModifyFrac: 0.40, RWWriteFrac: 0.20,
		PrivateWriteFrac: 0.50,
		Seed:             seed,
	}
}

// ZeroFootprint is a workload that touches no memory at all: every op
// is pure compute. The memory system sees zero traffic while the cores
// still retire instructions — the degenerate end of the footprint
// axis. (Compute is 1, not 0: a zero-work op stream is the livelock
// the watchdog exists to catch; see LivelockMutant.)
type ZeroFootprint struct{}

// Name implements cmpsim.Workload.
func (ZeroFootprint) Name() string { return "adv-zero-footprint" }

// Next implements cmpsim.Workload.
func (ZeroFootprint) Next(core int) cmpsim.Op { return cmpsim.Op{Compute: 1, NoMem: true} }

// SingleThreaded restricts a workload to core 0: the other cores spin
// on one-instruction compute ops, so the stream exercises the
// single-thread path through a four-core memory system (no sharing, no
// contention — everything the designs optimise for is absent).
type SingleThreaded struct {
	Inner cmpsim.Workload
}

// Name implements cmpsim.Workload.
func (s SingleThreaded) Name() string { return s.Inner.Name() + "-1thread" }

// Next implements cmpsim.Workload.
func (s SingleThreaded) Next(core int) cmpsim.Op {
	if core == 0 {
		return s.Inner.Next(0)
	}
	return cmpsim.Op{Compute: 1, NoMem: true}
}

// LivelockMutant is the seeded livelock used to prove the watchdog
// fires (the unitmutants/protocheck-mutant pattern: a deliberately
// broken artifact the guard must catch). Each core runs the inner
// workload for After ops, then emits zero-work ops forever — no
// instruction retires and no clock advances, the livelock shape only
// the watchdog's step counter can see.
type LivelockMutant struct {
	Inner cmpsim.Workload
	// After is the number of healthy ops per core before the stream
	// livelocks.
	After uint64

	issued [topo.NumCores]uint64
}

// Name implements cmpsim.Workload.
func (m *LivelockMutant) Name() string { return m.Inner.Name() + "-livelock-mutant" }

// Next implements cmpsim.Workload.
func (m *LivelockMutant) Next(core int) cmpsim.Op {
	if m.issued[core] < m.After {
		m.issued[core]++
		return m.Inner.Next(core)
	}
	// Zero compute and NoMem: retires nothing, advances no clock.
	return cmpsim.Op{NoMem: true}
}

// Adversarial returns the chaos sweep's workload catalog at the given
// seed. LivelockMutant is deliberately absent: it is not a workload
// that should pass, it is the mutant the watchdog test feeds in.
func Adversarial(seed uint64) []cmpsim.Workload {
	return []cmpsim.Workload{
		New(Hammer(seed)),
		New(AllShared(seed + 1)),
		New(MaxThreads(seed + 2)),
		ZeroFootprint{},
		SingleThreaded{Inner: New(Hammer(seed + 3))},
	}
}
