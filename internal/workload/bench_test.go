package workload

import "testing"

func BenchmarkGeneratorNext(b *testing.B) {
	b.ReportAllocs()
	g := New(OLTP(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(i % 4)
	}
}

func BenchmarkMixNext(b *testing.B) {
	b.ReportAllocs()
	m := Mixes(1)[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Next(i % 4)
	}
}
