package workload

import (
	"strings"
	"testing"

	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/core"
	"cmpnurapid/internal/l2"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/topo"
)

// Degenerate-workload tests: the boundary cases a simulator calibrated
// on multi-megabyte commercial footprints never sees in normal runs —
// one thread, no instruction fetches, purely read-only sharing, a
// footprint smaller than one cache line. Each must simulate to
// completion (no stall, no ceiling) with invariants clean on a
// private, a MESIC, and a banked-shared design.

// degenerateDesigns builds fresh instances of the invariant-checked
// design trio the degenerate runs cover.
func degenerateDesigns() []memsys.L2 {
	return []memsys.L2{l2.NewPrivate(), core.New(core.DefaultConfig()), l2.NewSNUCA()}
}

// runDegenerate simulates w on every design, requiring completion and
// clean invariants.
func runDegenerate(t *testing.T, w func() cmpsim.Workload) {
	t.Helper()
	const quantum = 3000
	for _, design := range degenerateDesigns() {
		sys := cmpsim.New(cmpsim.DefaultConfig(), design, w())
		sys.Warmup(quantum / 2)
		res := sys.Run(quantum)
		if chk, ok := design.(interface{ CheckInvariants() }); ok {
			chk.CheckInvariants()
		}
		for c, cr := range res.Cores {
			if cr.Instructions < quantum {
				t.Errorf("%s: core %d retired %d, want >= %d", design.Name(), c, cr.Instructions, quantum)
			}
		}
		if res.IPC <= 0 {
			t.Errorf("%s: IPC %v not positive", design.Name(), res.IPC)
		}
	}
}

func TestDegenerateSingleThread(t *testing.T) {
	runDegenerate(t, func() cmpsim.Workload {
		return SingleThreaded{Inner: New(OLTP(11))}
	})
}

func TestDegenerateZeroInstructionFetch(t *testing.T) {
	p := OLTP(12)
	p.Name = "no-ifetch"
	p.InstrFrac = 0
	p.CodeBlocks = 0
	runDegenerate(t, func() cmpsim.Workload { return New(p) })
}

func TestDegenerateAllReadOnlyShared(t *testing.T) {
	p := Profile{
		Name:     "all-ros",
		ROFrac:   1,
		ROBlocks: blocksForMB(1), ROTheta: 0.8,
		ComputeMin: 1, ComputeMax: 3,
		Seed: 13,
	}
	runDegenerate(t, func() cmpsim.Workload { return New(p) })
}

func TestDegenerateSubCacheLineFootprint(t *testing.T) {
	// Every footprint is zero blocks; the max1 clamp leaves each
	// region one 128 B block — the entire workload touches less data
	// than a single L2 line per region.
	p := Profile{
		Name:      "sub-line",
		InstrFrac: 0.2,
		ROFrac:    0.3, RWFrac: 0.3,
		RWModifyFrac: 0.3, RWWriteFrac: 0.2, PrivateWriteFrac: 0.5,
		ComputeMin: 1, ComputeMax: 2,
		Seed: 14,
	}
	runDegenerate(t, func() cmpsim.Workload { return New(p) })
}

func TestAdversarialCatalog(t *testing.T) {
	cat := Adversarial(21)
	want := []string{"adv-hammer", "adv-all-shared", "adv-max-threads",
		"adv-zero-footprint", "adv-hammer-1thread"}
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d workloads, want %d", len(cat), len(want))
	}
	for i, w := range cat {
		if w.Name() != want[i] {
			t.Errorf("catalog[%d] = %q, want %q", i, w.Name(), want[i])
		}
	}
}

func TestHammerUsesSingleAddress(t *testing.T) {
	g := New(Hammer(5))
	var addr memsys.Addr
	seen := false
	for c := 0; c < topo.NumCores; c++ {
		for i := 0; i < 200; i++ {
			op := g.Next(c)
			if op.NoMem {
				t.Fatal("hammer emitted a no-memory op")
			}
			if !seen {
				addr, seen = op.Addr, true
			}
			if op.Addr != addr {
				t.Fatalf("hammer touched %#x and %#x; want one address", op.Addr, addr)
			}
		}
	}
	if addr < RWBase || addr >= PrivateBase {
		t.Errorf("hammer address %#x outside the RW shared region", addr)
	}
}

func TestZeroFootprintTouchesNoMemory(t *testing.T) {
	w := ZeroFootprint{}
	for i := 0; i < 100; i++ {
		op := w.Next(i % topo.NumCores)
		if !op.NoMem || op.Compute != 1 {
			t.Fatalf("zero-footprint op %+v, want pure single-instruction compute", op)
		}
	}
}

func TestSingleThreadedIdlesOtherCores(t *testing.T) {
	w := SingleThreaded{Inner: New(Hammer(6))}
	if op := w.Next(0); op.NoMem {
		t.Error("core 0 should run the inner workload")
	}
	for c := 1; c < topo.NumCores; c++ {
		op := w.Next(c)
		if !op.NoMem || op.Compute != 1 {
			t.Errorf("core %d op %+v, want idle compute", c, op)
		}
	}
}

func TestLivelockMutantGoesQuietAfterN(t *testing.T) {
	m := &LivelockMutant{Inner: New(Hammer(8)), After: 5}
	for c := 0; c < topo.NumCores; c++ {
		for i := 0; i < 5; i++ {
			if op := m.Next(c); op.NoMem && op.Compute == 0 {
				t.Fatalf("core %d livelocked at op %d, healthy budget is 5", c, i)
			}
		}
		for i := 0; i < 10; i++ {
			op := m.Next(c)
			if !op.NoMem || op.Compute != 0 {
				t.Fatalf("core %d op %+v after budget, want zero-work op", c, op)
			}
		}
	}
	if !strings.Contains(m.Name(), "livelock-mutant") {
		t.Errorf("mutant name %q", m.Name())
	}
}
