package workload

import (
	"cmpnurapid/internal/cmpsim"
	"cmpnurapid/internal/memsys"
	"cmpnurapid/internal/rng"
	"cmpnurapid/internal/topo"
)

// App characterizes one SPEC CPU2000 application for the
// multiprogrammed mixes: its cache footprint (in 128 B blocks), Zipf
// locality exponent, compute density, and store fraction. Values
// follow the applications' well-known memory behaviour: art/mcf/swim
// are cache-hungry with poor locality; mesa/gzip/wupwise have small,
// hot working sets — exactly the non-uniform capacity demand capacity
// stealing exploits (§3.3).
type App struct {
	Name       string
	Blocks     int
	Theta      float64
	ComputeMin int
	ComputeMax int
	WriteFrac  float64
	// RepeatFrac sets the app's temporal-burst rate, i.e. its L1 hit
	// rate (see Profile.RepeatFrac); the cache-hungry codes have poor
	// L1 behaviour too.
	RepeatFrac float64
}

// The ten SPEC2K applications of Table 2. Footprints and locality
// follow the applications' well-known behaviour, scaled so the
// Figure 11 regime holds: the aggregate demand of every mix exceeds
// the 8 MB shared cache (shared cache ~9% misses), the cache-hungry
// apps overflow a 2 MB private cache badly (private ~14%), and the
// small apps leave private-cache slack for capacity stealing.
var (
	Apsi    = App{Name: "apsi", Blocks: blocksForMB(2.5), Theta: 0.60, ComputeMin: 3, ComputeMax: 7, WriteFrac: 0.30, RepeatFrac: 0.85}
	Art     = App{Name: "art", Blocks: blocksForMB(4.5), Theta: 0.35, ComputeMin: 1, ComputeMax: 4, WriteFrac: 0.20, RepeatFrac: 0.70}
	Equake  = App{Name: "equake", Blocks: blocksForMB(2.2), Theta: 0.55, ComputeMin: 2, ComputeMax: 6, WriteFrac: 0.25, RepeatFrac: 0.85}
	Mesa    = App{Name: "mesa", Blocks: blocksForMB(0.5), Theta: 0.90, ComputeMin: 4, ComputeMax: 9, WriteFrac: 0.30, RepeatFrac: 0.90}
	Ammp    = App{Name: "ammp", Blocks: blocksForMB(4.0), Theta: 0.40, ComputeMin: 2, ComputeMax: 5, WriteFrac: 0.25, RepeatFrac: 0.80}
	Swim    = App{Name: "swim", Blocks: blocksForMB(4.5), Theta: 0.30, ComputeMin: 1, ComputeMax: 4, WriteFrac: 0.35, RepeatFrac: 0.70}
	Vortex  = App{Name: "vortex", Blocks: blocksForMB(1.8), Theta: 0.65, ComputeMin: 3, ComputeMax: 7, WriteFrac: 0.30, RepeatFrac: 0.85}
	Mcf     = App{Name: "mcf", Blocks: blocksForMB(6.5), Theta: 0.30, ComputeMin: 1, ComputeMax: 3, WriteFrac: 0.20, RepeatFrac: 0.70}
	Gzip    = App{Name: "gzip", Blocks: blocksForMB(1.0), Theta: 0.75, ComputeMin: 3, ComputeMax: 8, WriteFrac: 0.30, RepeatFrac: 0.88}
	Wupwise = App{Name: "wupwise", Blocks: blocksForMB(1.2), Theta: 0.80, ComputeMin: 4, ComputeMax: 9, WriteFrac: 0.30, RepeatFrac: 0.88}
)

// Multiprogrammed runs one independent application per core: no
// sharing at all, disjoint address spaces, per-core locality. It
// implements cmpsim.Workload.
type Multiprogrammed struct {
	name  string
	apps  [topo.NumCores]App
	cores [topo.NumCores]mixCore
}

type mixCore struct {
	r *rng.Source
	z *rng.Zipf
	// ring holds recently issued references for temporal bursts.
	ring    [repeatRing]cmpsim.Op
	ringLen int
	ringPos int
}

// NewMix builds a multiprogrammed workload from four applications.
func NewMix(name string, apps [topo.NumCores]App, seed uint64) *Multiprogrammed {
	m := &Multiprogrammed{name: name, apps: apps}
	root := rng.New(seed ^ 0x5bf0_3635)
	for c := 0; c < topo.NumCores; c++ {
		r := root.Split()
		m.cores[c] = mixCore{r: r, z: rng.NewZipf(r.Split(), max1(apps[c].Blocks), apps[c].Theta)}
	}
	return m
}

// Name implements cmpsim.Workload.
func (m *Multiprogrammed) Name() string { return m.name }

// Apps returns the per-core applications.
func (m *Multiprogrammed) Apps() [topo.NumCores]App { return m.apps }

// Next implements cmpsim.Workload.
func (m *Multiprogrammed) Next(core int) cmpsim.Op {
	mc := &m.cores[core]
	app := &m.apps[core]
	op := cmpsim.Op{}
	if app.ComputeMax > app.ComputeMin {
		op.Compute = app.ComputeMin + mc.r.Intn(app.ComputeMax-app.ComputeMin+1)
	} else {
		op.Compute = app.ComputeMin
	}
	// Temporal burst: re-touch a recent reference as a load.
	if mc.ringLen > 0 && mc.r.Bool(app.RepeatFrac) {
		op.Addr = mc.ring[mc.r.Intn(mc.ringLen)].Addr
		return op
	}
	base := memsys.Addr(PrivateBase + core*PrivateStep)
	op.Addr = base + memsys.Addr(mc.z.Next()*BlockBytes)
	op.Write = mc.r.Bool(app.WriteFrac)
	mc.ring[mc.ringPos] = op
	mc.ringPos = (mc.ringPos + 1) % repeatRing
	if mc.ringLen < repeatRing {
		mc.ringLen++
	}
	return op
}

// MixApps returns Table 2's application lists.
func MixApps() map[string][topo.NumCores]App {
	return map[string][topo.NumCores]App{
		"MIX1": {Apsi, Art, Equake, Mesa},
		"MIX2": {Ammp, Swim, Mesa, Vortex},
		"MIX3": {Apsi, Mcf, Gzip, Mesa},
		"MIX4": {Ammp, Gzip, Vortex, Wupwise},
	}
}

// Mixes returns the four Table 2 workloads in order.
func Mixes(seed uint64) []*Multiprogrammed {
	apps := MixApps()
	return []*Multiprogrammed{
		NewMix("MIX1", apps["MIX1"], seed),
		NewMix("MIX2", apps["MIX2"], seed+1),
		NewMix("MIX3", apps["MIX3"], seed+2),
		NewMix("MIX4", apps["MIX4"], seed+3),
	}
}
